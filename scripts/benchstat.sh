#!/bin/sh
# Old-vs-new engine benchmark report AND the tracing-overhead gate: run
# the simulator/chaos benches fresh (including the recorder-enabled
# BenchmarkEngineRunRecorded), compare them against the committed
# BENCH_sim.json baseline with decor-benchjson -diff, and FAIL if the
# recorder-disabled hot path (BenchmarkEngineRun/actors=64) regressed in
# mean ns/op beyond BENCH_GATE_PCT percent. The recorder-enabled-vs-
# disabled ratio is printed as a report so the cost of flight recording
# stays visible; only the disabled path is gated (it is what every
# non-chaos caller pays).
#
# Tunables: BENCH_BASELINE (default BENCH_sim.json), BENCH_COUNT
# (samples, default 1), BENCH_TIME (per-bench -benchtime, default 20x —
# enough iterations to be indicative while staying a smoke),
# BENCH_GATE_PCT (allowed regression, default 25 — wide because shared
# CI hosts show ±15% run-to-run drift; allocs/op would catch a real
# structural regression long before ns/op does).
set -e

GO=${GO:-go}
BASELINE=${BENCH_BASELINE:-BENCH_sim.json}
FRESH=${BENCH_FRESH:-$(mktemp /tmp/bench_sim_fresh.XXXXXX.json)}
COUNT=${BENCH_COUNT:-1}
TIME=${BENCH_TIME:-20x}
GATE_PCT=${BENCH_GATE_PCT:-25}

if [ ! -f "$BASELINE" ]; then
	echo "benchstat: baseline $BASELINE missing; run 'make bench-json' first" >&2
	exit 1
fi

$GO test -run '^$' -bench 'BenchmarkEngineRun|BenchmarkEngineSchedule|BenchmarkChaosScenario' \
	-benchmem -benchtime="$TIME" -count="$COUNT" ./internal/sim/ ./internal/chaos/ |
	$GO run ./cmd/decor-benchjson -o "$FRESH"
$GO run ./cmd/decor-benchjson -diff \
	-gate 'BenchmarkEngineRun/actors=64$' -max-regress "$GATE_PCT" \
	"$BASELINE" "$FRESH"

# Recorder-enabled vs disabled: the per-event price of flight recording,
# from the fresh run so both sides saw the same machine conditions.
awk '
/"name":/ { name = $0; sub(/.*: "/, "", name); sub(/".*/, "", name) }
/"mean":/ { mean = $0; sub(/.*: /, "", mean); sub(/,.*/, "", mean)
	if (name == "BenchmarkEngineRun/actors=64") disabled = mean
	if (name == "BenchmarkEngineRunRecorded") recorded = mean }
END {
	if (disabled > 0 && recorded > 0)
		printf "tracing overhead: recorder on %.0f ns/op vs off %.0f ns/op (%.2fx) [report only]\n",
			recorded, disabled, recorded / disabled
}' "$FRESH"

#!/bin/sh
# Old-vs-new engine benchmark report: run the simulator/chaos benches
# fresh and compare them against the committed BENCH_sim.json baseline
# with decor-benchjson -diff. This is the `make check` performance smoke
# — it REPORTS regressions (speedup < 1x) but does not gate on them yet.
#
# Tunables: BENCH_BASELINE (default BENCH_sim.json), BENCH_COUNT
# (samples, default 1), BENCH_TIME (per-bench -benchtime, default 20x —
# enough iterations to be indicative while staying a smoke).
set -e

GO=${GO:-go}
BASELINE=${BENCH_BASELINE:-BENCH_sim.json}
FRESH=${BENCH_FRESH:-$(mktemp /tmp/bench_sim_fresh.XXXXXX.json)}
COUNT=${BENCH_COUNT:-1}
TIME=${BENCH_TIME:-20x}

if [ ! -f "$BASELINE" ]; then
	echo "benchstat: baseline $BASELINE missing; run 'make bench-json' first" >&2
	exit 1
fi

$GO test -run '^$' -bench 'BenchmarkEngineRun|BenchmarkEngineSchedule|BenchmarkChaosScenario' \
	-benchmem -benchtime="$TIME" -count="$COUNT" ./internal/sim/ ./internal/chaos/ |
	$GO run ./cmd/decor-benchjson -o "$FRESH"
$GO run ./cmd/decor-benchjson -diff "$BASELINE" "$FRESH"

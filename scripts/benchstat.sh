#!/bin/sh
# Old-vs-new benchmark report AND the regression gates, two sections:
#
# 1. Simulator: run the simulator/chaos benches fresh (including the
#    recorder-enabled BenchmarkEngineRunRecorded), compare against the
#    committed BENCH_sim.json with decor-benchjson -diff, and FAIL if
#    the recorder-disabled hot path (BenchmarkEngineRun/actors=64)
#    regressed in mean ns/op beyond BENCH_GATE_PCT percent. The
#    recorder-enabled-vs-disabled ratio is printed as a report so the
#    cost of flight recording stays visible; only the disabled path is
#    gated (it is what every non-chaos caller pays).
#
# 2. Core placement: run the placement hot-path benches fresh
#    (BenchmarkBenefitRadius micro-benches + the 1e5-point
#    BenchmarkPlace deployments; the env-gated 1e6 sizes stay skipped
#    here — `make bench-json` refreshes those), compare against
#    BENCH_core.json, and FAIL if a 1e5 tiled placement variant
#    regressed beyond BENCH_CORE_GATE_PCT percent. Full deployments are
#    the gate (hundreds of ms per op, stable at -benchtime=1x) rather
#    than the microsecond-scale micro-benches, which flap on shared
#    hosts.
#
# 3. Selfheal allocations: gate BenchmarkChaosScenario/selfheal's
#    allocs/op against the committed baseline with a tight band
#    (BENCH_SELFHEAL_ALLOC_PCT, default 10). Allocs are deterministic
#    (pooled heartbeat boxes, flattened ledgers, reused scratch), so a
#    structural regression — a new per-round map, an unpooled payload
#    box — shows up as a jump here long before the wide ns/op gates
#    (noisy single-CPU host) could catch anything.
#
# 4. Field sessions: run the session delta benches fresh, compare
#    against BENCH_session.json, gate BenchmarkSessionDelta's ns/op
#    regression (wide band: single-iteration millisecond ops on a
#    noisy single-CPU host), and HARD-gate the structural acceptance
#    criterion — the incremental delta path must stay >= 10x fewer
#    allocs/op than a stateless full replan. Allocs are deterministic,
#    so that gate holds even when timings flap.
#
# 5. Serving allocations: run the end-to-end handler alloc benches
#    fresh (BenchmarkServe* in internal/service plus the delta wire
#    codec pair in internal/session), compare against
#    BENCH_serve_allocs.json, and gate allocs/op EXACTLY where the
#    number is structural — BenchmarkServePlanCacheHit (also capped at
#    the ISSUE's 10 allocs/request ceiling), BenchmarkServeSSEFrame and
#    BenchmarkServeErrorBody (both must stay 0) — with a small band
#    (BENCH_SERVE_ALLOC_PCT, default 10) for the miss/event paths whose
#    planner work evolves field state between iterations. The delta
#    encode must also stay >= 10x fewer allocs/op than reflection
#    json.Marshal of the same delta (0 fresh allocs passes any base).
#    ns/op on the hit path is gated wide (BENCH_SERVE_GATE_PCT, default
#    60) per the noisy single-CPU host; allocs are the tight signal.
#
# Tunables: BENCH_BASELINE (default BENCH_sim.json), BENCH_CORE_BASELINE
# (default BENCH_core.json), BENCH_COUNT (samples, default 1),
# BENCH_TIME (per-bench -benchtime for the sim section, default 20x —
# enough iterations to be indicative while staying a smoke),
# BENCH_GATE_PCT (allowed regression, default 25 — wide because shared
# CI hosts show ±15% run-to-run drift; allocs/op would catch a real
# structural regression long before ns/op does), BENCH_CORE_GATE_PCT
# (default 50 — single-iteration deployment times drift more than the
# 20x-averaged engine benches), BENCH_SESSION_GATE_PCT (default 60 —
# same noisy-host reasoning, even wider because the delta op is ~1 ms).
set -e

GO=${GO:-go}
BASELINE=${BENCH_BASELINE:-BENCH_sim.json}
CORE_BASELINE=${BENCH_CORE_BASELINE:-BENCH_core.json}
SESSION_BASELINE=${BENCH_SESSION_BASELINE:-BENCH_session.json}
SERVE_ALLOC_BASELINE=${BENCH_SERVE_ALLOC_BASELINE:-BENCH_serve_allocs.json}
FRESH=${BENCH_FRESH:-$(mktemp /tmp/bench_sim_fresh.XXXXXX.json)}
CORE_FRESH=${BENCH_CORE_FRESH:-$(mktemp /tmp/bench_core_fresh.XXXXXX.json)}
SESSION_FRESH=${BENCH_SESSION_FRESH:-$(mktemp /tmp/bench_session_fresh.XXXXXX.json)}
SERVE_ALLOC_FRESH=${BENCH_SERVE_ALLOC_FRESH:-$(mktemp /tmp/bench_serve_allocs_fresh.XXXXXX.json)}
COUNT=${BENCH_COUNT:-1}
TIME=${BENCH_TIME:-20x}
GATE_PCT=${BENCH_GATE_PCT:-25}
CORE_GATE_PCT=${BENCH_CORE_GATE_PCT:-50}
SESSION_GATE_PCT=${BENCH_SESSION_GATE_PCT:-60}
SERVE_GATE_PCT=${BENCH_SERVE_GATE_PCT:-60}
SERVE_ALLOC_PCT=${BENCH_SERVE_ALLOC_PCT:-10}

for f in "$BASELINE" "$CORE_BASELINE" "$SESSION_BASELINE" "$SERVE_ALLOC_BASELINE"; do
	if [ ! -f "$f" ]; then
		echo "benchstat: baseline $f missing; run 'make bench-json' first" >&2
		exit 1
	fi
done

$GO test -run '^$' -bench 'BenchmarkEngineRun|BenchmarkEngineSchedule|BenchmarkChaosScenario' \
	-benchmem -benchtime="$TIME" -count="$COUNT" ./internal/sim/ ./internal/chaos/ |
	$GO run ./cmd/decor-benchjson -o "$FRESH"
$GO run ./cmd/decor-benchjson -diff \
	-gate 'BenchmarkEngineRun/actors=64$' -max-regress "$GATE_PCT" \
	"$BASELINE" "$FRESH"

# Recorder-enabled vs disabled: the per-event price of flight recording,
# from the fresh run so both sides saw the same machine conditions.
awk '
/"name":/ { name = $0; sub(/.*: "/, "", name); sub(/".*/, "", name) }
/"mean":/ { mean = $0; sub(/.*: /, "", mean); sub(/,.*/, "", mean)
	if (name == "BenchmarkEngineRun/actors=64") disabled = mean
	if (name == "BenchmarkEngineRunRecorded") recorded = mean }
END {
	if (disabled > 0 && recorded > 0)
		printf "tracing overhead: recorder on %.0f ns/op vs off %.0f ns/op (%.2fx) [report only]\n",
			recorded, disabled, recorded / disabled
}' "$FRESH"

# Selfheal alloc section: the protocol-layer alloc purge, pinned. The
# fresh numbers come from the sim run above, so no extra bench time.
awk -v pct="${BENCH_SELFHEAL_ALLOC_PCT:-10}" '
/"name":/ { name = $0; sub(/.*: "/, "", name); sub(/".*/, "", name) }
/"allocs_per_op":/ { a = $0; sub(/.*: /, "", a); sub(/[^0-9.].*/, "", a)
	if (name == "BenchmarkChaosScenario/selfheal") {
		if (NR == FNR) base = a + 0; else fresh = a + 0
	}
}
END {
	if (base <= 0 || fresh <= 0) {
		print "selfheal alloc gate: BenchmarkChaosScenario/selfheal missing from baseline or fresh run" > "/dev/stderr"
		exit 1
	}
	printf "selfheal allocs/op: baseline %d, fresh %d\n", base, fresh
	if (fresh > base * (1 + pct / 100)) {
		printf "selfheal alloc gate: FAIL %d allocs/op over baseline %d (+%d%% allowed)\n", fresh, base, pct > "/dev/stderr"
		exit 1
	}
}' "$BASELINE" "$FRESH"

# Core placement section: micro-benches are reported, the 1e5-point
# deployments are gated (flat seed path AND the tiled engines, so
# neither side of the compatibility layer regresses silently). Each
# bench is one full deployment per sample, so take BENCH_CORE_COUNT
# samples (default 3, ~1 s each) and gate on the mean — a single draw
# lands anywhere in a ±30% band on shared hosts. The baseline also
# holds env-gated 1e6 entries; they are absent from the fresh run and
# the diff tolerates that.
CORE_COUNT=${BENCH_CORE_COUNT:-3}
$GO test -run '^$' -bench 'BenchmarkBenefitRadius|BenchmarkPlace' \
	-benchmem -benchtime=1x -count="$CORE_COUNT" ./internal/core/ |
	$GO run ./cmd/decor-benchjson -o "$CORE_FRESH"
$GO run ./cmd/decor-benchjson -diff \
	-gate 'BenchmarkPlace/pts=1e5/(grid-flat|grid-seq|grid-par4|centralized-tiled)$' \
	-max-regress "$CORE_GATE_PCT" \
	"$CORE_BASELINE" "$CORE_FRESH"

# Field-session section: one incremental delta repair vs one stateless
# full replan on the same 1e5-point field. The delta ns/op gate is wide
# (millisecond single iterations on a noisy host); the alloc-ratio gate
# is exact — it is the structural property the session subsystem exists
# to provide, and allocs/op do not flap.
SESSION_COUNT=${BENCH_SESSION_COUNT:-3}
$GO test -run '^$' -bench 'BenchmarkSessionDelta|BenchmarkStatelessRepair' \
	-benchmem -benchtime=1x -count="$SESSION_COUNT" ./internal/session/ |
	$GO run ./cmd/decor-benchjson -o "$SESSION_FRESH"
$GO run ./cmd/decor-benchjson -diff \
	-gate 'BenchmarkSessionDelta$' -max-regress "$SESSION_GATE_PCT" \
	"$SESSION_BASELINE" "$SESSION_FRESH"

awk '
/"name":/ { name = $0; sub(/.*: "/, "", name); sub(/".*/, "", name) }
/"allocs_per_op":/ { a = $0; sub(/.*: /, "", a); sub(/,.*/, "", a)
	if (name == "BenchmarkSessionDelta") delta = a + 0
	if (name == "BenchmarkStatelessRepair") full = a + 0 }
END {
	if (delta <= 0 || full <= 0) {
		print "session gate: missing BenchmarkSessionDelta/BenchmarkStatelessRepair allocs" > "/dev/stderr"
		exit 1
	}
	ratio = full / delta
	printf "session delta advantage: full replan %d allocs/op vs incremental %d allocs/op (%.0fx)\n", full, delta, ratio
	if (ratio < 10) {
		printf "session gate: FAIL alloc advantage %.1fx < required 10x\n", ratio > "/dev/stderr"
		exit 1
	}
}' "$SESSION_FRESH"

# Serving-alloc section: handler-level allocs/request through the real
# codecs. One combined run covers the service benches and the session
# wire-codec pair (BenchmarkDeltaEncode vs its stdlib baseline).
SERVE_ALLOC_COUNT=${BENCH_SERVE_ALLOC_COUNT:-3}
$GO test -run '^$' -bench 'BenchmarkServePlanCacheHit|BenchmarkServePlanCacheMiss|BenchmarkServeFieldEvent|BenchmarkServeSSEFrame|BenchmarkServeErrorBody|BenchmarkDeltaEncode' \
	-benchmem -benchtime=50x -count="$SERVE_ALLOC_COUNT" ./internal/service/ ./internal/session/ |
	$GO run ./cmd/decor-benchjson -o "$SERVE_ALLOC_FRESH"
$GO run ./cmd/decor-benchjson -diff \
	-gate 'BenchmarkServePlanCacheHit$' -max-regress "$SERVE_GATE_PCT" \
	"$SERVE_ALLOC_BASELINE" "$SERVE_ALLOC_FRESH"

awk -v pct="$SERVE_ALLOC_PCT" '
/"name":/ { name = $0; sub(/.*: "/, "", name); sub(/".*/, "", name) }
/"allocs_per_op":/ { a = $0; sub(/.*: /, "", a); sub(/[^0-9.].*/, "", a)
	if (NR == FNR) base[name] = a + 0; else fresh[name] = a + 0
}
function have(nm) {
	if ((nm in base) && (nm in fresh)) return 1
	printf "serve alloc gate: %s missing from baseline or fresh run\n", nm > "/dev/stderr"
	fail = 1
	return 0
}
END {
	# Exact gates: these allocs/op are structural (pooled buffers, no
	# data-dependent work), so any drift is a leak. Round to absorb the
	# rare mid-run sync.Pool flush (a fraction of an alloc on average).
	split("BenchmarkServePlanCacheHit BenchmarkServeSSEFrame BenchmarkServeErrorBody", exact, " ")
	for (i in exact) {
		nm = exact[i]
		if (!have(nm)) continue
		b = int(base[nm] + 0.5); f = int(fresh[nm] + 0.5)
		printf "%s allocs/op: baseline %d, fresh %d [exact]\n", nm, b, f
		if (f != b) {
			printf "serve alloc gate: FAIL %s %d allocs/op != baseline %d\n", nm, f, b > "/dev/stderr"
			fail = 1
		}
	}
	# The ISSUE acceptance ceiling, independent of what the baseline says.
	if (("BenchmarkServePlanCacheHit" in fresh) && fresh["BenchmarkServePlanCacheHit"] > 10) {
		printf "serve alloc gate: FAIL cache-hit /v1/plan %.1f allocs/request > 10\n", fresh["BenchmarkServePlanCacheHit"] > "/dev/stderr"
		fail = 1
	}
	# Banded gates: the planner evolves field state across iterations, so
	# these carry small data-dependent variance.
	split("BenchmarkServePlanCacheMiss BenchmarkServeFieldEvent", banded, " ")
	for (i in banded) {
		nm = banded[i]
		if (!have(nm)) continue
		printf "%s allocs/op: baseline %d, fresh %d [+%d%% band]\n", nm, base[nm], fresh[nm], pct
		if (fresh[nm] > base[nm] * (1 + pct / 100)) {
			printf "serve alloc gate: FAIL %s %d allocs/op over baseline %d (+%d%% allowed)\n", nm, fresh[nm], base[nm], pct > "/dev/stderr"
			fail = 1
		}
	}
	# Delta wire encode: >= 10x fewer allocs than reflection json.Marshal
	# of the same delta. The hand encoder is 0 allocs/op steady-state,
	# which passes against any stdlib baseline.
	if (have("BenchmarkDeltaEncode") && have("BenchmarkDeltaEncodeStdlib")) {
		enc = fresh["BenchmarkDeltaEncode"]; std = fresh["BenchmarkDeltaEncodeStdlib"]
		printf "delta encode: hand %d allocs/op vs json.Marshal %d allocs/op\n", enc, std
		if (enc * 10 > std) {
			printf "serve alloc gate: FAIL delta encode %d allocs/op not 10x under stdlib %d\n", enc, std > "/dev/stderr"
			fail = 1
		}
	}
	exit fail
}' "$SERVE_ALLOC_BASELINE" "$SERVE_ALLOC_FRESH"

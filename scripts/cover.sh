#!/bin/sh
# Coverage gate for the chaos-critical packages: the combined statement
# coverage of internal/sim (+invariant, +simtest) and internal/protocol
# must not drop below the post-PR-4 baseline. Override the floor with
# COVER_BASELINE, the profile path with COVER_PROFILE.
set -e

GO=${GO:-go}
BASELINE=${COVER_BASELINE:-95.0}
PROFILE=${COVER_PROFILE:-cover_sim_protocol.out}
PKGS=decor/internal/sim,decor/internal/sim/invariant,decor/internal/sim/simtest,decor/internal/protocol

$GO test -coverprofile="$PROFILE" -coverpkg="$PKGS" ./internal/sim/... ./internal/protocol/ >/dev/null

TOTAL=$($GO tool cover -func="$PROFILE" | awk '/^total:/ {gsub("%", "", $3); print $3}')
echo "combined sim+protocol coverage: ${TOTAL}% (baseline ${BASELINE}%)"
if awk -v t="$TOTAL" -v b="$BASELINE" 'BEGIN { exit !(t + 0 < b + 0) }'; then
	echo "coverage regression: ${TOTAL}% < ${BASELINE}%" >&2
	exit 1
fi

#!/bin/sh
# serve-smoke: end-to-end gate for the decor-serve service (ISSUE 3
# acceptance): boot the server, drive a short decor-load burst, assert
# throughput/latency/zero-5xx, then verify SIGTERM drains cleanly.
#
# Environment knobs:
#   SMOKE_DURATION  load burst length           (default 5s)
#   SMOKE_MIN_RPS   required plans/s            (default 500)
#   SMOKE_MAX_P99   p99 latency ceiling         (default 250ms)
#   SMOKE_JSON      where to write the summary  (default BENCH_serve.json)
#
# Concurrency 8 is far below the default 256-deep admission queue, so any
# 5xx here is a real service bug, not deliberate load shedding.
set -eu

DURATION="${SMOKE_DURATION:-5s}"
MIN_RPS="${SMOKE_MIN_RPS:-500}"
MAX_P99="${SMOKE_MAX_P99:-250ms}"
JSON_OUT="${SMOKE_JSON:-BENCH_serve.json}"

TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
go build -o "$TMP/decor-serve" ./cmd/decor-serve
go build -o "$TMP/decor-load" ./cmd/decor-load

# GOMAXPROCS=4 pins the acceptance environment: the >= $MIN_RPS bar must
# hold on four cores, not however many this machine has.
GOMAXPROCS=4 "$TMP/decor-serve" -addr 127.0.0.1:0 >"$TMP/serve.out" 2>&1 &
SERVER_PID=$!

# The server prints "decor-serve listening on http://HOST:PORT" once the
# listener is up; poll for it rather than sleeping a fixed amount.
URL=""
for _ in $(seq 1 50); do
    URL="$(sed -n 's/^decor-serve listening on \(.*\)$/\1/p' "$TMP/serve.out")"
    [ -n "$URL" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$TMP/serve.out"; echo "serve-smoke: server died at startup" >&2; exit 1; }
    sleep 0.1
done
[ -n "$URL" ] || { echo "serve-smoke: server never printed its address" >&2; exit 1; }
echo "serve-smoke: server up at $URL (pid $SERVER_PID)"

"$TMP/decor-load" -url "$URL" -c 8 -d "$DURATION" -unique 4 \
    -json "$JSON_OUT" -min-rps "$MIN_RPS" -max-p99 "$MAX_P99" -max-errors 0

echo "serve-smoke: wrote $JSON_OUT; sending SIGTERM"
kill -TERM "$SERVER_PID"
DRAIN_OK=1
wait "$SERVER_PID" || DRAIN_OK=0
SERVER_PID=""
if [ "$DRAIN_OK" != 1 ] || ! grep -q "drained, bye" "$TMP/serve.out"; then
    cat "$TMP/serve.out"
    echo "serve-smoke: server did not drain cleanly on SIGTERM" >&2
    exit 1
fi
echo "serve-smoke: PASS (graceful drain confirmed)"

// Intruder detection: the paper's second motivating application (§1).
// An intruder must be detected by multiple sensors to be localized; the
// accuracy of the position estimate improves with the coverage degree k
// (the paper cites multisensor data fusion [4]).
//
// This example deploys the same field at k = 1, 3 and 5, walks an
// intruder across it, estimates the intruder's position from noisy range
// measurements of the sensors that detect it, and reports the mean
// localization error per k.
//
// Run with: go run ./examples/intruder
package main

import (
	"fmt"
	"log"
	"math"

	"decor"
	"decor/internal/geom"
	"decor/internal/rng"
)

const (
	fieldSide = 60.0
	rs        = 4.0
	noise     = 0.5 // std-dev of the range measurement error
	trials    = 300
)

func main() {
	r := rng.New(99)
	fmt.Println("k   sensors   mean detections/intruder   mean localization error")
	for _, k := range []int{1, 3, 5} {
		d, err := decor.NewDeployment(decor.Params{
			FieldSide: fieldSide, K: k, Rs: rs, NumPoints: 900, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		d.ScatterRandom(60)
		if _, err := d.Deploy("voronoi-big"); err != nil {
			log.Fatal(err)
		}
		sensors := d.Sensors()

		totalErr, totalDet, located := 0.0, 0, 0
		for t := 0; t < trials; t++ {
			// Intruder appears away from the border so its disk of
			// detectors is unaffected by field clipping.
			truth := geom.Point{
				X: rs + r.Float64()*(fieldSide-2*rs),
				Y: rs + r.Float64()*(fieldSide-2*rs),
			}
			// Sensors within rs detect the intruder and measure a noisy
			// range.
			var anchors []geom.Point
			var ranges []float64
			for _, s := range sensors {
				sp := geom.Point(s.Pos)
				dist := sp.Dist(truth)
				if dist <= rs {
					anchors = append(anchors, sp)
					ranges = append(ranges, math.Max(0, dist+noise*r.NormFloat64()))
				}
			}
			if len(anchors) == 0 {
				continue // k-coverage guarantees this never happens
			}
			est := locate(anchors, ranges)
			totalErr += est.Dist(truth)
			totalDet += len(anchors)
			located++
		}
		fmt.Printf("%d   %7d   %24.2f   %21.3f\n",
			k, d.NumSensors(),
			float64(totalDet)/float64(located),
			totalErr/float64(located))
		if located < trials {
			fmt.Printf("    WARNING: %d/%d intruders escaped detection\n", trials-located, trials)
		}
	}
	fmt.Println("\nhigher k -> more detectors per intruder -> smaller error (paper §1.2)")
}

// locate estimates a position from noisy ranges: with 3+ anchors it
// solves the standard linearized multilateration least squares; with
// fewer it falls back to the range-weighted centroid.
func locate(anchors []geom.Point, ranges []float64) geom.Point {
	if len(anchors) >= 3 {
		if p, ok := multilaterate(anchors, ranges); ok {
			return p
		}
	}
	// Weighted centroid: nearer sensors (smaller measured range) weigh
	// more.
	var wx, wy, wsum float64
	for i, a := range anchors {
		w := 1.0 / (0.1 + ranges[i])
		wx += w * a.X
		wy += w * a.Y
		wsum += w
	}
	return geom.Point{X: wx / wsum, Y: wy / wsum}
}

// multilaterate linearizes |p - a_i|² = r_i² against the first anchor and
// solves the resulting 2-unknown least squares via the normal equations.
func multilaterate(anchors []geom.Point, ranges []float64) (geom.Point, bool) {
	a0 := anchors[0]
	r0 := ranges[0]
	// Rows: 2(a_i - a0)·p = r0² - r_i² + |a_i|² - |a0|²
	var sxx, sxy, syy, bx, by float64
	for i := 1; i < len(anchors); i++ {
		ax := 2 * (anchors[i].X - a0.X)
		ay := 2 * (anchors[i].Y - a0.Y)
		rhs := r0*r0 - ranges[i]*ranges[i] + anchors[i].Norm2() - a0.Norm2()
		sxx += ax * ax
		sxy += ax * ay
		syy += ay * ay
		bx += ax * rhs
		by += ay * rhs
	}
	det := sxx*syy - sxy*sxy
	if math.Abs(det) < 1e-9 {
		return geom.Point{}, false // collinear anchors
	}
	return geom.Point{
		X: (syy*bx - sxy*by) / det,
		Y: (sxx*by - sxy*bx) / det,
	}, true
}

// Quickstart: deploy a partially-covered sensor field, restore full
// 3-coverage with DECOR, break it with failures, and restore again.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"decor"
)

func main() {
	// The paper's setup: a 100x100 field approximated by 2000 Halton
	// points, sensing radius 4, reliability requirement k = 3.
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: 100,
		K:         3,
		Rs:        4,
		NumPoints: 2000,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// An initial network of 200 randomly scattered sensors — deployment
	// by airdrop, §1 of the paper.
	d.ScatterRandom(200)
	fmt.Printf("initial: %d sensors, %.1f%% of the field 3-covered\n",
		d.NumSensors(), 100*d.Coverage(3))

	// Restore full 3-coverage with the distributed Voronoi variant.
	rep, err := d.Deploy("voronoi-big")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DECOR placed %d sensors in %d rounds (%.1f msgs/cell): %.1f%% 3-covered\n",
		rep.Placed, rep.Rounds, rep.MessagesPerCell, 100*d.Coverage(3))

	// Thanks to k=3, random failures degrade gracefully...
	dead := d.FailRandom(0.25)
	fmt.Printf("after %d random failures: %.1f%% of points still covered by >=1 sensor\n",
		len(dead), 100*d.Coverage(1))

	// ...and a localized disaster is repairable in-place.
	burned := d.FailArea(decor.Point{X: 50, Y: 50}, 24)
	fmt.Printf("disaster destroyed %d sensors: 3-coverage down to %.1f%%\n",
		len(burned), 100*d.Coverage(3))
	rep, err = d.Deploy("voronoi-big")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restoration placed %d sensors: %.1f%% 3-covered, %d redundant\n",
		rep.Placed, 100*d.Coverage(3), len(d.Redundant()))
}

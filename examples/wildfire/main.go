// Wildfire: the paper's first motivating application (§1). A forest is
// monitored by temperature sensors with 3-coverage. A fire front destroys
// every node in a disc. Surviving neighbors detect the failures through
// missed heartbeats (the §3.2 protocol, simulated on a discrete-event
// engine), and DECOR restores coverage of the burned region.
//
// Run with: go run ./examples/wildfire
package main

import (
	"fmt"
	"log"

	"decor"
	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/protocol"
	"decor/internal/sim"
)

func main() {
	const (
		k          = 3
		rs         = 4.0
		rc         = 8.0
		fireRadius = 20.0
	)
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: 80, K: k, Rs: rs, Rc: rc, NumPoints: 1200, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.ScatterRandom(120)
	rep, err := d.Deploy("grid-small")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest instrumented: %d sensors give %.0f%% 3-coverage (%d placed by DECOR)\n",
		d.NumSensors(), 100*d.Coverage(k), rep.Placed)

	// Mirror the deployment into the protocol simulator: every sensor
	// heartbeats with period Tc = 30s and suspects a neighbor after 3
	// silent periods.
	net := network.New(geom.Square(80))
	eng := sim.NewEngine(0.05)
	cfg := protocol.Config{Tc: 30, TimeoutMult: 3, Cell: -1}
	nodes := map[int]*protocol.Node{}
	for _, s := range d.Sensors() {
		net.Add(s.ID, geom.Point(s.Pos), rs, rc)
		nodes[s.ID] = protocol.NewNode(s.ID, net, cfg)
	}
	for id, nd := range nodes {
		eng.Register(id, nd)
	}
	eng.Run(200) // let the network learn its neighborhoods

	// The fire front sweeps the north-east quadrant.
	fire := decor.Point{X: 55, Y: 55}
	burned := d.FailArea(fire, fireRadius)
	for _, id := range burned {
		net.Fail(id)
		eng.Kill(id)
	}
	fireTime := eng.Now()
	fmt.Printf("\nt=%.0fs: fire destroys %d sensors in a disc of radius %.0f\n",
		fireTime, len(burned), fireRadius)
	fmt.Printf("coverage drops to %.1f%% (3-covered), %.1f%% (1-covered)\n",
		100*d.Coverage(k), 100*d.Coverage(1))

	// Run the protocol until the survivors detect the losses.
	eng.Run(fireTime + 10*cfg.Tc)
	detections := 0
	var firstDetect, lastDetect sim.Time
	for id, nd := range nodes {
		if !eng.Alive(id) {
			continue
		}
		for _, dead := range nd.Suspects() {
			_ = dead
			detections++
			at := nd.DetectedAt[dead]
			if firstDetect == 0 || at < firstDetect {
				firstDetect = at
			}
			if at > lastDetect {
				lastDetect = at
			}
		}
	}
	fmt.Printf("heartbeat protocol: %d (neighbor, failure) detections between t=%.0fs and t=%.0fs\n",
		detections, firstDetect, lastDetect)
	fmt.Printf("detection latency: %.0fs–%.0fs after the fire (Tc=%.0fs, timeout %dx)\n",
		float64(firstDetect-fireTime), float64(lastDetect-fireTime), float64(cfg.Tc), cfg.TimeoutMult)

	// Restoration: the detected hole is re-covered in place.
	rrep, err := d.Deploy("voronoi-small")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrestoration: %d new sensors in %d rounds -> %.0f%% 3-coverage restored\n",
		rrep.Placed, rrep.Rounds, 100*d.Coverage(k))
}

// Reliability-driven deployment: the workflow promised by the paper's
// abstract — "every point in the network is covered by at least k
// sensors, where k is calculated based on user reliability
// requirements".
//
// Given a sensor failure probability q and a target survival probability
// for every monitored point, this example derives the required k,
// deploys with DECOR, and confirms the requirement both analytically and
// by Monte Carlo failure injection.
//
// Run with: go run ./examples/reliability
package main

import (
	"fmt"
	"log"

	"decor"
)

func main() {
	const (
		q      = 0.25  // each sensor fails with 25% probability
		target = 0.999 // every point must stay covered with 99.9% probability
	)
	k, err := decor.KForReliability(q, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user requirement: points survive q=%.2f failures with p >= %.3f\n", q, target)
	fmt.Printf("derived coverage degree: k = %d (1 - q^k = %.5f)\n\n", k, 1-pow(q, k))

	d, err := decor.NewDeployment(decor.Params{
		FieldSide: 80, K: k, Rs: 4, NumPoints: 1300, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.ScatterRandom(120)
	rep, err := d.Deploy("grid-big")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DECOR placed %d sensors (%d total) for %d-coverage\n",
		rep.Placed, rep.TotalSensors, k)

	// Analytic check (closed form, §2.1 of the paper).
	rel := d.Reliability(q)
	fmt.Printf("analytic: worst point survives with p = %.5f (target %.3f)\n",
		rel.MinPointReliability, target)
	fmt.Printf("analytic: expected %.2f%% of points stay covered after failures\n",
		100*rel.ExpectedCovered)
	if rel.MinPointReliability < target {
		fmt.Println("REQUIREMENT NOT MET — deployment would need densifying")
		return
	}

	// Monte Carlo confirmation.
	const trials = 40
	worstCovered := 1.0
	sum := 0.0
	for i := 0; i < trials; i++ {
		clone := cloneDeployment(k, 21)
		clone.Reseed(1000 + uint64(i)) // independent failure draw per trial
		clone.FailRandom(q)            // fraction ≈ iid probability at this scale
		c := clone.Coverage(1)
		sum += c
		if c < worstCovered {
			worstCovered = c
		}
	}
	fmt.Printf("monte carlo (%d trials of %.0f%% failures): mean %.2f%% covered, worst %.2f%%\n",
		trials, 100*q, 100*sum/trials, 100*worstCovered)
	fmt.Println("\nrequirement met: reliability drove k, DECOR delivered k")
}

// cloneDeployment rebuilds the deployed field deterministically (the
// facade clones by replaying the seed).
func cloneDeployment(k int, seed uint64) *decor.Deployment {
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: 80, K: k, Rs: 4, NumPoints: 1300, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.ScatterRandom(120)
	if _, err := d.Deploy("grid-big"); err != nil {
		log.Fatal(err)
	}
	return d
}

func pow(q float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= q
	}
	return out
}

// Heterogeneous restoration: the paper's §2 notes that "in a
// heterogeneous network deployment, the sensing and coverage radii of
// the sensors may vary, depending on the type of the sensors and on the
// deployment conditions", and that DECOR only needs rs <= rc.
//
// This example starts from an aging mixed fleet (three hardware
// generations with different sensing ranges), destroys part of it, and
// compares restocking with cheap short-range sensors versus fewer
// long-range ones.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/percover"
	"decor/internal/rng"
)

func main() {
	const (
		side = 70.0
		k    = 2
	)
	field := geom.Square(side)
	pts := lowdisc.Halton{}.Points(1000, field)

	build := func() *coverage.Map {
		m := coverage.New(field, pts, 4, k) // default radius: current hardware
		r := rng.New(11)
		// Three generations of hardware already in the field.
		id := 0
		for _, gen := range []struct {
			n  int
			rs float64
		}{
			{40, 3.0}, // gen-1: short range
			{40, 4.0}, // gen-2
			{20, 6.0}, // gen-3: long range
		} {
			for i := 0; i < gen.n; i++ {
				m.AddSensorRadius(id, r.PointInRect(field), gen.rs)
				id++
			}
		}
		return m
	}

	m := build()
	fmt.Printf("mixed fleet: %d sensors (rs 3/4/6), %.1f%% of points %d-covered\n",
		m.NumSensors(), 100*m.CoverageFrac(k), k)

	for _, variant := range []struct {
		label string
		meth  core.Method
	}{
		{"restock with budget rs=4 sensors (centralized)", core.Centralized{NewRs: 4}},
		{"restock with long-range rs=6 sensors (centralized)", core.Centralized{NewRs: 6}},
		{"restock with long-range rs=6 sensors (distributed Voronoi)", core.VoronoiDECOR{Rc: 8, NewRs: 6}},
	} {
		mm := build()
		res := variant.meth.Deploy(mm, rng.New(5), core.Options{})
		v := percover.Verify(mm, k)
		status := "analytically verified"
		if !v.Covered {
			status = fmt.Sprintf("sliver remains near %s", v.Witness)
		}
		fmt.Printf("\n%s:\n  placed %d sensors -> %.1f%% point coverage (%s)\n",
			variant.label, res.NumPlaced(), 100*mm.CoverageFrac(k), status)
	}

	fmt.Println("\nlonger-range hardware restores the same requirement with fewer units;")
	fmt.Println("DECOR's bookkeeping tracks each sensor's own footprint throughout.")
}

// Self-healing field: the paper's §3.2 protocol as a closed loop. A
// deployed network monitors itself with periodic heartbeats; when a
// disaster silences a disc of sensors, the surviving cell leaders
// detect the failures from the missed beats, discover the coverage
// deficits, and repair them autonomously — no operator in the loop.
//
// Run with: go run ./examples/selfheal
package main

import (
	"fmt"
	"log"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/protocol"
	"decor/internal/rng"
	"decor/internal/sim"
)

func main() {
	const (
		k  = 2
		tc = 30.0 // heartbeat period (seconds)
	)
	field := geom.Square(60)
	pts := lowdisc.Halton{}.Points(800, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(9)
	for id := 0; id < 60; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	(core.VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(10), core.Options{})
	fmt.Printf("deployed: %d sensors, %.0f%% %d-covered\n",
		m.NumSensors(), 100*m.CoverageFrac(k), k)

	eng := sim.NewEngine(0.05)
	mon := protocol.NewMonitoredField(m, eng, 5, tc, 3)
	mon.Start()
	eng.Run(10 * tc)
	fmt.Printf("t=%.0fs: network monitoring itself (Tc=%.0fs, timeout %dx); repairs so far: %d\n",
		float64(eng.Now()), tc, 3, len(mon.Repairs))

	// Disaster strikes.
	disk := geom.DiskAt(30, 30, 12)
	dead := (failure.Area{Disk: disk}).Select(m, nil)
	for _, id := range dead {
		mon.Fail(id)
	}
	failAt := eng.Now()
	fmt.Printf("\nt=%.0fs: disaster silences %d sensors in a disc of radius %.0f\n",
		float64(failAt), len(dead), disk.R)

	// Watch the field heal itself. The coverage map "drops" only when
	// the monitors detect the silence (the real network's stale-knowledge
	// window), so run past the detection timeout first.
	eng.Run(failAt + 4*tc)
	fmt.Printf("t=%.0fs: detected — coverage now reads %.1f%% %d-covered; repairing...\n",
		float64(eng.Now()), 100*m.CoverageFrac(k), k)
	for step := 0; step < 40 && !m.FullyCovered(); step++ {
		eng.Run(eng.Now() + tc)
	}
	if !m.FullyCovered() || len(mon.Repairs) == 0 {
		log.Fatal("field did not heal")
	}
	first, last := mon.Repairs[0], mon.Repairs[len(mon.Repairs)-1]
	fmt.Printf("t=%.0fs: coverage fully restored\n", float64(last.Time))
	fmt.Printf("\nautonomous repair: %d replacement sensors\n", len(mon.Repairs))
	fmt.Printf("  detection+first repair: %.0fs after the disaster\n", float64(first.Time-failAt))
	fmt.Printf("  full restoration:       %.0fs after the disaster\n", float64(last.Time-failAt))
	fmt.Println("\nno operator action: heartbeats detected the hole, leaders repaired it (paper §3.2)")
}

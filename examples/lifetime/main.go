// Lifetime: the paper's third motivating application (§1). When every
// point is k-covered, the network can rotate disjoint sensor covers —
// putting all but one cover to sleep — and multiply its lifetime.
//
// This example deploys the same field for k = 1..5, extracts disjoint
// 1-covers with the critical-element heuristic (Slijepcevic &
// Potkonjak, the paper's reference [16]), and converts cover counts
// into lifetime estimates under the first-order radio model (reference
// [6]).
//
// Run with: go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"decor"
	"decor/internal/coverage"
	"decor/internal/energy"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/schedule"
)

const (
	fieldSide = 60.0
	rs        = 4.0
	numPoints = 900
	// Duty-cycle parameters: 1-hour epochs, 10 J batteries (~coin cell),
	// 2 heartbeats per epoch at rc = 8.
	epochSec = 3600.0
	capacity = 10.0
	rc       = 8.0
	hbCount  = 2
)

func main() {
	model := energy.Default()
	fmt.Println("k   sensors   disjoint covers   sleeping/epoch   est. lifetime (epochs)")
	base := 0
	for k := 1; k <= 5; k++ {
		d, err := decor.NewDeployment(decor.Params{
			FieldSide: fieldSide, K: k, Rs: rs, NumPoints: numPoints, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		d.ScatterRandom(60)
		if _, err := d.Deploy("voronoi-big"); err != nil {
			log.Fatal(err)
		}
		m := rebuild(d)
		plan := schedule.Build(m)
		if !schedule.Verify(m, plan) {
			log.Fatalf("k=%d: invalid rotation plan", k)
		}
		life := schedule.Lifetime(plan, model, capacity, epochSec, rc, hbCount)
		largest := 0
		for _, c := range plan.Covers {
			if len(c) > largest {
				largest = len(c)
			}
		}
		if k == 1 {
			base = life
		}
		fmt.Printf("%d   %7d   %15d   %14d   %13d (%.1fx)\n",
			k, d.NumSensors(), plan.NumCovers(), d.NumSensors()-largest,
			life, float64(life)/float64(maxI(base, 1)))
	}
	fmt.Println("\nmore coverage -> more disjoint covers -> longer rotation lifetime (paper §1.3)")
}

// rebuild reconstructs the internal coverage map from the public facade
// (the examples otherwise stay on the public API; scheduling works on
// the full map).
func rebuild(d *decor.Deployment) *coverage.Map {
	field := geom.Square(fieldSide)
	pts := lowdisc.Halton{}.Points(numPoints, field)
	m := coverage.New(field, pts, rs, d.Params().K)
	for _, s := range d.Sensors() {
		m.AddSensor(s.ID, geom.Point(s.Pos))
	}
	return m
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

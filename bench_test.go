package decor

// One benchmark per paper table/figure (Figures 4–14), plus ablation
// benches for the design choices called out in DESIGN.md §5. Each
// figure bench regenerates its figure on a reduced single-run
// configuration (the full 5-run paper tables come from cmd/decor-bench)
// and attaches the figure's headline values as custom benchmark metrics,
// so `go test -bench . -benchmem` output doubles as a results summary.

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/experiment"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// benchCfg is the per-iteration experiment configuration: full paper
// field, single run so benches stay in the tens of milliseconds.
func benchCfg() experiment.Config {
	cfg := experiment.Default()
	cfg.Runs = 1
	cfg.FailureDraws = 2
	return cfg
}

func seriesValue(fig experiment.Figure, label string, xIdx int) float64 {
	for _, s := range fig.Series {
		if s.Label == label {
			return s.Y[xIdx]
		}
	}
	return -1
}

// BenchmarkFig04HaltonField measures building the paper's field
// approximation: 2000 Halton points plus their exact star discrepancy.
func BenchmarkFig04HaltonField(b *testing.B) {
	field := geom.Square(100)
	var disc float64
	for i := 0; i < b.N; i++ {
		pts := lowdisc.Halton{}.Points(2000, field)
		disc = lowdisc.StarDiscrepancy(pts, field)
	}
	b.ReportMetric(disc, "star-discrepancy")
}

// BenchmarkFig05Deployment measures producing the example deployment
// picture: a full Voronoi DECOR run on the paper field at k=1.
func BenchmarkFig05Deployment(b *testing.B) {
	cfg := benchCfg()
	var placed int
	for i := 0; i < b.N; i++ {
		m := cfg.NewMap(1, 0)
		res := (core.VoronoiDECOR{Rc: 8}).Deploy(m, cfg.DeployRNG(0), core.Options{})
		placed = res.NumPlaced()
	}
	b.ReportMetric(float64(placed), "placed")
}

// BenchmarkFig06AreaFailure measures constructing the uncovered-area
// picture: deploy, then destroy the r=24 disaster disc.
func BenchmarkFig06AreaFailure(b *testing.B) {
	cfg := benchCfg()
	var cov float64
	for i := 0; i < b.N; i++ {
		m := cfg.NewMap(1, 0)
		(core.Centralized{}).Deploy(m, cfg.DeployRNG(0), core.Options{})
		for _, id := range m.SensorsInBall(cfg.AreaFailureDisk().Center, cfg.AreaFailureDisk().R) {
			m.RemoveSensor(id)
		}
		cov = m.CoverageFrac(1)
	}
	b.ReportMetric(100*cov, "pct-covered-after")
}

// BenchmarkFig07Coverage regenerates the coverage-vs-nodes curves (k=3).
func BenchmarkFig07Coverage(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig7(cfg)
	}
	mid := len(fig.Series[0].X) / 3
	b.ReportMetric(seriesValue(fig, "centralized", mid), "centralized-pct-mid")
	b.ReportMetric(seriesValue(fig, "random", mid), "random-pct-mid")
}

// BenchmarkFig08NodesNeeded regenerates nodes-for-100%-coverage vs k.
func BenchmarkFig08NodesNeeded(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig8(cfg)
	}
	// Paper reference points at k=4: centralized 788, voronoi ~891,
	// grid-small 1196.
	b.ReportMetric(seriesValue(fig, "centralized", 3), "centralized-k4")
	b.ReportMetric(seriesValue(fig, "voronoi-big", 3), "voronoi-big-k4")
	b.ReportMetric(seriesValue(fig, "grid-small", 3), "grid-small-k4")
}

// BenchmarkFig09Redundant regenerates the redundant-node percentages.
func BenchmarkFig09Redundant(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig9(cfg)
	}
	b.ReportMetric(seriesValue(fig, "random", 4), "random-pct-k5")
	b.ReportMetric(seriesValue(fig, "centralized", 4), "centralized-pct-k5")
}

// BenchmarkFig10Messages regenerates the message-overhead series.
func BenchmarkFig10Messages(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig10(cfg)
	}
	b.ReportMetric(seriesValue(fig, "grid-small", 2), "grid-small-k3")
	b.ReportMetric(seriesValue(fig, "voronoi-big", 2), "voronoi-big-k3")
}

// BenchmarkFig11RandomFailures regenerates 3-coverage under random
// failures.
func BenchmarkFig11RandomFailures(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig11(cfg)
	}
	last := len(fig.Series[0].X) - 1
	b.ReportMetric(seriesValue(fig, "grid-small", last), "grid-small-pct-at30")
	b.ReportMetric(seriesValue(fig, "centralized", last), "centralized-pct-at30")
}

// BenchmarkFig12MaxFailures regenerates the maximum tolerable failure
// fraction for 90% 1-coverage.
func BenchmarkFig12MaxFailures(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig12(cfg)
	}
	b.ReportMetric(seriesValue(fig, "grid-small", 4), "grid-small-pct-k5")
	b.ReportMetric(seriesValue(fig, "grid-small", 1), "grid-small-pct-k2")
}

// BenchmarkFig13AreaFailure regenerates k-covered points after the
// disaster.
func BenchmarkFig13AreaFailure(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig13(cfg)
	}
	b.ReportMetric(seriesValue(fig, "centralized", 2), "centralized-pct-k3")
}

// BenchmarkFig14Restore regenerates the restoration-cost series.
func BenchmarkFig14Restore(b *testing.B) {
	cfg := benchCfg()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig14(cfg)
	}
	b.ReportMetric(seriesValue(fig, "centralized", 4), "centralized-nodes-k5")
	b.ReportMetric(seriesValue(fig, "voronoi-big", 4), "voronoi-big-nodes-k5")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationIncrementalBenefit measures the centralized greedy
// with incremental benefit maintenance (the shipped configuration).
func BenchmarkAblationIncrementalBenefit(b *testing.B) {
	benchCentralized(b, core.Centralized{})
}

// BenchmarkAblationFullRescan measures the same algorithm recomputing
// every candidate benefit at every step. Same placements, more work.
func BenchmarkAblationFullRescan(b *testing.B) {
	benchCentralized(b, core.Centralized{FullRescan: true})
}

func benchCentralized(b *testing.B, meth core.Centralized) {
	cfg := benchCfg()
	var placed int
	for i := 0; i < b.N; i++ {
		m := cfg.NewMap(3, 0)
		res := meth.Deploy(m, cfg.DeployRNG(0), core.Options{})
		placed = res.NumPlaced()
	}
	b.ReportMetric(float64(placed), "placed")
}

// BenchmarkAblationPointGenerators compares the field approximations the
// paper discusses (§3.2): Halton (shipped), Hammersley ("results were
// similar"), and uniform random (the strawman). The placed-node metric
// shows the deployment cost is insensitive to the low-discrepancy family
// but the uniform set distorts the field estimate.
func BenchmarkAblationPointGenerators(b *testing.B) {
	field := geom.Square(100)
	for _, gen := range []lowdisc.Generator{
		lowdisc.Halton{}, lowdisc.Hammersley{}, lowdisc.Uniform{Seed: 9},
	} {
		b.Run(gen.Name(), func(b *testing.B) {
			var placed int
			var disc float64
			for i := 0; i < b.N; i++ {
				pts := gen.Points(2000, field)
				m := coverage.New(field, pts, 4, 3)
				res := (core.Centralized{}).Deploy(m, rng.New(4), core.Options{})
				placed = res.NumPlaced()
				disc = lowdisc.EstimateStarDiscrepancy(pts, field, 200, 1)
			}
			b.ReportMetric(float64(placed), "placed")
			b.ReportMetric(disc, "discrepancy-est")
		})
	}
}

// BenchmarkAblationCellSize sweeps the grid cell size beyond the paper's
// two settings, exposing the placement-quality vs message-cost trade-off.
func BenchmarkAblationCellSize(b *testing.B) {
	cfg := benchCfg()
	for _, cell := range []float64{4, 5, 8, 10, 20} {
		b.Run(cellName(cell), func(b *testing.B) {
			var placed int
			var msgs float64
			for i := 0; i < b.N; i++ {
				m := cfg.NewMap(3, 0)
				res := (core.GridDECOR{CellSize: cell}).Deploy(m, cfg.DeployRNG(0), core.Options{})
				placed = res.NumPlaced()
				msgs = res.MessagesPerCell()
			}
			b.ReportMetric(float64(placed), "placed")
			b.ReportMetric(msgs, "msgs-per-cell")
		})
	}
}

func cellName(c float64) string {
	switch c {
	case 4:
		return "cell-04"
	case 5:
		return "cell-05"
	case 8:
		return "cell-08"
	case 10:
		return "cell-10"
	default:
		return "cell-20"
	}
}

// BenchmarkAblationConcurrency compares the concurrent round model with
// the fully serialized execution (DESIGN.md §5): the placed metric shows
// how much of DECOR's node overhead is coordination cost.
func BenchmarkAblationConcurrency(b *testing.B) {
	cfg := benchCfg()
	for _, variant := range []struct {
		name string
		meth core.Method
	}{
		{"concurrent", core.GridDECOR{CellSize: 5}},
		{"sequential", core.GridDECOR{CellSize: 5, Sequential: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var placed int
			for i := 0; i < b.N; i++ {
				m := cfg.NewMap(3, 0)
				res := variant.meth.Deploy(m, cfg.DeployRNG(0), core.Options{})
				placed = res.NumPlaced()
			}
			b.ReportMetric(float64(placed), "placed")
		})
	}
}

// BenchmarkCoreAddSensor isolates the cost of one incremental coverage
// update at paper density.
func BenchmarkCoreAddSensor(b *testing.B) {
	cfg := benchCfg()
	m := cfg.NewMap(3, 0)
	r := rng.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1000 + i
		m.AddSensor(id, r.PointInRect(m.Field()))
		m.RemoveSensor(id)
	}
}

// BenchmarkStarDiscrepancyExact measures the exact O(N² log N) scan at
// the paper's field resolution.
func BenchmarkStarDiscrepancyExact(b *testing.B) {
	pts := lowdisc.Halton{}.Points(1000, geom.Square(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lowdisc.StarDiscrepancy(pts, geom.Square(1))
	}
}

package decor

import (
	"fmt"

	"decor/internal/geom"
	"decor/internal/rng"
	"decor/internal/snap"
)

// Deployment snapshots: a versioned binary capture of a live field —
// parameters, sensors (with per-sensor radii) and the exact RNG state —
// such that RestoreDeployment yields a field observably identical to the
// original: equal operation sequences on both produce equal results,
// including every future random draw. The session layer uses this as the
// fast evict/restore and cross-shard migration path, with full event-log
// replay kept as the differential oracle.

// Snapshot serializes the deployment to the snap envelope format.
func (d *Deployment) Snapshot() []byte {
	w := snap.NewWriter()
	p := d.params
	w.F64(p.FieldSide)
	w.Int(p.K)
	w.F64(p.Rs)
	w.F64(p.Rc)
	w.Int(p.NumPoints)
	w.Str(p.Generator)
	w.U64(p.Seed)

	hi, lo := d.r.State()
	w.U64(hi)
	w.U64(lo)

	w.Int(d.m.NumSensors())
	d.m.VisitSensors(func(id int, pos geom.Point, rs float64) {
		w.Int(id)
		w.F64(pos.X)
		w.F64(pos.Y)
		w.F64(rs)
	})
	return w.Seal()
}

// RestoreDeployment reconstructs a deployment from Snapshot bytes. Any
// corruption, truncation or version mismatch is reported as a typed
// snap error; a successful restore is complete, never partial.
func RestoreDeployment(data []byte) (*Deployment, error) {
	r, err := snap.Open(data)
	if err != nil {
		return nil, err
	}
	var p Params
	p.FieldSide = r.F64()
	p.K = r.Int()
	p.Rs = r.F64()
	p.Rc = r.F64()
	p.NumPoints = r.Int()
	p.Generator = r.Str()
	p.Seed = r.U64()
	hi := r.U64()
	lo := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}

	d, err := NewDeployment(p)
	if err != nil {
		return nil, fmt.Errorf("decor: invalid snapshot params: %w", err)
	}
	// Continue the original's stream mid-draw rather than restarting it.
	d.r = rng.FromState(hi, lo)

	for n := r.CollectionLen(); n > 0; n-- {
		id := r.Int()
		pos := geom.Point{X: r.F64(), Y: r.F64()}
		rs := r.F64()
		if r.Err() != nil {
			break
		}
		if id < 0 || rs <= 0 {
			return nil, fmt.Errorf("%w: sensor %d radius %v", snap.ErrMalformed, id, rs)
		}
		if _, ok := d.m.SensorPos(id); ok {
			return nil, fmt.Errorf("%w: duplicate sensor id %d", snap.ErrMalformed, id)
		}
		d.m.AddSensorRadius(id, pos, rs)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return d, nil
}

package chaos

import (
	"reflect"
	"sort"
	"testing"

	"decor/internal/sim"
)

func trafficIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestTrafficFromPlanDeterministic(t *testing.T) {
	plan := BoundedPlan(DefaultScenario(ArchGrid, 7))
	a := TrafficFromPlan(plan, trafficIDs(40), 10)
	b := TrafficFromPlan(plan, trafficIDs(40), 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical inputs produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("schedule is empty")
	}
	c := TrafficFromPlan(sim.FaultPlan{Seed: plan.Seed ^ 1, Until: plan.Until}, trafficIDs(40), 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestTrafficFromPlanBounds(t *testing.T) {
	plan := sim.FaultPlan{Seed: 42, Until: 60}
	ids := trafficIDs(20)
	events := TrafficFromPlan(plan, ids, 50)

	horizon := float64(plan.Until)
	budget := len(ids) / 4
	seen := map[int]bool{}
	killed := 0
	lastAt := 0.0
	for i, ev := range events {
		if ev.At < lastAt {
			t.Fatalf("event %d out of order: %v after %v", i, ev.At, lastAt)
		}
		lastAt = ev.At
		if ev.At <= 0.5 || ev.At >= horizon {
			t.Errorf("event %d time %v outside (0.5, %v)", i, ev.At, horizon)
		}
		if len(ev.IDs) < 1 || len(ev.IDs) > 3 {
			t.Errorf("event %d batch size %d outside [1,3]", i, len(ev.IDs))
		}
		if !sort.IntsAreSorted(ev.IDs) {
			t.Errorf("event %d IDs not sorted: %v", i, ev.IDs)
		}
		for _, id := range ev.IDs {
			if seen[id] {
				t.Errorf("sensor %d fails twice", id)
			}
			seen[id] = true
			if id < 0 || id >= len(ids) {
				t.Errorf("sensor %d outside population", id)
			}
			killed++
		}
	}
	if killed > budget {
		t.Errorf("killed %d sensors, budget is %d (quarter of population)", killed, budget)
	}
	if killed == 0 {
		t.Error("no sensors killed at all")
	}
}

func TestTrafficFromPlanTinyPopulation(t *testing.T) {
	// A population too small for the quarter-budget still yields one
	// victim — the budget floor — and never loops forever.
	events := TrafficFromPlan(sim.FaultPlan{Seed: 3}, trafficIDs(2), 8)
	total := 0
	for _, ev := range events {
		total += len(ev.IDs)
	}
	if total != 1 {
		t.Fatalf("tiny population killed %d sensors, want exactly 1", total)
	}
	if got := TrafficFromPlan(sim.FaultPlan{Seed: 3}, nil, 8); len(got) != 0 {
		t.Fatalf("empty population produced events: %v", got)
	}
}

package chaos

import (
	"encoding/json"
	"testing"

	"decor/internal/sim"
)

func TestDefaultScenarioPlansAreBounded(t *testing.T) {
	for _, arch := range Archs() {
		for seed := uint64(0); seed < 50; seed++ {
			sc := DefaultScenario(arch, seed)
			if err := sc.Plan.Validate(); err != nil {
				t.Fatalf("%s seed %d: invalid plan: %v", arch, seed, err)
			}
			if !sc.Plan.Bounded() {
				t.Fatalf("%s seed %d: derived plan escapes the severity bound: %+v", arch, seed, sc.Plan)
			}
		}
	}
}

func TestDecodeScenarioAlwaysBounded(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0},
		{1, 0xff},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{7, 1, 2, 3, 4, 5, 6, 7, 8, 200, 100, 50, 1, 255, 10, 3, 250, 3, 9, 1, 20, 1, 30, 200, 40},
	}
	for _, in := range inputs {
		sc := DecodeScenario(in)
		if sc.Arch != ArchGrid && sc.Arch != ArchVoronoi {
			t.Fatalf("decoded arch %q", sc.Arch)
		}
		if err := sc.Plan.Validate(); err != nil {
			t.Fatalf("input %v: invalid plan: %v", in, err)
		}
		if !sc.Plan.Bounded() {
			t.Fatalf("input %v: unbounded plan: %+v", in, sc.Plan)
		}
		if sc.Loss < 0 || sc.Loss > 0.3 {
			t.Fatalf("input %v: loss %v outside decode clamp", in, sc.Loss)
		}
	}
}

func TestDecodeScenarioDeterministic(t *testing.T) {
	in := []byte{1, 9, 8, 7, 6, 5, 4, 3, 2, 100, 200, 50, 1, 40, 90, 14, 250, 2, 8, 1, 1, 60, 200}
	a, b := DecodeScenario(in), DecodeScenario(in)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("decode not deterministic:\n%s\n%s", ja, jb)
	}
}

func TestRunConvergesAndReplaysIdentically(t *testing.T) {
	for _, arch := range Archs() {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			t.Parallel()
			sc := DefaultScenario(arch, 11)
			v1 := Run(sc)
			if !v1.OK {
				t.Fatalf("seed 11 not OK: converged=%v violations=%v", v1.Converged, v1.Violations)
			}
			if v1.TraceLines == 0 || v1.TraceHash == "" {
				t.Fatal("empty trace")
			}
			v2 := Run(sc)
			j1, _ := json.Marshal(v1)
			j2, _ := json.Marshal(v2)
			if string(j1) != string(j2) {
				t.Fatalf("verdicts differ between identical runs:\n%s\n%s", j1, j2)
			}
		})
	}
}

func TestRunRejectsUnknownArch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown arch should panic")
		}
	}()
	Run(Scenario{Arch: "torus", Seed: 1})
}

func TestSelfhealRegressionIsCaught(t *testing.T) {
	// Deliberately break self-healing: permanently crash every monitor
	// before any sensor fails. The invariant checker must report the
	// k-coverage breach with a virtual time and the offending monitor.
	sc := DefaultScenario(ArchSelfheal, 3)
	sc.Plan = sim.FaultPlan{Seed: 3}
	for _, id := range sc.ActorUniverse() {
		sc.Plan.Crashes = append(sc.Plan.Crashes, sim.Crash{Actor: id, At: 0.1})
	}
	v := Run(sc)
	if v.OK {
		t.Fatal("broken self-healing passed the chaos harness")
	}
	found := false
	for _, viol := range v.Violations {
		if viol.Invariant == "k-coverage" && viol.Time > 0 && viol.Actor >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no k-coverage violation with time and actor: %+v", v.Violations)
	}
}

package chaos

import (
	"testing"
)

// BenchmarkChaosScenario runs one full canonical chaos scenario per op —
// world build, fault plan, event loop to quiescence, invariant checks,
// trace hashing — for each architecture. It is the macro view of the
// engine overhaul: the event loop and queue dominate, but the bench also
// pays the SHA-256 trace hash the Verdict carries.
func BenchmarkChaosScenario(b *testing.B) {
	for _, arch := range Archs() {
		b.Run(arch, func(b *testing.B) {
			sc := DefaultScenario(arch, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := Run(sc)
				if v.TraceHash == "" {
					b.Fatal("empty trace hash")
				}
			}
		})
	}
}

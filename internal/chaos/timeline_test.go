package chaos

import (
	"encoding/json"
	"testing"

	"decor/internal/sim"
)

// TestFailedVerdictCarriesTimeline: a run that trips an invariant must
// attach the flight-recorder tail, and the timeline must replay
// byte-identically (virtual time + per-run seq only, no wall clock).
func TestFailedVerdictCarriesTimeline(t *testing.T) {
	sc := DefaultScenario(ArchSelfheal, 3)
	sc.Plan = sim.FaultPlan{Seed: 3}
	for _, id := range sc.ActorUniverse() {
		sc.Plan.Crashes = append(sc.Plan.Crashes, sim.Crash{Actor: id, At: 0.1})
	}
	v := Run(sc)
	if v.OK {
		t.Fatal("scenario unexpectedly passed")
	}
	if len(v.Timeline) == 0 {
		t.Fatal("failed verdict has no flight timeline")
	}
	if len(v.Timeline) > timelineTail {
		t.Fatalf("timeline has %d events, cap %d", len(v.Timeline), timelineTail)
	}
	kinds := map[string]bool{}
	for i, ev := range v.Timeline {
		kinds[ev.Kind] = true
		if i > 0 && ev.Seq <= v.Timeline[i-1].Seq {
			t.Fatalf("timeline not seq-ordered at %d", i)
		}
	}
	if !kinds["crash"] && !kinds["deliver"] && !kinds["timer"] {
		t.Fatalf("timeline lacks engine events: %v", kinds)
	}

	v2 := Run(sc)
	j1, _ := json.Marshal(v)
	j2, _ := json.Marshal(v2)
	if string(j1) != string(j2) {
		t.Fatal("verdict with timeline does not replay byte-identically")
	}
}

// TestCleanVerdictOmitsTimeline keeps passing verdicts compact.
func TestCleanVerdictOmitsTimeline(t *testing.T) {
	v := Run(DefaultScenario(ArchGrid, 1))
	if !v.OK {
		t.Skipf("seed 1 unexpectedly failing: %+v", v.Violations)
	}
	if v.Timeline != nil {
		t.Fatalf("clean verdict carries %d timeline events", len(v.Timeline))
	}
	b, _ := json.Marshal(v)
	if string(b) != "" && jsonHasKey(b, "timeline") {
		t.Fatal("clean verdict JSON includes timeline key")
	}
}

func jsonHasKey(b []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

package chaos

import (
	"sort"

	"decor/internal/rng"
	"decor/internal/sim"
)

// FailureEvent is one scheduled sensor-hardware failure in a live
// traffic stream: at virtual time At (seconds from session start) the
// listed sensors die together. IDs are sorted; a sensor appears at most
// once across a whole schedule.
type FailureEvent struct {
	At  float64 `json:"at"`
	IDs []int   `json:"ids"`
}

// TrafficFromPlan turns a seeded fault plan into a live failure-traffic
// schedule for a field session: up to `events` batches of 1–3 victims
// sampled without replacement from ids, at increasing times inside the
// plan's fault horizon (plan.Until). This is the same severity
// philosophy as BoundedPlan — bounded, seeded, replayable — applied to
// sensor hardware instead of the message layer, so `decor-load
// -sessions` and the session soak drive live fields with exactly the
// fault distribution the chaos suite proves survivable. Identical
// (plan.Seed, plan.Until, ids, events) inputs yield identical schedules.
//
// Like the selfheal saboteur, at most a quarter of the population dies
// over one schedule: restoration traffic should exercise repair, not
// annihilate the field.
func TrafficFromPlan(plan sim.FaultPlan, ids []int, events int) []FailureEvent {
	horizon := float64(plan.Until)
	if horizon <= 0 {
		horizon = 40 // the deployment-arch fault window
	}
	r := rng.New(plan.Seed ^ 0x1fa11)
	pool := append([]int(nil), ids...)
	budget := len(ids) / 4
	if budget < 1 {
		budget = 1
	}

	var out []FailureEvent
	killed := 0
	for e := 0; e < events && len(pool) > 0 && killed < budget; e++ {
		k := 1 + r.Intn(3)
		if k > len(pool) {
			k = len(pool)
		}
		if k > budget-killed {
			k = budget - killed
		}
		ev := FailureEvent{}
		for j := 0; j < k; j++ {
			i := r.Intn(len(pool))
			ev.IDs = append(ev.IDs, pool[i])
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
		sort.Ints(ev.IDs)
		ev.At = r.Range(0.5, horizon)
		out = append(out, ev)
		killed += k
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

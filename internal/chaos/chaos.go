// Package chaos is the property-testing harness over the fault-injection
// layer in internal/sim: it builds a deterministic world for one of the
// protocol architectures (grid DECOR deployment, Voronoi DECOR
// deployment, or the self-healing monitored field), installs a seeded
// sim.FaultPlan, drives the run to completion while the invariant
// checker watches, and returns a machine-readable Verdict with a SHA-256
// hash of the event trace. Identical scenarios replay byte-identically,
// so any failing seed reported by the fuzzer, the property tests, or
// `make chaos-smoke` can be handed to cmd/decor-chaos for a post-mortem.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/obs"
	"decor/internal/partition"
	"decor/internal/protocol"
	"decor/internal/rng"
	"decor/internal/sim"
	"decor/internal/sim/invariant"
	"decor/internal/snap"
)

// timelineTail bounds the flight-recorder excerpt attached to a failed
// verdict: the newest events leading up to the failure.
const timelineTail = 100

// Architecture names accepted by Run.
const (
	ArchGrid     = "grid"
	ArchVoronoi  = "voronoi"
	ArchSelfheal = "selfheal"
)

// Archs lists the supported architectures in canonical order.
func Archs() []string { return []string{ArchGrid, ArchVoronoi, ArchSelfheal} }

// saboteurActor injects sensor hardware failures in the selfheal
// scenario. It sits just below the invariant watchdog, outside every
// protocol ID bank, and is never a crash or partition target.
const saboteurActor = invariant.WatchdogActor - 1

// Scenario fully determines one chaos run: world geometry, protocol
// parameters, and the fault plan. Two Runs of an identical Scenario
// produce byte-identical traces and equal Verdicts.
type Scenario struct {
	Arch string        `json:"arch"`
	Seed uint64        `json:"seed"`
	Plan sim.FaultPlan `json:"plan"`
	Loss float64       `json:"loss"` // uniform loss rate on top of the plan

	// World geometry: Points sample points (Halton) over a Field×Field
	// square, k-coverage with sensing radius Rs.
	Field    float64 `json:"field"`
	Points   int     `json:"points"`
	K        int     `json:"k"`
	Rs       float64 `json:"rs"`
	Rc       float64 `json:"rc"`        // voronoi communication radius
	CellSize float64 `json:"cell_size"` // grid + selfheal partition

	Latency sim.Time `json:"latency"`
	Period  sim.Time `json:"period"` // leader/node wake-up period

	// Selfheal-only: heartbeat period, timeout multiplier, run horizon,
	// and the number of sensor hardware failures injected.
	Tc          sim.Time `json:"tc"`
	TimeoutMult int      `json:"timeout_mult"`
	Horizon     sim.Time `json:"horizon"`
	Failures    int      `json:"failures"`

	// Budget is the invariant ceiling on deployed sensors; 0 means the
	// default 4·K·Points (comfortably above the k·N theoretical bound,
	// low enough to catch runaway placement).
	Budget int `json:"budget"`
}

// DefaultScenario returns the canonical scenario for an architecture and
// seed: fixed world geometry plus a seed-derived bounded fault plan.
func DefaultScenario(arch string, seed uint64) Scenario {
	sc := Scenario{
		Arch:        arch,
		Seed:        seed,
		Field:       30,
		Points:      100,
		K:           2,
		Rs:          4,
		Rc:          8,
		CellSize:    5,
		Latency:     0.05,
		Period:      1,
		Tc:          1,
		TimeoutMult: 3,
		Horizon:     120,
		Failures:    6,
	}
	sc.Plan = BoundedPlan(sc)
	return sc
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Budget == 0 {
		sc.Budget = 4 * sc.K * sc.Points
	}
	return sc
}

// faultHorizon is the probabilistic-fault window for the architecture:
// deployment runs get a fixed 40 virtual seconds of weather, the
// selfheal run gets the first third of its horizon so coverage has time
// to recover before the final check.
func (sc Scenario) faultHorizon() sim.Time {
	if sc.Arch == ArchSelfheal {
		return sc.Horizon / 3
	}
	return 40
}

// ActorUniverse returns the engine actor IDs that crashes and partitions
// may target under this scenario's architecture, ascending.
func (sc Scenario) ActorUniverse() []int {
	var ids []int
	switch sc.Arch {
	case ArchVoronoi:
		// Early sensor IDs; later ones may never exist under some seeds,
		// and crashing a never-registered actor is a harmless no-op.
		for id := 0; id < 40; id++ {
			ids = append(ids, protocol.SensorActor(id))
		}
	case ArchSelfheal:
		side := int(sc.Field/sc.CellSize) + 1
		for c := 0; c < side*side; c++ {
			ids = append(ids, protocol.MonitorActor(c))
		}
	default: // grid
		cells := partition.NewGrid(geom.Square(sc.Field), sc.CellSize).NumCells()
		for c := 0; c < cells; c++ {
			ids = append(ids, protocol.LeaderActor(c))
		}
	}
	return ids
}

// BoundedPlan derives a seeded fault plan inside the severity bound
// (sim.FaultPlan.Bounded, DESIGN.md §10) for the scenario's
// architecture: delay, duplication, and an escapable burst channel under
// a finite horizon, a few crashes aimed at the architecture's actors,
// and a healing partition. Selfheal monitor crashes always restart —
// the monitored field has no monitor re-election, so a permanent monitor
// crash is outside the bound (and exactly the regression the invariant
// suite plants on purpose).
func BoundedPlan(sc Scenario) sim.FaultPlan {
	r := rng.New(sc.Seed ^ 0xc4a05)
	horizon := sc.faultHorizon()
	plan := sim.FaultPlan{
		Seed:      sc.Seed,
		Until:     horizon,
		DelayProb: r.Range(0, 0.4),
		DelayMax:  sim.Time(r.Range(0.1, 3*float64(sc.Period))),
		DupProb:   r.Range(0, 0.3),
	}
	if r.Bool(0.6) {
		plan.Burst = &sim.GilbertElliott{
			PGoodToBad: r.Range(0.01, 0.2),
			PBadToGood: r.Range(0.05, 0.5),
			LossGood:   r.Range(0, 0.05),
			LossBad:    r.Range(0.3, 0.95),
		}
	}
	universe := sc.ActorUniverse()
	for _, i := range r.Sample(len(universe), r.Intn(3)) {
		at := sim.Time(r.Range(0.5, 0.6*float64(horizon)))
		c := sim.Crash{Actor: universe[i], At: at}
		if sc.Arch == ArchSelfheal || r.Bool(0.5) {
			c.RestartAt = at + sim.Time(r.Range(1, 0.2*float64(horizon)))
		}
		plan.Crashes = append(plan.Crashes, c)
	}
	if r.Bool(0.5) && len(universe) >= 2 {
		from := sim.Time(r.Range(0, 0.4*float64(horizon)))
		until := from + sim.Time(r.Range(1, 0.5*float64(horizon)))
		if until > horizon {
			until = horizon
		}
		var a, b []int
		for i, id := range universe {
			if i%2 == 0 {
				a = append(a, id)
			} else {
				b = append(b, id)
			}
		}
		plan.Partitions = []sim.Partition{{From: from, Until: until, A: a, B: b}}
	}
	return plan
}

// DecodeScenario maps arbitrary fuzz bytes onto a Scenario whose plan is
// bounded BY CONSTRUCTION: every probability is clamped into the
// severity region, the burst channel always keeps its escape path, and
// partition windows heal within the horizon. Short (or empty) input
// decodes to a valid low-severity scenario, so the fuzzer can only
// explore the space the property suite promises to survive.
func DecodeScenario(data []byte) Scenario {
	cur := cursor{data: data}
	arch := []string{ArchGrid, ArchVoronoi}[int(cur.b())%2]
	sc := DefaultScenario(arch, cur.u64())
	horizon := sc.faultHorizon()
	p := sim.FaultPlan{
		Seed:      sc.Seed,
		Until:     horizon,
		DelayProb: cur.f() * 0.5,
		DelayMax:  sim.Time(0.05 + cur.f()*2),
		DupProb:   cur.f() * 0.5,
	}
	if cur.b()%2 == 1 {
		p.Burst = &sim.GilbertElliott{
			PGoodToBad: cur.f() * 0.2,
			PBadToGood: 0.05 + cur.f()*0.75,
			LossGood:   cur.f() * 0.1,
			LossBad:    cur.f() * 0.95,
		}
	}
	universe := sc.ActorUniverse()
	for i := int(cur.b()) % 4; i > 0; i-- {
		at := sim.Time(0.5 + cur.f()*0.6*float64(horizon))
		c := sim.Crash{Actor: universe[int(cur.b())%len(universe)], At: at}
		if cur.b()%2 == 1 {
			c.RestartAt = at + sim.Time(1+cur.f()*0.2*float64(horizon))
		}
		p.Crashes = append(p.Crashes, c)
	}
	if cur.b()%2 == 1 && len(universe) >= 2 {
		from := sim.Time(cur.f() * 0.4 * float64(horizon))
		until := from + sim.Time(1+cur.f()*0.5*float64(horizon))
		if until > horizon {
			until = horizon
		}
		var a, b []int
		for i, id := range universe {
			if i%2 == 0 {
				a = append(a, id)
			} else {
				b = append(b, id)
			}
		}
		p.Partitions = []sim.Partition{{From: from, Until: until, A: a, B: b}}
	}
	sc.Plan = p
	sc.Loss = cur.f() * 0.3
	return sc
}

// cursor consumes fuzz bytes; past the end it yields zeros, so any
// prefix of a valid encoding is itself valid.
type cursor struct {
	data []byte
	i    int
}

func (c *cursor) b() byte {
	if c.i >= len(c.data) {
		return 0
	}
	v := c.data[c.i]
	c.i++
	return v
}

func (c *cursor) f() float64 { return float64(c.b()) / 255 }

func (c *cursor) u64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(c.b())
	}
	return v
}

// Verdict is the machine-readable outcome of one chaos run.
type Verdict struct {
	Arch       string                `json:"arch"`
	Seed       uint64                `json:"seed"`
	OK         bool                  `json:"ok"` // converged and invariant-clean
	Converged  bool                  `json:"converged"`
	Violations []invariant.Violation `json:"violations,omitempty"`
	TraceHash  string                `json:"trace_hash"`
	TraceLines int                   `json:"trace_lines"`
	Placed     int                   `json:"placed"`
	Seeds      int                   `json:"seeds"`   // base-station seeds (deploy archs)
	Repairs    int                   `json:"repairs"` // autonomous repairs (selfheal)
	FinalTime  sim.Time              `json:"final_time"`
	Stats      sim.Stats             `json:"stats"`
	// Timeline is the flight-recorder tail (newest timelineTail events)
	// of a FAILED run — the structured post-mortem decor-chaos prints.
	// Clean runs omit it to keep verdicts compact. Events carry only
	// virtual time and per-run sequence numbers, so replays of the same
	// scenario produce byte-identical timelines.
	Timeline []obs.FlightEvent `json:"timeline,omitempty"`
}

// Run executes the scenario to completion and returns its verdict.
// It panics only on a malformed scenario (unknown arch, invalid plan) —
// protocol misbehaviour under faults is reported in the verdict, never
// thrown.
func Run(sc Scenario) Verdict { return RunReg(sc, nil) }

// RunReg is Run with an explicit obs registry for the engine's
// instruments (nil: the process default). Sweep passes per-worker
// registry shards so parallel scenarios do not contend on shared
// counters; verdicts are unaffected — instruments never feed the trace.
func RunReg(sc Scenario, reg *obs.Registry) Verdict {
	sc = sc.withDefaults()
	v, err := dispatch(sc, reg, nil, nil)
	if err != nil {
		// Unreachable: without a snapshot there is nothing to mis-decode.
		panic(fmt.Sprintf("chaos: %v", err))
	}
	return v
}

// world builds the deterministic sample-point field and a traced engine
// with a per-run flight recorder (single shard: the engine is the only
// writer, so event sequence numbers are deterministic).
func (sc Scenario) world(reg *obs.Registry) (*coverage.Map, *sim.Engine, hash.Hash, *int, *obs.FlightRecorder) {
	pts := lowdisc.Halton{}.Points(sc.Points, geom.Square(sc.Field))
	m := coverage.New(geom.Square(sc.Field), pts, sc.Rs, sc.K)
	eng := sim.NewEngine(sc.Latency)
	if reg != nil {
		eng.SetRegistry(reg)
	}
	fr := obs.NewFlightRecorder(1, 512)
	eng.SetFlight(fr.Shard(0))
	h := sha256.New()
	lines := new(int)
	// The engine formats each line into a reused buffer (byte-identical
	// to the former fmt composition — the golden hashes in replay_test.go
	// prove it), so hashing the trace allocates nothing per event.
	eng.SetTraceLine(func(line []byte) {
		h.Write(line)
		*lines++
	})
	if sc.Loss > 0 {
		eng.SetLossRate(sc.Loss, sc.Seed^0x10c0)
	}
	eng.SetFaults(sc.Plan)
	return m, eng, h, lines, fr
}

func verdict(sc Scenario, eng *sim.Engine, chk *invariant.Checker, converged bool, h hash.Hash, lines int, fr *obs.FlightRecorder) Verdict {
	st := eng.Totals() // SentBy omitted: verdicts stay compact and comparable
	v := Verdict{
		Arch:       sc.Arch,
		Seed:       sc.Seed,
		Converged:  converged,
		Violations: chk.Violations(),
		TraceHash:  hex.EncodeToString(h.Sum(nil)),
		TraceLines: lines,
		FinalTime:  eng.Now(),
		Stats:      st,
	}
	v.OK = v.Converged && len(v.Violations) == 0
	if !v.OK {
		v.Timeline = obs.Tail(fr.Dump(), timelineTail)
	}
	return v
}

// runDeploy drives an event-driven deployment (grid or Voronoi) exactly
// like protocol.RunDeployment, but re-runs the accounting and budget
// invariants at every quiescent point and the k-coverage invariant at
// the end. The seed fallback guarantees convergence under any bounded
// plan: each drain that leaves coverage deficient places at least one
// sensor at a deficient point, so total deficit strictly decreases.
// With a non-nil ck it emits snapshots at virtual-time boundaries; with
// a non-nil res it restores one instead of starting fresh.
func runDeploy(sc Scenario, reg *obs.Registry, ck *ckpt, res *snap.Reader) (Verdict, error) {
	m, eng, h, lines, fr := sc.world(reg)

	var start func()
	var seed func() bool
	var placed func() int
	var actorFor func(point int) int
	var encodeWorld func(*snap.Writer)
	var restoreWorld func(*snap.Reader) error
	if sc.Arch == ArchGrid {
		w := protocol.NewWorld(m, sc.CellSize, eng, sc.Period)
		start = w.Start
		seed = w.Seed
		placed = func() int { return len(w.PlacementLog) }
		actorFor = func(point int) int {
			return protocol.LeaderActor(w.Part.CellIndex(m.Point(point)))
		}
		encodeWorld = w.EncodeState
		restoreWorld = w.RestoreState
	} else {
		w := protocol.NewVoronoiWorld(m, sc.Rc, eng, sc.Period)
		start = w.Start
		seed = w.Seed
		placed = func() int { return len(w.PlacementLog) }
		actorFor = nil // points have no statically responsible node
		encodeWorld = w.EncodeState
		restoreWorld = w.RestoreState
	}

	chk := invariant.New().
		Add(invariant.AccountingName, invariant.Accounting(eng)).
		Add(invariant.BudgetName, invariant.Budget(m, sc.Budget))

	seeds := 0
	if res != nil {
		// Restore over the fresh world: the engine snapshot wholesale
		// replaces the queue/RNG state world() just initialized, and the
		// protocol worlds re-attach their actors without OnStart.
		if err := restoreCommon(res, h, lines, eng, m); err != nil {
			return Verdict{}, err
		}
		seeds = res.Int()
		if err := restoreWorld(res); err != nil {
			return Verdict{}, err
		}
		chk.RestoreState(res)
		if err := res.Close(); err != nil {
			return Verdict{}, err
		}
	} else {
		start()
	}
	if ck != nil {
		ck.snap = func() []byte {
			w := encodeCommon(sc, h, *lines, eng, m)
			w.Int(seeds)
			encodeWorld(w)
			chk.EncodeState(w)
			return w.Seal()
		}
		ck.alignAfter(eng.Now())
	}
	// A restored run always finishes its interrupted drain first: the
	// checkpoint may have been cut after the last placement made coverage
	// whole but while notifications were still in flight, and the straight
	// run delivers those before its loop re-checks coverage.
	for res != nil || !m.FullyCovered() {
		res = nil
		ck.drive(eng, sim.Inf)
		chk.RunAt(eng.Now())
		if m.FullyCovered() || m.NumSensors() > sc.Budget {
			break
		}
		if !seed() {
			break
		}
		seeds++
	}
	// Deployment over: coverage must hold now (the "eventually" is the
	// run itself).
	chk.Add(invariant.KCoverageName, invariant.KCoverage(m, actorFor))
	chk.RunAt(eng.Now())

	v := verdict(sc, eng, chk, m.FullyCovered(), h, *lines, fr)
	v.Placed = placed()
	v.Seeds = seeds
	return v, nil
}

// saboteur fails sensors (hardware death, not actor crash) at scheduled
// virtual times in the selfheal scenario.
type saboteur struct {
	field   *protocol.MonitoredField
	victims []int
	times   []sim.Time
	// failed records victims whose failure has fired — the ground truth
	// the liveness invariant is checked against, since the coverage map
	// keeps a dead sensor until a monitor detects the silence.
	failed map[int]bool
}

func (s *saboteur) OnStart(ctx *sim.Context) {
	for i, t := range s.times {
		ctx.SetTimer(t, fmt.Sprintf("fail:%d", i))
	}
}

func (s *saboteur) OnMessage(*sim.Context, sim.Message) {}

func (s *saboteur) OnTimer(_ *sim.Context, tag string) {
	var i int
	if _, err := fmt.Sscanf(tag, "fail:%d", &i); err == nil {
		s.failed[s.victims[i]] = true
		s.field.Fail(s.victims[i])
	}
}

// liveCoverage returns the physical coverage truth: the map minus failed
// sensors that no monitor has detected (and removed) yet.
func (s *saboteur) liveCoverage(m *coverage.Map) *coverage.Map {
	truth := m.Clone()
	for id := range s.failed {
		if _, ok := truth.SensorPos(id); ok {
			truth.RemoveSensor(id)
		}
	}
	return truth
}

// runSelfheal deploys a covered field deterministically, attaches the
// monitored-field protocol, injects seeded sensor failures in the first
// third of the horizon, and requires coverage to be whole again by the
// end while the watchdog re-checks accounting and the budget throughout.
// With a non-nil ck it emits snapshots at virtual-time boundaries; with
// a non-nil res it restores one instead of starting fresh.
func runSelfheal(sc Scenario, reg *obs.Registry, ck *ckpt, res *snap.Reader) (Verdict, error) {
	m, eng, h, lines, fr := sc.world(reg)

	var f *protocol.MonitoredField
	sab := &saboteur{failed: map[int]bool{}}
	if res != nil {
		if err := restoreCommon(res, h, lines, eng, m); err != nil {
			return Verdict{}, err
		}
		f = protocol.NewMonitoredField(m, eng, sc.CellSize, sc.Tc, sc.TimeoutMult)
		sab.field = f
		for n := res.CollectionLen(); n > 0; n-- {
			sab.victims = append(sab.victims, res.Int())
			sab.times = append(sab.times, sim.Time(res.F64()))
		}
		for n := res.CollectionLen(); n > 0; n-- {
			sab.failed[res.Int()] = true
		}
		if err := f.RestoreState(res); err != nil {
			return Verdict{}, err
		}
		// The saboteur's fail timers live in the restored queue.
		eng.RegisterRestored(saboteurActor, sab)
	} else {
		// Deterministic initial deployment: greedily drop a sensor on the
		// lowest-index uncovered point until every point is k-covered. The
		// scan reads counts directly instead of materializing the uncovered
		// set per iteration — same placement sequence, zero allocations.
		next := 0
		for !m.FullyCovered() {
			idx := -1
			for i := 0; i < m.NumPoints(); i++ {
				if m.Count(i) < m.K() {
					idx = i
					break
				}
			}
			m.AddSensor(next, m.Point(idx))
			next++
		}

		f = protocol.NewMonitoredField(m, eng, sc.CellSize, sc.Tc, sc.TimeoutMult)
		f.Start()

		// Seeded victims among the deployed sensors, all failing inside the
		// fault horizon so healing has the rest of the run.
		ids := m.SensorIDs() // already ascending
		r := rng.New(sc.Seed ^ 0x5ab07)
		n := sc.Failures
		if n > len(ids)/4 {
			n = len(ids) / 4
		}
		sab.field = f
		for _, i := range r.Sample(len(ids), n) {
			sab.victims = append(sab.victims, ids[i])
			sab.times = append(sab.times, sim.Time(r.Range(0.5, float64(sc.faultHorizon()))))
		}
		eng.Register(saboteurActor, sab)
	}

	// Coverage is checked against LIVE sensors: a failed sensor still sits
	// in the map until its monitor detects the silence, but it no longer
	// senses — so a crashed monitor that never detects (and never heals)
	// is a real k-coverage breach, not a clean run.
	liveKCoverage := func(now sim.Time) []invariant.Violation {
		return invariant.KCoverage(sab.liveCoverage(m), func(point int) int {
			return protocol.MonitorActor(f.CellOf(m.Point(point)))
		})(now)
	}
	chk := invariant.New().
		Add(invariant.AccountingName, invariant.Accounting(eng)).
		Add(invariant.BudgetName, invariant.Budget(m, sc.Budget)).
		Add(invariant.KCoverageName, invariant.After(sc.Horizon, liveKCoverage))
	if res != nil {
		chk.RestoreState(res)
		if err := res.Close(); err != nil {
			return Verdict{}, err
		}
		chk.WatchRestored(eng, sc.Tc)
	} else {
		chk.Watch(eng, sc.Tc)
	}

	if ck != nil {
		ck.snap = func() []byte {
			w := encodeCommon(sc, h, *lines, eng, m)
			w.Int(len(sab.victims))
			for i := range sab.victims {
				w.Int(sab.victims[i])
				w.F64(float64(sab.times[i]))
			}
			failed := make([]int, 0, len(sab.failed))
			for id := range sab.failed {
				failed = append(failed, id)
			}
			sort.Ints(failed)
			w.Int(len(failed))
			for _, id := range failed {
				w.Int(id)
			}
			f.EncodeState(w)
			chk.EncodeState(w)
			return w.Seal()
		}
		ck.alignAfter(eng.Now())
	}

	ck.drive(eng, sc.Horizon)
	chk.RunAt(sc.Horizon) // final check, with the coverage gate open

	v := verdict(sc, eng, chk, sab.liveCoverage(m).FullyCovered(), h, *lines, fr)
	v.Placed = m.NumSensors()
	v.Repairs = len(f.Repairs)
	return v, nil
}

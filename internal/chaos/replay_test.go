package chaos

import (
	"encoding/json"
	"testing"
)

// goldenTraceHashes are the full SHA-256 trace hashes of the canonical
// scenarios, captured from `decor-chaos -arch all -seeds 4 -json` BEFORE
// the engine overhaul (4-ary queue, pooling, coalesced obs). The
// overhauled engine must replay every trace byte-identically: the event
// order is fixed by the (time, seq) total order, so any deviation here
// means the queue, the fault delivery path, or the RNG draw order
// changed observable behaviour.
var goldenTraceHashes = map[string]map[uint64]string{
	ArchGrid: {
		1: "4aa9662443f11bb313f1799809fd6d1ff71ad76404cf1bbd3496510e1b7daed3",
		2: "684954241625af6ea240dc83307a460b732b693982ca32d3fe0fdfeee40c72fe",
		3: "688593b2a44d03509588b92e670cc6a7c200ad8c2329a63f6bca9552868ec72b",
		4: "4fbfa96146d81ad0aec8cbbd947572e83b1574a9be8b21431f32544320dede28",
	},
	ArchVoronoi: {
		1: "25b1ccbeab577db0dd8f2cb4134f1ce6af50e3ed3473e8b46c99e20869df4bb4",
		2: "b8a030266f312f01b17493e9e248d9911f304019570de92eb31231290a0f9eb5",
		3: "28bfb0aaf564b35071c8722586ca3814d968caf12cbbf7cf5e21efc543224c66",
		4: "a6b7a9ac3179862d85ec206ae8dca1bc683b05cac371d53058205e0147e31cef",
	},
	ArchSelfheal: {
		1: "ed0fb69c713f6a2990ea346e1dc20d0348b29acf8abc1f50bb7c137106f7835b",
		2: "f9231f61eef5ac9eb7946970be0a26ac6b80d033e44969039335fb5337e26415",
		3: "cfb65eefa6e57e96be5286ca983315227f533921e5619a5b686383a4c9b48625",
		4: "91799d8c33fa4d3f4cf38e548ada2eda3bd465edc6079873c3222b529a22c67f",
	},
}

// TestTraceHashesMatchPreOverhaulGolden replays the canonical scenarios
// and compares against the pre-overhaul hashes above.
func TestTraceHashesMatchPreOverhaulGolden(t *testing.T) {
	for _, arch := range Archs() {
		for seed, want := range goldenTraceHashes[arch] {
			v := Run(DefaultScenario(arch, seed))
			if v.TraceHash != want {
				t.Errorf("%s seed %d: trace hash %s, pre-overhaul golden %s", arch, seed, v.TraceHash, want)
			}
		}
	}
}

// TestSweepParallelIdentical is the seed-sharding determinism property:
// the sweep's verdicts (including replay verification) must be
// byte-identical for any worker count.
func TestSweepParallelIdentical(t *testing.T) {
	var scs []Scenario
	for _, arch := range Archs() {
		for seed := uint64(1); seed <= 3; seed++ {
			scs = append(scs, DefaultScenario(arch, seed))
		}
	}
	marshal := func(rs []SweepResult) string {
		b, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := marshal(Sweep(scs, true, 1))
	for _, workers := range []int{2, 4, 8} {
		if got := marshal(Sweep(scs, true, workers)); got != want {
			t.Errorf("workers=%d: sweep results diverged from sequential", workers)
		}
	}
}

// TestSweepReportsReplayDivergence would only fire on a real determinism
// bug; here it checks the plumbing — verify off always reports ReplayOK.
func TestSweepNoVerify(t *testing.T) {
	rs := Sweep([]Scenario{DefaultScenario(ArchGrid, 1)}, false, 1)
	if len(rs) != 1 || !rs[0].ReplayOK {
		t.Fatalf("no-verify sweep = %+v", rs)
	}
	if !rs[0].Verdict.OK {
		t.Errorf("canonical grid seed 1 should pass, got %+v", rs[0].Verdict)
	}
}

package chaos

import (
	"errors"
	"testing"

	"decor/internal/sim"
	"decor/internal/snap"
)

// realCheckpoint produces a genuine mid-run snapshot for the fuzz seed
// corpus: the interesting byte layout is the real one, and the committed
// corpus under testdata/fuzz covers the envelope-violation classes.
func realCheckpoint(tb testing.TB, arch string) []byte {
	tb.Helper()
	var data []byte
	_ = RunCheckpointed(DefaultScenario(arch, 1), 5, func(_ sim.Time, d []byte) {
		if data == nil {
			data = d
		}
	})
	if data == nil {
		tb.Fatalf("%s: no checkpoint emitted", arch)
	}
	return data
}

// FuzzSnapshotRoundTrip drives arbitrary bytes — seeded with real
// checkpoints of every architecture and their corrupted, truncated and
// version-bumped variants — through Resume. The contract: Resume either
// rejects with a typed snap error or completes a valid run; it never
// panics and never silently mis-restores (an accepted snapshot must
// carry a structurally complete verdict).
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, arch := range Archs() {
		real := realCheckpoint(f, arch)
		f.Add(real)
		f.Add(real[:len(real)/2])     // truncated
		f.Add(real[:4])               // magic only
		bumped := append([]byte(nil), real...)
		bumped[4]++
		f.Add(bumped) // future version
		flipped := append([]byte(nil), real...)
		flipped[len(flipped)/3] ^= 0x80
		f.Add(flipped) // corrupted body
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Resume(data, 0, nil)
		if err != nil {
			for _, typed := range []error{
				snap.ErrMagic, snap.ErrVersion, snap.ErrCorrupt,
				snap.ErrTruncated, snap.ErrMalformed,
			} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped rejection: %v", err)
		}
		// Accepted: the restore must have been complete, not partial.
		switch v.Arch {
		case ArchGrid, ArchVoronoi, ArchSelfheal:
		default:
			t.Fatalf("accepted snapshot with bogus arch %q", v.Arch)
		}
		if v.TraceHash == "" {
			t.Fatal("accepted snapshot produced no trace hash")
		}
	})
}

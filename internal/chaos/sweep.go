package chaos

import (
	"bytes"
	"encoding/json"

	"decor/internal/shard"
)

// This file shards chaos scenarios across the repo-wide worker pool.
// Every Run builds its own world, engine, RNG streams, and invariant
// checker, so scenarios are independent by construction; the only shared
// state is the process-wide obs registry, whose instruments are atomic.
// Results land in per-scenario slots and are read back in input order, so
// a sweep's output — every Verdict, trace hash, and replay bit — is
// byte-identical for any worker count, including the sequential one
// (TestSweepParallelIdentical locks this in).

// SweepResult is the outcome of one sweep cell.
type SweepResult struct {
	Verdict  Verdict
	ReplayOK bool // replay matched (always true when verify was off)
}

// Sweep runs every scenario across up to `workers` goroutines
// (non-positive: GOMAXPROCS) and returns results in input order. With
// verify set, each scenario is run twice and ReplayOK reports whether the
// two verdicts were byte-identical — the determinism double-run
// `decor-chaos` and `make chaos-smoke` gate on.
func Sweep(scs []Scenario, verify bool, workers int) []SweepResult {
	out := make([]SweepResult, len(scs))
	shard.ForEach(len(scs), workers, func(i int) {
		v := Run(scs[i])
		res := SweepResult{Verdict: v, ReplayOK: true}
		if verify {
			v2 := Run(scs[i])
			j1, _ := json.Marshal(v)
			j2, _ := json.Marshal(v2)
			res.ReplayOK = bytes.Equal(j1, j2)
		}
		out[i] = res
	})
	return out
}

package chaos

import (
	"bytes"
	"encoding/json"
	"sync"

	"decor/internal/obs"
	"decor/internal/shard"
)

// This file shards chaos scenarios across the repo-wide worker pool.
// Every Run builds its own world, engine, RNG streams, and invariant
// checker, so scenarios are independent by construction; engines write
// their instruments to per-worker shards of the process registry (merged
// at scrape), so parallel scenarios do not contend on shared counters.
// Results land in per-scenario slots and are read back in input order, so
// a sweep's output — every Verdict, trace hash, and replay bit — is
// byte-identical for any worker count, including the sequential one
// (TestSweepParallelIdentical locks this in).

// sweepShards caches registry shards by worker index so repeated Sweeps
// reuse them — Registry.Shard attaches a child permanently, so growth
// must be bounded by the maximum worker count, not the sweep count.
var sweepShards struct {
	mu     sync.Mutex
	shards []*obs.Registry
}

func sweepShard(worker int) *obs.Registry {
	sweepShards.mu.Lock()
	defer sweepShards.mu.Unlock()
	for len(sweepShards.shards) <= worker {
		sweepShards.shards = append(sweepShards.shards, obs.Default().Shard())
	}
	return sweepShards.shards[worker]
}

// SweepResult is the outcome of one sweep cell.
type SweepResult struct {
	Verdict  Verdict
	ReplayOK bool // replay matched (always true when verify was off)
}

// Sweep runs every scenario across up to `workers` goroutines
// (non-positive: GOMAXPROCS) and returns results in input order. With
// verify set, each scenario is run twice and ReplayOK reports whether the
// two verdicts were byte-identical — the determinism double-run
// `decor-chaos` and `make chaos-smoke` gate on.
func Sweep(scs []Scenario, verify bool, workers int) []SweepResult {
	out := make([]SweepResult, len(scs))
	shard.ForEachW(len(scs), workers, func(worker, i int) {
		reg := sweepShard(worker)
		v := RunReg(scs[i], reg)
		res := SweepResult{Verdict: v, ReplayOK: true}
		if verify {
			v2 := RunReg(scs[i], reg)
			j1, _ := json.Marshal(v)
			j2, _ := json.Marshal(v2)
			res.ReplayOK = bytes.Equal(j1, j2)
		}
		out[i] = res
	})
	return out
}

package chaos

import (
	"encoding"
	"encoding/json"
	"fmt"
	"hash"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/sim"
	"decor/internal/snap"
)

// Checkpoint/resume for chaos runs. A checkpoint is a sealed snap
// envelope capturing the complete run state at a virtual-time boundary —
// scenario, mid-stream trace-hash state, engine (clock, queue, RNGs,
// stats), coverage sensors, protocol world, saboteur and invariant
// checker — such that Resume continues the run with the SAME remaining
// event sequence, trace bytes and verdict as the uninterrupted original.
// The differential parity suite (checkpoint_test.go) proves byte
// equality against the golden replay hashes at randomized cut points;
// the fuzz suite proves corrupted envelopes are rejected with typed
// errors, never a panic.

// CheckpointFunc receives each checkpoint: the virtual-time boundary it
// represents and the sealed snapshot bytes. The callback must not retain
// the engine — the snapshot is self-contained.
type CheckpointFunc func(at sim.Time, snapshot []byte)

// RunCheckpointed is Run, additionally emitting a snapshot every `every`
// virtual seconds (no checkpoints if every <= 0 or fn is nil). The run's
// verdict — including the trace hash — is identical to Run's: snapshots
// are taken between events, never by slicing the clock in a way the
// straight run would not.
func RunCheckpointed(sc Scenario, every sim.Time, fn CheckpointFunc) Verdict {
	sc = sc.withDefaults()
	v, err := dispatch(sc, nil, newCkpt(every, fn), nil)
	if err != nil {
		// Unreachable: fresh runs decode nothing.
		panic(fmt.Sprintf("chaos: %v", err))
	}
	return v
}

// Resume continues a checkpointed run from snapshot bytes, emitting
// further checkpoints every `every` virtual seconds (none if <= 0). The
// resumed run's verdict equals the uninterrupted run's. Corrupt,
// truncated or version-skewed snapshots are rejected with a typed
// snap error.
func Resume(data []byte, every sim.Time, fn CheckpointFunc) (Verdict, error) {
	return ResumeReg(data, nil, every, fn)
}

// ResumeReg is Resume with an explicit obs registry (nil: the process
// default), mirroring RunReg.
func ResumeReg(data []byte, reg *obs.Registry, every sim.Time, fn CheckpointFunc) (Verdict, error) {
	r, err := snap.Open(data)
	if err != nil {
		return Verdict{}, err
	}
	js := r.Bytes()
	if err := r.Err(); err != nil {
		return Verdict{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(js, &sc); err != nil {
		return Verdict{}, fmt.Errorf("%w: scenario: %v", snap.ErrMalformed, err)
	}
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return Verdict{}, fmt.Errorf("%w: scenario: %v", snap.ErrMalformed, err)
	}
	return dispatch(sc, reg, newCkpt(every, fn), r)
}

func dispatch(sc Scenario, reg *obs.Registry, ck *ckpt, res *snap.Reader) (Verdict, error) {
	switch sc.Arch {
	case ArchGrid, ArchVoronoi:
		return runDeploy(sc, reg, ck, res)
	case ArchSelfheal:
		return runSelfheal(sc, reg, ck, res)
	default:
		panic(fmt.Sprintf("chaos: unknown architecture %q", sc.Arch))
	}
}

// validate guards the constructor panics a resumed scenario could
// otherwise trip (world geometry, protocol timers, the fault plan). Run
// keeps its panic-on-misuse contract for programmatic scenarios; decoded
// ones must fail softly.
func (sc Scenario) validate() error {
	switch sc.Arch {
	case ArchGrid, ArchVoronoi, ArchSelfheal:
	default:
		return fmt.Errorf("unknown architecture %q", sc.Arch)
	}
	if sc.Field <= 0 || sc.Points < 1 || sc.Points > 1<<20 || sc.K < 1 || sc.Rs <= 0 {
		return fmt.Errorf("invalid field geometry (field=%v points=%d k=%d rs=%v)",
			sc.Field, sc.Points, sc.K, sc.Rs)
	}
	if sc.Latency < 0 || sc.Loss < 0 || sc.Loss > 1 || sc.Period <= 0 {
		return fmt.Errorf("invalid timing (latency=%v loss=%v period=%v)",
			sc.Latency, sc.Loss, sc.Period)
	}
	if sc.CellSize <= 0 {
		return fmt.Errorf("invalid cell size %v", sc.CellSize)
	}
	if sc.Arch == ArchVoronoi && sc.Rc < sc.Rs {
		return fmt.Errorf("rc %v below rs %v", sc.Rc, sc.Rs)
	}
	if sc.Arch == ArchSelfheal &&
		(sc.Tc <= 0 || sc.TimeoutMult < 2 || sc.Horizon <= 0 || sc.Failures < 0) {
		return fmt.Errorf("invalid selfheal parameters (tc=%v mult=%d horizon=%v failures=%d)",
			sc.Tc, sc.TimeoutMult, sc.Horizon, sc.Failures)
	}
	return sc.Plan.Validate()
}

// ckpt drives an engine toward a time bound while emitting snapshots at
// every-multiples of virtual time. A nil *ckpt (or zero period) is plain
// Engine.Run.
type ckpt struct {
	every sim.Time
	next  sim.Time
	fn    CheckpointFunc
	snap  func() []byte // bound by the run once its world exists
}

func newCkpt(every sim.Time, fn CheckpointFunc) *ckpt {
	if every <= 0 || fn == nil {
		return nil
	}
	return &ckpt{every: every, next: every, fn: fn}
}

// alignAfter moves the next boundary past the (restored) clock so a
// resumed run does not re-emit its past checkpoints.
func (c *ckpt) alignAfter(now sim.Time) {
	if c == nil {
		return
	}
	for c.next <= now {
		c.next += c.every
	}
}

// drive is Engine.Run(until) with checkpoint boundaries. It advances in
// head-event steps — Run(at) with at equal to the queue head's time
// never triggers Run's empty-queue clock jump, so the processed event
// sequence (and hence the trace) is exactly the straight run's; the
// final Run(until) reproduces the straight run's end-of-queue clock
// semantics, including the jump to a finite horizon.
func (c *ckpt) drive(eng *sim.Engine, until sim.Time) {
	if c == nil {
		eng.Run(until)
		return
	}
	for {
		at, ok := eng.NextEventTime()
		if !ok || at > until {
			break
		}
		if at > c.next {
			c.fn(c.next, c.snap())
			c.next += c.every
			continue
		}
		eng.Run(at)
	}
	eng.Run(until)
}

// encodeCommon starts a snapshot with the sections every architecture
// shares: scenario, trace-hash state, engine, coverage sensors. It
// panics only on wiring errors (unregistered payload codec) — a
// checkpoint of a healthy run cannot fail.
func encodeCommon(sc Scenario, h hash.Hash, lines int, eng *sim.Engine, m *coverage.Map) *snap.Writer {
	w := snap.NewWriter()
	js, err := json.Marshal(sc)
	if err != nil {
		panic(fmt.Sprintf("chaos: scenario marshal: %v", err))
	}
	w.Bytes(js)
	hb, err := h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("chaos: trace hash marshal: %v", err))
	}
	w.Bytes(hb)
	w.Int(lines)
	if err := eng.EncodeState(w); err != nil {
		panic(fmt.Sprintf("chaos: %v", err))
	}
	w.Int(m.NumSensors())
	m.VisitSensors(func(id int, p geom.Point, rs float64) {
		w.Int(id)
		w.F64(p.X)
		w.F64(p.Y)
		w.F64(rs)
	})
	return w
}

// restoreCommon decodes encodeCommon's sections onto the freshly built
// world: trace hash mid-state, line count, engine, sensors.
func restoreCommon(r *snap.Reader, h hash.Hash, lines *int, eng *sim.Engine, m *coverage.Map) error {
	hb := r.Bytes()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	um, ok := h.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("%w: trace hash does not support state restore", snap.ErrMalformed)
	}
	if err := um.UnmarshalBinary(hb); err != nil {
		return fmt.Errorf("%w: trace hash state: %v", snap.ErrMalformed, err)
	}
	*lines = n
	if err := eng.RestoreState(r); err != nil {
		return err
	}
	for cnt := r.CollectionLen(); cnt > 0; cnt-- {
		id := r.Int()
		p := geom.Point{X: r.F64(), Y: r.F64()}
		rs := r.F64()
		if err := r.Err(); err != nil {
			return err
		}
		if id < 0 || rs <= 0 {
			return fmt.Errorf("%w: sensor %d radius %v", snap.ErrMalformed, id, rs)
		}
		if _, exists := m.SensorPos(id); exists {
			return fmt.Errorf("%w: duplicate sensor id %d", snap.ErrMalformed, id)
		}
		m.AddSensorRadius(id, p, rs)
	}
	return r.Err()
}

package chaos

import (
	"errors"
	"reflect"
	"testing"

	"decor/internal/rng"
	"decor/internal/sim"
	"decor/internal/snap"
)

// stripTimeline removes the flight-recorder excerpt: a resumed run's
// recorder starts at the checkpoint, so only failed verdicts' timelines
// legitimately differ. Everything else must be byte-equal.
func stripTimeline(v Verdict) Verdict {
	v.Timeline = nil
	return v
}

// TestCheckpointedRunMatchesStraightRun: emitting checkpoints must not
// perturb the run at all — same trace hash, same verdict.
func TestCheckpointedRunMatchesStraightRun(t *testing.T) {
	for _, arch := range Archs() {
		for seed := uint64(1); seed <= 4; seed++ {
			sc := DefaultScenario(arch, seed)
			straight := stripTimeline(Run(sc))
			snaps := 0
			ck := stripTimeline(RunCheckpointed(sc, 7, func(at sim.Time, data []byte) {
				snaps++
				if len(data) == 0 {
					t.Fatalf("%s/%d: empty snapshot at t=%v", arch, seed, at)
				}
			}))
			if !reflect.DeepEqual(straight, ck) {
				t.Errorf("%s/%d: checkpointed verdict diverged:\nstraight: %+v\ncheckpointed: %+v",
					arch, seed, straight, ck)
			}
			// A run that outlives the first boundary must have cut there.
			if snaps == 0 && straight.FinalTime > 7 {
				t.Errorf("%s/%d: no checkpoints emitted over %v virtual seconds",
					arch, seed, straight.FinalTime)
			}
		}
	}
}

// TestResumeParity is the differential suite the snapshot layer answers
// to: snapshot -> restore -> run-to-end must equal run-straight-through
// for every architecture at randomized checkpoint periods, against the
// same golden hashes replay_test.go pins.
func TestResumeParity(t *testing.T) {
	r := rng.New(0xc4ec9)
	for _, arch := range Archs() {
		for seed := uint64(1); seed <= 4; seed++ {
			sc := DefaultScenario(arch, seed)
			straight := stripTimeline(Run(sc))

			// Randomized cut cadence: anywhere from sub-period to a large
			// fraction of the run.
			every := sim.Time(r.Range(0.3, 15))
			var snaps []snapAt
			_ = RunCheckpointed(sc, every, func(at sim.Time, data []byte) {
				snaps = append(snaps, snapAt{at, data})
			})
			if len(snaps) == 0 {
				if straight.FinalTime > every {
					t.Fatalf("%s/%d: no checkpoints at every=%v", arch, seed, every)
				}
				continue // run ended before the first boundary
			}

			// Resume from the first, a random middle, and the last cut.
			picks := []int{0, r.Intn(len(snaps)), len(snaps) - 1}
			for _, i := range picks {
				resumed, err := Resume(snaps[i].data, 0, nil)
				if err != nil {
					t.Fatalf("%s/%d: resume from t=%v: %v", arch, seed, snaps[i].at, err)
				}
				if got := stripTimeline(resumed); !reflect.DeepEqual(straight, got) {
					t.Errorf("%s/%d: resume from t=%v diverged:\nstraight: %+v\nresumed:  %+v",
						arch, seed, snaps[i].at, straight, got)
				}
			}
		}
	}
}

type snapAt struct {
	at   sim.Time
	data []byte
}

// TestResumeEmitsFurtherCheckpoints: a resumed run keeps checkpointing
// past the restore point, and those later snapshots resume correctly
// too (checkpoint-of-a-resume, the decor-chaos -resume-from +
// -checkpoint-every composition).
func TestResumeEmitsFurtherCheckpoints(t *testing.T) {
	sc := DefaultScenario(ArchSelfheal, 2)
	straight := stripTimeline(Run(sc))

	var first []byte
	_ = RunCheckpointed(sc, 10, func(at sim.Time, data []byte) {
		if first == nil {
			first = data
		}
	})
	if first == nil {
		t.Fatal("no checkpoint emitted")
	}

	var later []snapAt
	v, err := Resume(first, 25, func(at sim.Time, data []byte) {
		later = append(later, snapAt{at, data})
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := stripTimeline(v); !reflect.DeepEqual(straight, got) {
		t.Errorf("resume-with-checkpoints diverged from straight run")
	}
	if len(later) == 0 {
		t.Fatal("resumed run emitted no further checkpoints")
	}
	for _, s := range later {
		if s.at <= 10 {
			t.Errorf("resumed run re-emitted pre-restore checkpoint at t=%v", s.at)
		}
		v2, err := Resume(s.data, 0, nil)
		if err != nil {
			t.Fatalf("second-generation resume from t=%v: %v", s.at, err)
		}
		if got := stripTimeline(v2); !reflect.DeepEqual(straight, got) {
			t.Errorf("second-generation resume from t=%v diverged", s.at)
		}
	}
}

// TestResumeRejectsCorruption: every envelope violation maps to its
// typed snap error.
func TestResumeRejectsCorruption(t *testing.T) {
	sc := DefaultScenario(ArchGrid, 1)
	var data []byte
	_ = RunCheckpointed(sc, 7, func(_ sim.Time, d []byte) {
		if data == nil {
			data = d
		}
	})
	if data == nil {
		t.Fatal("no checkpoint emitted")
	}

	if _, err := Resume(nil, 0, nil); !errors.Is(err, snap.ErrMagic) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Resume([]byte("junk that is long enough to not be a length failure.............."), 0, nil); !errors.Is(err, snap.ErrMagic) {
		t.Errorf("garbage: %v", err)
	}
	if _, err := Resume(data[:len(data)/2], 0, nil); err == nil {
		t.Error("truncated snapshot accepted")
	}

	bumped := append([]byte(nil), data...)
	bumped[4]++
	if _, err := Resume(bumped, 0, nil); !errors.Is(err, snap.ErrVersion) {
		t.Errorf("version bump: %v", err)
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x20
	if _, err := Resume(flipped, 0, nil); !errors.Is(err, snap.ErrCorrupt) {
		t.Errorf("bit flip: %v", err)
	}
}

// TestVerdictEqualityIsMeaningful guards the parity suite itself: two
// DIFFERENT seeds must produce different verdicts, or DeepEqual above
// would vacuously pass.
func TestVerdictEqualityIsMeaningful(t *testing.T) {
	a := Run(DefaultScenario(ArchGrid, 1))
	b := Run(DefaultScenario(ArchGrid, 2))
	if a.TraceHash == b.TraceHash {
		t.Fatal("distinct seeds produced identical trace hashes")
	}
}

// Package relay repairs communication connectivity by placing relay
// nodes. The paper's §2 guarantees connectivity for free only when
// rc >= 2·rs; below that bound a fully k-covered field can still
// partition into radio islands, and data (the "sensors' reports" whose
// loss motivates the paper) cannot reach the base station. Connect
// stitches the components together greedily: repeatedly join the two
// closest components with a chain of relays along the connecting
// segment.
package relay

import (
	"math"
	"sort"

	"decor/internal/geom"
	"decor/internal/network"
)

// Result reports a connectivity repair.
type Result struct {
	// Relays are the added node positions in placement order.
	Relays []geom.Point
	// Links counts component merges performed.
	Links int
}

// Connect adds relay nodes (sensing radius rs, communication radius rc)
// to net until its alive graph is connected, returning the relays.
// Relay IDs start at nextID. An empty network is vacuously connected.
func Connect(net *network.Network, rs, rc float64, nextID int) Result {
	if rc <= 0 {
		panic("relay: rc must be positive")
	}
	var res Result
	for {
		comps := net.ConnectedComponents()
		if len(comps) <= 1 {
			return res
		}
		// Find the closest pair of nodes in different components.
		// (Quadratic over component representatives is fine at the
		// experiment scales; the alternative — a full EMST — would be
		// overkill.)
		bestD := math.Inf(1)
		var bestA, bestB geom.Point
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				for _, a := range comps[i] {
					pa := net.Node(a).Pos
					for _, b := range comps[j] {
						pb := net.Node(b).Pos
						if d := pa.Dist(pb); d < bestD {
							bestD, bestA, bestB = d, pa, pb
						}
					}
				}
			}
		}
		// Chain of relays along the segment, spaced to stay in range.
		n := int(math.Ceil(bestD/rc)) - 1
		if n < 1 {
			n = 1 // the components were separated by more than rc but
			// less than 2rc only via these endpoints; one midpoint relay
			// bridges them.
		}
		for s := 1; s <= n; s++ {
			t := float64(s) / float64(n+1)
			p := bestA.Lerp(bestB, t)
			net.Add(nextID, p, rs, rc)
			res.Relays = append(res.Relays, p)
			nextID++
		}
		res.Links++
	}
}

// MinRelaysLowerBound returns a lower bound on the relays any solution
// needs: for each component (beyond the first), at least
// ceil(gap/rc) − 1 relays where gap is its distance to the nearest other
// component. Used by tests to check Connect is not wasteful.
func MinRelaysLowerBound(net *network.Network, rc float64) int {
	comps := net.ConnectedComponents()
	if len(comps) <= 1 {
		return 0
	}
	// Gap from each component to its nearest neighbor component.
	gaps := make([]float64, len(comps))
	for i := range comps {
		gaps[i] = math.Inf(1)
		for j := range comps {
			if i == j {
				continue
			}
			for _, a := range comps[i] {
				pa := net.Node(a).Pos
				for _, b := range comps[j] {
					if d := pa.Dist(net.Node(b).Pos); d < gaps[i] {
						gaps[i] = d
					}
				}
			}
		}
	}
	// A spanning structure needs len(comps)-1 links; each link crossing
	// gap g needs ceil(g/rc)-1 relays. Sum the smallest len-1 gaps.
	sort.Float64s(gaps)
	total := 0
	for _, g := range gaps[:len(gaps)-1] {
		if n := int(math.Ceil(g/rc)) - 1; n > 0 {
			total += n
		}
	}
	return total
}

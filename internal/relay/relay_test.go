package relay

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/rng"
)

func TestConnectTwoIslands(t *testing.T) {
	net := network.New(geom.Square(100))
	// Two clusters 30 apart, rc = 8.
	net.Add(1, geom.Pt(10, 50), 4, 8)
	net.Add(2, geom.Pt(12, 50), 4, 8)
	net.Add(3, geom.Pt(40, 50), 4, 8)
	net.Add(4, geom.Pt(42, 50), 4, 8)
	if net.IsConnected() {
		t.Fatal("setup should be disconnected")
	}
	res := Connect(net, 4, 8, 100)
	if !net.IsConnected() {
		t.Fatal("Connect left the network partitioned")
	}
	if res.Links != 1 {
		t.Errorf("links = %d, want 1", res.Links)
	}
	// Gap 28 with rc 8 needs ceil(28/8)-1 = 3 relays.
	if len(res.Relays) != 3 {
		t.Errorf("relays = %d, want 3", len(res.Relays))
	}
	// Relays sit on the connecting segment.
	for _, p := range res.Relays {
		if p.Y != 50 || p.X < 12 || p.X > 40 {
			t.Errorf("relay %v off the bridging segment", p)
		}
	}
}

func TestConnectAlreadyConnected(t *testing.T) {
	net := network.New(geom.Square(10))
	net.Add(1, geom.Pt(1, 1), 1, 5)
	net.Add(2, geom.Pt(3, 1), 1, 5)
	res := Connect(net, 1, 5, 10)
	if len(res.Relays) != 0 || res.Links != 0 {
		t.Errorf("connected network got relays: %+v", res)
	}
	// Empty network too.
	empty := network.New(geom.Square(10))
	if res := Connect(empty, 1, 5, 0); len(res.Relays) != 0 {
		t.Error("empty network got relays")
	}
}

func TestConnectManyComponents(t *testing.T) {
	r := rng.New(5)
	net := network.New(geom.Square(200))
	// Five well-separated clusters of three nodes each.
	id := 0
	centers := []geom.Point{{X: 20, Y: 20}, {X: 170, Y: 30}, {X: 40, Y: 160}, {X: 180, Y: 180}, {X: 100, Y: 90}}
	for _, c := range centers {
		for s := 0; s < 3; s++ {
			p := geom.Point{X: c.X + r.Range(-3, 3), Y: c.Y + r.Range(-3, 3)}
			net.Add(id, p, 4, 10)
			id++
		}
	}
	if got := len(net.ConnectedComponents()); got != 5 {
		t.Fatalf("components = %d, want 5", got)
	}
	lower := MinRelaysLowerBound(net, 10)
	res := Connect(net, 4, 10, 1000)
	if !net.IsConnected() {
		t.Fatal("not connected")
	}
	if res.Links != 4 {
		t.Errorf("links = %d, want 4", res.Links)
	}
	if len(res.Relays) < lower {
		t.Errorf("relays %d below the lower bound %d?!", len(res.Relays), lower)
	}
	// Greedy should stay within 2x of the bound on this geometry.
	if len(res.Relays) > 2*lower+4 {
		t.Errorf("relays %d far above lower bound %d", len(res.Relays), lower)
	}
}

func TestConnectBridgesSubRcGap(t *testing.T) {
	// Components separated by just over rc: a single midpoint relay
	// suffices (its distance to both endpoints is ~rc/2... actually
	// just over rc/2, still within range).
	net := network.New(geom.Square(50))
	net.Add(1, geom.Pt(10, 10), 4, 8)
	net.Add(2, geom.Pt(19, 10), 4, 8) // gap 9 > rc
	if net.IsConnected() {
		t.Fatal("setup should be disconnected")
	}
	res := Connect(net, 4, 8, 10)
	if !net.IsConnected() {
		t.Fatal("not connected")
	}
	if len(res.Relays) != 1 {
		t.Errorf("relays = %d, want 1", len(res.Relays))
	}
}

func TestConnectPanicsOnBadRc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rc <= 0 should panic")
		}
	}()
	Connect(network.New(geom.Square(10)), 1, 0, 0)
}

func TestMinRelaysLowerBoundConnected(t *testing.T) {
	net := network.New(geom.Square(10))
	net.Add(1, geom.Pt(1, 1), 1, 5)
	if MinRelaysLowerBound(net, 5) != 0 {
		t.Error("single component bound should be 0")
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightShardRingOverwrite(t *testing.T) {
	r := NewFlightRecorder(1, 16)
	s := r.Shard(0)
	for i := 0; i < 40; i++ {
		s.Record(float64(i), "ev", i, "")
	}
	got := r.Dump()
	if len(got) != 16 {
		t.Fatalf("dump = %d events, want ring cap 16", len(got))
	}
	// Oldest events were overwritten; the survivors are the last 16 in order.
	for i, ev := range got {
		if want := uint64(25 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightDumpMergesShardsBySeq(t *testing.T) {
	r := NewFlightRecorder(3, 32)
	for i := 0; i < 30; i++ {
		r.Shard(i % 3).Record(float64(i), "ev", i, "d")
	}
	got := r.Dump()
	if len(got) != 30 {
		t.Fatalf("dump = %d events, want 30", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("dump not seq-ordered at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var r *FlightRecorder
	var s *FlightShard
	s.Record(0, "x", 0, "") // must not panic
	if r.Dump() != nil || r.Shards() != 0 || r.Shard(0) != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestFlightConcurrentRecordAndDump(t *testing.T) {
	r := NewFlightRecorder(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		sh := r.Shard(g)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sh.Record(float64(i), "tick", id, "")
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Dump()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := len(r.Dump()); got != 4*64 {
		t.Fatalf("final dump = %d, want %d", got, 4*64)
	}
}

func TestFlightTailAndTimeline(t *testing.T) {
	r := NewFlightRecorder(1, 32)
	r.Shard(0).Record(1.5, "deliver", 7, "hb 3->7")
	r.Shard(0).Record(2.0, "crash", 3, "")
	evs := Tail(r.Dump(), 10)
	if len(evs) != 2 {
		t.Fatalf("tail = %d", len(evs))
	}
	var sb strings.Builder
	WriteTimeline(&sb, evs)
	out := sb.String()
	for _, want := range []string{"deliver", "actor=7", "hb 3->7", "crash", "t=2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q in:\n%s", want, out)
		}
	}
	if got := Tail(evs, 1); len(got) != 1 || got[0].Kind != "crash" {
		t.Fatalf("Tail(1) = %+v", got)
	}
}

package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrape GETs the handler over a real HTTP round trip and returns the
// body.
func scrape(t *testing.T, url string) (status int, contentType, body string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

func TestHandlerServesLiveExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("decor_test_requests_total").Add(3)
	reg.Gauge("decor_test_depth").Set(1.5)
	reg.Histogram("decor_test_seconds", []float64{0.1, 1}).Observe(0.05)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	status, ct, body := scrape(t, srv.URL)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	for _, want := range []string{
		"# TYPE decor_test_requests_total counter\ndecor_test_requests_total 3\n",
		"# TYPE decor_test_depth gauge\ndecor_test_depth 1.5\n",
		"# TYPE decor_test_seconds histogram\n",
		`decor_test_seconds_bucket{le="0.1"} 1`,
		`decor_test_seconds_bucket{le="+Inf"} 1`,
		"decor_test_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q in:\n%s", want, body)
		}
	}

	// The endpoint is live, not an exit dump: a second scrape sees
	// updates made after the first.
	reg.Counter("decor_test_requests_total").Add(4)
	_, _, body2 := scrape(t, srv.URL)
	if !strings.Contains(body2, "decor_test_requests_total 7") {
		t.Errorf("second scrape not live, got:\n%s", body2)
	}
}

func TestHandlerRejectsNonGet(t *testing.T) {
	srv := httptest.NewServer(NewRegistry().Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestHandlerDeterministicOrdering(t *testing.T) {
	// Two registries populated in opposite orders must scrape
	// byte-identically: exposition order is (family, series), never map
	// or insertion order.
	names := []string{"decor_b_total", "decor_a_total", "decor_c_total"}
	reg1, reg2 := NewRegistry(), NewRegistry()
	for _, n := range names {
		reg1.Counter(n).Inc()
	}
	for i := len(names) - 1; i >= 0; i-- {
		reg2.Counter(names[i]).Inc()
	}
	reg1.CounterL("decor_a_total", reg1.Labels("r", "x")).Inc()
	reg2.CounterL("decor_a_total", reg2.Labels("r", "x")).Inc()
	var b1, b2 strings.Builder
	if err := reg1.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("exposition not deterministic:\n--- reg1:\n%s--- reg2:\n%s", b1.String(), b2.String())
	}
	// And repeated scrapes of the same registry are byte-identical too.
	var b3 strings.Builder
	if err := reg1.WritePrometheus(&b3); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b3.String() {
		t.Fatal("repeated scrape differs")
	}
}

func TestDebugTracesHandler(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.StartTrace(context.Background(), "req")
	_, c := StartSpanCtx(ctx, "phase")
	c.End()
	root.End()
	id := root.TraceID()

	srv := httptest.NewServer(tr.DebugHandler())
	defer srv.Close()

	status, ct, body := scrape(t, srv.URL)
	if status != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("summary: status=%d ct=%q", status, ct)
	}
	var sums []TraceSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Trace != id.String() || sums[0].Spans != 2 {
		t.Fatalf("summaries = %+v", sums)
	}

	status, _, body = scrape(t, srv.URL+"?trace="+id.String())
	if status != http.StatusOK {
		t.Fatalf("drill-down status = %d (%s)", status, body)
	}
	var spans []SpanRecord
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("drill-down spans = %d, want 2", len(spans))
	}

	status, ct, body = scrape(t, srv.URL+"?format=jsonl")
	if status != http.StatusOK || !strings.HasPrefix(ct, "application/jsonl") {
		t.Fatalf("jsonl: status=%d ct=%q", status, ct)
	}
	if got := strings.Count(strings.TrimSpace(body), "\n") + 1; got != 2 {
		t.Fatalf("jsonl lines = %d, want 2", got)
	}

	if status, _, _ = scrape(t, srv.URL+"?trace=0000000000000bad"); status != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", status)
	}
	if status, _, _ = scrape(t, srv.URL+"?trace=not-hex"); status != http.StatusBadRequest {
		t.Fatalf("bad trace id status = %d, want 400", status)
	}
}

func TestRegisterServeExposesAllSeriesAtZero(t *testing.T) {
	reg := NewRegistry()
	RegisterServe(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		ServePlanRequests, ServeRepairRequests, ServeBadRequests,
		ServeRejected, ServeTimeouts, ServeErrors,
		ServeCacheHits, ServeCacheMisses, ServeCoalesced,
		ServeQueueDepth, ServeInflight,
		ServePlanSeconds, ServeRequestSeconds,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("fresh serve registry missing series %s", name)
		}
	}
}

package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrape GETs the handler over a real HTTP round trip and returns the
// body.
func scrape(t *testing.T, url string) (status int, contentType, body string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

func TestHandlerServesLiveExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("decor_test_requests_total").Add(3)
	reg.Gauge("decor_test_depth").Set(1.5)
	reg.Histogram("decor_test_seconds", []float64{0.1, 1}).Observe(0.05)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	status, ct, body := scrape(t, srv.URL)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	for _, want := range []string{
		"# TYPE decor_test_requests_total counter\ndecor_test_requests_total 3\n",
		"# TYPE decor_test_depth gauge\ndecor_test_depth 1.5\n",
		"# TYPE decor_test_seconds histogram\n",
		`decor_test_seconds_bucket{le="0.1"} 1`,
		`decor_test_seconds_bucket{le="+Inf"} 1`,
		"decor_test_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q in:\n%s", want, body)
		}
	}

	// The endpoint is live, not an exit dump: a second scrape sees
	// updates made after the first.
	reg.Counter("decor_test_requests_total").Add(4)
	_, _, body2 := scrape(t, srv.URL)
	if !strings.Contains(body2, "decor_test_requests_total 7") {
		t.Errorf("second scrape not live, got:\n%s", body2)
	}
}

func TestHandlerRejectsNonGet(t *testing.T) {
	srv := httptest.NewServer(NewRegistry().Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestRegisterServeExposesAllSeriesAtZero(t *testing.T) {
	reg := NewRegistry()
	RegisterServe(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		ServePlanRequests, ServeRepairRequests, ServeBadRequests,
		ServeRejected, ServeTimeouts, ServeErrors,
		ServeCacheHits, ServeCacheMisses, ServeCoalesced,
		ServeQueueDepth, ServeInflight,
		ServePlanSeconds, ServeRequestSeconds,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("fresh serve registry missing series %s", name)
		}
	}
}

package obs

import "time"

// Span is one timed phase execution. Obtain with Registry.StartSpan (or
// the package-level StartSpan for the default registry) and call End
// exactly once when the phase finishes; the elapsed wall time lands in
// the span's histogram in seconds.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing the named phase. The backing histogram is
// created on first use with DefLatencyBuckets.
func (r *Registry) StartSpan(name string) Span {
	return Span{h: r.Histogram(name, DefLatencyBuckets), start: time.Now()}
}

// Span begins timing directly against this histogram, skipping the
// registry name lookup — for hot loops that cache the handle.
func (h *Histogram) Span() Span {
	return Span{h: h, start: time.Now()}
}

// End stops the span, records its duration, and returns it. End on a
// zero Span is a no-op.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

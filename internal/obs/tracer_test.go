package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartTraceAndChildSpans(t *testing.T) {
	tr := NewTracer(256)
	ctx, root := tr.StartTrace(context.Background(), "request")
	id, ok := ContextTrace(ctx)
	if !ok || id == 0 {
		t.Fatal("context does not carry the trace")
	}
	if root.TraceID() != id {
		t.Fatalf("root span trace %s != context trace %s", root.TraceID(), id)
	}
	cctx, child := StartSpanCtx(ctx, "phase")
	_, grand := StartSpanCtx(cctx, "subphase")
	grand.SetAttr("round=3")
	grand.End()
	child.End()
	root.End()

	spans := tr.Trace(id)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["request"].Parent != "" {
		t.Errorf("root has parent %q", byName["request"].Parent)
	}
	if byName["phase"].Parent != byName["request"].Span {
		t.Errorf("phase parent = %q, want root span %q", byName["phase"].Parent, byName["request"].Span)
	}
	if byName["subphase"].Parent != byName["phase"].Span {
		t.Errorf("subphase parent = %q, want phase span %q", byName["subphase"].Parent, byName["phase"].Span)
	}
	if byName["subphase"].Attr != "round=3" {
		t.Errorf("attr = %q", byName["subphase"].Attr)
	}
	for _, s := range spans {
		if s.Trace != id.String() {
			t.Errorf("span %s carries trace %s, want %s", s.Name, s.Trace, id)
		}
	}
}

func TestStartSpanCtxWithoutTraceIsNoop(t *testing.T) {
	ctx, sp := StartSpanCtx(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("expected nil span without a trace in context")
	}
	if sp.End() != 0 { // nil-safe
		t.Fatal("nil span End should return 0")
	}
	if _, ok := ContextTrace(ctx); ok {
		t.Fatal("no-op must not invent a trace")
	}
	var nilTr *Tracer
	ctx2, sp2 := nilTr.StartTrace(context.Background(), "x")
	if sp2 != nil || ctx2 == nil {
		t.Fatal("nil tracer StartTrace must be a no-op")
	}
}

func TestWithSpanContextTransplants(t *testing.T) {
	tr := NewTracer(64)
	src, root := tr.StartTrace(context.Background(), "req")
	defer root.End()
	dst := WithSpanContext(context.Background(), src)
	id, ok := ContextTrace(dst)
	if !ok || id != root.TraceID() {
		t.Fatalf("transplanted trace = %v/%v, want %v", id, ok, root.TraceID())
	}
	_, child := StartSpanCtx(dst, "job")
	child.End()
	if got := len(tr.Trace(id)); got != 1 {
		t.Fatalf("child recorded %d spans, want 1", got)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(64) // rounds to 64 slots
	ctx, root := tr.StartTrace(context.Background(), "root")
	root.End()
	for i := 0; i < 500; i++ {
		_, sp := StartSpanCtx(ctx, "spin")
		sp.End()
	}
	if got := len(tr.Spans()); got > 64 {
		t.Fatalf("ring grew to %d records, cap 64", got)
	}
	// The root fell off the ring long ago; the newest spans survive.
	spans := tr.Spans()
	if spans[len(spans)-1].Name != "spin" {
		t.Fatalf("newest span = %q", spans[len(spans)-1].Name)
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.StartTrace(context.Background(), "req")
	_, c := StartSpanCtx(ctx, "phase")
	c.End()
	root.End()
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var n int
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.Trace == "" || rec.Span == "" || rec.Name == "" {
			t.Fatalf("incomplete record: %+v", rec)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("JSONL lines = %d, want 2", n)
	}
}

func TestTracerSummaries(t *testing.T) {
	tr := NewTracer(256)
	var ids []TraceID
	for i := 0; i < 3; i++ {
		ctx, root := tr.StartTrace(context.Background(), "req")
		_, c := StartSpanCtx(ctx, "inner")
		time.Sleep(time.Millisecond)
		c.End()
		root.End()
		ids = append(ids, root.TraceID())
	}
	sums := tr.Summaries()
	if len(sums) != 3 {
		t.Fatalf("summaries = %d, want 3", len(sums))
	}
	for _, s := range sums {
		if s.Root != "req" || s.Spans != 2 || s.DurNS <= 0 {
			t.Fatalf("bad summary %+v", s)
		}
	}
	// Most recent first.
	if sums[0].Trace != ids[2].String() {
		t.Fatalf("order: got %s first, want %s", sums[0].Trace, ids[2])
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartTrace(context.Background(), "req")
				_, c := StartSpanCtx(ctx, "inner")
				c.End()
				root.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Spans()
			}
		}
	}()
	wg.Wait()
	close(done)
	// Recorded + dropped must account for every span that completed.
	if got := len(tr.Spans()); got > 256 {
		t.Fatalf("ring overflow: %d records", got)
	}
}

func TestParseTraceID(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip: %v %v", got, err)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Fatal("want error on bad hex")
	}
}

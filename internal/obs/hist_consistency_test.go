package obs

import (
	"sync"
	"testing"
)

// TestHistogramSnapshotNotTorn hammers Observe from several goroutines
// while snapshotting continuously, asserting every snapshot is
// internally consistent: Count equals the sum of the bucket counts, and
// Sum is exactly attributable to those observations (all observations
// have value 1, so Sum must equal Count). The pre-fix Observe bumped
// count and sum in separate unsynchronized atomics, so a concurrent
// snapshot could see them torn; run with -race to also prove the seqlock
// is data-race-free.
func TestHistogramSnapshotNotTorn(t *testing.T) {
	h := newHistogram([]float64{0.5, 2})
	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.snapshot()
				var bucketSum uint64
				for _, c := range s.Counts {
					bucketSum += c
				}
				if bucketSum != s.Count || s.Sum != float64(s.Count) {
					snapMu.Lock()
					if snapErr == nil {
						snapErr = &tornError{count: s.Count, buckets: bucketSum, sum: s.Sum}
					}
					snapMu.Unlock()
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(1)
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	final := h.snapshot()
	if final.Count != writers*perWriter || final.Sum != float64(writers*perWriter) {
		t.Fatalf("final count=%d sum=%v, want %d", final.Count, final.Sum, writers*perWriter)
	}
}

type tornError struct {
	count, buckets uint64
	sum            float64
}

func (e *tornError) Error() string {
	return "torn snapshot"
}

func (e *tornError) String() string { return e.Error() }

func TestHistogramBoundsConflictCounted(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("decor_sec", []float64{1, 10})
	h2 := r.Histogram("decor_sec", []float64{5}) // different bounds: conflict
	if h1 != h2 {
		t.Fatal("existing histogram must win")
	}
	if got := r.Counter(ObsHistBoundsConflicts).Value(); got != 1 {
		t.Fatalf("conflict counter = %d, want 1", got)
	}
	// Matching bounds (even via a distinct slice) are not a conflict.
	r.Histogram("decor_sec", []float64{1, 10})
	if got := r.Counter(ObsHistBoundsConflicts).Value(); got != 1 {
		t.Fatalf("false positive: conflict counter = %d, want 1", got)
	}
	// The existing series' buckets are authoritative.
	if b := h2.Bounds(); len(b) != 2 || b[0] != 1 || b[1] != 10 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, TraceID(0xabc))
	h.ObserveExemplar(7, TraceID(0xdef))
	s := h.snapshot()
	if s.Exemplars == nil {
		t.Fatal("no exemplars recorded")
	}
	if s.Exemplars[0] != "" {
		t.Errorf("untraced bucket has exemplar %q", s.Exemplars[0])
	}
	if s.Exemplars[1] != TraceID(0xabc).String() {
		t.Errorf("bucket 1 exemplar = %q", s.Exemplars[1])
	}
	if s.Exemplars[2] != TraceID(0xdef).String() {
		t.Errorf("overflow exemplar = %q", s.Exemplars[2])
	}
	// Plain observations leave no exemplar array at all.
	h2 := newHistogram([]float64{1})
	h2.Observe(0.5)
	if s2 := h2.snapshot(); s2.Exemplars != nil {
		t.Fatalf("unexpected exemplars %v", s2.Exemplars)
	}
}

package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace (a request, a chaos run, a
// deployment). Zero is "no trace". It renders as 16 hex digits — the
// value of the X-Decor-Trace response header.
type TraceID uint64

// String renders the ID as fixed-width hex.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return TraceID(v), err
}

// SpanRecord is one completed span as exported to JSONL and
// /debug/traces — the unit cmd/decor-trace consumes.
type SpanRecord struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"` // absent for the root span
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"` // wall clock, unix nanoseconds
	DurNS   int64  `json:"dur_ns"`
	Attr    string `json:"attr,omitempty"`
}

// spanRec is the in-ring representation (numeric IDs, no rendering).
type spanRec struct {
	seq          uint64
	trace        TraceID
	span, parent uint64
	name         string
	start        int64
	dur          int64
	attr         string
}

func (r spanRec) export() SpanRecord {
	sr := SpanRecord{
		Trace:   r.trace.String(),
		Span:    fmt.Sprintf("%016x", r.span),
		Name:    r.name,
		StartNS: r.start,
		DurNS:   r.dur,
		Attr:    r.attr,
	}
	if r.parent != 0 {
		sr.Parent = fmt.Sprintf("%016x", r.parent)
	}
	return sr
}

// spanSlot is one ring cell. state is a CAS gate: 0 = stable, 1 = owned
// by a writer or reader. Ownership makes the multi-word record access
// race-free without a lock; a writer that loses the gate (a reader is
// copying the slot, or a lapping writer still holds it) drops its span
// and counts the drop — bounded memory beats unbounded fidelity here.
type spanSlot struct {
	state atomic.Uint32
	rec   spanRec
}

// Tracer records completed spans into a bounded lock-free ring. The ring
// never grows: once full, new spans overwrite the oldest. A nil *Tracer
// is a valid no-op tracer, so call sites need no guards.
type Tracer struct {
	slots   []spanSlot
	mask    uint64
	pos     atomic.Uint64 // claimed slots, monotonic
	ids     atomic.Uint64
	seed    uint64
	dropped atomic.Uint64
}

// NewTracer creates a tracer whose ring holds at least capacity spans
// (rounded up to a power of two; minimum 64).
func NewTracer(capacity int) *Tracer {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Tracer{
		slots: make([]spanSlot, n),
		mask:  uint64(n - 1),
		seed:  uint64(time.Now().UnixNano()),
	}
}

// Dropped returns the number of spans lost to slot contention.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// newID derives a unique random-looking 64-bit ID (splitmix64 over a
// seeded sequence; never zero, since zero means "absent").
func (t *Tracer) newID() uint64 {
	x := t.ids.Add(1) + t.seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func (t *Tracer) record(rec spanRec) {
	i := t.pos.Add(1) - 1
	s := &t.slots[i&t.mask]
	if !s.state.CompareAndSwap(0, 1) {
		t.dropped.Add(1)
		return
	}
	rec.seq = i
	s.rec = rec
	s.state.Store(0)
}

// ActiveSpan is a span in progress. End records it into the tracer's
// ring; a nil ActiveSpan (no tracer, or no trace in the context) is a
// valid no-op, so instrumented code never branches on "is tracing on".
type ActiveSpan struct {
	tr           *Tracer
	trace        TraceID
	span, parent uint64
	name         string
	start        time.Time
	attr         string
}

// TraceID returns the trace this span belongs to (0 for a no-op span).
func (s *ActiveSpan) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// SetAttr attaches a free-form annotation exported with the record.
func (s *ActiveSpan) SetAttr(attr string) {
	if s != nil {
		s.attr = attr
	}
}

// End completes the span and returns its duration (0 for a no-op span).
func (s *ActiveSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.tr.record(spanRec{
		trace: s.trace, span: s.span, parent: s.parent,
		name: s.name, start: s.start.UnixNano(), dur: int64(d), attr: s.attr,
	})
	return d
}

// ctxKey carries the active span through a context.Context.
type ctxKey struct{}

type spanCtx struct {
	tr    *Tracer
	trace TraceID
	span  uint64
}

// WithSpanContext transplants the active span of src onto dst. The
// service uses it to carry a request's trace into the job context (which
// is deliberately NOT derived from the request context, so a client
// hang-up doesn't cancel a coalesced plan).
func WithSpanContext(dst, src context.Context) context.Context {
	if src == nil {
		return dst
	}
	if sc, ok := src.Value(ctxKey{}).(spanCtx); ok {
		return context.WithValue(dst, ctxKey{}, sc)
	}
	return dst
}

// ContextTrace returns the trace ID carried by ctx, if any.
func ContextTrace(ctx context.Context) (TraceID, bool) {
	if ctx == nil {
		return 0, false
	}
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	return sc.trace, ok
}

// StartTrace opens a new trace rooted at a span with the given name and
// returns a context carrying it. On a nil tracer it returns ctx and a
// no-op span.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	id := TraceID(t.newID())
	sp := &ActiveSpan{tr: t, trace: id, span: t.newID(), name: name, start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: t, trace: id, span: sp.span}), sp
}

// StartChildSpan opens a child span of the trace carried by ctx WITHOUT
// deriving a new context. Use it when no further children will hang off
// the span (e.g. the serving layer's parse span): it skips the
// context.WithValue and the spanCtx boxing, two heap allocations that
// matter on the request hot path.
func StartChildSpan(ctx context.Context, name string) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok || sc.tr == nil {
		return nil
	}
	return &ActiveSpan{tr: sc.tr, trace: sc.trace, span: sc.tr.newID(), parent: sc.span, name: name, start: time.Now()}
}

// StartSpanCtx opens a child span of the trace carried by ctx and
// returns a context in which the child is the active span. Without a
// trace in ctx (or with a nil ctx) it is a no-op: the original context
// and a nil span come back, so sprinkling child spans through library
// code costs one context lookup when tracing is off.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if ctx == nil {
		return ctx, nil
	}
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok || sc.tr == nil {
		return ctx, nil
	}
	sp := &ActiveSpan{tr: sc.tr, trace: sc.trace, span: sc.tr.newID(), parent: sc.span, name: name, start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: sc.tr, trace: sc.trace, span: sp.span}), sp
}

// Spans returns every stable record in the ring, oldest first. Slots a
// writer owns at copy time are skipped (they are mid-overwrite).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	recs := make([]spanRec, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		if !s.state.CompareAndSwap(0, 1) {
			continue
		}
		rec := s.rec
		s.state.Store(0)
		if rec.trace != 0 {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	out := make([]SpanRecord, len(recs))
	for i, r := range recs {
		out[i] = r.export()
	}
	return out
}

// Trace returns the recorded spans of one trace, oldest first.
func (t *Tracer) Trace(id TraceID) []SpanRecord {
	want := id.String()
	var out []SpanRecord
	for _, sr := range t.Spans() {
		if sr.Trace == want {
			out = append(out, sr)
		}
	}
	return out
}

// WriteJSONL dumps every recorded span as one JSON object per line —
// the interchange format cmd/decor-trace summarizes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sr := range t.Spans() {
		if err := enc.Encode(sr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceSummary is one trace's roll-up as served by /debug/traces.
type TraceSummary struct {
	Trace   string `json:"trace"`
	Root    string `json:"root"` // root span name ("" if the root fell off the ring)
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"` // root duration (max span end - min start as fallback)
	Spans   int    `json:"spans"`
}

// Summaries rolls the ring up per trace, most recent first.
func (t *Tracer) Summaries() []TraceSummary {
	byTrace := map[string]*TraceSummary{}
	for _, sr := range t.Spans() {
		ts := byTrace[sr.Trace]
		if ts == nil {
			ts = &TraceSummary{Trace: sr.Trace, StartNS: sr.StartNS}
			byTrace[sr.Trace] = ts
		}
		ts.Spans++
		if sr.StartNS < ts.StartNS {
			ts.StartNS = sr.StartNS
		}
		if sr.Parent == "" {
			ts.Root = sr.Name
			ts.DurNS = sr.DurNS
		} else if ts.Root == "" && sr.StartNS+sr.DurNS-ts.StartNS > ts.DurNS {
			ts.DurNS = sr.StartNS + sr.DurNS - ts.StartNS
		}
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for _, ts := range byTrace {
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS > out[j].StartNS
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// The process-wide default tracer (4096-span ring). Library call sites
// that have no explicit tracer — and the decor-* binaries — record here.
var defaultTracer = NewTracer(4096)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartTrace opens a new trace on the process-wide tracer.
func StartTrace(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return defaultTracer.StartTrace(ctx, name)
}

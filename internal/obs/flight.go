package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightEvent is one structured entry in the flight recorder: a sim
// engine event, a protocol message, an admission decision. T is
// domain-defined time — virtual seconds for simulator shards, wall
// seconds since recorder start for service shards. Seq totally orders
// events across shards.
type FlightEvent struct {
	Seq    uint64  `json:"seq"`
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	Actor  int     `json:"actor"`
	Detail string  `json:"detail,omitempty"`

	// Structured message fields recorded by RecordMsg on the hot path;
	// snapshot materializes them into Detail lazily so recording never
	// formats (and never allocates). hasMsg distinguishes "structured,
	// not yet materialized" from a plain Record.
	msgKind  string
	from, to int
	dead     bool
	hasMsg   bool
}

func (e FlightEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("#%d t=%.3f %s actor=%d", e.Seq, e.T, e.Kind, e.Actor)
	}
	return fmt.Sprintf("#%d t=%.3f %s actor=%d %s", e.Seq, e.T, e.Kind, e.Actor, e.Detail)
}

// FlightRecorder keeps the last events of a running system in fixed
// memory: per-shard ring buffers that overwrite their oldest entries.
// Nothing is ever written out during normal operation — the recorder
// exists to be dumped when something goes wrong (an invariant fires, a
// 5xx is served, SIGQUIT arrives), turning "the run failed" into a
// readable event timeline. A nil *FlightRecorder and a nil *FlightShard
// are valid no-ops.
type FlightRecorder struct {
	seq    atomic.Uint64
	shards []*FlightShard
}

// NewFlightRecorder creates a recorder with the given shard count and
// per-shard ring capacity (minimums 1 and 16). Memory is fixed at
// shards × perShard events for the recorder's lifetime.
func NewFlightRecorder(shards, perShard int) *FlightRecorder {
	if shards < 1 {
		shards = 1
	}
	if perShard < 16 {
		perShard = 16
	}
	r := &FlightRecorder{shards: make([]*FlightShard, shards)}
	for i := range r.shards {
		r.shards[i] = &FlightShard{rec: r, evs: make([]FlightEvent, perShard)}
	}
	return r
}

// Shards returns the shard count (0 on nil).
func (r *FlightRecorder) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Shard returns shard i (nil on a nil recorder), the handle a
// single-writer domain — one sim engine, one service worker — records
// through without contending with the others.
func (r *FlightRecorder) Shard(i int) *FlightShard {
	if r == nil {
		return nil
	}
	return r.shards[i]
}

// FlightShard is one ring. Writers share it safely (a short mutex), but
// the intended shape is one writing goroutine per shard so the mutex
// never contends.
type FlightShard struct {
	rec  *FlightRecorder
	mu   sync.Mutex
	evs  []FlightEvent
	next int
	n    int
}

// Record appends one event, overwriting the ring's oldest when full.
// On a nil shard it is a no-op, so call sites need no enable checks.
func (s *FlightShard) Record(t float64, kind string, actor int, detail string) {
	if s == nil {
		return
	}
	seq := s.rec.seq.Add(1)
	s.mu.Lock()
	s.evs[s.next] = FlightEvent{Seq: seq, T: t, Kind: kind, Actor: actor, Detail: detail}
	s.next++
	if s.next == len(s.evs) {
		s.next = 0
	}
	if s.n < len(s.evs) {
		s.n++
	}
	s.mu.Unlock()
}

// RecordMsg appends one message-shaped event (deliver, drop, lose, cut)
// without formatting anything: the message fields are stored raw and the
// human-readable Detail — "<msgKind> <from>-><to>[ dead]", exactly what
// callers used to Sprintf — is materialized only if the ring is ever
// dumped. Recording stays allocation-free on the sim engine's hot path.
func (s *FlightShard) RecordMsg(t float64, kind string, actor int, msgKind string, from, to int, dead bool) {
	if s == nil {
		return
	}
	seq := s.rec.seq.Add(1)
	s.mu.Lock()
	s.evs[s.next] = FlightEvent{
		Seq: seq, T: t, Kind: kind, Actor: actor,
		msgKind: msgKind, from: from, to: to, dead: dead, hasMsg: true,
	}
	s.next++
	if s.next == len(s.evs) {
		s.next = 0
	}
	if s.n < len(s.evs) {
		s.n++
	}
	s.mu.Unlock()
}

// snapshot copies the shard's valid events in write order, materializing
// lazily recorded message details.
func (s *FlightShard) snapshot() []FlightEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FlightEvent, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.evs)
	}
	for i := 0; i < s.n; i++ {
		ev := s.evs[(start+i)%len(s.evs)]
		if ev.hasMsg {
			if ev.dead {
				ev.Detail = fmt.Sprintf("%s %d->%d dead", ev.msgKind, ev.from, ev.to)
			} else {
				ev.Detail = fmt.Sprintf("%s %d->%d", ev.msgKind, ev.from, ev.to)
			}
			ev.msgKind, ev.from, ev.to, ev.dead, ev.hasMsg = "", 0, 0, false, false
		}
		out = append(out, ev)
	}
	return out
}

// Dump merges every shard's surviving events into one timeline ordered
// by Seq — the global record order, which for a single-goroutine sim
// run is exactly the deterministic event order.
func (r *FlightRecorder) Dump() []FlightEvent {
	if r == nil {
		return nil
	}
	var all []FlightEvent
	for _, s := range r.shards {
		all = append(all, s.snapshot()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all
}

// Tail returns the last n events of a dump (the whole dump if shorter).
func Tail(evs []FlightEvent, n int) []FlightEvent {
	if len(evs) <= n {
		return evs
	}
	return evs[len(evs)-n:]
}

// WriteTimeline renders events one per line for humans (post-mortems,
// SIGQUIT dumps).
func WriteTimeline(w io.Writer, evs []FlightEvent) {
	for _, e := range evs {
		fmt.Fprintln(w, e.String())
	}
}

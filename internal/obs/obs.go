// Package obs is the unified instrumentation layer for the DECOR
// reproduction: a dependency-free (stdlib only) registry of named
// counters, gauges and fixed-bucket histograms with atomic updates,
// hierarchical trace spans with context propagation (tracer.go), a
// fixed-memory flight recorder of structured events (flight.go), and
// low-alloc label sets for per-tenant/arch/route attribution (label.go).
//
// The paper's evaluation (§4) is entirely about measured quantities —
// messages per cell, rounds, redundant nodes, coverage fractions — but
// internal/metrics only measures runs post-hoc. This package observes a
// run while it executes: internal/sim emits per-event counters and a
// queue-depth gauge, internal/protocol emits heartbeat/election/placement
// counters, and internal/core records per-round benefit-evaluation wall
// time. Two exporters make the data consumable: Prometheus text
// exposition (WritePrometheus) and a JSON snapshot that internal/trace
// appends to its JSONL schema as an "obs" record.
//
// All instruments are safe for concurrent use; Registry lookups use a
// read-mostly map and counter/gauge updates are single atomic operations,
// so instrumented hot paths stay cheap. Histogram observations serialize
// writers behind a mutex and publish through a seqlock so snapshots are
// never torn (count, sum and buckets always agree).
package obs

import (
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced to keep the hot path branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a floating-point metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= upper[i] (and > upper[i-1]); one extra
// overflow bucket holds everything above the last bound (+Inf in the
// Prometheus exposition).
//
// Writers are serialized by a mutex and bracket their updates with a
// seqlock version, so a concurrent snapshot always sees count, sum and
// the bucket array from the same set of completed observations — the
// torn count/sum reads the original atomic-only Observe allowed are
// gone. Individual getters (Count, Sum) stay lock-free.
type Histogram struct {
	upper []float64

	mu  sync.Mutex    // serializes writers
	ver atomic.Uint64 // seqlock: odd while a write is in flight

	buckets []atomic.Uint64 // len(upper)+1; last = overflow
	count   atomic.Uint64
	sumBits atomic.Uint64

	// exemplars[i] holds the raw TraceID of the most recent traced
	// observation that landed in bucket i (0 = none) — the link from a
	// p99 bucket back to a retrievable trace.
	exemplars []atomic.Uint64
}

func newHistogram(upperBounds []float64) *Histogram {
	if len(upperBounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	upper := append([]float64(nil), upperBounds...)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		upper:     upper,
		buckets:   make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.observe(v, 0) }

// ObserveExemplar records one value and remembers the trace that
// produced it as the bucket's exemplar, so a latency outlier in the
// exposition can be followed to its full span tree via /debug/traces.
func (h *Histogram) ObserveExemplar(v float64, trace TraceID) { h.observe(v, uint64(trace)) }

func (h *Histogram) observe(v float64, trace uint64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v: inclusive le
	h.mu.Lock()
	h.ver.Add(1) // odd: snapshots retry until the write completes
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumBits.Store(math.Float64bits(math.Float64frombits(h.sumBits.Load()) + v))
	if trace != 0 {
		h.exemplars[i].Store(trace)
	}
	h.ver.Add(1)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the histogram's bucket upper bounds (not aliased).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.upper...) }

// snapshot captures a consistent view: it retries while a writer holds
// the seqlock odd or bumped it mid-read, so Count always equals the sum
// of Counts and Sum matches exactly those observations.
func (h *Histogram) snapshot() HistSnapshot {
	hs := HistSnapshot{
		Buckets: append([]float64(nil), h.upper...),
		Counts:  make([]uint64, len(h.buckets)),
	}
	var ex []uint64
	for {
		v1 := h.ver.Load()
		if v1&1 == 1 {
			runtime.Gosched()
			continue
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		hs.Sum = math.Float64frombits(h.sumBits.Load())
		hs.Count = h.count.Load()
		ex = ex[:0]
		for i := range h.exemplars {
			ex = append(ex, h.exemplars[i].Load())
		}
		if h.ver.Load() == v1 {
			break
		}
		runtime.Gosched()
	}
	for i, id := range ex {
		if id != 0 {
			if hs.Exemplars == nil {
				hs.Exemplars = make([]string, len(ex))
			}
			hs.Exemplars[i] = TraceID(id).String()
		}
	}
	return hs
}

// DefLatencyBuckets are the default span-duration bounds in seconds,
// spanning 1µs..10s — wide enough for a single benefit evaluation and a
// full deployment round alike.
var DefLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Registry holds named instruments. The zero value is not usable; create
// with NewRegistry (or use the process-wide Default). A registry may own
// child shards (Shard) whose instruments are merged into its Snapshot at
// scrape time, and labeled series (label.go) that live in the same maps
// under their full series key `name{k="v",...}`.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	lmu      sync.RWMutex
	interned map[string]LabelSet

	shardMu sync.Mutex
	shards  []*Registry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		interned: map[string]LabelSet{},
	}
}

// Shard creates a child registry bound to r: instruments created on the
// shard are merged into r's Snapshot (counters and gauges sum, histogram
// buckets add element-wise) at scrape time. Hot paths that would contend
// on one shared instrument — parallel chaos sweeps, per-worker service
// state — each take a shard and update it uncontended; the merge cost is
// paid only by the scraper.
func (r *Registry) Shard() *Registry {
	s := NewRegistry()
	r.shardMu.Lock()
	r.shards = append(r.shards, s)
	r.shardMu.Unlock()
	return s
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], so exposition output is always parseable.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	// Fast path: canonical names are already clean; don't allocate for
	// them (StartSpan sanitizes on every call, including round loops).
	clean := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	b := []byte(name)
	for i, c := range b {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// getCounter returns the counter stored under a full series key (already
// sanitized, possibly carrying a label suffix), creating it on first use.
func (r *Registry) getCounter(key string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

func (r *Registry) getGauge(key string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

func (r *Registry) getHistogram(key string, upperBounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if h, ok = r.hists[key]; !ok {
			h = newHistogram(upperBounds)
			r.hists[key] = h
		}
		r.mu.Unlock()
	}
	if !boundsMatch(h.upper, upperBounds) {
		// The caller asked for different buckets than the live series
		// has. Silently dropping the caller's bounds used to be invisible
		// — now every occurrence is surfaced as a counter (and the
		// existing series still wins, so concurrent observers never see
		// the bucket layout change underneath them).
		r.getCounter(ObsHistBoundsConflicts).Inc()
	}
	return h
}

// boundsMatch reports whether two bucket-bound slices are identical. The
// pointer fast path covers the common case of a shared bounds slice
// (DefLatencyBuckets) without walking it.
func boundsMatch(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.getCounter(sanitizeName(name))
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.getGauge(sanitizeName(name))
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. An existing histogram is returned
// as-is — its original buckets win — but a call whose bounds disagree
// with the live series is no longer silent: it increments
// ObsHistBoundsConflicts so the misconfiguration shows up on a scrape.
func (r *Registry) Histogram(name string, upperBounds []float64) *Histogram {
	return r.getHistogram(sanitizeName(name), upperBounds)
}

// HistSnapshot is the exported state of one histogram. Counts has one
// entry per bucket plus a trailing overflow bucket (+Inf). Exemplars,
// when present, is parallel to Counts and holds the trace ID of the most
// recent traced observation per bucket ("" = none).
type HistSnapshot struct {
	Buckets   []float64 `json:"buckets"`
	Counts    []uint64  `json:"counts"`
	Sum       float64   `json:"sum"`
	Count     uint64    `json:"count"`
	Exemplars []string  `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry; it
// shares no state with the live registry and marshals directly to JSON
// (the payload of the trace package's "obs" record). Labeled series
// appear under their full series key (`name{k="v"}`).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state, merged with every
// shard created via Shard: counters and gauges sum, histograms with
// matching bounds add element-wise (a shard histogram whose bounds
// disagree with the parent's series is dropped from the merge and
// counted under ObsHistBoundsConflicts on the next scrape).
func (r *Registry) Snapshot() Snapshot {
	s := r.ownSnapshot()
	r.shardMu.Lock()
	shards := append([]*Registry(nil), r.shards...)
	r.shardMu.Unlock()
	conflicts := 0
	for _, sh := range shards {
		conflicts += s.merge(sh.Snapshot())
	}
	if conflicts > 0 {
		r.getCounter(ObsHistBoundsConflicts).Add(int64(conflicts))
		s.Counters[ObsHistBoundsConflicts] += int64(conflicts)
	}
	return s
}

// ownSnapshot copies r's own instruments, shards excluded.
func (r *Registry) ownSnapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// merge folds a shard snapshot into s and returns the number of
// histogram series it had to drop for mismatched bucket bounds.
func (s *Snapshot) merge(sh Snapshot) int {
	for name, v := range sh.Counters {
		s.Counters[name] += v
	}
	for name, v := range sh.Gauges {
		s.Gauges[name] += v
	}
	conflicts := 0
	for name, hs := range sh.Histograms {
		base, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = hs
			continue
		}
		if !boundsMatch(base.Buckets, hs.Buckets) {
			conflicts++
			continue
		}
		for i := range base.Counts {
			base.Counts[i] += hs.Counts[i]
		}
		base.Sum += hs.Sum
		base.Count += hs.Count
		if hs.Exemplars != nil {
			if base.Exemplars == nil {
				base.Exemplars = make([]string, len(base.Counts))
			}
			for i, e := range hs.Exemplars {
				if e != "" {
					base.Exemplars[i] = e
				}
			}
		}
		s.Histograms[name] = base
	}
	return conflicts
}

// seriesFamily strips the label suffix from a series key: the Prometheus
// metric-family name a # TYPE line announces.
func seriesFamily(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// sortedSeries returns the keys of a metric map ordered by (family,
// series), so every labeled variant of one family is contiguous in the
// exposition — required for the single # TYPE line per family — and the
// output is deterministic.
func sortedSeries[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := seriesFamily(out[i]), seriesFamily(out[j])
		if fi != fj {
			return fi < fj
		}
		return out[i] < out[j]
	})
	return out
}

// Package obs is the unified instrumentation layer for the DECOR
// reproduction: a dependency-free (stdlib only) registry of named
// counters, gauges and fixed-bucket histograms with atomic updates, plus
// lightweight span timing for the hot phases (candidate scoring, benefit
// evaluation, leader election, heartbeat rounds).
//
// The paper's evaluation (§4) is entirely about measured quantities —
// messages per cell, rounds, redundant nodes, coverage fractions — but
// internal/metrics only measures runs post-hoc. This package observes a
// run while it executes: internal/sim emits per-event counters and a
// queue-depth gauge, internal/protocol emits heartbeat/election/placement
// counters, and internal/core records per-round benefit-evaluation wall
// time. Two exporters make the data consumable: Prometheus text
// exposition (WritePrometheus) and a JSON snapshot that internal/trace
// appends to its JSONL schema as an "obs" record.
//
// All instruments are safe for concurrent use; Registry lookups use a
// read-mostly map and instrument updates are single atomic operations, so
// instrumented hot paths stay cheap.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced to keep the hot path branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a floating-point metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= upper[i] (and > upper[i-1]); one extra
// overflow bucket holds everything above the last bound (+Inf in the
// Prometheus exposition).
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // len(upper)+1; last = overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upperBounds []float64) *Histogram {
	if len(upperBounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	upper := append([]float64(nil), upperBounds...)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v: inclusive le
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefLatencyBuckets are the default span-duration bounds in seconds,
// spanning 1µs..10s — wide enough for a single benefit evaluation and a
// full deployment round alike.
var DefLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Registry holds named instruments. The zero value is not usable; create
// with NewRegistry (or use the process-wide Default).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], so exposition output is always parseable.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	// Fast path: canonical names are already clean; don't allocate for
	// them (StartSpan sanitizes on every call, including round loops).
	clean := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	b := []byte(name)
	for i, c := range b {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	name = sanitizeName(name)
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	name = sanitizeName(name)
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. An existing histogram is returned
// as-is; its original buckets win.
func (r *Registry) Histogram(name string, upperBounds []float64) *Histogram {
	name = sanitizeName(name)
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(upperBounds)
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is the exported state of one histogram. Counts has one
// entry per bucket plus a trailing overflow bucket (+Inf).
type HistSnapshot struct {
	Buckets []float64 `json:"buckets"`
	Counts  []uint64  `json:"counts"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument in a registry; it
// shares no state with the live registry and marshals directly to JSON
// (the payload of the trace package's "obs" record).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Buckets: append([]float64(nil), h.upper...),
			Counts:  make([]uint64, len(h.buckets)),
			Sum:     h.Sum(),
			Count:   h.Count(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// sortedNames returns the keys of a metric map, ascending, for
// deterministic export ordering.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

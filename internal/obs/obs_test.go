package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", []float64{1, 2})
	// le semantics are inclusive: 1 lands in bucket 0, 2 in bucket 1,
	// anything above the last bound in the overflow bucket.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 2.5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h_seconds"]
	wantCounts := []uint64{2, 2, 2}
	if !reflect.DeepEqual(snap.Counts, wantCounts) {
		t.Errorf("bucket counts = %v, want %v", snap.Counts, wantCounts)
	}
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6", snap.Count)
	}
	if math.Abs(snap.Sum-107.0000001) > 1e-9 {
		t.Errorf("sum = %g, want 107.0000001", snap.Sum)
	}
	if !reflect.DeepEqual(snap.Buckets, []float64{1, 2}) {
		t.Errorf("buckets = %v", snap.Buckets)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

// TestConcurrentUpdates exercises every instrument from many goroutines;
// run with -race this is the registry's thread-safety regression test.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat_seconds", DefLatencyBuckets).Observe(1e-4)
				r.StartSpan("span_seconds").End()
			}
		}()
	}
	// Concurrent snapshots must not race with updates.
	for i := 0; i < 10; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("shared_total").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("depth").Value(); got != float64(total) {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	if got := r.Histogram("lat_seconds", DefLatencyBuckets).Count(); got != uint64(total) {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	if got := r.Histogram("span_seconds", DefLatencyBuckets).Count(); got != uint64(total) {
		t.Errorf("span count = %d, want %d", got, total)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x":   "ok_name:x",
		"bad.name/9":  "bad_name_9",
		"9leading":    "_leading",
		"":            "_",
		"with spaces": "with_spaces",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	snap := r.Snapshot()
	r.Counter("c_total").Add(10)
	if snap.Counters["c_total"] != 1 {
		t.Errorf("snapshot mutated by later updates: %v", snap.Counters)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(1.25)
	r.Histogram("h_seconds", []float64{1, 2}).Observe(1.5)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
}

func TestRegisterStandard(t *testing.T) {
	r := NewRegistry()
	RegisterStandard(r)
	snap := r.Snapshot()
	if _, ok := snap.Counters[SimEvents]; !ok {
		t.Errorf("missing %s", SimEvents)
	}
	if _, ok := snap.Gauges[SimQueueDepth]; !ok {
		t.Errorf("missing %s", SimQueueDepth)
	}
	if _, ok := snap.Histograms[CoreBenefitEvalSeconds]; !ok {
		t.Errorf("missing %s", CoreBenefitEvalSeconds)
	}
}

func TestZeroSpanEndIsNoop(t *testing.T) {
	var s Span
	if d := s.End(); d != 0 {
		t.Errorf("zero span End = %v, want 0", d)
	}
}

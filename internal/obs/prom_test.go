package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition output for a small
// registry, including cumulative bucket counts and name ordering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("decor_b_total").Add(7)
	r.Counter("decor_a_total").Add(2)
	r.Gauge("decor_queue_depth").Set(3)
	h := r.Histogram("decor_round_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.002)
	h.Observe(5) // overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE decor_a_total counter
decor_a_total 2
# TYPE decor_b_total counter
decor_b_total 7
# TYPE decor_queue_depth gauge
decor_queue_depth 3
# TYPE decor_round_seconds histogram
decor_round_seconds_bucket{le="0.001"} 1
decor_round_seconds_bucket{le="0.01"} 3
decor_round_seconds_bucket{le="0.1"} 3
decor_round_seconds_bucket{le="+Inf"} 4
decor_round_seconds_sum 5.0045
decor_round_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrometheusParseable runs a coarse parser over a standard-registry
// dump: every non-comment line must be "name[{le="..."}] value".
func TestPrometheusParseable(t *testing.T) {
	r := NewRegistry()
	RegisterStandard(r)
	r.Counter(SimEvents).Add(11)
	r.StartSpan(CoreRoundSeconds).End()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "\"}") || !strings.Contains(name, `le="`) {
				t.Errorf("malformed label set in %q", line)
			}
			name = name[:i]
		}
		if sanitizeName(name) != name {
			t.Errorf("invalid metric name %q", name)
		}
	}
}

package obs

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// RunFlags bundles the observability flags every decor-* binary exposes:
//
//	-metrics <file>     Prometheus text exposition dump at exit ("-" = stdout)
//	-cpuprofile <file>  pprof CPU profile of the whole run
//	-memprofile <file>  pprof heap profile taken at exit (after a GC)
//
// Usage: Register the flags before flag.Parse, call Start right after,
// and Finish at the end of main (error-exit paths skip the dumps, like
// they skip any other output).
type RunFlags struct {
	Metrics    string
	CPUProfile string
	MemProfile string

	cpuFile *os.File
}

// Register installs the three flags on fs.
func (f *RunFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "", `write Prometheus text-format metrics to this file at exit ("-" = stdout)`)
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
}

// Start pre-registers the standard instrument set on the default registry
// (so the exit dump exposes the full taxonomy even for phases this run
// never enters) and begins CPU profiling if requested.
func (f *RunFlags) Start() error {
	RegisterStandard(Default())
	if f.CPUProfile != "" {
		fh, err := os.Create(f.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fh.Close()
			return err
		}
		f.cpuFile = fh
	}
	return nil
}

// Finish stops the CPU profile and writes the heap profile and metrics
// dumps that were requested.
func (f *RunFlags) Finish() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return err
		}
	}
	if f.MemProfile != "" {
		fh, err := os.Create(f.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle allocations so the heap profile is meaningful
		if err := pprof.WriteHeapProfile(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
	}
	if f.Metrics != "" {
		out := os.Stdout
		if f.Metrics != "-" {
			fh, err := os.Create(f.Metrics)
			if err != nil {
				return err
			}
			defer fh.Close()
			out = fh
		}
		if err := Default().WritePrometheus(out); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"sort"
	"strings"
)

// LabelSet is an interned, canonically rendered set of label key/value
// pairs — the low-alloc handle hot paths attach to an instrument lookup.
// Interning happens once per distinct pair list (Registry.Labels); after
// that the handle is a single pre-rendered string, instrument lookup is
// one map probe, and updates on the returned instrument are the same
// atomics as unlabeled metrics. The zero LabelSet means "no labels".
type LabelSet struct {
	expo string // `{k="v",k2="v2"}` in canonical key order; "" = unlabeled
}

// String returns the rendered exposition suffix (empty for no labels).
func (ls LabelSet) String() string { return ls.expo }

// Labels interns a key/value pair list into a LabelSet. Keys are
// sanitized to the Prometheus label alphabet and sorted; values are
// escaped. Interning is memoized on the raw input, so a hot caller
// passing the same pairs repeatedly pays one read-locked map probe and
// zero allocations after the first call — but callers that can cache the
// LabelSet (or the instrument itself) should.
func (r *Registry) Labels(kv ...string) LabelSet {
	if len(kv) == 0 {
		return LabelSet{}
	}
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	key := strings.Join(kv, "\x00")
	r.lmu.RLock()
	ls, ok := r.interned[key]
	r.lmu.RUnlock()
	if ok {
		return ls
	}
	ls = renderLabels(kv)
	r.lmu.Lock()
	if prev, ok := r.interned[key]; ok {
		ls = prev
	} else {
		r.interned[key] = ls
	}
	r.lmu.Unlock()
	return ls
}

// renderLabels builds the canonical `{k="v",...}` suffix: keys
// sanitized and sorted, values escaped per the Prometheus text format.
func renderLabels(kv []string) LabelSet {
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{sanitizeLabelKey(kv[i]), kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		escapeLabelValue(&sb, p.v)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return LabelSet{expo: sb.String()}
}

// sanitizeLabelKey maps a label name onto [a-zA-Z0-9_] (the label
// alphabet excludes the colon metric names allow).
func sanitizeLabelKey(k string) string {
	if k == "" {
		return "_"
	}
	clean := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			clean = false
			break
		}
	}
	if clean {
		return k
	}
	b := []byte(k)
	for i, c := range b {
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// escapeLabelValue writes v with the text-format escapes (backslash,
// double quote, newline).
func escapeLabelValue(sb *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
}

// CounterL returns the counter for name with the given labels, creating
// the series on first use. Callers on hot paths should cache the result:
// the returned *Counter is the stable handle, and Inc/Add on it are
// single atomics.
func (r *Registry) CounterL(name string, ls LabelSet) *Counter {
	return r.getCounter(sanitizeName(name) + ls.expo)
}

// GaugeL returns the gauge for name with the given labels.
func (r *Registry) GaugeL(name string, ls LabelSet) *Gauge {
	return r.getGauge(sanitizeName(name) + ls.expo)
}

// HistogramL returns the histogram for name with the given labels,
// creating it with the bounds on first use (mismatched bounds on an
// existing series count under ObsHistBoundsConflicts, like Histogram).
func (r *Registry) HistogramL(name string, ls LabelSet, upperBounds []float64) *Histogram {
	return r.getHistogram(sanitizeName(name)+ls.expo, upperBounds)
}

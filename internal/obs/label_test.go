package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestLabelsInternCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Labels("route", "plan", "tenant", "acme")
	b := r.Labels("tenant", "acme", "route", "plan") // different order, same set
	if a.String() != b.String() {
		t.Fatalf("label order not canonicalized: %q vs %q", a, b)
	}
	if want := `{route="plan",tenant="acme"}`; a.String() != want {
		t.Fatalf("rendered labels = %q, want %q", a, want)
	}
	// Same input pairs must yield the identical interned handle.
	if c := r.Labels("route", "plan", "tenant", "acme"); c != a {
		t.Fatalf("re-interning returned a different handle")
	}
	if z := r.Labels(); z.String() != "" {
		t.Fatalf("empty Labels = %q, want unlabeled", z)
	}
}

func TestLabelsEscapingAndSanitizing(t *testing.T) {
	r := NewRegistry()
	ls := r.Labels("bad key!", `va"l\ue`+"\n")
	if want := `{bad_key_="va\"l\\ue\n"}`; ls.String() != want {
		t.Fatalf("escaped labels = %q, want %q", ls, want)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	base := r.Counter("decor_test_total")
	plan := r.CounterL("decor_test_total", r.Labels("route", "plan"))
	repair := r.CounterL("decor_test_total", r.Labels("route", "repair"))
	if base == plan || plan == repair {
		t.Fatal("labeled series must be distinct instruments")
	}
	// The handle is stable: looking the series up again returns the same
	// counter (hot paths cache this pointer and stay atomic-only).
	if again := r.CounterL("decor_test_total", r.Labels("route", "plan")); again != plan {
		t.Fatal("labeled lookup not stable")
	}
	base.Add(1)
	plan.Add(2)
	repair.Add(3)
	s := r.Snapshot()
	if got := s.Counters[`decor_test_total{route="plan"}`]; got != 2 {
		t.Fatalf("plan series = %d, want 2", got)
	}
	if got := s.Counters["decor_test_total"]; got != 1 {
		t.Fatalf("base series = %d, want 1", got)
	}
}

func TestLabeledPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterL("decor_req_total", r.Labels("route", "plan")).Add(2)
	r.CounterL("decor_req_total", r.Labels("route", "repair")).Add(5)
	r.Counter("decor_req_zz_total").Add(9) // sorts between family and labeled series by raw byte order
	r.HistogramL("decor_lat_seconds", r.Labels("route", "plan"), []float64{0.1, 1}).Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// One # TYPE line per family, labeled variants contiguous under it.
	if strings.Count(out, "# TYPE decor_req_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line for decor_req_total:\n%s", out)
	}
	for _, want := range []string{
		"decor_req_total{route=\"plan\"} 2\n",
		"decor_req_total{route=\"repair\"} 5\n",
		"# TYPE decor_lat_seconds histogram",
		`decor_lat_seconds_bucket{route="plan",le="0.1"} 1`,
		`decor_lat_seconds_bucket{route="plan",le="+Inf"} 1`,
		`decor_lat_seconds_sum{route="plan"} 0.05`,
		`decor_lat_seconds_count{route="plan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The labeled series must not split the family's TYPE block: plan and
	// repair lines are adjacent.
	pi := strings.Index(out, `decor_req_total{route="plan"}`)
	ri := strings.Index(out, `decor_req_total{route="repair"}`)
	zi := strings.Index(out, "decor_req_zz_total 9")
	if !(pi < ri && ri < zi) {
		t.Fatalf("family grouping broken (plan@%d repair@%d zz@%d):\n%s", pi, ri, zi, out)
	}
}

func TestShardMergeAtScrape(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("decor_runs_total").Add(1)
	parent.Gauge("decor_depth").Set(2)
	parent.Histogram("decor_sec", []float64{1, 10}).Observe(0.5)

	s1, s2 := parent.Shard(), parent.Shard()
	s1.Counter("decor_runs_total").Add(10)
	s2.Counter("decor_runs_total").Add(100)
	s2.Counter("decor_only_shard_total").Add(7)
	s1.Gauge("decor_depth").Set(3)
	s1.Histogram("decor_sec", []float64{1, 10}).Observe(5)

	snap := parent.Snapshot()
	if got := snap.Counters["decor_runs_total"]; got != 111 {
		t.Fatalf("merged counter = %d, want 111", got)
	}
	if got := snap.Counters["decor_only_shard_total"]; got != 7 {
		t.Fatalf("shard-only counter = %d, want 7", got)
	}
	if got := snap.Gauges["decor_depth"]; got != 5 {
		t.Fatalf("merged gauge = %v, want 5 (sum)", got)
	}
	h := snap.Histograms["decor_sec"]
	if h.Count != 2 || h.Sum != 5.5 {
		t.Fatalf("merged histogram count=%d sum=%v, want 2/5.5", h.Count, h.Sum)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("merged buckets = %v", h.Counts)
	}
	// Shard updates are visible on the next scrape (live merge).
	s1.Counter("decor_runs_total").Add(1)
	if got := parent.Snapshot().Counters["decor_runs_total"]; got != 112 {
		t.Fatalf("second scrape = %d, want 112", got)
	}
}

func TestShardMergeBoundsConflictCounted(t *testing.T) {
	parent := NewRegistry()
	parent.Histogram("decor_sec", []float64{1}).Observe(0.5)
	sh := parent.Shard()
	sh.Histogram("decor_sec", []float64{2}).Observe(0.5)
	parent.Snapshot() // first scrape detects and counts the conflict
	snap := parent.Snapshot()
	if got := snap.Counters[ObsHistBoundsConflicts]; got < 1 {
		t.Fatalf("conflict counter = %d, want >= 1", got)
	}
	if h := snap.Histograms["decor_sec"]; h.Count != 1 {
		t.Fatalf("parent series polluted by mismatched shard: count=%d", h.Count)
	}
}

func TestShardConcurrentScrape(t *testing.T) {
	parent := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		sh := parent.Shard()
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sh.Counter("decor_x_total")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				parent.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := parent.Snapshot().Counters["decor_x_total"]; got != 4000 {
		t.Fatalf("merged total = %d, want 4000", got)
	}
}

package obs

// The process-wide default registry. The library packages (sim, protocol,
// core) record into it unless explicitly rebound, and the decor-* binaries
// export it via the -metrics flag.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// StartSpan begins timing the named phase on the default registry.
func StartSpan(name string) Span { return defaultRegistry.StartSpan(name) }

// Canonical metric names, grouped by emitting package. DESIGN.md §7
// documents the taxonomy.
const (
	// internal/sim engine event counters and queue-depth gauge.
	SimEvents     = "decor_sim_events_total"
	SimSent       = "decor_sim_messages_sent_total"
	SimDelivered  = "decor_sim_messages_delivered_total"
	SimDropped    = "decor_sim_messages_dropped_total"
	SimLost       = "decor_sim_messages_lost_total"
	SimTimers     = "decor_sim_timers_fired_total"
	SimQueueDepth = "decor_sim_queue_depth"

	// internal/sim chaos counters (fault-injection layer, DESIGN.md §10).
	SimDelayed          = "decor_sim_messages_delayed_total"
	SimDuplicated       = "decor_sim_messages_duplicated_total"
	SimPartitionDropped = "decor_sim_messages_partition_dropped_total"
	SimCrashes          = "decor_sim_crashes_total"
	SimRestarts         = "decor_sim_restarts_total"

	// internal/protocol heartbeat / election / placement counters.
	ProtoHeartbeats          = "decor_protocol_heartbeats_total"
	ProtoPlacementsAnnounced = "decor_protocol_placements_announced_total"
	ProtoPlacementsReceived  = "decor_protocol_placements_received_total"
	ProtoFailuresDetected    = "decor_protocol_failures_detected_total"
	ProtoLeaderChanges       = "decor_protocol_leader_changes_total"

	// internal/core incremental benefit-cache counters: how many cached
	// candidate benefits each delta update touched, and how often the
	// Voronoi scheme fell back to an exact knowledge-restricted
	// evaluation for a candidate near the communication-radius boundary
	// (DESIGN.md §8).
	CoreCacheDeltaUpdates = "decor_core_benefit_cache_delta_updates_total"
	CoreCacheFallbacks    = "decor_core_benefit_cache_fallback_evals_total"

	// internal/coverage tiled count store (DESIGN.md §13): materialized
	// count tiles currently resident, and cumulative evictions to the
	// tile backing when a resident limit is set. Together they make the
	// memory footprint of a million-point field observable.
	CoreTilesResident = "decor_core_tiles_resident"
	CoreTileEvictions = "decor_core_tile_evictions_total"

	// internal/service request-path counters and gauges (decor-serve).
	ServePlanRequests   = "decor_serve_plan_requests_total"
	ServeRepairRequests = "decor_serve_repair_requests_total"
	ServeBadRequests    = "decor_serve_bad_requests_total" // 4xx (validation, size, decode)
	ServeRejected       = "decor_serve_rejected_total"     // 503 admission-queue overflow
	ServeTimeouts       = "decor_serve_deadline_exceeded_total"
	ServeErrors         = "decor_serve_errors_total" // 5xx other than rejection
	ServeCacheHits      = "decor_serve_cache_hits_total"
	ServeCacheMisses    = "decor_serve_cache_misses_total"
	ServeCoalesced      = "decor_serve_coalesced_total" // singleflight followers
	ServeQueueDepth     = "decor_serve_queue_depth"
	ServeInflight       = "decor_serve_inflight_plans"
	// ServeHeapAllocs exposes the process's cumulative heap allocation
	// count (runtime/metrics /gc/heap/allocs:objects), refreshed on each
	// /metrics scrape. decor-load divides its before/after difference by
	// the request count to report allocs_per_request.
	ServeHeapAllocs = "decor_serve_go_mallocs_total"

	// internal/session field-session subsystem (DESIGN.md §14): owned
	// sessions (live + evicted snapshots), lifecycle counters, delta
	// throughput, quota rejections, and dropped (lagging) subscribers.
	SessionLive           = "decor_session_fields"
	SessionCreated        = "decor_session_created_total"
	SessionEvicted        = "decor_session_evicted_total"
	SessionRestored       = "decor_session_restored_total"
	SessionDropped        = "decor_session_dropped_total"
	SessionDeltas         = "decor_session_deltas_total"
	SessionQuotaRejected  = "decor_session_quota_rejected_total"
	SessionSubsDropped    = "decor_session_subscribers_dropped_total"
	SessionDeltaSeconds   = "decor_session_delta_seconds"
	SessionRestoreSeconds = "decor_session_restore_seconds"

	// Per-tenant labeled session series, capped at the same tenant
	// cardinality bound as the serve response counter.
	SessionTenantCreated = "decor_session_tenant_created_total"
	SessionTenantDeltas  = "decor_session_tenant_deltas_total"

	// internal/obs self-observation: histogram lookups whose bucket
	// bounds disagreed with the live series (the caller's bounds were
	// dropped — a misconfiguration that used to be silent).
	ObsHistBoundsConflicts = "decor_obs_histogram_bounds_conflicts_total"

	// decor-serve labeled series (obs v2): responses by route/status
	// class (and tenant when the X-Decor-Tenant header is present, up to
	// the cardinality cap). Label handles are interned once per
	// combination, so the hot path is one map probe + one atomic.
	ServeResponses = "decor_serve_responses_total"

	// Phase-latency histograms (span names, unit: seconds).
	ServePlanSeconds            = "decor_serve_plan_seconds"    // worker execution only
	ServeRequestSeconds         = "decor_serve_request_seconds" // queue wait + execution
	CoreRoundSeconds            = "decor_core_round_seconds"
	CoreBenefitEvalSeconds      = "decor_core_benefit_eval_seconds"
	CoreCandidateScoringSeconds = "decor_core_candidate_scoring_seconds"
	CoreCacheBuildSeconds       = "decor_core_benefit_cache_build_seconds"
	ProtoLeaderElectionSeconds  = "decor_protocol_leader_election_seconds"
	ProtoHeartbeatRoundSeconds  = "decor_protocol_heartbeat_round_seconds"
)

// RegisterStandard eagerly creates the full standard instrument set on r,
// so an export after a zero-activity run (or a run that never touches the
// sim engine, like a pure round-based deployment) still exposes every
// series at zero — the Prometheus convention that lets rate() work from
// the first scrape.
func RegisterStandard(r *Registry) {
	for _, name := range []string{
		SimEvents, SimSent, SimDelivered, SimDropped, SimLost, SimTimers,
		SimDelayed, SimDuplicated, SimPartitionDropped, SimCrashes, SimRestarts,
		ProtoHeartbeats, ProtoPlacementsAnnounced, ProtoPlacementsReceived,
		ProtoFailuresDetected, ProtoLeaderChanges,
		CoreCacheDeltaUpdates, CoreCacheFallbacks, CoreTileEvictions,
	} {
		r.Counter(name)
	}
	r.Gauge(SimQueueDepth)
	r.Gauge(CoreTilesResident)
	for _, name := range []string{
		CoreRoundSeconds, CoreBenefitEvalSeconds, CoreCandidateScoringSeconds,
		CoreCacheBuildSeconds,
		ProtoLeaderElectionSeconds, ProtoHeartbeatRoundSeconds,
	} {
		r.Histogram(name, DefLatencyBuckets)
	}
}

// RegisterSession eagerly creates the field-session instrument set on r,
// so the first scrape of a fresh server exposes every session series at
// zero.
func RegisterSession(r *Registry) {
	for _, name := range []string{
		SessionCreated, SessionEvicted, SessionRestored, SessionDropped,
		SessionDeltas, SessionQuotaRejected, SessionSubsDropped,
	} {
		r.Counter(name)
	}
	r.Gauge(SessionLive)
	r.Histogram(SessionDeltaSeconds, DefLatencyBuckets)
	r.Histogram(SessionRestoreSeconds, DefLatencyBuckets)
}

// RegisterServe eagerly creates the decor-serve instrument set on r, so
// the first /metrics scrape of a fresh server already exposes every
// series at zero (rate() works from scrape one).
func RegisterServe(r *Registry) {
	for _, name := range []string{
		ServePlanRequests, ServeRepairRequests, ServeBadRequests,
		ServeRejected, ServeTimeouts, ServeErrors,
		ServeCacheHits, ServeCacheMisses, ServeCoalesced,
	} {
		r.Counter(name)
	}
	r.Gauge(ServeQueueDepth)
	r.Gauge(ServeInflight)
	r.Gauge(ServeHeapAllocs)
	r.Histogram(ServePlanSeconds, DefLatencyBuckets)
	r.Histogram(ServeRequestSeconds, DefLatencyBuckets)
}

package obs

import "net/http"

// promContentType is the Prometheus text exposition content type the
// registry renders (version 0.0.4).
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the registry as a live
// Prometheus scrape endpoint: every GET renders a fresh Snapshot, so a
// scraper sees the counters move while a run is in flight — unlike the
// -metrics flag, which only dumps once at process exit. The handler is
// safe for concurrent scrapes (Snapshot holds only read locks).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		if req.Method == http.MethodHead {
			return
		}
		// A write error means the scraper hung up; there is no one left
		// to report it to.
		_ = r.WritePrometheus(w)
	})
}

// Handler returns the live scrape handler for the process-wide default
// registry — what decor-serve mounts at /metrics.
func Handler() http.Handler { return defaultRegistry.Handler() }

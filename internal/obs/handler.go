package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// promContentType is the Prometheus text exposition content type the
// registry renders (version 0.0.4).
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the registry as a live
// Prometheus scrape endpoint: every GET renders a fresh Snapshot, so a
// scraper sees the counters move while a run is in flight — unlike the
// -metrics flag, which only dumps once at process exit. The handler is
// safe for concurrent scrapes (Snapshot holds only read locks).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		if req.Method == http.MethodHead {
			return
		}
		// A write error means the scraper hung up; there is no one left
		// to report it to.
		_ = r.WritePrometheus(w)
	})
}

// Handler returns the live scrape handler for the process-wide default
// registry — what decor-serve mounts at /metrics.
func Handler() http.Handler { return defaultRegistry.Handler() }

// DebugHandler serves the tracer's ring — what decor-serve mounts at
// /debug/traces:
//
//	GET /debug/traces                 recent trace summaries (JSON array)
//	GET /debug/traces?trace=<hex id>  every span of one trace (JSON array)
//	GET /debug/traces?format=jsonl    the whole ring as JSONL (decor-trace input)
//
// The ?trace form is the drill-down behind the X-Decor-Trace response
// header: paste the header value in and the full span tree comes back.
func (t *Tracer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		if q.Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
			if req.Method == http.MethodHead {
				return
			}
			_ = t.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if idStr := q.Get("trace"); idStr != "" {
			id, err := ParseTraceID(idStr)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans := t.Trace(id)
			if len(spans) == 0 {
				http.Error(w, "trace not found (evicted from the ring or never recorded)", http.StatusNotFound)
				return
			}
			_ = enc.Encode(spans)
			return
		}
		sums := t.Summaries()
		if n, err := strconv.Atoi(q.Get("n")); err == nil && n > 0 && n < len(sums) {
			sums = sums[:n]
		}
		_ = enc.Encode(sums)
	})
}

// DebugHandler serves the flight recorder's merged dump as JSON — what
// decor-serve mounts at /debug/flight for live post-mortems.
func (r *FlightRecorder) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Dump())
	})
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, cumulative
// histogram buckets with le labels, series sorted by (family, labels).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a captured snapshot; see Registry.WritePrometheus.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFam := ""
	for _, name := range sortedSeries(s.Counters) {
		if fam := seriesFamily(name); fam != lastFam {
			fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
			lastFam = fam
		}
		fmt.Fprintf(bw, "%s %d\n", name, s.Counters[name])
	}
	lastFam = ""
	for _, name := range sortedSeries(s.Gauges) {
		if fam := seriesFamily(name); fam != lastFam {
			fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
			lastFam = fam
		}
		fmt.Fprintf(bw, "%s %s\n", name, formatFloat(s.Gauges[name]))
	}
	lastFam = ""
	for _, name := range sortedSeries(s.Histograms) {
		h := s.Histograms[name]
		if fam := seriesFamily(name); fam != lastFam {
			fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
			lastFam = fam
		}
		// A labeled histogram series must splice le into its label set.
		base, labels := name, ""
		if i := len(seriesFamily(name)); i < len(name) {
			base = name[:i]
			labels = name[i+1 : len(name)-1] + "," // strip {}, keep pairs
		}
		var cum uint64
		for i, ub := range h.Buckets {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n", base, labels, formatFloat(ub), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, h.Count)
		fmt.Fprintf(bw, "%s_sum%s %s\n", base, suffixLabels(labels), formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", base, suffixLabels(labels), h.Count)
	}
	return bw.Flush()
}

// suffixLabels turns the spliceable "k=\"v\"," pair string back into a
// standalone `{k="v"}` suffix ("" stays "").
func suffixLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels[:len(labels)-1] + "}"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric, cumulative
// histogram buckets with le labels, metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a captured snapshot; see Registry.WritePrometheus.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, ub := range h.Buckets {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	return bw.Flush()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

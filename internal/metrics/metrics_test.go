package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func TestCollect(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(400, field)
	m := coverage.New(field, pts, 4, 2)
	r := rng.New(3)
	for id := 0; id < 30; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(4), core.Options{})
	d := Collect(m, res)
	if d.Method != "voronoi-small" || d.K != 2 {
		t.Errorf("identity fields wrong: %+v", d)
	}
	if d.TotalNodes != m.NumSensors() {
		t.Errorf("TotalNodes = %d", d.TotalNodes)
	}
	if d.PlacedNodes != res.NumPlaced() || d.PlacedNodes != d.TotalNodes-30 {
		t.Errorf("PlacedNodes = %d", d.PlacedNodes)
	}
	if d.CoverageK != 1 {
		t.Errorf("CoverageK = %v, want 1 after full deploy", d.CoverageK)
	}
	if d.Coverage1 != 1 {
		t.Errorf("Coverage1 = %v", d.Coverage1)
	}
	if d.RedundantFrac < 0 || d.RedundantFrac > 1 {
		t.Errorf("RedundantFrac = %v", d.RedundantFrac)
	}
	if d.Messages != res.Messages || d.MessagesPerCell <= 0 {
		t.Errorf("message fields wrong: %+v", d)
	}
	s := d.String()
	for _, want := range []string{"voronoi-small", "k=2", "total="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestCollectEmptyMap(t *testing.T) {
	field := geom.Square(10)
	m := coverage.New(field, nil, 4, 1)
	d := Collect(m, core.Result{Method: "x"})
	if d.TotalNodes != 0 || d.RedundantFrac != 0 {
		t.Errorf("empty collect = %+v", d)
	}
	if d.CoverageK != 1 {
		t.Errorf("empty field coverage = %v, want vacuous 1", d.CoverageK)
	}
}

func TestDeploymentJSONTags(t *testing.T) {
	d := Deployment{Method: "voronoi-big", K: 3, TotalNodes: 10, PlacedNodes: 4,
		Messages: 20, MessagesPerCell: 2, Rounds: 5, CoverageK: 0.5, Coverage1: 1}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"method", "k", "total_nodes", "placed_nodes", "redundant_nodes",
		"redundant_frac", "messages", "messages_per_cell", "rounds",
		"seeded", "coverage_k", "coverage_1",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON key %q missing in %s", key, data)
		}
	}
	if m["method"] != "voronoi-big" || m["coverage_k"] != 0.5 {
		t.Errorf("values lost: %v", m)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	deps := []Deployment{
		{Method: "centralized", K: 1, TotalNodes: 5},
		{Method: "random", K: 2, TotalNodes: 9, MessagesPerCell: 1.5},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, deps); err != nil {
		t.Fatal(err)
	}
	var back []Deployment
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, deps) {
		t.Errorf("round trip = %+v, want %+v", back, deps)
	}
}

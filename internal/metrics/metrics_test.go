package metrics

import (
	"strings"
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func TestCollect(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(400, field)
	m := coverage.New(field, pts, 4, 2)
	r := rng.New(3)
	for id := 0; id < 30; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(4), core.Options{})
	d := Collect(m, res)
	if d.Method != "voronoi-small" || d.K != 2 {
		t.Errorf("identity fields wrong: %+v", d)
	}
	if d.TotalNodes != m.NumSensors() {
		t.Errorf("TotalNodes = %d", d.TotalNodes)
	}
	if d.PlacedNodes != res.NumPlaced() || d.PlacedNodes != d.TotalNodes-30 {
		t.Errorf("PlacedNodes = %d", d.PlacedNodes)
	}
	if d.CoverageK != 1 {
		t.Errorf("CoverageK = %v, want 1 after full deploy", d.CoverageK)
	}
	if d.Coverage1 != 1 {
		t.Errorf("Coverage1 = %v", d.Coverage1)
	}
	if d.RedundantFrac < 0 || d.RedundantFrac > 1 {
		t.Errorf("RedundantFrac = %v", d.RedundantFrac)
	}
	if d.Messages != res.Messages || d.MessagesPerCell <= 0 {
		t.Errorf("message fields wrong: %+v", d)
	}
	s := d.String()
	for _, want := range []string{"voronoi-small", "k=2", "total="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestCollectEmptyMap(t *testing.T) {
	field := geom.Square(10)
	m := coverage.New(field, nil, 4, 1)
	d := Collect(m, core.Result{Method: "x"})
	if d.TotalNodes != 0 || d.RedundantFrac != 0 {
		t.Errorf("empty collect = %+v", d)
	}
	if d.CoverageK != 1 {
		t.Errorf("empty field coverage = %v, want vacuous 1", d.CoverageK)
	}
}

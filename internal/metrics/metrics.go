// Package metrics computes the per-deployment measurements reported in
// the paper's evaluation (§4): total and newly-placed node counts,
// redundant nodes, message overhead, and coverage fractions at arbitrary
// levels.
package metrics

import (
	"fmt"

	"decor/internal/core"
	"decor/internal/coverage"
)

// Deployment summarizes one deployment run against its coverage map.
type Deployment struct {
	Method          string
	K               int
	TotalNodes      int     // all sensors on the field after the run
	PlacedNodes     int     // sensors the method added
	RedundantNodes  int     // removable without losing k-coverage
	RedundantFrac   float64 // RedundantNodes / TotalNodes
	Messages        int
	MessagesPerCell float64
	Rounds          int
	Seeded          int
	CoverageK       float64 // fraction of points k-covered
	Coverage1       float64 // fraction of points 1-covered
}

// Collect measures a finished run.
func Collect(m *coverage.Map, res core.Result) Deployment {
	d := Deployment{
		Method:          res.Method,
		K:               m.K(),
		TotalNodes:      m.NumSensors(),
		PlacedNodes:     res.NumPlaced(),
		RedundantNodes:  len(m.RedundantSensors()),
		Messages:        res.Messages,
		MessagesPerCell: res.MessagesPerCell(),
		Rounds:          res.Rounds,
		Seeded:          res.Seeded,
		CoverageK:       m.CoverageFrac(m.K()),
		Coverage1:       m.CoverageFrac(1),
	}
	if d.TotalNodes > 0 {
		d.RedundantFrac = float64(d.RedundantNodes) / float64(d.TotalNodes)
	}
	return d
}

// String renders a one-line summary.
func (d Deployment) String() string {
	return fmt.Sprintf(
		"%-14s k=%d total=%d placed=%d redundant=%d (%.1f%%) msgs=%d (%.1f/cell) rounds=%d cov_k=%.1f%%",
		d.Method, d.K, d.TotalNodes, d.PlacedNodes, d.RedundantNodes,
		100*d.RedundantFrac, d.Messages, d.MessagesPerCell, d.Rounds,
		100*d.CoverageK,
	)
}

// Package metrics computes the per-deployment measurements reported in
// the paper's evaluation (§4): total and newly-placed node counts,
// redundant nodes, message overhead, and coverage fractions at arbitrary
// levels.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"

	"decor/internal/core"
	"decor/internal/coverage"
)

// Deployment summarizes one deployment run against its coverage map.
type Deployment struct {
	Method          string  `json:"method"`
	K               int     `json:"k"`
	TotalNodes      int     `json:"total_nodes"`     // all sensors on the field after the run
	PlacedNodes     int     `json:"placed_nodes"`    // sensors the method added
	RedundantNodes  int     `json:"redundant_nodes"` // removable without losing k-coverage
	RedundantFrac   float64 `json:"redundant_frac"`  // RedundantNodes / TotalNodes
	Messages        int     `json:"messages"`
	MessagesPerCell float64 `json:"messages_per_cell"`
	Rounds          int     `json:"rounds"`
	Seeded          int     `json:"seeded"`
	CoverageK       float64 `json:"coverage_k"` // fraction of points k-covered
	Coverage1       float64 `json:"coverage_1"` // fraction of points 1-covered
}

// Collect measures a finished run.
func Collect(m *coverage.Map, res core.Result) Deployment {
	d := Deployment{
		Method:          res.Method,
		K:               m.K(),
		TotalNodes:      m.NumSensors(),
		PlacedNodes:     res.NumPlaced(),
		RedundantNodes:  len(m.RedundantSensors()),
		Messages:        res.Messages,
		MessagesPerCell: res.MessagesPerCell(),
		Rounds:          res.Rounds,
		Seeded:          res.Seeded,
		CoverageK:       m.CoverageFrac(m.K()),
		Coverage1:       m.CoverageFrac(1),
	}
	if d.TotalNodes > 0 {
		d.RedundantFrac = float64(d.RedundantNodes) / float64(d.TotalNodes)
	}
	return d
}

// WriteJSON writes deployments as an indented JSON array — the
// machine-readable companion to the one-line String() form, consumed by
// decor-bench -json.
func WriteJSON(w io.Writer, deps []Deployment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(deps)
}

// String renders a one-line summary.
func (d Deployment) String() string {
	return fmt.Sprintf(
		"%-14s k=%d total=%d placed=%d redundant=%d (%.1f%%) msgs=%d (%.1f/cell) rounds=%d cov_k=%.1f%%",
		d.Method, d.K, d.TotalNodes, d.PlacedNodes, d.RedundantNodes,
		100*d.RedundantFrac, d.Messages, d.MessagesPerCell, d.Rounds,
		100*d.CoverageK,
	)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Errorf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	if one := Summarize([]float64{3}); one.Std != 0 || one.Mean != 3 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty mean/median should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	if Quantile(xs, 0) != 0 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 2 {
		t.Errorf("median quantile = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 1 {
		t.Errorf("q25 = %v", got)
	}
	if got := Quantile(xs, 0.875); got != 3.5 {
		t.Errorf("q87.5 = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestMeanSeries(t *testing.T) {
	got := MeanSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MeanSeries = %v", got)
			break
		}
	}
	if MeanSeries(nil) != nil {
		t.Error("empty MeanSeries should be nil")
	}
}

func TestMeanSeriesRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged input should panic")
		}
	}()
	MeanSeries([][]float64{{1}, {1, 2}})
}

func TestMaxTrueFraction(t *testing.T) {
	// Threshold at 0.37.
	got := MaxTrueFraction(1, 1e-6, func(x float64) bool { return x <= 0.37 })
	if math.Abs(got-0.37) > 1e-5 {
		t.Errorf("threshold = %v, want 0.37", got)
	}
	if MaxTrueFraction(1, 1e-6, func(x float64) bool { return false }) != 0 {
		t.Error("always-false should give 0")
	}
	if MaxTrueFraction(1, 1e-6, func(x float64) bool { return true }) != 1 {
		t.Error("always-true should give hi")
	}
	if MaxTrueFraction(0, 1e-6, func(x float64) bool { return true }) != 0 {
		t.Error("hi<=0 should give 0")
	}
}

func TestMaxTrueFractionMonotoneProperty(t *testing.T) {
	f := func(raw float64) bool {
		thr := math.Mod(math.Abs(raw), 1)
		got := MaxTrueFraction(1, 1e-7, func(x float64) bool { return x <= thr })
		return math.Abs(got-thr) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	// Deterministic LCG resampler.
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	xs := []float64{10, 11, 9, 10.5, 9.5, 10, 10.2, 9.8}
	lo, hi := BootstrapCI(xs, 0.95, 2000, next)
	m := Mean(xs)
	if lo > m || hi < m {
		t.Errorf("CI [%v, %v] excludes mean %v", lo, hi, m)
	}
	if hi-lo > 2 {
		t.Errorf("CI [%v, %v] implausibly wide for tight data", lo, hi)
	}
	if hi-lo <= 0 {
		t.Errorf("CI [%v, %v] degenerate", lo, hi)
	}
	// Degenerate inputs collapse to the mean.
	if lo, hi := BootstrapCI([]float64{5}, 0.95, 100, next); lo != 5 || hi != 5 {
		t.Errorf("singleton CI = [%v, %v]", lo, hi)
	}
	if lo, hi := BootstrapCI(xs, 0, 100, next); lo != hi {
		t.Errorf("zero confidence CI = [%v, %v]", lo, hi)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 30, 7)
	want := []float64{0, 5, 10, 15, 20, 25, 30}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace = %v", got)
			break
		}
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n<2 should panic")
		}
	}()
	Linspace(0, 1, 1)
}

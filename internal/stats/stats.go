// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, multi-run series aggregation
// (the paper averages 5 runs per data point), and monotone binary search
// (used for Fig. 12's "maximum tolerable failure fraction").
package stats

import (
	"math"
	"sort"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes summary statistics; the Std is the sample standard
// deviation (n−1 denominator), zero for n < 2.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MeanSeries averages runs element-wise: runs[i][j] is run i's value at
// series position j. All runs must have equal length; it panics otherwise
// (a harness bug).
func MeanSeries(runs [][]float64) []float64 {
	if len(runs) == 0 {
		return nil
	}
	n := len(runs[0])
	out := make([]float64, n)
	for _, run := range runs {
		if len(run) != n {
			panic("stats: ragged series")
		}
		for j, v := range run {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(runs))
	}
	return out
}

// MaxTrueFraction finds, by bisection to within tol, the largest x in
// [0, hi] for which pred is true, assuming pred is monotone (true below
// some threshold, false above). Returns 0 if pred(0) is false and hi if
// pred(hi) is true.
func MaxTrueFraction(hi, tol float64, pred func(x float64) bool) float64 {
	if hi <= 0 {
		return 0
	}
	if !pred(0) {
		return 0
	}
	if pred(hi) {
		return hi
	}
	lo := 0.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// BootstrapCI returns a (lo, hi) percentile bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95),
// using the supplied deterministic resampler (next() must return uniform
// values in [0,1)). Degenerate inputs return (mean, mean).
func BootstrapCI(xs []float64, confidence float64, resamples int, next func() float64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || resamples < 2 || confidence <= 0 || confidence >= 1 {
		return m, m
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for range xs {
			sum += xs[int(next()*float64(len(xs)))]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := (1 - confidence) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// Linspace returns n evenly spaced values from lo to hi inclusive; n must
// be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

package failure

import (
	"math"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func deployedMap(n int, seed uint64) *coverage.Map {
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, 1)
	r := rng.New(seed)
	for id := 0; id < n; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

func TestRandomFraction(t *testing.T) {
	m := deployedMap(200, 1)
	r := rng.New(2)
	got := Random{Fraction: 0.25}.Select(m, r)
	if len(got) != 50 {
		t.Errorf("failed %d sensors, want 50", len(got))
	}
	// Distinct and sorted.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("ids not strictly ascending")
		}
	}
	if len((Random{Fraction: 0}).Select(m, r)) != 0 {
		t.Error("zero fraction should fail none")
	}
	if got := (Random{Fraction: 1}).Select(m, r); len(got) != 200 {
		t.Errorf("full fraction failed %d", len(got))
	}
}

func TestIIDRate(t *testing.T) {
	m := deployedMap(1000, 3)
	total := 0
	const trials = 30
	for s := uint64(0); s < trials; s++ {
		total += len(IID{Q: 0.3}.Select(m, rng.New(s)))
	}
	mean := float64(total) / trials
	if math.Abs(mean-300) > 3*math.Sqrt(1000*0.3*0.7) {
		t.Errorf("iid mean failures = %v, want ~300", mean)
	}
}

func TestAreaSelectsOnlyInside(t *testing.T) {
	m := deployedMap(300, 5)
	d := geom.DiskAt(50, 50, 24)
	got := Area{Disk: d}.Select(m, nil)
	if len(got) == 0 {
		t.Fatal("area failure selected nothing on a dense field")
	}
	inside := map[int]bool{}
	for _, id := range got {
		p, _ := m.SensorPos(id)
		if !d.Contains(p) {
			t.Fatalf("sensor %d at %v outside disaster disc", id, p)
		}
		inside[id] = true
	}
	// Every in-disc sensor must be selected.
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		if d.Contains(p) && !inside[id] {
			t.Fatalf("sensor %d inside disc not selected", id)
		}
	}
	// Roughly area-proportional: disc is ~18% of the field.
	frac := float64(len(got)) / 300
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("failed fraction = %v, expected near 0.18", frac)
	}
}

func TestAreaRandomCenterStaysInField(t *testing.T) {
	m := deployedMap(300, 7)
	for seed := uint64(0); seed < 20; seed++ {
		got := AreaRandomCenter{Radius: 24}.Select(m, rng.New(seed))
		for _, id := range got {
			if _, ok := m.SensorPos(id); !ok {
				t.Fatal("selected unknown sensor")
			}
		}
	}
}

func TestCorrelatedClusters(t *testing.T) {
	m := deployedMap(400, 9)
	got := Correlated{Clusters: 3, Radius: 15, P: 1}.Select(m, rng.New(1))
	if len(got) == 0 {
		t.Fatal("correlated failure selected nothing")
	}
	// With P=1 all selected sensors lie within one of the cluster discs;
	// regenerate centers with the same stream to verify.
	r := rng.New(1)
	var centers []geom.Point
	sel := map[int]bool{}
	for c := 0; c < 3; c++ {
		center := r.PointInRect(m.Field())
		centers = append(centers, center)
		for _, id := range m.SensorsInBall(center, 15) {
			if !sel[id] && r.Bool(1) {
				sel[id] = true
			}
		}
	}
	for _, id := range got {
		p, _ := m.SensorPos(id)
		ok := false
		for _, c := range centers {
			if c.Dist(p) <= 15 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("sensor %d outside all cluster discs", id)
		}
	}
	// P=0 fails nobody.
	if len((Correlated{Clusters: 3, Radius: 15, P: 0}).Select(m, rng.New(2))) != 0 {
		t.Error("P=0 should fail none")
	}
}

func TestApplyRemovesAndReports(t *testing.T) {
	m := deployedMap(50, 11)
	before := m.NumSensors()
	cov := m.CoverageFrac(1)
	ids := Random{Fraction: 0.4}.Select(m, rng.New(12))
	removed := Apply(m, ids)
	if len(removed) != len(ids) {
		t.Errorf("removed %d, want %d", len(removed), len(ids))
	}
	if m.NumSensors() != before-len(ids) {
		t.Errorf("sensors = %d", m.NumSensors())
	}
	if m.CoverageFrac(1) > cov {
		t.Error("coverage should not increase after failures")
	}
	// Idempotent on already-removed ids.
	again := Apply(m, ids)
	if len(again) != 0 {
		t.Error("re-applying should remove nothing")
	}
}

func TestModelNames(t *testing.T) {
	models := []Model{Random{}, IID{}, Area{}, AreaRandomCenter{}, Correlated{}}
	want := []string{"random", "iid", "area", "area-random", "correlated"}
	for i, mo := range models {
		if mo.Name() != want[i] {
			t.Errorf("model %d name = %q, want %q", i, mo.Name(), want[i])
		}
	}
}

func TestCorrelatedSelectionTable(t *testing.T) {
	m := deployedMap(400, 13)
	cases := []struct {
		name    string
		model   Correlated
		wantMin int // inclusive lower bound on victims
		wantMax int // inclusive upper bound on victims
	}{
		{"no-clusters", Correlated{Clusters: 0, Radius: 20, P: 1}, 0, 0},
		{"zero-radius", Correlated{Clusters: 5, Radius: 0, P: 1}, 0, 0},
		{"certain-death-one-cluster", Correlated{Clusters: 1, Radius: 20, P: 1}, 1, 400},
		{"certain-death-many", Correlated{Clusters: 6, Radius: 25, P: 1}, 30, 400},
		{"coin-flip", Correlated{Clusters: 4, Radius: 20, P: 0.5}, 1, 399},
		{"huge-radius-covers-all", Correlated{Clusters: 1, Radius: 200, P: 1}, 400, 400},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.model.Select(m, rng.New(31))
			if len(got) < tc.wantMin || len(got) > tc.wantMax {
				t.Fatalf("selected %d victims, want in [%d, %d]", len(got), tc.wantMin, tc.wantMax)
			}
			seen := map[int]bool{}
			for i, id := range got {
				if i > 0 && got[i-1] >= id {
					t.Fatal("victims not strictly ascending")
				}
				if seen[id] {
					t.Fatalf("sensor %d selected twice", id)
				}
				seen[id] = true
				if _, ok := m.SensorPos(id); !ok {
					t.Fatalf("victim %d is not a deployed sensor", id)
				}
			}
			// Select must not mutate the map.
			if m.NumSensors() != 400 {
				t.Fatalf("Select mutated the map: %d sensors", m.NumSensors())
			}
		})
	}
}

// Growing the cluster probability can only grow the victim set when the
// centers come from the same stream positions — checked pairwise on the
// same seed. (With P=1 every in-disc sensor dies, so the P=1 set is the
// union of the cluster discs, a superset of any P<1 draw's support.)
func TestCorrelatedFullProbabilityIsDiscUnion(t *testing.T) {
	m := deployedMap(300, 17)
	model := Correlated{Clusters: 3, Radius: 18, P: 1}
	got := model.Select(m, rng.New(8))
	want := map[int]bool{}
	r := rng.New(8)
	for c := 0; c < model.Clusters; c++ {
		center := r.PointInRect(m.Field())
		for _, id := range m.SensorsInBall(center, model.Radius) {
			if !want[id] && r.Bool(1) {
				want[id] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("selected %d, disc union holds %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("sensor %d outside the disc union", id)
		}
	}
}

// Same seed ⇒ same victim set, for every model. This is what makes a
// failure scenario replayable from an experiment log or chaos verdict.
func TestAllModelsDeterministicPerSeed(t *testing.T) {
	m := deployedMap(250, 19)
	models := []Model{
		Random{Fraction: 0.3},
		IID{Q: 0.25},
		Area{Disk: geom.DiskAt(40, 60, 24)},
		AreaRandomCenter{Radius: 24},
		Correlated{Clusters: 3, Radius: 15, P: 0.7},
	}
	for _, mo := range models {
		mo := mo
		t.Run(mo.Name(), func(t *testing.T) {
			a := mo.Select(m, rng.New(77))
			b := mo.Select(m, rng.New(77))
			if len(a) != len(b) {
				t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("victim sets diverge at %d: %d vs %d", i, a[i], b[i])
				}
			}
			// A different seed should (for these parameters) pick a
			// different set — guards against models ignoring the stream.
			if _, isArea := mo.(Area); !isArea {
				c := mo.Select(m, rng.New(78))
				same := len(a) == len(c)
				if same {
					for i := range a {
						if a[i] != c[i] {
							same = false
							break
						}
					}
				}
				if same && len(a) > 0 {
					t.Error("seed change did not change the victim set")
				}
			}
		})
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m := deployedMap(100, 21)
	a := Random{Fraction: 0.3}.Select(m, rng.New(5))
	b := Random{Fraction: 0.3}.Select(m, rng.New(5))
	if len(a) != len(b) {
		t.Fatal("non-deterministic selection size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}

package failure

import (
	"math"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func deployedMap(n int, seed uint64) *coverage.Map {
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, 1)
	r := rng.New(seed)
	for id := 0; id < n; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

func TestRandomFraction(t *testing.T) {
	m := deployedMap(200, 1)
	r := rng.New(2)
	got := Random{Fraction: 0.25}.Select(m, r)
	if len(got) != 50 {
		t.Errorf("failed %d sensors, want 50", len(got))
	}
	// Distinct and sorted.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("ids not strictly ascending")
		}
	}
	if len((Random{Fraction: 0}).Select(m, r)) != 0 {
		t.Error("zero fraction should fail none")
	}
	if got := (Random{Fraction: 1}).Select(m, r); len(got) != 200 {
		t.Errorf("full fraction failed %d", len(got))
	}
}

func TestIIDRate(t *testing.T) {
	m := deployedMap(1000, 3)
	total := 0
	const trials = 30
	for s := uint64(0); s < trials; s++ {
		total += len(IID{Q: 0.3}.Select(m, rng.New(s)))
	}
	mean := float64(total) / trials
	if math.Abs(mean-300) > 3*math.Sqrt(1000*0.3*0.7) {
		t.Errorf("iid mean failures = %v, want ~300", mean)
	}
}

func TestAreaSelectsOnlyInside(t *testing.T) {
	m := deployedMap(300, 5)
	d := geom.DiskAt(50, 50, 24)
	got := Area{Disk: d}.Select(m, nil)
	if len(got) == 0 {
		t.Fatal("area failure selected nothing on a dense field")
	}
	inside := map[int]bool{}
	for _, id := range got {
		p, _ := m.SensorPos(id)
		if !d.Contains(p) {
			t.Fatalf("sensor %d at %v outside disaster disc", id, p)
		}
		inside[id] = true
	}
	// Every in-disc sensor must be selected.
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		if d.Contains(p) && !inside[id] {
			t.Fatalf("sensor %d inside disc not selected", id)
		}
	}
	// Roughly area-proportional: disc is ~18% of the field.
	frac := float64(len(got)) / 300
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("failed fraction = %v, expected near 0.18", frac)
	}
}

func TestAreaRandomCenterStaysInField(t *testing.T) {
	m := deployedMap(300, 7)
	for seed := uint64(0); seed < 20; seed++ {
		got := AreaRandomCenter{Radius: 24}.Select(m, rng.New(seed))
		for _, id := range got {
			if _, ok := m.SensorPos(id); !ok {
				t.Fatal("selected unknown sensor")
			}
		}
	}
}

func TestCorrelatedClusters(t *testing.T) {
	m := deployedMap(400, 9)
	got := Correlated{Clusters: 3, Radius: 15, P: 1}.Select(m, rng.New(1))
	if len(got) == 0 {
		t.Fatal("correlated failure selected nothing")
	}
	// With P=1 all selected sensors lie within one of the cluster discs;
	// regenerate centers with the same stream to verify.
	r := rng.New(1)
	var centers []geom.Point
	sel := map[int]bool{}
	for c := 0; c < 3; c++ {
		center := r.PointInRect(m.Field())
		centers = append(centers, center)
		for _, id := range m.SensorsInBall(center, 15) {
			if !sel[id] && r.Bool(1) {
				sel[id] = true
			}
		}
	}
	for _, id := range got {
		p, _ := m.SensorPos(id)
		ok := false
		for _, c := range centers {
			if c.Dist(p) <= 15 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("sensor %d outside all cluster discs", id)
		}
	}
	// P=0 fails nobody.
	if len((Correlated{Clusters: 3, Radius: 15, P: 0}).Select(m, rng.New(2))) != 0 {
		t.Error("P=0 should fail none")
	}
}

func TestApplyRemovesAndReports(t *testing.T) {
	m := deployedMap(50, 11)
	before := m.NumSensors()
	cov := m.CoverageFrac(1)
	ids := Random{Fraction: 0.4}.Select(m, rng.New(12))
	removed := Apply(m, ids)
	if len(removed) != len(ids) {
		t.Errorf("removed %d, want %d", len(removed), len(ids))
	}
	if m.NumSensors() != before-len(ids) {
		t.Errorf("sensors = %d", m.NumSensors())
	}
	if m.CoverageFrac(1) > cov {
		t.Error("coverage should not increase after failures")
	}
	// Idempotent on already-removed ids.
	again := Apply(m, ids)
	if len(again) != 0 {
		t.Error("re-applying should remove nothing")
	}
}

func TestModelNames(t *testing.T) {
	models := []Model{Random{}, IID{}, Area{}, AreaRandomCenter{}, Correlated{}}
	want := []string{"random", "iid", "area", "area-random", "correlated"}
	for i, mo := range models {
		if mo.Name() != want[i] {
			t.Errorf("model %d name = %q, want %q", i, mo.Name(), want[i])
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m := deployedMap(100, 21)
	a := Random{Fraction: 0.3}.Select(m, rng.New(5))
	b := Random{Fraction: 0.3}.Select(m, rng.New(5))
	if len(a) != len(b) {
		t.Fatal("non-deterministic selection size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}

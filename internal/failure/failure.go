// Package failure implements the paper's two failure models (§2.1):
// independent random node failures and geographic area failures (all
// nodes in a disc destroyed, e.g. by a natural disaster), plus a
// correlated cluster model as an extension, since the paper notes that
// "in practice, failures are correlated (i.e., geographically)".
package failure

import (
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/rng"
)

// Model selects which deployed sensors fail. Implementations must be
// deterministic given the RNG stream.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// Select returns the IDs of sensors that fail, ascending. It must not
	// mutate the map.
	Select(m *coverage.Map, r *rng.RNG) []int
}

// Random fails a fixed fraction of the deployed sensors, chosen uniformly
// without replacement — the x-axis of the paper's Fig. 11.
type Random struct {
	Fraction float64 // in [0, 1]
}

// Name implements Model.
func (Random) Name() string { return "random" }

// Select implements Model.
func (f Random) Select(m *coverage.Map, r *rng.RNG) []int {
	ids := m.SensorIDs()
	k := int(f.Fraction*float64(len(ids)) + 0.5)
	if k < 0 {
		k = 0
	}
	if k > len(ids) {
		k = len(ids)
	}
	picked := r.Sample(len(ids), k)
	// ids is already ascending, so marking the picked positions and
	// sweeping once yields the sorted result without the O(k log k)
	// sort — this runs thousands of times inside Fig. 12's bisection.
	mark := make([]bool, len(ids))
	for _, idx := range picked {
		mark[idx] = true
	}
	out := picked[:0]
	for i, id := range ids {
		if mark[i] {
			out = append(out, id)
		}
	}
	return out
}

// IID fails each sensor independently with probability Q — the paper's
// analytical model where a point covered by k sensors survives with
// probability 1 − q^k.
type IID struct {
	Q float64
}

// Name implements Model.
func (IID) Name() string { return "iid" }

// Select implements Model.
func (f IID) Select(m *coverage.Map, r *rng.RNG) []int {
	var out []int
	for _, id := range m.SensorIDs() {
		if r.Bool(f.Q) {
			out = append(out, id)
		}
	}
	return out
}

// Area destroys every sensor inside a disc — the paper's natural-disaster
// model (Fig. 6 and Figs. 13–14 use radius 24, about 17% of the field).
type Area struct {
	Disk geom.Disk
}

// Name implements Model.
func (Area) Name() string { return "area" }

// Select implements Model.
func (f Area) Select(m *coverage.Map, _ *rng.RNG) []int {
	return m.SensorsInBall(f.Disk.Center, f.Disk.R)
}

// AreaRandomCenter destroys every sensor inside a disc of the given
// radius whose center is drawn uniformly from the field inset so that the
// disc stays inside the monitored area.
type AreaRandomCenter struct {
	Radius float64
}

// Name implements Model.
func (AreaRandomCenter) Name() string { return "area-random" }

// Select implements Model.
func (f AreaRandomCenter) Select(m *coverage.Map, r *rng.RNG) []int {
	inner := m.Field().Inset(f.Radius)
	c := r.PointInRect(inner)
	return m.SensorsInBall(c, f.Radius)
}

// Correlated is a Matérn-style cluster failure model: Clusters centers
// are drawn uniformly and every sensor within Radius of a center fails
// independently with probability P.
type Correlated struct {
	Clusters int
	Radius   float64
	P        float64
}

// Name implements Model.
func (Correlated) Name() string { return "correlated" }

// Select implements Model.
func (f Correlated) Select(m *coverage.Map, r *rng.RNG) []int {
	failed := map[int]bool{}
	for c := 0; c < f.Clusters; c++ {
		center := r.PointInRect(m.Field())
		for _, id := range m.SensorsInBall(center, f.Radius) {
			if !failed[id] && r.Bool(f.P) {
				failed[id] = true
			}
		}
	}
	out := make([]int, 0, len(failed))
	for id := range failed {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Apply removes the selected sensors from the coverage map and returns
// their former positions so callers (e.g. restoration experiments) can
// inspect or report them.
func Apply(m *coverage.Map, ids []int) map[int]geom.Point {
	removed := make(map[int]geom.Point, len(ids))
	for _, id := range ids {
		if p, ok := m.SensorPos(id); ok {
			removed[id] = p
			m.RemoveSensor(id)
		}
	}
	return removed
}

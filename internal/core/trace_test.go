package core

import (
	"context"
	"testing"

	"decor/internal/obs"
	"decor/internal/rng"
)

// TestDeployEmitsTraceSpans checks that a trace carried in Options.Ctx
// flows into placement: every method emits a core.deploy child span, and
// the round-based methods hang one core.round span per executed round off
// it.
func TestDeployEmitsTraceSpans(t *testing.T) {
	for _, meth := range allMethods() {
		tr := obs.NewTracer(4096)
		ctx, root := tr.StartTrace(context.Background(), "req")
		m := newField(t, 1, 30, 3)
		res := meth.Deploy(m, rng.New(4), Options{Ctx: ctx})
		root.End()

		spans := tr.Trace(root.TraceID())
		var deploy *obs.SpanRecord
		rounds := 0
		for i := range spans {
			switch spans[i].Name {
			case "core.deploy":
				deploy = &spans[i]
			case "core.round":
				rounds++
			}
		}
		if deploy == nil {
			t.Fatalf("%s: no core.deploy span", meth.Name())
		}
		if deploy.Parent != spans[len(spans)-1].Span && deploy.Trace != root.TraceID().String() {
			t.Errorf("%s: core.deploy not in the request trace", meth.Name())
		}
		switch meth.(type) {
		case GridDECOR, VoronoiDECOR:
			if rounds != res.Rounds {
				t.Errorf("%s: %d core.round spans, want %d", meth.Name(), rounds, res.Rounds)
			}
			for i := range spans {
				if spans[i].Name == "core.round" && spans[i].Parent != deploy.Span {
					t.Errorf("%s: core.round parent = %q, want core.deploy %q",
						meth.Name(), spans[i].Parent, deploy.Span)
				}
			}
		default:
			if rounds != 0 {
				t.Errorf("%s: unexpected core.round spans (%d)", meth.Name(), rounds)
			}
		}
	}
}

// TestDeployWithoutTraceIsSilent: no trace in Options.Ctx (or no Ctx at
// all) must record nothing and must not panic.
func TestDeployWithoutTraceIsSilent(t *testing.T) {
	m := newField(t, 1, 30, 3)
	GridDECOR{CellSize: 5}.Deploy(m, rng.New(4), Options{})
	m2 := newField(t, 1, 30, 3)
	VoronoiDECOR{Rc: 8}.Deploy(m2, rng.New(4), Options{Ctx: context.Background()})
}

package core

import (
	"testing"

	"decor/internal/rng"
)

func TestLatticeFullCoverage(t *testing.T) {
	for _, k := range []int{1, 3} {
		m := newField(t, k, 0, 1)
		res := (RegularLattice{}).Deploy(m, rng.New(2), Options{})
		if !m.FullyCovered() {
			t.Fatalf("k=%d: lattice did not cover", k)
		}
		if res.Capped {
			t.Fatalf("k=%d: unexpectedly capped", k)
		}
		for _, pl := range res.Placed {
			if !m.Field().Contains(pl.Pos) {
				t.Fatalf("placement %v outside field", pl.Pos)
			}
		}
	}
}

func TestLatticeIgnoresExistingNetwork(t *testing.T) {
	// Same placement count with or without an initial network (the
	// lattice is oblivious; only the greedy top-up can differ, and a
	// pre-covered field needs less top-up).
	empty := newField(t, 1, 0, 1)
	resEmpty := (RegularLattice{}).Deploy(empty, rng.New(2), Options{})
	seeded := newField(t, 1, 50, 1)
	resSeeded := (RegularLattice{}).Deploy(seeded, rng.New(2), Options{})
	if resSeeded.NumPlaced() > resEmpty.NumPlaced() {
		t.Errorf("seeded field needed more lattice sensors (%d > %d)",
			resSeeded.NumPlaced(), resEmpty.NumPlaced())
	}
}

func TestLatticeVsGreedyCost(t *testing.T) {
	// Obliviousness costs nodes: on a partially covered field the greedy
	// methods beat the lattice.
	mLat := newField(t, 2, 50, 3)
	resLat := (RegularLattice{}).Deploy(mLat, rng.New(4), Options{})
	mGreedy := newField(t, 2, 50, 3)
	resGreedy := (Centralized{}).Deploy(mGreedy, rng.New(4), Options{})
	if resLat.NumPlaced() <= resGreedy.NumPlaced() {
		t.Errorf("lattice (%d) not above adaptive greedy (%d) on a partially covered field",
			resLat.NumPlaced(), resGreedy.NumPlaced())
	}
}

func TestLatticeCustomPitchAndCap(t *testing.T) {
	m := newField(t, 1, 0, 1)
	res := (RegularLattice{Pitch: 3}).Deploy(m, rng.New(2), Options{MaxPlacements: 5})
	if !res.Capped || res.NumPlaced() != 5 {
		t.Errorf("cap not respected: %+v", res.NumPlaced())
	}
}

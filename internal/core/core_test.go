package core

import (
	"testing"

	"decor/internal/coverage"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// newField builds the paper's field at a reduced scale for fast tests:
// 50×50 with 500 Halton points, rs = 4, plus nInitial random sensors.
func newField(t testing.TB, k, nInitial int, seed uint64) *coverage.Map {
	t.Helper()
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(seed)
	for id := 0; id < nInitial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

func allMethods() []Method {
	return []Method{
		Centralized{},
		RandomPlacement{},
		GridDECOR{CellSize: 5},
		GridDECOR{CellSize: 10},
		VoronoiDECOR{Rc: 8},
		VoronoiDECOR{Rc: 14.142135623730951},
	}
}

func TestAllMethodsReachFullCoverage(t *testing.T) {
	for _, k := range []int{1, 3} {
		for _, meth := range allMethods() {
			m := newField(t, k, 50, 1)
			res := meth.Deploy(m, rng.New(2), Options{})
			if !m.FullyCovered() {
				t.Errorf("k=%d %s: not fully covered after deploy", k, meth.Name())
			}
			if res.Capped {
				t.Errorf("k=%d %s: unexpectedly capped", k, meth.Name())
			}
			if res.NumPlaced() == 0 {
				t.Errorf("k=%d %s: placed nothing on an uncovered field", k, meth.Name())
			}
			// Every placement must be inside the field.
			for _, pl := range res.Placed {
				if !m.Field().Contains(pl.Pos) {
					t.Errorf("%s: placement %v outside field", meth.Name(), pl.Pos)
				}
			}
		}
	}
}

func TestDeployIsDeterministic(t *testing.T) {
	for _, meth := range allMethods() {
		m1 := newField(t, 2, 40, 7)
		m2 := newField(t, 2, 40, 7)
		r1 := meth.Deploy(m1, rng.New(9), Options{})
		r2 := meth.Deploy(m2, rng.New(9), Options{})
		if r1.NumPlaced() != r2.NumPlaced() || r1.Messages != r2.Messages {
			t.Fatalf("%s: non-deterministic run (%d/%d placed, %d/%d msgs)",
				meth.Name(), r1.NumPlaced(), r2.NumPlaced(), r1.Messages, r2.Messages)
		}
		for i := range r1.Placed {
			if !r1.Placed[i].Pos.Eq(r2.Placed[i].Pos) {
				t.Fatalf("%s: placement %d differs", meth.Name(), i)
			}
		}
	}
}

func TestDeployOnCoveredFieldIsNoop(t *testing.T) {
	for _, meth := range allMethods() {
		m := newField(t, 1, 0, 1)
		Centralized{}.Deploy(m, rng.New(1), Options{})
		if !m.FullyCovered() {
			t.Fatal("setup failed")
		}
		before := m.NumSensors()
		res := meth.Deploy(m, rng.New(2), Options{})
		if res.NumPlaced() != 0 || m.NumSensors() != before {
			t.Errorf("%s: placed %d sensors on a covered field", meth.Name(), res.NumPlaced())
		}
	}
}

func TestMaxPlacementsCaps(t *testing.T) {
	for _, meth := range allMethods() {
		m := newField(t, 3, 0, 1)
		res := meth.Deploy(m, rng.New(2), Options{MaxPlacements: 10})
		if !res.Capped {
			t.Errorf("%s: expected capped run", meth.Name())
		}
		if res.NumPlaced() > 10 {
			t.Errorf("%s: placed %d > cap", meth.Name(), res.NumPlaced())
		}
		if m.FullyCovered() {
			t.Errorf("%s: 10 sensors cannot 3-cover the test field", meth.Name())
		}
	}
}

func TestCentralizedRescanMatchesIncremental(t *testing.T) {
	m1 := newField(t, 3, 30, 5)
	m2 := newField(t, 3, 30, 5)
	inc := Centralized{}.Deploy(m1, rng.New(1), Options{})
	res := Centralized{FullRescan: true}.Deploy(m2, rng.New(1), Options{})
	if inc.NumPlaced() != res.NumPlaced() {
		t.Fatalf("incremental placed %d, rescan %d", inc.NumPlaced(), res.NumPlaced())
	}
	for i := range inc.Placed {
		if !inc.Placed[i].Pos.Eq(res.Placed[i].Pos) {
			t.Fatalf("placement %d differs: %v vs %v",
				i, inc.Placed[i].Pos, res.Placed[i].Pos)
		}
	}
}

// The paper's headline ordering (Fig. 8): centralized needs the fewest
// nodes, DECOR variants are close, random needs several times more.
func TestMethodEfficiencyOrdering(t *testing.T) {
	placed := map[string]int{}
	for _, meth := range allMethods() {
		total := 0
		for seed := uint64(1); seed <= 3; seed++ {
			m := newField(t, 2, 50, seed)
			res := meth.Deploy(m, rng.New(seed+10), Options{})
			total += res.NumPlaced()
		}
		placed[meth.Name()] = total
	}
	cent := placed["centralized"]
	rnd := placed["random"]
	if rnd < 2*cent {
		t.Errorf("random (%d) should need far more nodes than centralized (%d)", rnd, cent)
	}
	for _, name := range []string{"grid-small", "grid-big", "voronoi-small", "voronoi-big"} {
		if placed[name] < cent {
			t.Errorf("%s (%d) beat centralized (%d): distributed cannot beat global greedy on average", name, placed[name], cent)
		}
		if placed[name] > rnd {
			t.Errorf("%s (%d) worse than random (%d)", name, placed[name], rnd)
		}
	}
}

func TestDistributedMethodsSendMessages(t *testing.T) {
	for _, meth := range allMethods() {
		m := newField(t, 2, 50, 3)
		res := meth.Deploy(m, rng.New(4), Options{})
		distributed := false
		switch meth.(type) {
		case GridDECOR, VoronoiDECOR:
			distributed = true
		}
		if distributed && res.Messages == 0 {
			t.Errorf("%s: no messages recorded", meth.Name())
		}
		if !distributed && res.Messages != 0 {
			t.Errorf("%s: unexpected messages %d", meth.Name(), res.Messages)
		}
		if distributed {
			sum := 0
			for _, n := range res.NodeMessages {
				sum += n
			}
			if sum != res.Messages {
				t.Errorf("%s: NodeMessages sum %d != Messages %d", meth.Name(), sum, res.Messages)
			}
			if res.MessagesPerCell() <= 0 {
				t.Errorf("%s: MessagesPerCell = %v", meth.Name(), res.MessagesPerCell())
			}
		}
	}
}

func TestRestorationAfterAreaFailure(t *testing.T) {
	for _, meth := range allMethods() {
		m := newField(t, 2, 0, 1)
		meth.Deploy(m, rng.New(2), Options{})
		if !m.FullyCovered() {
			t.Fatalf("%s: initial deploy incomplete", meth.Name())
		}
		// Disaster: kill everything in a disc.
		ids := (failure.Area{Disk: geom.DiskAt(25, 25, 12)}).Select(m, nil)
		if len(ids) == 0 {
			t.Fatalf("%s: disaster hit no sensors", meth.Name())
		}
		failure.Apply(m, ids)
		if m.FullyCovered() {
			t.Fatalf("%s: coverage survived total area failure?", meth.Name())
		}
		res := meth.Deploy(m, rng.New(3), Options{})
		if !m.FullyCovered() {
			t.Errorf("%s: restoration incomplete", meth.Name())
		}
		if res.NumPlaced() == 0 {
			t.Errorf("%s: restoration placed nothing", meth.Name())
		}
	}
}

func TestDeployFromEmptyField(t *testing.T) {
	// No initial sensors at all: distributed methods must bootstrap via
	// base-station seeding.
	for _, meth := range allMethods() {
		m := newField(t, 1, 0, 1)
		res := meth.Deploy(m, rng.New(5), Options{})
		if !m.FullyCovered() {
			t.Errorf("%s: failed to bootstrap from empty field", meth.Name())
		}
		switch meth.(type) {
		case GridDECOR, VoronoiDECOR:
			if res.Seeded == 0 {
				t.Errorf("%s: expected at least one base-station seed", meth.Name())
			}
		}
	}
}

func TestPlacementIDsAreFresh(t *testing.T) {
	m := newField(t, 1, 20, 1) // IDs 0..19 taken
	res := (VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(2), Options{})
	for _, pl := range res.Placed {
		if pl.ID < 20 {
			t.Fatalf("placement reused id %d", pl.ID)
		}
	}
}

func TestMethodByName(t *testing.T) {
	for _, name := range AllMethodNames() {
		meth, err := MethodByName(name, 4)
		if err != nil {
			t.Fatalf("MethodByName(%q): %v", name, err)
		}
		if meth.Name() != name {
			t.Errorf("MethodByName(%q).Name() = %q", name, meth.Name())
		}
	}
	if _, err := MethodByName("bogus", 4); err == nil {
		t.Error("unknown method should error")
	}
}

func TestVoronoiPanicsOnSmallRc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rc < rs should panic")
		}
	}()
	m := newField(t, 1, 0, 1)
	(VoronoiDECOR{Rc: 1}).Deploy(m, rng.New(1), Options{})
}

func TestGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cell size <= 0 should panic")
		}
	}()
	m := newField(t, 1, 0, 1)
	(GridDECOR{}).Deploy(m, rng.New(1), Options{})
}

func TestResultHelpers(t *testing.T) {
	r := Result{Messages: 40, Cells: 8}
	if r.MessagesPerCell() != 5 {
		t.Errorf("MessagesPerCell = %v", r.MessagesPerCell())
	}
	if (Result{}).MessagesPerCell() != 0 {
		t.Error("zero cells should yield 0")
	}
}

// Bigger rc gives each Voronoi node a wider accurate view; the paper's
// Fig. 9 reports fewer redundant nodes for big rc. Check the weaker,
// robust form: big-rc redundancy is not dramatically worse.
func TestVoronoiRedundancyReasonable(t *testing.T) {
	red := map[string]int{}
	tot := map[string]int{}
	for seed := uint64(1); seed <= 3; seed++ {
		for _, meth := range []Method{VoronoiDECOR{Rc: 8}, VoronoiDECOR{Rc: 14.142135623730951}} {
			m := newField(t, 2, 50, seed)
			meth.Deploy(m, rng.New(seed), Options{})
			red[meth.Name()] += len(m.RedundantSensors())
			tot[meth.Name()] += m.NumSensors()
		}
	}
	for name, r := range red {
		frac := float64(r) / float64(tot[name])
		if frac > 0.5 {
			t.Errorf("%s: redundant fraction %.2f unreasonably high", name, frac)
		}
	}
}

func TestRoundsRecorded(t *testing.T) {
	m := newField(t, 2, 50, 3)
	res := (GridDECOR{CellSize: 5}).Deploy(m, rng.New(4), Options{})
	if res.Rounds < 1 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
	// Placements must carry non-decreasing round numbers.
	last := 0
	for _, pl := range res.Placed {
		if pl.Round < last {
			t.Fatal("placement rounds not monotone")
		}
		last = pl.Round
	}
}

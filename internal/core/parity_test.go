package core

import (
	"reflect"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/partition"
	"decor/internal/rng"
)

// Differential tests: the incremental benefit cache must be a pure
// optimization. For every scheme, seed, and k the cached deployment has to
// produce byte-identical results to the FullRescan reference path.

// parityMap builds a deterministic scenario: Halton sample points on a
// square field, random initial sensors.
func parityMap(seed uint64, k int) *coverage.Map {
	r := rng.New(seed)
	side := 35 + r.Float64()*15
	field := geom.Square(side)
	pts := lowdisc.Halton{}.Points(250+r.Intn(200), field)
	m := coverage.New(field, pts, 4, k)
	initial := 5 + r.Intn(40)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

// assertSameResult compares every deterministic field of two Results.
func assertSameResult(t *testing.T, label string, ref, got Result) {
	t.Helper()
	if !reflect.DeepEqual(ref.Placed, got.Placed) {
		n := len(ref.Placed)
		if len(got.Placed) < n {
			n = len(got.Placed)
		}
		for i := 0; i < n; i++ {
			if ref.Placed[i] != got.Placed[i] {
				t.Fatalf("%s: placement %d diverges: rescan %+v, cached %+v",
					label, i, ref.Placed[i], got.Placed[i])
			}
		}
		t.Fatalf("%s: placement count diverges: rescan %d, cached %d",
			label, len(ref.Placed), len(got.Placed))
	}
	if ref.Rounds != got.Rounds || ref.Seeded != got.Seeded || ref.Capped != got.Capped {
		t.Fatalf("%s: rounds/seeded/capped diverge: rescan %d/%d/%v, cached %d/%d/%v",
			label, ref.Rounds, ref.Seeded, ref.Capped, got.Rounds, got.Seeded, got.Capped)
	}
	if ref.Messages != got.Messages || !reflect.DeepEqual(ref.NodeMessages, got.NodeMessages) {
		t.Fatalf("%s: message accounting diverges: rescan %d, cached %d",
			label, ref.Messages, got.Messages)
	}
}

func TestGridCacheParity(t *testing.T) {
	for _, cell := range []float64{5, 10} {
		for _, seq := range []bool{false, true} {
			for k := 1; k <= 5; k++ {
				for seed := uint64(1); seed <= 4; seed++ {
					mRef := parityMap(seed, k)
					mCached := parityMap(seed, k)
					ref := GridDECOR{CellSize: cell, Sequential: seq, FullRescan: true}.
						Deploy(mRef, rng.New(seed), Options{})
					got := GridDECOR{CellSize: cell, Sequential: seq}.
						Deploy(mCached, rng.New(seed), Options{})
					label := "grid cell=" + ref.Method
					assertSameResult(t, label, ref, got)
				}
			}
		}
	}
}

func TestVoronoiCacheParity(t *testing.T) {
	for _, rc := range []float64{8, 14.142135623730951} {
		for _, seq := range []bool{false, true} {
			for k := 1; k <= 5; k++ {
				for seed := uint64(1); seed <= 4; seed++ {
					mRef := parityMap(seed, k)
					mCached := parityMap(seed, k)
					ref := VoronoiDECOR{Rc: rc, Sequential: seq, FullRescan: true}.
						Deploy(mRef, rng.New(seed), Options{})
					got := VoronoiDECOR{Rc: rc, Sequential: seq}.
						Deploy(mCached, rng.New(seed), Options{})
					label := "voronoi " + ref.Method
					assertSameResult(t, label, ref, got)
				}
			}
		}
	}
}

// Heterogeneous new-sensor radius exercises the cache at rs != map default,
// including the Voronoi fast-path band at rc − rs.
func TestCacheParityHeterogeneousRs(t *testing.T) {
	for _, newRs := range []float64{2, 3, 6} {
		for seed := uint64(1); seed <= 3; seed++ {
			mRef := parityMap(seed, 2)
			mCached := parityMap(seed, 2)
			ref := GridDECOR{CellSize: 5, NewRs: newRs, FullRescan: true}.
				Deploy(mRef, rng.New(seed), Options{})
			got := GridDECOR{CellSize: 5, NewRs: newRs}.
				Deploy(mCached, rng.New(seed), Options{})
			assertSameResult(t, "grid newRs", ref, got)

			mRef = parityMap(seed, 2)
			mCached = parityMap(seed, 2)
			refV := VoronoiDECOR{Rc: 8, NewRs: newRs, FullRescan: true}.
				Deploy(mRef, rng.New(seed), Options{})
			gotV := VoronoiDECOR{Rc: 8, NewRs: newRs}.
				Deploy(mCached, rng.New(seed), Options{})
			assertSameResult(t, "voronoi newRs", refV, gotV)
		}
	}
}

// Placement caps interact with the cache's applied-vs-decided distinction:
// decisions cut off by the cap must not leak into the snapshot.
func TestCacheParityWithCap(t *testing.T) {
	for _, capN := range []int{1, 3, 17} {
		mRef := parityMap(11, 3)
		mCached := parityMap(11, 3)
		ref := GridDECOR{CellSize: 5, FullRescan: true}.
			Deploy(mRef, rng.New(11), Options{MaxPlacements: capN})
		got := GridDECOR{CellSize: 5}.
			Deploy(mCached, rng.New(11), Options{MaxPlacements: capN})
		assertSameResult(t, "grid cap", ref, got)

		mRef = parityMap(11, 3)
		mCached = parityMap(11, 3)
		refV := VoronoiDECOR{Rc: 8, FullRescan: true}.
			Deploy(mRef, rng.New(11), Options{MaxPlacements: capN})
		gotV := VoronoiDECOR{Rc: 8}.
			Deploy(mCached, rng.New(11), Options{MaxPlacements: capN})
		assertSameResult(t, "voronoi cap", refV, gotV)
	}
}

// benchDeployMap builds the benchmark scenario: the paper's 100×100
// field, 2500 Halton points, partially covered by initial sensors.
func benchDeployMap(k, initial int) *coverage.Map {
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(2500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(424242)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

// BenchmarkBenefitRadius measures one round's worth of benefit
// evaluations — every leader/node picking its best deficient candidate on
// a partially covered field — through the two evaluation paths: the
// seed's snapshot rescan (bestCandidateRadius per candidate) vs the
// incremental cache (DESIGN.md §8). The cached paths read precomputed
// state and allocate nothing.
func BenchmarkBenefitRadius(b *testing.B) {
	m := benchDeployMap(2, 120)
	rs := m.Rs()
	sink := 0

	// Grid bookkeeping: cell candidate lists and the point->cell map.
	part := partition.NewGrid(m.Field(), 5)
	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	cells := part.AssignPoints(pts)
	cellOf := make([]int, len(pts))
	for c, idxs := range cells {
		for _, i := range idxs {
			cellOf[i] = c
		}
	}

	// Voronoi bookkeeping: ownership for the initial sensors.
	vor := partition.NewVoronoi(m.Field(), pts, 8)
	ids := m.SensorIDs()
	pos := make(map[int]geom.Point, len(ids))
	for _, id := range ids {
		p, _ := m.SensorPos(id)
		vor.AddSensor(id, p)
		pos[id] = p
	}

	b.Run("grid-rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := m.Counts()
			for c := range cells {
				perceive := func(i int) int {
					if cellOf[i] != c {
						return -1
					}
					return snap[i]
				}
				if idx, _, ok := bestCandidateRadius(m, rs, cells[c], perceive); ok {
					sink += idx
				}
			}
		}
	})
	b.Run("grid-cached", func(b *testing.B) {
		cache := newBenefitCache(m, rs, cellOf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := range cells {
				if idx, _, ok := cache.best(cells[c]); ok {
					sink += idx
				}
			}
		}
	})
	b.Run("voronoi-rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := m.Counts()
			for _, id := range ids {
				owned := vor.OwnedPoints(id)
				if len(owned) == 0 {
					continue
				}
				nodePos := pos[id]
				perceive := func(i int) int {
					if nodePos.Dist2(m.Point(i)) > 64 {
						return -1
					}
					return snap[i]
				}
				if idx, _, ok := bestCandidateRadius(m, rs, owned, perceive); ok {
					sink += idx
				}
			}
		}
	})
	b.Run("voronoi-cached", func(b *testing.B) {
		cache := newBenefitCache(m, rs, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				if vor.NumOwned(id) == 0 {
					continue
				}
				if idx, _, ok := cache.bestOwned(pos[id], 8, vor, id); ok {
					sink += idx
				}
			}
		}
	})
	_ = sink
}

// BenchmarkDeployAblation runs full distributed deployments through both
// evaluation paths — the end-to-end view of what the cache buys,
// including its build cost.
func BenchmarkDeployAblation(b *testing.B) {
	for _, bc := range []struct {
		name string
		meth Method
	}{
		{"grid-rescan", GridDECOR{CellSize: 5, FullRescan: true}},
		{"grid-cached", GridDECOR{CellSize: 5}},
		{"voronoi-rescan", VoronoiDECOR{Rc: 8, FullRescan: true}},
		{"voronoi-cached", VoronoiDECOR{Rc: 8}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := benchDeployMap(2, 30)
				b.StartTimer()
				bc.meth.Deploy(m, rng.New(7), Options{})
			}
		})
	}
}

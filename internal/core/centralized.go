package core

import (
	"fmt"

	"decor/internal/coverage"
	"decor/internal/obs"
	"decor/internal/rng"
)

// Centralized is the paper's first baseline: the same greedy benefit
// heuristic as DECOR but executed with a global view of the field. It is
// the quality ceiling — "expected to result in a more efficient placement
// than DECOR. However, having global knowledge of the field is not
// possible in many cases" (§4).
type Centralized struct {
	// FullRescan disables the incremental benefit maintenance and
	// recomputes every candidate's benefit from scratch at each step.
	// Results are identical; this exists for the ablation benchmark in
	// DESIGN.md §5.
	FullRescan bool
	// NewRs overrides the sensing radius of the sensors this run
	// deploys (0 = the map's default), supporting the paper's
	// heterogeneous setting where new hardware may out-range the
	// original deployment.
	NewRs float64
	// Workers parallelizes the one-time benefit build of the tiled path
	// (shard semantics: non-positive = GOMAXPROCS). Only consulted on
	// maps with tiled coverage storage; the result is worker-count-
	// independent either way.
	Workers int
}

// newRadius resolves the radius of newly placed sensors for a map.
func (c Centralized) newRadius(m *coverage.Map) float64 {
	if c.NewRs > 0 {
		return c.NewRs
	}
	return m.Rs()
}

// Name implements Method.
func (Centralized) Name() string { return "centralized" }

// Deploy implements Method.
func (c Centralized) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	res := Result{Method: c.Name(), NodeMessages: map[int]int{}, Cells: 1}
	_, depSpan := obs.StartSpanCtx(opt.Ctx, "core.deploy")
	switch {
	case c.FullRescan:
		c.deployRescan(m, opt, &res)
	case m.Tiles() != nil:
		c.deployTiled(m, opt, &res)
	default:
		c.deployIncremental(m, opt, &res)
	}
	res.Rounds = 1
	if depSpan != nil {
		depSpan.SetAttr(fmt.Sprintf("method=%s placed=%d", res.Method, len(res.Placed)))
		depSpan.End()
	}
	return res
}

// deployRescan is the straightforward O(placements · N · ball) variant.
func (c Centralized) deployRescan(m *coverage.Map, opt Options, res *Result) {
	id := nextSensorID(m)
	newRs := c.newRadius(m)
	for !m.FullyCovered() {
		if len(res.Placed) >= opt.maxPlacements() {
			res.Capped = true
			return
		}
		if opt.interrupted() {
			res.Interrupted = true
			return
		}
		// Select the deficient candidate with maximum benefit for the
		// new sensor's footprint, lowest index on ties.
		scoreSpan := obs.StartSpan(obs.CoreCandidateScoringSeconds)
		bestIdx, best := -1, 0
		for i := 0; i < m.NumPoints(); i++ {
			if m.Count(i) >= m.K() {
				continue
			}
			if b := m.BenefitRadius(m.Point(i), newRs); b > best {
				best, bestIdx = b, i
			}
		}
		scoreSpan.End()
		if bestIdx < 0 {
			return // unreachable: a deficient point always benefits itself
		}
		p := m.Point(bestIdx)
		m.AddSensorRadius(id, p, newRs)
		res.Placed = append(res.Placed, Placement{ID: id, Pos: p})
		id++
	}
}

// deployIncremental maintains a benefit value per candidate point and
// updates only the neighborhood of each placement (DESIGN.md §5), making
// one placement O(points-in-disk²) instead of O(N · points-in-disk).
func (c Centralized) deployIncremental(m *coverage.Map, opt Options, res *Result) {
	n := m.NumPoints()
	rs := c.newRadius(m)
	// Candidates sit on sample points, so all three ball queries of the
	// incremental scheme (initial accumulation, affected set, delta
	// update) walk the precomputed within-rs adjacency.
	nb := m.PointNeighborhoods(rs)
	benefit := make([]int, n)
	for j := 0; j < n; j++ {
		if d := m.Deficit(j); d > 0 {
			for _, i := range nb.At(j) {
				benefit[i] += d
			}
		}
	}
	id := nextSensorID(m)
	var affected []int32
	for !m.FullyCovered() {
		if len(res.Placed) >= opt.maxPlacements() {
			res.Capped = true
			return
		}
		if opt.interrupted() {
			res.Interrupted = true
			return
		}
		// Select the deficient candidate with max benefit, lowest index
		// on ties — identical criterion to bestCandidate.
		scoreSpan := obs.StartSpan(obs.CoreCandidateScoringSeconds)
		bestIdx, best := -1, 0
		for i := 0; i < n; i++ {
			if m.Count(i) >= m.K() {
				continue
			}
			if benefit[i] > best {
				best, bestIdx = benefit[i], i
			}
		}
		scoreSpan.End()
		if bestIdx < 0 {
			return
		}
		p := m.Point(bestIdx)
		// Points whose deficit will shrink by this placement.
		affected = affected[:0]
		for _, j := range nb.At(bestIdx) {
			if m.Deficit(int(j)) > 0 {
				affected = append(affected, j)
			}
		}
		if rs == m.Rs() {
			m.AddSensorAtPoint(id, bestIdx)
		} else {
			m.AddSensorRadius(id, p, rs)
		}
		for _, j := range affected {
			for _, i := range nb.At(int(j)) {
				benefit[i]--
			}
		}
		res.Placed = append(res.Placed, Placement{ID: id, Pos: p})
		id++
	}
}

// RandomPlacement is the paper's second baseline: uniform random
// positions until k-coverage is achieved. It needs roughly 4× the nodes
// of any informed method and thousands of redundant sensors (Figs. 8–9).
type RandomPlacement struct{}

// Name implements Method.
func (RandomPlacement) Name() string { return "random" }

// Deploy implements Method.
func (rp RandomPlacement) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	res := Result{Method: rp.Name(), NodeMessages: map[int]int{}, Cells: 1, Rounds: 1}
	_, depSpan := obs.StartSpanCtx(opt.Ctx, "core.deploy")
	defer func() {
		if depSpan != nil {
			depSpan.SetAttr(fmt.Sprintf("method=%s placed=%d", res.Method, len(res.Placed)))
			depSpan.End()
		}
	}()
	id := nextSensorID(m)
	for !m.FullyCovered() {
		if len(res.Placed) >= opt.maxPlacements() {
			res.Capped = true
			return res
		}
		if opt.interrupted() {
			res.Interrupted = true
			return res
		}
		p := r.PointInRect(m.Field())
		m.AddSensor(id, p)
		res.Placed = append(res.Placed, Placement{ID: id, Pos: p})
		id++
	}
	return res
}

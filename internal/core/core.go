// Package core implements the paper's contribution: DECOR, the
// DEpendable COverage Restoration algorithm (§3), in its Grid-based and
// Voronoi-based distributed variants, together with the two evaluation
// baselines (centralized greedy and random placement).
//
// All methods operate on a coverage.Map that may already contain sensors
// (the partially-covered / post-failure case) or be empty (initial
// deployment): restoration and deployment are the same operation, which
// the paper calls out as a benefit of the discrepancy-point formulation.
//
// # Distributed execution model
//
// The distributed variants run in synchronized rounds. At the start of a
// round every responsible node (cell leader, or every sensor in the
// Voronoi scheme) observes a snapshot of the coverage state — everything
// notified up to the end of the previous round — and places at most one
// new sensor at the deficient sample point with maximum benefit (Eq. 1)
// within its responsibility. Placement notifications are exchanged
// between rounds. Concurrent same-round placements near cell borders are
// therefore invisible to each other, which is exactly the coordination
// cost that makes DECOR place more sensors than the centralized greedy
// (Fig. 8) while remaining fully local.
package core

import (
	"context"
	"fmt"
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/rng"
)

// Options bounds a deployment run.
type Options struct {
	// MaxPlacements stops the run after this many new sensors
	// (0 = unlimited). Runs stopped early have Result.Capped set.
	MaxPlacements int
	// MaxRounds bounds distributed rounds (0 = unlimited); a safety net
	// against livelock bugs, not expected to trigger.
	MaxRounds int
	// Ctx, when non-nil, is polled at round boundaries (distributed
	// methods) or per placement (centralized/random): once it is done the
	// run stops early with Result.Interrupted set. Placements applied
	// before the interrupt stay on the map. Cancellation never alters the
	// placements of a run that completes: the polled decision points are
	// loop boundaries, not tie-breakers.
	Ctx context.Context
}

func (o Options) maxPlacements() int {
	if o.MaxPlacements <= 0 {
		return int(^uint(0) >> 1)
	}
	return o.MaxPlacements
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return int(^uint(0) >> 1)
	}
	return o.MaxRounds
}

// interrupted reports whether the run's context (if any) is done.
func (o Options) interrupted() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Placement records one deployed sensor in order.
type Placement struct {
	ID    int
	Pos   geom.Point
	Round int // 0-based round (always 0 for the centralized/random methods)
}

// Result reports a deployment or restoration run.
type Result struct {
	Method string
	// Placed lists the new sensors in placement order, so experiments can
	// replay coverage-vs-node-count curves (Fig. 7).
	Placed []Placement
	// Messages is the total number of protocol messages sent: placement
	// notifications to neighboring leaders (grid) or communication
	// neighbors (Voronoi). The centralized and random baselines send
	// none.
	Messages int
	// NodeMessages attributes messages to the sending node (leader
	// rotation spreads this load; the experiments report its mean).
	NodeMessages map[int]int
	// Cells is the normalization denominator for the paper's
	// messages-per-cell metric: grid cells for the grid scheme, total
	// sensors for the Voronoi scheme (one node per cell).
	Cells int
	// Rounds is the number of synchronized rounds executed.
	Rounds int
	// Seeded counts base-station interventions: sensors seeded into
	// regions unreachable by any existing node (empty cells / orphan
	// points).
	Seeded int
	// Capped reports whether the run stopped at MaxPlacements before
	// reaching full k-coverage.
	Capped bool
	// Interrupted reports whether the run stopped early because
	// Options.Ctx was cancelled or its deadline expired.
	Interrupted bool
}

// NumPlaced returns the number of sensors the run deployed.
func (r Result) NumPlaced() int { return len(r.Placed) }

// MessagesPerCell returns the paper's Fig. 10 metric.
func (r Result) MessagesPerCell() float64 {
	if r.Cells == 0 {
		return 0
	}
	return float64(r.Messages) / float64(r.Cells)
}

// Method is a deployment algorithm. Implementations must be deterministic
// given the RNG stream and must only add sensors to m.
type Method interface {
	// Name identifies the method in experiment output, matching the
	// paper's figure legends.
	Name() string
	// Deploy places sensors on m until every sample point is k-covered
	// (or a cap from opt is reached) and returns the run record.
	Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result
}

// nextSensorID returns the smallest ID strictly greater than every
// existing sensor's, so placements never collide with the pre-deployed
// network.
func nextSensorID(m *coverage.Map) int {
	ids := m.SensorIDs()
	if len(ids) == 0 {
		return 0
	}
	return ids[len(ids)-1] + 1
}

// bestCandidate returns the deficient candidate with the highest
// perceived benefit, ties broken by lowest point index for determinism.
// candidates must be sorted ascending; perceived returns a point's
// believed coverage count (negative = unknown, skipped inside benefit).
// ok is false when no candidate has positive benefit.
func bestCandidate(m *coverage.Map, candidates []int, perceived func(i int) int) (idx int, benefit int, ok bool) {
	return bestCandidateRadius(m, m.Rs(), candidates, perceived)
}

// bestCandidateRadius is bestCandidate for a new-sensor radius that may
// differ from the map default (heterogeneous hardware).
func bestCandidateRadius(m *coverage.Map, rs float64, candidates []int, perceived func(i int) int) (idx int, benefit int, ok bool) {
	best, bestIdx := 0, -1
	for _, c := range candidates {
		if kp := perceived(c); kp < 0 || kp >= m.K() {
			continue // not deficient under this node's knowledge
		}
		b := m.BenefitWithRadius(m.Point(c), rs, perceived)
		if b > best {
			best, bestIdx = b, c
		}
	}
	if bestIdx < 0 {
		return 0, 0, false
	}
	return bestIdx, best, true
}

// validateDeployInputs panics on nil inputs — programmer errors shared by
// every method.
func validateDeployInputs(m *coverage.Map, r *rng.RNG) {
	if m == nil {
		panic("core: nil coverage map")
	}
	if r == nil {
		panic("core: nil rng")
	}
}

// MethodByName constructs one of the paper's six evaluated configurations
// by its experiment label:
//
//	centralized, random,
//	grid-small (5×5 cells), grid-big (10×10 cells),
//	voronoi-small (rc = 2·rs), voronoi-big (rc = 10·√2)
//
// rs is needed to derive the Voronoi radii.
func MethodByName(name string, rs float64) (Method, error) {
	switch name {
	case "centralized":
		return Centralized{}, nil
	case "random":
		return RandomPlacement{}, nil
	case "grid-small":
		return GridDECOR{CellSize: 5}, nil
	case "grid-big":
		return GridDECOR{CellSize: 10}, nil
	case "voronoi-small":
		return VoronoiDECOR{Rc: 2 * rs}, nil
	case "voronoi-big":
		return VoronoiDECOR{Rc: 14.142135623730951}, nil
	case "lattice":
		// Not one of the paper's six (AllMethodNames), but accepted for
		// the regular-positioning baseline experiments.
		return RegularLattice{}, nil
	}
	return nil, fmt.Errorf("core: unknown method %q", name)
}

// AllMethodNames lists the labels accepted by MethodByName in the order
// the paper's figures present them.
func AllMethodNames() []string {
	return []string{
		"grid-small", "grid-big",
		"voronoi-small", "voronoi-big",
		"centralized", "random",
	}
}

// sortedKeys returns the keys of a map[int]... helper for deterministic
// iteration over node sets.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

package core

import (
	"testing"

	"decor/internal/rng"
)

// The concurrency ablation (DESIGN.md §5): serializing the distributed
// execution removes same-round races, so the sequential variants place
// no more — and typically fewer — sensors than the concurrent ones,
// moving toward the centralized bound.

func TestSequentialPlacesNoMoreThanConcurrent(t *testing.T) {
	type pair struct {
		conc Method
		seq  Method
	}
	pairs := []pair{
		{GridDECOR{CellSize: 5}, GridDECOR{CellSize: 5, Sequential: true}},
		{GridDECOR{CellSize: 10}, GridDECOR{CellSize: 10, Sequential: true}},
		{VoronoiDECOR{Rc: 8}, VoronoiDECOR{Rc: 8, Sequential: true}},
	}
	for _, pr := range pairs {
		concTotal, seqTotal := 0, 0
		for seed := uint64(1); seed <= 3; seed++ {
			mc := newField(t, 2, 50, seed)
			rc := pr.conc.Deploy(mc, rng.New(seed+5), Options{})
			ms := newField(t, 2, 50, seed)
			rs := pr.seq.Deploy(ms, rng.New(seed+5), Options{})
			if !mc.FullyCovered() || !ms.FullyCovered() {
				t.Fatalf("%s: incomplete deployment", pr.conc.Name())
			}
			concTotal += rc.NumPlaced()
			seqTotal += rs.NumPlaced()
		}
		// Allow small stochastic wobble but require the ablation not to
		// be worse overall.
		if seqTotal > concTotal+concTotal/20 {
			t.Errorf("%s: sequential placed %d vs concurrent %d — serialization should not cost nodes",
				pr.conc.Name(), seqTotal, concTotal)
		}
	}
}

func TestSequentialStillDistributedBound(t *testing.T) {
	// Serialized DECOR still cannot beat the centralized greedy: its
	// candidate sets and benefit horizons remain local.
	centTotal, seqTotal := 0, 0
	for seed := uint64(1); seed <= 3; seed++ {
		mc := newField(t, 2, 50, seed)
		rc := (Centralized{}).Deploy(mc, rng.New(seed+5), Options{})
		ms := newField(t, 2, 50, seed)
		rs := (GridDECOR{CellSize: 5, Sequential: true}).Deploy(ms, rng.New(seed+5), Options{})
		centTotal += rc.NumPlaced()
		seqTotal += rs.NumPlaced()
	}
	if seqTotal < centTotal {
		t.Errorf("sequential grid (%d) beat centralized (%d): locality penalty vanished?",
			seqTotal, centTotal)
	}
}

func TestSequentialRoundsEqualPlacements(t *testing.T) {
	m := newField(t, 1, 50, 2)
	res := (VoronoiDECOR{Rc: 8, Sequential: true}).Deploy(m, rng.New(3), Options{})
	if res.Rounds != res.NumPlaced() {
		t.Errorf("sequential: rounds %d != placements %d", res.Rounds, res.NumPlaced())
	}
}

// Tile-parallel placement engines for maps with tiled coverage storage
// (DESIGN.md §13).
//
// Both engines here are drop-in replacements for existing paths, proven
// byte-identical by the tiled parity suite:
//
//   - GridDECOR.deployTiled replaces the decideCached/benefitCache round
//     loop when the map uses tiled storage and g.Workers enables it. Per
//     round, leader decisions are scored concurrently across occupied
//     cells (the paper's per-cell independence argument: a decision
//     reads only the round-start snapshot), then committed sequentially
//     in cell order, and the benefit scatter for placements whose disks
//     cross tile boundaries is partitioned by destination tile — each
//     worker owns whole tiles, so the update is race-free and the final
//     benefit state is independent of the worker count.
//
//   - Centralized.deployTiled replaces deployIncremental: the global
//     argmax keeps a per-tile best-candidate memo, skips fully-k-covered
//     tiles in O(1) via the tile deficiency summary, and re-scans only
//     tiles whose memo a placement invalidated (those overlapping the
//     2·rs disk around it).
//
// Determinism argument (the conflict-resolution round): decisions are
// computed from an immutable snapshot into per-cell slots and compacted
// in occupied-cell order, so the decided sequence equals the sequential
// scan's. Applying a round's batch uses the order-free drop formulation
// drop(j) = max(k−old_j,0) − max(k−new_j,0), which equals the sum of the
// sequential per-placement decrements for any apply order; integer adds
// commute, so the scattered benefit array is bit-equal for any worker
// count, including one.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/index"
	"decor/internal/obs"
	"decor/internal/shard"
)

// tiledActive reports whether the tile-parallel grid engine handles this
// deployment. Sequential and FullRescan are ablation modes that must
// keep their reference semantics; maps without tiled storage have no
// tile structure to parallelize over.
func (g GridDECOR) tiledActive(m *coverage.Map) bool {
	return g.Workers != 0 && !g.Sequential && !g.FullRescan && m.Tiles() != nil
}

// tiledGrid carries the engine state for one GridDECOR.deployTiled run.
type tiledGrid struct {
	m     *coverage.Map
	ts    *coverage.TileStore
	st    *gridState
	nb    *index.Neighborhoods
	newRs float64
	w     int // requested workers (0 = GOMAXPROCS)
	k     int32

	// snap mirrors the map's coverage counts (round-start semantics are
	// preserved because it only advances in the sequential gather).
	// benefit is the cell-restricted Eq. 1 cache: exact for every
	// currently-deficient candidate, junk for covered ones — covered
	// candidates are skipped before the read, and they can never become
	// deficient again because counts only grow during a deployment.
	snap    []int32
	benefit []int32
	cellDef []int32 // per grid cell: points with snap < k
	tileOf  []int32

	slots []gridPlacement // per occupied-cell decision slots

	// Round-apply scratch (all reset each round).
	coverCnt  []int32   // per point: placements covering it this round
	touched   []int     // points with coverCnt > 0
	drop      []int32   // per point: benefit drop this round
	dropped   []int     // points with drop > 0
	tileTouch [][]int32 // per tile: dropped points whose disk reaches it
	tileMark  []int     // epoch guard for tileTouch
	dirty     []int     // tiles with a non-empty tileTouch this round
	epoch     int

	cancelled atomic.Bool
	deltas    int64
}

// deployTiled is the tile-parallel round loop. st is fully built and the
// initial message exchange already accounted.
func (g GridDECOR) deployTiled(m *coverage.Map, st *gridState, newRs float64, opt Options, res Result, tctx context.Context, depSpan *obs.ActiveSpan) Result {
	e := &tiledGrid{
		m:     m,
		ts:    m.Tiles(),
		st:    st,
		nb:    m.PointNeighborhoods(newRs),
		newRs: newRs,
		w:     g.Workers,
		k:     int32(m.K()),
	}
	if e.w < 0 {
		e.w = 0 // shard resolves 0 to GOMAXPROCS
	}
	n := m.NumPoints()
	e.tileOf = e.ts.TileMap()
	e.snap = make([]int32, n)
	e.ts.ForEachCount(func(i, c int) { e.snap[i] = int32(c) })
	e.cellDef = make([]int32, e.st.part.NumCells())
	for i, c := range e.snap {
		if c < e.k {
			e.cellDef[e.st.cellOf[i]]++
		}
	}
	e.benefit = make([]int32, n)
	e.coverCnt = make([]int32, n)
	e.drop = make([]int32, n)
	e.tileTouch = make([][]int32, e.ts.NumTiles())
	e.tileMark = make([]int, e.ts.NumTiles())
	for t := range e.tileMark {
		e.tileMark[t] = -1
	}
	e.build(opt)
	defer func() {
		if e.deltas > 0 {
			obsCacheDeltas.Add(e.deltas)
		}
	}()
	if e.cancelled.Load() {
		res.Interrupted = true
		endDeploySpan(depSpan, &res)
		return res
	}

	nextID := nextSensorID(m)
	var decided []gridPlacement
	for round := 0; !m.FullyCovered() && round < opt.maxRounds(); round++ {
		if res.Capped {
			break
		}
		if opt.interrupted() {
			res.Interrupted = true
			break
		}
		roundSpan := obs.StartSpan(obs.CoreRoundSeconds)
		_, trSpan := obs.StartSpanCtx(tctx, "core.round")
		evalSpan := obs.StartSpan(obs.CoreBenefitEvalSeconds)
		decided = e.decide(round, opt, decided[:0])
		evalSpan.End()
		if e.cancelled.Load() {
			res.Interrupted = true
			roundSpan.End()
			if trSpan != nil {
				trSpan.End()
			}
			break
		}
		if len(decided) == 0 {
			// Base-station fallback: seed the lowest deficient point
			// (found through the tile summaries, not a full scan).
			u := e.lowestDeficient()
			if u < 0 {
				roundSpan.End()
				if trSpan != nil {
					trSpan.End()
				}
				break
			}
			decided = append(decided, gridPlacement{leader: -1, cell: st.cellOf[u], pos: m.Point(u), ptIdx: u})
			res.Seeded++
		}
		applied := e.apply(decided, &res, &nextID, round, opt)
		e.fold(applied)
		res.Rounds = round + 1
		roundSpan.End()
		if trSpan != nil {
			trSpan.SetAttr(fmt.Sprintf("round=%d placed=%d", round, len(decided)))
			trSpan.End()
		}
	}
	endDeploySpan(depSpan, &res)
	return res
}

// endDeploySpan closes the core.deploy trace span with the run summary.
func endDeploySpan(depSpan *obs.ActiveSpan, res *Result) {
	if depSpan != nil {
		depSpan.SetAttr(fmt.Sprintf("method=%s rounds=%d placed=%d", res.Method, res.Rounds, len(res.Placed)))
		depSpan.End()
	}
}

// build gathers the cell-restricted benefit cache tile-parallel. Fully
// covered tiles are skipped outright: every candidate in them stays
// non-deficient for the whole run, so its benefit is never read. The
// gather form (sum over the candidate's neighborhood) writes only to the
// worker's own tile, making the build race-free, and integer adds make
// it bit-equal to the sequential scatter build for any worker count.
func (e *tiledGrid) build(opt Options) {
	span := obs.StartSpan(obs.CoreCacheBuildSeconds)
	defer span.End()
	shard.ForEach(e.ts.NumTiles(), e.w, func(t int) {
		if t&31 == 0 && opt.interrupted() {
			e.cancelled.Store(true)
		}
		if e.cancelled.Load() {
			return
		}
		if e.ts.DeficientInTile(t) == 0 {
			return
		}
		for _, ii := range e.ts.TilePoints(t) {
			i := int(ii)
			if e.snap[i] >= e.k {
				continue
			}
			ci := e.st.cellOf[i]
			var b int32
			for _, jj := range e.nb.At(i) {
				j := int(jj)
				if e.st.cellOf[j] != ci {
					continue
				}
				if d := e.k - e.snap[j]; d > 0 {
					b += d
				}
			}
			e.benefit[i] = b
		}
	})
}

// bestIn returns the deficient candidate with maximum cached benefit,
// lowest index on ties (candidates are ascending) — cache.best against
// the engine's snapshot.
func (e *tiledGrid) bestIn(candidates []int) (int, bool) {
	bestV, bestIdx := int32(0), -1
	for _, i := range candidates {
		if e.snap[i] >= e.k {
			continue
		}
		if b := e.benefit[i]; b > bestV {
			bestV, bestIdx = b, i
		}
	}
	return bestIdx, bestIdx >= 0
}

// decide scores one round's leader decisions concurrently across
// occupied cells. Every job reads only round-start state (snap, benefit,
// cellDef, membership) and writes its own slot; compaction in occupied-
// cell order reproduces the sequential decision sequence exactly.
// Cancellation is polled inside the scoring loop (every 32 cells), not
// just at round boundaries, so /v1/plan deadlines abort million-point
// rounds promptly.
func (e *tiledGrid) decide(round int, opt Options, decided []gridPlacement) []gridPlacement {
	occ := e.st.occ
	if cap(e.slots) < len(occ) {
		e.slots = make([]gridPlacement, len(occ))
	}
	e.slots = e.slots[:len(occ)]
	shard.ForEach(len(occ), e.w, func(ci int) {
		if ci&31 == 0 && opt.interrupted() {
			e.cancelled.Store(true)
		}
		if e.cancelled.Load() {
			return
		}
		e.slots[ci] = gridPlacement{ptIdx: -1}
		c := occ[ci]
		leader := e.st.members[c][round%len(e.st.members[c])]
		// Own cell first. cellDef > 0 guarantees a positive-benefit
		// candidate (a deficient point's benefit includes its own
		// deficit), so the check is equivalent to cache.best's ok.
		if e.cellDef[c] > 0 {
			if idx, ok := e.bestIn(e.st.cells[c]); ok {
				e.slots[ci] = gridPlacement{leader, c, e.m.Point(idx), idx}
			}
			return
		}
		// Own cell covered: adopt the first empty deficient neighbor.
		for _, nc := range e.st.nbrs[c] {
			if len(e.st.members[nc]) > 0 || e.cellDef[nc] == 0 {
				continue
			}
			if idx, ok := e.bestIn(e.st.cells[nc]); ok {
				e.slots[ci] = gridPlacement{leader, nc, e.m.Point(idx), idx}
			}
			return
		}
	})
	if e.cancelled.Load() {
		return decided
	}
	for _, s := range e.slots {
		if s.ptIdx >= 0 {
			decided = append(decided, s)
		}
	}
	return decided
}

// apply commits the round's decided placements to the map sequentially
// — identical bookkeeping (IDs, caps, membership, border messages) to
// the seed path — and returns the sample points actually placed at.
func (e *tiledGrid) apply(decided []gridPlacement, res *Result, nextID *int, round int, opt Options) []int {
	m, st := e.m, e.st
	var applied []int
	for _, d := range decided {
		if len(res.Placed) >= opt.maxPlacements() {
			res.Capped = true
			break
		}
		id := *nextID
		*nextID++
		if e.newRs == m.Rs() {
			m.AddSensorAtPoint(id, d.ptIdx)
		} else {
			m.AddSensorRadius(id, d.pos, e.newRs)
		}
		st.addMember(d.cell, id)
		applied = append(applied, d.ptIdx)
		res.Placed = append(res.Placed, Placement{ID: id, Pos: d.pos, Round: round})
		if d.leader < 0 {
			continue // base-station seed: no leader messages
		}
		disk := geom.Disk{Center: d.pos, R: e.newRs}
		for _, nc := range st.nbrs[d.cell] {
			if len(st.members[nc]) == 0 {
				continue
			}
			if disk.IntersectsRect(st.part.CellRect(nc)) {
				res.Messages++
				res.NodeMessages[d.leader]++
			}
		}
		if d.cell != st.part.CellIndex(func() geom.Point { p, _ := m.SensorPos(d.leader); return p }()) {
			res.Messages++ // instruct the remote cell's new leader
			res.NodeMessages[d.leader]++
		}
	}
	return applied
}

// fold advances the snapshot and benefit cache by one round's applied
// placements: gather each covered point's total increment, convert it to
// an order-free benefit drop, then scatter the drops tile-partitioned.
func (e *tiledGrid) fold(applied []int) {
	if len(applied) == 0 {
		return
	}
	// Gather: how many of this round's disks cover each point.
	for _, pi := range applied {
		for _, jj := range e.nb.At(pi) {
			j := int(jj)
			if e.coverCnt[j] == 0 {
				e.touched = append(e.touched, j)
			}
			e.coverCnt[j]++
		}
	}
	// Convert to drops. drop(j) = max(k−old,0) − max(k−new,0) equals the
	// cumulative effect of the sequential per-placement decrements
	// regardless of apply order.
	e.epoch++
	e.dirty = e.dirty[:0]
	par := shard.Workers(e.w, len(e.touched)+1) > 1
	for _, j := range e.touched {
		cc := e.coverCnt[j]
		e.coverCnt[j] = 0
		old := e.snap[j]
		nw := old + cc
		e.snap[j] = nw
		if old >= e.k {
			continue
		}
		var dr int32
		if nw >= e.k {
			dr = e.k - old
			e.cellDef[e.st.cellOf[j]]--
		} else {
			dr = cc
		}
		e.drop[j] = dr
		e.dropped = append(e.dropped, j)
		e.deltas += int64(len(e.nb.At(j)))
		if par {
			// Register j with every tile its disk can reach, so the
			// parallel scatter can partition updates by destination
			// tile (disks crossing tile boundaries appear in each).
			e.ts.VisitTilesInDisk(e.m.Point(j), e.newRs, func(t int) {
				if e.tileMark[t] != e.epoch {
					e.tileMark[t] = e.epoch
					e.tileTouch[t] = e.tileTouch[t][:0]
					e.dirty = append(e.dirty, t)
				}
				e.tileTouch[t] = append(e.tileTouch[t], int32(j))
			})
		}
	}
	e.touched = e.touched[:0]
	// Scatter: each candidate in the dropped points' neighborhoods (same
	// cell only — the leader knowledge model) loses the drop.
	if !par {
		for _, j := range e.dropped {
			dr := e.drop[j]
			cj := e.st.cellOf[j]
			for _, ii := range e.nb.At(j) {
				i := int(ii)
				if e.st.cellOf[i] == cj {
					e.benefit[i] -= dr
				}
			}
		}
	} else {
		// Tile-partitioned: worker w updates only benefit[i] of tiles it
		// owns, so no two workers write the same entry, and the result
		// (a sum of the same integer drops) is worker-count-independent.
		shard.ForEach(len(e.dirty), e.w, func(di int) {
			t := e.dirty[di]
			for _, jj := range e.tileTouch[t] {
				j := int(jj)
				dr := e.drop[j]
				cj := e.st.cellOf[j]
				for _, ii := range e.nb.At(j) {
					i := int(ii)
					if int(e.tileOf[i]) == t && e.st.cellOf[i] == cj {
						e.benefit[i] -= dr
					}
				}
			}
		})
	}
	for _, j := range e.dropped {
		e.drop[j] = 0
	}
	e.dropped = e.dropped[:0]
}

// lowestDeficient returns the lowest-index point with snap < k, or -1 —
// the seed's UncoveredPoints()[0] through the tile summaries instead of
// a full scan.
func (e *tiledGrid) lowestDeficient() int {
	best := -1
	for t := 0; t < e.ts.NumTiles(); t++ {
		if e.ts.DeficientInTile(t) == 0 {
			continue
		}
		for _, ii := range e.ts.TilePoints(t) {
			if e.snap[ii] < e.k {
				if i := int(ii); best < 0 || i < best {
					best = i
				}
				break // tile lists are ascending
			}
		}
	}
	return best
}

// deployTiled is the tile-aware centralized greedy: per-tile argmax
// memos re-scanned only when a placement's 2·rs disk invalidates them,
// fully covered tiles skipped in O(1) via the deficiency summary.
// Placements are byte-identical to deployIncremental (the parity tests
// assert it); Workers parallelizes only the one-time benefit build —
// the steady-state loop is already sub-linear thanks to the memos.
func (c Centralized) deployTiled(m *coverage.Map, opt Options, res *Result) {
	ts := m.Tiles()
	n := m.NumPoints()
	rs := c.newRadius(m)
	nb := m.PointNeighborhoods(rs)
	kk := int32(m.K())
	snap := make([]int32, n)
	ts.ForEachCount(func(i, cnt int) { snap[i] = int32(cnt) })
	benefit := make([]int32, n)
	var cancelled atomic.Bool
	span := obs.StartSpan(obs.CoreCacheBuildSeconds)
	shard.ForEach(ts.NumTiles(), c.Workers, func(t int) {
		if t&31 == 0 && opt.interrupted() {
			cancelled.Store(true)
		}
		if cancelled.Load() {
			return
		}
		if ts.DeficientInTile(t) == 0 {
			return // all candidates covered: their benefit is never read
		}
		for _, ii := range ts.TilePoints(t) {
			i := int(ii)
			if snap[i] >= kk {
				continue
			}
			var b int32
			for _, jj := range nb.At(i) {
				if d := kk - snap[jj]; d > 0 {
					b += d
				}
			}
			benefit[i] = b
		}
	})
	span.End()
	if cancelled.Load() {
		res.Interrupted = true
		return
	}

	nt := ts.NumTiles()
	tileBest := make([]int32, nt) // best candidate per tile, -1 = none
	tileBestV := make([]int32, nt)
	tileValid := make([]bool, nt)
	id := nextSensorID(m)
	for !m.FullyCovered() {
		if len(res.Placed) >= opt.maxPlacements() {
			res.Capped = true
			return
		}
		if opt.interrupted() {
			res.Interrupted = true
			return
		}
		scoreSpan := obs.StartSpan(obs.CoreCandidateScoringSeconds)
		bestIdx, bestV := -1, int32(0)
		for t := 0; t < nt; t++ {
			if ts.DeficientInTile(t) == 0 {
				continue // O(1) skip; counts never shrink mid-run
			}
			if !tileValid[t] {
				bi, bv := int32(-1), int32(0)
				for _, ii := range ts.TilePoints(t) {
					if snap[ii] >= kk {
						continue
					}
					if b := benefit[ii]; b > bv {
						bv, bi = b, ii
					}
				}
				tileBest[t], tileBestV[t], tileValid[t] = bi, bv, true
			}
			// Lexicographic (benefit, -index) max across tiles restores
			// the sequential scan's lowest-global-index tie-break: tile
			// order is spatial, not index order.
			if bi := tileBest[t]; bi >= 0 {
				if v := tileBestV[t]; v > bestV || (v == bestV && bestIdx >= 0 && int(bi) < bestIdx) {
					bestV, bestIdx = v, int(bi)
				}
			}
		}
		scoreSpan.End()
		if bestIdx < 0 {
			return // unreachable: a deficient point always benefits itself
		}
		p := m.Point(bestIdx)
		if rs == m.Rs() {
			m.AddSensorAtPoint(id, bestIdx)
		} else {
			m.AddSensorRadius(id, p, rs)
		}
		for _, jj := range nb.At(bestIdx) {
			j := int(jj)
			if snap[j] < kk {
				for _, ii := range nb.At(j) {
					benefit[ii]--
				}
			}
			snap[j]++
		}
		// Every touched snap/benefit entry lies within 2·rs of the
		// placement; invalidate exactly the tiles that disk can reach.
		ts.VisitTilesInDisk(p, 2*rs, func(t int) { tileValid[t] = false })
		res.Placed = append(res.Placed, Placement{ID: id, Pos: p})
		id++
	}
}

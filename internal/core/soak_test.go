package core

import (
	"testing"

	"decor/internal/failure"
	"decor/internal/rng"
)

// Soak test: long randomized churn across every method — deploy, fail,
// restore, verify invariants — catching interaction bugs the targeted
// tests miss. Skipped with -short.
func TestSoakDeployFailRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := rng.New(31337)
	methods := []Method{
		Centralized{},
		RandomPlacement{},
		GridDECOR{CellSize: 5},
		GridDECOR{CellSize: 10},
		VoronoiDECOR{Rc: 8},
		VoronoiDECOR{Rc: 14.142135623730951},
		RegularLattice{},
		Centralized{NewRs: 6},
		GridDECOR{CellSize: 5, NewRs: 6},
		VoronoiDECOR{Rc: 8, NewRs: 6},
	}
	for trial := 0; trial < 40; trial++ {
		m, _ := randomScenario(r)
		deployer := methods[r.Intn(len(methods))]
		deployer.Deploy(m, r.Split(), Options{})
		if !m.FullyCovered() {
			t.Fatalf("trial %d: %s deploy incomplete", trial, deployer.Name())
		}
		// Several failure/restore cycles with varying models and
		// repairers.
		cycles := 1 + r.Intn(3)
		for cy := 0; cy < cycles; cy++ {
			var model failure.Model
			switch r.Intn(3) {
			case 0:
				model = failure.Random{Fraction: 0.1 + r.Float64()*0.3}
			case 1:
				model = failure.AreaRandomCenter{Radius: 5 + r.Float64()*10}
			default:
				model = failure.Correlated{Clusters: 1 + r.Intn(3), Radius: 8, P: 0.9}
			}
			ids := model.Select(m, r.Split())
			failure.Apply(m, ids)
			repairer := methods[r.Intn(len(methods))]
			repairer.Deploy(m, r.Split(), Options{})
			if !m.FullyCovered() {
				t.Fatalf("trial %d cycle %d: %s after %s restore incomplete",
					trial, cy, repairer.Name(), model.Name())
			}
			// Coverage counts must stay consistent with the sensor set.
			checkConsistency(t, m, trial, cy)
		}
	}
}

func checkConsistency(t *testing.T, m interface {
	NumPoints() int
	Count(int) int
	K() int
	NumDeficient() int
}, trial, cy int) {
	t.Helper()
	deficient := 0
	for i := 0; i < m.NumPoints(); i++ {
		if m.Count(i) < m.K() {
			deficient++
		}
	}
	if deficient != m.NumDeficient() {
		t.Fatalf("trial %d cycle %d: deficient bookkeeping drifted (%d vs %d)",
			trial, cy, deficient, m.NumDeficient())
	}
}

package core

import (
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// Randomized invariant tests across methods, k, field shapes and initial
// densities.

func randomScenario(r *rng.RNG) (*coverage.Map, Method) {
	side := 30 + r.Float64()*30
	field := geom.Square(side)
	n := 200 + r.Intn(400)
	pts := lowdisc.Halton{}.Points(n, field)
	k := 1 + r.Intn(3)
	m := coverage.New(field, pts, 4, k)
	initial := r.Intn(60)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	methods := []Method{
		Centralized{},
		RandomPlacement{},
		GridDECOR{CellSize: 5},
		GridDECOR{CellSize: 10},
		VoronoiDECOR{Rc: 8},
		VoronoiDECOR{Rc: 14.142135623730951},
		GridDECOR{CellSize: 5, Sequential: true},
		VoronoiDECOR{Rc: 8, Sequential: true},
	}
	return m, methods[r.Intn(len(methods))]
}

func TestPropertyDeployInvariants(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 25; trial++ {
		m, meth := randomScenario(r)
		before := m.SensorIDs()
		res := meth.Deploy(m, r.Split(), Options{})

		// 1. Full coverage reached.
		if !m.FullyCovered() {
			t.Fatalf("trial %d (%s): not fully covered", trial, meth.Name())
		}
		// 2. Placements have unique fresh IDs inside the field.
		seen := map[int]bool{}
		maxBefore := -1
		if len(before) > 0 {
			maxBefore = before[len(before)-1]
		}
		for _, pl := range res.Placed {
			if seen[pl.ID] {
				t.Fatalf("trial %d (%s): duplicate placement id %d", trial, meth.Name(), pl.ID)
			}
			seen[pl.ID] = true
			if pl.ID <= maxBefore {
				t.Fatalf("trial %d (%s): reused id %d", trial, meth.Name(), pl.ID)
			}
			if !m.Field().Contains(pl.Pos) {
				t.Fatalf("trial %d (%s): placement outside field", trial, meth.Name())
			}
		}
		// 3. Sensor count bookkeeping is consistent.
		if m.NumSensors() != len(before)+res.NumPlaced() {
			t.Fatalf("trial %d (%s): sensor count mismatch", trial, meth.Name())
		}
		// 4. Informed methods place only at sample points.
		if _, isRandom := meth.(RandomPlacement); !isRandom {
			for _, pl := range res.Placed {
				found := false
				m.VisitPointsInBall(pl.Pos, 1e-9, func(int, geom.Point) bool {
					found = true
					return false
				})
				if !found {
					t.Fatalf("trial %d (%s): placement %v not at a sample point",
						trial, meth.Name(), pl.Pos)
				}
			}
		}
		// 5. Removing every placed sensor restores the initial deficit
		// structure (add/remove symmetry through the whole stack).
		for _, pl := range res.Placed {
			if !m.RemoveSensor(pl.ID) {
				t.Fatalf("trial %d (%s): placed sensor %d missing", trial, meth.Name(), pl.ID)
			}
		}
		if m.NumSensors() != len(before) {
			t.Fatalf("trial %d (%s): removal did not restore count", trial, meth.Name())
		}
	}
}

func TestPropertyDeployIdempotent(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		m, meth := randomScenario(r)
		meth.Deploy(m, r.Split(), Options{})
		again := meth.Deploy(m, r.Split(), Options{})
		if again.NumPlaced() != 0 {
			t.Fatalf("trial %d (%s): redeploy placed %d sensors on a covered field",
				trial, meth.Name(), again.NumPlaced())
		}
	}
}

func TestPropertyCapRespected(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 10; trial++ {
		m, meth := randomScenario(r)
		cap := 1 + r.Intn(20)
		res := meth.Deploy(m, r.Split(), Options{MaxPlacements: cap})
		if res.NumPlaced() > cap {
			t.Fatalf("trial %d (%s): placed %d > cap %d", trial, meth.Name(), res.NumPlaced(), cap)
		}
		if res.NumPlaced() < cap && !m.FullyCovered() && !res.Capped {
			t.Fatalf("trial %d (%s): stopped early without cap flag", trial, meth.Name())
		}
	}
}

// Coverage counts must be exactly reproducible by replaying the result
// onto a fresh map — the property Fig. 7 relies on.
func TestPropertyReplayEquivalence(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 8; trial++ {
		side := 40.0
		field := geom.Square(side)
		pts := lowdisc.Halton{}.Points(300, field)
		k := 1 + r.Intn(2)
		build := func() *coverage.Map {
			m := coverage.New(field, pts, 4, k)
			rr := rng.New(42 + uint64(trial))
			for id := 0; id < 30; id++ {
				m.AddSensor(id, rr.PointInRect(field))
			}
			return m
		}
		m := build()
		res := (VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(7), Options{})
		replay := build()
		for _, pl := range res.Placed {
			replay.AddSensor(pl.ID, pl.Pos)
		}
		for i := 0; i < m.NumPoints(); i++ {
			if m.Count(i) != replay.Count(i) {
				t.Fatalf("trial %d: replay count mismatch at point %d", trial, i)
			}
		}
	}
}

// The algorithms are not tied to square fields: a long thin rectangle
// deploys and restores correctly with every method.
func TestNonSquareField(t *testing.T) {
	field := geom.RectWH(0, 0, 120, 20)
	pts := lowdisc.Halton{}.Points(480, field)
	for _, meth := range allMethods() {
		m := coverage.New(field, pts, 4, 2)
		r := rng.New(5)
		for id := 0; id < 30; id++ {
			m.AddSensor(id, r.PointInRect(field))
		}
		res := meth.Deploy(m, rng.New(6), Options{})
		if !m.FullyCovered() {
			t.Fatalf("%s: rectangular field not covered", meth.Name())
		}
		for _, pl := range res.Placed {
			if !field.Contains(pl.Pos) {
				t.Fatalf("%s: placement %v outside rectangle", meth.Name(), pl.Pos)
			}
		}
	}
}

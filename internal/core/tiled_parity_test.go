package core

import (
	"context"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// Differential tests for the tile-parallel engines (tiled.go): tiled
// storage plus concurrent scoring must be a pure optimization — for
// every scheme, seed, k, and worker count, placements, rounds, and
// message accounting have to be byte-identical to the seed path on a
// flat map.

// tiledParityMap mirrors parityMap's generator exactly (same rng
// consumption) but can build the map in tiled mode. TilePoints is kept
// small so sensing disks (rs = 4) routinely cross tile boundaries.
func tiledParityMap(seed uint64, k int, tiled bool, opt coverage.TileOptions) *coverage.Map {
	r := rng.New(seed)
	side := 35 + r.Float64()*15
	field := geom.Square(side)
	pts := lowdisc.Halton{}.Points(250+r.Intn(200), field)
	var m *coverage.Map
	if tiled {
		m = coverage.NewTiled(field, pts, 4, k, opt)
	} else {
		m = coverage.New(field, pts, 4, k)
	}
	initial := 5 + r.Intn(40)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

func TestTiledGridParity(t *testing.T) {
	for _, cell := range []float64{5, 10} {
		for _, workers := range []int{1, 4} {
			for k := 1; k <= 3; k++ {
				for seed := uint64(1); seed <= 3; seed++ {
					mRef := tiledParityMap(seed, k, false, coverage.TileOptions{})
					opt := coverage.TileOptions{TilePoints: 16}
					if seed == 2 {
						opt.MaxResidentTiles = 3 // evict mid-deploy too
					}
					mTiled := tiledParityMap(seed, k, true, opt)
					ref := GridDECOR{CellSize: cell}.Deploy(mRef, rng.New(seed), Options{})
					got := GridDECOR{CellSize: cell, Workers: workers}.Deploy(mTiled, rng.New(seed), Options{})
					assertSameResult(t, "tiled grid", ref, got)
					if rf, gf := mRef.CoverageFrac(k), mTiled.CoverageFrac(k); rf != gf {
						t.Fatalf("final coverage diverges: flat %v, tiled %v", rf, gf)
					}
					if max := opt.MaxResidentTiles; max > 0 && mTiled.Tiles().Resident() > max {
						t.Fatalf("deploy left %d resident tiles, limit %d", mTiled.Tiles().Resident(), max)
					}
				}
			}
		}
	}
}

func TestTiledGridParityNewRs(t *testing.T) {
	for _, newRs := range []float64{2, 3, 6} {
		for seed := uint64(1); seed <= 3; seed++ {
			mRef := tiledParityMap(seed, 2, false, coverage.TileOptions{})
			mTiled := tiledParityMap(seed, 2, true, coverage.TileOptions{TilePoints: 16})
			ref := GridDECOR{CellSize: 5, NewRs: newRs}.Deploy(mRef, rng.New(seed), Options{})
			got := GridDECOR{CellSize: 5, NewRs: newRs, Workers: 4}.Deploy(mTiled, rng.New(seed), Options{})
			assertSameResult(t, "tiled grid newRs", ref, got)
		}
	}
}

// Placement caps cut a round's decided batch mid-apply; the fold must
// only see the placements that actually landed.
func TestTiledGridParityWithCap(t *testing.T) {
	for _, capN := range []int{1, 3, 17} {
		mRef := tiledParityMap(11, 3, false, coverage.TileOptions{})
		mTiled := tiledParityMap(11, 3, true, coverage.TileOptions{TilePoints: 16})
		ref := GridDECOR{CellSize: 5}.Deploy(mRef, rng.New(11), Options{MaxPlacements: capN})
		got := GridDECOR{CellSize: 5, Workers: 4}.Deploy(mTiled, rng.New(11), Options{MaxPlacements: capN})
		assertSameResult(t, "tiled grid cap", ref, got)
	}
}

// Workers = 0 must leave tiled maps on the seed path (benefitCache over
// the compatibility layer) and still match the flat reference.
func TestTiledMapSeedPathParity(t *testing.T) {
	mRef := tiledParityMap(5, 2, false, coverage.TileOptions{})
	mTiled := tiledParityMap(5, 2, true, coverage.TileOptions{TilePoints: 16})
	ref := GridDECOR{CellSize: 5}.Deploy(mRef, rng.New(5), Options{})
	got := GridDECOR{CellSize: 5}.Deploy(mTiled, rng.New(5), Options{})
	assertSameResult(t, "tiled map, seed engine", ref, got)
}

func TestTiledCentralizedParity(t *testing.T) {
	for k := 1; k <= 3; k++ {
		for seed := uint64(1); seed <= 3; seed++ {
			mRef := tiledParityMap(seed, k, false, coverage.TileOptions{})
			mTiled := tiledParityMap(seed, k, true, coverage.TileOptions{TilePoints: 16})
			ref := Centralized{}.Deploy(mRef, rng.New(seed), Options{})
			got := Centralized{Workers: 4}.Deploy(mTiled, rng.New(seed), Options{})
			assertSameResult(t, "tiled centralized", ref, got)
		}
	}
	// Heterogeneous radius and cap variants.
	for _, newRs := range []float64{2, 6} {
		mRef := tiledParityMap(4, 2, false, coverage.TileOptions{})
		mTiled := tiledParityMap(4, 2, true, coverage.TileOptions{TilePoints: 16})
		ref := Centralized{NewRs: newRs}.Deploy(mRef, rng.New(4), Options{})
		got := Centralized{NewRs: newRs}.Deploy(mTiled, rng.New(4), Options{})
		assertSameResult(t, "tiled centralized newRs", ref, got)
	}
	for _, capN := range []int{1, 5} {
		mRef := tiledParityMap(4, 3, false, coverage.TileOptions{})
		mTiled := tiledParityMap(4, 3, true, coverage.TileOptions{TilePoints: 16})
		ref := Centralized{}.Deploy(mRef, rng.New(4), Options{MaxPlacements: capN})
		got := Centralized{}.Deploy(mTiled, rng.New(4), Options{MaxPlacements: capN})
		assertSameResult(t, "tiled centralized cap", ref, got)
	}
}

// Voronoi has no tiled engine, but it must keep working through the
// compatibility layer on tiled maps.
func TestTiledMapVoronoiParity(t *testing.T) {
	mRef := tiledParityMap(6, 2, false, coverage.TileOptions{})
	mTiled := tiledParityMap(6, 2, true, coverage.TileOptions{TilePoints: 16})
	ref := VoronoiDECOR{Rc: 8}.Deploy(mRef, rng.New(6), Options{})
	got := VoronoiDECOR{Rc: 8}.Deploy(mTiled, rng.New(6), Options{})
	assertSameResult(t, "tiled map, voronoi", ref, got)
}

// An already-expired context aborts the tiled engines before any
// placement — cancellation is polled inside the per-tile build and the
// per-cell scoring loops, not just at round boundaries.
func TestTiledCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mG := tiledParityMap(1, 2, true, coverage.TileOptions{TilePoints: 16})
	res := GridDECOR{CellSize: 5, Workers: 4}.Deploy(mG, rng.New(1), Options{Ctx: ctx})
	if !res.Interrupted || len(res.Placed) != 0 {
		t.Fatalf("grid: expected interrupted empty run, got interrupted=%v placed=%d",
			res.Interrupted, len(res.Placed))
	}
	mC := tiledParityMap(1, 2, true, coverage.TileOptions{TilePoints: 16})
	resC := Centralized{Workers: 4}.Deploy(mC, rng.New(1), Options{Ctx: ctx})
	if !resC.Interrupted || len(resC.Placed) != 0 {
		t.Fatalf("centralized: expected interrupted empty run, got interrupted=%v placed=%d",
			resC.Interrupted, len(resC.Placed))
	}
}

// FuzzTileBoundaryConflict drives the disk-crosses-tile-boundary
// conflict resolution with fuzz-chosen geometry: arbitrary tile sizes
// (down to a handful of points per tile), worker counts, cell sizes,
// and requirements must never diverge from the seed path.
func FuzzTileBoundaryConflict(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(2), uint8(1), uint8(3), uint8(200))
	f.Add(uint64(42), uint8(1), uint8(0), uint8(40), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, cellRaw, tpRaw, wRaw uint8) {
		k := 1 + int(kRaw)%3
		cell := 5.0
		if cellRaw%2 == 1 {
			cell = 10
		}
		tp := 4 + int(tpRaw)%60 // tiny tiles: disks span many
		workers := 1 + int(wRaw)%4
		opt := coverage.TileOptions{TilePoints: tp}
		if wRaw%3 == 0 {
			opt.MaxResidentTiles = 1 + int(wRaw)%5
		}
		mRef := tiledParityMap(seed, k, false, coverage.TileOptions{})
		mTiled := tiledParityMap(seed, k, true, opt)
		ref := GridDECOR{CellSize: cell}.Deploy(mRef, rng.New(seed), Options{})
		got := GridDECOR{CellSize: cell, Workers: workers}.Deploy(mTiled, rng.New(seed), Options{})
		assertSameResult(t, "fuzz tiled grid", ref, got)

		mRefC := tiledParityMap(seed, k, false, coverage.TileOptions{})
		mTiledC := tiledParityMap(seed, k, true, opt)
		refC := Centralized{}.Deploy(mRefC, rng.New(seed), Options{})
		gotC := Centralized{Workers: workers}.Deploy(mTiledC, rng.New(seed), Options{})
		assertSameResult(t, "fuzz tiled centralized", refC, gotC)
	})
}

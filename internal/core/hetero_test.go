package core

import (
	"testing"

	"decor/internal/rng"
)

// Heterogeneous deployment: new sensors may out-range the originals
// (paper §2: radii vary with sensor type). A longer-range centralized
// deployment must need fewer sensors; results must still fully cover.

func TestCentralizedHeteroRadius(t *testing.T) {
	base := newField(t, 2, 30, 3)
	resBase := (Centralized{}).Deploy(base, rng.New(1), Options{})
	if !base.FullyCovered() {
		t.Fatal("base deploy incomplete")
	}
	wide := newField(t, 2, 30, 3)
	resWide := (Centralized{NewRs: 8}).Deploy(wide, rng.New(1), Options{})
	if !wide.FullyCovered() {
		t.Fatal("wide deploy incomplete")
	}
	if resWide.NumPlaced() >= resBase.NumPlaced() {
		t.Errorf("rs=8 placed %d, rs=4 placed %d: longer range should need fewer sensors",
			resWide.NumPlaced(), resBase.NumPlaced())
	}
	// Each placed sensor must record the override radius.
	for _, pl := range resWide.Placed {
		if r, ok := wide.SensorRadius(pl.ID); !ok || r != 8 {
			t.Fatalf("sensor %d radius = %v %v, want 8", pl.ID, r, ok)
		}
	}
}

func TestCentralizedHeteroRescanMatchesIncremental(t *testing.T) {
	a := newField(t, 2, 30, 5)
	b := newField(t, 2, 30, 5)
	inc := (Centralized{NewRs: 6}).Deploy(a, rng.New(1), Options{})
	res := (Centralized{NewRs: 6, FullRescan: true}).Deploy(b, rng.New(1), Options{})
	if inc.NumPlaced() != res.NumPlaced() {
		t.Fatalf("incremental %d vs rescan %d", inc.NumPlaced(), res.NumPlaced())
	}
	for i := range inc.Placed {
		if !inc.Placed[i].Pos.Eq(res.Placed[i].Pos) {
			t.Fatalf("placement %d differs", i)
		}
	}
}

func TestDistributedHeteroRadius(t *testing.T) {
	// The distributed variants honor NewRs like the centralized one:
	// longer-range replacements need fewer sensors, and every placed
	// sensor records the override.
	for _, pair := range []struct {
		base, wide Method
	}{
		{GridDECOR{CellSize: 5}, GridDECOR{CellSize: 5, NewRs: 8}},
		{VoronoiDECOR{Rc: 8}, VoronoiDECOR{Rc: 8, NewRs: 8}},
	} {
		mb := newField(t, 2, 30, 3)
		rb := pair.base.Deploy(mb, rng.New(1), Options{})
		mw := newField(t, 2, 30, 3)
		rw := pair.wide.Deploy(mw, rng.New(1), Options{})
		if !mb.FullyCovered() || !mw.FullyCovered() {
			t.Fatalf("%s: incomplete deploy", pair.base.Name())
		}
		if rw.NumPlaced() >= rb.NumPlaced() {
			t.Errorf("%s: wide placed %d, base placed %d",
				pair.base.Name(), rw.NumPlaced(), rb.NumPlaced())
		}
		for _, pl := range rw.Placed {
			if r, ok := mw.SensorRadius(pl.ID); !ok || r != 8 {
				t.Fatalf("%s: sensor %d radius = %v", pair.base.Name(), pl.ID, r)
			}
		}
	}
}

func TestVoronoiHeteroPanicsWhenNewRsExceedsRc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRs > Rc should panic (violates rs <= rc)")
		}
	}()
	m := newField(t, 1, 0, 1)
	(VoronoiDECOR{Rc: 8, NewRs: 10}).Deploy(m, rng.New(1), Options{})
}

func TestCentralizedHeteroOnDamagedHeteroField(t *testing.T) {
	// Mixed-radius pre-deployment, then restoration with default radius.
	m := newField(t, 1, 0, 1)
	r := rng.New(9)
	for id := 0; id < 20; id++ {
		m.AddSensorRadius(1000+id, r.PointInRect(m.Field()), 2+r.Float64()*6)
	}
	res := (Centralized{}).Deploy(m, rng.New(2), Options{})
	if !m.FullyCovered() {
		t.Fatal("restoration on hetero field incomplete")
	}
	if res.NumPlaced() == 0 {
		t.Fatal("nothing placed")
	}
}

package core

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/index"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// Large-field placement benchmarks (ROADMAP item 4): fields of 10^5 and
// 10^6 sample points at a fixed density of 0.2 pts/unit², rs = 4
// (~10 points per sensing disk), k = 1, with n/40 random initial
// sensors. The 10^6 size is gated behind DECOR_PLACE_LARGE=1 so the
// `make check` bench smoke (-benchtime=1x over everything) stays fast;
// `make bench-json` sets it when refreshing BENCH_core.json.

// placeScenario caches the expensive immutable pieces of one field size
// — points, prototype maps, shared neighborhood builds — so benchmark
// iterations only pay for Clone + Deploy.
type placeScenario struct {
	n      int
	field  geom.Rect
	pts    []geom.Point
	nb     index.NeighborhoodCache
	protos map[string]*coverage.Map
}

var (
	placeMu        sync.Mutex
	placeScenarios = map[int]*placeScenario{}
)

// placeDensity is points per unit²; side = sqrt(n / placeDensity).
const placeDensity = 0.2

func getPlaceScenario(n int) *placeScenario {
	placeMu.Lock()
	defer placeMu.Unlock()
	if s, ok := placeScenarios[n]; ok {
		return s
	}
	s := &placeScenario{
		n:      n,
		protos: map[string]*coverage.Map{},
	}
	s.field = geom.Square(math.Sqrt(float64(n) / placeDensity))
	s.pts = lowdisc.Halton{}.Points(n, s.field)
	placeScenarios[n] = s
	return s
}

// proto returns a cached prototype map with the scenario's initial
// sensors, built once per (mode, tile options) variant. All variants
// share one neighborhood cache: the adjacency depends only on the
// points.
func (s *placeScenario) proto(key string, build func() *coverage.Map) *coverage.Map {
	placeMu.Lock()
	defer placeMu.Unlock()
	if m, ok := s.protos[key]; ok {
		return m
	}
	m := build()
	m.ShareNeighborhoods(&s.nb)
	r := rng.New(99)
	for id := 0; id < s.n/40; id++ {
		m.AddSensor(id, r.PointInRect(s.field))
	}
	// Force the rs=4 point adjacency now: it is lazily built on first use
	// and shared across variants, so without this the first benchmarked
	// Deploy would pay for it alone.
	m.PointNeighborhoods(4)
	s.protos[key] = m
	return m
}

func (s *placeScenario) flatProto() *coverage.Map {
	return s.proto("flat", func() *coverage.Map {
		return coverage.New(s.field, s.pts, 4, 1)
	})
}

func (s *placeScenario) tiledProto(opt coverage.TileOptions) *coverage.Map {
	key := fmt.Sprintf("tiled/%d/%d", opt.TilePoints, opt.MaxResidentTiles)
	return s.proto(key, func() *coverage.Map {
		return coverage.NewTiled(s.field, s.pts, 4, 1, opt)
	})
}

// BenchmarkPlace deploys grid-small DECOR (and the centralized
// baseline) to full 1-coverage on large fields:
//
//   - grid-flat: the seed path (flat counts + benefitCache), the
//     pre-tiling reference.
//   - grid-seq: tiled storage, tile engine, Workers=1.
//   - grid-par4: tiled storage, Workers=4 (decisions scored across
//     cells concurrently, scatter tile-partitioned). Identical
//     placements; wall-clock scales with available cores.
//   - grid-par4-resident: grid-par4 under a resident-page budget of
//     half the tiles, proving field size is not bound by resident
//     count memory.
//   - centralized-tiled: the tile-memoized global greedy.
func BenchmarkPlace(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		name := map[int]string{100_000: "pts=1e5", 1_000_000: "pts=1e6"}[n]
		b.Run(name, func(b *testing.B) {
			if n >= 1_000_000 && os.Getenv("DECOR_PLACE_LARGE") == "" {
				b.Skip("set DECOR_PLACE_LARGE=1 to run the 1e6-point benchmarks")
			}
			s := getPlaceScenario(n)
			variants := []struct {
				name string
				run  func(b *testing.B)
			}{
				{"grid-seq", func(b *testing.B) {
					benchDeployClone(b, s.tiledProto(coverage.TileOptions{}),
						GridDECOR{CellSize: 5, Workers: 1}, 0)
				}},
				{"grid-par4", func(b *testing.B) {
					benchDeployClone(b, s.tiledProto(coverage.TileOptions{}),
						GridDECOR{CellSize: 5, Workers: 4}, 0)
				}},
				{"grid-par4-resident", func(b *testing.B) {
					proto := s.tiledProto(coverage.TileOptions{})
					limit := proto.Tiles().NumTiles() / 2
					benchDeployClone(b, s.tiledProto(coverage.TileOptions{MaxResidentTiles: limit}),
						GridDECOR{CellSize: 5, Workers: 4}, limit)
				}},
				{"centralized-tiled", func(b *testing.B) {
					benchDeployClone(b, s.tiledProto(coverage.TileOptions{}),
						Centralized{Workers: 4}, 0)
				}},
			}
			variants = append(variants, struct {
				name string
				run  func(b *testing.B)
			}{"grid-flat", func(b *testing.B) {
				benchDeployClone(b, s.flatProto(), GridDECOR{CellSize: 5}, 0)
			}})
			for _, v := range variants {
				b.Run(v.name, v.run)
			}
		})
	}
}

// benchDeployClone deploys meth on fresh clones of proto. residentMax,
// when non-zero, is asserted as an upper bound on materialized tiles
// after the run — the streaming guarantee the -max-resident-tiles knob
// exposes.
func benchDeployClone(b *testing.B, proto *coverage.Map, meth Method, residentMax int) {
	b.ReportAllocs()
	// proto was built lazily in the caller's argument expression; without
	// the GC + reset the first variant of each size would absorb the whole
	// one-time scenario setup (point generation, CSR build, initial
	// sensors) and the collection debt it leaves behind.
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := proto.Clone()
		b.StartTimer()
		res := meth.Deploy(m, rng.New(7), Options{})
		b.StopTimer()
		if !m.FullyCovered() {
			b.Fatalf("deploy left %d deficient points", m.NumDeficient())
		}
		if res.Interrupted || res.Capped {
			b.Fatalf("unexpected interrupted/capped run")
		}
		if residentMax > 0 && m.Tiles().Resident() > residentMax {
			b.Fatalf("resident tiles %d exceed bound %d", m.Tiles().Resident(), residentMax)
		}
		b.StartTimer()
	}
}

// TestPlaceLargeSmoke is the `make bench-large` CI smoke: a downscaled
// 1e5-point deployment, run under -race, asserting the parallel
// conflict-resolution path matches the sequential tiled path placement
// for placement and respects a resident-tile budget. Gated behind
// DECOR_BENCH_LARGE=1 so the regular test suite stays fast.
func TestPlaceLargeSmoke(t *testing.T) {
	if os.Getenv("DECOR_BENCH_LARGE") == "" {
		t.Skip("set DECOR_BENCH_LARGE=1 to run the large placement smoke")
	}
	s := getPlaceScenario(100_000)
	limit := 0
	seq := s.tiledProto(coverage.TileOptions{}).Clone()
	par := s.tiledProto(coverage.TileOptions{}).Clone()
	resSeq := GridDECOR{CellSize: 5, Workers: 1}.Deploy(seq, rng.New(7), Options{})
	resPar := GridDECOR{CellSize: 5, Workers: 4}.Deploy(par, rng.New(7), Options{})
	if len(resSeq.Placed) == 0 {
		t.Fatal("sequential run placed nothing")
	}
	if len(resSeq.Placed) != len(resPar.Placed) {
		t.Fatalf("placement count diverges: seq %d, par %d", len(resSeq.Placed), len(resPar.Placed))
	}
	for i := range resSeq.Placed {
		if resSeq.Placed[i] != resPar.Placed[i] {
			t.Fatalf("placement %d diverges: seq %+v, par %+v", i, resSeq.Placed[i], resPar.Placed[i])
		}
	}
	if resSeq.Messages != resPar.Messages || resSeq.Rounds != resPar.Rounds {
		t.Fatalf("messages/rounds diverge: seq %d/%d, par %d/%d",
			resSeq.Messages, resSeq.Rounds, resPar.Messages, resPar.Rounds)
	}
	// Resident-budget variant: same deployment under a page budget of a
	// quarter of the tiles.
	proto := s.tiledProto(coverage.TileOptions{})
	limit = proto.Tiles().NumTiles() / 4
	bounded := s.tiledProto(coverage.TileOptions{MaxResidentTiles: limit}).Clone()
	resB := GridDECOR{CellSize: 5, Workers: 4}.Deploy(bounded, rng.New(7), Options{})
	if len(resB.Placed) != len(resSeq.Placed) {
		t.Fatalf("bounded run placement count diverges: %d vs %d", len(resB.Placed), len(resSeq.Placed))
	}
	if got := bounded.Tiles().Resident(); got > limit {
		t.Fatalf("resident tiles %d exceed budget %d", got, limit)
	}
	if !bounded.FullyCovered() {
		t.Fatalf("bounded run left %d deficient points", bounded.NumDeficient())
	}
}

package core

import (
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/partition"
	"decor/internal/rng"
)

// VoronoiDECOR is the paper's Voronoi-based DECOR variant (§3.1,
// Definition 1): every sensor owns the sample points closest to it among
// the sensors within its communication radius Rc, estimates their
// coverage (accurate because rs <= rc), and greedily places new sensors
// at its most beneficial deficient owned point. Newly placed sensors
// carve out their own local Voronoi cells and continue the expansion,
// "gradually covering the entire uncovered region".
//
// The paper evaluates Rc = 2·rs = 8 ("small rc") and Rc = 10·√2 ≈ 14.14
// ("big rc", matching the maximum inter-leader distance of the 5×5 grid).
type VoronoiDECOR struct {
	Rc float64
	// Sequential serializes the distributed execution: one placement per
	// round (see GridDECOR.Sequential).
	Sequential bool
	// NewRs overrides the sensing radius of newly placed sensors
	// (0 = the map default).
	NewRs float64
}

// Name implements Method.
func (v VoronoiDECOR) Name() string {
	if v.Rc <= 10 {
		return "voronoi-small"
	}
	return "voronoi-big"
}

// Deploy implements Method.
func (v VoronoiDECOR) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	if v.Rc < m.Rs() {
		panic("core: VoronoiDECOR requires rc >= rs (paper §2)")
	}
	newRs := v.NewRs
	if newRs <= 0 {
		newRs = m.Rs()
	}
	if newRs > v.Rc {
		panic("core: VoronoiDECOR requires rs <= rc for new sensors too")
	}
	res := Result{Method: v.Name(), NodeMessages: map[int]int{}}

	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	vor := partition.NewVoronoi(m.Field(), pts, v.Rc)
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		vor.AddSensor(id, p)
	}

	nextID := nextSensorID(m)
	for round := 0; !m.FullyCovered() && round < opt.maxRounds(); round++ {
		if res.Capped {
			break
		}
		roundSpan := obs.StartSpan(obs.CoreRoundSeconds)
		snap := m.Counts()
		type placement struct {
			owner int
			pos   geom.Point
		}
		var decided []placement
		evalSpan := obs.StartSpan(obs.CoreBenefitEvalSeconds)
		// Every sensor alive at round start acts concurrently on the
		// round-start snapshot and ownership.
		for _, id := range vor.SensorIDs() {
			if v.Sequential && len(decided) > 0 {
				break
			}
			owned := vor.OwnedPoints(id)
			if len(owned) == 0 {
				continue
			}
			nodePos, _ := m.SensorPos(id)
			perceive := func(i int) int {
				// The node accurately knows the coverage of every point
				// within its communication radius (§3.3, rs <= rc).
				if nodePos.Dist2(m.Point(i)) > v.Rc*v.Rc {
					return -1
				}
				return snap[i]
			}
			if idx, _, ok := bestCandidateRadius(m, newRs, owned, perceive); ok {
				decided = append(decided, placement{owner: id, pos: m.Point(idx)})
			}
		}
		evalSpan.End()
		if len(decided) == 0 {
			// Remaining deficient points are orphans outside every
			// sensor's communication radius; the base station seeds the
			// lowest one (the paper's empty-region fallback).
			unc := m.UncoveredPoints()
			if len(unc) == 0 {
				roundSpan.End()
				break
			}
			decided = append(decided, placement{owner: -1, pos: m.Point(unc[0])})
			res.Seeded++
		}
		// Apply placements at the end of the round; ownership and
		// coverage notifications propagate before the next round.
		for _, d := range decided {
			if len(res.Placed) >= opt.maxPlacements() {
				res.Capped = true
				break
			}
			if d.owner >= 0 {
				// The placing node announces the new sensor to its 1-hop
				// neighborhood: one message per communication neighbor,
				// plus one to initialize the new node. Message cost is
				// therefore proportional to rc, as in Fig. 10.
				n := len(vor.Neighbors(d.owner)) + 1
				res.Messages += n
				res.NodeMessages[d.owner] += n
			}
			id := nextID
			nextID++
			m.AddSensorRadius(id, d.pos, newRs)
			vor.AddSensor(id, d.pos)
			res.Placed = append(res.Placed, Placement{ID: id, Pos: d.pos, Round: round})
		}
		res.Rounds = round + 1
		roundSpan.End()
	}
	// One node per cell: normalize messages by the final node count.
	res.Cells = m.NumSensors()
	return res
}

// interface check
var _ Method = VoronoiDECOR{}
var _ Method = GridDECOR{}
var _ Method = Centralized{}
var _ Method = RandomPlacement{}

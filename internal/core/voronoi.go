package core

import (
	"fmt"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/index"
	"decor/internal/obs"
	"decor/internal/partition"
	"decor/internal/rng"
)

// VoronoiDECOR is the paper's Voronoi-based DECOR variant (§3.1,
// Definition 1): every sensor owns the sample points closest to it among
// the sensors within its communication radius Rc, estimates their
// coverage (accurate because rs <= rc), and greedily places new sensors
// at its most beneficial deficient owned point. Newly placed sensors
// carve out their own local Voronoi cells and continue the expansion,
// "gradually covering the entire uncovered region".
//
// The paper evaluates Rc = 2·rs = 8 ("small rc") and Rc = 10·√2 ≈ 14.14
// ("big rc", matching the maximum inter-leader distance of the 5×5 grid).
type VoronoiDECOR struct {
	Rc float64
	// Sequential serializes the distributed execution: one placement per
	// round (see GridDECOR.Sequential).
	Sequential bool
	// FullRescan disables the incremental benefit cache and re-evaluates
	// every owned candidate from the round snapshot each round, exactly as
	// the seed implementation did. Placements are identical either way
	// (the parity tests assert it); this exists as the reference path and
	// for the ablation benchmark in DESIGN.md §8.
	FullRescan bool
	// NewRs overrides the sensing radius of newly placed sensors
	// (0 = the map default).
	NewRs float64
}

// Name implements Method.
func (v VoronoiDECOR) Name() string {
	if v.Rc <= 10 {
		return "voronoi-small"
	}
	return "voronoi-big"
}

// voronoiNode is one acting sensor, tracked in an ascending-id slice so
// the round loop never re-sorts the sensor set.
type voronoiNode struct {
	id  int
	pos geom.Point
}

// voronoiPlacement is one node decision within a round.
type voronoiPlacement struct {
	owner int
	pos   geom.Point
	ptIdx int
}

// Deploy implements Method.
func (v VoronoiDECOR) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	if v.Rc < m.Rs() {
		panic("core: VoronoiDECOR requires rc >= rs (paper §2)")
	}
	newRs := v.NewRs
	if newRs <= 0 {
		newRs = m.Rs()
	}
	if newRs > v.Rc {
		panic("core: VoronoiDECOR requires rs <= rc for new sensors too")
	}
	res := Result{Method: v.Name(), NodeMessages: map[int]int{}}
	tctx, depSpan := obs.StartSpanCtx(opt.Ctx, "core.deploy")

	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	vor := partition.NewVoronoi(m.Field(), pts, v.Rc)
	// nodes stays ascending by id: the initial sensors are sorted and
	// every placed id exceeds all previous ones.
	var nodes []voronoiNode
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		vor.AddSensor(id, p)
		nodes = append(nodes, voronoiNode{id, p})
	}

	var cache *benefitCache
	var nbRc *index.Neighborhoods
	if !v.FullRescan {
		cache = newBenefitCache(m, newRs, nil)
		defer cache.flush()
		// The rc adjacency turns each placement's ownership claim into a
		// precomputed-list walk (AddSensorAt); shared across deployments
		// via the map's neighborhood cache.
		nbRc = m.PointNeighborhoods(v.Rc)
	}

	nextID := nextSensorID(m)
	var decided []voronoiPlacement
	var snapBuf []int
	for round := 0; !m.FullyCovered() && round < opt.maxRounds(); round++ {
		if res.Capped {
			break
		}
		if opt.interrupted() {
			res.Interrupted = true
			break
		}
		roundSpan := obs.StartSpan(obs.CoreRoundSeconds)
		_, trSpan := obs.StartSpanCtx(tctx, "core.round")
		decided = decided[:0]
		evalSpan := obs.StartSpan(obs.CoreBenefitEvalSeconds)
		// Every sensor alive at round start acts concurrently on the
		// round-start snapshot and ownership.
		if cache != nil {
			for _, nd := range nodes {
				if v.Sequential && len(decided) > 0 {
					break
				}
				if vor.NumOwned(nd.id) == 0 {
					continue
				}
				if idx, _, ok := cache.bestOwned(nd.pos, v.Rc, vor, nd.id); ok {
					decided = append(decided, voronoiPlacement{owner: nd.id, pos: m.Point(idx), ptIdx: idx})
				}
			}
		} else {
			snapBuf = m.CountsInto(snapBuf)
			snap := snapBuf
			for _, nd := range nodes {
				if v.Sequential && len(decided) > 0 {
					break
				}
				owned := vor.OwnedPoints(nd.id)
				if len(owned) == 0 {
					continue
				}
				nodePos := nd.pos
				perceive := func(i int) int {
					// The node accurately knows the coverage of every point
					// within its communication radius (§3.3, rs <= rc).
					if nodePos.Dist2(m.Point(i)) > v.Rc*v.Rc {
						return -1
					}
					return snap[i]
				}
				if idx, _, ok := bestCandidateRadius(m, newRs, owned, perceive); ok {
					decided = append(decided, voronoiPlacement{owner: nd.id, pos: m.Point(idx), ptIdx: idx})
				}
			}
		}
		evalSpan.End()
		if len(decided) == 0 {
			// Remaining deficient points are orphans outside every
			// sensor's communication radius; the base station seeds the
			// lowest one (the paper's empty-region fallback).
			unc := m.UncoveredPoints()
			if len(unc) == 0 {
				roundSpan.End()
				trSpan.End()
				break
			}
			decided = append(decided, voronoiPlacement{owner: -1, pos: m.Point(unc[0]), ptIdx: unc[0]})
			res.Seeded++
		}
		// Apply placements at the end of the round; ownership and
		// coverage notifications propagate before the next round.
		for _, d := range decided {
			if len(res.Placed) >= opt.maxPlacements() {
				res.Capped = true
				break
			}
			if d.owner >= 0 {
				// The placing node announces the new sensor to its 1-hop
				// neighborhood: one message per communication neighbor,
				// plus one to initialize the new node. Message cost is
				// therefore proportional to rc, as in Fig. 10.
				n := vor.NeighborCount(d.owner) + 1
				res.Messages += n
				res.NodeMessages[d.owner] += n
			}
			id := nextID
			nextID++
			if cache != nil && newRs == m.Rs() {
				m.AddSensorAtPoint(id, d.ptIdx)
			} else {
				m.AddSensorRadius(id, d.pos, newRs)
			}
			if nbRc != nil {
				vor.AddSensorAt(id, d.ptIdx, nbRc)
			} else {
				vor.AddSensor(id, d.pos)
			}
			nodes = append(nodes, voronoiNode{id, d.pos})
			if cache != nil {
				cache.applyPlacement(d.ptIdx)
			}
			res.Placed = append(res.Placed, Placement{ID: id, Pos: d.pos, Round: round})
		}
		res.Rounds = round + 1
		roundSpan.End()
		if trSpan != nil {
			trSpan.SetAttr(fmt.Sprintf("round=%d placed=%d", round, len(decided)))
			trSpan.End()
		}
	}
	if depSpan != nil {
		depSpan.SetAttr(fmt.Sprintf("method=%s rounds=%d placed=%d", res.Method, res.Rounds, len(res.Placed)))
		depSpan.End()
	}
	// One node per cell: normalize messages by the final node count.
	res.Cells = m.NumSensors()
	return res
}

// interface check
var _ Method = VoronoiDECOR{}
var _ Method = GridDECOR{}
var _ Method = Centralized{}
var _ Method = RandomPlacement{}

package core

import (
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func paperMap(b *testing.B, k int) *coverage.Map {
	b.Helper()
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(2000, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(1)
	for id := 0; id < 200; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

// Per-method deployment benchmarks at full paper scale (k=3).
func BenchmarkDeploy(b *testing.B) {
	for _, meth := range []Method{
		Centralized{},
		RandomPlacement{},
		GridDECOR{CellSize: 5},
		GridDECOR{CellSize: 10},
		VoronoiDECOR{Rc: 8},
		VoronoiDECOR{Rc: 14.142135623730951},
	} {
		b.Run(meth.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := paperMap(b, 3)
				b.StartTimer()
				meth.Deploy(m, rng.New(7), Options{})
			}
		})
	}
}

// BenchmarkRestore measures the paper's headline operation: repairing an
// area failure (Fig. 14 workload).
func BenchmarkRestore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := paperMap(b, 3)
		(Centralized{}).Deploy(m, rng.New(7), Options{})
		disk := geom.DiskAt(50, 50, 24)
		for _, id := range m.SensorsInBall(disk.Center, disk.R) {
			m.RemoveSensor(id)
		}
		b.StartTimer()
		(VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(8), Options{})
	}
}

package core

import (
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/partition"
	"decor/internal/rng"
)

// GridDECOR is the paper's grid-based DECOR variant (§3.1): the field is
// partitioned into fixed CellSize × CellSize cells, each occupied cell
// elects a leader (rotated every round to spread energy), and leaders run
// the greedy benefit placement over their own cell's sample points.
// Leaders whose cell is fully covered adopt empty deficient neighboring
// cells, seeding a sensor there that becomes the new cell's first member
// — the paper's rule "the leader of a neighboring cell will place a new
// leader in the uncovered cell".
//
// The paper evaluates CellSize 5 ("small cell", one sensor nearly covers
// a whole cell when rs = 4) and 10 ("big cell").
type GridDECOR struct {
	CellSize float64
	// Sequential serializes the distributed execution: only one leader
	// places per round, so every decision sees fully propagated state.
	// This is the concurrency ablation from DESIGN.md §5 — it bounds how
	// much of DECOR's overhead vs the centralized greedy is coordination
	// cost (same-round races) rather than knowledge locality.
	Sequential bool
	// NewRs overrides the sensing radius of newly placed sensors
	// (0 = the map default), the paper's heterogeneous setting.
	NewRs float64
}

// Name implements Method.
func (g GridDECOR) Name() string {
	if g.CellSize <= 5 {
		return "grid-small"
	}
	return "grid-big"
}

// gridState carries per-run bookkeeping for the grid scheme.
type gridState struct {
	m     *coverage.Map
	part  *partition.Grid
	cells [][]int // cell -> sample point indices (ascending)
	// members maps cell -> sorted sensor IDs currently in the cell.
	members map[int][]int
}

// Deploy implements Method.
func (g GridDECOR) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	if g.CellSize <= 0 {
		panic("core: GridDECOR requires a positive cell size")
	}
	newRs := g.NewRs
	if newRs <= 0 {
		newRs = m.Rs()
	}
	res := Result{Method: g.Name(), NodeMessages: map[int]int{}}
	st := &gridState{
		m:       m,
		part:    partition.NewGrid(m.Field(), g.CellSize),
		members: map[int][]int{},
	}
	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	st.cells = st.part.AssignPoints(pts)
	res.Cells = st.part.NumCells()
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		c := st.part.CellIndex(p)
		st.members[c] = append(st.members[c], id)
	}

	// Initial position exchange: each occupied cell's leader advertises
	// its sensors to occupied Moore neighbors (one message each).
	for _, c := range sortedKeys(st.members) {
		leader := st.members[c][0]
		for _, nc := range st.part.Neighbors(c) {
			if len(st.members[nc]) > 0 {
				res.Messages++
				res.NodeMessages[leader]++
			}
		}
	}

	nextID := nextSensorID(m)
	for round := 0; !m.FullyCovered() && round < opt.maxRounds(); round++ {
		if res.Capped {
			break
		}
		roundSpan := obs.StartSpan(obs.CoreRoundSeconds)
		snap := m.Counts()
		perceive := func(cell int) func(i int) int {
			return func(i int) int {
				if st.part.CellIndex(m.Point(i)) != cell {
					return -1 // outside the leader's knowledge
				}
				return snap[i]
			}
		}
		type placement struct {
			leader int
			cell   int
			pos    geom.Point
			ptIdx  int
		}
		var decided []placement
		evalSpan := obs.StartSpan(obs.CoreBenefitEvalSeconds)
		occupied := sortedKeys(st.members)
		for _, c := range occupied {
			if g.Sequential && len(decided) > 0 {
				break
			}
			leader := st.members[c][round%len(st.members[c])]
			// Own cell first.
			if idx, _, ok := bestCandidateRadius(m, newRs, st.cells[c], perceive(c)); ok {
				decided = append(decided, placement{leader, c, m.Point(idx), idx})
				continue
			}
			// Own cell covered: adopt the first empty deficient neighbor.
			for _, nc := range st.part.Neighbors(c) {
				if len(st.members[nc]) > 0 {
					continue
				}
				if idx, _, ok := bestCandidateRadius(m, newRs, st.cells[nc], perceive(nc)); ok {
					decided = append(decided, placement{leader, nc, m.Point(idx), idx})
					break
				}
			}
		}
		evalSpan.End()
		if len(decided) == 0 {
			// No leader can reach the remaining deficient points: the
			// base station seeds the lowest deficient sample point (the
			// paper's regular-positioning fallback for empty regions).
			unc := m.UncoveredPoints()
			if len(unc) == 0 {
				roundSpan.End()
				break
			}
			decided = append(decided, placement{leader: -1, cell: st.part.CellIndex(m.Point(unc[0])), pos: m.Point(unc[0]), ptIdx: unc[0]})
			res.Seeded++
		}
		// Apply all of this round's placements; notifications go out
		// between rounds (the next snapshot sees them).
		for _, d := range decided {
			if len(res.Placed) >= opt.maxPlacements() {
				res.Capped = true
				break
			}
			id := nextID
			nextID++
			m.AddSensorRadius(id, d.pos, newRs)
			st.members[d.cell] = append(st.members[d.cell], id)
			res.Placed = append(res.Placed, Placement{ID: id, Pos: d.pos, Round: round})
			if d.leader < 0 {
				continue // base-station seed: no leader messages
			}
			// One message per occupied neighboring cell whose area the
			// new sensor's disk overlaps (§3.3 border exchange), plus one
			// to the adopted cell's new sensor if placed remotely.
			disk := geom.Disk{Center: d.pos, R: newRs}
			for _, nc := range st.part.Neighbors(d.cell) {
				if len(st.members[nc]) == 0 {
					continue
				}
				if disk.IntersectsRect(st.part.CellRect(nc)) {
					res.Messages++
					res.NodeMessages[d.leader]++
				}
			}
			if d.cell != st.part.CellIndex(func() geom.Point { p, _ := m.SensorPos(d.leader); return p }()) {
				res.Messages++ // instruct the remote cell's new leader
				res.NodeMessages[d.leader]++
			}
		}
		res.Rounds = round + 1
		roundSpan.End()
	}
	return res
}

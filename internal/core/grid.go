package core

import (
	"fmt"
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/partition"
	"decor/internal/rng"
)

// GridDECOR is the paper's grid-based DECOR variant (§3.1): the field is
// partitioned into fixed CellSize × CellSize cells, each occupied cell
// elects a leader (rotated every round to spread energy), and leaders run
// the greedy benefit placement over their own cell's sample points.
// Leaders whose cell is fully covered adopt empty deficient neighboring
// cells, seeding a sensor there that becomes the new cell's first member
// — the paper's rule "the leader of a neighboring cell will place a new
// leader in the uncovered cell".
//
// The paper evaluates CellSize 5 ("small cell", one sensor nearly covers
// a whole cell when rs = 4) and 10 ("big cell").
type GridDECOR struct {
	CellSize float64
	// Sequential serializes the distributed execution: only one leader
	// places per round, so every decision sees fully propagated state.
	// This is the concurrency ablation from DESIGN.md §5 — it bounds how
	// much of DECOR's overhead vs the centralized greedy is coordination
	// cost (same-round races) rather than knowledge locality.
	Sequential bool
	// FullRescan disables the incremental per-cell benefit cache and
	// re-evaluates every candidate's benefit from the round snapshot each
	// round, exactly as the seed implementation did. Placements are
	// identical either way (the parity tests assert it); this exists as
	// the reference path and for the ablation benchmark in DESIGN.md §8.
	FullRescan bool
	// NewRs overrides the sensing radius of newly placed sensors
	// (0 = the map default), the paper's heterogeneous setting.
	NewRs float64
	// Workers enables the tile-parallel engine (tiled.go) on maps with
	// tiled coverage storage: decisions are scored concurrently across
	// occupied cells and benefit updates scattered tile-partitioned.
	// 0 disables it (the seed path), > 0 uses that many workers, < 0
	// uses GOMAXPROCS. Placements are byte-identical for every setting
	// (the tiled parity suite asserts it); it is ignored on flat maps
	// and under the Sequential/FullRescan ablations.
	Workers int
}

// Name implements Method.
func (g GridDECOR) Name() string {
	if g.CellSize <= 5 {
		return "grid-small"
	}
	return "grid-big"
}

// gridState carries per-run bookkeeping for the grid scheme.
type gridState struct {
	m     *coverage.Map
	part  *partition.Grid
	cells [][]int // cell -> sample point indices (ascending)
	// members lists each cell's sensor IDs in arrival order, indexed
	// densely by cell (the cell count is fixed for a run).
	members [][]int
	// occ lists the occupied cells ascending, maintained incrementally —
	// always equal to sortedKeys(members).
	occ []int
	// nbrs precomputes every cell's Moore neighborhood.
	nbrs [][]int
	// cellOf maps sample point index -> containing cell.
	cellOf []int
}

// addMember records sensor id as a member of cell, keeping occ sorted.
func (st *gridState) addMember(cell, id int) {
	if len(st.members[cell]) == 0 {
		i := sort.SearchInts(st.occ, cell)
		st.occ = append(st.occ, 0)
		copy(st.occ[i+1:], st.occ[i:])
		st.occ[i] = cell
	}
	st.members[cell] = append(st.members[cell], id)
}

// gridPlacement is one leader decision within a round.
type gridPlacement struct {
	leader int
	cell   int
	pos    geom.Point
	ptIdx  int
}

// Deploy implements Method.
func (g GridDECOR) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	if g.CellSize <= 0 {
		panic("core: GridDECOR requires a positive cell size")
	}
	newRs := g.NewRs
	if newRs <= 0 {
		newRs = m.Rs()
	}
	res := Result{Method: g.Name(), NodeMessages: map[int]int{}}
	tctx, depSpan := obs.StartSpanCtx(opt.Ctx, "core.deploy")
	st := &gridState{
		m:    m,
		part: partition.NewGrid(m.Field(), g.CellSize),
	}
	st.members = make([][]int, st.part.NumCells())
	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	st.cells = st.part.AssignPoints(pts)
	st.cellOf = make([]int, len(pts))
	for c, idxs := range st.cells {
		for _, i := range idxs {
			st.cellOf[i] = c
		}
	}
	st.nbrs = make([][]int, st.part.NumCells())
	for c := range st.nbrs {
		st.nbrs[c] = st.part.Neighbors(c)
	}
	res.Cells = st.part.NumCells()
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		st.addMember(st.part.CellIndex(p), id)
	}

	// Initial position exchange: each occupied cell's leader advertises
	// its sensors to occupied Moore neighbors (one message each).
	for _, c := range st.occ {
		leader := st.members[c][0]
		for _, nc := range st.nbrs[c] {
			if len(st.members[nc]) > 0 {
				res.Messages++
				res.NodeMessages[leader]++
			}
		}
	}

	if g.tiledActive(m) {
		return g.deployTiled(m, st, newRs, opt, res, tctx, depSpan)
	}

	var cache *benefitCache
	if !g.FullRescan {
		cache = newBenefitCache(m, newRs, st.cellOf)
		defer cache.flush()
	}

	nextID := nextSensorID(m)
	var decided []gridPlacement
	var snapBuf []int
	for round := 0; !m.FullyCovered() && round < opt.maxRounds(); round++ {
		if res.Capped {
			break
		}
		if opt.interrupted() {
			res.Interrupted = true
			break
		}
		roundSpan := obs.StartSpan(obs.CoreRoundSeconds)
		_, trSpan := obs.StartSpanCtx(tctx, "core.round")
		decided = decided[:0]
		evalSpan := obs.StartSpan(obs.CoreBenefitEvalSeconds)
		if cache != nil {
			decided = g.decideCached(st, cache, round, decided)
		} else {
			snapBuf = m.CountsInto(snapBuf)
			decided = g.decideRescan(st, snapBuf, newRs, round, decided)
		}
		evalSpan.End()
		if len(decided) == 0 {
			// No leader can reach the remaining deficient points: the
			// base station seeds the lowest deficient sample point (the
			// paper's regular-positioning fallback for empty regions).
			unc := m.UncoveredPoints()
			if len(unc) == 0 {
				roundSpan.End()
				trSpan.End()
				break
			}
			decided = append(decided, gridPlacement{leader: -1, cell: st.cellOf[unc[0]], pos: m.Point(unc[0]), ptIdx: unc[0]})
			res.Seeded++
		}
		// Apply all of this round's placements; notifications go out
		// between rounds (the next snapshot sees them).
		for _, d := range decided {
			if len(res.Placed) >= opt.maxPlacements() {
				res.Capped = true
				break
			}
			id := nextID
			nextID++
			if cache != nil && newRs == m.Rs() {
				m.AddSensorAtPoint(id, d.ptIdx)
			} else {
				m.AddSensorRadius(id, d.pos, newRs)
			}
			st.addMember(d.cell, id)
			if cache != nil {
				cache.applyPlacement(d.ptIdx)
			}
			res.Placed = append(res.Placed, Placement{ID: id, Pos: d.pos, Round: round})
			if d.leader < 0 {
				continue // base-station seed: no leader messages
			}
			// One message per occupied neighboring cell whose area the
			// new sensor's disk overlaps (§3.3 border exchange), plus one
			// to the adopted cell's new sensor if placed remotely.
			disk := geom.Disk{Center: d.pos, R: newRs}
			for _, nc := range st.nbrs[d.cell] {
				if len(st.members[nc]) == 0 {
					continue
				}
				if disk.IntersectsRect(st.part.CellRect(nc)) {
					res.Messages++
					res.NodeMessages[d.leader]++
				}
			}
			if d.cell != st.part.CellIndex(func() geom.Point { p, _ := m.SensorPos(d.leader); return p }()) {
				res.Messages++ // instruct the remote cell's new leader
				res.NodeMessages[d.leader]++
			}
		}
		res.Rounds = round + 1
		roundSpan.End()
		if trSpan != nil {
			trSpan.SetAttr(fmt.Sprintf("round=%d placed=%d", round, len(decided)))
			trSpan.End()
		}
	}
	if depSpan != nil {
		depSpan.SetAttr(fmt.Sprintf("method=%s rounds=%d placed=%d", res.Method, res.Rounds, len(res.Placed)))
		depSpan.End()
	}
	return res
}

// decideCached collects one round's leader decisions from the incremental
// benefit cache.
func (g GridDECOR) decideCached(st *gridState, cache *benefitCache, round int, decided []gridPlacement) []gridPlacement {
	for _, c := range st.occ {
		if g.Sequential && len(decided) > 0 {
			break
		}
		leader := st.members[c][round%len(st.members[c])]
		// Own cell first.
		if idx, _, ok := cache.best(st.cells[c]); ok {
			decided = append(decided, gridPlacement{leader, c, st.m.Point(idx), idx})
			continue
		}
		// Own cell covered: adopt the first empty deficient neighbor.
		for _, nc := range st.nbrs[c] {
			if len(st.members[nc]) > 0 {
				continue
			}
			if idx, _, ok := cache.best(st.cells[nc]); ok {
				decided = append(decided, gridPlacement{leader, nc, st.m.Point(idx), idx})
				break
			}
		}
	}
	return decided
}

// decideRescan is the reference decision path: every candidate's benefit
// is recomputed from the round snapshot through bestCandidateRadius.
func (g GridDECOR) decideRescan(st *gridState, snap []int, newRs float64, round int, decided []gridPlacement) []gridPlacement {
	m := st.m
	perceive := func(cell int) func(i int) int {
		return func(i int) int {
			if st.cellOf[i] != cell {
				return -1 // outside the leader's knowledge
			}
			return snap[i]
		}
	}
	for _, c := range st.occ {
		if g.Sequential && len(decided) > 0 {
			break
		}
		leader := st.members[c][round%len(st.members[c])]
		// Own cell first.
		if idx, _, ok := bestCandidateRadius(m, newRs, st.cells[c], perceive(c)); ok {
			decided = append(decided, gridPlacement{leader, c, m.Point(idx), idx})
			continue
		}
		// Own cell covered: adopt the first empty deficient neighbor.
		for _, nc := range st.nbrs[c] {
			if len(st.members[nc]) > 0 {
				continue
			}
			if idx, _, ok := bestCandidateRadius(m, newRs, st.cells[nc], perceive(nc)); ok {
				decided = append(decided, gridPlacement{leader, nc, m.Point(idx), idx})
				break
			}
		}
	}
	return decided
}

package core

import (
	"math"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/rng"
)

// RegularLattice is the "regular positioning of sensors" the paper
// invokes for empty regions (§3.1), promoted to a full deployment
// baseline: k staggered square lattices with pitch rs·√2 (the densest
// square grid whose cells are fully inside the sensing disks), clipped
// to the field. It ignores the pre-deployed network entirely — the cost
// of obliviousness is what comparing against it shows.
type RegularLattice struct {
	// Pitch overrides the lattice spacing (0 = rs·√2).
	Pitch float64
}

// Name implements Method.
func (RegularLattice) Name() string { return "lattice" }

// Deploy implements Method.
func (l RegularLattice) Deploy(m *coverage.Map, r *rng.RNG, opt Options) Result {
	validateDeployInputs(m, r)
	res := Result{Method: l.Name(), NodeMessages: map[int]int{}, Cells: 1, Rounds: 1}
	pitch := l.Pitch
	if pitch <= 0 {
		pitch = m.Rs() * math.Sqrt2 * 0.999 // epsilon inside the exact bound
	}
	field := m.Field()
	id := nextSensorID(m)
	for layer := 0; layer < m.K() && !m.FullyCovered(); layer++ {
		// Stagger odd layers by half a pitch so failures in one layer
		// are not collocated with the next (the paper's warning about
		// stacking nodes at the same position, §2).
		off := 0.0
		if layer%2 == 1 {
			off = pitch / 2
		}
		for y := field.Min.Y + pitch/2 + off; y < field.Max.Y+pitch/2; y += pitch {
			for x := field.Min.X + pitch/2 + off; x < field.Max.X+pitch/2; x += pitch {
				if len(res.Placed) >= opt.maxPlacements() {
					res.Capped = true
					return res
				}
				if opt.interrupted() {
					res.Interrupted = true
					return res
				}
				p := field.Clamp(geom.Point{X: x, Y: y})
				m.AddSensor(id, p)
				res.Placed = append(res.Placed, Placement{ID: id, Pos: p})
				id++
			}
		}
	}
	// Lattice layers guarantee area coverage but the reliability target
	// is per sample point; top up any residual deficits greedily (border
	// effects only).
	if !m.FullyCovered() && !res.Capped && !res.Interrupted {
		sub := Centralized{}.Deploy(m, r, Options{
			MaxPlacements: opt.maxPlacements() - len(res.Placed),
			Ctx:           opt.Ctx,
		})
		res.Placed = append(res.Placed, sub.Placed...)
		res.Capped = sub.Capped
		res.Interrupted = sub.Interrupted
	}
	return res
}

var _ Method = RegularLattice{}

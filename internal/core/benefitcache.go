package core

import (
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/index"
	"decor/internal/obs"
	"decor/internal/partition"
)

// Cached instrument handles so the placement hot path never touches the
// registry's name map.
var (
	obsCacheDeltas    = obs.Default().Counter(obs.CoreCacheDeltaUpdates)
	obsCacheFallbacks = obs.Default().Counter(obs.CoreCacheFallbacks)
)

// benefitCache maintains, for every sample point, the benefit (Eq. 1) a
// new sensor of radius rs placed there would have against the current
// round-start snapshot — the distributed extension of the incremental
// maintenance Centralized.deployIncremental has always had (DESIGN.md §8).
//
// Invariant, restored after every applyPlacement call:
//
//	benefit[i] = Σ_{j ∈ ball(i, rs), visible(i, j)} max(k − snap[j], 0)
//
// where snap mirrors the map's coverage counts (the distributed rounds
// evaluate a round-start snapshot, and all mutations during a deployment
// flow through applyPlacement) and visible() encodes the scheme's
// knowledge model:
//
//   - Grid (cellOf != nil): a leader only knows points of the cell under
//     evaluation, and every candidate is evaluated against its own cell —
//     so visibility is cellOf[i] == cellOf[j], a property of the candidate
//     alone, and the cached value is exact.
//   - Voronoi (cellOf == nil): a node knows all points within rc of
//     itself, so visibility depends on the evaluating node. The cache
//     stores the unrestricted benefit, which equals the perceived benefit
//     whenever the candidate's whole ball lies inside the node's
//     knowledge disk (d(candidate, node) ≤ rc − rs); the rare boundary
//     candidates fall back to an exact restricted evaluation.
//
// One placement's delta touches O(ball²) cached entries via the
// precomputed point neighborhoods instead of rescanning every candidate's
// ball each round, and allocates nothing.
type benefitCache struct {
	m       *coverage.Map
	rs      float64
	k       int
	nb      *index.Neighborhoods
	snap    []int
	benefit []int
	cellOf  []int // nil for the Voronoi (unrestricted) cache
	deltas  int64 // benefit entries touched; flushed to obs at Deploy end
}

// newBenefitCache builds the cache for new-sensor radius rs. cellOf maps
// each sample point to its grid cell for the cell-restricted variant, or
// is nil for the unrestricted one.
func newBenefitCache(m *coverage.Map, rs float64, cellOf []int) *benefitCache {
	span := obs.StartSpan(obs.CoreCacheBuildSeconds)
	defer span.End()
	n := m.NumPoints()
	c := &benefitCache{
		m:       m,
		rs:      rs,
		k:       m.K(),
		nb:      m.PointNeighborhoods(rs),
		snap:    m.CountsInto(nil),
		benefit: make([]int, n),
		cellOf:  cellOf,
	}
	for j := 0; j < n; j++ {
		d := c.k - c.snap[j]
		if d <= 0 {
			continue
		}
		if cellOf == nil {
			for _, i := range c.nb.At(j) {
				c.benefit[i] += d
			}
		} else {
			cj := cellOf[j]
			for _, i := range c.nb.At(j) {
				if cellOf[i] == cj {
					c.benefit[i] += d
				}
			}
		}
	}
	return c
}

// applyPlacement folds one new sensor of radius rs placed at sample
// point ptIdx into the snapshot and the cached benefits. Call it once per
// placement, in any order within a round — the resulting state equals a
// rebuild against the post-round counts.
func (c *benefitCache) applyPlacement(ptIdx int) {
	for _, jj := range c.nb.At(ptIdx) {
		j := int(jj)
		if c.snap[j] < c.k {
			// The point's deficit shrinks by one, so every candidate
			// whose (visible) ball contains it loses one benefit.
			if c.cellOf == nil {
				for _, i := range c.nb.At(j) {
					c.benefit[i]--
				}
				c.deltas += int64(len(c.nb.At(j)))
			} else {
				cj := c.cellOf[j]
				for _, i := range c.nb.At(j) {
					if c.cellOf[i] == cj {
						c.benefit[i]--
						c.deltas++
					}
				}
			}
		}
		c.snap[j]++
	}
}

// flush publishes the accumulated delta count to the default registry.
// Called once per Deploy so the hot loop stays atomic-free.
func (c *benefitCache) flush() {
	if c.deltas > 0 {
		obsCacheDeltas.Add(c.deltas)
		c.deltas = 0
	}
}

// best returns the deficient candidate with maximum cached benefit, ties
// broken by lowest point index — the cached equivalent of
// bestCandidateRadius under a cell-local perceive. candidates must be
// sorted ascending (the grid's per-cell lists are).
func (c *benefitCache) best(candidates []int) (idx, benefit int, ok bool) {
	bestV, bestIdx := 0, -1
	for _, i := range candidates {
		if c.snap[i] >= c.k {
			continue
		}
		if b := c.benefit[i]; b > bestV {
			bestV, bestIdx = b, i
		}
	}
	if bestIdx < 0 {
		return 0, 0, false
	}
	return bestIdx, bestV, true
}

// bestOwned returns the deficient point owned by Voronoi node id at
// nodePos (communication radius rc) with maximum perceived benefit, ties
// broken by lowest point index. The owned candidates are visited in
// whatever order the ownership set yields — determinism comes from the
// explicit tie-break below. Candidates whose ball provably lies inside
// the node's knowledge disk read the cache; the boundary band is
// evaluated exactly against the snapshot, restricted to the node's
// knowledge — so the result is identical to the full rescan.
func (c *benefitCache) bestOwned(nodePos geom.Point, rc float64, vor *partition.Voronoi, id int) (idx, benefit int, ok bool) {
	fastR := rc - c.rs - 1e-9 // slack absorbs float rounding at the rim
	fast2 := fastR * fastR
	if fastR < 0 {
		fast2 = -1
	}
	rc2 := rc * rc
	bestV, bestIdx := 0, -1
	fallbacks := int64(0)
	vor.VisitOwnedPoints(id, func(i int) bool {
		if c.snap[i] >= c.k {
			return true
		}
		var b int
		if nodePos.Dist2(c.m.Point(i)) <= fast2 {
			b = c.benefit[i]
		} else {
			fallbacks++
			b = 0
			for _, jj := range c.nb.At(i) {
				j := int(jj)
				if nodePos.Dist2(c.m.Point(j)) > rc2 {
					continue // outside the node's knowledge
				}
				if d := c.k - c.snap[j]; d > 0 {
					b += d
				}
			}
		}
		if b > bestV || (b == bestV && bestIdx >= 0 && i < bestIdx) {
			bestV, bestIdx = b, i
		}
		return true
	})
	if fallbacks > 0 {
		obsCacheFallbacks.Add(fallbacks)
	}
	if bestIdx < 0 {
		return 0, 0, false
	}
	return bestIdx, bestV, true
}

// Package partition implements DECOR's two field-partitioning schemes
// (paper §3.1): fixed grid cells with one leader per cell, and local
// Voronoi cells where each sensor owns the sample points nearest to it
// among its communication neighbors.
package partition

import (
	"decor/internal/geom"
)

// Grid is a fixed partition of the field into cellSize × cellSize cells
// (the rightmost/topmost cells may be smaller if the field size is not a
// multiple of cellSize).
type Grid struct {
	field    geom.Rect
	cellSize float64
	cols     int
	rows     int
}

// NewGrid creates a grid partition. cellSize must be positive.
func NewGrid(field geom.Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("partition: cell size must be positive")
	}
	cols := int(field.W() / cellSize)
	if float64(cols)*cellSize < field.W()-1e-9 {
		cols++
	}
	rows := int(field.H() / cellSize)
	if float64(rows)*cellSize < field.H()-1e-9 {
		rows++
	}
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{field: field, cellSize: cellSize, cols: cols, rows: rows}
}

// Cols returns the number of cell columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of cell rows.
func (g *Grid) Rows() int { return g.rows }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.cols * g.rows }

// CellSize returns the nominal cell edge length.
func (g *Grid) CellSize() float64 { return g.cellSize }

// CellIndex returns the cell containing p. Points outside the field are
// clamped to the nearest border cell, so every point maps to exactly one
// cell.
func (g *Grid) CellIndex(p geom.Point) int {
	cx := int((p.X - g.field.Min.X) / g.cellSize)
	cy := int((p.Y - g.field.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// CellRect returns the rectangle of cell idx, clipped to the field.
func (g *Grid) CellRect(idx int) geom.Rect {
	cx := idx % g.cols
	cy := idx / g.cols
	r := geom.RectWH(
		g.field.Min.X+float64(cx)*g.cellSize,
		g.field.Min.Y+float64(cy)*g.cellSize,
		g.cellSize, g.cellSize,
	)
	return r.Intersect(g.field)
}

// Neighbors returns the indices of the up-to-8 cells adjacent to idx
// (Moore neighborhood), in ascending order.
func (g *Grid) Neighbors(idx int) []int {
	cx := idx % g.cols
	cy := idx / g.cols
	out := make([]int, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := cx+dx, cy+dy
			if nx < 0 || nx >= g.cols || ny < 0 || ny >= g.rows {
				continue
			}
			out = append(out, ny*g.cols+nx)
		}
	}
	return out
}

// AssignPoints groups the sample points by containing cell, returning a
// slice indexed by cell of ascending point indices.
func (g *Grid) AssignPoints(pts []geom.Point) [][]int {
	cells := make([][]int, g.NumCells())
	for i, p := range pts {
		c := g.CellIndex(p)
		cells[c] = append(cells[c], i)
	}
	return cells
}

// MaxLeaderDistance returns the maximum possible distance between leaders
// of adjacent (Moore) cells: 2·cellSize·√2. The paper derives the "big"
// Voronoi communication radius rc = 10√2 from this quantity for 5×5
// cells.
func (g *Grid) MaxLeaderDistance() float64 {
	return 2 * g.cellSize * 1.4142135623730951
}

package partition

import (
	"sort"

	"decor/internal/geom"
	"decor/internal/index"
)

// Voronoi maintains the paper's local Voronoi cells (Definition 1) over a
// fixed sample-point set: each sample point is owned by the nearest sensor
// within communication radius rc; points farther than rc from every sensor
// are orphans (owner −1). Ownership updates incrementally as sensors are
// added or removed, mirroring the paper's observation that "each time a
// new sensor node is placed, the placement may affect the size of the
// Voronoi cells of some neighboring nodes".
type Voronoi struct {
	rc      float64
	pts     []geom.Point
	ptIdx   *index.Grid
	sensors map[int]geom.Point
	sIdx    *index.Grid
	owner   []int
	// ownerD2 caches the squared distance from each point to its owner,
	// so contested ownership checks never look up the incumbent's
	// position; pos holds each point's index within its owner's list,
	// making dispossession an O(1) swap-delete. Together they keep the
	// AddSensor hot loop free of per-point map operations.
	ownerD2 []float64
	pos     []int
	owned   map[int]*ownedSet // sensor id -> owned point indices
}

// ownedSet is one sensor's owned-point list, in unspecified order.
// Held by pointer so list mutations never write back through the map.
type ownedSet struct {
	ids []int
}

// NewVoronoi creates the ownership structure for the given sample points
// and communication radius. rc must be positive.
func NewVoronoi(field geom.Rect, pts []geom.Point, rc float64) *Voronoi {
	if rc <= 0 {
		panic("partition: rc must be positive")
	}
	v := &Voronoi{
		rc:      rc,
		pts:     append([]geom.Point(nil), pts...),
		ptIdx:   index.NewGrid(field, rc/2),
		sensors: make(map[int]geom.Point),
		sIdx:    index.NewGrid(field, rc/2),
		owner:   make([]int, len(pts)),
		ownerD2: make([]float64, len(pts)),
		pos:     make([]int, len(pts)),
		owned:   make(map[int]*ownedSet),
	}
	v.ptIdx.InsertDense(v.pts)
	for i := range v.owner {
		v.owner[i] = -1
	}
	return v
}

// Rc returns the communication radius.
func (v *Voronoi) Rc() float64 { return v.rc }

// NumPoints returns the number of sample points.
func (v *Voronoi) NumPoints() int { return len(v.pts) }

// Owner returns the sensor owning sample point i, or −1 if orphaned.
func (v *Voronoi) Owner(i int) int { return v.owner[i] }

// OwnedPoints returns the sample points owned by sensor id, ascending.
func (v *Voronoi) OwnedPoints(id int) []int {
	set := v.owned[id]
	if set == nil {
		return nil
	}
	out := append([]int(nil), set.ids...)
	sort.Ints(out)
	return out
}

// VisitOwnedPoints calls fn for every sample point owned by sensor id,
// in unspecified order; returning false stops the visit. It allocates
// nothing, unlike OwnedPoints — callers that need the paper's
// lowest-index determinism must break ties explicitly.
func (v *Voronoi) VisitOwnedPoints(id int, fn func(i int) bool) {
	set := v.owned[id]
	if set == nil {
		return
	}
	for _, i := range set.ids {
		if !fn(i) {
			return
		}
	}
}

// NumOwned returns the number of sample points owned by sensor id.
func (v *Voronoi) NumOwned(id int) int {
	set := v.owned[id]
	if set == nil {
		return 0
	}
	return len(set.ids)
}

// Orphans returns all sample points with no owner, ascending.
func (v *Voronoi) Orphans() []int {
	var out []int
	for i, o := range v.owner {
		if o < 0 {
			out = append(out, i)
		}
	}
	return out
}

// SensorIDs returns all registered sensors, ascending.
func (v *Voronoi) SensorIDs() []int {
	out := make([]int, 0, len(v.sensors))
	for id := range v.sensors {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// closer reports whether sensor a at pa beats sensor b at pb for point p
// (strictly closer, ties broken by lower id for determinism).
func closer(a int, pa geom.Point, b int, pb geom.Point, p geom.Point) bool {
	da, db := pa.Dist2(p), pb.Dist2(p)
	if da != db {
		return da < db
	}
	return a < b
}

// AddSensor registers a sensor and reassigns ownership of the sample
// points within rc that are now nearest to it. It returns the indices of
// the points it acquired (ascending) and panics on duplicate id.
func (v *Voronoi) AddSensor(id int, p geom.Point) []int {
	if _, ok := v.sensors[id]; ok {
		panic("partition: duplicate sensor id")
	}
	v.sensors[id] = p
	v.sIdx.Insert(id, p)
	set := &ownedSet{}
	v.owned[id] = set
	var acquired []int
	v.ptIdx.VisitBall(p, v.rc, func(i int, pp geom.Point) bool {
		cur := v.owner[i]
		d2 := p.Dist2(pp)
		// The incumbent keeps the point when strictly closer, or at
		// equal distance with the lower id (same rule as closer()),
		// decided from the cached owner distance alone.
		if cur >= 0 && (d2 > v.ownerD2[i] || (d2 == v.ownerD2[i] && cur < id)) {
			return true
		}
		if cur >= 0 {
			v.detach(cur, i)
		}
		v.owner[i] = id
		v.ownerD2[i] = d2
		v.pos[i] = len(set.ids)
		set.ids = append(set.ids, i)
		acquired = append(acquired, i)
		return true
	})
	sort.Ints(acquired)
	return acquired
}

// AddSensorAt registers a sensor positioned exactly at sample point
// ptIdx, claiming ownership by walking nb's precomputed within-rc row
// for that point instead of a geometric ball query — the placement
// engines' fast path. nb must be an adjacency over this partition's
// sample points built with radius exactly rc (it panics otherwise).
// Unlike AddSensor it does not report the acquired points.
func (v *Voronoi) AddSensorAt(id, ptIdx int, nb *index.Neighborhoods) {
	if nb.Radius() != v.rc {
		panic("partition: AddSensorAt requires an adjacency built with radius rc")
	}
	if _, ok := v.sensors[id]; ok {
		panic("partition: duplicate sensor id")
	}
	p := v.pts[ptIdx]
	v.sensors[id] = p
	v.sIdx.Insert(id, p)
	set := &ownedSet{}
	v.owned[id] = set
	for _, i32 := range nb.At(ptIdx) {
		i := int(i32)
		cur := v.owner[i]
		d2 := p.Dist2(v.pts[i])
		if cur >= 0 && (d2 > v.ownerD2[i] || (d2 == v.ownerD2[i] && cur < id)) {
			continue
		}
		if cur >= 0 {
			v.detach(cur, i)
		}
		v.owner[i] = id
		v.ownerD2[i] = d2
		v.pos[i] = len(set.ids)
		set.ids = append(set.ids, i)
	}
}

// detach removes point i from its current owner's list by swap-delete.
func (v *Voronoi) detach(owner, i int) {
	set := v.owned[owner]
	j := v.pos[i]
	last := len(set.ids) - 1
	moved := set.ids[last]
	set.ids[j] = moved
	v.pos[moved] = j
	set.ids = set.ids[:last]
}

// RemoveSensor unregisters a sensor (e.g. after a failure) and reassigns
// its points to the nearest surviving sensor within rc, or orphans them.
// It reports whether the sensor existed.
func (v *Voronoi) RemoveSensor(id int) bool {
	if _, ok := v.sensors[id]; !ok {
		return false
	}
	orphaned := v.owned[id]
	delete(v.sensors, id)
	delete(v.owned, id)
	v.sIdx.Remove(id)
	for _, i := range orphaned.ids {
		v.owner[i] = -1
		p := v.pts[i]
		best, bestD2 := -1, 0.0
		v.sIdx.VisitBall(p, v.rc, func(sid int, sp geom.Point) bool {
			d2 := sp.Dist2(p)
			if best < 0 || d2 < bestD2 || (d2 == bestD2 && sid < best) {
				best, bestD2 = sid, d2
			}
			return true
		})
		if best >= 0 {
			v.owner[i] = best
			v.ownerD2[i] = bestD2
			set := v.owned[best]
			v.pos[i] = len(set.ids)
			set.ids = append(set.ids, i)
		}
	}
	return true
}

// Neighbors returns the sensors within rc of sensor id (excluding id),
// ascending — the 1-hop communication neighborhood used for message
// accounting.
func (v *Voronoi) Neighbors(id int) []int {
	p, ok := v.sensors[id]
	if !ok {
		return nil
	}
	var out []int
	v.sIdx.VisitBall(p, v.rc, func(sid int, _ geom.Point) bool {
		if sid != id {
			out = append(out, sid)
		}
		return true
	})
	sort.Ints(out)
	return out
}

// NeighborCount returns the number of sensors within rc of sensor id
// (excluding id) without materializing or sorting the list — message
// accounting only needs the size.
func (v *Voronoi) NeighborCount(id int) int {
	p, ok := v.sensors[id]
	if !ok {
		return 0
	}
	n := 0
	v.sIdx.VisitBall(p, v.rc, func(sid int, _ geom.Point) bool {
		if sid != id {
			n++
		}
		return true
	})
	return n
}

// CheckInvariants verifies internal consistency (owner array vs owned
// sets vs nearest-sensor semantics) and returns false with a description
// on the first violation. Used by property tests.
func (v *Voronoi) CheckInvariants() (bool, string) {
	for id, set := range v.owned {
		for j, i := range set.ids {
			if v.owner[i] != id {
				return false, "owned set disagrees with owner array"
			}
			if v.pos[i] != j {
				return false, "pos index disagrees with owned list"
			}
			if v.ownerD2[i] != v.sensors[id].Dist2(v.pts[i]) {
				return false, "cached owner distance is stale"
			}
		}
	}
	for i, o := range v.owner {
		p := v.pts[i]
		best, bestPos := -1, geom.Point{}
		v.sIdx.VisitBall(p, v.rc, func(sid int, sp geom.Point) bool {
			if best < 0 || closer(sid, sp, best, bestPos, p) {
				best, bestPos = sid, sp
			}
			return true
		})
		if best != o {
			return false, "owner is not the nearest sensor within rc"
		}
	}
	return true, ""
}

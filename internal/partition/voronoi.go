package partition

import (
	"sort"

	"decor/internal/geom"
	"decor/internal/index"
)

// Voronoi maintains the paper's local Voronoi cells (Definition 1) over a
// fixed sample-point set: each sample point is owned by the nearest sensor
// within communication radius rc; points farther than rc from every sensor
// are orphans (owner −1). Ownership updates incrementally as sensors are
// added or removed, mirroring the paper's observation that "each time a
// new sensor node is placed, the placement may affect the size of the
// Voronoi cells of some neighboring nodes".
type Voronoi struct {
	rc      float64
	pts     []geom.Point
	ptIdx   *index.Grid
	sensors map[int]geom.Point
	sIdx    *index.Grid
	owner   []int
	owned   map[int]map[int]bool // sensor id -> set of owned point indices
}

// NewVoronoi creates the ownership structure for the given sample points
// and communication radius. rc must be positive.
func NewVoronoi(field geom.Rect, pts []geom.Point, rc float64) *Voronoi {
	if rc <= 0 {
		panic("partition: rc must be positive")
	}
	v := &Voronoi{
		rc:      rc,
		pts:     append([]geom.Point(nil), pts...),
		ptIdx:   index.NewGrid(field, rc/2),
		sensors: make(map[int]geom.Point),
		sIdx:    index.NewGrid(field, rc/2),
		owner:   make([]int, len(pts)),
		owned:   make(map[int]map[int]bool),
	}
	for i, p := range v.pts {
		v.ptIdx.Insert(i, p)
		v.owner[i] = -1
	}
	return v
}

// Rc returns the communication radius.
func (v *Voronoi) Rc() float64 { return v.rc }

// NumPoints returns the number of sample points.
func (v *Voronoi) NumPoints() int { return len(v.pts) }

// Owner returns the sensor owning sample point i, or −1 if orphaned.
func (v *Voronoi) Owner(i int) int { return v.owner[i] }

// OwnedPoints returns the sample points owned by sensor id, ascending.
func (v *Voronoi) OwnedPoints(id int) []int {
	set := v.owned[id]
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Orphans returns all sample points with no owner, ascending.
func (v *Voronoi) Orphans() []int {
	var out []int
	for i, o := range v.owner {
		if o < 0 {
			out = append(out, i)
		}
	}
	return out
}

// SensorIDs returns all registered sensors, ascending.
func (v *Voronoi) SensorIDs() []int {
	out := make([]int, 0, len(v.sensors))
	for id := range v.sensors {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// closer reports whether sensor a at pa beats sensor b at pb for point p
// (strictly closer, ties broken by lower id for determinism).
func closer(a int, pa geom.Point, b int, pb geom.Point, p geom.Point) bool {
	da, db := pa.Dist2(p), pb.Dist2(p)
	if da != db {
		return da < db
	}
	return a < b
}

// AddSensor registers a sensor and reassigns ownership of the sample
// points within rc that are now nearest to it. It returns the indices of
// the points it acquired (ascending) and panics on duplicate id.
func (v *Voronoi) AddSensor(id int, p geom.Point) []int {
	if _, ok := v.sensors[id]; ok {
		panic("partition: duplicate sensor id")
	}
	v.sensors[id] = p
	v.sIdx.Insert(id, p)
	set := make(map[int]bool)
	v.owned[id] = set
	var acquired []int
	v.ptIdx.VisitBall(p, v.rc, func(i int, pp geom.Point) bool {
		cur := v.owner[i]
		if cur < 0 || closer(id, p, cur, v.sensors[cur], pp) {
			if cur >= 0 {
				delete(v.owned[cur], i)
			}
			v.owner[i] = id
			set[i] = true
			acquired = append(acquired, i)
		}
		return true
	})
	sort.Ints(acquired)
	return acquired
}

// RemoveSensor unregisters a sensor (e.g. after a failure) and reassigns
// its points to the nearest surviving sensor within rc, or orphans them.
// It reports whether the sensor existed.
func (v *Voronoi) RemoveSensor(id int) bool {
	if _, ok := v.sensors[id]; !ok {
		return false
	}
	orphaned := v.owned[id]
	delete(v.sensors, id)
	delete(v.owned, id)
	v.sIdx.Remove(id)
	for i := range orphaned {
		v.owner[i] = -1
		p := v.pts[i]
		best, bestPos := -1, geom.Point{}
		v.sIdx.VisitBall(p, v.rc, func(sid int, sp geom.Point) bool {
			if best < 0 || closer(sid, sp, best, bestPos, p) {
				best, bestPos = sid, sp
			}
			return true
		})
		if best >= 0 {
			v.owner[i] = best
			v.owned[best][i] = true
		}
	}
	return true
}

// Neighbors returns the sensors within rc of sensor id (excluding id),
// ascending — the 1-hop communication neighborhood used for message
// accounting.
func (v *Voronoi) Neighbors(id int) []int {
	p, ok := v.sensors[id]
	if !ok {
		return nil
	}
	var out []int
	v.sIdx.VisitBall(p, v.rc, func(sid int, _ geom.Point) bool {
		if sid != id {
			out = append(out, sid)
		}
		return true
	})
	sort.Ints(out)
	return out
}

// CheckInvariants verifies internal consistency (owner array vs owned
// sets vs nearest-sensor semantics) and returns false with a description
// on the first violation. Used by property tests.
func (v *Voronoi) CheckInvariants() (bool, string) {
	for id, set := range v.owned {
		for i := range set {
			if v.owner[i] != id {
				return false, "owned set disagrees with owner array"
			}
		}
	}
	for i, o := range v.owner {
		p := v.pts[i]
		best, bestPos := -1, geom.Point{}
		v.sIdx.VisitBall(p, v.rc, func(sid int, sp geom.Point) bool {
			if best < 0 || closer(sid, sp, best, bestPos, p) {
				best, bestPos = sid, sp
			}
			return true
		})
		if best != o {
			return false, "owner is not the nearest sensor within rc"
		}
	}
	return true, ""
}

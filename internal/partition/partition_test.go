package partition

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func TestNewGridDimensions(t *testing.T) {
	g := NewGrid(geom.Square(100), 5)
	if g.Cols() != 20 || g.Rows() != 20 || g.NumCells() != 400 {
		t.Errorf("5x5 grid dims = %dx%d", g.Cols(), g.Rows())
	}
	g = NewGrid(geom.Square(100), 10)
	if g.NumCells() != 100 {
		t.Errorf("10x10 grid cells = %d", g.NumCells())
	}
	// Non-divisible: 100/7 -> 15 columns.
	g = NewGrid(geom.Square(100), 7)
	if g.Cols() != 15 {
		t.Errorf("7-unit grid cols = %d, want 15", g.Cols())
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero cell size should panic")
		}
	}()
	NewGrid(geom.Square(10), 0)
}

func TestCellIndexAndRect(t *testing.T) {
	g := NewGrid(geom.Square(100), 5)
	if got := g.CellIndex(geom.Pt(0, 0)); got != 0 {
		t.Errorf("CellIndex(0,0) = %d", got)
	}
	if got := g.CellIndex(geom.Pt(7, 3)); got != 1 {
		t.Errorf("CellIndex(7,3) = %d", got)
	}
	if got := g.CellIndex(geom.Pt(3, 7)); got != 20 {
		t.Errorf("CellIndex(3,7) = %d", got)
	}
	// Boundary: the field max corner belongs to the last cell.
	if got := g.CellIndex(geom.Pt(100, 100)); got != 399 {
		t.Errorf("CellIndex(100,100) = %d", got)
	}
	// Outside points clamp.
	if got := g.CellIndex(geom.Pt(-5, -5)); got != 0 {
		t.Errorf("CellIndex(-5,-5) = %d", got)
	}
	r := g.CellRect(21)
	if !r.Min.Eq(geom.Pt(5, 5)) || !r.Max.Eq(geom.Pt(10, 10)) {
		t.Errorf("CellRect(21) = %v", r)
	}
}

func TestCellRectTiling(t *testing.T) {
	g := NewGrid(geom.Square(100), 7) // non-divisible tiling
	total := 0.0
	for i := 0; i < g.NumCells(); i++ {
		total += g.CellRect(i).Area()
	}
	if diff := total - 10000; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cells tile to %v, want 10000", total)
	}
}

func TestNeighbors(t *testing.T) {
	g := NewGrid(geom.Square(100), 10) // 10x10 cells
	// Corner cell 0: 3 neighbors.
	if n := g.Neighbors(0); len(n) != 3 {
		t.Errorf("corner neighbors = %v", n)
	}
	// Edge cell 5: 5 neighbors.
	if n := g.Neighbors(5); len(n) != 5 {
		t.Errorf("edge neighbors = %v", n)
	}
	// Interior cell 55: 8 neighbors.
	n := g.Neighbors(55)
	if len(n) != 8 {
		t.Errorf("interior neighbors = %v", n)
	}
	want := []int{44, 45, 46, 54, 56, 64, 65, 66}
	for i := range want {
		if n[i] != want[i] {
			t.Errorf("interior neighbors = %v, want %v", n, want)
			break
		}
	}
}

func TestAssignPoints(t *testing.T) {
	g := NewGrid(geom.Square(100), 5)
	pts := lowdisc.Halton{}.Points(2000, geom.Square(100))
	cells := g.AssignPoints(pts)
	total := 0
	for ci, idxs := range cells {
		r := g.CellRect(ci)
		for _, i := range idxs {
			if !r.Contains(pts[i]) {
				t.Fatalf("point %v assigned to wrong cell %v", pts[i], r)
			}
		}
		total += len(idxs)
	}
	if total != 2000 {
		t.Errorf("assigned %d points, want 2000", total)
	}
}

func TestMaxLeaderDistance(t *testing.T) {
	g := NewGrid(geom.Square(100), 5)
	// Paper: rc = 10·sqrt(2) ≈ 14.14 for 5x5 cells.
	if got := g.MaxLeaderDistance(); got < 14.14 || got > 14.15 {
		t.Errorf("MaxLeaderDistance = %v", got)
	}
}

func TestVoronoiBasics(t *testing.T) {
	field := geom.Square(100)
	pts := []geom.Point{{X: 10, Y: 10}, {X: 20, Y: 10}, {X: 90, Y: 90}}
	v := NewVoronoi(field, pts, 15)
	if v.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", v.NumPoints())
	}
	if len(v.Orphans()) != 3 {
		t.Error("all points should start orphaned")
	}
	acq := v.AddSensor(1, geom.Pt(12, 10))
	if len(acq) != 2 || acq[0] != 0 || acq[1] != 1 {
		t.Errorf("acquired = %v", acq)
	}
	if v.Owner(2) != -1 {
		t.Error("far point should remain orphan")
	}
	// A closer sensor steals point 1.
	acq = v.AddSensor(2, geom.Pt(19, 10))
	if len(acq) != 1 || acq[0] != 1 {
		t.Errorf("steal acquired = %v", acq)
	}
	if v.Owner(1) != 2 || v.Owner(0) != 1 {
		t.Errorf("owners = %d %d", v.Owner(0), v.Owner(1))
	}
	if got := v.OwnedPoints(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("OwnedPoints(1) = %v", got)
	}
	if ok, msg := v.CheckInvariants(); !ok {
		t.Error(msg)
	}
}

func TestVoronoiTieBreaksByID(t *testing.T) {
	field := geom.Square(100)
	pts := []geom.Point{{X: 50, Y: 50}}
	v := NewVoronoi(field, pts, 20)
	v.AddSensor(7, geom.Pt(45, 50))
	v.AddSensor(3, geom.Pt(55, 50)) // same distance, lower id
	if v.Owner(0) != 3 {
		t.Errorf("tie should go to lower id, got %d", v.Owner(0))
	}
}

func TestVoronoiRemoveReassigns(t *testing.T) {
	field := geom.Square(100)
	pts := []geom.Point{{X: 10, Y: 10}}
	v := NewVoronoi(field, pts, 15)
	v.AddSensor(1, geom.Pt(11, 10))
	v.AddSensor(2, geom.Pt(15, 10))
	if v.Owner(0) != 1 {
		t.Fatalf("owner = %d", v.Owner(0))
	}
	if !v.RemoveSensor(1) {
		t.Fatal("remove failed")
	}
	if v.Owner(0) != 2 {
		t.Errorf("after removal owner = %d, want 2", v.Owner(0))
	}
	v.RemoveSensor(2)
	if v.Owner(0) != -1 {
		t.Error("point should be orphaned after all sensors removed")
	}
	if v.RemoveSensor(99) {
		t.Error("removing unknown sensor should report false")
	}
}

func TestVoronoiNeighbors(t *testing.T) {
	field := geom.Square(100)
	v := NewVoronoi(field, nil, 10)
	v.AddSensor(1, geom.Pt(50, 50))
	v.AddSensor(2, geom.Pt(55, 50))
	v.AddSensor(3, geom.Pt(75, 50))
	n := v.Neighbors(1)
	if len(n) != 1 || n[0] != 2 {
		t.Errorf("Neighbors(1) = %v", n)
	}
	if v.Neighbors(42) != nil {
		t.Error("unknown sensor should have nil neighbors")
	}
}

func TestVoronoiDuplicatePanics(t *testing.T) {
	v := NewVoronoi(geom.Square(10), nil, 5)
	v.AddSensor(1, geom.Pt(5, 5))
	defer func() {
		if recover() == nil {
			t.Error("duplicate sensor should panic")
		}
	}()
	v.AddSensor(1, geom.Pt(6, 6))
}

// Property: after a random add/remove workload, invariants hold and every
// owner is genuinely the nearest in-range sensor.
func TestVoronoiInvariantsUnderChurn(t *testing.T) {
	r := rng.New(31)
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(400, field)
	v := NewVoronoi(field, pts, 12)
	alive := map[int]bool{}
	next := 0
	for step := 0; step < 300; step++ {
		if len(alive) == 0 || r.Float64() < 0.65 {
			v.AddSensor(next, r.PointInRect(field))
			alive[next] = true
			next++
		} else {
			for id := range alive {
				v.RemoveSensor(id)
				delete(alive, id)
				break
			}
		}
		if step%50 == 0 {
			if ok, msg := v.CheckInvariants(); !ok {
				t.Fatalf("step %d: %s", step, msg)
			}
		}
	}
	if ok, msg := v.CheckInvariants(); !ok {
		t.Fatal(msg)
	}
}

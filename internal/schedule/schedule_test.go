package schedule

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/energy"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func deployedMap(k int, seed uint64) *coverage.Map {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(seed)
	for id := 0; id < 40; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	(core.Centralized{}).Deploy(m, rng.New(seed+1), core.Options{})
	return m
}

func TestBuildProducesValidPlan(t *testing.T) {
	for _, k := range []int{1, 3, 5} {
		m := deployedMap(k, 3)
		p := Build(m)
		if !Verify(m, p) {
			t.Fatalf("k=%d: plan failed verification", k)
		}
		// Every sensor is in exactly one cover or spare.
		counted := len(p.Spare)
		for _, c := range p.Covers {
			counted += len(c)
		}
		if counted != m.NumSensors() {
			t.Errorf("k=%d: %d sensors accounted, %d deployed", k, counted, m.NumSensors())
		}
	}
}

func TestMoreKMoreCovers(t *testing.T) {
	covers := map[int]int{}
	for _, k := range []int{1, 3, 5} {
		m := deployedMap(k, 7)
		covers[k] = Build(m).NumCovers()
	}
	if covers[1] < 1 {
		t.Errorf("k=1 should yield at least one cover, got %d", covers[1])
	}
	// Disjoint-cover extraction is lossy (NP-hard problem, greedy
	// heuristic): require monotonicity and a strict gain from k=1 to
	// k=5 rather than strict steps everywhere.
	if covers[3] < covers[1] || covers[5] < covers[3] {
		t.Errorf("cover counts not monotone in k: %v", covers)
	}
	if covers[5] < covers[1]+2 {
		t.Errorf("k=5 covers (%d) should exceed k=1 (%d) by at least 2", covers[5], covers[1])
	}
}

func TestBuildOnUncoverableField(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(200, field)
	m := coverage.New(field, pts, 4, 1)
	m.AddSensor(1, geom.Pt(25, 25)) // a single sensor cannot cover 50x50
	p := Build(m)
	if p.NumCovers() != 0 {
		t.Errorf("covers = %d, want 0", p.NumCovers())
	}
	if len(p.Spare) != 1 || p.Spare[0] != 1 {
		t.Errorf("spare = %v", p.Spare)
	}
}

func TestVerifyRejectsBadPlans(t *testing.T) {
	m := deployedMap(2, 5)
	good := Build(m)
	if good.NumCovers() < 1 {
		t.Skip("need at least one cover")
	}
	// Overlapping covers.
	overlap := Plan{Covers: []Cover{good.Covers[0], good.Covers[0]}}
	if Verify(m, overlap) {
		t.Error("overlapping covers passed verification")
	}
	// Incomplete cover.
	short := Plan{Covers: []Cover{good.Covers[0][:1]}}
	if Verify(m, short) {
		t.Error("incomplete cover passed verification")
	}
	// Unknown sensor.
	bogus := Plan{Covers: []Cover{{999999}}}
	if Verify(m, bogus) {
		t.Error("unknown sensor passed verification")
	}
}

func TestLifetimeScalesWithCovers(t *testing.T) {
	m1 := deployedMap(1, 9)
	m5 := deployedMap(5, 9)
	p1, p5 := Build(m1), Build(m5)
	if p5.NumCovers() <= p1.NumCovers() {
		t.Skip("cover extraction did not separate k=1 and k=5 this seed")
	}
	model := energy.Default()
	l1 := Lifetime(p1, model, 1e-3, 10, 8, 2)
	l5 := Lifetime(p5, model, 1e-3, 10, 8, 2)
	if l5 <= l1 {
		t.Errorf("k=5 lifetime %d not above k=1 lifetime %d", l5, l1)
	}
	// Roughly proportional to the cover count.
	ratio := float64(l5) / float64(l1)
	want := float64(p5.NumCovers()) / float64(p1.NumCovers())
	if ratio < want*0.6 || ratio > want*1.4 {
		t.Errorf("lifetime ratio %.2f far from cover ratio %.2f", ratio, want)
	}
}

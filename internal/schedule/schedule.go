// Package schedule implements the sleep scheduling that motivates
// k-coverage in the paper's §1 (application 3): "When k nodes are
// covering a point, we have the option of putting some of them to sleep
// or balance the workload among all k nodes. Thus, k-coverage leads to
// significant energy savings and increases the lifetime for the
// network."
//
// It extracts disjoint sensor covers (subsets that each 1-cover every
// sample point) with the same greedy-benefit heuristic DECOR uses for
// placement, and converts cover counts into lifetime estimates via the
// energy model.
package schedule

import (
	"sort"

	"decor/internal/coverage"
	"decor/internal/energy"
	"decor/internal/geom"
)

// Cover is one rotation shift: sensor IDs that jointly cover the field.
type Cover []int

// Plan is a full rotation schedule.
type Plan struct {
	// Covers are the disjoint 1-covering shifts, in extraction order.
	Covers []Cover
	// Spare lists sensors in no cover (kept asleep or as replacements).
	Spare []int
}

// NumCovers returns the lifetime multiple the schedule achieves.
func (p Plan) NumCovers() int { return len(p.Covers) }

// Build extracts disjoint 1-covers with the critical-element heuristic
// of Slijepcevic & Potkonjak (the paper's reference [16]): each step
// first identifies the most-constrained uncovered point — the one with
// the fewest unused sensors still able to cover it — and then picks,
// among those sensors, the one covering the most uncovered points. This
// protects scarce coverage and extracts far more disjoint covers than
// plain greedy set cover. Extraction stops when a cover can no longer
// be completed.
func Build(m *coverage.Map) Plan {
	used := map[int]bool{}
	var plan Plan
	allIDs := m.SensorIDs()
	type sensor struct {
		id  int
		pos geom.Point
		rs  float64
	}
	byID := map[int]sensor{}
	for _, id := range allIDs {
		pos, _ := m.SensorPos(id)
		rs, _ := m.SensorRadius(id)
		byID[id] = sensor{id, pos, rs}
	}
	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	maxRs := m.MaxSensorRadius()
	// unusedCovering returns the unused sensors able to cover point p,
	// ascending.
	unusedCovering := func(p geom.Point) []int {
		var out []int
		for _, id := range m.SensorsInBall(p, maxRs) {
			if used[id] {
				continue
			}
			s := byID[id]
			if s.pos.Dist2(p) <= s.rs*s.rs {
				out = append(out, id)
			}
		}
		return out
	}
	for {
		shadow := coverage.New(m.Field(), pts, m.Rs(), 1)
		var members Cover
		feasible := true
		for !shadow.FullyCovered() {
			// Find the critical uncovered point.
			critAvail := -1
			var critOptions []int
			for _, i := range shadow.UncoveredPoints() {
				opts := unusedCovering(m.Point(i))
				if len(opts) == 0 {
					feasible = false
					break
				}
				if critAvail < 0 || len(opts) < critAvail {
					critAvail = len(opts)
					critOptions = opts
					if critAvail == 1 {
						break // cannot get more constrained
					}
				}
			}
			if !feasible {
				break
			}
			// Among the critical point's options, score each sensor by
			// the uncovered points it gains minus a scarcity penalty for
			// consuming points with few unused options left (the
			// "redundancy" term of the Slijepcevic–Potkonjak objective):
			// a sensor that covers many scarce points hurts future
			// covers.
			bestID, best := -1, -(1 << 30)
			for _, id := range critOptions {
				s := byID[id]
				gain := 0
				penalty := 0
				shadow.VisitPointsInBall(s.pos, s.rs, func(i int, p geom.Point) bool {
					if s.pos.Dist2(p) > s.rs*s.rs {
						return true
					}
					if shadow.Count(i) > 0 {
						return true // already covered this round: no cost
					}
					gain++
					if avail := len(unusedCovering(p)); avail <= 3 {
						penalty += 4 - avail // scarce point consumed
					}
					return true
				})
				if score := 2*gain - penalty; score > best {
					best, bestID = score, id
				}
			}
			s := byID[bestID]
			shadow.AddSensorRadius(bestID, s.pos, s.rs)
			members = append(members, bestID)
		}
		if !feasible {
			plan.finishSpare(used, allIDs)
			return plan
		}
		for _, id := range members {
			used[id] = true
		}
		sort.Ints(members)
		plan.Covers = append(plan.Covers, members)
	}
}

func (p *Plan) finishSpare(used map[int]bool, all []int) {
	for _, id := range all {
		if !used[id] {
			p.Spare = append(p.Spare, id)
		}
	}
	sort.Ints(p.Spare)
}

// Verify checks that every cover in the plan actually 1-covers all of
// m's sample points and that covers are pairwise disjoint.
func Verify(m *coverage.Map, p Plan) bool {
	seen := map[int]bool{}
	pts := make([]geom.Point, m.NumPoints())
	for i := range pts {
		pts[i] = m.Point(i)
	}
	for _, cover := range p.Covers {
		shadow := coverage.New(m.Field(), pts, m.Rs(), 1)
		for _, id := range cover {
			if seen[id] {
				return false // overlap between covers
			}
			seen[id] = true
			pos, ok := m.SensorPos(id)
			if !ok {
				return false
			}
			rs, _ := m.SensorRadius(id)
			shadow.AddSensorRadius(id, pos, rs)
		}
		if !shadow.FullyCovered() {
			return false
		}
	}
	return true
}

// Lifetime estimates the whole-network monitored lifetime (in epochs of
// epochSec) under round-robin cover rotation with the given energy model
// and per-node battery capacity. Heartbeats cost hbPerEpoch
// transmissions at range rc per awake node.
func Lifetime(p Plan, model energy.Model, capacity, epochSec, rc float64, hbPerEpoch int) int {
	covers := make([][]int, len(p.Covers))
	for i, c := range p.Covers {
		covers[i] = c
	}
	return energy.LifetimeEpochs(covers, model, capacity, epochSec, rc, hbPerEpoch)
}

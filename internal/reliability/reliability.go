// Package reliability implements the paper's reliability calculus. The
// abstract promises that "every point in the network is covered by at
// least k sensors, where k is calculated based on user reliability
// requirements", and §2.1 gives the model: sensors fail independently
// with probability q, so a point covered by k sensors stays covered with
// probability 1 − q^k.
//
// The package answers both directions — the k needed for a target
// reliability, and the reliability delivered by an existing deployment —
// and extends the model to level-j coverage survival via the binomial
// tail.
package reliability

import (
	"errors"
	"math"

	"decor/internal/coverage"
	"decor/internal/stats"
)

// PointReliability returns the probability that a point covered by k
// sensors remains covered by at least one when each sensor fails
// independently with probability q (the paper's 1 − q^k).
func PointReliability(k int, q float64) float64 {
	if k <= 0 {
		return 0
	}
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return 0
	}
	return 1 - math.Pow(q, float64(k))
}

// KForTarget returns the smallest coverage degree k such that a point
// covered by k sensors survives with probability at least target under
// i.i.d. failure probability q. This is the "user reliability
// requirement → k" translation the paper's abstract describes.
//
// It returns an error for unsatisfiable inputs (target >= 1 with q > 0,
// or q >= 1).
func KForTarget(q, target float64) (int, error) {
	switch {
	case target <= 0:
		return 1, nil // any coverage suffices; k >= 1 by definition
	case q <= 0:
		return 1, nil
	case q >= 1:
		return 0, errors.New("reliability: q >= 1 means every sensor fails")
	case target >= 1:
		return 0, errors.New("reliability: target 1.0 is unattainable with q > 0")
	}
	// 1 - q^k >= target  <=>  k >= log(1-target) / log(q).
	k := int(math.Ceil(math.Log(1-target) / math.Log(q)))
	if k < 1 {
		k = 1
	}
	// Guard against float edge cases at the boundary in both directions
	// (e.g. q = 0.1, target = 0.9999 sits exactly on q^4 = 1e-4).
	const eps = 1e-12
	for PointReliability(k, q)+eps < target {
		k++
	}
	for k > 1 && PointReliability(k-1, q)+eps >= target {
		k--
	}
	return k, nil
}

// SurvivalProbability returns the probability that at least level of a
// point's k covering sensors survive i.i.d. failures with probability q
// (the binomial upper tail). level <= 0 yields 1; level > k yields 0.
func SurvivalProbability(k, level int, q float64) float64 {
	if level <= 0 {
		return 1
	}
	if level > k {
		return 0
	}
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return 0
	}
	p := 1 - q // per-sensor survival
	total := 0.0
	for j := level; j <= k; j++ {
		total += binomialPMF(k, j, p)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// binomialPMF returns C(n, j) p^j (1-p)^(n-j), computed in log space for
// stability at the deployment sizes DECOR produces.
func binomialPMF(n, j int, p float64) float64 {
	if j < 0 || j > n {
		return 0
	}
	if p <= 0 {
		if j == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if j == n {
			return 1
		}
		return 0
	}
	logC := lgamma(float64(n+1)) - lgamma(float64(j+1)) - lgamma(float64(n-j+1))
	return math.Exp(logC + float64(j)*math.Log(p) + float64(n-j)*math.Log(1-p))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// FieldReport summarizes the reliability of a deployment.
type FieldReport struct {
	// Q is the assumed i.i.d. sensor failure probability.
	Q float64
	// PointReliability summarizes 1 − q^{k_p} across sample points.
	PointReliability stats.Summary
	// ExpectedCovered is the expected fraction of points still 1-covered
	// after failures (mean of the per-point reliabilities).
	ExpectedCovered float64
	// ExpectedKCovered is the expected fraction of points still covered
	// at the map's full requirement k after failures.
	ExpectedKCovered float64
	// WeakestPoints counts sample points whose reliability is below the
	// field median minus one standard deviation — restoration targets.
	WeakestPoints int
}

// Analyze computes the field reliability of a deployment under i.i.d.
// failure probability q, exactly (no sampling): each point's coverage
// count feeds the closed-form survival probabilities.
func Analyze(m *coverage.Map, q float64) FieldReport {
	n := m.NumPoints()
	rep := FieldReport{Q: q}
	if n == 0 {
		rep.ExpectedCovered = 1
		rep.ExpectedKCovered = 1
		return rep
	}
	rels := make([]float64, n)
	sumK := 0.0
	for i := 0; i < n; i++ {
		kp := m.Count(i)
		rels[i] = PointReliability(kp, q)
		sumK += SurvivalProbability(kp, m.K(), q)
	}
	rep.PointReliability = stats.Summarize(rels)
	rep.ExpectedCovered = rep.PointReliability.Mean
	rep.ExpectedKCovered = sumK / float64(n)
	threshold := stats.Median(rels) - rep.PointReliability.Std
	for _, r := range rels {
		if r < threshold {
			rep.WeakestPoints++
		}
	}
	return rep
}

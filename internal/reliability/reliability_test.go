package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"decor/internal/coverage"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"

	"decor/internal/core"
)

func TestPointReliability(t *testing.T) {
	cases := []struct {
		k    int
		q    float64
		want float64
	}{
		{1, 0.5, 0.5},
		{2, 0.5, 0.75},
		{3, 0.1, 0.999},
		{0, 0.5, 0},
		{5, 0, 1},
		{5, 1, 0},
	}
	for _, c := range cases {
		if got := PointReliability(c.k, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PointReliability(%d, %v) = %v, want %v", c.k, c.q, got, c.want)
		}
	}
}

func TestKForTarget(t *testing.T) {
	cases := []struct {
		q, target float64
		want      int
	}{
		{0.5, 0.75, 2},  // 1-0.25 = 0.75 exactly
		{0.5, 0.9, 4},   // 1-0.5^3 = 0.875 < 0.9; 1-0.5^4 = 0.9375
		{0.1, 0.999, 3}, // 1-0.001
		{0.2, 0.99, 3},  // 0.2^2 = 0.04 > 0.01; 0.2^3 = 0.008
		{0.3, 0.99, 4},  // 0.3^4 = 0.0081 <= 0.01
		{0, 0.99, 1},
		{0.5, 0, 1},
	}
	for _, c := range cases {
		got, err := KForTarget(c.q, c.target)
		if err != nil {
			t.Fatalf("KForTarget(%v, %v): %v", c.q, c.target, err)
		}
		if got != c.want {
			t.Errorf("KForTarget(%v, %v) = %d, want %d", c.q, c.target, got, c.want)
		}
	}
	if _, err := KForTarget(1, 0.9); err == nil {
		t.Error("q=1 should be unsatisfiable")
	}
	if _, err := KForTarget(0.5, 1); err == nil {
		t.Error("target=1 should be unsatisfiable")
	}
}

// Property: KForTarget returns the minimal satisfying k.
func TestKForTargetMinimal(t *testing.T) {
	f := func(rawQ, rawT float64) bool {
		q := 0.05 + math.Mod(math.Abs(rawQ), 0.9)
		target := 0.05 + math.Mod(math.Abs(rawT), 0.9499)
		k, err := KForTarget(q, target)
		if err != nil {
			return false
		}
		if PointReliability(k, q) < target {
			return false
		}
		return k == 1 || PointReliability(k-1, q) < target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSurvivalProbability(t *testing.T) {
	// k=3 sensors, q=0.5: P(>=2 survive) = C(3,2)/8 + C(3,3)/8 = 0.5.
	if got := SurvivalProbability(3, 2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SurvivalProbability(3,2,0.5) = %v", got)
	}
	// Level 1 equals PointReliability.
	for _, k := range []int{1, 2, 5, 10} {
		for _, q := range []float64{0.1, 0.4, 0.8} {
			a := SurvivalProbability(k, 1, q)
			b := PointReliability(k, q)
			if math.Abs(a-b) > 1e-9 {
				t.Errorf("tail(%d,1,%v)=%v != 1-q^k=%v", k, q, a, b)
			}
		}
	}
	if SurvivalProbability(3, 0, 0.5) != 1 {
		t.Error("level 0 should be certain")
	}
	if SurvivalProbability(3, 4, 0.5) != 0 {
		t.Error("level > k should be impossible")
	}
	if SurvivalProbability(3, 2, 0) != 1 || SurvivalProbability(3, 2, 1) != 0 {
		t.Error("degenerate q wrong")
	}
}

func TestSurvivalMonotonicity(t *testing.T) {
	// More coverage, more survival; higher level, less survival.
	for k := 1; k < 20; k++ {
		if SurvivalProbability(k+1, 3, 0.3) < SurvivalProbability(k, 3, 0.3)-1e-12 {
			t.Fatalf("survival not monotone in k at %d", k)
		}
	}
	for lvl := 1; lvl < 10; lvl++ {
		if SurvivalProbability(10, lvl+1, 0.3) > SurvivalProbability(10, lvl, 0.3)+1e-12 {
			t.Fatalf("survival not antitone in level at %d", lvl)
		}
	}
}

func deployedMap(k int) *coverage.Map {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(5)
	for id := 0; id < 40; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	(core.Centralized{}).Deploy(m, rng.New(6), core.Options{})
	return m
}

func TestAnalyzeFullDeployment(t *testing.T) {
	m := deployedMap(3)
	rep := Analyze(m, 0.2)
	// Every point has k_p >= 3, so reliability >= 1 - 0.2^3 = 0.992.
	if rep.PointReliability.Min < 0.992-1e-9 {
		t.Errorf("min reliability = %v", rep.PointReliability.Min)
	}
	if rep.ExpectedCovered < 0.992 || rep.ExpectedCovered > 1 {
		t.Errorf("expected covered = %v", rep.ExpectedCovered)
	}
	if rep.ExpectedKCovered <= 0 || rep.ExpectedKCovered > rep.ExpectedCovered {
		t.Errorf("expected k-covered = %v", rep.ExpectedKCovered)
	}
	if rep.Q != 0.2 {
		t.Errorf("Q = %v", rep.Q)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	m := coverage.New(geom.Square(10), nil, 4, 1)
	rep := Analyze(m, 0.3)
	if rep.ExpectedCovered != 1 || rep.ExpectedKCovered != 1 {
		t.Errorf("empty field report = %+v", rep)
	}
}

// The headline validation: the analytic expectation must match Monte
// Carlo simulation of i.i.d. failures on a real DECOR deployment.
func TestAnalyzeMatchesSimulation(t *testing.T) {
	m := deployedMap(3)
	const q = 0.3
	rep := Analyze(m, q)
	const draws = 60
	sum1, sumK := 0.0, 0.0
	for d := uint64(0); d < draws; d++ {
		r := rng.New(100 + d)
		clone := m.Clone()
		ids := (failure.IID{Q: q}).Select(clone, r)
		failure.Apply(clone, ids)
		sum1 += clone.CoverageFrac(1)
		sumK += clone.CoverageFrac(3)
	}
	mc1 := sum1 / draws
	mcK := sumK / draws
	if math.Abs(mc1-rep.ExpectedCovered) > 0.01 {
		t.Errorf("1-coverage: analytic %v vs MC %v", rep.ExpectedCovered, mc1)
	}
	if math.Abs(mcK-rep.ExpectedKCovered) > 0.02 {
		t.Errorf("k-coverage: analytic %v vs MC %v", rep.ExpectedKCovered, mcK)
	}
}

// End-to-end: pick k from a reliability target, deploy, verify the field
// meets the target — the paper's abstract as an executable statement.
func TestReliabilityDrivenDeployment(t *testing.T) {
	const q, target = 0.25, 0.995
	k, err := KForTarget(q, target)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 { // 0.25^3 = 0.0156 > 0.005; 0.25^4 ≈ 0.0039 <= 0.005
		t.Fatalf("k = %d", k)
	}
	m := deployedMap(k)
	rep := Analyze(m, q)
	if rep.PointReliability.Min < target {
		t.Errorf("deployed field min reliability %v < target %v",
			rep.PointReliability.Min, target)
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if binomialPMF(5, -1, 0.5) != 0 || binomialPMF(5, 6, 0.5) != 0 {
		t.Error("out-of-range j should be 0")
	}
	if binomialPMF(5, 0, 0) != 1 || binomialPMF(5, 3, 0) != 0 {
		t.Error("p=0 edge wrong")
	}
	if binomialPMF(5, 5, 1) != 1 || binomialPMF(5, 3, 1) != 0 {
		t.Error("p=1 edge wrong")
	}
	// Sum over j equals 1.
	sum := 0.0
	for j := 0; j <= 20; j++ {
		sum += binomialPMF(20, j, 0.37)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %v", sum)
	}
}

func TestAnalyzeWeakestPoints(t *testing.T) {
	// A field with one barely-covered point: it must register as weak.
	field := geom.Square(40)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 20, Y: 20}, {X: 21, Y: 20}, {X: 22, Y: 20}}
	m := coverage.New(field, pts, 4, 1)
	m.AddSensor(1, geom.Pt(5, 5)) // point 0: covered once
	for id := 2; id < 8; id++ {   // points 1-3: covered many times
		m.AddSensor(id, geom.Pt(21, 20))
	}
	rep := Analyze(m, 0.4)
	if rep.WeakestPoints < 1 {
		t.Errorf("WeakestPoints = %d, want >= 1", rep.WeakestPoints)
	}
	if rep.PointReliability.Min >= rep.PointReliability.Max {
		t.Error("min/max reliability degenerate")
	}
}

package coverage

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// Heterogeneous-radius tests: the paper's §2 allows sensing radii to
// vary per sensor; the map must track each sensor's own footprint.

func TestAddSensorRadiusCounts(t *testing.T) {
	field := geom.Square(40)
	pts := []geom.Point{{X: 10, Y: 10}, {X: 16, Y: 10}, {X: 30, Y: 10}}
	m := New(field, pts, 4, 1)
	// Default-radius sensor covers only point 0.
	m.AddSensor(1, geom.Pt(10, 10))
	if m.Count(0) != 1 || m.Count(1) != 0 {
		t.Fatalf("default radius counts: %d %d", m.Count(0), m.Count(1))
	}
	// A long-range sensor at the same spot covers points 0 and 1.
	m.AddSensorRadius(2, geom.Pt(10, 10), 7)
	if m.Count(0) != 2 || m.Count(1) != 1 || m.Count(2) != 0 {
		t.Fatalf("hetero counts: %d %d %d", m.Count(0), m.Count(1), m.Count(2))
	}
	// Removing the long-range sensor must undo exactly its footprint.
	m.RemoveSensor(2)
	if m.Count(0) != 1 || m.Count(1) != 0 {
		t.Fatalf("post-removal counts: %d %d", m.Count(0), m.Count(1))
	}
}

func TestSensorRadius(t *testing.T) {
	field := geom.Square(40)
	m := New(field, nil, 4, 1)
	m.AddSensor(1, geom.Pt(5, 5))
	m.AddSensorRadius(2, geom.Pt(9, 5), 6.5)
	if r, ok := m.SensorRadius(1); !ok || r != 4 {
		t.Errorf("default radius = %v %v", r, ok)
	}
	if r, ok := m.SensorRadius(2); !ok || r != 6.5 {
		t.Errorf("custom radius = %v %v", r, ok)
	}
	if _, ok := m.SensorRadius(99); ok {
		t.Error("missing sensor should report no radius")
	}
}

func TestAddSensorRadiusValidation(t *testing.T) {
	m := New(geom.Square(10), nil, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive radius should panic")
		}
	}()
	m.AddSensorRadius(1, geom.Pt(5, 5), 0)
}

func TestHeteroRedundancyUsesOwnRadius(t *testing.T) {
	field := geom.Square(40)
	pts := []geom.Point{{X: 10, Y: 10}, {X: 20, Y: 10}}
	m := New(field, pts, 4, 1)
	// A wide sensor covers both points; a narrow one only point 0.
	m.AddSensorRadius(1, geom.Pt(14, 10), 12)
	m.AddSensor(2, geom.Pt(10, 10))
	// Narrow sensor is redundant (both its points double-covered? point 0
	// has count 2), wide sensor is not (point 1 would drop to 0).
	if m.IsRedundant(1) {
		t.Error("wide sensor wrongly redundant")
	}
	if !m.IsRedundant(2) {
		t.Error("narrow sensor should be redundant")
	}
	red := m.RedundantSensors()
	if len(red) != 1 || red[0] != 2 {
		t.Errorf("RedundantSensors = %v", red)
	}
	// Restoration after RedundantSensors must preserve the custom radius.
	if r, _ := m.SensorRadius(1); r != 12 {
		t.Errorf("radius lost after RedundantSensors: %v", r)
	}
	if m.Count(1) != 1 {
		t.Errorf("counts corrupted after restore: %d", m.Count(1))
	}
}

func TestCloneKeepsRadii(t *testing.T) {
	field := geom.Square(40)
	pts := lowdisc.Halton{}.Points(100, field)
	m := New(field, pts, 4, 1)
	m.AddSensorRadius(7, geom.Pt(20, 20), 9)
	c := m.Clone()
	if r, ok := c.SensorRadius(7); !ok || r != 9 {
		t.Errorf("clone radius = %v %v", r, ok)
	}
	for i := 0; i < m.NumPoints(); i++ {
		if c.Count(i) != m.Count(i) {
			t.Fatalf("clone count mismatch at %d", i)
		}
	}
}

// Property: heterogeneous counts always match brute force under churn
// with mixed radii.
func TestHeteroCountsMatchBruteForce(t *testing.T) {
	r := rng.New(17)
	field := geom.Square(60)
	pts := lowdisc.Halton{}.Points(250, field)
	m := New(field, pts, 3, 2)
	type sensor struct {
		pos geom.Point
		rs  float64
	}
	alive := map[int]sensor{}
	next := 0
	for step := 0; step < 250; step++ {
		if len(alive) == 0 || r.Float64() < 0.6 {
			s := sensor{pos: r.PointInRect(field), rs: 1 + r.Float64()*9}
			m.AddSensorRadius(next, s.pos, s.rs)
			alive[next] = s
			next++
		} else {
			for id := range alive {
				m.RemoveSensor(id)
				delete(alive, id)
				break
			}
		}
	}
	for i := 0; i < m.NumPoints(); i++ {
		want := 0
		for _, s := range alive {
			if s.pos.Dist2(m.Point(i)) <= s.rs*s.rs {
				want++
			}
		}
		if m.Count(i) != want {
			t.Fatalf("point %d: count %d, want %d", i, m.Count(i), want)
		}
	}
}

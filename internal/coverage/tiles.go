// Tiled coverage-count storage for million-point fields (DESIGN.md §13).
//
// The flat coverage.Map keeps one machine int per sample point. At paper
// scale (~10^3 points) that is irrelevant; at 10^6 points it is 8 MB of
// sparsely touched ints that the placement hot loop streams through with
// poor locality, and it ties the whole field to resident memory. The
// TileStore replaces it with cache-dense uint8 count tiles:
//
//   - sample points are bucketed into square tiles sized for a target
//     point count (default 64×64 = 4096 points per tile);
//   - each tile's counts live in one contiguous []uint8 page, allocated
//     lazily (an untouched tile is implicitly all-zero and costs nothing);
//   - counts saturate at 255 in the page, with an exact overflow sidecar
//     map so observable counts never lose precision;
//   - every tile carries a deficiency summary (number of points below
//     the requirement k), so "is this tile fully k-covered?" is O(1) —
//     the skip the tiled placement engines rely on;
//   - pages evict to a pluggable TileBacking under a resident limit, so
//     the count state of a field is no longer bound by resident memory.
//
// A TileStore, like the Map that owns it, is NOT safe for concurrent
// use: reads can fault evicted pages back in. The tile-parallel engines
// in internal/core honor this by touching the store only from their
// sequential sections and carrying private snapshots into parallel ones.
package coverage

import (
	"math"

	"decor/internal/geom"
	"decor/internal/obs"
)

// Cached instrument handles; the fault/evict path never touches the
// registry's name map.
var (
	obsTilesResident = obs.Default().Gauge(obs.CoreTilesResident)
	obsTileEvictions = obs.Default().Counter(obs.CoreTileEvictions)
)

// DefaultTilePoints is the target number of sample points per tile:
// 64×64, one 4 KiB count page — small enough that a placement disk
// touches only a handful of tiles, large enough that per-tile overheads
// (summaries, page headers) stay negligible.
const DefaultTilePoints = 4096

// TileOptions configures a tiled coverage store.
type TileOptions struct {
	// TilePoints is the target number of points per tile (0 =
	// DefaultTilePoints). Tiles are square regions of the field sized so
	// a uniform point set averages this many points each; actual tile
	// populations vary with the point distribution.
	TilePoints int
	// MaxResidentTiles bounds the number of materialized count pages
	// (0 = unlimited). When a fault would exceed it, the least recently
	// used page is evicted to Backing first.
	MaxResidentTiles int
	// Backing stores evicted pages (nil = an in-process MemBacking).
	// The interface is the streaming seam: a disk- or object-store
	// implementation plugs in here without touching the engines.
	Backing TileBacking
}

// TileBacking persists evicted count pages. Implementations must return
// exactly the bytes last stored for a tile. Load reports whether the
// tile has ever been stored; dst is len(tile) and pre-zeroed.
type TileBacking interface {
	Store(tile int, counts []uint8)
	Load(tile int, dst []uint8) bool
}

// MemBacking is the default in-process TileBacking. It exists to make
// eviction real (pages leave the store's working set and round-trip
// through the interface) and as the reference for external backings.
type MemBacking struct {
	pages map[int][]uint8
}

// Store implements TileBacking.
func (b *MemBacking) Store(tile int, counts []uint8) {
	if b.pages == nil {
		b.pages = make(map[int][]uint8)
	}
	pg := b.pages[tile]
	if cap(pg) < len(counts) {
		pg = make([]uint8, len(counts))
	}
	pg = pg[:len(counts)]
	copy(pg, counts)
	b.pages[tile] = pg
}

// Load implements TileBacking.
func (b *MemBacking) Load(tile int, dst []uint8) bool {
	pg, ok := b.pages[tile]
	if ok {
		copy(dst, pg)
	}
	return ok
}

// Page residency states.
const (
	tileZero    uint8 = iota // never materialized: implicitly all-zero
	tileLoaded               // resident page in pages[t]
	tileEvicted              // page serialized to the backing
)

// TileStore is the tiled count state of one field. See the package
// comment in this file for the design; construct via NewTiled.
type TileStore struct {
	bounds     geom.Rect
	side       float64 // tile edge length in field units
	cols, rows int
	k          int

	// Immutable point geometry, shared by clones.
	tileOf []int32 // point -> tile
	local  []int32 // point -> offset within the tile's page
	start  []int32 // CSR offsets: tile t owns order[start[t]:start[t+1]]
	order  []int32 // tile-major point indices, ascending within each tile

	pages [][]uint8 // per-tile count pages; nil unless tileLoaded
	state []uint8
	def   []int32 // per-tile points with count < k
	defT  int     // total deficient points

	// overflow holds count-255 for saturated points, keyed by point
	// index, so counts stay exact past the uint8 range.
	overflow map[int32]int

	maxResident int
	resident    int
	backing     TileBacking
	lastUse     []int64
	clock       int64
}

// newTileStore builds the store for pts over bounds with requirement k.
func newTileStore(bounds geom.Rect, pts []geom.Point, k int, opt TileOptions) *TileStore {
	if k > 255 {
		panic("coverage: tiled storage requires k <= 255")
	}
	target := opt.TilePoints
	if target <= 0 {
		target = DefaultTilePoints
	}
	n := len(pts)
	area := bounds.W() * bounds.H()
	side := math.Sqrt(area * float64(target) / math.Max(float64(n), 1))
	if side <= 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		side = math.Max(bounds.W(), bounds.H())
	}
	if side <= 0 {
		side = 1
	}
	cols := int(math.Ceil(bounds.W()/side)) + 1
	rows := int(math.Ceil(bounds.H()/side)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	s := &TileStore{
		bounds:      bounds,
		side:        side,
		cols:        cols,
		rows:        rows,
		k:           k,
		tileOf:      make([]int32, n),
		local:       make([]int32, n),
		start:       make([]int32, cols*rows+1),
		order:       make([]int32, n),
		pages:       make([][]uint8, cols*rows),
		state:       make([]uint8, cols*rows),
		def:         make([]int32, cols*rows),
		defT:        n,
		overflow:    make(map[int32]int),
		maxResident: opt.MaxResidentTiles,
		backing:     opt.Backing,
		lastUse:     make([]int64, cols*rows),
	}
	if s.backing == nil {
		s.backing = &MemBacking{}
	}
	// Bucket the points tile-major. Filling in ascending point order
	// leaves every tile's list ascending, which the engines rely on for
	// lowest-index tie-breaking.
	counts := make([]int32, cols*rows)
	for i, p := range pts {
		t := s.tileIdx(p)
		s.tileOf[i] = int32(t)
		counts[t]++
	}
	off := int32(0)
	for t, c := range counts {
		s.start[t] = off
		s.def[t] = c
		off += c
	}
	s.start[len(counts)] = off
	copy(counts, s.start[:len(counts)]) // reuse as per-tile write cursor
	for i := range pts {
		t := s.tileOf[i]
		s.local[i] = counts[t] - s.start[t]
		s.order[counts[t]] = int32(i)
		counts[t]++
	}
	return s
}

func (s *TileStore) tileIdx(p geom.Point) int {
	cx := int((p.X - s.bounds.Min.X) / s.side)
	cy := int((p.Y - s.bounds.Min.Y) / s.side)
	if cx < 0 {
		cx = 0
	} else if cx >= s.cols {
		cx = s.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= s.rows {
		cy = s.rows - 1
	}
	return cy*s.cols + cx
}

// NumTiles returns the number of tiles (including empty ones).
func (s *TileStore) NumTiles() int { return s.cols * s.rows }

// TileSide returns the tile edge length in field units.
func (s *TileStore) TileSide() float64 { return s.side }

// TileOf returns the tile containing sample point i.
func (s *TileStore) TileOf(i int) int { return int(s.tileOf[i]) }

// TileMap exposes the point→tile assignment as a shared read-only
// slice, for hot loops that filter scatter updates by tile.
func (s *TileStore) TileMap() []int32 { return s.tileOf }

// TilePoints returns tile t's sample-point indices, ascending. The
// slice aliases shared immutable state: callers must not modify it.
func (s *TileStore) TilePoints(t int) []int32 {
	return s.order[s.start[t]:s.start[t+1]]
}

// DeficientInTile returns the number of tile t's points with count < k
// — the O(1) "is this tile fully covered?" summary.
func (s *TileStore) DeficientInTile(t int) int { return int(s.def[t]) }

// MinCount returns the minimum coverage count over tile t's points
// (0 for an empty tile). Unlike DeficientInTile it scans the page; it
// exists for diagnostics, not the hot path.
func (s *TileStore) MinCount(t int) int {
	n := int(s.start[t+1] - s.start[t])
	if n == 0 {
		return 0
	}
	if s.state[t] == tileZero {
		return 0
	}
	pg := s.page(t)
	min := int(pg[0])
	for _, c := range pg[1:] {
		if int(c) < min {
			min = int(c)
		}
	}
	if min == 255 {
		// Saturated minimum: consult the sidecar for the true value.
		min = math.MaxInt
		for _, i := range s.TilePoints(t) {
			if c := s.Count(int(i)); c < min {
				min = c
			}
		}
	}
	return min
}

// Deficient returns the total number of points with count < k.
func (s *TileStore) Deficient() int { return s.defT }

// Resident returns the number of materialized count pages.
func (s *TileStore) Resident() int { return s.resident }

// MaxResident returns the configured resident-page bound (0 =
// unlimited).
func (s *TileStore) MaxResident() int { return s.maxResident }

func (s *TileStore) stamp(t int) {
	s.clock++
	s.lastUse[t] = s.clock
}

// page returns tile t's count page, faulting it in (and evicting the
// LRU page past the resident limit) as needed.
func (s *TileStore) page(t int) []uint8 {
	if pg := s.pages[t]; pg != nil {
		s.stamp(t)
		return pg
	}
	pg := make([]uint8, s.start[t+1]-s.start[t])
	if s.state[t] == tileEvicted {
		s.backing.Load(t, pg)
	}
	s.pages[t] = pg
	s.state[t] = tileLoaded
	s.resident++
	s.stamp(t)
	if s.maxResident > 0 && s.resident > s.maxResident {
		s.evictLRU(t)
	}
	obsTilesResident.Set(float64(s.resident))
	return pg
}

// evictLRU writes the least recently used resident page (≠ keep) to the
// backing and drops it.
func (s *TileStore) evictLRU(keep int) {
	victim, oldest := -1, int64(math.MaxInt64)
	for t, st := range s.state {
		if st != tileLoaded || t == keep {
			continue
		}
		if s.lastUse[t] < oldest {
			victim, oldest = t, s.lastUse[t]
		}
	}
	if victim < 0 {
		return // only the kept page is resident; nothing to evict
	}
	s.backing.Store(victim, s.pages[victim])
	s.pages[victim] = nil
	s.state[victim] = tileEvicted
	s.resident--
	obsTileEvictions.Add(1)
}

// Count returns the exact coverage count of point i. Reading a
// never-touched tile is free (no page materializes).
func (s *TileStore) Count(i int) int {
	t := int(s.tileOf[i])
	pg := s.pages[t]
	if pg == nil {
		if s.state[t] == tileZero {
			return 0
		}
		pg = s.page(t)
	}
	c := int(pg[s.local[i]])
	if c == 255 {
		c += s.overflow[int32(i)]
	}
	return c
}

// Inc increments point i's count, maintaining the tile deficiency
// summaries, and returns the new count.
func (s *TileStore) Inc(i int) int {
	t := int(s.tileOf[i])
	pg := s.page(t)
	l := s.local[i]
	var c int
	if pg[l] == 255 {
		s.overflow[int32(i)]++
		c = 255 + s.overflow[int32(i)]
	} else {
		pg[l]++
		c = int(pg[l])
	}
	if c == s.k {
		s.def[t]--
		s.defT--
	}
	return c
}

// Dec decrements point i's count and returns the new count. It panics
// on an already-zero count (a logic error: sensor bookkeeping and
// counts would have diverged).
func (s *TileStore) Dec(i int) int {
	t := int(s.tileOf[i])
	pg := s.page(t)
	l := s.local[i]
	if ov := s.overflow[int32(i)]; ov > 0 {
		if ov == 1 {
			delete(s.overflow, int32(i))
		} else {
			s.overflow[int32(i)] = ov - 1
		}
		return 255 + ov - 1 // ≥ 255 ≥ k: no deficiency transition
	}
	if pg[l] == 0 {
		panic("coverage: tile count underflow")
	}
	pg[l]--
	c := int(pg[l])
	if c == s.k-1 {
		s.def[t]++
		s.defT++
	}
	return c
}

// ForEachCount calls fn(i, count) for every sample point in tile-major
// order. Each page is faulted at most once per call, so a full scan
// under a resident limit never thrashes the backing. Iteration order is
// NOT ascending point index across tiles (it is within each tile);
// order-sensitive callers must sort what they collect.
func (s *TileStore) ForEachCount(fn func(i, c int)) {
	for t := 0; t < len(s.def); t++ {
		pts := s.TilePoints(t)
		if len(pts) == 0 {
			continue
		}
		if s.state[t] == tileZero {
			for _, i := range pts {
				fn(int(i), 0)
			}
			continue
		}
		pg := s.page(t)
		for l, i := range pts {
			c := int(pg[l])
			if c == 255 {
				c += s.overflow[i]
			}
			fn(int(i), c)
		}
	}
}

// CountsInto writes every point's exact count into dst (indexed by
// point), scanning tile-major so each page faults at most once.
func (s *TileStore) CountsInto(dst []int) {
	s.ForEachCount(func(i, c int) { dst[i] = c })
}

// SetK retunes the deficiency summaries for a new requirement. Evicted
// pages are inspected through a scratch buffer without disturbing
// residency.
func (s *TileStore) SetK(k int) {
	if k > 255 {
		panic("coverage: tiled storage requires k <= 255")
	}
	s.k = k
	s.defT = 0
	var scratch []uint8
	for t := range s.def {
		n := int(s.start[t+1] - s.start[t])
		if n == 0 {
			s.def[t] = 0
			continue
		}
		var pg []uint8
		switch s.state[t] {
		case tileZero:
			// All counts zero: every point is deficient for k >= 1.
			s.def[t] = int32(n)
			s.defT += n
			continue
		case tileLoaded:
			pg = s.pages[t]
		case tileEvicted:
			if cap(scratch) < n {
				scratch = make([]uint8, n)
			}
			pg = scratch[:n]
			for j := range pg {
				pg[j] = 0
			}
			s.backing.Load(t, pg)
		}
		d := int32(0)
		for _, c := range pg {
			if int(c) < k { // saturated counts (255) are never < k <= 255
				d++
			}
		}
		s.def[t] = d
		s.defT += int(d)
	}
}

// VisitTilesInRect calls fn(t) for every tile whose square overlaps the
// closed rectangle r — a superset of the tiles containing points in any
// region inside r, which is what scatter-invalidation needs (visiting
// an extra tile is harmless; missing one is not).
func (s *TileStore) VisitTilesInRect(r geom.Rect, fn func(t int)) {
	x0 := int((r.Min.X - s.bounds.Min.X) / s.side)
	x1 := int((r.Max.X - s.bounds.Min.X) / s.side)
	y0 := int((r.Min.Y - s.bounds.Min.Y) / s.side)
	y1 := int((r.Max.Y - s.bounds.Min.Y) / s.side)
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= s.cols {
		x1 = s.cols - 1
	}
	if y1 >= s.rows {
		y1 = s.rows - 1
	}
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			fn(cy*s.cols + cx)
		}
	}
}

// VisitTilesInDisk calls fn(t) for every tile whose square overlaps the
// bounding box of the disk — the tiles a sensing disk centered at c
// with radius r can touch.
func (s *TileStore) VisitTilesInDisk(c geom.Point, r float64, fn func(t int)) {
	s.VisitTilesInRect(geom.Rect{
		Min: geom.Point{X: c.X - r, Y: c.Y - r},
		Max: geom.Point{X: c.X + r, Y: c.Y + r},
	}, fn)
}

// Clone returns an independent copy. Immutable geometry (tile
// assignment, CSR order) is shared; pages, summaries and the overflow
// sidecar are copied. The clone gets a fresh MemBacking — evicted pages
// are pulled through the original's backing during the copy — and
// inherits the resident limit.
func (s *TileStore) Clone() *TileStore {
	c := &TileStore{
		bounds:      s.bounds,
		side:        s.side,
		cols:        s.cols,
		rows:        s.rows,
		k:           s.k,
		tileOf:      s.tileOf,
		local:       s.local,
		start:       s.start,
		order:       s.order,
		pages:       make([][]uint8, len(s.pages)),
		state:       make([]uint8, len(s.state)),
		def:         append([]int32(nil), s.def...),
		defT:        s.defT,
		overflow:    make(map[int32]int, len(s.overflow)),
		maxResident: s.maxResident,
		backing:     &MemBacking{},
		lastUse:     make([]int64, len(s.lastUse)),
	}
	for i, ov := range s.overflow {
		c.overflow[i] = ov
	}
	for t, st := range s.state {
		switch st {
		case tileZero:
			// stays zero
		case tileLoaded:
			c.pages[t] = append([]uint8(nil), s.pages[t]...)
			c.state[t] = tileLoaded
			c.resident++
		case tileEvicted:
			n := int(s.start[t+1] - s.start[t])
			pg := make([]uint8, n)
			s.backing.Load(t, pg)
			c.backing.Store(t, pg)
			c.state[t] = tileEvicted
		}
	}
	// Re-enforce the resident bound (the copy order above ignores it).
	for c.maxResident > 0 && c.resident > c.maxResident {
		c.evictLRU(-1)
	}
	return c
}

package coverage

import (
	"reflect"
	"testing"

	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// tiledPair builds the same field in flat and tiled mode. TilePoints is
// kept tiny so even a 400-point field spans many tiles and sensing
// disks routinely cross tile boundaries.
func tiledPair(t *testing.T, n, k int, opt TileOptions) (*Map, *Map) {
	t.Helper()
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(n, field)
	return New(field, pts, 4, k), NewTiled(field, pts, 4, k, opt)
}

// assertSameState compares every observable count-derived quantity of
// the two storage modes.
func assertSameState(t *testing.T, flat, tiled *Map) {
	t.Helper()
	if got, want := tiled.NumDeficient(), flat.NumDeficient(); got != want {
		t.Fatalf("NumDeficient: tiled %d, flat %d", got, want)
	}
	if got, want := tiled.Counts(), flat.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Counts diverge: tiled %v, flat %v", got, want)
	}
	if got, want := tiled.CoverageFrac(flat.K()), flat.CoverageFrac(flat.K()); got != want {
		t.Fatalf("CoverageFrac: tiled %v, flat %v", got, want)
	}
	if got, want := tiled.UncoveredPoints(), flat.UncoveredPoints(); !reflect.DeepEqual(got, want) {
		t.Fatalf("UncoveredPoints: tiled %v, flat %v", got, want)
	}
	if got, want := tiled.CoverageHistogram(), flat.CoverageHistogram(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CoverageHistogram: tiled %v, flat %v", got, want)
	}
}

// TestTiledParityRandomOps drives both storage modes through an
// identical randomized add/remove/SetK sequence and checks every
// observable after each step.
func TestTiledParityRandomOps(t *testing.T) {
	for _, opt := range []TileOptions{
		{TilePoints: 16},
		{TilePoints: 16, MaxResidentTiles: 2},
		{TilePoints: 64, MaxResidentTiles: 1},
	} {
		flat, tiled := tiledPair(t, 400, 2, opt)
		r := rng.New(7)
		live := []int{}
		next := 0
		for step := 0; step < 200; step++ {
			switch {
			case len(live) > 0 && r.Bool(0.3):
				i := r.Intn(len(live))
				id := live[i]
				live = append(live[:i], live[i+1:]...)
				if !flat.RemoveSensor(id) || !tiled.RemoveSensor(id) {
					t.Fatalf("remove %d failed", id)
				}
			case r.Bool(0.1):
				k := 1 + r.Intn(4)
				flat.SetK(k)
				tiled.SetK(k)
			default:
				p := r.PointInRect(flat.Field())
				rs := 2 + 4*r.Float64()
				flat.AddSensorRadius(next, p, rs)
				tiled.AddSensorRadius(next, p, rs)
				live = append(live, next)
				next++
			}
			if step%17 == 0 {
				assertSameState(t, flat, tiled)
			}
		}
		assertSameState(t, flat, tiled)
		if got, want := tiled.RedundantSensors(), flat.RedundantSensors(); !reflect.DeepEqual(got, want) {
			t.Fatalf("RedundantSensors: tiled %v, flat %v", got, want)
		}
		assertSameState(t, flat, tiled) // RedundantSensors must restore state
		if max := opt.MaxResidentTiles; max > 0 && tiled.Tiles().Resident() > max {
			t.Fatalf("resident tiles %d exceed limit %d", tiled.Tiles().Resident(), max)
		}
	}
}

// TestTiledOverflowExact stacks enough sensors on one spot to push
// counts past the uint8 saturation point and checks counts stay exact
// through the overflow sidecar, including back down through removal.
func TestTiledOverflowExact(t *testing.T) {
	field := geom.Square(10)
	pts := lowdisc.Halton{}.Points(50, field)
	flat := New(field, pts, 4, 1)
	tiled := NewTiled(field, pts, 4, 1, TileOptions{TilePoints: 8})
	center := geom.Point{X: 5, Y: 5}
	for id := 0; id < 300; id++ {
		flat.AddSensor(id, center)
		tiled.AddSensor(id, center)
	}
	assertSameState(t, flat, tiled)
	for id := 0; id < 300; id += 2 {
		flat.RemoveSensor(id)
		tiled.RemoveSensor(id)
	}
	assertSameState(t, flat, tiled)
	for id := 0; id < 300; id++ {
		flat.RemoveSensor(id)
		tiled.RemoveSensor(id)
	}
	assertSameState(t, flat, tiled)
	if tiled.NumDeficient() != tiled.NumPoints() {
		t.Fatalf("expected all points deficient after removing everything")
	}
}

// TestTiledEvictionRoundTrip forces page eviction with a 1-page budget
// and verifies counts survive the backing round-trip.
func TestTiledEvictionRoundTrip(t *testing.T) {
	flat, tiled := tiledPair(t, 300, 1, TileOptions{TilePoints: 8, MaxResidentTiles: 1})
	r := rng.New(3)
	for id := 0; id < 40; id++ {
		p := r.PointInRect(flat.Field())
		flat.AddSensor(id, p)
		tiled.AddSensor(id, p)
	}
	ts := tiled.Tiles()
	if ts.Resident() > 1 {
		t.Fatalf("resident %d with MaxResidentTiles=1", ts.Resident())
	}
	// Per-point reads in index order deliberately hop between tiles,
	// exercising fault/evict on nearly every access.
	for i := 0; i < tiled.NumPoints(); i++ {
		if got, want := tiled.Count(i), flat.Count(i); got != want {
			t.Fatalf("point %d: tiled count %d, flat %d", i, got, want)
		}
	}
	assertSameState(t, flat, tiled)
}

// TestTiledCloneIndependent checks Clone copies tiled state deeply
// enough that the original and the clone evolve independently, even
// when some source pages are evicted at clone time.
func TestTiledCloneIndependent(t *testing.T) {
	flat, tiled := tiledPair(t, 300, 2, TileOptions{TilePoints: 8, MaxResidentTiles: 2})
	r := rng.New(11)
	for id := 0; id < 30; id++ {
		p := r.PointInRect(flat.Field())
		flat.AddSensor(id, p)
		tiled.AddSensor(id, p)
	}
	flatC, tiledC := flat.Clone(), tiled.Clone()
	assertSameState(t, flatC, tiledC)
	// Diverge the clones; originals must not move.
	p := geom.Point{X: 25, Y: 25}
	flatC.AddSensor(1000, p)
	tiledC.AddSensor(1000, p)
	assertSameState(t, flatC, tiledC)
	assertSameState(t, flat, tiled)
	// And the other direction.
	flat.RemoveSensor(0)
	tiled.RemoveSensor(0)
	assertSameState(t, flat, tiled)
	assertSameState(t, flatC, tiledC)
}

// TestTiledZeroTilesStayCold verifies reading counts of an untouched
// region materializes no pages.
func TestTiledZeroTilesStayCold(t *testing.T) {
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(1000, field)
	tiled := NewTiled(field, pts, 4, 1, TileOptions{TilePoints: 16})
	for i := 0; i < tiled.NumPoints(); i++ {
		if tiled.Count(i) != 0 {
			t.Fatalf("fresh map has nonzero count at %d", i)
		}
	}
	if got := tiled.Tiles().Resident(); got != 0 {
		t.Fatalf("reading a fresh map materialized %d pages", got)
	}
	// One sensor touches only the tiles its disk overlaps.
	tiled.AddSensor(0, geom.Point{X: 50, Y: 50})
	if got, all := tiled.Tiles().Resident(), tiled.Tiles().NumTiles(); got == 0 || got >= all {
		t.Fatalf("one sensor materialized %d of %d pages", got, all)
	}
}

// TestTiledKValidation: tiled storage requires k <= 255 at construction
// and through SetK.
func TestTiledKValidation(t *testing.T) {
	field := geom.Square(10)
	pts := lowdisc.Halton{}.Points(20, field)
	for _, bad := range []func(){
		func() { NewTiled(field, pts, 4, 256, TileOptions{}) },
		func() { NewTiled(field, pts, 4, 1, TileOptions{}).SetK(300) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for k > 255 in tiled mode")
				}
			}()
			bad()
		}()
	}
}

// TestTileGeometry sanity-checks the CSR point bucketing: every point
// in exactly one tile, ascending within the tile, consistent with
// TileOf, and VisitTilesInDisk covers the tiles of all points in range.
func TestTileGeometry(t *testing.T) {
	field := geom.Square(40)
	pts := lowdisc.Halton{}.Points(500, field)
	m := NewTiled(field, pts, 4, 1, TileOptions{TilePoints: 32})
	ts := m.Tiles()
	seen := make([]bool, m.NumPoints())
	for tl := 0; tl < ts.NumTiles(); tl++ {
		prev := int32(-1)
		for _, i := range ts.TilePoints(tl) {
			if i <= prev {
				t.Fatalf("tile %d point list not ascending: %d after %d", tl, i, prev)
			}
			prev = i
			if seen[i] {
				t.Fatalf("point %d in two tiles", i)
			}
			seen[i] = true
			if ts.TileOf(int(i)) != tl {
				t.Fatalf("TileOf(%d)=%d, listed in %d", i, ts.TileOf(int(i)), tl)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("point %d in no tile", i)
		}
	}
	// Disk enumeration covers the tile of every in-range point.
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		c := r.PointInRect(field)
		rad := 1 + 9*r.Float64()
		hit := map[int]bool{}
		ts.VisitTilesInDisk(c, rad, func(tl int) { hit[tl] = true })
		m.VisitPointsInBall(c, rad, func(i int, _ geom.Point) bool {
			if !hit[ts.TileOf(i)] {
				t.Fatalf("VisitTilesInDisk missed tile %d of in-range point %d", ts.TileOf(i), i)
			}
			return true
		})
	}
}

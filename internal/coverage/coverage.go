// Package coverage maintains the discrete k-coverage state at the core of
// DECOR: a field approximated by a low-discrepancy sample-point set, a set
// of sensors with sensing radius rs, and per-point coverage counts k_p.
//
// It supports incremental sensor addition/removal (O(points within rs)),
// the paper's benefit function (Eq. 1), coverage-fraction metrics, and the
// end-of-run redundant-node identification from §4.
package coverage

import (
	"fmt"
	"sort"

	"decor/internal/geom"
	"decor/internal/index"
)

// Map is the coverage state of one field. It is not safe for concurrent
// mutation.
type Map struct {
	field geom.Rect
	rs    float64
	k     int

	pts       []geom.Point
	ptIdx     *index.Grid
	counts    []int
	deficient int // number of points with counts[i] < k

	sensors   map[int]geom.Point
	sensorIdx *index.Grid
	// sensorRs holds per-sensor sensing radii for heterogeneous
	// deployments (paper §2: radii "may vary, depending on the type of
	// the sensors and on the deployment conditions"). Sensors absent
	// from the map use the default rs.
	sensorRs map[int]float64
	maxRs    float64 // largest radius ever added; bounds ball queries
}

// New creates a coverage map over field, approximated by pts, with sensing
// radius rs and reliability requirement k. It panics on invalid rs or k —
// these are programmer errors, not runtime conditions.
func New(field geom.Rect, pts []geom.Point, rs float64, k int) *Map {
	if rs <= 0 {
		panic("coverage: rs must be positive")
	}
	if k < 1 {
		panic("coverage: k must be >= 1")
	}
	m := &Map{
		field:     field,
		rs:        rs,
		k:         k,
		pts:       append([]geom.Point(nil), pts...),
		ptIdx:     index.NewGrid(field, rs),
		counts:    make([]int, len(pts)),
		deficient: len(pts),
		sensors:   make(map[int]geom.Point),
		sensorIdx: index.NewGrid(field, rs),
		sensorRs:  make(map[int]float64),
		maxRs:     rs,
	}
	for i, p := range m.pts {
		m.ptIdx.Insert(i, p)
	}
	return m
}

// Field returns the monitored rectangle.
func (m *Map) Field() geom.Rect { return m.field }

// Rs returns the sensing radius.
func (m *Map) Rs() float64 { return m.rs }

// K returns the reliability requirement.
func (m *Map) K() int { return m.k }

// SetK retunes the reliability requirement in place — the paper's §3
// "the value of the parameter k can be tuned dynamically to achieve the
// desired level of coverage required by the user". Raising k exposes
// new deficits (restorable by any Method); lowering it turns surplus
// sensors redundant (harvestable by RedundantSensors or a sleep
// schedule). It panics for k < 1.
func (m *Map) SetK(k int) {
	if k < 1 {
		panic("coverage: k must be >= 1")
	}
	if k == m.k {
		return
	}
	m.k = k
	m.deficient = 0
	for _, c := range m.counts {
		if c < k {
			m.deficient++
		}
	}
}

// NumPoints returns the number of sample points.
func (m *Map) NumPoints() int { return len(m.pts) }

// Point returns sample point i.
func (m *Map) Point(i int) geom.Point { return m.pts[i] }

// Count returns the current coverage count k_p of sample point i.
func (m *Map) Count(i int) int { return m.counts[i] }

// Counts returns a copy of all coverage counts (a snapshot, used by the
// round-based distributed simulation).
func (m *Map) Counts() []int { return append([]int(nil), m.counts...) }

// Deficit returns max(k - k_p, 0) for sample point i.
func (m *Map) Deficit(i int) int {
	if d := m.k - m.counts[i]; d > 0 {
		return d
	}
	return 0
}

// NumDeficient returns the number of sample points with k_p < k.
func (m *Map) NumDeficient() int { return m.deficient }

// FullyCovered reports whether every sample point is k-covered.
func (m *Map) FullyCovered() bool { return m.deficient == 0 }

// NumSensors returns the number of deployed sensors.
func (m *Map) NumSensors() int { return len(m.sensors) }

// SensorIDs returns all sensor IDs in ascending order.
func (m *Map) SensorIDs() []int {
	out := make([]int, 0, len(m.sensors))
	for id := range m.sensors {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// SensorPos returns the position of a sensor and whether it exists.
func (m *Map) SensorPos(id int) (geom.Point, bool) {
	p, ok := m.sensors[id]
	return p, ok
}

// AddSensor deploys a sensor with the given id at p with the map's
// default sensing radius, incrementing the coverage counts of all sample
// points within it. It panics on duplicate id.
func (m *Map) AddSensor(id int, p geom.Point) {
	m.AddSensorRadius(id, p, m.rs)
}

// AddSensorRadius deploys a sensor with its own sensing radius — the
// paper's heterogeneous setting (§2), where radii vary with sensor type
// and deployment conditions. It panics on duplicate id or non-positive
// radius.
func (m *Map) AddSensorRadius(id int, p geom.Point, rs float64) {
	if _, ok := m.sensors[id]; ok {
		panic(fmt.Sprintf("coverage: duplicate sensor id %d", id))
	}
	if rs <= 0 {
		panic("coverage: sensor radius must be positive")
	}
	m.sensors[id] = p
	m.sensorIdx.Insert(id, p)
	if rs != m.rs {
		m.sensorRs[id] = rs
	}
	if rs > m.maxRs {
		m.maxRs = rs
	}
	m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
		m.counts[i]++
		if m.counts[i] == m.k {
			m.deficient--
		}
		return true
	})
}

// MaxSensorRadius returns the largest sensing radius ever deployed on
// this map (at least the default rs). Spatial queries that must not miss
// any sensor's footprint use it as their search radius.
func (m *Map) MaxSensorRadius() float64 { return m.maxRs }

// SensorRadius returns the sensing radius of sensor id (the map default
// if the sensor was added homogeneously) and whether the sensor exists.
func (m *Map) SensorRadius(id int) (float64, bool) {
	if _, ok := m.sensors[id]; !ok {
		return 0, false
	}
	if r, ok := m.sensorRs[id]; ok {
		return r, true
	}
	return m.rs, true
}

// RemoveSensor removes the sensor, decrementing coverage counts, and
// reports whether it existed.
func (m *Map) RemoveSensor(id int) bool {
	p, ok := m.sensors[id]
	if !ok {
		return false
	}
	rs, _ := m.SensorRadius(id)
	delete(m.sensors, id)
	delete(m.sensorRs, id)
	m.sensorIdx.Remove(id)
	m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
		if m.counts[i] == m.k {
			m.deficient++
		}
		m.counts[i]--
		return true
	})
	return true
}

// CoverageFrac returns the fraction of sample points covered by at least
// level sensors. CoverageFrac(k) is the paper's "percentage of k-covered
// points" metric; CoverageFrac(1) its "covered" metric under failures.
func (m *Map) CoverageFrac(level int) float64 {
	if len(m.pts) == 0 {
		return 1
	}
	n := 0
	for _, c := range m.counts {
		if c >= level {
			n++
		}
	}
	return float64(n) / float64(len(m.pts))
}

// VisitPointsInBall calls fn(i, p) for each sample point within r of c.
func (m *Map) VisitPointsInBall(c geom.Point, r float64, fn func(i int, p geom.Point) bool) {
	m.ptIdx.VisitBall(c, r, fn)
}

// PointsInBall returns the indices of sample points within r of c, sorted
// ascending for determinism.
func (m *Map) PointsInBall(c geom.Point, r float64) []int {
	out := m.ptIdx.Ball(c, r)
	sort.Ints(out)
	return out
}

// SensorsInBall returns the IDs of sensors within r of c, sorted.
func (m *Map) SensorsInBall(c geom.Point, r float64) []int {
	out := m.sensorIdx.Ball(c, r)
	sort.Ints(out)
	return out
}

// Benefit computes the paper's Eq. 1 for a candidate sensor position c
// against the map's current counts:
//
//	b(c) = Σ_{p: d(p,c) <= rs} max(k − k_p, 0)
func (m *Map) Benefit(c geom.Point) int {
	return m.BenefitRadius(c, m.rs)
}

// BenefitRadius computes Eq. 1 for a candidate sensor whose sensing
// radius differs from the map default (heterogeneous deployments, §2).
func (m *Map) BenefitRadius(c geom.Point, rs float64) int {
	b := 0
	m.ptIdx.VisitBall(c, rs, func(i int, _ geom.Point) bool {
		if d := m.k - m.counts[i]; d > 0 {
			b += d
		}
		return true
	})
	return b
}

// BenefitWith computes Eq. 1 using an arbitrary perceived-count function,
// letting distributed nodes evaluate benefit against their own (possibly
// stale or partial) knowledge. Points for which perceived returns a
// negative value are treated as unknown and skipped.
func (m *Map) BenefitWith(c geom.Point, perceived func(i int) int) int {
	return m.BenefitWithRadius(c, m.rs, perceived)
}

// BenefitWithRadius is BenefitWith for a candidate sensor with its own
// sensing radius (heterogeneous distributed deployments).
func (m *Map) BenefitWithRadius(c geom.Point, rs float64, perceived func(i int) int) int {
	b := 0
	m.ptIdx.VisitBall(c, rs, func(i int, _ geom.Point) bool {
		kp := perceived(i)
		if kp < 0 {
			return true
		}
		if d := m.k - kp; d > 0 {
			b += d
		}
		return true
	})
	return b
}

// UncoveredPoints returns the indices of all sample points with k_p < k,
// sorted ascending.
func (m *Map) UncoveredPoints() []int {
	var out []int
	for i, c := range m.counts {
		if c < m.k {
			out = append(out, i)
		}
	}
	return out
}

// IsRedundant reports whether removing sensor id would keep every sample
// point it covers at k_p >= k (i.e. all its covered points have counts
// strictly above k, or are already below k and thus not "achieved" by it).
//
// The paper defines a redundant node as one that "does not contribute to
// the coverage of the area": eliminating it still achieves k-coverage of
// every point it covers to at least the level the point had.
func (m *Map) IsRedundant(id int) bool {
	p, ok := m.sensors[id]
	if !ok {
		return false
	}
	rs, _ := m.SensorRadius(id)
	redundant := true
	m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
		// Removing the sensor lowers this point's count by one. The node
		// "contributes" if that would take a currently >=k point below k,
		// or reduce an under-covered point further.
		if m.counts[i] <= m.k {
			redundant = false
			return false
		}
		return true
	})
	return redundant
}

// RedundantSensors greedily identifies a maximal removable set: sensors
// whose sequential elimination (ascending ID) never drops any sample point
// below its requirement. The map is restored before returning; only the
// identified IDs are reported.
func (m *Map) RedundantSensors() []int {
	var removed []int
	ids := m.SensorIDs()
	type saved struct {
		pos geom.Point
		rs  float64
	}
	state := make(map[int]saved, len(ids))
	for {
		progress := false
		for _, id := range ids {
			if _, gone := state[id]; gone {
				continue
			}
			if m.IsRedundant(id) {
				rs, _ := m.SensorRadius(id)
				state[id] = saved{pos: m.sensors[id], rs: rs}
				m.RemoveSensor(id)
				removed = append(removed, id)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Restore.
	for _, id := range removed {
		m.AddSensorRadius(id, state[id].pos, state[id].rs)
	}
	sort.Ints(removed)
	return removed
}

// Clone returns a deep copy of the coverage map, including sensors and
// their individual radii.
func (m *Map) Clone() *Map {
	c := New(m.field, m.pts, m.rs, m.k)
	for id, p := range m.sensors {
		rs, _ := m.SensorRadius(id)
		c.AddSensorRadius(id, p, rs)
	}
	return c
}

// CoverageHistogram returns counts[j] = number of sample points covered by
// exactly j sensors, for j in [0, max].
func (m *Map) CoverageHistogram() []int {
	maxC := 0
	for _, c := range m.counts {
		if c > maxC {
			maxC = c
		}
	}
	hist := make([]int, maxC+1)
	for _, c := range m.counts {
		hist[c]++
	}
	return hist
}

// Package coverage maintains the discrete k-coverage state at the core of
// DECOR: a field approximated by a low-discrepancy sample-point set, a set
// of sensors with sensing radius rs, and per-point coverage counts k_p.
//
// It supports incremental sensor addition/removal (O(points within rs)),
// the paper's benefit function (Eq. 1), coverage-fraction metrics, and the
// end-of-run redundant-node identification from §4.
package coverage

import (
	"fmt"
	"sort"

	"decor/internal/geom"
	"decor/internal/index"
)

// Map is the coverage state of one field. It is not safe for concurrent
// mutation.
type Map struct {
	field geom.Rect
	rs    float64
	k     int

	pts       []geom.Point
	ptIdx     *index.Grid
	counts    []int
	deficient int // number of points with counts[i] < k

	// tiles, when non-nil, replaces counts/deficient with the tiled
	// uint8 store (DESIGN.md §13) for million-point fields: maps built
	// with NewTiled keep counts nil and route every count access
	// through it. Exactly one of counts/tiles is active.
	tiles *TileStore

	sensors   map[int]geom.Point
	sensorIdx *index.Grid
	// sortedIDs mirrors the key set of sensors in ascending order, kept
	// in step on every add/remove so SensorIDs never sorts. Failure
	// models draw from it thousands of times per experiment cell.
	sortedIDs []int
	// sensorRs holds per-sensor sensing radii for heterogeneous
	// deployments (paper §2: radii "may vary, depending on the type of
	// the sensors and on the deployment conditions"). Sensors absent
	// from the map use the default rs.
	sensorRs map[int]float64
	maxRs    float64 // largest radius ever added; bounds ball queries

	// nbCache memoizes PointNeighborhoods per radius: the adjacency
	// depends only on the immutable sample-point set, so a restoration
	// pass on the same map reuses the deployment's build. nbShared,
	// when set via ShareNeighborhoods, replaces it with a cache shared
	// between maps with identical point sets.
	nbCache  map[float64]*index.Neighborhoods
	nbShared *index.NeighborhoodCache
}

// New creates a coverage map over field, approximated by pts, with sensing
// radius rs and reliability requirement k. It panics on invalid rs or k —
// these are programmer errors, not runtime conditions.
func New(field geom.Rect, pts []geom.Point, rs float64, k int) *Map {
	if rs <= 0 {
		panic("coverage: rs must be positive")
	}
	if k < 1 {
		panic("coverage: k must be >= 1")
	}
	m := &Map{
		field:     field,
		rs:        rs,
		k:         k,
		pts:       append([]geom.Point(nil), pts...),
		ptIdx:     index.NewGrid(field, rs),
		counts:    make([]int, len(pts)),
		deficient: len(pts),
		sensors:   make(map[int]geom.Point),
		sensorIdx: index.NewGrid(field, rs),
		sensorRs:  make(map[int]float64),
		maxRs:     rs,
	}
	m.ptIdx.InsertDense(m.pts)
	return m
}

// NewTiled creates a coverage map whose counts live in the tiled uint8
// store instead of a flat []int: cache-dense pages sized for ~opt.
// TilePoints samples each, per-tile deficiency summaries for O(1)
// fully-covered-tile skips, and optional eviction to a TileBacking under
// opt.MaxResidentTiles. Observable behavior is identical to New — the
// tiled parity suite holds the two modes byte-identical — but k must fit
// the requirement in a uint8 page (k <= 255; counts themselves are exact
// past 255 via an overflow sidecar). It panics on invalid rs or k.
func NewTiled(field geom.Rect, pts []geom.Point, rs float64, k int, opt TileOptions) *Map {
	if rs <= 0 {
		panic("coverage: rs must be positive")
	}
	if k < 1 {
		panic("coverage: k must be >= 1")
	}
	m := &Map{
		field:     field,
		rs:        rs,
		k:         k,
		pts:       append([]geom.Point(nil), pts...),
		ptIdx:     index.NewGrid(field, rs),
		sensors:   make(map[int]geom.Point),
		sensorIdx: index.NewGrid(field, rs),
		sensorRs:  make(map[int]float64),
		maxRs:     rs,
	}
	m.tiles = newTileStore(field, m.pts, k, opt)
	m.ptIdx.InsertDense(m.pts)
	return m
}

// Tiles returns the tiled count store, or nil for a flat map. Engines
// use it to branch onto the tile-parallel paths and to reach the
// per-tile deficiency summaries.
func (m *Map) Tiles() *TileStore { return m.tiles }

// cnt returns point i's coverage count in either storage mode.
func (m *Map) cnt(i int) int {
	if m.tiles != nil {
		return m.tiles.Count(i)
	}
	return m.counts[i]
}

// Field returns the monitored rectangle.
func (m *Map) Field() geom.Rect { return m.field }

// Rs returns the sensing radius.
func (m *Map) Rs() float64 { return m.rs }

// K returns the reliability requirement.
func (m *Map) K() int { return m.k }

// SetK retunes the reliability requirement in place — the paper's §3
// "the value of the parameter k can be tuned dynamically to achieve the
// desired level of coverage required by the user". Raising k exposes
// new deficits (restorable by any Method); lowering it turns surplus
// sensors redundant (harvestable by RedundantSensors or a sleep
// schedule). It panics for k < 1.
func (m *Map) SetK(k int) {
	if k < 1 {
		panic("coverage: k must be >= 1")
	}
	if k == m.k {
		return
	}
	m.k = k
	if m.tiles != nil {
		m.tiles.SetK(k)
		return
	}
	m.deficient = 0
	for _, c := range m.counts {
		if c < k {
			m.deficient++
		}
	}
}

// NumPoints returns the number of sample points.
func (m *Map) NumPoints() int { return len(m.pts) }

// Point returns sample point i.
func (m *Map) Point(i int) geom.Point { return m.pts[i] }

// Count returns the current coverage count k_p of sample point i.
func (m *Map) Count(i int) int { return m.cnt(i) }

// Counts returns a copy of all coverage counts (a snapshot, used by the
// round-based distributed simulation).
func (m *Map) Counts() []int {
	if m.tiles != nil {
		out := make([]int, len(m.pts))
		m.tiles.CountsInto(out)
		return out
	}
	return append([]int(nil), m.counts...)
}

// CountsInto copies all coverage counts into dst, growing it only when
// too small, and returns the snapshot. Round loops that need a fresh
// snapshot every iteration pass the previous round's slice back in and
// stop allocating after the first round.
func (m *Map) CountsInto(dst []int) []int {
	if cap(dst) < len(m.pts) {
		dst = make([]int, len(m.pts))
	}
	dst = dst[:len(m.pts)]
	if m.tiles != nil {
		m.tiles.CountsInto(dst)
		return dst
	}
	copy(dst, m.counts)
	return dst
}

// Deficit returns max(k - k_p, 0) for sample point i.
func (m *Map) Deficit(i int) int {
	if d := m.k - m.cnt(i); d > 0 {
		return d
	}
	return 0
}

// NumDeficient returns the number of sample points with k_p < k.
func (m *Map) NumDeficient() int {
	if m.tiles != nil {
		return m.tiles.Deficient()
	}
	return m.deficient
}

// FullyCovered reports whether every sample point is k-covered.
func (m *Map) FullyCovered() bool { return m.NumDeficient() == 0 }

// NumSensors returns the number of deployed sensors.
func (m *Map) NumSensors() int { return len(m.sensors) }

// SensorIDs returns all sensor IDs in ascending order.
func (m *Map) SensorIDs() []int {
	return append([]int(nil), m.sortedIDs...)
}

// VisitSensors calls fn for every deployed sensor in ascending ID order
// with its position and effective sensing radius — the allocation-free
// sibling of SensorIDs for hot rebuild loops and snapshot encoders.
// Every query on the map is sensor-order independent (or sorts), so
// replaying the visited (id, pos, rs) triples into a fresh map via
// AddSensorRadius reconstructs an observably identical coverage state.
func (m *Map) VisitSensors(fn func(id int, pos geom.Point, rs float64)) {
	for _, id := range m.sortedIDs {
		rs, ok := m.sensorRs[id]
		if !ok {
			rs = m.rs
		}
		fn(id, m.sensors[id], rs)
	}
}

// insertSortedID keeps sortedIDs ascending. Placement engines allocate
// IDs in increasing order, so the append path is the common case.
func (m *Map) insertSortedID(id int) {
	if n := len(m.sortedIDs); n == 0 || id > m.sortedIDs[n-1] {
		m.sortedIDs = append(m.sortedIDs, id)
		return
	}
	i := sort.SearchInts(m.sortedIDs, id)
	m.sortedIDs = append(m.sortedIDs, 0)
	copy(m.sortedIDs[i+1:], m.sortedIDs[i:])
	m.sortedIDs[i] = id
}

func (m *Map) removeSortedID(id int) {
	i := sort.SearchInts(m.sortedIDs, id)
	if i < len(m.sortedIDs) && m.sortedIDs[i] == id {
		m.sortedIDs = append(m.sortedIDs[:i], m.sortedIDs[i+1:]...)
	}
}

// SensorPos returns the position of a sensor and whether it exists.
func (m *Map) SensorPos(id int) (geom.Point, bool) {
	p, ok := m.sensors[id]
	return p, ok
}

// AddSensor deploys a sensor with the given id at p with the map's
// default sensing radius, incrementing the coverage counts of all sample
// points within it. It panics on duplicate id.
func (m *Map) AddSensor(id int, p geom.Point) {
	m.AddSensorRadius(id, p, m.rs)
}

// AddSensorRadius deploys a sensor with its own sensing radius — the
// paper's heterogeneous setting (§2), where radii vary with sensor type
// and deployment conditions. It panics on duplicate id or non-positive
// radius.
func (m *Map) AddSensorRadius(id int, p geom.Point, rs float64) {
	if _, ok := m.sensors[id]; ok {
		panic(fmt.Sprintf("coverage: duplicate sensor id %d", id))
	}
	if rs <= 0 {
		panic("coverage: sensor radius must be positive")
	}
	m.sensors[id] = p
	m.sensorIdx.Insert(id, p)
	m.insertSortedID(id)
	if rs != m.rs {
		m.sensorRs[id] = rs
	}
	if rs > m.maxRs {
		m.maxRs = rs
	}
	if m.tiles != nil {
		m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
			m.tiles.Inc(i)
			return true
		})
		return
	}
	m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
		m.counts[i]++
		if m.counts[i] == m.k {
			m.deficient--
		}
		return true
	})
}

// AddSensorAtPoint deploys sensor id exactly at sample point ptIdx with
// the map's default radius. When the rs adjacency is already built
// (placement engines construct it for their benefit caches) the
// coverage update walks the precomputed neighbor list instead of a
// geometric ball query; otherwise it behaves exactly like AddSensor.
func (m *Map) AddSensorAtPoint(id, ptIdx int) {
	p := m.pts[ptIdx]
	nb := m.cachedNeighborhoods(m.rs)
	if nb == nil {
		m.AddSensor(id, p)
		return
	}
	if _, ok := m.sensors[id]; ok {
		panic(fmt.Sprintf("coverage: duplicate sensor id %d", id))
	}
	m.sensors[id] = p
	m.sensorIdx.Insert(id, p)
	m.insertSortedID(id)
	if m.tiles != nil {
		for _, j := range nb.At(ptIdx) {
			m.tiles.Inc(int(j))
		}
		return
	}
	for _, j := range nb.At(ptIdx) {
		m.counts[j]++
		if m.counts[j] == m.k {
			m.deficient--
		}
	}
}

// MaxSensorRadius returns the largest sensing radius ever deployed on
// this map (at least the default rs). Spatial queries that must not miss
// any sensor's footprint use it as their search radius.
func (m *Map) MaxSensorRadius() float64 { return m.maxRs }

// SensorRadius returns the sensing radius of sensor id (the map default
// if the sensor was added homogeneously) and whether the sensor exists.
func (m *Map) SensorRadius(id int) (float64, bool) {
	if _, ok := m.sensors[id]; !ok {
		return 0, false
	}
	if r, ok := m.sensorRs[id]; ok {
		return r, true
	}
	return m.rs, true
}

// RemoveSensor removes the sensor, decrementing coverage counts, and
// reports whether it existed.
func (m *Map) RemoveSensor(id int) bool {
	p, ok := m.sensors[id]
	if !ok {
		return false
	}
	rs, _ := m.SensorRadius(id)
	delete(m.sensors, id)
	delete(m.sensorRs, id)
	m.sensorIdx.Remove(id)
	m.removeSortedID(id)
	if m.tiles != nil {
		m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
			m.tiles.Dec(i)
			return true
		})
		return true
	}
	m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
		if m.counts[i] == m.k {
			m.deficient++
		}
		m.counts[i]--
		return true
	})
	return true
}

// CoverageFrac returns the fraction of sample points covered by at least
// level sensors. CoverageFrac(k) is the paper's "percentage of k-covered
// points" metric; CoverageFrac(1) its "covered" metric under failures.
func (m *Map) CoverageFrac(level int) float64 {
	if len(m.pts) == 0 {
		return 1
	}
	n := 0
	if m.tiles != nil {
		m.tiles.ForEachCount(func(_, c int) {
			if c >= level {
				n++
			}
		})
	} else {
		for _, c := range m.counts {
			if c >= level {
				n++
			}
		}
	}
	return float64(n) / float64(len(m.pts))
}

// VisitPointsInBall calls fn(i, p) for each sample point within r of c.
func (m *Map) VisitPointsInBall(c geom.Point, r float64, fn func(i int, p geom.Point) bool) {
	m.ptIdx.VisitBall(c, r, fn)
}

// PointsInBall returns the indices of sample points within r of c, sorted
// ascending for determinism.
func (m *Map) PointsInBall(c geom.Point, r float64) []int {
	out := m.ptIdx.Ball(c, r)
	sort.Ints(out)
	return out
}

// AppendPointsInBall is PointsInBall with a caller-supplied buffer:
// matching indices are appended to dst (sorted ascending among
// themselves) and the extended slice returned. Reusing the buffer across
// a round loop makes the query allocation-free.
func (m *Map) AppendPointsInBall(dst []int, c geom.Point, r float64) []int {
	n := len(dst)
	dst = m.ptIdx.AppendBall(dst, c, r)
	sort.Ints(dst[n:])
	return dst
}

// SensorsInBall returns the IDs of sensors within r of c, sorted.
func (m *Map) SensorsInBall(c geom.Point, r float64) []int {
	out := m.sensorIdx.Ball(c, r)
	sort.Ints(out)
	return out
}

// AppendSensorsInBall is SensorsInBall with a caller-supplied buffer,
// mirroring AppendPointsInBall.
func (m *Map) AppendSensorsInBall(dst []int, c geom.Point, r float64) []int {
	n := len(dst)
	dst = m.sensorIdx.AppendBall(dst, c, r)
	sort.Ints(dst[n:])
	return dst
}

// PointNeighborhoods precomputes, for every sample point, the indices of
// sample points within r of it (ascending, self included) — the fixed
// adjacency the incremental benefit caches walk on every delta update.
// The result is immutable and safe for concurrent readers. Builds are
// memoized per radius: the adjacency depends only on the sample points,
// never on sensors, so restoring coverage on a map reuses the
// deployment pass's build for free.
func (m *Map) PointNeighborhoods(r float64) *index.Neighborhoods {
	if m.nbShared != nil {
		return m.nbShared.Get(r, func() *index.Neighborhoods {
			return m.ptIdx.BuildNeighborhoods(len(m.pts), r)
		})
	}
	if nb, ok := m.nbCache[r]; ok {
		return nb
	}
	nb := m.ptIdx.BuildNeighborhoods(len(m.pts), r)
	if m.nbCache == nil {
		m.nbCache = make(map[float64]*index.Neighborhoods)
	}
	m.nbCache[r] = nb
	return nb
}

// ShareNeighborhoods routes PointNeighborhoods through shared, a cache
// that outlives this map. Experiment sweeps attach one cache to every
// cell's map: all cells sample the field identically, so the adjacency
// is built once per process instead of once per deployment. The caller
// must guarantee the sharing maps have identical sample-point sets.
func (m *Map) ShareNeighborhoods(shared *index.NeighborhoodCache) {
	m.nbShared = shared
}

// cachedNeighborhoods returns the adjacency for radius r only if it has
// already been built, never triggering a build.
func (m *Map) cachedNeighborhoods(r float64) *index.Neighborhoods {
	if m.nbShared != nil {
		return m.nbShared.Peek(r)
	}
	return m.nbCache[r]
}

// Benefit computes the paper's Eq. 1 for a candidate sensor position c
// against the map's current counts:
//
//	b(c) = Σ_{p: d(p,c) <= rs} max(k − k_p, 0)
func (m *Map) Benefit(c geom.Point) int {
	return m.BenefitRadius(c, m.rs)
}

// BenefitRadius computes Eq. 1 for a candidate sensor whose sensing
// radius differs from the map default (heterogeneous deployments, §2).
func (m *Map) BenefitRadius(c geom.Point, rs float64) int {
	b := 0
	if m.tiles != nil {
		m.ptIdx.VisitBall(c, rs, func(i int, _ geom.Point) bool {
			if d := m.k - m.tiles.Count(i); d > 0 {
				b += d
			}
			return true
		})
		return b
	}
	m.ptIdx.VisitBall(c, rs, func(i int, _ geom.Point) bool {
		if d := m.k - m.counts[i]; d > 0 {
			b += d
		}
		return true
	})
	return b
}

// BenefitWith computes Eq. 1 using an arbitrary perceived-count function,
// letting distributed nodes evaluate benefit against their own (possibly
// stale or partial) knowledge. Points for which perceived returns a
// negative value are treated as unknown and skipped.
func (m *Map) BenefitWith(c geom.Point, perceived func(i int) int) int {
	return m.BenefitWithRadius(c, m.rs, perceived)
}

// BenefitWithRadius is BenefitWith for a candidate sensor with its own
// sensing radius (heterogeneous distributed deployments).
func (m *Map) BenefitWithRadius(c geom.Point, rs float64, perceived func(i int) int) int {
	b := 0
	m.ptIdx.VisitBall(c, rs, func(i int, _ geom.Point) bool {
		kp := perceived(i)
		if kp < 0 {
			return true
		}
		if d := m.k - kp; d > 0 {
			b += d
		}
		return true
	})
	return b
}

// UncoveredPoints returns the indices of all sample points with k_p < k,
// sorted ascending.
func (m *Map) UncoveredPoints() []int {
	var out []int
	if m.tiles != nil {
		// Tile-major scan (one page fault per tile), then sort to
		// restore the ascending order the flat path produces.
		m.tiles.ForEachCount(func(i, c int) {
			if c < m.k {
				out = append(out, i)
			}
		})
		sort.Ints(out)
		return out
	}
	for i, c := range m.counts {
		if c < m.k {
			out = append(out, i)
		}
	}
	return out
}

// IsRedundant reports whether removing sensor id would keep every sample
// point it covers at k_p >= k (i.e. all its covered points have counts
// strictly above k, or are already below k and thus not "achieved" by it).
//
// The paper defines a redundant node as one that "does not contribute to
// the coverage of the area": eliminating it still achieves k-coverage of
// every point it covers to at least the level the point had.
func (m *Map) IsRedundant(id int) bool {
	p, ok := m.sensors[id]
	if !ok {
		return false
	}
	rs, _ := m.SensorRadius(id)
	redundant := true
	m.ptIdx.VisitBall(p, rs, func(i int, _ geom.Point) bool {
		// Removing the sensor lowers this point's count by one. The node
		// "contributes" if that would take a currently >=k point below k,
		// or reduce an under-covered point further.
		if m.cnt(i) <= m.k {
			redundant = false
			return false
		}
		return true
	})
	return redundant
}

// RedundantSensors greedily identifies a maximal removable set: sensors
// whose sequential elimination (ascending ID) never drops any sample point
// below its requirement. The map is restored before returning; only the
// identified IDs are reported.
func (m *Map) RedundantSensors() []int {
	var removed []int
	ids := m.SensorIDs()
	type saved struct {
		pos geom.Point
		rs  float64
	}
	state := make(map[int]saved, len(ids))
	for {
		progress := false
		for _, id := range ids {
			if _, gone := state[id]; gone {
				continue
			}
			if m.IsRedundant(id) {
				rs, _ := m.SensorRadius(id)
				state[id] = saved{pos: m.sensors[id], rs: rs}
				m.RemoveSensor(id)
				removed = append(removed, id)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Restore.
	for _, id := range removed {
		m.AddSensorRadius(id, state[id].pos, state[id].rs)
	}
	sort.Ints(removed)
	return removed
}

// Clone returns an independent copy of the map, including sensors and
// their individual radii. Only immutable state is shared: the sample
// points, their spatial index (never mutated after construction), and
// the shared neighborhood cache. Sensors can be added to or removed from
// the clone without affecting the original — an experiment builds the
// initial deployment once and hands each method a private copy, skipping
// the per-method ball queries of re-scattering.
func (m *Map) Clone() *Map {
	c := &Map{
		field:     m.field,
		rs:        m.rs,
		k:         m.k,
		pts:       m.pts,
		ptIdx:     m.ptIdx,
		counts:    append([]int(nil), m.counts...),
		deficient: m.deficient,
		sensors:   make(map[int]geom.Point, len(m.sensors)),
		sensorIdx: m.sensorIdx.Clone(),
		sortedIDs: append([]int(nil), m.sortedIDs...),
		sensorRs:  make(map[int]float64, len(m.sensorRs)),
		maxRs:     m.maxRs,
		nbShared:  m.nbShared,
	}
	if m.tiles != nil {
		c.tiles = m.tiles.Clone()
	}
	for id, p := range m.sensors {
		c.sensors[id] = p
	}
	for id, r := range m.sensorRs {
		c.sensorRs[id] = r
	}
	return c
}

// CoverageHistogram returns counts[j] = number of sample points covered by
// exactly j sensors, for j in [0, max].
func (m *Map) CoverageHistogram() []int {
	if m.tiles != nil {
		hist := []int{0}
		m.tiles.ForEachCount(func(_, c int) {
			for c >= len(hist) {
				hist = append(hist, 0)
			}
			hist[c]++
		})
		return hist
	}
	maxC := 0
	for _, c := range m.counts {
		if c > maxC {
			maxC = c
		}
	}
	hist := make([]int, maxC+1)
	for _, c := range m.counts {
		hist[c]++
	}
	return hist
}

package coverage

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func newTestMap(k int) *Map {
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(500, field)
	return New(field, pts, 4, k)
}

func TestNewValidation(t *testing.T) {
	field := geom.Square(10)
	pts := []geom.Point{{X: 5, Y: 5}}
	for _, bad := range []func(){
		func() { New(field, pts, 0, 1) },
		func() { New(field, pts, -1, 1) },
		func() { New(field, pts, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid parameters")
				}
			}()
			bad()
		}()
	}
}

func TestAddRemoveSensorCounts(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 15, Y: 15}}
	m := New(field, pts, 4, 1)
	if m.FullyCovered() {
		t.Error("empty map should not be covered")
	}
	if m.NumDeficient() != 3 {
		t.Errorf("NumDeficient = %d", m.NumDeficient())
	}
	m.AddSensor(1, geom.Pt(5, 5))
	if m.Count(0) != 1 || m.Count(1) != 1 || m.Count(2) != 0 {
		t.Errorf("counts = %d %d %d", m.Count(0), m.Count(1), m.Count(2))
	}
	if m.NumDeficient() != 1 {
		t.Errorf("NumDeficient = %d", m.NumDeficient())
	}
	m.AddSensor(2, geom.Pt(15, 15))
	if !m.FullyCovered() {
		t.Error("should be fully covered now")
	}
	if !m.RemoveSensor(1) {
		t.Error("RemoveSensor failed")
	}
	if m.Count(0) != 0 || m.NumDeficient() != 2 {
		t.Errorf("after removal: count=%d deficient=%d", m.Count(0), m.NumDeficient())
	}
	if m.RemoveSensor(1) {
		t.Error("double remove should fail")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	m := newTestMap(1)
	m.AddSensor(1, geom.Pt(5, 5))
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddSensor should panic")
		}
	}()
	m.AddSensor(1, geom.Pt(6, 6))
}

func TestDeficitAndBenefit(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 12, Y: 5}}
	m := New(field, pts, 4, 3)
	if m.Deficit(0) != 3 {
		t.Errorf("Deficit = %d, want 3", m.Deficit(0))
	}
	// Benefit at (5.5, 5): covers points 0 and 1 (deficit 3 each), not 2.
	if got := m.Benefit(geom.Pt(5.5, 5)); got != 6 {
		t.Errorf("Benefit = %d, want 6", got)
	}
	m.AddSensor(1, geom.Pt(5.5, 5))
	if got := m.Benefit(geom.Pt(5.5, 5)); got != 4 {
		t.Errorf("Benefit after add = %d, want 4", got)
	}
	// Over-covered points contribute zero.
	m.AddSensor(2, geom.Pt(5.5, 5.1))
	m.AddSensor(3, geom.Pt(5.5, 4.9))
	m.AddSensor(4, geom.Pt(5.4, 5))
	if got := m.Benefit(geom.Pt(5.5, 5)); got != 0 {
		t.Errorf("Benefit over-covered = %d, want 0", got)
	}
}

func TestBenefitWithPerceived(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 6, Y: 5}}
	m := New(field, pts, 4, 2)
	// Perceived: point 0 unknown (-1), point 1 has count 1.
	got := m.BenefitWith(geom.Pt(5.5, 5), func(i int) int {
		if i == 0 {
			return -1
		}
		return 1
	})
	if got != 1 {
		t.Errorf("BenefitWith = %d, want 1", got)
	}
}

func TestCoverageFrac(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 15}}
	m := New(field, pts, 4, 2)
	if m.CoverageFrac(1) != 0 {
		t.Error("initial frac should be 0")
	}
	m.AddSensor(1, geom.Pt(5, 5))
	if got := m.CoverageFrac(1); got != 0.5 {
		t.Errorf("frac(1) = %v", got)
	}
	if got := m.CoverageFrac(2); got != 0 {
		t.Errorf("frac(2) = %v", got)
	}
	m.AddSensor(2, geom.Pt(5.1, 5))
	if got := m.CoverageFrac(2); got != 0.5 {
		t.Errorf("frac(2) = %v", got)
	}
	// Empty point set counts as fully covered.
	e := New(field, nil, 4, 1)
	if e.CoverageFrac(1) != 1 {
		t.Error("empty map frac should be 1")
	}
}

func TestUncoveredPoints(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 15}, {X: 16, Y: 15}}
	m := New(field, pts, 4, 1)
	m.AddSensor(1, geom.Pt(15.5, 15))
	got := m.UncoveredPoints()
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("UncoveredPoints = %v", got)
	}
}

func TestRedundantIdentification(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}}
	m := New(field, pts, 4, 2)
	m.AddSensor(1, geom.Pt(5, 5))
	m.AddSensor(2, geom.Pt(5.5, 5))
	m.AddSensor(3, geom.Pt(4.5, 5))
	// Point has count 3 >= k=2: exactly one sensor is removable.
	if !m.IsRedundant(1) {
		t.Error("sensor 1 should be redundant (count 3 > k)")
	}
	red := m.RedundantSensors()
	if len(red) != 1 {
		t.Errorf("RedundantSensors = %v, want exactly 1", red)
	}
	// Map must be restored.
	if m.NumSensors() != 3 || m.Count(0) != 3 {
		t.Error("map not restored after RedundantSensors")
	}
	// A sensor covering nothing is redundant by definition.
	m.AddSensor(9, geom.Pt(15, 15))
	if !m.IsRedundant(9) {
		t.Error("sensor covering no points should be redundant")
	}
}

func TestIsRedundantMissing(t *testing.T) {
	m := newTestMap(1)
	if m.IsRedundant(42) {
		t.Error("missing sensor cannot be redundant")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := newTestMap(2)
	m.AddSensor(1, geom.Pt(50, 50))
	c := m.Clone()
	if c.NumSensors() != 1 || c.Count(0) != m.Count(0) {
		t.Error("clone mismatch")
	}
	c.AddSensor(2, geom.Pt(50, 50))
	if m.NumSensors() != 1 {
		t.Error("clone mutation leaked into original")
	}
}

func TestCoverageHistogram(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 15}}
	m := New(field, pts, 4, 1)
	m.AddSensor(1, geom.Pt(5, 5))
	m.AddSensor(2, geom.Pt(5.2, 5))
	h := m.CoverageHistogram()
	if len(h) != 3 || h[0] != 1 || h[1] != 0 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

// Property: counts always equal the brute-force recomputation after a
// random add/remove workload.
func TestCountsMatchBruteForce(t *testing.T) {
	r := rng.New(11)
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(300, field)
	m := New(field, pts, 6, 2)
	alive := map[int]geom.Point{}
	nextID := 0
	for step := 0; step < 400; step++ {
		if len(alive) == 0 || r.Float64() < 0.6 {
			p := r.PointInRect(field)
			m.AddSensor(nextID, p)
			alive[nextID] = p
			nextID++
		} else {
			// Remove an arbitrary sensor.
			for id := range alive {
				m.RemoveSensor(id)
				delete(alive, id)
				break
			}
		}
	}
	deficient := 0
	for i := 0; i < m.NumPoints(); i++ {
		want := 0
		for _, p := range alive {
			if p.Dist2(m.Point(i)) <= 6*6 {
				want++
			}
		}
		if m.Count(i) != want {
			t.Fatalf("point %d: count %d, want %d", i, m.Count(i), want)
		}
		if want < 2 {
			deficient++
		}
	}
	if m.NumDeficient() != deficient {
		t.Errorf("NumDeficient = %d, want %d", m.NumDeficient(), deficient)
	}
}

func TestSensorQueries(t *testing.T) {
	m := newTestMap(1)
	m.AddSensor(5, geom.Pt(50, 50))
	m.AddSensor(3, geom.Pt(52, 50))
	m.AddSensor(9, geom.Pt(90, 90))
	ids := m.SensorIDs()
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 5 || ids[2] != 9 {
		t.Errorf("SensorIDs = %v", ids)
	}
	got := m.SensorsInBall(geom.Pt(51, 50), 3)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("SensorsInBall = %v", got)
	}
	if p, ok := m.SensorPos(5); !ok || !p.Eq(geom.Pt(50, 50)) {
		t.Errorf("SensorPos = %v %v", p, ok)
	}
	if _, ok := m.SensorPos(42); ok {
		t.Error("missing sensor reported present")
	}
}

func TestSetKRetunes(t *testing.T) {
	field := geom.Square(20)
	pts := []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 15}}
	m := New(field, pts, 4, 1)
	m.AddSensor(1, geom.Pt(5, 5))
	m.AddSensor(2, geom.Pt(15, 15))
	if !m.FullyCovered() {
		t.Fatal("setup: should be 1-covered")
	}
	// Raise the requirement: deficits appear.
	m.SetK(2)
	if m.K() != 2 || m.FullyCovered() || m.NumDeficient() != 2 {
		t.Errorf("after SetK(2): k=%d deficient=%d", m.K(), m.NumDeficient())
	}
	if m.Deficit(0) != 1 {
		t.Errorf("deficit = %d", m.Deficit(0))
	}
	// Cover the new requirement, then relax back down: surplus appears.
	m.AddSensor(3, geom.Pt(5.5, 5))
	m.AddSensor(4, geom.Pt(15.5, 15))
	if !m.FullyCovered() {
		t.Fatal("should be 2-covered now")
	}
	m.SetK(1)
	if !m.FullyCovered() {
		t.Error("relaxing k cannot create deficits")
	}
	if red := m.RedundantSensors(); len(red) != 2 {
		t.Errorf("redundant after relax = %v, want 2", red)
	}
	// No-op and validation.
	m.SetK(1)
	if m.K() != 1 {
		t.Error("no-op SetK changed k")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetK(0) should panic")
		}
	}()
	m.SetK(0)
}

package coverage

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func scatter(m *Map, n int, seed uint64) {
	r := rng.New(seed)
	for id := 0; id < n; id++ {
		m.AddSensor(id, r.PointInRect(m.Field()))
	}
}

func TestCountsIntoMatchesCounts(t *testing.T) {
	m := newTestMap(3)
	scatter(m, 40, 5)
	want := m.Counts()
	// Undersized, exact, and oversized destination buffers.
	for _, dst := range [][]int{nil, make([]int, 3), make([]int, len(want)), make([]int, len(want)+100)} {
		got := m.CountsInto(dst)
		if len(got) != len(want) {
			t.Fatalf("CountsInto len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CountsInto[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	// A big-enough buffer is reused, not reallocated.
	buf := make([]int, m.NumPoints())
	got := m.CountsInto(buf)
	if &got[0] != &buf[0] {
		t.Error("CountsInto reallocated a sufficient buffer")
	}
	// The snapshot is detached from the live counts.
	m.AddSensor(1000, m.Point(0))
	if got[0] == m.Count(0) && want[0] != m.Count(0) {
		t.Error("CountsInto snapshot tracks live counts")
	}
}

func TestAppendBallVariantsMatchSorted(t *testing.T) {
	m := newTestMap(2)
	scatter(m, 30, 9)
	r := rng.New(10)
	ptBuf := make([]int, 0, 64)
	sBuf := make([]int, 0, 64)
	for trial := 0; trial < 40; trial++ {
		c := r.PointInRect(m.Field())
		rad := r.Float64() * 12
		wantPts := m.PointsInBall(c, rad)
		ptBuf = m.AppendPointsInBall(ptBuf[:0], c, rad)
		if len(ptBuf) != len(wantPts) {
			t.Fatalf("trial %d: points %d, want %d", trial, len(ptBuf), len(wantPts))
		}
		for i := range wantPts {
			if ptBuf[i] != wantPts[i] {
				t.Fatalf("trial %d: point %d = %d, want %d", trial, i, ptBuf[i], wantPts[i])
			}
		}
		wantS := m.SensorsInBall(c, rad)
		sBuf = m.AppendSensorsInBall(sBuf[:0], c, rad)
		if len(sBuf) != len(wantS) {
			t.Fatalf("trial %d: sensors %d, want %d", trial, len(sBuf), len(wantS))
		}
		for i := range wantS {
			if sBuf[i] != wantS[i] {
				t.Fatalf("trial %d: sensor %d = %d, want %d", trial, i, sBuf[i], wantS[i])
			}
		}
	}
	// Appending after a non-empty prefix sorts only the appended tail.
	pre := []int{999}
	got := m.AppendPointsInBall(pre, geom.Pt(50, 50), 6)
	if got[0] != 999 {
		t.Errorf("prefix overwritten: %v", got[:1])
	}
	for i := 2; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("appended tail not sorted at %d", i)
		}
	}
}

func TestPointNeighborhoodsMatchPointsInBall(t *testing.T) {
	m := newTestMap(1)
	nb := m.PointNeighborhoods(4)
	if nb.Len() != m.NumPoints() {
		t.Fatalf("Len = %d, want %d", nb.Len(), m.NumPoints())
	}
	for i := 0; i < m.NumPoints(); i += 17 {
		want := m.PointsInBall(m.Point(i), 4)
		got := nb.At(i)
		if len(got) != len(want) {
			t.Fatalf("point %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range want {
			if int(got[j]) != want[j] {
				t.Fatalf("point %d neighbor %d: %d want %d", i, j, got[j], want[j])
			}
		}
	}
}

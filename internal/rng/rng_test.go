package rng

import (
	"math"
	"testing"

	"decor/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first output")
	}
	// Splitting must be deterministic given the parent seed.
	p2 := New(99)
	d1 := p2.Split()
	d2 := p2.Split()
	r1 := New(99)
	e1 := r1.Split()
	if d1.Uint64() != e1.Uint64() {
		t.Error("split not deterministic")
	}
	_ = d2
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~1/12", variance)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("digit %d count %d far from uniform", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation entry %d", v)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := New(9)
	s := r.Sample(50, 10)
	if len(s) != 10 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid sample entry %d", v)
		}
		seen[v] = true
	}
	if got := r.Sample(5, 5); len(got) != 5 {
		t.Errorf("full sample size = %d", len(got))
	}
	if got := r.Sample(5, 0); len(got) != 0 {
		t.Errorf("empty sample size = %d", len(got))
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3, 4) should panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestPointInRect(t *testing.T) {
	r := New(13)
	rect := geom.RectWH(10, 20, 5, 8)
	for i := 0; i < 1000; i++ {
		p := r.PointInRect(rect)
		if !rect.Contains(p) {
			t.Fatalf("point %v outside rect %v", p, rect)
		}
	}
}

func TestPointInDiskUniform(t *testing.T) {
	r := New(17)
	d := geom.DiskAt(5, 5, 3)
	const n = 50000
	inner := 0
	for i := 0; i < n; i++ {
		p := r.PointInDisk(d)
		if !d.Contains(p) {
			t.Fatalf("point %v outside disk", p)
		}
		// Inner disk of half radius should get 1/4 of points.
		if d.Center.Dist(p) <= d.R/2 {
			inner++
		}
	}
	frac := float64(inner) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("inner fraction = %v, want ~0.25 (uniformity)", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exp mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

// Package rng provides deterministic, splittable pseudo-randomness for the
// DECOR simulations. Every experiment derives all of its random choices
// from a single uint64 seed, so runs are exactly reproducible and the 5-run
// averages in the paper's evaluation can be regenerated bit-for-bit.
//
// The generator is a 64-bit PCG (PCG-XSH-RR variant over a 64-bit LCG
// state is the classic; here we use the xsl-rr 128→64 recommended for
// 64-bit output, implemented without math/bits dependencies beyond the
// standard library).
package rng

import (
	"math"
	"math/bits"

	"decor/internal/geom"
)

// RNG is a deterministic pseudo-random generator. The zero value is not
// usable; construct with New.
type RNG struct {
	hi, lo uint64 // 128-bit LCG state
}

const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns a generator seeded by seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{hi: seed, lo: seed ^ 0x9e3779b97f4a7c15}
	// Warm up so close seeds diverge.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Split derives an independent generator from r's stream. The derived
// stream is decorrelated from both r's future output and other splits.
func (r *RNG) Split() *RNG {
	s := r.Uint64()
	t := r.Uint64()
	child := &RNG{hi: s ^ 0x2545f4914f6cdd1d, lo: t ^ 0x9e3779b97f4a7c15}
	for i := 0; i < 4; i++ {
		child.Uint64()
	}
	return child
}

// State returns the generator's exact 128-bit internal state. Together
// with FromState it is the snapshot serialization of an RNG: a restored
// generator continues the original's stream bit-for-bit.
func (r *RNG) State() (hi, lo uint64) { return r.hi, r.lo }

// FromState reconstructs a generator at an exact state previously
// captured by State. Unlike New it performs no warm-up: the state is
// already mid-stream.
func FromState(hi, lo uint64) *RNG { return &RNG{hi: hi, lo: lo} }

// Clone returns an independent generator with r's exact current state:
// the clone and the original produce identical streams from here on
// without affecting each other. This is how Deployment snapshots stay
// replay-equivalent to their originals.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	// 128-bit LCG step: state = state*mul + inc.
	carryHi, carryLo := bits.Mul64(r.lo, mulLo)
	carryHi += r.hi * mulLo
	carryHi += r.lo * mulHi
	lo, c := bits.Add64(carryLo, incLo, 0)
	hi, _ := bits.Add64(carryHi, incHi, c)
	r.hi, r.lo = hi, lo
	// PCG XSL-RR output function.
	xored := hi ^ lo
	rot := uint(hi >> 58)
	return bits.RotateLeft64(xored, -int(rot))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	return -math.Log(1-r.Float64()) / rate
}

// PointInRect returns a uniform point in rect.
func (r *RNG) PointInRect(rect geom.Rect) geom.Point {
	return geom.Point{
		X: r.Range(rect.Min.X, rect.Max.X),
		Y: r.Range(rect.Min.Y, rect.Max.Y),
	}
}

// PointInDisk returns a uniform point in the disk (rejection-free via the
// sqrt radius transform).
func (r *RNG) PointInDisk(d geom.Disk) geom.Point {
	theta := r.Range(0, 2*math.Pi)
	rad := d.R * math.Sqrt(r.Float64())
	return geom.Point{
		X: d.Center.X + rad*math.Cos(theta),
		Y: d.Center.Y + rad*math.Sin(theta),
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct indices chosen uniformly from [0, n). It
// panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	// Partial Fisher–Yates over an index array.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

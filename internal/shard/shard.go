// Package shard is the bounded worker pool shared by every
// embarrassingly parallel sweep in the repo: the figure-experiment cells
// (internal/experiment), the multi-scenario decor-sim CLI, and the chaos
// seed sweep (internal/chaos.Sweep). Jobs are indexed 0..n-1, claim work
// from an atomic cursor, and must write only to their own result slots;
// callers aggregate after the join in slot order, which is what makes
// every sharded output byte-identical for any worker count.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: non-positive means
// GOMAXPROCS, and the result never exceeds n (one goroutine per job is
// the useful maximum).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ForEach runs job(0), …, job(n-1) across up to `workers` goroutines
// (non-positive: GOMAXPROCS) and blocks until every job has finished.
// With one effective worker it runs inline — no goroutines, so
// single-threaded callers keep deterministic stack traces and zero
// scheduling overhead.
func ForEach(n, workers int, job func(i int)) {
	ForEachW(n, workers, func(_, i int) { job(i) })
}

// ForEachW is ForEach with the worker index exposed: job(worker, i) may
// use worker (0 ≤ worker < Workers(workers, n)) to address per-worker
// state — a registry shard, a scratch buffer — without synchronization,
// since one worker never runs two jobs concurrently. Job order and
// worker→job assignment are scheduling-dependent; only per-slot results
// are deterministic.
func ForEachW(n, workers int, job func(worker, i int)) {
	w := Workers(workers, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

package shard

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, tc := range []struct{ req, n, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 0, 0},
	} {
		if got := Workers(tc.req, tc.n); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.req, tc.n, got, tc.want)
		}
	}
}

// TestForEachCoversEveryIndexOnce drives the pool at several worker
// counts and asserts each job index runs exactly once.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 137
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("job invoked for n=0") })
}

// TestForEachSlotOrderIndependentOfWorkers is the merge-determinism
// property every sharded sweep relies on: results written to per-index
// slots read back identically for any worker count.
func TestForEachSlotOrderIndependentOfWorkers(t *testing.T) {
	const n = 64
	run := func(workers int) [n]int {
		var out [n]int
		ForEach(n, workers, func(i int) { out[i] = i * i })
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 5, 16} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: slot contents diverged", workers)
		}
	}
}

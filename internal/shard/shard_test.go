package shard

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, tc := range []struct{ req, n, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 0, 0},
	} {
		if got := Workers(tc.req, tc.n); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.req, tc.n, got, tc.want)
		}
	}
}

// TestForEachCoversEveryIndexOnce drives the pool at several worker
// counts and asserts each job index runs exactly once.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 137
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("job invoked for n=0") })
}

// TestForEachWWorkerIndexInRange checks every job sees a worker index
// inside [0, Workers(workers, n)) and that per-worker state needs no
// synchronization: each worker bumps its own slot, and the bumps sum to n.
func TestForEachWWorkerIndexInRange(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 137
		w := Workers(workers, n)
		perWorker := make([]atomic.Int32, w)
		ForEachW(n, workers, func(worker, i int) {
			if worker < 0 || worker >= w {
				t.Errorf("workers=%d: job %d got worker index %d", workers, i, worker)
				return
			}
			perWorker[worker].Add(1)
		})
		var total int32
		for i := range perWorker {
			total += perWorker[i].Load()
		}
		if total != n {
			t.Fatalf("workers=%d: %d jobs ran, want %d", workers, total, n)
		}
	}
}

// TestForEachSlotOrderIndependentOfWorkers is the merge-determinism
// property every sharded sweep relies on: results written to per-index
// slots read back identically for any worker count.
func TestForEachSlotOrderIndependentOfWorkers(t *testing.T) {
	const n = 64
	run := func(workers int) [n]int {
		var out [n]int
		ForEach(n, workers, func(i int) { out[i] = i * i })
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 5, 16} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: slot contents diverged", workers)
		}
	}
}

// Package geom provides the 2-D geometric primitives used throughout the
// DECOR reproduction: points, vectors, rectangles, disks and segments, plus
// the exact circle–rectangle intersection area needed to convert between
// point-sampled and analytic coverage measures.
//
// All coordinates are float64 in field units. The package has no
// dependencies outside the standard library and is deliberately
// allocation-light: every type is a small value type.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. It doubles as a 2-D vector.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q, treating q as a displacement.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// in hot loops: it avoids the sqrt and is exact for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// AlmostEq reports whether p and q are within eps of each other in both
// coordinates.
func (p Point) AlmostEq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Centroid returns the arithmetic mean of pts; the zero Point if pts is
// empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return Point{c.X / float64(len(pts)), c.Y / float64(len(pts))}
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	if !r.Min.Eq(Pt(2, 1)) || !r.Max.Eq(Pt(5, 7)) {
		t.Errorf("NewRect = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 {
		t.Errorf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	if !r.Center().Eq(Pt(2.5, 4)) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Empty() {
		t.Error("rect should not be empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect should be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := Square(10)
	cases := []struct {
		p    Point
		in   bool
		half bool
	}{
		{Pt(5, 5), true, true},
		{Pt(0, 0), true, true},
		{Pt(10, 10), true, false}, // on Max edge: closed yes, half-open no
		{Pt(10, 5), true, false},
		{Pt(-0.001, 5), false, false},
		{Pt(5, 10.001), false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
		if got := r.ContainsHalfOpen(c.p); got != c.half {
			t.Errorf("ContainsHalfOpen(%v) = %v, want %v", c.p, got, c.half)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := RectWH(0, 0, 4, 4)
	b := RectWH(2, 2, 4, 4)
	got := a.Intersect(b)
	if !got.Min.Eq(Pt(2, 2)) || !got.Max.Eq(Pt(4, 4)) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(RectWH(10, 10, 1, 1)).Empty() {
		t.Error("disjoint rects should intersect to empty")
	}
	u := a.Union(b)
	if !u.Min.Eq(Pt(0, 0)) || !u.Max.Eq(Pt(6, 6)) {
		t.Errorf("Union = %v", u)
	}
	if !a.Union(Rect{}).Min.Eq(a.Min) {
		t.Error("union with empty should be identity")
	}
}

func TestRectClampAndDist(t *testing.T) {
	r := Square(10)
	if !r.Clamp(Pt(5, 5)).Eq(Pt(5, 5)) {
		t.Error("Clamp inside should be identity")
	}
	if !r.Clamp(Pt(-3, 5)).Eq(Pt(0, 5)) {
		t.Error("Clamp left failed")
	}
	if !r.Clamp(Pt(12, 14)).Eq(Pt(10, 10)) {
		t.Error("Clamp corner failed")
	}
	if got := r.DistToPoint(Pt(13, 14)); !almostEq(got, 5, 1e-12) {
		t.Errorf("DistToPoint = %v, want 5", got)
	}
	if got := r.DistToPoint(Pt(3, 3)); got != 0 {
		t.Errorf("DistToPoint inside = %v, want 0", got)
	}
}

func TestRectInset(t *testing.T) {
	r := Square(10).Inset(2)
	if !r.Min.Eq(Pt(2, 2)) || !r.Max.Eq(Pt(8, 8)) {
		t.Errorf("Inset = %v", r)
	}
	// Over-inset collapses to center.
	c := Square(10).Inset(6)
	if c.Area() != 0 {
		t.Errorf("over-inset area = %v, want 0", c.Area())
	}
	g := Square(10).Inset(-1)
	if !g.Min.Eq(Pt(-1, -1)) || !g.Max.Eq(Pt(11, 11)) {
		t.Errorf("negative inset = %v", g)
	}
}

func TestRectCorners(t *testing.T) {
	c := RectWH(0, 0, 2, 3).Corners()
	want := [4]Point{{0, 0}, {2, 0}, {2, 3}, {0, 3}}
	if c != want {
		t.Errorf("Corners = %v", c)
	}
}

// Property: Intersect result is contained in both operands; Union contains
// both.
func TestRectIntersectUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := RectWH(norm(ax), norm(ay), norm(aw), norm(ah))
		b := RectWH(norm(bx), norm(by), norm(bw), norm(bh))
		in := a.Intersect(b)
		u := a.Union(b)
		if !in.Empty() {
			if in.Area() > a.Area()+1e-9 || in.Area() > b.Area()+1e-9 {
				return false
			}
			if !a.Contains(in.Center()) || !b.Contains(in.Center()) {
				return false
			}
		}
		return u.Area() >= a.Area()-1e-9 && u.Area() >= b.Area()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package geom

import (
	"math"
	"sort"
)

// ClosestPair returns the indices of the two closest points and their
// distance, using the classic O(n log n) divide-and-conquer. It panics
// for fewer than two points. Ties return the pair found first in the
// recursion (deterministic for a fixed input order).
func ClosestPair(pts []Point) (i, j int, dist float64) {
	if len(pts) < 2 {
		panic("geom: ClosestPair needs at least two points")
	}
	idx := make([]int, len(pts))
	for k := range idx {
		idx[k] = k
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	best := math.Inf(1)
	bi, bj := -1, -1
	var rec func(lo, hi int)
	// strip is reused across recursion levels.
	strip := make([]int, 0, len(pts))
	rec = func(lo, hi int) {
		n := hi - lo
		if n <= 3 {
			for a := lo; a < hi; a++ {
				for b := a + 1; b < hi; b++ {
					if d := pts[idx[a]].Dist(pts[idx[b]]); d < best {
						best, bi, bj = d, idx[a], idx[b]
					}
				}
			}
			sortByY(pts, idx[lo:hi])
			return
		}
		mid := (lo + hi) / 2
		midX := pts[idx[mid]].X
		rec(lo, mid)
		rec(mid, hi)
		// Merge the two halves by Y (idx[lo:mid] and idx[mid:hi] are each
		// Y-sorted now).
		mergeByY(pts, idx, lo, mid, hi)
		// Collect the strip around the split line.
		strip = strip[:0]
		for a := lo; a < hi; a++ {
			if math.Abs(pts[idx[a]].X-midX) < best {
				strip = append(strip, idx[a])
			}
		}
		for a := 0; a < len(strip); a++ {
			for b := a + 1; b < len(strip) && pts[strip[b]].Y-pts[strip[a]].Y < best; b++ {
				if d := pts[strip[a]].Dist(pts[strip[b]]); d < best {
					best, bi, bj = d, strip[a], strip[b]
				}
			}
		}
	}
	rec(0, len(idx))
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj, best
}

func sortByY(pts []Point, idx []int) {
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].Y < pts[idx[b]].Y })
}

func mergeByY(pts []Point, idx []int, lo, mid, hi int) {
	merged := make([]int, 0, hi-lo)
	a, b := lo, mid
	for a < mid && b < hi {
		if pts[idx[a]].Y <= pts[idx[b]].Y {
			merged = append(merged, idx[a])
			a++
		} else {
			merged = append(merged, idx[b])
			b++
		}
	}
	merged = append(merged, idx[a:mid]...)
	merged = append(merged, idx[b:hi]...)
	copy(idx[lo:hi], merged)
}

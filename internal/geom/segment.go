package geom

import "math"

// Segment is the closed line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the length of s.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return Midpoint(s.A, s.B) }

// ClosestPoint returns the point on s closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	ab := s.B.Sub(s.A)
	denom := ab.Norm2()
	if denom == 0 {
		return s.A
	}
	t := clamp(p.Sub(s.A).Dot(ab)/denom, 0, 1)
	return s.A.Lerp(s.B, t)
}

// DistToPoint returns the distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return p.Dist(s.ClosestPoint(p))
}

// IntersectsDisk reports whether any point of the segment lies in the
// closed disk d.
func (s Segment) IntersectsDisk(d Disk) bool {
	return s.DistToPoint(d.Center) <= d.R
}

// Intersect returns the intersection point of segments s and t and whether
// they properly intersect (including endpoint touching within eps).
func (s Segment) Intersect(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	q := t.B.Sub(t.A)
	denom := r.Cross(q)
	diff := t.A.Sub(s.A)
	const eps = 1e-12
	if math.Abs(denom) < eps {
		return Point{}, false // parallel or collinear: treated as no single intersection
	}
	u := diff.Cross(q) / denom
	v := diff.Cross(r) / denom
	if u < -eps || u > 1+eps || v < -eps || v > 1+eps {
		return Point{}, false
	}
	return s.A.Add(r.Scale(u)), true
}

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain. The input slice is not modified. Returns
// nil for fewer than 1 point; collinear interior points are dropped.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	// Sort by X then Y (insertion into sorted order; n is small in all
	// callers, but use an O(n log n) sort for safety).
	sortPoints(sorted)
	// Dedupe.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	sorted = uniq
	n = len(sorted)
	if n < 3 {
		out := make([]Point, n)
		copy(out, sorted)
		return out
	}
	hull := make([]Point, 0, 2*n)
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && cross3(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && cross3(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// PolygonArea returns the (positive) area of the simple polygon given by
// its vertices in order.
func PolygonArea(poly []Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		sum += p.Cross(q)
	}
	return math.Abs(sum) / 2
}

func cross3(o, a, b Point) float64 {
	return a.Sub(o).Cross(b.Sub(o))
}

// sortPoints sorts by X, breaking ties by Y (simple in-place quicksort via
// stdlib-free insertion for tiny n would be slow for big n, so implement a
// small recursive sort).
func sortPoints(pts []Point) {
	if len(pts) < 2 {
		return
	}
	if len(pts) < 16 {
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && pointLess(pts[j], pts[j-1]); j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		return
	}
	pivot := pts[len(pts)/2]
	lt, i, gt := 0, 0, len(pts)
	for i < gt {
		switch {
		case pointLess(pts[i], pivot):
			pts[i], pts[lt] = pts[lt], pts[i]
			lt++
			i++
		case pointLess(pivot, pts[i]):
			gt--
			pts[i], pts[gt] = pts[gt], pts[i]
		default:
			i++
		}
	}
	sortPoints(pts[:lt])
	sortPoints(pts[gt:])
}

func pointLess(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

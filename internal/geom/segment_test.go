package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p, want Point
	}{
		{Pt(5, 3), Pt(5, 0)},
		{Pt(-2, 1), Pt(0, 0)},
		{Pt(14, -2), Pt(10, 0)},
		{Pt(3, 0), Pt(3, 0)},
	}
	for _, c := range cases {
		if got := s.ClosestPoint(c.p); !got.AlmostEq(c.want, 1e-12) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	d := Segment{Pt(2, 2), Pt(2, 2)}
	if got := d.ClosestPoint(Pt(9, 9)); !got.Eq(Pt(2, 2)) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
}

func TestSegmentDistAndDisk(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if got := s.DistToPoint(Pt(5, 3)); !almostEq(got, 3, 1e-12) {
		t.Errorf("DistToPoint = %v", got)
	}
	if !s.IntersectsDisk(DiskAt(5, 2, 2)) {
		t.Error("tangent disk should intersect")
	}
	if s.IntersectsDisk(DiskAt(5, 3, 2)) {
		t.Error("distant disk should not intersect")
	}
	if s.Len() != 10 {
		t.Errorf("Len = %v", s.Len())
	}
	if !s.Midpoint().Eq(Pt(5, 0)) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestSegmentIntersect(t *testing.T) {
	a := Segment{Pt(0, 0), Pt(4, 4)}
	b := Segment{Pt(0, 4), Pt(4, 0)}
	p, ok := a.Intersect(b)
	if !ok || !p.AlmostEq(Pt(2, 2), 1e-12) {
		t.Errorf("Intersect = %v, %v", p, ok)
	}
	// Parallel.
	c := Segment{Pt(0, 1), Pt(4, 5)}
	if _, ok := a.Intersect(c); ok {
		t.Error("parallel segments should not intersect")
	}
	// Non-overlapping.
	d := Segment{Pt(10, 0), Pt(10, 5)}
	if _, ok := a.Intersect(d); ok {
		t.Error("disjoint segments should not intersect")
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {2, 0}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	if got := PolygonArea(hull); !almostEq(got, 16, 1e-12) {
		t.Errorf("hull area = %v, want 16", got)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if ConvexHull(nil) != nil {
		t.Error("hull of nil should be nil")
	}
	one := ConvexHull([]Point{{1, 1}})
	if len(one) != 1 {
		t.Errorf("hull of 1 point = %v", one)
	}
	two := ConvexHull([]Point{{1, 1}, {2, 2}})
	if len(two) != 2 {
		t.Errorf("hull of 2 points = %v", two)
	}
	// Duplicates collapse.
	dup := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}})
	if len(dup) != 1 {
		t.Errorf("hull of duplicates = %v", dup)
	}
	// Collinear points: hull is the two extremes.
	col := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(col) != 2 {
		t.Errorf("hull of collinear = %v", col)
	}
}

// Property: every input point lies inside (or on) the hull, checked via
// the cross-product sign against each hull edge.
func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for _, p := range pts {
			for i := range hull {
				a, b := hull[i], hull[(i+1)%len(hull)]
				if cross3(a, b, p) < -1e-9 {
					t.Fatalf("trial %d: point %v outside hull edge %v-%v", trial, p, a, b)
				}
			}
		}
		// Hull must be convex: all turns non-negative.
		for i := range hull {
			a := hull[i]
			b := hull[(i+1)%len(hull)]
			c := hull[(i+2)%len(hull)]
			if cross3(a, b, c) < -1e-9 {
				t.Fatalf("trial %d: hull not convex at %v", trial, b)
			}
		}
	}
}

func TestPolygonArea(t *testing.T) {
	tri := []Point{{0, 0}, {4, 0}, {0, 3}}
	if got := PolygonArea(tri); !almostEq(got, 6, 1e-12) {
		t.Errorf("triangle area = %v, want 6", got)
	}
	// Clockwise ordering gives the same positive area.
	triCW := []Point{{0, 0}, {0, 3}, {4, 0}}
	if got := PolygonArea(triCW); !almostEq(got, 6, 1e-12) {
		t.Errorf("cw triangle area = %v, want 6", got)
	}
	if PolygonArea(tri[:2]) != 0 {
		t.Error("degenerate polygon should have area 0")
	}
}

func TestSortPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Pt(math.Floor(rng.Float64()*10), math.Floor(rng.Float64()*10))
	}
	sortPoints(pts)
	for i := 1; i < len(pts); i++ {
		if pointLess(pts[i], pts[i-1]) {
			t.Fatalf("not sorted at %d: %v < %v", i, pts[i], pts[i-1])
		}
	}
}

package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiskContains(t *testing.T) {
	d := DiskAt(0, 0, 4)
	if !d.Contains(Pt(0, 0)) || !d.Contains(Pt(4, 0)) || !d.Contains(Pt(2.8, 2.8)) {
		t.Error("points inside reported outside")
	}
	if d.Contains(Pt(4.001, 0)) || d.Contains(Pt(3, 3)) {
		t.Error("points outside reported inside")
	}
}

func TestDiskIntersects(t *testing.T) {
	a := DiskAt(0, 0, 2)
	if !a.Intersects(DiskAt(3.9, 0, 2)) {
		t.Error("overlapping disks reported disjoint")
	}
	if !a.Intersects(DiskAt(4, 0, 2)) {
		t.Error("tangent disks should intersect (closed disks)")
	}
	if a.Intersects(DiskAt(4.01, 0, 2)) {
		t.Error("disjoint disks reported intersecting")
	}
}

func TestDiskContainsDisk(t *testing.T) {
	big := DiskAt(0, 0, 5)
	if !big.ContainsDisk(DiskAt(1, 1, 2)) {
		t.Error("inner disk not contained")
	}
	if !big.ContainsDisk(DiskAt(0, 0, 5)) {
		t.Error("identical disk should be contained")
	}
	if big.ContainsDisk(DiskAt(4, 0, 2)) {
		t.Error("protruding disk reported contained")
	}
}

func TestDiskIntersectsRect(t *testing.T) {
	r := Square(10)
	if !DiskAt(5, 5, 1).IntersectsRect(r) {
		t.Error("interior disk should intersect")
	}
	if !DiskAt(-1, 5, 1.5).IntersectsRect(r) {
		t.Error("edge-overlapping disk should intersect")
	}
	if DiskAt(-3, -3, 1).IntersectsRect(r) {
		t.Error("far disk should not intersect")
	}
	// Corner case: distance to corner exactly r.
	if !DiskAt(-3, -4, 5).IntersectsRect(r) {
		t.Error("corner-tangent disk should intersect")
	}
}

func TestDiskBounds(t *testing.T) {
	b := DiskAt(3, 4, 2).Bounds()
	if !b.Min.Eq(Pt(1, 2)) || !b.Max.Eq(Pt(5, 6)) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestLensAreaKnownCases(t *testing.T) {
	a := DiskAt(0, 0, 1)
	if got := LensArea(a, DiskAt(5, 0, 1)); got != 0 {
		t.Errorf("disjoint lens = %v, want 0", got)
	}
	if got := LensArea(a, DiskAt(0, 0, 1)); !almostEq(got, math.Pi, 1e-9) {
		t.Errorf("identical lens = %v, want pi", got)
	}
	if got := LensArea(a, DiskAt(0, 0, 3)); !almostEq(got, math.Pi, 1e-9) {
		t.Errorf("nested lens = %v, want pi (smaller disk)", got)
	}
	// Two unit disks at distance 1: known lens area
	// 2*acos(1/2) - (1/2)*sqrt(3) per standard formula
	want := 2*math.Acos(0.5) - math.Sqrt(3)/2
	if got := LensArea(a, DiskAt(1, 0, 1)); !almostEq(got, want, 1e-9) {
		t.Errorf("unit lens = %v, want %v", got, want)
	}
}

func TestIntersectionAreaExactCases(t *testing.T) {
	r := Square(10)
	// Disk fully inside.
	if got := DiskAt(5, 5, 2).IntersectionArea(r); !almostEq(got, 4*math.Pi, 1e-9) {
		t.Errorf("inside = %v, want 4pi", got)
	}
	// Rect fully inside huge disk.
	if got := DiskAt(5, 5, 100).IntersectionArea(r); !almostEq(got, 100, 1e-9) {
		t.Errorf("covering disk = %v, want 100", got)
	}
	// Disk fully outside.
	if got := DiskAt(-50, -50, 2).IntersectionArea(r); got != 0 {
		t.Errorf("outside = %v, want 0", got)
	}
	// Half disk: center on an edge.
	if got := DiskAt(0, 5, 2).IntersectionArea(r); !almostEq(got, 2*math.Pi, 1e-9) {
		t.Errorf("half = %v, want 2pi", got)
	}
	// Quarter disk: center on a corner.
	if got := DiskAt(0, 0, 2).IntersectionArea(r); !almostEq(got, math.Pi, 1e-9) {
		t.Errorf("quarter = %v, want pi", got)
	}
	// Zero radius.
	if got := DiskAt(5, 5, 0).IntersectionArea(r); got != 0 {
		t.Errorf("zero radius = %v, want 0", got)
	}
	// Empty rect.
	if got := DiskAt(0, 0, 1).IntersectionArea(Rect{}); got != 0 {
		t.Errorf("empty rect = %v, want 0", got)
	}
}

// TestIntersectionAreaMonteCarlo cross-validates the analytic area against
// Monte Carlo sampling over random configurations.
func TestIntersectionAreaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const samples = 200_000
	for trial := 0; trial < 12; trial++ {
		d := Disk{Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}, 0.5 + rng.Float64()*6}
		r := RectWH(rng.Float64()*8, rng.Float64()*8, 1+rng.Float64()*8, 1+rng.Float64()*8)
		want := d.IntersectionArea(r)
		// Sample within the disk's bounding box intersected with r.
		box := d.Bounds().Intersect(r)
		if box.Empty() {
			if want > 1e-9 {
				t.Errorf("trial %d: empty box but analytic area %v", trial, want)
			}
			continue
		}
		hits := 0
		for i := 0; i < samples; i++ {
			p := Point{box.Min.X + rng.Float64()*box.W(), box.Min.Y + rng.Float64()*box.H()}
			if d.Contains(p) {
				hits++
			}
		}
		got := float64(hits) / samples * box.Area()
		tol := 4 * box.Area() / math.Sqrt(samples) // ~4 sigma
		if math.Abs(got-want) > tol {
			t.Errorf("trial %d: analytic %v vs MC %v (tol %v) disk=%v rect=%v",
				trial, want, got, tol, d, r)
		}
	}
}

// Property: intersection area is within [0, min(diskArea, rectArea)] and
// translation-invariant.
func TestIntersectionAreaProperties(t *testing.T) {
	f := func(cx, cy, rr, rx, ry, rw, rh, tx, ty float64) bool {
		m := func(v, lim float64) float64 { return math.Mod(math.Abs(v), lim) }
		d := Disk{Point{m(cx, 50), m(cy, 50)}, 0.1 + m(rr, 10)}
		r := RectWH(m(rx, 50), m(ry, 50), 0.1+m(rw, 20), 0.1+m(rh, 20))
		a := d.IntersectionArea(r)
		if a < 0 || a > math.Min(d.Area(), r.Area())+1e-9 {
			return false
		}
		// Translation invariance.
		dx, dy := m(tx, 100)-50, m(ty, 100)-50
		d2 := Disk{Point{d.Center.X + dx, d.Center.Y + dy}, d.R}
		r2 := Rect{Point{r.Min.X + dx, r.Min.Y + dy}, Point{r.Max.X + dx, r.Max.Y + dy}}
		return almostEq(a, d2.IntersectionArea(r2), 1e-6*(1+a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPointAt(t *testing.T) {
	d := DiskAt(1, 1, 2)
	p := d.PointAt(0)
	if !p.AlmostEq(Pt(3, 1), 1e-12) {
		t.Errorf("PointAt(0) = %v", p)
	}
	p = d.PointAt(math.Pi / 2)
	if !p.AlmostEq(Pt(1, 3), 1e-12) {
		t.Errorf("PointAt(pi/2) = %v", p)
	}
}

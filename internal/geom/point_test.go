package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(4, 6)
	if got := p.Add(q); !got.Eq(Pt(5, 8)) {
		t.Errorf("Add = %v, want (5,8)", got)
	}
	if got := q.Sub(p); !got.Eq(Pt(3, 4)) {
		t.Errorf("Sub = %v, want (3,4)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := p.Dot(q); got != 16 {
		t.Errorf("Dot = %v, want 16", got)
	}
	if got := p.Cross(q); got != -2 {
		t.Errorf("Cross = %v, want -2", got)
	}
}

func TestDistMatchesDist2(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Keep magnitudes sane to avoid overflow in the square.
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		d := a.Dist(b)
		return almostEq(d*d, a.Dist2(b), 1e-6*(1+a.Dist2(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(ax, 1e3), math.Mod(ay, 1e3))
		b := Pt(math.Mod(bx, 1e3), math.Mod(by, 1e3))
		c := Pt(math.Mod(cx, 1e3), math.Mod(cy, 1e3))
		if !almostEq(a.Dist(b), b.Dist(a), 1e-9) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	p, q := Pt(1, 1), Pt(5, -3)
	if !p.Lerp(q, 0).Eq(p) {
		t.Error("Lerp(0) != p")
	}
	if !p.Lerp(q, 1).Eq(q) {
		t.Error("Lerp(1) != q")
	}
	if got := p.Lerp(q, 0.5); !got.Eq(Midpoint(p, q)) {
		t.Errorf("Lerp(0.5) = %v, want midpoint", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); !got.Eq(Pt(0, 0)) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestAlmostEq(t *testing.T) {
	if !Pt(1, 1).AlmostEq(Pt(1+1e-10, 1-1e-10), 1e-9) {
		t.Error("AlmostEq too strict")
	}
	if Pt(1, 1).AlmostEq(Pt(1.1, 1), 1e-9) {
		t.Error("AlmostEq too lax")
	}
}

func TestNorm(t *testing.T) {
	p := Pt(3, 4)
	if p.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", p.Norm())
	}
	if p.Norm2() != 25 {
		t.Errorf("Norm2 = %v, want 25", p.Norm2())
	}
}

package geom

import (
	"math"
	"testing"
)

func sane(v float64, lim float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(math.Abs(v), lim)
}

// FuzzIntersectionArea checks the fundamental bounds of the analytic
// circle-rectangle intersection on arbitrary inputs.
func FuzzIntersectionArea(f *testing.F) {
	f.Add(5.0, 5.0, 3.0, 0.0, 0.0, 10.0, 10.0)
	f.Add(0.0, 0.0, 1.0, -1.0, -1.0, 2.0, 2.0)
	f.Add(100.0, 100.0, 50.0, 0.0, 0.0, 10.0, 10.0)
	f.Add(5.0, 0.0, 2.0, 0.0, 0.0, 10.0, 0.0001)
	f.Fuzz(func(t *testing.T, cx, cy, r, rx, ry, rw, rh float64) {
		d := Disk{Center: Point{sane(cx, 1e3), sane(cy, 1e3)}, R: 0.001 + sane(r, 1e3)}
		rect := RectWH(sane(rx, 1e3), sane(ry, 1e3), 0.001+sane(rw, 1e3), 0.001+sane(rh, 1e3))
		a := d.IntersectionArea(rect)
		if math.IsNaN(a) || a < 0 {
			t.Fatalf("invalid area %v for %v ∩ %v", a, d, rect)
		}
		if a > math.Min(d.Area(), rect.Area())*(1+1e-9)+1e-9 {
			t.Fatalf("area %v exceeds min(disk %v, rect %v)", a, d.Area(), rect.Area())
		}
		// Containment extremes.
		if d.Bounds().Intersect(rect).Empty() && a > 1e-9 {
			t.Fatalf("disjoint bounds but area %v", a)
		}
	})
}

// FuzzSegmentDisk checks segment-vs-disk consistency: the closest point
// must realize the reported distance and lie on the segment.
func FuzzSegmentDisk(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 0.0, 5.0, 3.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 2.0, 2.0) // degenerate segment
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, px, py float64) {
		s := Segment{
			A: Point{sane(ax, 1e3), sane(ay, 1e3)},
			B: Point{sane(bx, 1e3), sane(by, 1e3)},
		}
		p := Point{sane(px, 1e3), sane(py, 1e3)}
		cp := s.ClosestPoint(p)
		d := s.DistToPoint(p)
		if math.Abs(cp.Dist(p)-d) > 1e-9*(1+d) {
			t.Fatalf("closest point %v does not realize distance %v", cp, d)
		}
		// cp must not be farther than either endpoint.
		if d > p.Dist(s.A)+1e-9 || d > p.Dist(s.B)+1e-9 {
			t.Fatalf("distance %v exceeds endpoint distances", d)
		}
	})
}

package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle with Min at the lower-left corner and
// Max at the upper-right corner. A Rect with Max <= Min in either axis is
// empty.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectWH returns the rectangle with lower-left corner (x, y), width w and
// height h.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Point{x, y}, Point{x + w, y + h}}
}

// Square returns the axis-aligned square [0,side]×[0,side]; the standard
// DECOR field is Square(100).
func Square(side float64) Rect { return RectWH(0, 0, side, side) }

// W returns the width of r (0 if empty).
func (r Rect) W() float64 { return math.Max(0, r.Max.X-r.Min.X) }

// H returns the height of r (0 if empty).
func (r Rect) H() float64 { return math.Max(0, r.Max.Y-r.Min.Y) }

// Area returns the area of r (0 if empty).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.Max.X <= r.Min.X || r.Max.Y <= r.Min.Y }

// Center returns the center point of r.
func (r Rect) Center() Point { return Midpoint(r.Min, r.Max) }

// Contains reports whether p lies inside r (closed on Min edges, closed on
// Max edges: DECOR sample points on the field boundary count as inside).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsHalfOpen reports whether p lies in the half-open rectangle
// [Min.X, Max.X) × [Min.Y, Max.Y). Used by grid partitioning so each point
// belongs to exactly one cell.
func (r Rect) ContainsHalfOpen(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Intersect returns the intersection of r and s, which may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Inset shrinks r by d on every side; a negative d grows it.
func (r Rect) Inset(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X + d, r.Min.Y + d},
		Max: Point{r.Max.X - d, r.Max.Y - d},
	}
	if out.Empty() {
		return Rect{Min: r.Center(), Max: r.Center()}
	}
	return out
}

// Clamp returns the point of r closest to p (p itself if inside).
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// DistToPoint returns the Euclidean distance from p to the rectangle
// (0 if p is inside).
func (r Rect) DistToPoint(p Point) float64 { return p.Dist(r.Clamp(p)) }

// Corners returns the four corners of r in counter-clockwise order
// starting from Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

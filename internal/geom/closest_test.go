package geom

import (
	"math"
	"math/rand"
	"testing"
)

func bruteClosest(pts []Point) (int, int, float64) {
	bi, bj, best := -1, -1, math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < best {
				bi, bj, best = i, j, d
			}
		}
	}
	return bi, bj, best
}

func TestClosestPairSmall(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10.5, Y: 0}, {X: 5, Y: 9}}
	i, j, d := ClosestPair(pts)
	if i != 1 || j != 2 || math.Abs(d-0.5) > 1e-12 {
		t.Errorf("ClosestPair = %d,%d,%v", i, j, d)
	}
	// Two points.
	i, j, d = ClosestPair(pts[:2])
	if i != 0 || j != 1 || d != 10 {
		t.Errorf("two-point pair = %d,%d,%v", i, j, d)
	}
}

func TestClosestPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("one point should panic")
		}
	}()
	ClosestPair([]Point{{X: 1, Y: 1}})
}

func TestClosestPairMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(300)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		}
		_, _, d := ClosestPair(pts)
		_, _, want := bruteClosest(pts)
		if math.Abs(d-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): distance %v, brute %v", trial, n, d, want)
		}
	}
}

func TestClosestPairDuplicates(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 1, Y: 1}}
	_, _, d := ClosestPair(pts)
	if d != 0 {
		t.Errorf("duplicate distance = %v, want 0", d)
	}
}

func BenchmarkClosestPair2000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]Point, 2000)
	for i := range pts {
		pts[i] = Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClosestPair(pts)
	}
}

package geom

import (
	"fmt"
	"math"
)

// Disk is a closed disk: the set of points within distance R of Center.
// In DECOR a sensor's coverage region is a Disk with R = rs and its
// communication region a Disk with R = rc.
type Disk struct {
	Center Point
	R      float64
}

// DiskAt is shorthand for Disk{Point{x, y}, r}.
func DiskAt(x, y, r float64) Disk { return Disk{Point{x, y}, r} }

// Area returns the area of d.
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// Contains reports whether p lies in the closed disk.
func (d Disk) Contains(p Point) bool { return d.Center.Dist2(p) <= d.R*d.R }

// ContainsDisk reports whether the closed disk e lies entirely inside d.
func (d Disk) ContainsDisk(e Disk) bool {
	return d.Center.Dist(e.Center)+e.R <= d.R+1e-12
}

// Intersects reports whether the two closed disks share at least one point.
func (d Disk) Intersects(e Disk) bool {
	s := d.R + e.R
	return d.Center.Dist2(e.Center) <= s*s
}

// IntersectsRect reports whether the closed disk intersects the rectangle.
func (d Disk) IntersectsRect(r Rect) bool {
	return r.DistToPoint(d.Center) <= d.R
}

// Bounds returns the axis-aligned bounding box of d.
func (d Disk) Bounds() Rect {
	return Rect{
		Min: Point{d.Center.X - d.R, d.Center.Y - d.R},
		Max: Point{d.Center.X + d.R, d.Center.Y + d.R},
	}
}

// PointAt returns the boundary point of d at angle theta (radians).
func (d Disk) PointAt(theta float64) Point {
	return Point{d.Center.X + d.R*math.Cos(theta), d.Center.Y + d.R*math.Sin(theta)}
}

// String implements fmt.Stringer.
func (d Disk) String() string { return fmt.Sprintf("disk(%s, r=%.3f)", d.Center, d.R) }

// LensArea returns the area of the intersection of two disks.
func LensArea(a, b Disk) float64 {
	d := a.Center.Dist(b.Center)
	if d >= a.R+b.R {
		return 0
	}
	if d <= math.Abs(a.R-b.R) {
		r := math.Min(a.R, b.R)
		return math.Pi * r * r
	}
	// Standard circular-lens formula.
	r1, r2 := a.R, b.R
	d2 := d * d
	alpha := math.Acos(clamp((d2+r1*r1-r2*r2)/(2*d*r1), -1, 1))
	beta := math.Acos(clamp((d2+r2*r2-r1*r1)/(2*d*r2), -1, 1))
	return r1*r1*(alpha-math.Sin(2*alpha)/2) + r2*r2*(beta-math.Sin(2*beta)/2)
}

// IntersectionArea returns the exact area of d ∩ r. It is used to convert
// the point-sampled coverage fraction into an analytic one (tests validate
// the low-discrepancy approximation against it).
//
// The computation reduces the problem to the signed "quarter-plane" area
// A(X, Y) of the region {x <= X, y <= Y} inside the disk translated to the
// origin, combined by inclusion–exclusion over the rectangle corners.
func (d Disk) IntersectionArea(r Rect) float64 {
	if r.Empty() || d.R <= 0 {
		return 0
	}
	// Translate so the disk is centered at the origin.
	x1, y1 := r.Min.X-d.Center.X, r.Min.Y-d.Center.Y
	x2, y2 := r.Max.X-d.Center.X, r.Max.Y-d.Center.Y
	R := d.R
	a := quarterPlaneArea(x2, y2, R) - quarterPlaneArea(x1, y2, R) -
		quarterPlaneArea(x2, y1, R) + quarterPlaneArea(x1, y1, R)
	if a < 0 {
		a = 0
	}
	max := math.Min(r.Area(), d.Area())
	if a > max {
		a = max
	}
	return a
}

// quarterPlaneArea returns the area of {(x, y): x <= X, y <= Y} ∩ disk of
// radius R centered at the origin.
func quarterPlaneArea(X, Y, R float64) float64 {
	if X <= -R || Y <= -R {
		return 0
	}
	if X >= R && Y >= R {
		return math.Pi * R * R
	}
	// Area under the constraint x <= X within the disk, further clipped by
	// y <= Y. Decompose: area(x<=X, y<=Y) =
	//   area(y<=Y) - area(x>X, y<=Y).
	// area(x>X, y<=Y) is a circular region bounded by a vertical and a
	// horizontal chord; integrate analytically.
	return halfPlaneArea(Y, R) - cornerArea(X, Y, R)
}

// halfPlaneArea returns the area of {y <= Y} ∩ disk radius R at origin.
func halfPlaneArea(Y, R float64) float64 {
	if Y <= -R {
		return 0
	}
	if Y >= R {
		return math.Pi * R * R
	}
	// Area of circular segment below the chord y = Y.
	// Integral form: R^2*acos(-Y/R) + Y*sqrt(R^2-Y^2)... derive:
	// area(y<=Y) = ∫ over y from -R to Y of 2*sqrt(R²-y²) dy
	//            = [y*sqrt(R²-y²) + R²*asin(y/R)] from -R to Y
	return Y*math.Sqrt(R*R-Y*Y) + R*R*math.Asin(clamp(Y/R, -1, 1)) + math.Pi*R*R/2
}

// cornerArea returns the area of {x > X, y <= Y} ∩ disk radius R at origin.
func cornerArea(X, Y, R float64) float64 {
	if X >= R || Y <= -R {
		return 0
	}
	if X <= -R {
		return halfPlaneArea(Y, R)
	}
	// Integrate over x from max(X,-R) to R the vertical extent of the disk
	// clipped to y <= Y: min(Y, +sqrt(R²-x²)) - (-sqrt(R²-x²)), when
	// positive.
	// Split at the x where sqrt(R²-x²) == |Y|.
	lo := math.Max(X, -R)
	if Y >= R {
		// Full half-disk strip to the right of X.
		return stripArea(lo, R, R)
	}
	if Y >= 0 {
		// For |x| <= xc the circle top is above Y (clip to Y); beyond xc
		// the full chord applies.
		xc := math.Sqrt(R*R - Y*Y)
		area := 0.0
		// Region with clipping (|x| < xc): height = Y + sqrt(R²-x²).
		cliplo, cliphi := lo, xc
		if cliplo < -xc {
			cliplo = -xc
		}
		if cliplo < cliphi {
			area += Y*(cliphi-cliplo) + halfChordIntegral(cliplo, cliphi, R)
		}
		// Right cap beyond xc: full vertical chord 2*sqrt(R²-x²).
		caplo := math.Max(lo, xc)
		if caplo < R {
			area += 2 * halfChordIntegral(caplo, R, R)
		}
		// Left cap (x in [lo, -xc)) exists only if lo < -xc: full chord too.
		if lo < -xc {
			area += 2 * halfChordIntegral(lo, -xc, R)
		}
		return area
	}
	// Y < 0: region is the sliver below y = Y and right of x = X.
	// Height = Y + sqrt(R²-x²) where positive, i.e. |x| <= sqrt(R²-Y²).
	xc := math.Sqrt(R*R - Y*Y)
	a := math.Max(lo, -xc)
	b := xc
	if a >= b {
		return 0
	}
	return Y*(b-a) + halfChordIntegral(a, b, R)
}

// stripArea returns the area of the disk (radius R at origin) between
// vertical lines x = a and x = b.
func stripArea(a, b, R float64) float64 {
	a = clamp(a, -R, R)
	b = clamp(b, -R, R)
	if a >= b {
		return 0
	}
	return 2 * halfChordIntegral(a, b, R)
}

// halfChordIntegral returns ∫_a^b sqrt(R²-x²) dx for -R <= a <= b <= R.
func halfChordIntegral(a, b, R float64) float64 {
	f := func(x float64) float64 {
		x = clamp(x, -R, R)
		return 0.5 * (x*math.Sqrt(R*R-x*x) + R*R*math.Asin(clamp(x/R, -1, 1)))
	}
	return f(b) - f(a)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package protocol

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
	"decor/internal/sim"
)

func voronoiWorld(t *testing.T, k, initial int, seed uint64) *VoronoiWorld {
	t.Helper()
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(seed)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	eng := sim.NewEngine(0.05)
	return NewVoronoiWorld(m, 8, eng, 1.0)
}

func TestVoronoiEventDrivenFullCoverage(t *testing.T) {
	for _, k := range []int{1, 3} {
		w := voronoiWorld(t, k, 50, 1)
		RunVoronoiDeployment(w)
		if !w.M.FullyCovered() {
			t.Fatalf("k=%d: not fully covered", k)
		}
		if len(w.PlacementLog) == 0 || w.MessagesSent == 0 {
			t.Fatalf("k=%d: placements %d, messages %d", k, len(w.PlacementLog), w.MessagesSent)
		}
	}
}

func TestVoronoiEventDrivenBootstraps(t *testing.T) {
	w := voronoiWorld(t, 1, 0, 1)
	seeds := RunVoronoiDeployment(w)
	if !w.M.FullyCovered() {
		t.Fatal("bootstrap failed")
	}
	if seeds == 0 {
		t.Error("expected base-station seeds on an empty field")
	}
}

func TestVoronoiEventDrivenDeterministic(t *testing.T) {
	run := func() (int, int) {
		w := voronoiWorld(t, 2, 40, 9)
		RunVoronoiDeployment(w)
		return len(w.PlacementLog), w.MessagesSent
	}
	p1, m1 := run()
	p2, m2 := run()
	if p1 != p2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", p1, m1, p2, m2)
	}
}

func TestVoronoiNodesRetire(t *testing.T) {
	w := voronoiWorld(t, 2, 50, 3)
	RunVoronoiDeployment(w)
	w.Eng.Run(sim.Inf)
	// After full coverage and drain, every node must either be done or
	// have no believed deficits left.
	for id, n := range w.Nodes() {
		if len(n.ownedDeficient()) != 0 {
			t.Errorf("node %d still believes deficits exist", id)
		}
	}
}

func TestVoronoiBeliefUnderTruth(t *testing.T) {
	w := voronoiWorld(t, 2, 50, 5)
	RunVoronoiDeployment(w)
	// Belief counts must never exceed ground truth.
	for _, n := range w.Nodes() {
		for i := 0; i < w.M.NumPoints(); i++ {
			p := w.M.Point(i)
			if n.pos.Dist2(p) > w.Rc*w.Rc {
				continue
			}
			if n.believedCount(p) > w.M.Count(i) {
				t.Fatalf("node %d overcounts point %d: %d > %d",
					n.id, i, n.believedCount(p), w.M.Count(i))
			}
		}
	}
}

func TestVoronoiEventDrivenSameRegimeAsRoundBased(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	mRound := coverage.New(field, pts, 4, 2)
	r := rng.New(5)
	for id := 0; id < 50; id++ {
		mRound.AddSensor(id, r.PointInRect(field))
	}
	resRound := (core.VoronoiDECOR{Rc: 8}).Deploy(mRound, rng.New(6), core.Options{})

	w := voronoiWorld(t, 2, 50, 5)
	RunVoronoiDeployment(w)

	placedEvent := len(w.PlacementLog)
	placedRound := resRound.NumPlaced()
	if placedEvent < placedRound/2 || placedEvent > placedRound*2 {
		t.Errorf("placed: event %d vs round %d — different regimes", placedEvent, placedRound)
	}
}

func TestVoronoiWorldValidation(t *testing.T) {
	field := geom.Square(10)
	m := coverage.New(field, nil, 4, 1)
	for _, bad := range []func(){
		func() { NewVoronoiWorld(m, 8, sim.NewEngine(0), 0) },
		func() { NewVoronoiWorld(m, 1, sim.NewEngine(0), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

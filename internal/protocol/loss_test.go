package protocol

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/sim"
	"decor/internal/sim/simtest"
)

// Failure-detection robustness under radio loss (the paper's §2.1
// acknowledges packet loss; monitoring each point with k sensors is its
// mitigation — here we check the detector itself).

// buildLossyCluster wires n mutually-reachable nodes on a lossy engine
// (shared setup from simtest, same as the sim-level loss suite).
func buildLossyCluster(n int, cfg Config, loss float64) (*sim.Engine, []*Node) {
	net := network.New(geom.Square(100))
	eng := simtest.NewLossyEngine(0.01, loss, 99)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		net.Add(i, geom.Pt(50+float64(i), 50), 4, 20)
		nodes[i] = NewNode(i, net, cfg)
	}
	for i, nd := range nodes {
		eng.Register(i, nd)
	}
	return eng, nodes
}

// With a short timeout (2 missed beats) and 30% loss, false suspicions
// are likely; with a generous multiplier they vanish. This pins the
// classic accuracy/latency trade-off of timeout-based detectors.
func TestFalseSuspicionsVsTimeoutMult(t *testing.T) {
	const loss = 0.3
	falseAt := func(mult int) int {
		eng, nodes := buildLossyCluster(4, Config{Tc: 1, TimeoutMult: mult, Cell: -1}, loss)
		eng.Run(300)
		total := 0
		for _, nd := range nodes {
			total += len(nd.Suspects())
		}
		return total
	}
	aggressive := falseAt(2)
	patient := falseAt(8)
	if patient > 0 {
		t.Errorf("generous timeout still produced %d false suspicions", patient)
	}
	if aggressive == 0 {
		t.Log("note: aggressive timeout produced no false suspicions this seed")
	}
	if aggressive < patient {
		t.Errorf("aggressive (%d) should not be cleaner than patient (%d)", aggressive, patient)
	}
}

// Real failures are still detected under loss — loss delays detection
// but cannot mask a dead node forever.
func TestTrueFailureDetectedUnderLoss(t *testing.T) {
	cfg := Config{Tc: 1, TimeoutMult: 6, Cell: -1}
	eng, nodes := buildLossyCluster(3, cfg, 0.3)
	eng.Run(20)
	eng.Kill(1)
	eng.Run(100)
	for _, observer := range []int{0, 2} {
		sus := nodes[observer].Suspects()
		found := false
		for _, s := range sus {
			if s == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d failed to detect the dead node under loss (suspects %v)",
				observer, sus)
		}
	}
	if st := eng.Stats(); st.Lost == 0 {
		t.Error("loss rate had no effect — test not exercising the lossy path")
	}
}

// Suspicions caused by loss self-heal when a heartbeat finally gets
// through.
func TestSuspicionRecoversOnHeartbeat(t *testing.T) {
	cfg := Config{Tc: 1, TimeoutMult: 2, Cell: -1}
	eng, nodes := buildLossyCluster(2, cfg, 0.45)
	eng.Run(400)
	// With 45% loss and timeout 2, both false suspicion and recovery
	// events should have occurred; at the end, whatever the current
	// state, the DetectedAt map must be consistent with suspects.
	for i, nd := range nodes {
		sus := nd.Suspects()
		for _, s := range sus {
			if _, ok := nd.DetectedAt[s]; !ok {
				t.Errorf("node %d suspects %d without a detection time", i, s)
			}
		}
		for peer := range nd.DetectedAt {
			found := false
			for _, s := range sus {
				if s == peer {
					found = true
				}
			}
			if !found {
				t.Errorf("node %d has stale DetectedAt for %d", i, peer)
			}
		}
	}
}

package protocol

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
	"decor/internal/sim"
)

// drain kills every node and runs the queue dry, so every in-flight
// heartbeat delivery resolves (dropped at a dead actor still releases
// its pool reference) and the pools reach true quiescence.
func drain(eng *sim.Engine, nodes []*Node) {
	for _, nd := range nodes {
		eng.Kill(nd.ID())
	}
	eng.Run(sim.Inf)
}

// TestPoolNoLeakAtQuiescence: after the queue drains, every heartbeat
// box has been released back to its pool — outstanding is exactly zero
// for every node, under clean delivery AND under loss.
func TestPoolNoLeakAtQuiescence(t *testing.T) {
	for _, loss := range []float64{0, 0.4} {
		eng, _, nodes := buildCluster(6, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
		eng.SetLossRate(loss, 99)
		eng.Run(40)
		drain(eng, nodes)
		if n := eng.PendingMessages(); n != 0 {
			t.Fatalf("loss=%v: %d messages still pending after drain", loss, n)
		}
		for _, nd := range nodes {
			if nd.pool.outstanding != 0 {
				t.Errorf("loss=%v: node %d leaked %d heartbeat boxes",
					loss, nd.ID(), nd.pool.outstanding)
			}
		}
	}
}

// TestPoolRefcountUnderDuplication: with every message duplicated, the
// engine retains one extra reference per duplicate and releases each
// delivery independently — no over-release panic, no leak, and the
// message books still balance.
func TestPoolRefcountUnderDuplication(t *testing.T) {
	eng, _, nodes := buildCluster(6, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	eng.SetLossRate(0.25, 7)
	eng.SetFaults(sim.FaultPlan{
		Seed:      11,
		DupProb:   1,
		DelayProb: 0.5,
		DelayMax:  0.4,
		Until:     1000,
	})
	eng.Run(40)
	drain(eng, nodes)
	for _, nd := range nodes {
		if nd.pool.outstanding != 0 {
			t.Errorf("node %d leaked %d boxes under DupProb=1", nd.ID(), nd.pool.outstanding)
		}
	}
	st := eng.Stats()
	if st.Duplicated == 0 {
		t.Fatal("DupProb=1 produced no duplicates — the retain path was never exercised")
	}
	if got := st.Delivered + st.Dropped + st.Lost + st.PartitionDropped; got != st.Sent+st.Duplicated {
		t.Errorf("books unbalanced: delivered+dropped+lost+partition=%d, sent+dup=%d", got, st.Sent+st.Duplicated)
	}
}

// TestPoolPoisonCatchesAliasing: released boxes are overwritten with a
// sentinel, so a receiver that retained a pooled payload past OnMessage
// would read garbage. The protocol copies during OnMessage, so a
// poisoned run's ledger must be byte-equal to a clean run's — and free
// of the sentinel.
func TestPoolPoisonCatchesAliasing(t *testing.T) {
	run := func(poison bool) []*Node {
		eng, _, nodes := buildCluster(5, Config{Tc: 1, TimeoutMult: 3, Cell: 3, EpochLen: 10})
		for _, nd := range nodes {
			nd.pool.poison = poison
		}
		eng.SetFaults(sim.FaultPlan{Seed: 5, DupProb: 0.5, Until: 1000})
		eng.Run(40)
		return nodes
	}
	clean, poisoned := run(false), run(true)
	for i := range poisoned {
		for _, p := range poisoned[i].peers {
			if p.cell == poisonedCell {
				t.Fatalf("node %d ledger aliases a released heartbeat box", i)
			}
		}
		for j := range clean {
			if i == j {
				continue
			}
			cp, _ := clean[i].PeerPos(j)
			pp, ok := poisoned[i].PeerPos(j)
			if !ok || cp != pp {
				t.Errorf("node %d position for %d diverged under poisoning: %v vs %v", i, j, cp, pp)
			}
		}
	}
}

// selfhealSteadyState builds a deployed self-healing field and runs it
// past its start-up transient, returning the engine at heartbeat
// steady state.
func selfhealSteadyState() (*MonitoredField, *sim.Engine) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, 2)
	r := rng.New(1)
	for id := 0; id < 40; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	(core.Centralized{}).Deploy(m, rng.New(2), core.Options{})
	eng := sim.NewEngine(0.01)
	f := NewMonitoredField(m, eng, 5, 10, 3)
	f.Start()
	eng.Run(100) // warm-up: ledgers built, scratch buffers sized
	return f, eng
}

// TestSelfhealRoundAllocations pins the alloc purge: a steady-state
// heartbeat/detection round over the whole monitored field must not
// allocate. The bound is exact (0), not a ratio — the flattened ledgers
// and shared counts scratch leave nothing to allocate, and any
// regression (a map rebuild, a fresh survey slice) fails immediately.
func TestSelfhealRoundAllocations(t *testing.T) {
	f, eng := selfhealSteadyState()
	next := eng.Now()
	avg := testing.AllocsPerRun(20, func() {
		next += f.Tc
		eng.Run(next)
	})
	if avg > 0 {
		t.Errorf("steady-state selfheal round allocates %.1f times, want 0", avg)
	}
}

// TestHeartbeatRoundAllocations pins the pooled-heartbeat path: a
// steady-state protocol round (broadcast + delivery + timeout sweep)
// across a warm cluster reuses pooled boxes and scratch buffers and
// must not allocate.
func TestHeartbeatRoundAllocations(t *testing.T) {
	eng, _, _ := buildCluster(8, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	eng.Run(50) // warm-up: pools populated, peer ledgers complete
	next := eng.Now()
	avg := testing.AllocsPerRun(20, func() {
		next++
		eng.Run(next)
	})
	if avg > 0 {
		t.Errorf("steady-state heartbeat round allocates %.1f times, want 0", avg)
	}
}

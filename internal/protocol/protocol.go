// Package protocol implements the node-level behaviours the paper assumes
// from the systems literature, on top of the internal/sim event engine:
//
//   - periodic meta-information (position) exchange with period Tc
//     (paper §3.2: "neighboring nodes periodically exchange
//     meta-information about their positions, with a period Tc"),
//   - failure detection by missed heartbeats ("once a node stops
//     receiving such messages from one of its neighbors, this indicates
//     that the neighbor has failed") — with no clock synchronization
//     required, also per §3.2,
//   - rotating leader election within a grid cell (§3.1: "a random
//     selection of leaders and a rotation mechanism ... so that the
//     energy dissipation ... gets spread across all nodes in the cell"),
//   - placement notification broadcast to the 1-hop neighborhood, the
//     message the round-based core model accounts for.
package protocol

import (
	"sort"

	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/obs"
	"decor/internal/sim"
)

// Package-level instruments on the process-wide registry. Counters are
// atomic, so concurrent engines in parallel tests may share them safely.
var (
	obsHeartbeats       = obs.Default().Counter(obs.ProtoHeartbeats)
	obsPlacementsOut    = obs.Default().Counter(obs.ProtoPlacementsAnnounced)
	obsPlacementsIn     = obs.Default().Counter(obs.ProtoPlacementsReceived)
	obsFailuresDetected = obs.Default().Counter(obs.ProtoFailuresDetected)
	obsLeaderChanges    = obs.Default().Counter(obs.ProtoLeaderChanges)
)

// Message kinds exchanged by Node actors.
const (
	MsgHeartbeat = "heartbeat"
	MsgPlacement = "placement"

	timerHeartbeat = "hb"
	timerCheck     = "check"
)

// HeartbeatPayload carries the periodic meta-information.
type HeartbeatPayload struct {
	Pos  geom.Point
	Cell int // grid cell the sender believes it belongs to (-1 if unused)
}

// PlacementPayload announces a newly deployed sensor.
type PlacementPayload struct {
	NewID int
	Pos   geom.Point
}

// Config tunes the protocol timers.
type Config struct {
	// Tc is the heartbeat period (paper §3.2).
	Tc sim.Time
	// TimeoutMult declares a neighbor failed after TimeoutMult
	// consecutive missed heartbeats.
	TimeoutMult int
	// Cell is this node's grid cell for leader election, or -1.
	Cell int
	// EpochLen is the leader-rotation period; 0 disables rotation (the
	// lowest alive ID stays leader).
	EpochLen sim.Time
}

func (c Config) timeout() sim.Time { return c.Tc * sim.Time(c.TimeoutMult) }

// peerState is one entry of a node's flattened neighbor ledger: the
// last-heard heartbeat time, the peer's announced position and cell, and
// the suspicion flag — the former four per-peer maps in one slice row.
type peerState struct {
	id        int
	lastHeard sim.Time
	pos       geom.Point
	cell      int
	suspected bool
}

// Node is the actor implementing the DECOR support protocols. Create with
// NewNode and register on a sim.Engine.
type Node struct {
	id  int
	net *network.Network
	cfg Config

	// peers is the heartbeat/failure-detection ledger, ascending by peer
	// ID: heartbeat rounds and timeout sweeps iterate it in place.
	peers []peerState
	// DetectedAt records when each failed neighbor was declared dead —
	// the observable failure-detection latency.
	DetectedAt map[int]sim.Time
	// Placements records every placement notification received.
	Placements []PlacementPayload

	// lastLeader is the previous Leader() verdict, to count rotations
	// (-1 until the first query).
	lastLeader int

	// pool recycles heartbeat payload boxes (see pool.go); nbScratch is
	// the neighbor buffer reused across broadcast rounds.
	pool      hbPool
	nbScratch []int
}

// NewNode creates a protocol actor for the sensor with the given ID in
// net. The node's neighbors are resolved from the network topology at
// send time, so failures and additions take effect immediately.
func NewNode(id int, net *network.Network, cfg Config) *Node {
	if cfg.Tc <= 0 {
		panic("protocol: Tc must be positive")
	}
	if cfg.TimeoutMult < 2 {
		panic("protocol: TimeoutMult must be at least 2")
	}
	return &Node{
		id:         id,
		net:        net,
		cfg:        cfg,
		DetectedAt: map[int]sim.Time{},
		lastLeader: -1,
	}
}

// peer returns the ledger row for id, inserting a zero row in ID order
// if the peer is new.
func (n *Node) peer(id int) *peerState {
	i := sort.Search(len(n.peers), func(i int) bool { return n.peers[i].id >= id })
	if i < len(n.peers) && n.peers[i].id == id {
		return &n.peers[i]
	}
	n.peers = append(n.peers, peerState{})
	copy(n.peers[i+1:], n.peers[i:])
	n.peers[i] = peerState{id: id, cell: -1}
	return &n.peers[i]
}

// OnStart implements sim.Actor.
func (n *Node) OnStart(ctx *sim.Context) {
	// Deterministic de-phasing: stagger heartbeats by ID so simultaneous
	// wakeups don't depend on queue ordering. No synchronization between
	// nodes is assumed or needed.
	phase := sim.Time(float64(n.id%17) / 17.0 * float64(n.cfg.Tc))
	ctx.SetTimer(phase, timerHeartbeat)
	ctx.SetTimer(n.cfg.timeout(), timerCheck)
}

// OnTimer implements sim.Actor.
func (n *Node) OnTimer(ctx *sim.Context, tag string) {
	switch tag {
	case timerHeartbeat:
		sp := obs.StartSpan(obs.ProtoHeartbeatRoundSeconds)
		n.nbScratch = n.net.NeighborsInto(n.id, n.nbScratch)
		if len(n.nbScratch) > 0 {
			// One pooled box per round, shared by every neighbor: refs
			// counts the scheduled deliveries (Send retains extras for
			// fault-injected duplicates) and the engine releases each as
			// it resolves, returning the box to the pool.
			hb := n.pool.get()
			hb.HeartbeatPayload = HeartbeatPayload{Pos: n.pos(), Cell: n.cfg.Cell}
			hb.refs = len(n.nbScratch)
			for _, peer := range n.nbScratch {
				ctx.Send(peer, MsgHeartbeat, hb)
			}
		}
		sp.End()
		obsHeartbeats.Inc()
		ctx.SetTimer(n.cfg.Tc, timerHeartbeat)
	case timerCheck:
		now := ctx.Now()
		for i := range n.peers {
			p := &n.peers[i]
			if p.suspected {
				continue
			}
			if now-p.lastHeard > n.cfg.timeout() {
				p.suspected = true
				n.DetectedAt[p.id] = now
				obsFailuresDetected.Inc()
			}
		}
		ctx.SetTimer(n.cfg.Tc, timerCheck)
	}
}

// OnMessage implements sim.Actor.
func (n *Node) OnMessage(ctx *sim.Context, msg sim.Message) {
	switch msg.Kind {
	case MsgHeartbeat:
		var hb HeartbeatPayload
		switch v := msg.Payload.(type) {
		case *hbMsg:
			hb = v.HeartbeatPayload // copy the fields, never the box
		case HeartbeatPayload:
			hb = v
		default:
			return
		}
		p := n.peer(msg.From)
		p.lastHeard = ctx.Now()
		p.pos = hb.Pos
		p.cell = hb.Cell
		if p.suspected {
			// The peer recovered (or detection was premature): clear it.
			p.suspected = false
			delete(n.DetectedAt, msg.From)
		}
	case MsgPlacement:
		if pl, ok := msg.Payload.(PlacementPayload); ok {
			n.Placements = append(n.Placements, pl)
			obsPlacementsIn.Inc()
		}
	}
}

// AnnouncePlacement broadcasts a placement notification to all current
// 1-hop neighbors (the message the core model's Fig. 10 accounting
// counts).
func (n *Node) AnnouncePlacement(ctx *sim.Context, pl PlacementPayload) {
	n.broadcast(ctx, MsgPlacement, pl)
	obsPlacementsOut.Inc()
}

// ID returns the node's sensor ID.
func (n *Node) ID() int { return n.id }

// Cell returns the grid cell this node elects leaders in (-1 if unused).
func (n *Node) Cell() int { return n.cfg.Cell }

// Suspects returns the neighbors this node currently believes failed,
// ascending.
func (n *Node) Suspects() []int {
	out := make([]int, 0, len(n.peers))
	for i := range n.peers {
		if n.peers[i].suspected {
			out = append(out, n.peers[i].id)
		}
	}
	return out // peers is sorted, so the filtered view already is
}

// KnownAliveInCell returns this node's local view of the alive members of
// its cell (itself plus unsuspected heard peers claiming the same cell),
// ascending. This is the electorate for leader election.
func (n *Node) KnownAliveInCell() []int {
	out := []int{n.id}
	for i := range n.peers {
		p := &n.peers[i]
		if p.cell == n.cfg.Cell && !p.suspected {
			out = append(out, p.id)
		}
	}
	sort.Ints(out) // peers is sorted, but n.id must land in order too
	return out
}

// Leader returns this node's current view of its cell's leader: the
// rotation walks the sorted alive membership by epoch, spreading the
// leader's energy cost across the cell (paper §3.1). With EpochLen 0 the
// leader is simply the lowest alive ID.
func (n *Node) Leader(now sim.Time) int {
	sp := obs.StartSpan(obs.ProtoLeaderElectionSeconds)
	leader := n.electLeader(now)
	sp.End()
	if n.lastLeader >= 0 && leader != n.lastLeader {
		obsLeaderChanges.Inc()
	}
	n.lastLeader = leader
	return leader
}

func (n *Node) electLeader(now sim.Time) int {
	members := n.KnownAliveInCell()
	if len(members) == 0 {
		return n.id
	}
	if n.cfg.EpochLen <= 0 {
		return members[0]
	}
	epoch := int(now / n.cfg.EpochLen)
	return members[epoch%len(members)]
}

// PeerPos returns the last position heard from peer.
func (n *Node) PeerPos(peer int) (geom.Point, bool) {
	i := sort.Search(len(n.peers), func(i int) bool { return n.peers[i].id >= peer })
	if i < len(n.peers) && n.peers[i].id == peer {
		return n.peers[i].pos, true
	}
	return geom.Point{}, false
}

func (n *Node) pos() geom.Point {
	if nd := n.net.Node(n.id); nd != nil {
		return nd.Pos
	}
	return geom.Point{}
}

// broadcast sends payload (boxed once, at the call) to every current
// 1-hop neighbor, reusing the node's neighbor scratch buffer.
func (n *Node) broadcast(ctx *sim.Context, kind string, payload any) {
	n.nbScratch = n.net.NeighborsInto(n.id, n.nbScratch)
	for _, peer := range n.nbScratch {
		ctx.Send(peer, kind, payload)
	}
}

// Package protocol implements the node-level behaviours the paper assumes
// from the systems literature, on top of the internal/sim event engine:
//
//   - periodic meta-information (position) exchange with period Tc
//     (paper §3.2: "neighboring nodes periodically exchange
//     meta-information about their positions, with a period Tc"),
//   - failure detection by missed heartbeats ("once a node stops
//     receiving such messages from one of its neighbors, this indicates
//     that the neighbor has failed") — with no clock synchronization
//     required, also per §3.2,
//   - rotating leader election within a grid cell (§3.1: "a random
//     selection of leaders and a rotation mechanism ... so that the
//     energy dissipation ... gets spread across all nodes in the cell"),
//   - placement notification broadcast to the 1-hop neighborhood, the
//     message the round-based core model accounts for.
package protocol

import (
	"sort"

	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/obs"
	"decor/internal/sim"
)

// Package-level instruments on the process-wide registry. Counters are
// atomic, so concurrent engines in parallel tests may share them safely.
var (
	obsHeartbeats       = obs.Default().Counter(obs.ProtoHeartbeats)
	obsPlacementsOut    = obs.Default().Counter(obs.ProtoPlacementsAnnounced)
	obsPlacementsIn     = obs.Default().Counter(obs.ProtoPlacementsReceived)
	obsFailuresDetected = obs.Default().Counter(obs.ProtoFailuresDetected)
	obsLeaderChanges    = obs.Default().Counter(obs.ProtoLeaderChanges)
)

// Message kinds exchanged by Node actors.
const (
	MsgHeartbeat = "heartbeat"
	MsgPlacement = "placement"

	timerHeartbeat = "hb"
	timerCheck     = "check"
)

// HeartbeatPayload carries the periodic meta-information.
type HeartbeatPayload struct {
	Pos  geom.Point
	Cell int // grid cell the sender believes it belongs to (-1 if unused)
}

// PlacementPayload announces a newly deployed sensor.
type PlacementPayload struct {
	NewID int
	Pos   geom.Point
}

// Config tunes the protocol timers.
type Config struct {
	// Tc is the heartbeat period (paper §3.2).
	Tc sim.Time
	// TimeoutMult declares a neighbor failed after TimeoutMult
	// consecutive missed heartbeats.
	TimeoutMult int
	// Cell is this node's grid cell for leader election, or -1.
	Cell int
	// EpochLen is the leader-rotation period; 0 disables rotation (the
	// lowest alive ID stays leader).
	EpochLen sim.Time
}

func (c Config) timeout() sim.Time { return c.Tc * sim.Time(c.TimeoutMult) }

// Node is the actor implementing the DECOR support protocols. Create with
// NewNode and register on a sim.Engine.
type Node struct {
	id  int
	net *network.Network
	cfg Config

	lastHeard map[int]sim.Time
	peerPos   map[int]geom.Point
	peerCell  map[int]int
	suspected map[int]bool
	// DetectedAt records when each failed neighbor was declared dead —
	// the observable failure-detection latency.
	DetectedAt map[int]sim.Time
	// Placements records every placement notification received.
	Placements []PlacementPayload

	// lastLeader is the previous Leader() verdict, to count rotations
	// (-1 until the first query).
	lastLeader int
}

// NewNode creates a protocol actor for the sensor with the given ID in
// net. The node's neighbors are resolved from the network topology at
// send time, so failures and additions take effect immediately.
func NewNode(id int, net *network.Network, cfg Config) *Node {
	if cfg.Tc <= 0 {
		panic("protocol: Tc must be positive")
	}
	if cfg.TimeoutMult < 2 {
		panic("protocol: TimeoutMult must be at least 2")
	}
	return &Node{
		id:         id,
		net:        net,
		cfg:        cfg,
		lastHeard:  map[int]sim.Time{},
		peerPos:    map[int]geom.Point{},
		peerCell:   map[int]int{},
		suspected:  map[int]bool{},
		DetectedAt: map[int]sim.Time{},
		lastLeader: -1,
	}
}

// OnStart implements sim.Actor.
func (n *Node) OnStart(ctx *sim.Context) {
	// Deterministic de-phasing: stagger heartbeats by ID so simultaneous
	// wakeups don't depend on queue ordering. No synchronization between
	// nodes is assumed or needed.
	phase := sim.Time(float64(n.id%17) / 17.0 * float64(n.cfg.Tc))
	ctx.SetTimer(phase, timerHeartbeat)
	ctx.SetTimer(n.cfg.timeout(), timerCheck)
}

// OnTimer implements sim.Actor.
func (n *Node) OnTimer(ctx *sim.Context, tag string) {
	switch tag {
	case timerHeartbeat:
		sp := obs.StartSpan(obs.ProtoHeartbeatRoundSeconds)
		n.broadcast(ctx, MsgHeartbeat, HeartbeatPayload{Pos: n.pos(), Cell: n.cfg.Cell})
		sp.End()
		obsHeartbeats.Inc()
		ctx.SetTimer(n.cfg.Tc, timerHeartbeat)
	case timerCheck:
		now := ctx.Now()
		for peer, last := range n.lastHeard {
			if n.suspected[peer] {
				continue
			}
			if now-last > n.cfg.timeout() {
				n.suspected[peer] = true
				n.DetectedAt[peer] = now
				obsFailuresDetected.Inc()
			}
		}
		ctx.SetTimer(n.cfg.Tc, timerCheck)
	}
}

// OnMessage implements sim.Actor.
func (n *Node) OnMessage(ctx *sim.Context, msg sim.Message) {
	switch msg.Kind {
	case MsgHeartbeat:
		hb, ok := msg.Payload.(HeartbeatPayload)
		if !ok {
			return
		}
		n.lastHeard[msg.From] = ctx.Now()
		n.peerPos[msg.From] = hb.Pos
		n.peerCell[msg.From] = hb.Cell
		if n.suspected[msg.From] {
			// The peer recovered (or detection was premature): clear it.
			delete(n.suspected, msg.From)
			delete(n.DetectedAt, msg.From)
		}
	case MsgPlacement:
		if pl, ok := msg.Payload.(PlacementPayload); ok {
			n.Placements = append(n.Placements, pl)
			obsPlacementsIn.Inc()
		}
	}
}

// AnnouncePlacement broadcasts a placement notification to all current
// 1-hop neighbors (the message the core model's Fig. 10 accounting
// counts).
func (n *Node) AnnouncePlacement(ctx *sim.Context, pl PlacementPayload) {
	n.broadcast(ctx, MsgPlacement, pl)
	obsPlacementsOut.Inc()
}

// ID returns the node's sensor ID.
func (n *Node) ID() int { return n.id }

// Cell returns the grid cell this node elects leaders in (-1 if unused).
func (n *Node) Cell() int { return n.cfg.Cell }

// Suspects returns the neighbors this node currently believes failed,
// ascending.
func (n *Node) Suspects() []int {
	out := make([]int, 0, len(n.suspected))
	for id := range n.suspected {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// KnownAliveInCell returns this node's local view of the alive members of
// its cell (itself plus unsuspected heard peers claiming the same cell),
// ascending. This is the electorate for leader election.
func (n *Node) KnownAliveInCell() []int {
	out := []int{n.id}
	for peer, cell := range n.peerCell {
		if cell == n.cfg.Cell && !n.suspected[peer] {
			out = append(out, peer)
		}
	}
	sort.Ints(out)
	return out
}

// Leader returns this node's current view of its cell's leader: the
// rotation walks the sorted alive membership by epoch, spreading the
// leader's energy cost across the cell (paper §3.1). With EpochLen 0 the
// leader is simply the lowest alive ID.
func (n *Node) Leader(now sim.Time) int {
	sp := obs.StartSpan(obs.ProtoLeaderElectionSeconds)
	leader := n.electLeader(now)
	sp.End()
	if n.lastLeader >= 0 && leader != n.lastLeader {
		obsLeaderChanges.Inc()
	}
	n.lastLeader = leader
	return leader
}

func (n *Node) electLeader(now sim.Time) int {
	members := n.KnownAliveInCell()
	if len(members) == 0 {
		return n.id
	}
	if n.cfg.EpochLen <= 0 {
		return members[0]
	}
	epoch := int(now / n.cfg.EpochLen)
	return members[epoch%len(members)]
}

// PeerPos returns the last position heard from peer.
func (n *Node) PeerPos(peer int) (geom.Point, bool) {
	p, ok := n.peerPos[peer]
	return p, ok
}

func (n *Node) pos() geom.Point {
	if nd := n.net.Node(n.id); nd != nil {
		return nd.Pos
	}
	return geom.Point{}
}

func (n *Node) broadcast(ctx *sim.Context, kind string, payload any) {
	for _, peer := range n.net.NeighborsOf(n.id) {
		ctx.Send(peer, kind, payload)
	}
}

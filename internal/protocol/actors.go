package protocol

// Engine actor-ID layout. Each protocol family lives in its own ID bank
// so a single engine can host leaders, sensor nodes, and monitors at
// once, and so external tooling (the chaos harness, invariant watchdog)
// can aim crashes and partitions at a specific protocol role without
// reaching into package internals.

// LeaderActor returns the engine actor ID of the grid-DECOR leader for a
// cell.
func LeaderActor(cell int) int { return leaderActorBase + cell }

// SensorActor returns the engine actor ID of the Voronoi-DECOR node for
// a sensor ID.
func SensorActor(id int) int { return sensorActorBase + id }

// MonitorActor returns the engine actor ID of the self-healing monitor
// for a cell.
func MonitorActor(cell int) int { return monitorBase + cell }

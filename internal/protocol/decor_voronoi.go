package protocol

import (
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/sim"
)

// Event-driven Voronoi DECOR: every sensor is an actor that owns the
// sample points nearest to it among the sensors it KNOWS (Definition 1
// evaluated over local knowledge), places new sensors at its most
// beneficial deficient owned point, and announces placements by radio to
// whoever is physically within rc. Two nodes that cannot hear each other
// (distance in (rc, 2rc]) can both believe they own the same point —
// exactly the coordination gap that costs the distributed algorithm
// extra sensors.

const sensorActorBase = 1 << 21

// VoronoiWorld is the shared physical ground truth for the event-driven
// Voronoi scheme.
type VoronoiWorld struct {
	M      *coverage.Map
	Rc     float64
	Eng    *sim.Engine
	Period sim.Time

	nextSensor int
	nodes      map[int]*VoronoiNode // by sensor ID
	// PlacementLog records every placed sensor in order.
	PlacementLog []PlacementPayload
	// MessagesSent counts placement announcements (one per physical
	// receiver).
	MessagesSent int
}

// NewVoronoiWorld prepares an event-driven Voronoi run.
func NewVoronoiWorld(m *coverage.Map, rc float64, eng *sim.Engine, period sim.Time) *VoronoiWorld {
	if period <= 0 {
		panic("protocol: period must be positive")
	}
	if rc < m.Rs() {
		panic("protocol: rc must be at least rs")
	}
	w := &VoronoiWorld{M: m, Rc: rc, Eng: eng, Period: period, nodes: map[int]*VoronoiNode{}}
	for _, id := range m.SensorIDs() {
		if id >= w.nextSensor {
			w.nextSensor = id + 1
		}
	}
	return w
}

// Start spawns an actor per existing sensor.
func (w *VoronoiWorld) Start() {
	for _, id := range w.M.SensorIDs() {
		w.spawnNode(id)
	}
}

// Nodes returns the live actor table by sensor ID.
func (w *VoronoiWorld) Nodes() map[int]*VoronoiNode { return w.nodes }

func (w *VoronoiWorld) spawnNode(id int) *VoronoiNode {
	n := &VoronoiNode{world: w, id: id}
	w.nodes[id] = n
	w.Eng.Register(sensorActorBase+id, n)
	return n
}

// placeSensor actuates a new sensor and returns its ID.
func (w *VoronoiWorld) placeSensor(pos geom.Point) int {
	id := w.nextSensor
	w.nextSensor++
	w.M.AddSensor(id, pos)
	w.PlacementLog = append(w.PlacementLog, PlacementPayload{NewID: id, Pos: pos})
	return id
}

// Seed drops a base-station sensor at the lowest deficient sample point
// and spawns its actor, informing physical neighbors.
func (w *VoronoiWorld) Seed() bool {
	unc := w.M.UncoveredPoints()
	if len(unc) == 0 {
		return false
	}
	pos := w.M.Point(unc[0])
	id := w.placeSensor(pos)
	for _, nid := range w.M.SensorsInBall(pos, w.Rc) {
		if n := w.nodes[nid]; n != nil {
			n.learn(id, pos)
		}
	}
	w.spawnNode(id)
	return true
}

// knownSensor is one row of a node's knowledge ledger.
type knownSensor struct {
	id  int
	pos geom.Point
}

// VoronoiNode is one sensor actor.
type VoronoiNode struct {
	world *VoronoiWorld
	id    int
	pos   geom.Point
	// known holds every sensor this node has heard of (including
	// itself), ascending by ID: the basis for its local Voronoi cell.
	// Flat and sorted, so owner() iterates it directly instead of
	// materializing and sorting a key slice per query.
	known []knownSensor
	done  bool
	// Placed counts sensors this node deployed.
	Placed int
	// defScratch is the owned-deficient result buffer and ballScratch
	// the sensor-ball buffer, both reused across wake-ups.
	defScratch  []int
	ballScratch []int
}

// OnStart implements sim.Actor.
func (n *VoronoiNode) OnStart(ctx *sim.Context) {
	w := n.world
	n.pos, _ = w.M.SensorPos(n.id)
	n.known = n.known[:0]
	// Initial HELLO exchange: learn every sensor currently within rc.
	// SensorsInBall is ascending and includes this node itself (its own
	// position is in the map), so the ledger starts sorted; learn keeps
	// the self row in the unlikely case the ball misses it.
	n.ballScratch = w.M.AppendSensorsInBall(n.ballScratch[:0], n.pos, w.Rc)
	for _, nid := range n.ballScratch {
		p, _ := w.M.SensorPos(nid)
		n.known = append(n.known, knownSensor{id: nid, pos: p})
	}
	n.learn(n.id, n.pos)
	phase := sim.Time(float64(n.id%23)/23.0) * w.Period
	ctx.SetTimer(phase, timerPlace)
}

// learn folds a sensor into this node's knowledge, keeping the ledger
// sorted by ID.
func (n *VoronoiNode) learn(id int, pos geom.Point) {
	// New knowledge can only reduce work; done remains valid, except
	// that a node that believed itself finished stays finished (its
	// owned deficits can only have shrunk).
	i := sort.Search(len(n.known), func(i int) bool { return n.known[i].id >= id })
	if i < len(n.known) && n.known[i].id == id {
		n.known[i].pos = pos
		return
	}
	n.known = append(n.known, knownSensor{})
	copy(n.known[i+1:], n.known[i:])
	n.known[i] = knownSensor{id: id, pos: pos}
}

// OnMessage implements sim.Actor.
func (n *VoronoiNode) OnMessage(_ *sim.Context, msg sim.Message) {
	if msg.Kind != MsgPlacement {
		return
	}
	if pl, ok := msg.Payload.(PlacementPayload); ok {
		n.learn(pl.NewID, pl.Pos)
	}
}

// ownedDeficient returns this node's believed-deficient owned points,
// ascending, in a buffer reused across wake-ups: points within rc whose
// nearest KNOWN sensor is this node and whose believed coverage is below
// k.
func (n *VoronoiNode) ownedDeficient() []int {
	w := n.world
	out := n.defScratch[:0]
	w.M.VisitPointsInBall(n.pos, w.Rc, func(i int, p geom.Point) bool {
		if n.owner(p) != n.id {
			return true
		}
		if n.believedCount(p) < w.M.K() {
			out = append(out, i)
		}
		return true
	})
	sort.Ints(out)
	n.defScratch = out
	return out
}

// owner returns the known sensor nearest to p (ties to lowest ID),
// restricted to known sensors within rc of p. The ledger is already
// sorted ascending, so the scan resolves ties identically to the former
// sorted-key iteration without building one.
func (n *VoronoiNode) owner(p geom.Point) int {
	w := n.world
	best, bestD := -1, w.Rc*w.Rc
	for i := range n.known {
		if d := n.known[i].pos.Dist2(p); d < bestD || (d == bestD && best < 0) {
			best, bestD = n.known[i].id, d
		}
	}
	return best
}

// believedCount counts known sensors covering p.
func (n *VoronoiNode) believedCount(p geom.Point) int {
	rs := n.world.M.Rs()
	c := 0
	for i := range n.known {
		if n.known[i].pos.Dist2(p) <= rs*rs {
			c++
		}
	}
	return c
}

// OnTimer implements sim.Actor: one placement attempt per wake-up.
func (n *VoronoiNode) OnTimer(ctx *sim.Context, tag string) {
	if tag != timerPlace || n.done {
		return
	}
	w := n.world
	deficient := n.ownedDeficient()
	if len(deficient) == 0 {
		n.done = true
		return
	}
	// Greedy benefit over believed counts, restricted to the node's
	// knowledge horizon (points within rc).
	bestIdx, best := -1, 0
	for _, i := range deficient {
		b := w.M.BenefitWith(w.M.Point(i), func(j int) int {
			pj := w.M.Point(j)
			if n.pos.Dist2(pj) > w.Rc*w.Rc {
				return -1
			}
			return n.believedCount(pj)
		})
		if b > best {
			best, bestIdx = b, i
		}
	}
	if bestIdx < 0 {
		n.done = true
		return
	}
	pos := w.M.Point(bestIdx)
	id := w.placeSensor(pos)
	n.learn(id, pos)
	n.Placed++
	// Radio announcement: everyone physically within rc of the SENDER
	// hears it (the new sensor's actor spawns already knowing its
	// surroundings). The payload is boxed once for the whole broadcast.
	var announce any = PlacementPayload{NewID: id, Pos: pos}
	n.ballScratch = w.M.AppendSensorsInBall(n.ballScratch[:0], n.pos, w.Rc)
	for _, nid := range n.ballScratch {
		if nid == n.id || nid == id {
			continue
		}
		if w.nodes[nid] != nil {
			ctx.Send(sensorActorBase+nid, MsgPlacement, announce)
			w.MessagesSent++
		}
	}
	w.spawnNode(id)
	ctx.SetTimer(w.Period, timerPlace)
}

// Done reports whether this node has retired.
func (n *VoronoiNode) Done() bool { return n.done }

// RunVoronoiDeployment drives the event-driven Voronoi scheme to full
// coverage, seeding stalled orphan regions; returns the seed count.
func RunVoronoiDeployment(w *VoronoiWorld) int {
	w.Start()
	seeds := 0
	for !w.M.FullyCovered() {
		w.Eng.Run(sim.Inf)
		if w.M.FullyCovered() {
			break
		}
		if !w.Seed() {
			break
		}
		seeds++
	}
	return seeds
}

package protocol

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
	"decor/internal/sim"
)

func monitoredField(t *testing.T, k int) (*MonitoredField, *sim.Engine) {
	t.Helper()
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(1)
	for id := 0; id < 40; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	(core.Centralized{}).Deploy(m, rng.New(2), core.Options{})
	eng := sim.NewEngine(0.01)
	f := NewMonitoredField(m, eng, 5, 10, 3)
	f.Start()
	return f, eng
}

func TestSelfHealingAfterAreaFailure(t *testing.T) {
	f, eng := monitoredField(t, 2)
	eng.Run(50) // steady state: no repairs on a healthy field
	if len(f.Repairs) != 0 {
		t.Fatalf("healthy field produced %d repairs", len(f.Repairs))
	}

	// Disaster at t=50: a disc of sensors stops heartbeating.
	disk := geom.DiskAt(25, 25, 10)
	dead := (failure.Area{Disk: disk}).Select(f.M, nil)
	if len(dead) == 0 {
		t.Fatal("no sensors in the disaster disc")
	}
	for _, id := range dead {
		f.Fail(id)
	}
	failTime := eng.Now()

	// The field heals itself: detection via missed heartbeats, then
	// greedy replacement — no external calls.
	eng.Run(failTime + 100*f.Tc)
	if !f.M.FullyCovered() {
		t.Fatalf("field not healed: %.1f%% covered", 100*f.M.CoverageFrac(2))
	}
	if len(f.Repairs) == 0 {
		t.Fatal("healing placed no sensors")
	}
	// Detection latency: first repair must come after the heartbeat
	// timeout, not instantly. The last heard beat can predate the
	// failure by up to one Tc, so the earliest legitimate detection is
	// failTime + (TimeoutMult−1)·Tc.
	first := f.Repairs[0].Time
	if first < failTime+f.Tc*sim.Time(f.TimeoutMult-1) {
		t.Errorf("first repair at %v, before the detection timeout window", first)
	}
	// Repairs land near the disaster.
	for _, rep := range f.Repairs {
		if rep.Pos.Dist(disk.Center) > disk.R+2*f.M.Rs()+f.CellSize {
			t.Errorf("repair at %v far from the disaster", rep.Pos)
		}
	}
}

func TestSelfHealingRepeatedFailures(t *testing.T) {
	f, eng := monitoredField(t, 1)
	for wave := 0; wave < 3; wave++ {
		eng.Run(eng.Now() + 100)
		if !f.M.FullyCovered() {
			t.Fatalf("wave %d: field not whole before failure", wave)
		}
		// Kill a few random sensors each wave.
		ids := (failure.Random{Fraction: 0.05}).Select(f.M, rng.New(uint64(wave+10)))
		for _, id := range ids {
			f.Fail(id)
		}
		eng.Run(eng.Now() + 100*f.Tc)
		if !f.M.FullyCovered() {
			t.Fatalf("wave %d: healing failed", wave)
		}
	}
	if len(f.Repairs) == 0 {
		t.Fatal("no repairs across three failure waves")
	}
}

func TestMonitoredFieldValidation(t *testing.T) {
	m := coverage.New(geom.Square(10), nil, 4, 1)
	eng := sim.NewEngine(0)
	for _, bad := range []func(){
		func() { NewMonitoredField(m, eng, 5, 0, 3) },
		func() { NewMonitoredField(m, eng, 5, 1, 1) },
		func() { NewMonitoredField(m, eng, 0, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestFailUnknownSensorIsNoop(t *testing.T) {
	f, eng := monitoredField(t, 1)
	f.Fail(999999)
	eng.Run(eng.Now() + 100)
	if len(f.Repairs) != 0 {
		t.Error("phantom failure triggered repairs")
	}
}

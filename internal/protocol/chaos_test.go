// Property and fuzz driver for the DECOR protocols under fault
// injection. Lives in package protocol_test so it can use the
// internal/chaos harness (which imports protocol) without a cycle.
package protocol_test

import (
	"encoding/json"
	"strings"
	"testing"

	"decor/internal/chaos"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/network"
	"decor/internal/protocol"
	"decor/internal/sim"
	"decor/internal/sim/invariant"
)

// The headline property: for ANY seeded fault plan inside the severity
// bound (sim.FaultPlan.Bounded, DESIGN.md §10), both deployment
// protocols converge to full k-coverage with every invariant green.
func TestDeploymentConvergesUnderBoundedFaults(t *testing.T) {
	for _, arch := range []string{chaos.ArchGrid, chaos.ArchVoronoi} {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(100); seed < 108; seed++ {
				sc := chaos.DefaultScenario(arch, seed)
				if !sc.Plan.Bounded() {
					t.Fatalf("seed %d: harness produced an unbounded plan", seed)
				}
				v := chaos.Run(sc)
				if !v.Converged {
					t.Errorf("seed %d: deployment did not reach k-coverage", seed)
				}
				for _, viol := range v.Violations {
					t.Errorf("seed %d: %s", seed, viol)
				}
			}
		})
	}
}

// Identical seeds must reproduce byte-identical traces — not just equal
// hashes: this drives the same grid scenario twice at the engine level
// and compares the raw trace text.
func TestChaosTraceByteIdentical(t *testing.T) {
	runTrace := func() string {
		field := geom.Square(30)
		pts := lowdisc.Halton{}.Points(80, field)
		m := coverage.New(field, pts, 4, 2)
		eng := sim.NewEngine(0.05)
		var b strings.Builder
		eng.SetTrace(func(tm sim.Time, s string) {
			// Full precision: any divergence in event times shows up.
			b.WriteString(s)
			b.WriteByte(' ')
			json.NewEncoder(&b).Encode(tm)
		})
		eng.SetLossRate(0.15, 99)
		eng.SetFaults(sim.FaultPlan{
			Seed:      99,
			DelayProb: 0.3, DelayMax: 2,
			DupProb: 0.2,
			Burst:   &sim.GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8},
			Until:   30,
			Crashes: []sim.Crash{
				{Actor: protocol.LeaderActor(3), At: 4, RestartAt: 9},
				{Actor: protocol.LeaderActor(10), At: 6},
			},
			Partitions: []sim.Partition{{
				From: 2, Until: 12,
				A: []int{protocol.LeaderActor(0), protocol.LeaderActor(1)},
				B: []int{protocol.LeaderActor(6), protocol.LeaderActor(7)},
			}},
		})
		w := protocol.NewWorld(m, 5, eng, 1)
		protocol.RunDeployment(w)
		return b.String()
	}
	t1, t2 := runTrace(), runTrace()
	if t1 != t2 {
		t.Fatal("two runs of the identical chaos scenario produced different traces")
	}
	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
}

// Leader election under chaos: a two-cell heartbeat cluster survives a
// permanent leader crash plus a healed partition, and after the fault
// horizon plus detection timeout every live node agrees on one live
// leader per cell.
func TestLeaderAgreementUnderCrashAndPartition(t *testing.T) {
	field := geom.Square(100)
	net := network.New(field)
	eng := sim.NewEngine(0.05)
	cfg := func(cell int) protocol.Config {
		return protocol.Config{Tc: 1, TimeoutMult: 3, Cell: cell}
	}
	// Cell 0 members 1..3 clustered bottom-left, cell 1 members 4..6
	// top-right; rc keeps each cell mutually reachable and the cells
	// mutually silent.
	positions := map[int]geom.Point{
		1: geom.Pt(5, 5), 2: geom.Pt(8, 5), 3: geom.Pt(5, 8),
		4: geom.Pt(90, 90), 5: geom.Pt(93, 90), 6: geom.Pt(90, 93),
	}
	var views []invariant.LeaderView
	for id := 1; id <= 6; id++ {
		cell := 0
		if id >= 4 {
			cell = 1
		}
		net.Add(id, positions[id], 4, 10)
		n := protocol.NewNode(id, net, cfg(cell))
		views = append(views, n)
	}
	eng.SetFaults(sim.FaultPlan{
		Seed: 5,
		// Node 1 (the standing leader of cell 0) dies for good at t=5;
		// nodes 2 and 3 are partitioned from each other during [3, 10).
		Crashes:    []sim.Crash{{Actor: 1, At: 5}},
		Partitions: []sim.Partition{{From: 3, Until: 10, A: []int{2}, B: []int{3}}},
	})
	for id := 1; id <= 6; id++ {
		eng.Register(id, views[id-1].(*protocol.Node))
	}
	eng.Run(40)

	ident := func(id int) int { return id }
	check := invariant.LeaderAgreement(eng, views, ident)
	if vs := check(eng.Now()); len(vs) != 0 {
		t.Fatalf("post-quiescence leader disagreement: %v", vs)
	}
	// Cell 0 must have failed over from the crashed node 1 to node 2.
	for _, v := range views[1:3] {
		if got := v.Leader(eng.Now()); got != 2 {
			t.Errorf("node %d elects %d, want failover to 2", v.ID(), got)
		}
	}
	if eng.Stats().PartitionDropped == 0 {
		t.Error("partition cut no heartbeats; scenario too weak")
	}
	if eng.Stats().Crashes != 1 {
		t.Errorf("crashes = %d, want 1", eng.Stats().Crashes)
	}
}

// A deliberately broken run — self-healing disabled by permanently
// crashing every monitor — must be caught by the invariant checker with
// the offending virtual time and actor. This pins the regression-
// detection path end to end through the harness.
func TestChaosHarnessCatchesDisabledSelfHealing(t *testing.T) {
	sc := chaos.DefaultScenario(chaos.ArchSelfheal, 21)
	sc.Plan = sim.FaultPlan{Seed: 21}
	for _, id := range sc.ActorUniverse() {
		sc.Plan.Crashes = append(sc.Plan.Crashes, sim.Crash{Actor: id, At: 0.25})
	}
	v := chaos.Run(sc)
	if v.OK {
		t.Fatal("disabled self-healing produced a clean verdict")
	}
	viol := (*invariant.Violation)(nil)
	for i := range v.Violations {
		if v.Violations[i].Invariant == invariant.KCoverageName {
			viol = &v.Violations[i]
		}
	}
	if viol == nil {
		t.Fatalf("no k-coverage violation recorded: %+v", v.Violations)
	}
	if viol.Time <= 0 {
		t.Errorf("violation lacks a virtual time: %+v", viol)
	}
	if viol.Actor < protocol.MonitorActor(0) {
		t.Errorf("violation does not name the responsible monitor: %+v", viol)
	}
}

// FuzzProtocolUnderFaults decodes arbitrary bytes into a bounded chaos
// scenario and requires a clean, reproducible verdict. The seed corpus
// runs on every `go test`; `go test -fuzz=FuzzProtocolUnderFaults
// ./internal/protocol` explores further.
func FuzzProtocolUnderFaults(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 13, 120, 80, 60, 1, 30, 100, 5, 240})
	f.Add([]byte{0, 9, 9, 9, 9, 9, 9, 9, 9, 255, 255, 127, 1, 255, 255, 255, 255, 3, 40, 1, 10, 1, 1, 90, 70})
	f.Add([]byte{1, 1, 2, 3, 4, 5, 6, 7, 8, 60, 10, 110, 0, 2, 17, 0, 0, 1, 33, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := chaos.DecodeScenario(data)
		if !sc.Plan.Bounded() {
			t.Fatalf("decoder produced an unbounded plan: %+v", sc.Plan)
		}
		v1 := chaos.Run(sc)
		if !v1.Converged {
			t.Errorf("arch %s seed %d: no convergence under bounded plan", sc.Arch, sc.Seed)
		}
		for _, viol := range v1.Violations {
			t.Errorf("arch %s seed %d: %s", sc.Arch, sc.Seed, viol)
		}
		v2 := chaos.Run(sc)
		if v1.TraceHash != v2.TraceHash || v1.TraceLines != v2.TraceLines {
			t.Errorf("arch %s seed %d: replay diverged (%s/%d vs %s/%d)",
				sc.Arch, sc.Seed, v1.TraceHash, v1.TraceLines, v2.TraceHash, v2.TraceLines)
		}
	})
}

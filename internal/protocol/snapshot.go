package protocol

import (
	"fmt"
	"sort"

	"decor/internal/geom"
	"decor/internal/sim"
	"decor/internal/snap"
)

// Protocol-layer snapshots. Each world serializes exactly the state a
// fresh OnStart could NOT rebuild: message-learned belief (leader count
// vectors, Voronoi knowledge ledgers, heartbeat ledgers) and protocol
// outputs (placement logs, repair records). Geometry-derived state (a
// leader's own point list, membership masks) is rebuilt from the
// restored coverage map, which the caller restores first. Restored
// actors are attached with Engine.RegisterRestored — no OnStart, their
// timers live in the restored event queue.
//
// The distinction matters for determinism: a leader's counts slice is
// its latency-limited belief about coverage. Rebuilding it through
// OnStart's ground-truth survey would hand the restored leader knowledge
// its original never had, and the runs would diverge.

// Queue-payload codecs. Codes are part of the snapshot format: never
// renumber, only append.
func init() {
	sim.RegisterPayloadCodec(1, HeartbeatPayload{}, sim.PayloadCodec{
		Encode: func(w *snap.Writer, p any) { encodeHeartbeat(w, p.(HeartbeatPayload)) },
		Decode: func(r *snap.Reader) any { return decodeHeartbeat(r) },
	})
	sim.RegisterPayloadCodec(2, PlacementPayload{}, sim.PayloadCodec{
		Encode: func(w *snap.Writer, p any) { encodePlacement(w, p.(PlacementPayload)) },
		Decode: func(r *snap.Reader) any { return decodePlacement(r) },
	})
	// A pooled heartbeat box encodes as its payload fields and decodes as
	// a plain HeartbeatPayload value: Node.OnMessage accepts both forms
	// identically, and the restored run simply has no pool reference to
	// release — the original's box was released when its engine died with
	// the snapshot.
	sim.RegisterPayloadCodec(3, (*hbMsg)(nil), sim.PayloadCodec{
		Encode: func(w *snap.Writer, p any) { encodeHeartbeat(w, p.(*hbMsg).HeartbeatPayload) },
		Decode: func(r *snap.Reader) any { return decodeHeartbeat(r) },
	})
}

func encodeHeartbeat(w *snap.Writer, p HeartbeatPayload) {
	w.F64(p.Pos.X)
	w.F64(p.Pos.Y)
	w.Int(p.Cell)
}

func decodeHeartbeat(r *snap.Reader) HeartbeatPayload {
	var p HeartbeatPayload
	p.Pos.X = r.F64()
	p.Pos.Y = r.F64()
	p.Cell = r.Int()
	return p
}

func encodePlacement(w *snap.Writer, p PlacementPayload) {
	w.Int(p.NewID)
	w.F64(p.Pos.X)
	w.F64(p.Pos.Y)
}

func decodePlacement(r *snap.Reader) PlacementPayload {
	var p PlacementPayload
	p.NewID = r.Int()
	p.Pos.X = r.F64()
	p.Pos.Y = r.F64()
	return p
}

func encodePlacementLog(w *snap.Writer, log []PlacementPayload) {
	w.Int(len(log))
	for _, pl := range log {
		encodePlacement(w, pl)
	}
}

func decodePlacementLog(r *snap.Reader) []PlacementPayload {
	var log []PlacementPayload
	for n := r.CollectionLen(); n > 0; n-- {
		log = append(log, decodePlacement(r))
	}
	return log
}

// EncodeState appends the grid world's protocol state to w.
func (w *World) EncodeState(sw *snap.Writer) {
	sw.Int(w.nextSensor)
	sw.Int(w.MessagesSent)
	encodePlacementLog(sw, w.PlacementLog)

	cells := make([]int, 0, len(w.leaders))
	for c := range w.leaders {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	sw.Int(len(cells))
	for _, c := range cells {
		l := w.leaders[c]
		sw.Int(c)
		sw.Bool(l.done)
		sw.Int(l.Placed)
		// The belief vector, full length: what this leader has heard, not
		// what the map knows.
		sw.Int(len(l.counts))
		for _, v := range l.counts {
			sw.Int(v)
		}
	}
}

// RestoreState rebuilds leaders on a world created by NewWorld over the
// restored coverage map, attaching them to the engine without OnStart.
func (w *World) RestoreState(sr *snap.Reader) error {
	w.nextSensor = sr.Int()
	w.MessagesSent = sr.Int()
	w.PlacementLog = decodePlacementLog(sr)

	np := w.M.NumPoints()
	for n := sr.CollectionLen(); n > 0; n-- {
		cell := sr.Int()
		l := &CellLeader{world: w, cell: cell}
		l.done = sr.Bool()
		l.Placed = sr.Int()
		nc := sr.CollectionLen()
		l.counts = make([]int, 0, nc)
		for i := 0; i < nc; i++ {
			l.counts = append(l.counts, sr.Int())
		}
		if sr.Err() != nil {
			return sr.Err()
		}
		if _, dup := w.leaders[cell]; dup {
			return fmt.Errorf("%w: duplicate leader cell %d", snap.ErrMalformed, cell)
		}
		if nc != np {
			return fmt.Errorf("%w: leader %d belief length %d over %d points", snap.ErrMalformed, cell, nc, np)
		}
		// Geometry-derived state, same construction as OnStart.
		l.own = make([]bool, np)
		for i := 0; i < np; i++ {
			if w.Part.CellIndex(w.M.Point(i)) == cell {
				l.pts = append(l.pts, i)
				l.own[i] = true
			}
		}
		w.leaders[cell] = l
		w.Eng.RegisterRestored(leaderActorBase+cell, l)
	}
	return sr.Err()
}

// EncodeState appends the Voronoi world's protocol state to w.
func (w *VoronoiWorld) EncodeState(sw *snap.Writer) {
	sw.Int(w.nextSensor)
	sw.Int(w.MessagesSent)
	encodePlacementLog(sw, w.PlacementLog)

	ids := make([]int, 0, len(w.nodes))
	for id := range w.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sw.Int(len(ids))
	for _, id := range ids {
		n := w.nodes[id]
		sw.Int(id)
		sw.Bool(n.done)
		sw.Int(n.Placed)
		// The knowledge ledger: which sensors this node has HEARD of.
		sw.Int(len(n.known))
		for _, k := range n.known {
			sw.Int(k.id)
			sw.F64(k.pos.X)
			sw.F64(k.pos.Y)
		}
	}
}

// RestoreState rebuilds nodes on a world created by NewVoronoiWorld over
// the restored coverage map.
func (w *VoronoiWorld) RestoreState(sr *snap.Reader) error {
	w.nextSensor = sr.Int()
	w.MessagesSent = sr.Int()
	w.PlacementLog = decodePlacementLog(sr)

	for n := sr.CollectionLen(); n > 0; n-- {
		id := sr.Int()
		vn := &VoronoiNode{world: w, id: id}
		vn.done = sr.Bool()
		vn.Placed = sr.Int()
		nk := sr.CollectionLen()
		vn.known = make([]knownSensor, 0, nk)
		for i := 0; i < nk; i++ {
			var k knownSensor
			k.id = sr.Int()
			k.pos.X = sr.F64()
			k.pos.Y = sr.F64()
			vn.known = append(vn.known, k)
		}
		if sr.Err() != nil {
			return sr.Err()
		}
		if _, dup := w.nodes[id]; dup {
			return fmt.Errorf("%w: duplicate node id %d", snap.ErrMalformed, id)
		}
		vn.pos, _ = w.M.SensorPos(id)
		w.nodes[id] = vn
		w.Eng.RegisterRestored(sensorActorBase+id, vn)
	}
	return sr.Err()
}

// EncodeState appends the self-healing field's protocol state to w.
func (f *MonitoredField) EncodeState(sw *snap.Writer) {
	sw.Int(f.nextID)
	sw.Int(len(f.Repairs))
	for _, rec := range f.Repairs {
		sw.F64(float64(rec.Time))
		sw.Int(rec.ID)
		sw.F64(rec.Pos.X)
		sw.F64(rec.Pos.Y)
		sw.Int(rec.Cell)
	}

	cells := make([]int, 0, len(f.monitors))
	for c := range f.monitors {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	sw.Int(len(cells))
	for _, c := range cells {
		mon := f.monitors[c]
		sw.Int(c)
		// The heartbeat ledger: last-heard times and ground-truth silence
		// flags a fresh survey could not know.
		sw.Int(len(mon.members))
		for _, mb := range mon.members {
			sw.Int(mb.id)
			sw.F64(float64(mb.last))
			sw.Bool(mb.failed)
		}
	}
}

// RestoreState rebuilds monitors on a field created by NewMonitoredField
// over the restored coverage map.
func (f *MonitoredField) RestoreState(sr *snap.Reader) error {
	f.nextID = sr.Int()
	for n := sr.CollectionLen(); n > 0; n-- {
		var rec RepairRecord
		rec.Time = sim.Time(sr.F64())
		rec.ID = sr.Int()
		rec.Pos = geom.Point{X: sr.F64(), Y: sr.F64()}
		rec.Cell = sr.Int()
		f.Repairs = append(f.Repairs, rec)
	}

	for n := sr.CollectionLen(); n > 0; n-- {
		cell := sr.Int()
		mon := &CellMonitor{field: f, cell: cell}
		nm := sr.CollectionLen()
		mon.members = make([]member, 0, nm)
		for i := 0; i < nm; i++ {
			var mb member
			mb.id = sr.Int()
			mb.last = sim.Time(sr.F64())
			mb.failed = sr.Bool()
			mon.members = append(mon.members, mb)
		}
		if sr.Err() != nil {
			return sr.Err()
		}
		if _, dup := f.monitors[cell]; dup {
			return fmt.Errorf("%w: duplicate monitor cell %d", snap.ErrMalformed, cell)
		}
		for i := 0; i < f.M.NumPoints(); i++ {
			if f.cellOf(f.M.Point(i)) == cell {
				mon.pts = append(mon.pts, i)
			}
		}
		f.monitors[cell] = mon
		f.Eng.RegisterRestored(monitorBase+cell, mon)
	}
	return sr.Err()
}

package protocol

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/sim"
)

// buildCluster wires n sensors in mutual range into an engine.
func buildCluster(n int, cfg Config) (*sim.Engine, *network.Network, []*Node) {
	net := network.New(geom.Square(100))
	eng := sim.NewEngine(0.01)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		net.Add(i, geom.Pt(50+float64(i), 50), 4, 20)
		nodes[i] = NewNode(i, net, cfg)
	}
	for i, nd := range nodes {
		eng.Register(i, nd)
	}
	return eng, net, nodes
}

func TestConfigValidation(t *testing.T) {
	net := network.New(geom.Square(10))
	for _, cfg := range []Config{
		{Tc: 0, TimeoutMult: 3},
		{Tc: 1, TimeoutMult: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cfg %+v should panic", cfg)
				}
			}()
			NewNode(1, net, cfg)
		}()
	}
}

func TestHeartbeatsPropagatePositions(t *testing.T) {
	eng, _, nodes := buildCluster(3, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	eng.Run(5)
	for i, nd := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			p, ok := nd.PeerPos(j)
			if !ok {
				t.Fatalf("node %d never heard node %d", i, j)
			}
			if !p.Eq(geom.Pt(50+float64(j), 50)) {
				t.Errorf("node %d has wrong position for %d: %v", i, j, p)
			}
		}
	}
}

func TestFailureDetectionLatency(t *testing.T) {
	cfg := Config{Tc: 1, TimeoutMult: 3, Cell: -1}
	eng, _, nodes := buildCluster(3, cfg)
	eng.Run(5) // everyone knows everyone
	eng.Kill(1)
	eng.Run(20)
	for _, observer := range []int{0, 2} {
		sus := nodes[observer].Suspects()
		if len(sus) != 1 || sus[0] != 1 {
			t.Fatalf("node %d suspects %v, want [1]", observer, sus)
		}
		det := nodes[observer].DetectedAt[1]
		// Detection must occur within timeout + one check period of the
		// kill at t=5.
		if det < 5 || det > 5+cfg.timeout()+cfg.Tc+1 {
			t.Errorf("node %d detected failure at %v", observer, det)
		}
	}
	// The dead node's stats stop growing: no messages from node 1 after
	// the kill are delivered.
	if eng.Alive(1) {
		t.Error("killed node reported alive")
	}
}

func TestNoFalseSuspicionsWhileHealthy(t *testing.T) {
	eng, _, nodes := buildCluster(4, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	eng.Run(50)
	for i, nd := range nodes {
		if len(nd.Suspects()) != 0 {
			t.Errorf("node %d has false suspicions %v", i, nd.Suspects())
		}
	}
}

func TestLeaderElectionConvergesAndRotates(t *testing.T) {
	cfg := Config{Tc: 1, TimeoutMult: 3, Cell: 7, EpochLen: 10}
	eng, _, nodes := buildCluster(3, cfg)
	eng.Run(5)
	// All nodes agree on the electorate and hence the leader.
	for _, nd := range nodes {
		members := nd.KnownAliveInCell()
		if len(members) != 3 {
			t.Fatalf("electorate = %v", members)
		}
	}
	l0 := nodes[0].Leader(5)
	for i, nd := range nodes {
		if nd.Leader(5) != l0 {
			t.Errorf("node %d disagrees on leader", i)
		}
	}
	// Rotation: across three consecutive epochs all three nodes lead.
	seen := map[int]bool{}
	for _, epoch := range []sim.Time{5, 15, 25} {
		seen[nodes[0].Leader(epoch)] = true
	}
	if len(seen) != 3 {
		t.Errorf("rotation covered %d distinct leaders, want 3", len(seen))
	}
	// EpochLen 0 means stable lowest-ID leader.
	stable := NewNode(9, network.New(geom.Square(10)), Config{Tc: 1, TimeoutMult: 3, Cell: 7})
	if stable.Leader(123) != 9 {
		t.Errorf("solo leader = %d", stable.Leader(123))
	}
}

func TestLeaderReelectionAfterFailure(t *testing.T) {
	cfg := Config{Tc: 1, TimeoutMult: 3, Cell: 1, EpochLen: 0}
	eng, _, nodes := buildCluster(3, cfg)
	eng.Run(5)
	if l := nodes[2].Leader(5); l != 0 {
		t.Fatalf("initial leader = %d, want 0", l)
	}
	eng.Kill(0)
	eng.Run(30)
	for _, observer := range []int{1, 2} {
		if l := nodes[observer].Leader(30); l != 1 {
			t.Errorf("node %d leader after failure = %d, want 1", observer, l)
		}
	}
}

func TestPlacementNotification(t *testing.T) {
	eng, _, nodes := buildCluster(3, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	eng.Run(2)
	// Node 0 announces a placement; both neighbors must hear exactly one.
	// Inject via a timer-less direct call using a context from a custom
	// actor is awkward; instead reuse OnMessage path: announce from
	// OnTimer by wrapping. Simpler: drive via the engine by registering
	// an auxiliary actor that triggers the announcement.
	aux := &announcer{node: nodes[0], pl: PlacementPayload{NewID: 42, Pos: geom.Pt(1, 2)}}
	eng.Register(100, aux)
	eng.Run(10)
	for _, i := range []int{1, 2} {
		if len(nodes[i].Placements) != 1 {
			t.Fatalf("node %d received %d placements", i, len(nodes[i].Placements))
		}
		got := nodes[i].Placements[0]
		if got.NewID != 42 || !got.Pos.Eq(geom.Pt(1, 2)) {
			t.Errorf("node %d placement = %+v", i, got)
		}
	}
	if len(nodes[0].Placements) != 0 {
		t.Error("announcer should not hear its own placement")
	}
}

// announcer triggers an AnnouncePlacement from inside the event loop.
// Note it must send *as* the announcing node; the protocol attaches the
// neighbor resolution to the node's own ID, so we call the node method
// with the aux context only to reach scheduling — the message From will
// be the aux ID, which is irrelevant to the payload assertions above.
type announcer struct {
	node *Node
	pl   PlacementPayload
}

func (a *announcer) OnStart(ctx *sim.Context)                  { ctx.SetTimer(0.5, "go") }
func (a *announcer) OnMessage(ctx *sim.Context, m sim.Message) {}
func (a *announcer) OnTimer(ctx *sim.Context, tag string)      { a.node.AnnouncePlacement(ctx, a.pl) }

func TestHeartbeatMessageVolumeScalesWithNeighbors(t *testing.T) {
	// 2 nodes -> each heartbeat is 1 message; 5 nodes -> 4 messages.
	engSmall, _, _ := buildCluster(2, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	engBig, _, _ := buildCluster(5, Config{Tc: 1, TimeoutMult: 3, Cell: -1})
	engSmall.Run(20)
	engBig.Run(20)
	small := engSmall.Stats().Sent
	big := engBig.Stats().Sent
	// Expected ratio ~ (5*4)/(2*1) = 10.
	if big < 6*small {
		t.Errorf("message volume small=%d big=%d; expected ~10x", small, big)
	}
}

package protocol

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
	"decor/internal/sim"
)

func eventWorld(t *testing.T, k, initial int, seed uint64) *World {
	t.Helper()
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(seed)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	eng := sim.NewEngine(0.05)
	return NewWorld(m, 5, eng, 1.0)
}

func TestEventDrivenReachesFullCoverage(t *testing.T) {
	for _, k := range []int{1, 3} {
		w := eventWorld(t, k, 50, 1)
		seeds := RunDeployment(w)
		if !w.M.FullyCovered() {
			t.Fatalf("k=%d: event-driven DECOR did not finish", k)
		}
		if len(w.PlacementLog) == 0 {
			t.Fatalf("k=%d: no placements", k)
		}
		if seeds != 0 {
			t.Errorf("k=%d: unexpected seeds on a 50-sensor field: %d", k, seeds)
		}
		if w.MessagesSent == 0 {
			t.Errorf("k=%d: no placement notifications sent", k)
		}
	}
}

func TestEventDrivenBootstrapsFromEmpty(t *testing.T) {
	w := eventWorld(t, 1, 0, 1)
	seeds := RunDeployment(w)
	if !w.M.FullyCovered() {
		t.Fatal("empty-field bootstrap failed")
	}
	if seeds == 0 {
		t.Error("expected at least one base-station seed")
	}
}

func TestEventDrivenDeterministic(t *testing.T) {
	run := func() (int, int) {
		w := eventWorld(t, 2, 40, 7)
		RunDeployment(w)
		return len(w.PlacementLog), w.MessagesSent
	}
	p1, m1 := run()
	p2, m2 := run()
	if p1 != p2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", p1, m1, p2, m2)
	}
}

// Leader beliefs must never exceed ground truth (no double counting) and
// must equal it once the event queue drains.
func TestLeaderBeliefConvergesToTruth(t *testing.T) {
	w := eventWorld(t, 2, 50, 3)
	RunDeployment(w)
	w.Eng.Run(sim.Inf) // drain any in-flight notifications
	for cell, l := range w.Leaders() {
		for _, i := range l.pts {
			truth := w.M.Count(i)
			if l.counts[i] > truth {
				t.Fatalf("cell %d: belief %d exceeds truth %d at point %d",
					cell, l.counts[i], truth, i)
			}
			if l.counts[i] != truth {
				t.Fatalf("cell %d: belief %d != truth %d at point %d after drain",
					cell, l.counts[i], truth, i)
			}
		}
		if !l.Done() {
			t.Errorf("cell %d: leader still active after completion", cell)
		}
	}
}

// The asynchronous execution should land in the same cost regime as the
// round-based model: same coverage, node counts within a factor, message
// counts of the same order.
func TestEventDrivenMatchesRoundBasedRegime(t *testing.T) {
	// Round-based.
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	mRound := coverage.New(field, pts, 4, 2)
	r := rng.New(5)
	for id := 0; id < 50; id++ {
		mRound.AddSensor(id, r.PointInRect(field))
	}
	resRound := (core.GridDECOR{CellSize: 5}).Deploy(mRound, rng.New(6), core.Options{})

	// Event-driven on an identical field.
	w := eventWorld(t, 2, 50, 5)
	RunDeployment(w)

	placedRound := resRound.NumPlaced()
	placedEvent := len(w.PlacementLog)
	if placedEvent < placedRound/2 || placedEvent > placedRound*2 {
		t.Errorf("placed: event %d vs round %d — different regimes", placedEvent, placedRound)
	}
	if w.MessagesSent < resRound.Messages/4 || w.MessagesSent > resRound.Messages*4 {
		t.Errorf("messages: event %d vs round %d — different regimes", w.MessagesSent, resRound.Messages)
	}
}

func TestWorldValidation(t *testing.T) {
	field := geom.Square(10)
	m := coverage.New(field, nil, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive period should panic")
		}
	}()
	NewWorld(m, 5, sim.NewEngine(0), 0)
}

func TestSeedOnCoveredFieldIsNoop(t *testing.T) {
	w := eventWorld(t, 1, 0, 1)
	RunDeployment(w)
	if w.Seed() {
		t.Error("Seed on a covered field should report false")
	}
}

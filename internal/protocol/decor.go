package protocol

import (
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/partition"
	"decor/internal/sim"
)

// This file implements the event-driven form of grid-based DECOR: cell
// leaders as sim actors that wake on their own (unsynchronized) timers,
// place sensors based on their current local knowledge, and learn about
// neighboring placements only after message latency. It is the
// asynchronous counterpart of internal/core's round-based model: the
// round model batches staleness into synchronized rounds, this one
// exposes it at message granularity. The integration tests compare the
// two.

const (
	timerPlace = "place"
	// leaderActorBase offsets leader actor IDs away from sensor IDs.
	leaderActorBase = 1 << 20
)

// World is the shared ground truth of an event-driven DECOR run: the
// coverage map (physical reality — which sensors exist where) plus the
// bookkeeping to spawn leaders for newly occupied cells. Actors mutate
// it only from within engine callbacks, so no locking is needed.
type World struct {
	M    *coverage.Map
	Part *partition.Grid
	Eng  *sim.Engine

	// Period is the leader wake-up interval; leaders de-phase by cell
	// index so they never act in lockstep.
	Period sim.Time

	nextSensor int
	leaders    map[int]*CellLeader // by cell
	// PlacementLog records every sensor placed, in placement order.
	PlacementLog []PlacementPayload
	// MessagesSent counts placement notifications (engine stats count
	// everything; this isolates the DECOR protocol traffic).
	MessagesSent int

	// countsBuf is the reusable coverage-snapshot scratch for ground-truth
	// surveys (coverage.Map.CountsInto), so they allocate nothing.
	countsBuf []int
}

// NewWorld prepares an event-driven run over an existing coverage map.
func NewWorld(m *coverage.Map, cellSize float64, eng *sim.Engine, period sim.Time) *World {
	if period <= 0 {
		panic("protocol: period must be positive")
	}
	w := &World{
		M:       m,
		Part:    partition.NewGrid(m.Field(), cellSize),
		Eng:     eng,
		Period:  period,
		leaders: map[int]*CellLeader{},
	}
	w.nextSensor = 0
	for _, id := range m.SensorIDs() {
		if id >= w.nextSensor {
			w.nextSensor = id + 1
		}
	}
	return w
}

// Start spawns a leader for every currently occupied cell.
func (w *World) Start() {
	occupied := map[int]bool{}
	for _, id := range w.M.SensorIDs() {
		p, _ := w.M.SensorPos(id)
		occupied[w.Part.CellIndex(p)] = true
	}
	cells := make([]int, 0, len(occupied))
	for c := range occupied {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		w.spawnLeader(c)
	}
}

// Seed drops a base-station sensor at the lowest-index deficient sample
// point (used by the driver when no leader can reach the remaining
// uncovered region) and spawns a leader for its cell. It reports whether
// anything was seeded.
func (w *World) Seed() bool {
	unc := w.M.UncoveredPoints()
	if len(unc) == 0 {
		return false
	}
	pos := w.M.Point(unc[0])
	id := w.placeSensor(pos)
	cell := w.Part.CellIndex(pos)
	// The base station informs every leader whose cell the new sensor
	// reaches (out of band — it is not a cell leader itself).
	for _, nc := range append(w.Part.Neighbors(cell), cell) {
		if l := w.leaders[nc]; l != nil {
			l.observe(id, pos)
		}
	}
	if w.leaders[cell] == nil {
		w.spawnLeader(cell)
	}
	return true
}

// Leaders returns the spawned leaders indexed by cell.
func (w *World) Leaders() map[int]*CellLeader { return w.leaders }

func (w *World) spawnLeader(cell int) *CellLeader {
	l := &CellLeader{world: w, cell: cell}
	w.leaders[cell] = l
	w.Eng.Register(leaderActorBase+cell, l)
	return l
}

// placeSensor actuates a new sensor in the physical world.
func (w *World) placeSensor(pos geom.Point) int {
	id := w.nextSensor
	w.nextSensor++
	w.M.AddSensor(id, pos)
	w.PlacementLog = append(w.PlacementLog, PlacementPayload{NewID: id, Pos: pos})
	return id
}

// CellLeader is the actor responsible for k-covering one grid cell. Its
// knowledge of its own cell's coverage comes from (a) the sensors it
// observed in its cell at spawn time, (b) its own placements, and (c)
// placement notifications from neighboring leaders — each applied only
// when the message arrives, so concurrent placements are invisible for
// one message latency, exactly the §3.3 consistency model.
type CellLeader struct {
	world *World
	cell  int
	// counts is the leader's belief about its own cell points' coverage,
	// indexed by global point index (flat slice, not a map: belief
	// updates on every observed placement allocate nothing). own is the
	// matching membership mask.
	counts []int
	pts    []int  // own cell sample-point indices
	own    []bool // membership mask over all points
	done   bool
	// Placed counts sensors this leader deployed.
	Placed int
}

// OnStart implements sim.Actor. It may run more than once (chaos
// crash/restart revives an actor through a fresh OnStart), so it rebuilds
// the leader's belief from scratch rather than accumulating.
func (l *CellLeader) OnStart(ctx *sim.Context) {
	w := l.world
	np := w.M.NumPoints()
	if cap(l.counts) < np {
		l.counts = make([]int, np)
		l.own = make([]bool, np)
	}
	l.counts = l.counts[:np]
	l.own = l.own[:np]
	for i := range l.counts {
		l.counts[i] = 0
		l.own[i] = false
	}
	l.pts = l.pts[:0]
	for i := 0; i < np; i++ {
		if w.Part.CellIndex(w.M.Point(i)) == l.cell {
			l.pts = append(l.pts, i)
			l.own[i] = true
		}
	}
	// Initial survey: the leader hears every sensor currently deployed
	// whose disk reaches its cell (the §3.3 initial position exchange).
	w.M.VisitSensors(func(id int, p geom.Point, _ float64) {
		l.observe(id, p)
	})
	// De-phase wake-ups by cell index.
	phase := sim.Time(float64(l.cell%29)/29.0) * w.Period
	ctx.SetTimer(phase, timerPlace)
}

// observe folds one sensor into the leader's belief.
func (l *CellLeader) observe(_ int, pos geom.Point) {
	w := l.world
	rs := w.M.Rs()
	for _, i := range l.pts {
		if w.M.Point(i).Dist2(pos) <= rs*rs {
			l.counts[i]++
		}
	}
}

// OnMessage implements sim.Actor: placement notifications update belief.
func (l *CellLeader) OnMessage(_ *sim.Context, msg sim.Message) {
	if msg.Kind != MsgPlacement {
		return
	}
	if pl, ok := msg.Payload.(PlacementPayload); ok {
		l.observe(pl.NewID, pl.Pos)
		obsPlacementsIn.Inc()
	}
}

// OnTimer implements sim.Actor: one placement attempt per wake-up.
func (l *CellLeader) OnTimer(ctx *sim.Context, tag string) {
	if tag != timerPlace || l.done {
		return
	}
	w := l.world
	if idx, ok := l.bestDeficient(); ok {
		pos := w.M.Point(idx)
		id := w.placeSensor(pos)
		l.observe(id, pos)
		l.Placed++
		l.notifyNeighbors(ctx, l.cell, PlacementPayload{NewID: id, Pos: pos})
		ctx.SetTimer(w.Period, timerPlace)
		return
	}
	// Own cell covered: adopt an empty deficient neighbor, spawning its
	// first sensor and leader. (The leader physically surveys the empty
	// cell before adopting — the paper's "place a new leader in the
	// uncovered cell" rule.)
	for _, nc := range w.Part.Neighbors(l.cell) {
		if w.leaders[nc] != nil {
			continue
		}
		if idx, ok := bestDeficientInCell(w, nc); ok {
			pos := w.M.Point(idx)
			id := w.placeSensor(pos)
			l.Placed++
			// The adopting leader sees its own placement directly (it
			// may spill back into its own cell).
			l.observe(id, pos)
			// Notify BEFORE spawning the new cell's leader: its spawn
			// survey will see this sensor in the world, so it must not
			// also receive the notification (double counting).
			l.notifyNeighbors(ctx, nc, PlacementPayload{NewID: id, Pos: pos})
			w.spawnLeader(nc)
			ctx.SetTimer(w.Period, timerPlace)
			return
		}
	}
	// Nothing left to do: stop waking up. A later neighbor placement
	// cannot create deficits (coverage only grows during deployment).
	l.done = true
}

// Done reports whether the leader has retired.
func (l *CellLeader) Done() bool { return l.done }

// bestDeficient returns the own-cell deficient point with maximal
// benefit under the leader's belief.
func (l *CellLeader) bestDeficient() (int, bool) {
	w := l.world
	k := w.M.K()
	bestIdx, best := -1, 0
	for _, i := range l.pts {
		if l.counts[i] >= k {
			continue
		}
		b := w.M.BenefitWith(w.M.Point(i), func(j int) int {
			if !l.own[j] {
				return -1 // outside the leader's knowledge
			}
			return l.counts[j]
		})
		if b > best {
			best, bestIdx = b, i
		}
	}
	return bestIdx, bestIdx >= 0
}

// bestDeficientInCell surveys a (leaderless) cell against ground truth.
func bestDeficientInCell(w *World, cell int) (int, bool) {
	// One consistent snapshot per survey through the shared scratch
	// buffer — no per-survey allocation.
	w.countsBuf = w.M.CountsInto(w.countsBuf)
	snap := w.countsBuf
	bestIdx, best := -1, 0
	for i := 0; i < w.M.NumPoints(); i++ {
		p := w.M.Point(i)
		if w.Part.CellIndex(p) != cell || snap[i] >= w.M.K() {
			continue
		}
		b := w.M.BenefitWith(p, func(j int) int {
			if w.Part.CellIndex(w.M.Point(j)) != cell {
				return -1
			}
			return snap[j]
		})
		if b > best {
			best, bestIdx = b, i
		}
	}
	return bestIdx, bestIdx >= 0
}

// notifyNeighbors sends the placement to every leader adjacent to the
// cell the sensor landed in whose cell the new sensor's disk overlaps —
// the exact message the paper's Fig. 10 counts. The sending leader's own
// cell is skipped (it observes its placements directly).
func (l *CellLeader) notifyNeighbors(ctx *sim.Context, placedCell int, pl PlacementPayload) {
	w := l.world
	obsPlacementsOut.Inc()
	disk := geom.Disk{Center: pl.Pos, R: w.M.Rs()}
	var boxed any = pl // one boxing for the whole notification fan-out
	for _, nc := range w.Part.Neighbors(placedCell) {
		if nc == l.cell || w.leaders[nc] == nil {
			continue
		}
		if disk.IntersectsRect(w.Part.CellRect(nc)) {
			ctx.Send(leaderActorBase+nc, MsgPlacement, boxed)
			w.MessagesSent++
		}
	}
}

// RunDeployment drives an event-driven DECOR run to completion: spawn
// leaders, process events, and seed unreachable regions whenever the
// engine goes idle with coverage still missing. It returns the number of
// base-station seeds.
func RunDeployment(w *World) int {
	w.Start()
	seeds := 0
	for !w.M.FullyCovered() {
		w.Eng.Run(sim.Inf)
		if w.M.FullyCovered() {
			break
		}
		if !w.Seed() {
			break
		}
		seeds++
	}
	return seeds
}

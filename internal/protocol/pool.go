package protocol

// Pooled heartbeat payloads. A heartbeat broadcast used to box one
// HeartbeatPayload interface value per neighbor per round — the dominant
// steady-state allocation of the protocol layer. Instead, each Node draws
// one *hbMsg from its pool per round, sends the same pointer to every
// neighbor with one reference per scheduled delivery, and the engine
// (sim.Poolable) releases each reference as its delivery resolves; the
// box returns to the free list when the count reaches zero.
//
// The contract this buys is sharp: a receiver may read the payload only
// during OnMessage. After release the same box is reinitialized for a
// future round, so a retained pointer aliases a different heartbeat. The
// pool tests enforce both directions — outstanding boxes return to zero
// at quiescence (no leaks), and released boxes are poisoned in test mode
// so any use-after-release is observable.

// hbMsg is one pooled heartbeat box. refs counts scheduled deliveries;
// the engine Retains for fault-injected duplicates and Releases once per
// resolution. Single-goroutine by the engine contract, so plain ints.
type hbMsg struct {
	HeartbeatPayload
	refs int
	pool *hbPool
}

// Retain implements sim.Poolable.
func (m *hbMsg) Retain() { m.refs++ }

// Release implements sim.Poolable.
func (m *hbMsg) Release() {
	m.refs--
	if m.refs == 0 {
		m.pool.put(m)
	} else if m.refs < 0 {
		panic("protocol: heartbeat payload over-released")
	}
}

// hbPool is a per-node free list of heartbeat boxes with a live-box
// counter — the leak detector the pool tests read.
type hbPool struct {
	free        []*hbMsg
	outstanding int
	// poison, set by tests, overwrites released payloads with a sentinel
	// so a receiver that retained the box past OnMessage sees garbage
	// instead of silently reading a stale (or future) heartbeat.
	poison bool
}

// poisonedCell is the sentinel a poisoned box carries in Cell.
const poisonedCell = -0xdead

func (p *hbPool) get() *hbMsg {
	p.outstanding++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return &hbMsg{pool: p}
}

func (p *hbPool) put(m *hbMsg) {
	p.outstanding--
	if p.poison {
		m.HeartbeatPayload = HeartbeatPayload{Cell: poisonedCell}
	}
	p.free = append(p.free, m)
}

package protocol

import (
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/network"
	"decor/internal/rng"
	"decor/internal/sim"
)

func benchMap(b *testing.B, k, initial int) *coverage.Map {
	b.Helper()
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(2000, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(1)
	for id := 0; id < initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	return m
}

// BenchmarkEventDrivenGrid measures a full event-driven grid deployment
// at paper scale.
func BenchmarkEventDrivenGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchMap(b, 3, 200)
		w := NewWorld(m, 5, sim.NewEngine(0.05), 1)
		b.StartTimer()
		RunDeployment(w)
	}
}

// BenchmarkEventDrivenVoronoi measures the Voronoi counterpart.
func BenchmarkEventDrivenVoronoi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchMap(b, 3, 200)
		w := NewVoronoiWorld(m, 8, sim.NewEngine(0.05), 1)
		b.StartTimer()
		RunVoronoiDeployment(w)
	}
}

// BenchmarkHeartbeatSteadyState measures the per-virtual-second cost of
// a 200-node heartbeat mesh.
func BenchmarkHeartbeatSteadyState(b *testing.B) {
	m := benchMap(b, 1, 200)
	eng := sim.NewEngine(0.01)
	// Build protocol nodes over the sensors.
	netw := newBenchNetwork(m)
	cfg := Config{Tc: 1, TimeoutMult: 3, Cell: -1}
	for _, id := range m.SensorIDs() {
		eng.Register(id, NewNode(id, netw, cfg))
	}
	eng.Run(5) // warm up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + 1)
	}
}

func newBenchNetwork(m *coverage.Map) *network.Network {
	n := network.New(m.Field())
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		n.Add(id, p, 4, 8)
	}
	return n
}

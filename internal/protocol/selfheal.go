package protocol

import (
	"sort"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/sim"
)

// Self-healing monitored field: the paper's §3.2 story end to end.
// Sensors heartbeat with period Tc; cell leaders watch their members and
// the coverage state; when failures kill coverage ("Once a node stops
// receiving such messages from one of its neighbors, this indicates that
// the neighbor has failed"), the affected leaders detect the deficits
// and re-run the greedy placement — no external orchestration, no
// synchronized rounds.

const (
	timerHeal      = "heal"
	timerBeat      = "beat"
	monitorBase    = 1 << 22
	healWatchdogID = (1 << 22) - 1
)

// MonitoredField wires a deployed coverage map into a self-healing
// protocol instance.
type MonitoredField struct {
	M   *coverage.Map
	Eng *sim.Engine
	// Tc is the heartbeat/meta-information period; TimeoutMult beats of
	// silence mark a sensor failed.
	Tc          sim.Time
	TimeoutMult int
	// CellSize partitions responsibility as in grid DECOR.
	CellSize float64

	monitors map[int]*CellMonitor
	nextID   int
	// Repairs records every replacement sensor with its placement time.
	Repairs []RepairRecord
	// countsBuf is the reusable coverage-snapshot scratch for repair
	// surveys (coverage.Map.CountsInto), so heal timers allocate nothing.
	countsBuf []int
}

// RepairRecord is one autonomous replacement.
type RepairRecord struct {
	Time sim.Time
	ID   int
	Pos  geom.Point
	Cell int
}

// NewMonitoredField attaches the protocol to an already-deployed map.
func NewMonitoredField(m *coverage.Map, eng *sim.Engine, cellSize float64, tc sim.Time, timeoutMult int) *MonitoredField {
	if tc <= 0 || timeoutMult < 2 {
		panic("protocol: invalid heartbeat parameters")
	}
	if cellSize <= 0 {
		panic("protocol: invalid cell size")
	}
	f := &MonitoredField{
		M: m, Eng: eng, Tc: tc, TimeoutMult: timeoutMult, CellSize: cellSize,
		monitors: map[int]*CellMonitor{},
	}
	for _, id := range m.SensorIDs() {
		if id >= f.nextID {
			f.nextID = id + 1
		}
	}
	return f
}

// Start spawns one monitor per cell of the partition — occupied or not,
// since a neighboring cell's sensor death can expose deficits in a cell
// that never hosted a sensor. (Each monitor stands for the cell's
// current rotation leader, or the neighboring leader responsible for an
// empty cell, per §3.2.)
func (f *MonitoredField) Start() {
	field := f.M.Field()
	cols := int(field.W()/f.CellSize) + 1
	rows := int(field.H()/f.CellSize) + 1
	for c := 0; c < cols*rows; c++ {
		f.spawnMonitor(c)
	}
}

// CellOf returns the partition cell index of a position — the cell whose
// monitor (see MonitorActor) is responsible for it.
func (f *MonitoredField) CellOf(p geom.Point) int { return f.cellOf(p) }

func (f *MonitoredField) cellOf(p geom.Point) int {
	field := f.M.Field()
	cols := int(field.W()/f.CellSize) + 1
	cx := int((p.X - field.Min.X) / f.CellSize)
	cy := int((p.Y - field.Min.Y) / f.CellSize)
	return cy*cols + cx
}

func (f *MonitoredField) spawnMonitor(cell int) {
	mon := &CellMonitor{field: f, cell: cell}
	f.monitors[cell] = mon
	f.Eng.Register(monitorBase+cell, mon)
}

// Fail kills a sensor at the current virtual time: it stops
// heartbeating. Coverage bookkeeping is updated when a monitor DETECTS
// the silence, not here — the field genuinely has stale knowledge in
// between (the paper's detection-latency window).
func (f *MonitoredField) Fail(id int) {
	if mon := f.monitorFor(id); mon != nil {
		mon.markFailed(id)
	}
}

func (f *MonitoredField) monitorFor(id int) *CellMonitor {
	p, ok := f.M.SensorPos(id)
	if !ok {
		return nil
	}
	return f.monitors[f.cellOf(p)]
}

// member is one heartbeat-ledger entry: the monitor's last-heard time for
// a sensor plus the ground-truth silence flag Fail sets.
type member struct {
	id     int
	last   sim.Time
	failed bool
}

// CellMonitor watches one cell: heartbeat ledger for its sensors plus
// deficit-driven healing. The ledger is a flat slice sorted by sensor ID
// (the former failed/lastBeat map pair): beat rounds iterate it in place
// — already in the deterministic ascending order the detection sweep
// needs — and allocate nothing.
type CellMonitor struct {
	field   *MonitoredField
	cell    int
	members []member // ascending by id
	pts     []int
}

// markFailed flags a member silent (ground truth; detection happens on a
// later beat). Unknown IDs are ignored, as the map-based ledger did.
func (c *CellMonitor) markFailed(id int) {
	i := sort.Search(len(c.members), func(i int) bool { return c.members[i].id >= id })
	if i < len(c.members) && c.members[i].id == id {
		c.members[i].failed = true
	}
}

// OnStart implements sim.Actor. It may run more than once (chaos
// crash/restart revives an actor through a fresh OnStart), so it rebuilds
// the monitor's ledger from scratch rather than accumulating. Knowledge
// of already-failed-but-undetected members is genuinely lost across a
// monitor crash — they re-enter the ledger as live and fall silent again.
func (c *CellMonitor) OnStart(ctx *sim.Context) {
	f := c.field
	c.members = c.members[:0]
	c.pts = c.pts[:0]
	for i := 0; i < f.M.NumPoints(); i++ {
		if f.cellOf(f.M.Point(i)) == c.cell {
			c.pts = append(c.pts, i)
		}
	}
	now := ctx.Now()
	f.M.VisitSensors(func(id int, p geom.Point, _ float64) {
		if f.cellOf(p) == c.cell {
			c.members = append(c.members, member{id: id, last: now})
		}
	})
	phase := sim.Time(float64(c.cell%13)/13.0) * f.Tc
	ctx.SetTimer(phase, timerBeat)
}

// OnMessage implements sim.Actor (monitors are timer-driven).
func (c *CellMonitor) OnMessage(*sim.Context, sim.Message) {}

// OnTimer implements sim.Actor.
func (c *CellMonitor) OnTimer(ctx *sim.Context, tag string) {
	f := c.field
	switch tag {
	case timerBeat:
		now := ctx.Now()
		// Heartbeat round: live members refresh their entry; dead ones
		// stay silent.
		for i := range c.members {
			if !c.members[i].failed {
				c.members[i].last = now
			}
		}
		// Detection: members silent past the timeout are declared dead
		// and removed from the coverage state (in ascending ID order),
		// exposing deficits. Compacting in place keeps the slice sorted.
		timeout := f.Tc * sim.Time(f.TimeoutMult)
		kept := c.members[:0]
		for _, mb := range c.members {
			if mb.failed && now-mb.last > timeout {
				f.M.RemoveSensor(mb.id)
				continue
			}
			kept = append(kept, mb)
		}
		c.members = kept
		// Deficit poll: neighbors' failures can expose holes in this
		// cell without any member of this cell dying, so the heal check
		// cannot key off own-member detection alone.
		if _, ok := c.bestDeficient(); ok {
			ctx.SetTimer(0, timerHeal)
		}
		ctx.SetTimer(f.Tc, timerBeat)
	case timerHeal:
		// Greedy replacement, one sensor per heal tick, until the cell's
		// points are whole again. Repair IDs are strictly increasing, so
		// appending keeps the ledger sorted.
		if idx, ok := c.bestDeficient(); ok {
			pos := f.M.Point(idx)
			id := f.nextID
			f.nextID++
			f.M.AddSensor(id, pos)
			c.members = append(c.members, member{id: id, last: ctx.Now()})
			f.Repairs = append(f.Repairs, RepairRecord{Time: ctx.Now(), ID: id, Pos: pos, Cell: c.cell})
			ctx.SetTimer(f.Tc/4, timerHeal)
		}
	}
}

func (c *CellMonitor) bestDeficient() (int, bool) {
	f := c.field
	// One consistent snapshot per survey through the shared scratch
	// buffer — no per-survey allocation.
	f.countsBuf = f.M.CountsInto(f.countsBuf)
	snap := f.countsBuf
	bestIdx, best := -1, 0
	for _, i := range c.pts {
		if snap[i] >= f.M.K() {
			continue
		}
		if b := f.M.Benefit(f.M.Point(i)); b > best {
			best, bestIdx = b, i
		}
	}
	return bestIdx, bestIdx >= 0
}

package tour

import (
	"math"
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func TestTourLength(t *testing.T) {
	tr := Tour{Start: geom.Pt(0, 0), Stops: []geom.Point{{X: 3, Y: 4}, {X: 3, Y: 8}}}
	if got := tr.Length(); math.Abs(got-9) > 1e-12 {
		t.Errorf("Length = %v, want 9", got)
	}
	if got := (Tour{Start: geom.Pt(1, 1)}).Length(); got != 0 {
		t.Errorf("empty tour length = %v", got)
	}
}

func TestPlanVisitsEverySiteOnce(t *testing.T) {
	r := rng.New(3)
	field := geom.Square(50)
	sites := make([]geom.Point, 60)
	for i := range sites {
		sites[i] = r.PointInRect(field)
	}
	tr := Plan(geom.Pt(0, 0), sites, 0)
	if len(tr.Stops) != len(sites) {
		t.Fatalf("stops = %d, want %d", len(tr.Stops), len(sites))
	}
	seen := map[geom.Point]int{}
	for _, p := range sites {
		seen[p]++
	}
	for _, p := range tr.Stops {
		seen[p]--
	}
	for p, c := range seen {
		if c != 0 {
			t.Fatalf("site %v count %d after tour", p, c)
		}
	}
}

func TestPlanBeatsArbitraryOrder(t *testing.T) {
	r := rng.New(5)
	field := geom.Square(100)
	sites := make([]geom.Point, 80)
	for i := range sites {
		sites[i] = r.PointInRect(field)
	}
	planned := Plan(geom.Pt(0, 0), sites, 0).Length()
	arbitrary := Tour{Start: geom.Pt(0, 0), Stops: sites}.Length()
	if planned >= arbitrary {
		t.Errorf("planned %v not below arbitrary %v", planned, arbitrary)
	}
	// Also beats pure nearest-neighbor (2-opt must help on 80 points).
	nn := Tour{Start: geom.Pt(0, 0), Stops: nearestNeighborOrder(geom.Pt(0, 0), sites)}.Length()
	if planned > nn+1e-9 {
		t.Errorf("2-opt made the tour longer: %v vs %v", planned, nn)
	}
}

func TestPlanNearOptimalOnSmallInstances(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(5) // 4..8 sites
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = r.PointInRect(geom.Square(20))
		}
		start := geom.Pt(0, 0)
		opt := Exhaustive(start, sites).Length()
		got := Plan(start, sites, 0).Length()
		if got < opt-1e-9 {
			t.Fatalf("trial %d: heuristic %v beat optimal %v?!", trial, got, opt)
		}
		if got > 1.25*opt+1e-9 {
			t.Errorf("trial %d: heuristic %v far above optimal %v", trial, got, opt)
		}
	}
}

func TestExhaustiveDegenerateAndPanic(t *testing.T) {
	if got := Exhaustive(geom.Pt(0, 0), nil).Length(); got != 0 {
		t.Errorf("empty exhaustive = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized exhaustive should panic")
		}
	}()
	Exhaustive(geom.Pt(0, 0), make([]geom.Point, 10))
}

// The actuation-cost comparison the package exists for: a DECOR
// restoration of a compact disaster area yields a much shorter robot
// tour than scattering the same sensors randomly.
func TestRestorationTourCompactness(t *testing.T) {
	field := geom.Square(60)
	pts := lowdisc.Halton{}.Points(700, field)
	k := 2
	base := coverage.New(field, pts, 4, k)
	(core.Centralized{}).Deploy(base, rng.New(1), core.Options{})
	// Disaster in a disc; restore with DECOR.
	disk := geom.DiskAt(30, 30, 14)
	for _, id := range base.SensorsInBall(disk.Center, disk.R) {
		base.RemoveSensor(id)
	}
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(base, rng.New(2), core.Options{})
	var decorSites []geom.Point
	for _, pl := range res.Placed {
		decorSites = append(decorSites, pl.Pos)
	}
	// Same number of sensors at random field positions.
	r := rng.New(3)
	randomSites := make([]geom.Point, len(decorSites))
	for i := range randomSites {
		randomSites[i] = r.PointInRect(field)
	}
	start := geom.Pt(0, 0)
	decorTour := Plan(start, decorSites, 0).Length()
	randomTour := Plan(start, randomSites, 0).Length()
	if decorTour >= randomTour {
		t.Errorf("compact restoration tour %v not shorter than scattered %v",
			decorTour, randomTour)
	}
}

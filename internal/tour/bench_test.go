package tour

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func BenchmarkPlan200(b *testing.B) {
	r := rng.New(1)
	sites := make([]geom.Point, 200)
	for i := range sites {
		sites[i] = r.PointInRect(geom.Square(100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Plan(geom.Point{}, sites, 0)
	}
}

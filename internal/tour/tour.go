// Package tour plans the deployment route for the mobile robot the
// paper assumes will actuate DECOR's placement decisions ("new sensors
// can be deployed to the proposed locations by a human or a mobile
// robot", §1). It provides a nearest-neighbor construction with 2-opt
// improvement — the standard fast TSP heuristic stack — plus tour
// metrics used to compare deployment methods by actuation cost.
package tour

import (
	"math"

	"decor/internal/geom"
)

// Tour is an ordered visit of points, starting (and costed) from Start.
type Tour struct {
	Start geom.Point
	Stops []geom.Point
}

// Length returns the travel distance: Start → stops in order (no return
// leg; the robot stays at the last site).
func (t Tour) Length() float64 {
	total := 0.0
	cur := t.Start
	for _, p := range t.Stops {
		total += cur.Dist(p)
		cur = p
	}
	return total
}

// Plan builds a deployment tour over the given sites from start:
// nearest-neighbor construction followed by 2-opt improvement until no
// exchange helps (bounded by maxPasses over the tour; 0 means a sensible
// default).
func Plan(start geom.Point, sites []geom.Point, maxPasses int) Tour {
	t := Tour{Start: start, Stops: nearestNeighborOrder(start, sites)}
	if maxPasses <= 0 {
		maxPasses = 8
	}
	twoOpt(&t, maxPasses)
	return t
}

// nearestNeighborOrder greedily visits the closest unvisited site.
func nearestNeighborOrder(start geom.Point, sites []geom.Point) []geom.Point {
	remaining := append([]geom.Point(nil), sites...)
	out := make([]geom.Point, 0, len(remaining))
	cur := start
	for len(remaining) > 0 {
		best, bestD := 0, math.Inf(1)
		for i, p := range remaining {
			if d := cur.Dist2(p); d < bestD {
				best, bestD = i, d
			}
		}
		cur = remaining[best]
		out = append(out, cur)
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return out
}

// twoOpt repeatedly reverses tour segments while any reversal shortens
// the path (open-path 2-opt: the edge after the last stop does not
// exist).
func twoOpt(t *Tour, maxPasses int) {
	s := t.Stops
	n := len(s)
	if n < 3 {
		return
	}
	pointAt := func(i int) geom.Point {
		if i < 0 {
			return t.Start
		}
		return s[i]
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < n-1; i++ {
			a := pointAt(i - 1)
			b := s[i]
			for j := i + 1; j < n; j++ {
				c := s[j]
				// Reversing s[i..j] replaces edges (a,b) and (c,d) with
				// (a,c) and (b,d); d may not exist at the tour end.
				oldLen := a.Dist(b)
				newLen := a.Dist(c)
				if j+1 < n {
					d := s[j+1]
					oldLen += c.Dist(d)
					newLen += b.Dist(d)
				}
				if newLen < oldLen-1e-12 {
					reverse(s[i : j+1])
					improved = true
					b = s[i]
				}
			}
		}
		if !improved {
			break
		}
	}
}

func reverse(s []geom.Point) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Exhaustive returns the optimal open tour by brute force — O(n!) —
// intended only for cross-validating the heuristic in tests (n <= 9).
func Exhaustive(start geom.Point, sites []geom.Point) Tour {
	n := len(sites)
	if n == 0 {
		return Tour{Start: start}
	}
	if n > 9 {
		panic("tour: Exhaustive limited to 9 sites")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var bestOrder []int
	var recurse func(k int, cur geom.Point, acc float64)
	recurse = func(k int, cur geom.Point, acc float64) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			bestOrder = append(bestOrder[:0], perm...)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			p := sites[perm[k]]
			recurse(k+1, p, acc+cur.Dist(p))
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0, start, 0)
	stops := make([]geom.Point, n)
	for i, idx := range bestOrder {
		stops[i] = sites[idx]
	}
	return Tour{Start: start, Stops: stops}
}

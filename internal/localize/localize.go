// Package localize implements anchor-based distributed localization —
// the substrate behind the paper's §3 assumption that "sensor nodes are
// either GPS enabled or they are capable of finding out and reporting
// their respective positions to other nodes using an algorithm".
//
// The algorithm is DV-hop (Niculescu & Nath), the classic
// range-free scheme: a few GPS anchors flood hop counts through the
// network; each anchor calibrates an average hop length from its known
// distances to other anchors; ordinary nodes convert hop counts into
// distance estimates and multilaterate. Only connectivity is needed —
// no ranging hardware — which fits the paper's mote-class devices.
package localize

import (
	"errors"
	"math"
	"sort"

	"decor/internal/geom"
	"decor/internal/network"
)

// Estimate is one node's computed position.
type Estimate struct {
	ID    int
	Pos   geom.Point
	Hops  map[int]int // hop distance to each anchor used
	Error float64     // filled by EvaluateAccuracy; 0 otherwise
}

// Result holds a localization round's output.
type Result struct {
	Estimates map[int]Estimate
	// Unlocalized lists nodes that could not be positioned (fewer than
	// three reachable anchors), ascending.
	Unlocalized []int
	// HopLength is the calibrated mean single-hop distance.
	HopLength float64
}

// DVHop localizes every alive non-anchor node of the network. anchors
// must name at least three alive nodes whose positions are trusted
// (GPS). It returns an error if fewer than three anchors are usable.
func DVHop(net *network.Network, anchors []int) (Result, error) {
	usable := make([]int, 0, len(anchors))
	for _, a := range anchors {
		if nd := net.Node(a); nd != nil && nd.Alive {
			usable = append(usable, a)
		}
	}
	if len(usable) < 3 {
		return Result{}, errors.New("localize: DV-hop needs at least 3 alive anchors")
	}
	sort.Ints(usable)

	// Phase 1: per-anchor hop-count flood (BFS over the alive graph).
	hopsFrom := make(map[int]map[int]int, len(usable))
	for _, a := range usable {
		hopsFrom[a] = bfsHops(net, a)
	}

	// Phase 2: hop-length calibration. Each anchor i computes
	// Σ_j d(i,j) / Σ_j hops(i,j) over the other anchors it can reach;
	// we use the global average, which every node can obtain since
	// anchors flood their correction factors.
	totalDist, totalHops := 0.0, 0
	for i, a := range usable {
		pa := net.Node(a).Pos
		for _, b := range usable[i+1:] {
			h, ok := hopsFrom[a][b]
			if !ok || h == 0 {
				continue
			}
			totalDist += pa.Dist(net.Node(b).Pos)
			totalHops += h
		}
	}
	if totalHops == 0 {
		return Result{}, errors.New("localize: anchors are mutually unreachable")
	}
	hopLen := totalDist / float64(totalHops)

	// Phase 3: every node converts hop counts to distances and solves
	// the multilateration least squares.
	res := Result{Estimates: map[int]Estimate{}, HopLength: hopLen}
	anchorSet := map[int]bool{}
	for _, a := range usable {
		anchorSet[a] = true
	}
	for _, id := range net.AliveIDs() {
		if anchorSet[id] {
			continue
		}
		var aps []geom.Point
		var dists []float64
		hops := map[int]int{}
		for _, a := range usable {
			if h, ok := hopsFrom[a][id]; ok {
				aps = append(aps, net.Node(a).Pos)
				dists = append(dists, float64(h)*hopLen)
				hops[a] = h
			}
		}
		if len(aps) < 3 {
			res.Unlocalized = append(res.Unlocalized, id)
			continue
		}
		pos, ok := Multilaterate(aps, dists)
		if !ok {
			res.Unlocalized = append(res.Unlocalized, id)
			continue
		}
		res.Estimates[id] = Estimate{ID: id, Pos: pos, Hops: hops}
	}
	sort.Ints(res.Unlocalized)
	return res, nil
}

// bfsHops returns hop distances from src to every reachable alive node.
func bfsHops(net *network.Network, src int) map[int]int {
	dist := map[int]int{src: 0}
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range net.NeighborsOf(v) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Multilaterate solves the linearized least squares |p − a_i| ≈ d_i for
// p given at least three anchors; ok is false for degenerate (collinear)
// anchor geometry.
func Multilaterate(anchors []geom.Point, dists []float64) (geom.Point, bool) {
	if len(anchors) < 3 || len(anchors) != len(dists) {
		return geom.Point{}, false
	}
	a0 := anchors[0]
	r0 := dists[0]
	var sxx, sxy, syy, bx, by float64
	for i := 1; i < len(anchors); i++ {
		ax := 2 * (anchors[i].X - a0.X)
		ay := 2 * (anchors[i].Y - a0.Y)
		rhs := r0*r0 - dists[i]*dists[i] + anchors[i].Norm2() - a0.Norm2()
		sxx += ax * ax
		sxy += ax * ay
		syy += ay * ay
		bx += ax * rhs
		by += ay * rhs
	}
	det := sxx*syy - sxy*sxy
	if math.Abs(det) < 1e-9 {
		return geom.Point{}, false
	}
	return geom.Point{
		X: (syy*bx - sxy*by) / det,
		Y: (sxx*by - sxy*bx) / det,
	}, true
}

// EvaluateAccuracy fills each estimate's Error with the distance to the
// node's true position and returns the mean error in units of the mean
// communication radius — the standard DV-hop accuracy metric.
func EvaluateAccuracy(net *network.Network, res *Result) (meanErr, meanErrPerRc float64) {
	if len(res.Estimates) == 0 {
		return 0, 0
	}
	total, rcTotal := 0.0, 0.0
	n := 0
	for id, est := range res.Estimates {
		nd := net.Node(id)
		if nd == nil {
			continue
		}
		est.Error = nd.Pos.Dist(est.Pos)
		res.Estimates[id] = est
		total += est.Error
		rcTotal += nd.Rc
		n++
	}
	if n == 0 {
		return 0, 0
	}
	meanErr = total / float64(n)
	return meanErr, meanErr / (rcTotal / float64(n))
}

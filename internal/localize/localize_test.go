package localize

import (
	"math"
	"testing"

	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/rng"
)

// denseNetwork builds a connected random network with rc-range links.
func denseNetwork(n int, side, rc float64, seed uint64) *network.Network {
	net := network.New(geom.Square(side))
	r := rng.New(seed)
	for id := 0; id < n; id++ {
		net.Add(id, r.PointInRect(geom.Square(side)), rc/2, rc)
	}
	return net
}

func TestMultilaterateExact(t *testing.T) {
	truth := geom.Pt(3, 4)
	anchors := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}}
	dists := make([]float64, len(anchors))
	for i, a := range anchors {
		dists[i] = a.Dist(truth)
	}
	got, ok := Multilaterate(anchors, dists)
	if !ok || got.Dist(truth) > 1e-9 {
		t.Errorf("Multilaterate = %v, %v; want %v", got, ok, truth)
	}
}

func TestMultilaterateDegenerate(t *testing.T) {
	// Collinear anchors cannot fix a position.
	anchors := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}}
	if _, ok := Multilaterate(anchors, []float64{1, 2, 3}); ok {
		t.Error("collinear anchors should fail")
	}
	if _, ok := Multilaterate(anchors[:2], []float64{1, 2}); ok {
		t.Error("two anchors should fail")
	}
	if _, ok := Multilaterate(anchors, []float64{1}); ok {
		t.Error("mismatched lengths should fail")
	}
}

func TestDVHopNeedsThreeAnchors(t *testing.T) {
	net := denseNetwork(30, 50, 15, 1)
	if _, err := DVHop(net, []int{0, 1}); err == nil {
		t.Error("two anchors should error")
	}
	net.Fail(2)
	if _, err := DVHop(net, []int{0, 1, 2}); err == nil {
		t.Error("dead anchor should not count")
	}
}

func TestDVHopLocalizesDenseNetwork(t *testing.T) {
	const side, rc = 60.0, 12.0
	net := denseNetwork(150, side, rc, 7)
	// Anchors at spread positions: pick the nodes closest to three
	// corners and the center for good geometry.
	anchorTargets := []geom.Point{{X: 5, Y: 5}, {X: 55, Y: 5}, {X: 5, Y: 55}, {X: 55, Y: 55}, {X: 30, Y: 30}}
	var anchors []int
	for _, tgt := range anchorTargets {
		best, bestD := -1, math.Inf(1)
		for _, id := range net.AliveIDs() {
			if d := net.Node(id).Pos.Dist2(tgt); d < bestD {
				best, bestD = id, d
			}
		}
		anchors = append(anchors, best)
	}
	res, err := DVHop(net, anchors)
	if err != nil {
		t.Fatal(err)
	}
	if res.HopLength <= 0 || res.HopLength > rc {
		t.Errorf("hop length = %v, want in (0, rc]", res.HopLength)
	}
	localized := len(res.Estimates)
	if localized < 100 {
		t.Fatalf("localized only %d/150 nodes", localized)
	}
	meanErr, perRc := EvaluateAccuracy(net, &res)
	// DV-hop standard accuracy: mean error well under one communication
	// radius on a dense random network.
	if perRc > 1.0 {
		t.Errorf("mean error %v (%.2f rc) too large", meanErr, perRc)
	}
	// Every estimate must fall in (or very near) the field.
	grown := geom.Square(side).Inset(-rc)
	for id, est := range res.Estimates {
		if !grown.Contains(est.Pos) {
			t.Errorf("node %d estimated far outside the field: %v", id, est.Pos)
		}
		if est.Error != net.Node(id).Pos.Dist(est.Pos) {
			t.Errorf("node %d error not filled correctly", id)
		}
	}
}

func TestDVHopDisconnectedNodesUnlocalized(t *testing.T) {
	net := denseNetwork(40, 40, 12, 3)
	// An isolated node far from everyone.
	net.Add(999, geom.Pt(39.5, 39.5), 1, 0.5)
	res, err := DVHop(net, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.Unlocalized {
		if id == 999 {
			found = true
		}
	}
	if !found {
		t.Error("isolated node should be unlocalized")
	}
	if _, ok := res.Estimates[999]; ok {
		t.Error("isolated node must not have an estimate")
	}
}

func TestEvaluateAccuracyEmpty(t *testing.T) {
	res := Result{Estimates: map[int]Estimate{}}
	if a, b := EvaluateAccuracy(network.New(geom.Square(10)), &res); a != 0 || b != 0 {
		t.Error("empty accuracy should be zero")
	}
}

// End-to-end with the DECOR assumption: positions estimated by DV-hop
// are good enough to drive coverage restoration decisions — the
// estimated-position coverage map deviates from the true one only
// modestly.
func TestDVHopPositionsUsableForCoverage(t *testing.T) {
	const side, rc, rs = 50.0, 12.0, 6.0
	net := denseNetwork(120, side, rc, 11)
	res, err := DVHop(net, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	meanErr, _ := EvaluateAccuracy(net, &res)
	// With mean position error below rs, a point believed covered by an
	// estimated sensor position is usually truly covered by the real
	// one; require the precondition.
	if meanErr > rs {
		t.Skipf("network too sparse for this assertion (err %v)", meanErr)
	}
	agree, total := 0, 0
	probe := rng.New(5)
	for i := 0; i < 500; i++ {
		p := probe.PointInRect(geom.Square(side))
		trueCov, estCov := false, false
		for id, est := range res.Estimates {
			if net.Node(id).Pos.Dist(p) <= rs {
				trueCov = true
			}
			if est.Pos.Dist(p) <= rs {
				estCov = true
			}
		}
		total++
		if trueCov == estCov {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.7 {
		t.Errorf("coverage agreement %v too low for restoration decisions", frac)
	}
}

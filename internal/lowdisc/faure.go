package lowdisc

import (
	"decor/internal/geom"
)

// Faure2D is the two-dimensional Faure sequence in base 2: the first
// coordinate is the van der Corput sequence, the second applies the
// Pascal-matrix digit scramble C(k, j) mod 2 before the radical
// inverse. By Lucas' theorem, C(k, j) is odd exactly when j's binary
// digits are a subset of k's — so the transform is pure bit twiddling.
// Faure sequences are (0, s)-sequences: every elementary interval of
// volume 2^-m contains exactly the right number of points.
type Faure2D struct{}

// Name implements Generator.
func (Faure2D) Name() string { return "faure" }

// Points implements Generator.
func (Faure2D) Points(n int, rect geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		idx := uint64(i) + 1
		pts[i] = geom.Point{
			X: rect.Min.X + RadicalInverse(2, idx)*rect.W(),
			Y: rect.Min.Y + faureSecond(idx)*rect.H(),
		}
	}
	return pts
}

// faureSecond applies the Pascal transform to i's base-2 digits and
// mirrors them: digit j of the output is XOR over k >= j with
// (j AND k) == j of digit k of i.
func faureSecond(i uint64) float64 {
	// Collect the input digits (LSB first).
	var digits [64]uint64
	nd := 0
	for v := i; v > 0; v >>= 1 {
		digits[nd] = v & 1
		nd++
	}
	result := 0.0
	f := 0.5
	for j := 0; j < nd; j++ {
		var c uint64
		for k := j; k < nd; k++ {
			// Lucas: C(k, j) mod 2 == 1 iff j is a bit-subset of k.
			if uint64(j)&uint64(k) == uint64(j) {
				c ^= digits[k]
			}
		}
		result += float64(c) * f
		f /= 2
	}
	return result
}

package lowdisc

import (
	"testing"
)

// FuzzRadicalInverse checks the radical inverse stays in [0,1) and is
// injective-ish over small ranges for any base.
func FuzzRadicalInverse(f *testing.F) {
	f.Add(uint64(2), uint64(7))
	f.Add(uint64(3), uint64(1000000))
	f.Add(uint64(16), uint64(0))
	f.Fuzz(func(t *testing.T, base, i uint64) {
		b := base%61 + 2
		v := RadicalInverse(b, i)
		if v < 0 || v >= 1 {
			t.Fatalf("RadicalInverse(%d, %d) = %v out of range", b, i, v)
		}
		// Zero iff i == 0.
		if (v == 0) != (i == 0) {
			t.Fatalf("RadicalInverse(%d, %d) = %v zero-mapping wrong", b, i, v)
		}
		// Adding base^8 to i (if representable) changes only digits above
		// the 8th: values must stay within base^-8 of each other... more
		// simply, consecutive indices must differ.
		if i < 1<<40 {
			if RadicalInverse(b, i+1) == v {
				t.Fatalf("RadicalInverse(%d) collided at %d", b, i)
			}
		}
	})
}

// FuzzScrambledRadicalInverse checks the scrambled variant keeps range
// and determinism.
func FuzzScrambledRadicalInverse(f *testing.F) {
	f.Add(uint64(3), uint64(99), uint64(5))
	f.Fuzz(func(t *testing.T, base, i, seed uint64) {
		b := base%31 + 2
		perm := digitPermutation(b, seed)
		v := scrambledRadicalInverse(b, i, perm)
		if v < 0 || v >= 1 {
			t.Fatalf("scrambled(%d, %d) = %v out of range", b, i, v)
		}
		if v2 := scrambledRadicalInverse(b, i, perm); v2 != v {
			t.Fatal("non-deterministic")
		}
	})
}

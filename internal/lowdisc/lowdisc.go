// Package lowdisc implements the low-discrepancy point sequences at the
// heart of DECOR's uncovered-area representation (paper §3.2), plus
// reference generators (uniform random, jittered grid, Latin hypercube)
// and star-discrepancy measurement used to validate the choice.
//
// The paper approximates the monitored field with N = 2000 Halton points
// and reports that Hammersley points behave the same. Low-discrepancy sets
// approximate area with error O(log^d N / N) versus O(sqrt(log log N / N))
// for random points, which is why a small N suffices to certify
// k-coverage.
package lowdisc

import (
	"fmt"

	"decor/internal/geom"
	"decor/internal/rng"
)

// Generator produces n points inside a rectangle. Implementations are
// deterministic: the same (n, rect) always yields the same points (random
// generators are seeded explicitly at construction).
type Generator interface {
	// Name identifies the generator in experiment output.
	Name() string
	// Points returns n points inside rect.
	Points(n int, rect geom.Rect) []geom.Point
}

// RadicalInverse returns the radical inverse of i in the given base: the
// digits of i are mirrored around the radix point, yielding a value in
// [0, 1). It is the building block of the van der Corput, Halton and
// Hammersley sequences.
func RadicalInverse(base, i uint64) float64 {
	if base < 2 {
		panic("lowdisc: RadicalInverse base must be >= 2")
	}
	inv := 1.0 / float64(base)
	result := 0.0
	f := inv
	for i > 0 {
		result += float64(i%base) * f
		i /= base
		f *= inv
	}
	return result
}

// VanDerCorput is the 1-D van der Corput sequence in the given base,
// exposed for completeness and used by tests.
type VanDerCorput struct {
	Base uint64
}

// At returns the i-th element of the sequence.
func (v VanDerCorput) At(i uint64) float64 {
	b := v.Base
	if b == 0 {
		b = 2
	}
	return RadicalInverse(b, i)
}

// Halton is the 2-D Halton sequence with the given coprime bases
// (default 2 and 3). It is the paper's primary field approximation.
type Halton struct {
	BaseX, BaseY uint64
	// Skip discards the first Skip elements (a common remedy for early
	// correlations; the paper does not mention skipping, so it defaults
	// to 0).
	Skip uint64
}

// Name implements Generator.
func (h Halton) Name() string { return "halton" }

// Points implements Generator.
func (h Halton) Points(n int, rect geom.Rect) []geom.Point {
	bx, by := h.BaseX, h.BaseY
	if bx == 0 {
		bx = 2
	}
	if by == 0 {
		by = 3
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		idx := uint64(i) + h.Skip + 1 // start at 1: the 0th element is (0,0)
		pts[i] = geom.Point{
			X: rect.Min.X + RadicalInverse(bx, idx)*rect.W(),
			Y: rect.Min.Y + RadicalInverse(by, idx)*rect.H(),
		}
	}
	return pts
}

// Hammersley is the 2-D Hammersley set: first coordinate i/N, second the
// radical inverse in the given base (default 2). Unlike Halton it needs N
// up front, which is fine for DECOR where the field resolution is fixed.
type Hammersley struct {
	Base uint64
}

// Name implements Generator.
func (h Hammersley) Name() string { return "hammersley" }

// Points implements Generator.
func (h Hammersley) Points(n int, rect geom.Rect) []geom.Point {
	b := h.Base
	if b == 0 {
		b = 2
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: rect.Min.X + (float64(i)+0.5)/float64(n)*rect.W(),
			Y: rect.Min.Y + RadicalInverse(b, uint64(i)+1)*rect.H(),
		}
	}
	return pts
}

// Sobol2D is the first two dimensions of the Sobol' sequence with the
// standard Joe–Kuo direction numbers, generated via Gray code.
type Sobol2D struct{}

// Name implements Generator.
func (Sobol2D) Name() string { return "sobol" }

// Points implements Generator.
func (Sobol2D) Points(n int, rect geom.Rect) []geom.Point {
	const bitCount = 32
	// Direction numbers. Dimension 1: v_j = 1/2^j (van der Corput).
	// Dimension 2: primitive polynomial x^2 + x + 1 (s=1, a=0, m1=1).
	var v1, v2 [bitCount + 1]uint32
	for j := 1; j <= bitCount; j++ {
		v1[j] = 1 << (32 - uint(j))
	}
	v2[1] = 1 << 31
	for j := 2; j <= bitCount; j++ {
		v2[j] = v2[j-1] ^ (v2[j-1] >> 1)
	}
	pts := make([]geom.Point, n)
	var x1, x2 uint32
	for i := 0; i < n; i++ {
		// Gray-code construction: flip the direction of the lowest zero
		// bit of i.
		c := uint(1)
		for ii := uint64(i); ii&1 == 1; ii >>= 1 {
			c++
		}
		x1 ^= v1[c]
		x2 ^= v2[c]
		pts[i] = geom.Point{
			X: rect.Min.X + float64(x1)/float64(1<<32)*rect.W(),
			Y: rect.Min.Y + float64(x2)/float64(1<<32)*rect.H(),
		}
	}
	return pts
}

// Uniform generates independent uniform random points, the paper's
// strawman comparison for field approximation.
type Uniform struct {
	Seed uint64
}

// Name implements Generator.
func (Uniform) Name() string { return "uniform" }

// Points implements Generator.
func (u Uniform) Points(n int, rect geom.Rect) []geom.Point {
	r := rng.New(u.Seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = r.PointInRect(rect)
	}
	return pts
}

// Jittered generates a stratified (jittered-grid) sample: the rectangle is
// divided into roughly n cells and one uniform point is drawn per cell.
type Jittered struct {
	Seed uint64
}

// Name implements Generator.
func (Jittered) Name() string { return "jittered" }

// Points implements Generator.
func (j Jittered) Points(n int, rect geom.Rect) []geom.Point {
	r := rng.New(j.Seed)
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	cw, ch := rect.W()/float64(cols), rect.H()/float64(rows)
	pts := make([]geom.Point, 0, n)
	for i := 0; i < rows && len(pts) < n; i++ {
		for c := 0; c < cols && len(pts) < n; c++ {
			pts = append(pts, geom.Point{
				X: rect.Min.X + (float64(c)+r.Float64())*cw,
				Y: rect.Min.Y + (float64(i)+r.Float64())*ch,
			})
		}
	}
	return pts
}

// LatinHypercube generates a Latin hypercube sample: each axis is divided
// into n strata and every stratum is hit exactly once per axis.
type LatinHypercube struct {
	Seed uint64
}

// Name implements Generator.
func (LatinHypercube) Name() string { return "lhs" }

// Points implements Generator.
func (l LatinHypercube) Points(n int, rect geom.Rect) []geom.Point {
	r := rng.New(l.Seed)
	permX := r.Perm(n)
	permY := r.Perm(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: rect.Min.X + (float64(permX[i])+r.Float64())/float64(n)*rect.W(),
			Y: rect.Min.Y + (float64(permY[i])+r.Float64())/float64(n)*rect.H(),
		}
	}
	return pts
}

// ByName returns the generator with the given name; seeded generators use
// the provided seed. Recognized names: halton, hammersley, sobol, uniform,
// jittered, lhs, faure, halton-scrambled.
func ByName(name string, seed uint64) (Generator, error) {
	switch name {
	case "halton":
		return Halton{}, nil
	case "hammersley":
		return Hammersley{}, nil
	case "sobol":
		return Sobol2D{}, nil
	case "uniform":
		return Uniform{Seed: seed}, nil
	case "jittered":
		return Jittered{Seed: seed}, nil
	case "lhs":
		return LatinHypercube{Seed: seed}, nil
	case "faure":
		return Faure2D{}, nil
	case "halton-scrambled":
		return ScrambledHalton{Seed: seed}, nil
	}
	return nil, fmt.Errorf("lowdisc: unknown generator %q", name)
}

package lowdisc

import (
	"testing"

	"decor/internal/geom"
)

func BenchmarkHalton2000(b *testing.B) {
	rect := geom.Square(100)
	for i := 0; i < b.N; i++ {
		Halton{}.Points(2000, rect)
	}
}

func BenchmarkHammersley2000(b *testing.B) {
	rect := geom.Square(100)
	for i := 0; i < b.N; i++ {
		Hammersley{}.Points(2000, rect)
	}
}

func BenchmarkSobol2000(b *testing.B) {
	rect := geom.Square(100)
	for i := 0; i < b.N; i++ {
		Sobol2D{}.Points(2000, rect)
	}
}

func BenchmarkScrambledHalton2000(b *testing.B) {
	rect := geom.Square(100)
	for i := 0; i < b.N; i++ {
		ScrambledHalton{Seed: 1}.Points(2000, rect)
	}
}

func BenchmarkStarDiscrepancy512(b *testing.B) {
	pts := Halton{}.Points(512, geom.Square(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StarDiscrepancy(pts, geom.Square(1))
	}
}

func BenchmarkEstimateDiscrepancy2000(b *testing.B) {
	pts := Halton{}.Points(2000, geom.Square(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateStarDiscrepancy(pts, geom.Square(1), 100, 1)
	}
}

package lowdisc

import (
	"math"
	"testing"
	"testing/quick"

	"decor/internal/geom"
)

func TestRadicalInverseBase2(t *testing.T) {
	cases := []struct {
		i    uint64
		want float64
	}{
		{0, 0}, {1, 0.5}, {2, 0.25}, {3, 0.75},
		{4, 0.125}, {5, 0.625}, {6, 0.375}, {7, 0.875},
	}
	for _, c := range cases {
		if got := RadicalInverse(2, c.i); got != c.want {
			t.Errorf("RadicalInverse(2, %d) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestRadicalInverseBase3(t *testing.T) {
	cases := []struct {
		i    uint64
		want float64
	}{
		{1, 1.0 / 3}, {2, 2.0 / 3}, {3, 1.0 / 9}, {4, 4.0 / 9}, {5, 7.0 / 9},
	}
	for _, c := range cases {
		if got := RadicalInverse(3, c.i); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("RadicalInverse(3, %d) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestRadicalInverseRange(t *testing.T) {
	f := func(base uint8, i uint32) bool {
		b := uint64(base%14) + 2
		v := RadicalInverse(b, uint64(i))
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadicalInversePanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("base 1 should panic")
		}
	}()
	RadicalInverse(1, 5)
}

func TestVanDerCorputDefaultsBase2(t *testing.T) {
	v := VanDerCorput{}
	if v.At(1) != 0.5 || v.At(3) != 0.75 {
		t.Errorf("default base wrong: At(1)=%v At(3)=%v", v.At(1), v.At(3))
	}
}

func allInside(t *testing.T, name string, pts []geom.Point, rect geom.Rect) {
	t.Helper()
	for i, p := range pts {
		if !rect.Contains(p) {
			t.Fatalf("%s: point %d = %v outside %v", name, i, p, rect)
		}
	}
}

func generators() []Generator {
	return []Generator{
		Halton{}, Hammersley{}, Sobol2D{},
		Uniform{Seed: 1}, Jittered{Seed: 1}, LatinHypercube{Seed: 1},
	}
}

func TestGeneratorsProduceNPointsInside(t *testing.T) {
	rect := geom.RectWH(10, -5, 30, 40)
	for _, g := range generators() {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			pts := g.Points(n, rect)
			if len(pts) != n {
				t.Errorf("%s: len = %d, want %d", g.Name(), len(pts), n)
			}
			allInside(t, g.Name(), pts, rect)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	rect := geom.Square(100)
	for _, g := range generators() {
		a := g.Points(200, rect)
		b := g.Points(200, rect)
		for i := range a {
			if !a[i].Eq(b[i]) {
				t.Errorf("%s: non-deterministic at %d", g.Name(), i)
				break
			}
		}
	}
}

func TestHaltonDistinctPoints(t *testing.T) {
	pts := Halton{}.Points(2000, geom.Square(100))
	seen := map[geom.Point]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate Halton point %v", p)
		}
		seen[p] = true
	}
}

func TestHaltonSkip(t *testing.T) {
	base := Halton{}.Points(10, geom.Square(1))
	skipped := Halton{Skip: 3}.Points(7, geom.Square(1))
	for i := range skipped {
		if !skipped[i].Eq(base[i+3]) {
			t.Errorf("skip mismatch at %d: %v vs %v", i, skipped[i], base[i+3])
		}
	}
}

func TestHammersleyFirstCoordStratified(t *testing.T) {
	n := 100
	pts := Hammersley{}.Points(n, geom.Square(1))
	for i, p := range pts {
		want := (float64(i) + 0.5) / float64(n)
		if math.Abs(p.X-want) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, p.X, want)
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	n := 64
	pts := LatinHypercube{Seed: 5}.Points(n, geom.Square(1))
	seenX := make([]bool, n)
	seenY := make([]bool, n)
	for _, p := range pts {
		ix := int(p.X * float64(n))
		iy := int(p.Y * float64(n))
		if ix >= n {
			ix = n - 1
		}
		if iy >= n {
			iy = n - 1
		}
		if seenX[ix] {
			t.Fatalf("x stratum %d hit twice", ix)
		}
		if seenY[iy] {
			t.Fatalf("y stratum %d hit twice", iy)
		}
		seenX[ix] = true
		seenY[iy] = true
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"halton", "hammersley", "sobol", "uniform", "jittered", "lhs"} {
		g, err := ByName(name, 42)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Error("unknown name should error")
	}
}

// Area-approximation property the paper relies on: the fraction of Halton
// points inside any disk approximates the disk's area fraction well.
func TestHaltonApproximatesDiskArea(t *testing.T) {
	rect := geom.Square(100)
	pts := Halton{}.Points(2000, rect)
	disks := []geom.Disk{
		geom.DiskAt(50, 50, 20),
		geom.DiskAt(10, 90, 15),
		geom.DiskAt(30, 40, 4), // the paper's rs
		geom.DiskAt(95, 5, 10),
	}
	for _, d := range disks {
		in := 0
		for _, p := range pts {
			if d.Contains(p) {
				in++
			}
		}
		got := float64(in) / float64(len(pts))
		want := d.IntersectionArea(rect) / rect.Area()
		// With 2000 low-discrepancy points the isotropic error for smooth
		// sets is small; allow 1.5 percentage points.
		if math.Abs(got-want) > 0.015 {
			t.Errorf("disk %v: point fraction %v vs area fraction %v", d, got, want)
		}
	}
}

// Chi-square uniformity: dividing the unit square into a 8x8 grid, the
// Halton counts per cell must be near-uniform — far more uniform than a
// random set's typical chi-square statistic.
func TestHaltonChiSquareUniformity(t *testing.T) {
	const n, grid = 2048, 8
	expect := float64(n) / (grid * grid)
	chi2 := func(pts []geom.Point) float64 {
		counts := make([]int, grid*grid)
		for _, p := range pts {
			cx := int(p.X * grid)
			cy := int(p.Y * grid)
			if cx >= grid {
				cx = grid - 1
			}
			if cy >= grid {
				cy = grid - 1
			}
			counts[cy*grid+cx]++
		}
		sum := 0.0
		for _, c := range counts {
			d := float64(c) - expect
			sum += d * d / expect
		}
		return sum
	}
	unit := geom.Square(1)
	h := chi2(Halton{}.Points(n, unit))
	// 63 degrees of freedom: a uniform-random sample has E[chi2] = 63.
	// Halton's stratification should land far below.
	if h > 30 {
		t.Errorf("halton chi2 = %v, expected well below the random mean 63", h)
	}
	worstRandom := 0.0
	for seed := uint64(1); seed <= 3; seed++ {
		if c := chi2(Uniform{Seed: seed}.Points(n, unit)); c > worstRandom {
			worstRandom = c
		}
	}
	if h >= worstRandom {
		t.Errorf("halton chi2 %v not below random %v", h, worstRandom)
	}
}

package lowdisc

import (
	"math"
	"testing"

	"decor/internal/geom"
)

func TestScrambledHaltonBasics(t *testing.T) {
	rect := geom.Square(100)
	g := ScrambledHalton{Seed: 5}
	pts := g.Points(1000, rect)
	if len(pts) != 1000 {
		t.Fatalf("len = %d", len(pts))
	}
	allInside(t, g.Name(), pts, rect)
	// Deterministic.
	again := g.Points(1000, rect)
	for i := range pts {
		if !pts[i].Eq(again[i]) {
			t.Fatal("scrambled halton not deterministic")
		}
	}
	// Distinct from plain Halton.
	plain := Halton{}.Points(1000, rect)
	same := 0
	for i := range pts {
		if pts[i].Eq(plain[i]) {
			same++
		}
	}
	if same > 100 {
		t.Errorf("scrambling left %d/1000 points unchanged", same)
	}
	// Different seeds give different scramblings.
	other := ScrambledHalton{Seed: 6}.Points(100, rect)
	diff := 0
	for i := range other {
		if !other[i].Eq(pts[i]) {
			diff++
		}
	}
	if diff < 50 {
		t.Errorf("seeds too similar: only %d/100 differ", diff)
	}
}

func TestScrambledHaltonKeepsLowDiscrepancy(t *testing.T) {
	unit := geom.Square(1)
	const n = 512
	dPlain := StarDiscrepancy(Halton{}.Points(n, unit), unit)
	dScr := StarDiscrepancy(ScrambledHalton{Seed: 3}.Points(n, unit), unit)
	dRandom := StarDiscrepancy(Uniform{Seed: 3}.Points(n, unit), unit)
	if dScr >= dRandom {
		t.Errorf("scrambled D* %v not below random %v", dScr, dRandom)
	}
	// Same order of magnitude as plain Halton.
	if dScr > 4*dPlain {
		t.Errorf("scrambled D* %v far above plain %v", dScr, dPlain)
	}
}

func TestDigitPermutationFixesZero(t *testing.T) {
	for _, base := range []uint64{2, 3, 5, 7, 11} {
		perm := digitPermutation(base, 42)
		if perm[0] != 0 {
			t.Errorf("base %d: perm[0] = %d", base, perm[0])
		}
		seen := map[uint64]bool{}
		for _, v := range perm {
			if v >= base || seen[v] {
				t.Fatalf("base %d: invalid permutation %v", base, perm)
			}
			seen[v] = true
		}
	}
}

func TestRotatedStaysInRect(t *testing.T) {
	rect := geom.RectWH(10, 20, 30, 40)
	for seed := uint64(0); seed < 10; seed++ {
		g := Rotated{Base: Halton{}, Seed: seed}
		pts := g.Points(500, rect)
		allInside(t, g.Name(), pts, rect)
	}
}

func TestRotatedPreservesDiscrepancyScale(t *testing.T) {
	unit := geom.Square(1)
	const n = 512
	dPlain := StarDiscrepancy(Halton{}.Points(n, unit), unit)
	dRot := StarDiscrepancy(Rotated{Base: Halton{}, Seed: 9}.Points(n, unit), unit)
	// A rotation can perturb D* but not destroy the low-discrepancy
	// character.
	if dRot > 6*dPlain {
		t.Errorf("rotated D* %v vs plain %v", dRot, dPlain)
	}
}

func TestRotatedDefaultsAndName(t *testing.T) {
	g := Rotated{Seed: 1}
	if g.Name() != "rotated" {
		t.Errorf("nil-base name = %q", g.Name())
	}
	pts := g.Points(10, geom.Square(1))
	if len(pts) != 10 {
		t.Fatal("nil base should default to Halton")
	}
	named := Rotated{Base: Sobol2D{}, Seed: 1}
	if named.Name() != "sobol-rotated" {
		t.Errorf("name = %q", named.Name())
	}
}

// Rotation must be a measure-preserving shift: the fraction of points in
// any axis-aligned box matches the unrotated fraction of the preimage.
func TestRotationIsShift(t *testing.T) {
	rect := geom.Square(1)
	base := Halton{}.Points(200, rect)
	rot := Rotated{Base: Halton{}, Seed: 4}.Points(200, rect)
	// Pairwise displacement (mod 1) must be constant.
	dx := math.Mod(rot[0].X-base[0].X+1, 1)
	dy := math.Mod(rot[0].Y-base[0].Y+1, 1)
	for i := range base {
		gx := math.Mod(rot[i].X-base[i].X+1, 1)
		gy := math.Mod(rot[i].Y-base[i].Y+1, 1)
		if math.Abs(gx-dx) > 1e-9 || math.Abs(gy-dy) > 1e-9 {
			t.Fatalf("rotation not a constant shift at %d", i)
		}
	}
}

func TestFaureBasics(t *testing.T) {
	rect := geom.RectWH(5, -5, 20, 30)
	g := Faure2D{}
	pts := g.Points(1000, rect)
	if len(pts) != 1000 {
		t.Fatal("wrong count")
	}
	allInside(t, g.Name(), pts, rect)
	// Deterministic and distinct.
	again := g.Points(1000, rect)
	seen := map[geom.Point]bool{}
	for i := range pts {
		if !pts[i].Eq(again[i]) {
			t.Fatal("non-deterministic")
		}
		if seen[pts[i]] {
			t.Fatalf("duplicate point %v", pts[i])
		}
		seen[pts[i]] = true
	}
}

func TestFaureLowDiscrepancy(t *testing.T) {
	unit := geom.Square(1)
	const n = 512
	dFaure := StarDiscrepancy(Faure2D{}.Points(n, unit), unit)
	dRandom := StarDiscrepancy(Uniform{Seed: 2}.Points(n, unit), unit)
	if dFaure >= dRandom {
		t.Errorf("faure D* %v not below random %v", dFaure, dRandom)
	}
	if dFaure > 0.05 {
		t.Errorf("faure D* %v unexpectedly high", dFaure)
	}
}

// The (0,2)-sequence property in base 2: every aligned block of 2^m
// consecutive indices hits every elementary dyadic interval of area 2^-m
// exactly once. The generator skips index 0, so Points[15:31] holds the
// aligned block idx = 16..31; check every dyadic partition shape at m=4.
func TestFaureElementaryIntervals(t *testing.T) {
	const m = 4
	pts := Faure2D{}.Points(31, geom.Square(1))[15:31]
	for split := 0; split <= m; split++ {
		cols := 1 << split
		rows := 1 << (m - split)
		counts := make([]int, cols*rows)
		for _, p := range pts {
			cx := int(p.X * float64(cols))
			cy := int(p.Y * float64(rows))
			if cx >= cols {
				cx = cols - 1
			}
			if cy >= rows {
				cy = rows - 1
			}
			counts[cy*cols+cx]++
		}
		for cell, c := range counts {
			if c != 1 {
				t.Fatalf("partition %dx%d: cell %d has %d points, want 1",
					cols, rows, cell, c)
			}
		}
	}
}

func TestByNameNewGenerators(t *testing.T) {
	for _, name := range []string{"faure", "halton-scrambled"} {
		g, err := ByName(name, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("name = %q", g.Name())
		}
	}
}

package lowdisc

import (
	"decor/internal/geom"
	"decor/internal/rng"
)

// ScrambledHalton applies deterministic digit scrambling to the Halton
// sequence. Plain Halton points in larger bases show strong early
// correlations; scrambling breaks them while preserving the
// low-discrepancy property. The permutation per base is a seeded random
// permutation fixing 0 (so 0 digits stay 0 and the radical inverse stays
// in [0,1)).
type ScrambledHalton struct {
	BaseX, BaseY uint64
	Seed         uint64
}

// Name implements Generator.
func (ScrambledHalton) Name() string { return "halton-scrambled" }

// Points implements Generator.
func (s ScrambledHalton) Points(n int, rect geom.Rect) []geom.Point {
	bx, by := s.BaseX, s.BaseY
	if bx == 0 {
		bx = 2
	}
	if by == 0 {
		by = 3
	}
	permX := digitPermutation(bx, s.Seed)
	permY := digitPermutation(by, s.Seed+1)
	pts := make([]geom.Point, n)
	for i := range pts {
		idx := uint64(i) + 1
		pts[i] = geom.Point{
			X: rect.Min.X + scrambledRadicalInverse(bx, idx, permX)*rect.W(),
			Y: rect.Min.Y + scrambledRadicalInverse(by, idx, permY)*rect.H(),
		}
	}
	return pts
}

// digitPermutation returns a seeded permutation of [0, base) that maps 0
// to 0.
func digitPermutation(base, seed uint64) []uint64 {
	r := rng.New(seed*2654435761 + base)
	perm := make([]uint64, base)
	for i := range perm {
		perm[i] = uint64(i)
	}
	// Fisher–Yates over indices 1..base-1, keeping perm[0] = 0.
	for i := int(base) - 1; i > 1; i-- {
		j := 1 + r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// scrambledRadicalInverse mirrors the digits of i through perm.
func scrambledRadicalInverse(base, i uint64, perm []uint64) float64 {
	inv := 1.0 / float64(base)
	result := 0.0
	f := inv
	for i > 0 {
		result += float64(perm[i%base]) * f
		i /= base
		f *= inv
	}
	return result
}

// Rotated applies a Cranley–Patterson rotation to another generator:
// every point is shifted by a fixed seeded offset modulo the rectangle.
// Rotation yields a randomized quasi-Monte-Carlo family whose members
// are unbiased while each keeping the base generator's discrepancy.
type Rotated struct {
	Base Generator
	Seed uint64
}

// Name implements Generator.
func (r Rotated) Name() string {
	if r.Base == nil {
		return "rotated"
	}
	return r.Base.Name() + "-rotated"
}

// Points implements Generator.
func (r Rotated) Points(n int, rect geom.Rect) []geom.Point {
	base := r.Base
	if base == nil {
		base = Halton{}
	}
	gen := rng.New(r.Seed ^ 0xC0FFEE)
	dx := gen.Float64() * rect.W()
	dy := gen.Float64() * rect.H()
	pts := base.Points(n, rect)
	for i, p := range pts {
		x := p.X - rect.Min.X + dx
		if x >= rect.W() {
			x -= rect.W()
		}
		y := p.Y - rect.Min.Y + dy
		if y >= rect.H() {
			y -= rect.H()
		}
		pts[i] = geom.Point{X: rect.Min.X + x, Y: rect.Min.Y + y}
	}
	return pts
}

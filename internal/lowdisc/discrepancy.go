package lowdisc

import (
	"math"
	"sort"

	"decor/internal/geom"
	"decor/internal/rng"
)

// StarDiscrepancy computes the star discrepancy D*_N of the points with
// respect to the unit square scaled to rect:
//
//	D* = sup over anchored boxes B=[min, q) of |#(P ∩ B)/N − vol(B)/vol(rect)|
//
// The supremum over axis-aligned anchored boxes is attained at boxes whose
// upper corner coordinates are point coordinates (closed or open), so an
// exact computation scans the O(N²) critical corners. A Fenwick tree over
// y-ranks keeps each scan O(N log N), for O(N² log N) total — fine for the
// N ≈ 2000 used by the paper.
func StarDiscrepancy(pts []geom.Point, rect geom.Rect) float64 {
	n := len(pts)
	if n == 0 || rect.Empty() {
		return 0
	}
	// Normalize to the unit square.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range pts {
		xs[i] = (p.X - rect.Min.X) / rect.W()
		ys[i] = (p.Y - rect.Min.Y) / rect.H()
	}
	// Rank the y coordinates.
	ySorted := append([]float64(nil), ys...)
	sort.Float64s(ySorted)
	yRank := func(y float64) int { return sort.SearchFloat64s(ySorted, y) }

	// Critical y thresholds: each distinct y plus 1.0.
	yCrit := ySorted
	type pt struct {
		x float64
		y float64
	}
	ps := make([]pt, n)
	for i := range pts {
		ps[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })

	closed := newFenwick(n + 1) // counts of points with x <= current threshold, by y rank
	maxDisc := 0.0
	fn := float64(n)
	consider := func(count, x, y float64) {
		vol := x * y
		if d := math.Abs(count/fn - vol); d > maxDisc {
			maxDisc = d
		}
	}
	scanY := func(xThresh float64) {
		// For each critical y (and y=1), the box [0,xThresh) x [0,y).
		// "Open" count excludes points on the upper boundary; "closed"
		// includes them. Both bound the supremum.
		for _, y := range yCrit {
			r := yRank(y) // points with yi < y
			open := float64(closed.prefix(r))
			cl := float64(closed.prefix(upperRank(ySorted, y)))
			consider(open, xThresh, y)
			consider(cl, xThresh, y)
		}
		total := float64(closed.prefix(n))
		consider(total, xThresh, 1)
	}

	i := 0
	for i < n {
		x := ps[i].x
		// Boxes with upper x strictly below the next point's x: use the
		// open count at x (points already inserted have xi < x).
		scanY(x)
		// Insert all points with this x, then scan with the closed count.
		for i < n && ps[i].x == x {
			closed.add(yRank(ps[i].y)+1, 1)
			i++
		}
		scanY(x)
	}
	scanY(1)
	return maxDisc
}

// upperRank returns the number of sorted values <= y.
func upperRank(sorted []float64, y float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > y })
}

// EstimateStarDiscrepancy returns a randomized lower bound on the star
// discrepancy by sampling trial anchored boxes. Used when N is large
// enough that the exact O(N² log N) scan is too slow.
func EstimateStarDiscrepancy(pts []geom.Point, rect geom.Rect, trials int, seed uint64) float64 {
	n := len(pts)
	if n == 0 || rect.Empty() || trials <= 0 {
		return 0
	}
	r := rng.New(seed)
	best := 0.0
	fn := float64(n)
	for t := 0; t < trials; t++ {
		qx := r.Float64()
		qy := r.Float64()
		count := 0
		for _, p := range pts {
			if (p.X-rect.Min.X)/rect.W() < qx && (p.Y-rect.Min.Y)/rect.H() < qy {
				count++
			}
		}
		if d := math.Abs(float64(count)/fn - qx*qy); d > best {
			best = d
		}
	}
	return best
}

// fenwick is a 1-indexed binary indexed tree over integer counts.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

// add increments position i (1-indexed) by delta.
func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of positions 1..i.
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

package lowdisc

import (
	"math"
	"testing"

	"decor/internal/geom"
)

func TestStarDiscrepancyKnownTiny(t *testing.T) {
	unit := geom.Square(1)
	// A single point at the center: boxes [0,0.5)² hold 0 points but have
	// volume 0.25; the box [0,1]² closed holds the point with volume 1.
	// D* for {(.5,.5)} is 0.75: the closed box [0, .5]² contains the point
	// (count 1) with volume 0.25 → |1 - 0.25| = 0.75.
	got := StarDiscrepancy([]geom.Point{{X: 0.5, Y: 0.5}}, unit)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("D* single center point = %v, want 0.75", got)
	}
}

func TestStarDiscrepancyEmpty(t *testing.T) {
	if got := StarDiscrepancy(nil, geom.Square(1)); got != 0 {
		t.Errorf("D* of empty set = %v", got)
	}
}

func TestStarDiscrepancyCornerPoint(t *testing.T) {
	unit := geom.Square(1)
	// A point at the origin: every nonempty closed anchored box contains
	// it, so D* -> 1 as box volume -> 0.
	got := StarDiscrepancy([]geom.Point{{X: 0, Y: 0}}, unit)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("D* origin point = %v, want 1", got)
	}
}

func TestStarDiscrepancyUniformGridIsLow(t *testing.T) {
	// A perfect sqrt(n) x sqrt(n) centered lattice has discrepancy
	// O(1/sqrt(n)).
	const side = 16
	var pts []geom.Point
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			pts = append(pts, geom.Point{
				X: (float64(i) + 0.5) / side,
				Y: (float64(j) + 0.5) / side,
			})
		}
	}
	got := StarDiscrepancy(pts, geom.Square(1))
	if got > 0.13 || got < 0.01 {
		t.Errorf("lattice D* = %v, expected ~1/sqrt(n)", got)
	}
}

// The core claim from discrepancy theory the paper leans on: Halton,
// Hammersley and Sobol beat uniform random points by a wide margin.
func TestLowDiscrepancyBeatsRandom(t *testing.T) {
	const n = 512
	unit := geom.Square(1)
	dHalton := StarDiscrepancy(Halton{}.Points(n, unit), unit)
	dHammersley := StarDiscrepancy(Hammersley{}.Points(n, unit), unit)
	dSobol := StarDiscrepancy(Sobol2D{}.Points(n, unit), unit)
	worstRandom := 0.0
	bestRandom := math.Inf(1)
	for seed := uint64(1); seed <= 5; seed++ {
		d := StarDiscrepancy(Uniform{Seed: seed}.Points(n, unit), unit)
		worstRandom = math.Max(worstRandom, d)
		bestRandom = math.Min(bestRandom, d)
	}
	for name, d := range map[string]float64{
		"halton": dHalton, "hammersley": dHammersley, "sobol": dSobol,
	} {
		if d >= bestRandom {
			t.Errorf("%s D* = %v not below best random %v", name, d, bestRandom)
		}
		// log2(512)=9; D* should be near (log n)/n territory, well under 5%.
		if d > 0.05 {
			t.Errorf("%s D* = %v unexpectedly high", name, d)
		}
	}
	if worstRandom < 0.02 {
		t.Errorf("random D* = %v suspiciously low; measurement broken?", worstRandom)
	}
}

func TestEstimateIsLowerBound(t *testing.T) {
	const n = 256
	unit := geom.Square(1)
	for _, g := range []Generator{Halton{}, Uniform{Seed: 3}} {
		pts := g.Points(n, unit)
		exact := StarDiscrepancy(pts, unit)
		est := EstimateStarDiscrepancy(pts, unit, 2000, 7)
		if est > exact+1e-9 {
			t.Errorf("%s: estimate %v exceeds exact %v", g.Name(), est, exact)
		}
		if est < exact/4 {
			t.Errorf("%s: estimate %v too loose vs exact %v", g.Name(), est, exact)
		}
	}
}

func TestEstimateDegenerate(t *testing.T) {
	if EstimateStarDiscrepancy(nil, geom.Square(1), 100, 1) != 0 {
		t.Error("empty set should estimate 0")
	}
	pts := []geom.Point{{X: 0.5, Y: 0.5}}
	if EstimateStarDiscrepancy(pts, geom.Square(1), 0, 1) != 0 {
		t.Error("zero trials should return 0")
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 2)
	f.add(7, 5)
	f.add(3, 1)
	if got := f.prefix(2); got != 0 {
		t.Errorf("prefix(2) = %d", got)
	}
	if got := f.prefix(3); got != 3 {
		t.Errorf("prefix(3) = %d", got)
	}
	if got := f.prefix(10); got != 8 {
		t.Errorf("prefix(10) = %d", got)
	}
}

// Halton discrepancy decreases roughly like log²N/N; check monotone
// improvement across decades.
func TestHaltonDiscrepancyShrinks(t *testing.T) {
	unit := geom.Square(1)
	d100 := StarDiscrepancy(Halton{}.Points(100, unit), unit)
	d1000 := StarDiscrepancy(Halton{}.Points(1000, unit), unit)
	if d1000 >= d100/2 {
		t.Errorf("D*(1000)=%v not well below D*(100)=%v", d1000, d100)
	}
}

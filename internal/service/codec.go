package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"decor/internal/jsonx"
)

// This file is the serving layer's hand-rolled codec (DESIGN.md §16):
// append-based encoders whose bytes are identical to encoding/json's,
// and fast-path request parsers that bail to encoding/json on anything
// outside the common grammar. Byte parity is a hard invariant — the
// plan cache, the flight group, and X-Decor-Cache all promise that one
// request body maps to one response byte string regardless of which
// path (miss, hit, coalesced, replayed delta) produced it.

// reqKey is the canonical request hash used by the plan cache and the
// flight group: sha256 over endpoint + 0x00 + the canonical JSON of the
// normalized request. A fixed-size array key costs no allocation per
// lookup, unlike the old hex string.
type reqKey [32]byte

var zeroReqKey reqKey

// ---------------------------------------------------------------------
// Response encoders
// ---------------------------------------------------------------------

// appendErrorBody appends {"error":"msg"} followed by a newline — the
// exact bytes json.Marshal of the error struct plus '\n' produced.
func appendErrorBody(b []byte, msg string) []byte {
	b = append(b, `{"error":`...)
	b = jsonx.AppendString(b, msg)
	return append(b, '}', '\n')
}

// appendPlanResponse appends resp exactly as json.Marshal renders it
// (no trailing newline). The only failure mode is a non-finite float,
// which json.Marshal also refuses.
func appendPlanResponse(b []byte, resp *PlanResponse) ([]byte, error) {
	var ok bool
	b = append(b, `{"method":`...)
	b = jsonx.AppendString(b, resp.Method)
	b = append(b, `,"k":`...)
	b = jsonx.AppendInt(b, int64(resp.K))
	b = append(b, `,"placed":`...)
	b = jsonx.AppendInt(b, int64(resp.Placed))
	b = append(b, `,"total_sensors":`...)
	b = jsonx.AppendInt(b, int64(resp.TotalSensors))
	b = append(b, `,"messages":`...)
	b = jsonx.AppendInt(b, int64(resp.Messages))
	b = append(b, `,"messages_per_cell":`...)
	if b, ok = jsonx.AppendFloat(b, resp.MessagesPerCell); !ok {
		return b, errNonFinite("messages_per_cell", resp.MessagesPerCell)
	}
	b = append(b, `,"rounds":`...)
	b = jsonx.AppendInt(b, int64(resp.Rounds))
	b = append(b, `,"seeded":`...)
	b = jsonx.AppendInt(b, int64(resp.Seeded))
	if resp.Failed != 0 {
		b = append(b, `,"failed":`...)
		b = jsonx.AppendInt(b, int64(resp.Failed))
	}
	b = append(b, `,"placements":`...)
	if resp.Placements == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range resp.Placements {
			if i > 0 {
				b = append(b, ',')
			}
			var err error
			if b, err = appendPointSpec(b, &resp.Placements[i]); err != nil {
				return b, err
			}
		}
		b = append(b, ']')
	}
	b = append(b, `,"coverage_k":`...)
	if b, ok = jsonx.AppendFloat(b, resp.CoverageK); !ok {
		return b, errNonFinite("coverage_k", resp.CoverageK)
	}
	b = append(b, `,"coverage_1":`...)
	if b, ok = jsonx.AppendFloat(b, resp.Coverage1); !ok {
		return b, errNonFinite("coverage_1", resp.Coverage1)
	}
	b = append(b, `,"fully_covered":`...)
	b = jsonx.AppendBool(b, resp.Covered)
	return append(b, '}'), nil
}

func appendPointSpec(b []byte, p *PointSpec) ([]byte, error) {
	var ok bool
	b = append(b, `{"x":`...)
	if b, ok = jsonx.AppendFloat(b, p.X); !ok {
		return b, errNonFinite("placement x", p.X)
	}
	b = append(b, `,"y":`...)
	if b, ok = jsonx.AppendFloat(b, p.Y); !ok {
		return b, errNonFinite("placement y", p.Y)
	}
	return append(b, '}'), nil
}

func errNonFinite(field string, v float64) error {
	return fmt.Errorf("service: response %s %v is not a valid JSON number", field, v)
}

// ---------------------------------------------------------------------
// Canonical request encoding (cache-key input)
// ---------------------------------------------------------------------

// appendPlanRequest appends pr exactly as json.Marshal renders it. The
// request is already normalized (finite floats everywhere), so there is
// no error path; a non-finite float would have been rejected upstream.
func appendPlanRequest(b []byte, pr *PlanRequest) []byte {
	b = append(b, `{"field_side":`...)
	b = mustAppendFloat(b, pr.FieldSide)
	b = append(b, `,"k":`...)
	b = jsonx.AppendInt(b, int64(pr.K))
	b = append(b, `,"rs":`...)
	b = mustAppendFloat(b, pr.Rs)
	if pr.Rc != 0 {
		b = append(b, `,"rc":`...)
		b = mustAppendFloat(b, pr.Rc)
	}
	if pr.NumPoints != 0 {
		b = append(b, `,"num_points":`...)
		b = jsonx.AppendInt(b, int64(pr.NumPoints))
	}
	if pr.Generator != "" {
		b = append(b, `,"generator":`...)
		b = jsonx.AppendString(b, pr.Generator)
	}
	if pr.Seed != 0 {
		b = append(b, `,"seed":`...)
		b = jsonx.AppendUint(b, pr.Seed)
	}
	if len(pr.Sensors) > 0 {
		b = append(b, `,"sensors":[`...)
		for i := range pr.Sensors {
			if i > 0 {
				b = append(b, ',')
			}
			s := &pr.Sensors[i]
			b = append(b, '{')
			if s.ID != nil {
				b = append(b, `"id":`...)
				b = jsonx.AppendInt(b, int64(*s.ID))
				b = append(b, ',')
			}
			b = append(b, `"x":`...)
			b = mustAppendFloat(b, s.X)
			b = append(b, `,"y":`...)
			b = mustAppendFloat(b, s.Y)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if pr.Scatter != 0 {
		b = append(b, `,"scatter":`...)
		b = jsonx.AppendInt(b, int64(pr.Scatter))
	}
	if pr.Method != "" {
		b = append(b, `,"method":`...)
		b = jsonx.AppendString(b, pr.Method)
	}
	if pr.TimeoutMS != 0 {
		b = append(b, `,"timeout_ms":`...)
		b = jsonx.AppendInt(b, int64(pr.TimeoutMS))
	}
	return append(b, '}')
}

// appendRepairRequest appends rr exactly as json.Marshal renders it:
// the embedded PlanRequest fields inline, then "failed" (not omitempty,
// so nil renders null and empty renders []).
func appendRepairRequest(b []byte, rr *RepairRequest) []byte {
	b = appendPlanRequest(b, &rr.PlanRequest)
	b = b[:len(b)-1] // reopen the object to add the repair field
	b = append(b, `,"failed":`...)
	if rr.Failed == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, id := range rr.Failed {
			if i > 0 {
				b = append(b, ',')
			}
			b = jsonx.AppendInt(b, int64(id))
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// mustAppendFloat is for already-validated finite values.
func mustAppendFloat(b []byte, f float64) []byte {
	b, ok := jsonx.AppendFloat(b, f)
	if !ok {
		panic(fmt.Sprintf("service: canonical encode of non-finite %v", f))
	}
	return b
}

// keyPlan hashes the normalized plan request into its cache key
// (timeout excluded — see the key() doc in request.go).
func keyPlan(pr *PlanRequest) reqKey {
	buf := jsonx.GetBuf()
	b := append((*buf)[:0], "plan\x00"...)
	save := pr.TimeoutMS
	pr.TimeoutMS = 0
	b = appendPlanRequest(b, pr)
	pr.TimeoutMS = save
	*buf = b
	k := sha256.Sum256(b)
	jsonx.PutBuf(buf)
	return k
}

func keyRepair(rr *RepairRequest) reqKey {
	buf := jsonx.GetBuf()
	b := append((*buf)[:0], "repair\x00"...)
	save := rr.TimeoutMS
	rr.TimeoutMS = 0
	b = appendRepairRequest(b, rr)
	rr.TimeoutMS = save
	*buf = b
	k := sha256.Sum256(b)
	jsonx.PutBuf(buf)
	return k
}

// ---------------------------------------------------------------------
// Request body reading
// ---------------------------------------------------------------------

// readBody drains r into the pooled buffer *buf and returns the bytes.
// A MaxBytesReader limit trip maps to the same 413 apiError decodeJSON
// produced; any other read failure wraps exactly as the stream decoder
// used to surface it.
func readBody(r io.Reader, buf *[]byte) ([]byte, error) {
	b := (*buf)[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			*buf = b
			return b, nil
		}
		if err != nil {
			*buf = b
			var maxErr *http.MaxBytesError
			if errors.As(err, &maxErr) {
				return nil, &apiError{status: http.StatusRequestEntityTooLarge,
					msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
			}
			return nil, badRequest("invalid JSON: %v", err)
		}
	}
}

// ---------------------------------------------------------------------
// Fast-path request decoding
// ---------------------------------------------------------------------

// internName returns a copy of b as a string, reusing the static name
// for the generator/method vocabulary so the hot path never allocates
// for a name the server actually recognizes.
func internName(b []byte) string {
	switch string(b) { // compiled to an alloc-free comparison
	case "halton":
		return "halton"
	case "hammersley":
		return "hammersley"
	case "sobol":
		return "sobol"
	case "uniform":
		return "uniform"
	case "jittered":
		return "jittered"
	case "lhs":
		return "lhs"
	case "faure":
		return "faure"
	case "halton-scrambled":
		return "halton-scrambled"
	case "centralized":
		return "centralized"
	case "random":
		return "random"
	case "grid-small":
		return "grid-small"
	case "grid-big":
		return "grid-big"
	case "voronoi-small":
		return "voronoi-small"
	case "voronoi-big":
		return "voronoi-big"
	case "lattice":
		return "lattice"
	}
	return string(b)
}

// decInt narrows a fast-parsed integer into int, bailing on platforms
// where it would not round-trip.
func decInt(d *jsonx.Dec) (int, bool) {
	v, ok := d.Int()
	if !ok || int64(int(v)) != v {
		return 0, false
	}
	return int(v), true
}

// fastParsePlanFields parses one JSON object's worth of PlanRequest
// fields into pr. Keys outside the plan vocabulary go to extra (nil
// extra means bail); any grammar the fast path cannot prove equivalent
// to encoding/json's reading — escapes, nulls, case-folded keys,
// unknown fields — reports false, and the caller MUST rerun the stdlib
// decoder over the same bytes for exact acceptance and error parity.
func fastParsePlanFields(d *jsonx.Dec, pr *PlanRequest, extra func(key []byte, d *jsonx.Dec) bool) bool {
	if !d.Consume('{') {
		return false
	}
	if d.Consume('}') {
		return true
	}
	for {
		key, ok := d.Key()
		if !ok {
			return false
		}
		switch string(key) {
		case "field_side":
			if pr.FieldSide, ok = d.Float(); !ok {
				return false
			}
		case "k":
			if pr.K, ok = decInt(d); !ok {
				return false
			}
		case "rs":
			if pr.Rs, ok = d.Float(); !ok {
				return false
			}
		case "rc":
			if pr.Rc, ok = d.Float(); !ok {
				return false
			}
		case "num_points":
			if pr.NumPoints, ok = decInt(d); !ok {
				return false
			}
		case "generator":
			s, ok := d.Str()
			if !ok {
				return false
			}
			pr.Generator = internName(s)
		case "seed":
			if pr.Seed, ok = d.Uint(); !ok {
				return false
			}
		case "sensors":
			if pr.Sensors, ok = fastParseSensors(d); !ok {
				return false
			}
		case "scatter":
			if pr.Scatter, ok = decInt(d); !ok {
				return false
			}
		case "method":
			s, ok := d.Str()
			if !ok {
				return false
			}
			pr.Method = internName(s)
		case "timeout_ms":
			if pr.TimeoutMS, ok = decInt(d); !ok {
				return false
			}
		default:
			if extra == nil || !extra(key, d) {
				return false
			}
		}
		if d.Consume(',') {
			continue
		}
		return d.Consume('}')
	}
}

func fastParseSensors(d *jsonx.Dec) ([]SensorSpec, bool) {
	if !d.Consume('[') {
		return nil, false
	}
	out := []SensorSpec{} // "[]" decodes to a non-nil empty slice, like stdlib
	if d.Consume(']') {
		return out, true
	}
	for {
		var s SensorSpec
		if !d.Consume('{') {
			return nil, false
		}
		if !d.Consume('}') {
			for {
				key, ok := d.Key()
				if !ok {
					return nil, false
				}
				switch string(key) {
				case "id":
					v, ok := decInt(d)
					if !ok {
						return nil, false
					}
					s.ID = intPtr(v)
				case "x":
					if s.X, ok = d.Float(); !ok {
						return nil, false
					}
				case "y":
					if s.Y, ok = d.Float(); !ok {
						return nil, false
					}
				default:
					return nil, false
				}
				if d.Consume(',') {
					continue
				}
				if d.Consume('}') {
					break
				}
				return nil, false
			}
		}
		out = append(out, s)
		if d.Consume(',') {
			continue
		}
		if d.Consume(']') {
			return out, true
		}
		return nil, false
	}
}

// fastParseInts parses a JSON array of integers into scratch's backing
// array. "[]"-for-empty matches stdlib's non-nil empty slice.
func fastParseInts(d *jsonx.Dec, scratch []int) ([]int, bool) {
	if !d.Consume('[') {
		return nil, false
	}
	out := scratch[:0]
	if out == nil {
		out = make([]int, 0)
	}
	if d.Consume(']') {
		return out, true
	}
	for {
		v, ok := decInt(d)
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if d.Consume(',') {
			continue
		}
		if d.Consume(']') {
			return out, true
		}
		return nil, false
	}
}

// finishFast applies decodeJSON's trailing-data rule to a fast-parsed
// body: trailing whitespace is fine, anything else is the same 400.
func finishFast(d *jsonx.Dec) error {
	if !d.AtEnd() {
		return badRequest("trailing data after request object")
	}
	return nil
}

// decPool recycles decoder state. A stack Dec would be free, but the
// field-hook closure in fastParsePlanFields makes escape analysis move
// it to the heap on every call — pooling gets the alloc back.
var decPool = sync.Pool{New: func() any { return new(jsonx.Dec) }}

func getDec(data []byte) *jsonx.Dec {
	d := decPool.Get().(*jsonx.Dec)
	*d = jsonx.Dec{Data: data}
	return d
}

func putDec(d *jsonx.Dec) {
	d.Data = nil // don't pin the (pooled) body buffer
	decPool.Put(d)
}

// decodePlanRequest decodes one /v1/plan body: fast path first, stdlib
// fallback (over the identical bytes, after resetting pr) on any bail.
func decodePlanRequest(data []byte, pr *PlanRequest) error {
	d := getDec(data)
	defer putDec(d)
	if fastParsePlanFields(d, pr, nil) {
		return finishFast(d)
	}
	*pr = PlanRequest{}
	return decodeJSON(bytes.NewReader(data), pr)
}

// decodeRepairRequest decodes one /v1/repair body the same way.
func decodeRepairRequest(data []byte, rr *RepairRequest) error {
	d := getDec(data)
	defer putDec(d)
	ok := fastParsePlanFields(d, &rr.PlanRequest, func(key []byte, d *jsonx.Dec) bool {
		if string(key) != "failed" {
			return false
		}
		var ok bool
		rr.Failed, ok = fastParseInts(d, nil)
		return ok
	})
	if ok {
		return finishFast(d)
	}
	*rr = RepairRequest{}
	return decodeJSON(bytes.NewReader(data), rr)
}

// decodeFieldRequest decodes one POST /v1/fields body.
func decodeFieldRequest(data []byte, fr *FieldRequest) error {
	d := getDec(data)
	defer putDec(d)
	ok := fastParsePlanFields(d, &fr.PlanRequest, func(key []byte, d *jsonx.Dec) bool {
		if string(key) != "field_id" {
			return false
		}
		s, ok := d.Str()
		if !ok {
			return false
		}
		fr.FieldID = string(s)
		return true
	})
	if ok {
		return finishFast(d)
	}
	*fr = FieldRequest{}
	return decodeJSON(bytes.NewReader(data), fr)
}

// ---------------------------------------------------------------------
// NDJSON event stream scanning
// ---------------------------------------------------------------------

// eventScanner reads the whitespace-separated stream of failure-event
// objects from a request body the way json.Decoder did, without a
// json.Unmarshal per event: objects are lexed out of a single pooled
// buffer and fast-parsed into a reused []int. The moment the stream
// leaves the fast grammar — a non-object value, a mid-object EOF, an
// escape, an unknown field — the scanner hands the unconsumed bytes to
// a real json.Decoder and stays there, so every acceptance decision and
// error string on the slow path is the stdlib's.
type eventScanner struct {
	body     io.Reader
	bufp     *[]byte
	pos      int
	eof      bool
	fallback *json.Decoder
	scratch  []int
}

func newEventScanner(body io.Reader) *eventScanner {
	return &eventScanner{body: body, bufp: jsonx.GetBuf()}
}

// close releases the pooled buffer. The scanner must not be used after;
// the []int returned by next is owned by the caller only until the
// following next call (session.Manager.Apply copies it synchronously).
func (sc *eventScanner) close() {
	jsonx.PutBuf(sc.bufp)
	sc.bufp = nil
}

// fill reads more body bytes into the buffer; returns false at EOF.
func (sc *eventScanner) fill() (bool, error) {
	if sc.eof {
		return false, nil
	}
	b := *sc.bufp
	if len(b) == cap(b) {
		b = append(b, 0)[:len(b)]
	}
	n, err := sc.body.Read(b[len(b):cap(b)])
	*sc.bufp = b[: len(b)+n : cap(b)]
	if err == io.EOF {
		sc.eof = true
		return n > 0, nil
	}
	if err != nil {
		return false, err
	}
	return n > 0 || !sc.eof, nil
}

// switchToFallback routes everything from the current position on
// through a stdlib decoder with the stream semantics the old handler
// used, then serves the next event from it.
func (sc *eventScanner) switchToFallback() ([]int, error) {
	rest := (*sc.bufp)[sc.pos:]
	var r io.Reader = sc.body
	if sc.eof {
		r = bytes.NewReader(rest)
	} else if len(rest) > 0 {
		r = io.MultiReader(bytes.NewReader(rest), sc.body)
	}
	sc.fallback = json.NewDecoder(r)
	sc.fallback.DisallowUnknownFields()
	return sc.next()
}

// next returns the failed-sensor list of the next event, io.EOF at the
// clean end of the stream, or the error the old json.Decoder loop would
// have surfaced. The returned slice is valid until the next call.
func (sc *eventScanner) next() ([]int, error) {
	if sc.fallback != nil {
		var ev EventRequest
		if err := sc.fallback.Decode(&ev); err != nil {
			return nil, err
		}
		return ev.Failed, nil
	}
	// Skip inter-value whitespace, filling as needed.
	for {
		b := *sc.bufp
		for sc.pos < len(b) && (b[sc.pos] == ' ' || b[sc.pos] == '\t' || b[sc.pos] == '\r' || b[sc.pos] == '\n') {
			sc.pos++
		}
		if sc.pos < len(b) {
			break
		}
		more, err := sc.fill()
		if err != nil {
			return nil, err
		}
		if !more && sc.pos >= len(*sc.bufp) {
			return nil, io.EOF
		}
	}
	if (*sc.bufp)[sc.pos] != '{' {
		return sc.switchToFallback()
	}
	// Lex one balanced object, filling as needed.
	start := sc.pos
	depth := 0
	inStr, esc := false, false
	i := sc.pos
	for {
		b := *sc.bufp
		for ; i < len(b); i++ {
			c := b[i]
			switch {
			case esc:
				esc = false
			case inStr:
				if c == '\\' {
					esc = true
				} else if c == '"' {
					inStr = false
				}
			case c == '"':
				inStr = true
			case c == '{':
				depth++
			case c == '}':
				depth--
				if depth == 0 {
					i++
					goto object
				}
			}
		}
		more, err := sc.fill()
		if err != nil {
			return nil, err
		}
		if !more && i >= len(*sc.bufp) {
			// EOF mid-object: the stdlib decoder turns this into
			// io.ErrUnexpectedEOF (or a syntax error); reproduce it.
			return sc.switchToFallback()
		}
	}
object:
	obj := (*sc.bufp)[start:i]
	sc.pos = i
	if failed, ok := fastParseEvent(obj, sc.scratch); ok {
		sc.scratch = failed[:0]
		return failed, nil
	}
	// The object is balanced but outside the fast grammar: decode just
	// its bytes with the stdlib for exact field/error semantics.
	dec := json.NewDecoder(bytes.NewReader(obj))
	dec.DisallowUnknownFields()
	var ev EventRequest
	if err := dec.Decode(&ev); err != nil {
		return nil, err
	}
	return ev.Failed, nil
}

// fastParseEvent parses {"failed":[ints]} into scratch's backing array.
func fastParseEvent(data []byte, scratch []int) ([]int, bool) {
	d := jsonx.Dec{Data: data}
	if !d.Consume('{') {
		return nil, false
	}
	if d.Consume('}') {
		return scratch[:0], true
	}
	var failed []int
	for {
		key, ok := d.Key()
		if !ok || string(key) != "failed" {
			return nil, false
		}
		if failed, ok = fastParseInts(&d, scratch); !ok {
			return nil, false
		}
		if d.Consume(',') {
			continue
		}
		if !d.Consume('}') {
			return nil, false
		}
		return failed, d.AtEnd()
	}
}

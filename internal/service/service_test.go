package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"decor/internal/obs"
)

// testServer bundles a Server with its own registry and HTTP listener.
type testServer struct {
	svc *Server
	ts  *httptest.Server
	reg *obs.Registry
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return &testServer{svc: svc, ts: ts, reg: cfg.Registry}
}

func (s *testServer) post(t *testing.T, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(s.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func (s *testServer) counter(name string) int64 { return s.reg.Counter(name).Value() }

// planBody is a small, fast request: a quarter-scale field the
// centralized planner covers in a few milliseconds.
func planBody(seed uint64) string {
	return fmt.Sprintf(`{"field_side":50,"k":2,"rs":4,"num_points":500,"seed":%d,"scatter":40,"method":"centralized"}`, seed)
}

func decodePlan(t *testing.T, b []byte) PlanResponse {
	t.Helper()
	var pr PlanResponse
	if err := json.Unmarshal(b, &pr); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, b)
	}
	return pr
}

func TestPlanEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	status, hdr, body := s.post(t, "/v1/plan", planBody(1))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if got := hdr.Get(cacheStatusHeader); got != "miss" {
		t.Errorf("first request cache status = %q, want miss", got)
	}
	pr := decodePlan(t, body)
	if pr.Method != "centralized" || pr.K != 2 {
		t.Errorf("plan = %+v", pr)
	}
	if !pr.Covered || pr.CoverageK != 1 {
		t.Errorf("plan did not restore full coverage: %+v", pr)
	}
	if pr.Placed != len(pr.Placements) || pr.Placed == 0 {
		t.Errorf("placed %d != placements %d (or zero)", pr.Placed, len(pr.Placements))
	}
	if pr.TotalSensors != 40+pr.Placed {
		t.Errorf("total %d, want scatter 40 + placed %d", pr.TotalSensors, pr.Placed)
	}
}

func TestPlanCacheHitIsByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	_, hdr1, body1 := s.post(t, "/v1/plan", planBody(7))
	_, hdr2, body2 := s.post(t, "/v1/plan", planBody(7))
	if hdr1.Get(cacheStatusHeader) != "miss" || hdr2.Get(cacheStatusHeader) != "hit" {
		t.Fatalf("cache statuses = %q, %q; want miss, hit",
			hdr1.Get(cacheStatusHeader), hdr2.Get(cacheStatusHeader))
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cached body differs from computed body:\n%s\nvs\n%s", body1, body2)
	}
	if s.counter(obs.ServeCacheHits) != 1 || s.counter(obs.ServeCacheMisses) != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1",
			s.counter(obs.ServeCacheHits), s.counter(obs.ServeCacheMisses))
	}
	// A different timeout_ms is the same plan: still a hit.
	_, hdr3, body3 := s.post(t, "/v1/plan",
		`{"field_side":50,"k":2,"rs":4,"num_points":500,"seed":7,"scatter":40,"method":"centralized","timeout_ms":5000}`)
	if hdr3.Get(cacheStatusHeader) != "hit" || !bytes.Equal(body1, body3) {
		t.Errorf("timeout_ms should not change the cache key (status %q)", hdr3.Get(cacheStatusHeader))
	}
	// A different seed is a different plan: miss, different bytes.
	_, hdr4, body4 := s.post(t, "/v1/plan", planBody(8))
	if hdr4.Get(cacheStatusHeader) != "miss" {
		t.Errorf("different seed cache status = %q, want miss", hdr4.Get(cacheStatusHeader))
	}
	if bytes.Equal(body1, body4) {
		t.Errorf("different seeds should give different plans")
	}
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	const n = 8
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, bodies[i] = s.post(t, "/v1/plan", planBody(99))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d status = %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs under coalescing", i)
		}
	}
	hits := s.counter(obs.ServeCacheHits)
	misses := s.counter(obs.ServeCacheMisses)
	coalesced := s.counter(obs.ServeCoalesced)
	if hits+misses+coalesced != n {
		t.Errorf("hits %d + misses %d + coalesced %d != %d", hits, misses, coalesced, n)
	}
	if misses < 1 {
		t.Errorf("expected at least one cold computation")
	}
}

func TestRepairEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	// A deployment with explicit IDs; fail two of them.
	body := `{"field_side":50,"k":1,"rs":6,"num_points":400,"seed":3,
		"sensors":[{"id":10,"x":10,"y":10},{"id":11,"x":40,"y":40},{"id":12,"x":25,"y":25}],
		"method":"grid-small","failed":[10,12]}`
	status, _, resp := s.post(t, "/v1/repair", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, resp)
	}
	pr := decodePlan(t, resp)
	if pr.Failed != 2 {
		t.Errorf("failed = %d, want 2", pr.Failed)
	}
	if !pr.Covered {
		t.Errorf("repair did not restore coverage: %+v", pr)
	}
	// Survivor 11 stays; 10 and 12 are gone before planning.
	if pr.TotalSensors != 1+pr.Placed {
		t.Errorf("total %d, want 1 survivor + %d placed", pr.TotalSensors, pr.Placed)
	}

	// Unknown failed ID is a validation error.
	status, _, resp = s.post(t, "/v1/repair",
		`{"field_side":50,"k":1,"rs":6,"num_points":400,"sensors":[{"x":10,"y":10}],"failed":[5]}`)
	if status != http.StatusBadRequest {
		t.Errorf("unknown failed id: status = %d, body %s", status, resp)
	}

	// Implicit sequential IDs: sensor 0 exists, failing it works.
	status, _, resp = s.post(t, "/v1/repair",
		`{"field_side":50,"k":1,"rs":6,"num_points":400,"sensors":[{"x":10,"y":10}],"failed":[0]}`)
	if status != http.StatusOK {
		t.Errorf("implicit id repair: status = %d, body %s", status, resp)
	}
}

func TestPlanAndRepairKeysAreDisjoint(t *testing.T) {
	pr := PlanRequest{FieldSide: 50, K: 1, Rs: 4}
	npr, err := pr.normalize(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := (RepairRequest{PlanRequest: pr}).normalize(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if npr.key() == rr.key() {
		t.Errorf("plan and repair keys must differ for identical bodies")
	}
}

func TestBackpressure503WithRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Deterministically occupy the pool: one job running (blocked on a
	// channel), one job queued.
	release := make(chan struct{})
	blocked := make(chan struct{})
	mk := func(block bool) *job {
		return &job{
			ctx: context.Background(),
			runner: runnerFunc(func(context.Context) ([]byte, error) {
				if block {
					close(blocked)
					<-release
				}
				return []byte("{}"), nil
			}),
			done: make(chan jobResult, 1),
		}
	}
	j1, j2 := mk(true), mk(false)
	if err := s.svc.submit(j1); err != nil {
		t.Fatalf("first priming job should be admitted: %v", err)
	}
	<-blocked // the worker is now executing j1 and the queue is empty
	if err := s.svc.submit(j2); err != nil {
		t.Fatalf("second priming job should fill the queue: %v", err)
	}

	status, hdr, body := s.post(t, "/v1/plan", planBody(1))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, body %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("503 must carry Retry-After")
	}
	if s.counter(obs.ServeRejected) != 1 {
		t.Errorf("rejected counter = %d, want 1", s.counter(obs.ServeRejected))
	}
	close(release)
	<-j1.done
	<-j2.done

	// Capacity freed: the same request now succeeds.
	status, _, body = s.post(t, "/v1/plan", planBody(1))
	if status != http.StatusOK {
		t.Errorf("post-drain status = %d, body %s", status, body)
	}
}

func TestDeadlineExceededReturns504(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// Deterministic expiry: block the only worker so the request's 1 ms
	// budget burns away while its job is still queued. The deadline covers
	// queue wait, so once the worker frees up the job fails fast without
	// planning — no race against how quickly this machine can plan.
	release := make(chan struct{})
	blocked := make(chan struct{})
	blocker := &job{
		ctx: context.Background(),
		runner: runnerFunc(func(context.Context) ([]byte, error) {
			close(blocked)
			<-release
			return []byte("{}"), nil
		}),
		done: make(chan jobResult, 1),
	}
	if err := s.svc.submit(blocker); err != nil {
		t.Fatalf("blocker job should be admitted: %v", err)
	}
	<-blocked
	go func() {
		// The gauge rises when the plan's job is enqueued; its deadline
		// started even earlier (in the handler), so sleeping well past
		// 1 ms before releasing guarantees the job is dequeued expired.
		// (No t.Fatal here — this is not the test goroutine; a missed
		// condition just releases early and fails the assertions below.)
		for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(time.Millisecond) {
			if s.reg.Gauge(obs.ServeQueueDepth).Value() >= 1 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	status, _, body := s.post(t, "/v1/plan",
		`{"field_side":100,"k":8,"rs":4,"num_points":2000,"method":"centralized","timeout_ms":1}`)
	<-blocker.done
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if s.counter(obs.ServeTimeouts) != 1 {
		t.Errorf("timeout counter = %d, want 1", s.counter(obs.ServeTimeouts))
	}
	// A timed-out plan must not be cached.
	if s.svc.cache.Len() != 0 {
		t.Errorf("cache holds %d entries after a timeout, want 0", s.svc.cache.Len())
	}
}

func TestOversizedBodyFailsFastWith413(t *testing.T) {
	s := newTestServer(t, Config{Limits: Limits{MaxBodyBytes: 1024}})
	big := `{"field_side":50,"k":1,"rs":4,"sensors":[` +
		strings.Repeat(`{"x":1,"y":1},`, 2000) + `{"x":1,"y":1}]}`
	status, _, body := s.post(t, "/v1/plan", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if s.counter(obs.ServeBadRequests) != 1 {
		t.Errorf("bad-request counter = %d, want 1", s.counter(obs.ServeBadRequests))
	}
}

func TestValidationRejections(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"malformed json", "/v1/plan", `{"field_side":`},
		{"trailing data", "/v1/plan", `{"field_side":50,"k":1,"rs":4} garbage`},
		{"unknown field", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"bogus":1}`},
		{"zero field", "/v1/plan", `{"field_side":0,"k":1,"rs":4}`},
		{"k<1", "/v1/plan", `{"field_side":50,"k":0,"rs":4}`},
		{"giant k", "/v1/plan", `{"field_side":50,"k":1000000,"rs":4}`},
		{"rc<rs", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"rc":2}`},
		{"giant num_points", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"num_points":1000000000}`},
		{"giant scatter", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"scatter":1000000000}`},
		{"unknown method", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"method":"alchemy"}`},
		{"unknown generator", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"generator":"dice"}`},
		{"sensor off field", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"sensors":[{"x":60,"y":10}]}`},
		{"mixed sensor ids", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"sensors":[{"id":1,"x":1,"y":1},{"x":2,"y":2}]}`},
		{"duplicate sensor ids", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"sensors":[{"id":1,"x":1,"y":1},{"id":1,"x":2,"y":2}]}`},
		{"negative timeout", "/v1/plan", `{"field_side":50,"k":1,"rs":4,"timeout_ms":-1}`},
		{"duplicate failed ids", "/v1/repair", `{"field_side":50,"k":1,"rs":4,"sensors":[{"x":1,"y":1}],"failed":[0,0]}`},
	}
	for _, tc := range cases {
		status, _, body := s.post(t, tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", tc.name, status, body)
		}
	}
	if got := s.counter(obs.ServeBadRequests); got != int64(len(cases)) {
		t.Errorf("bad-request counter = %d, want %d", got, len(cases))
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, err := http.Get(s.ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, err := http.Get(s.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Errorf("healthz = %d %s", resp.StatusCode, b)
	}

	s.post(t, "/v1/plan", planBody(5))
	resp, err = http.Get(s.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), obs.ServePlanRequests+" 1") {
		t.Errorf("metrics scrape missing live request counter:\n%s", b)
	}
}

func TestGracefulShutdownDrainsInflight(t *testing.T) {
	reg := obs.NewRegistry()
	svc := New(Config{Workers: 1, Registry: reg})
	ts := httptest.NewServer(svc.Handler())

	// Put a controllable job in flight, bypassing HTTP so the drain
	// window is deterministic.
	release := make(chan struct{})
	running := make(chan struct{})
	j := &job{
		ctx: context.Background(),
		runner: runnerFunc(func(context.Context) ([]byte, error) {
			close(running)
			<-release
			return []byte(`{"drained":true}`), nil
		}),
		done: make(chan jobResult, 1),
	}
	if err := svc.submit(j); err != nil {
		t.Fatalf("job not admitted: %v", err)
	}
	<-running

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- svc.Shutdown(ctx)
	}()

	// Draining: no new work, healthz flips to 503.
	waitFor(t, func() bool { return svc.Draining() })
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	status, _, _ := postRaw(t, ts.URL+"/v1/plan", planBody(1))
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining plan = %d, want 503", status)
	}

	// The in-flight job completes before Shutdown returns.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned before the in-flight plan finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	res := <-j.done
	if res.err != nil || !bytes.Contains(res.body, []byte("drained")) {
		t.Errorf("in-flight job result = %+v", res)
	}
	ts.Close()
}

func postRaw(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLRUCacheEvicts(t *testing.T) {
	c := newPlanCache(2)
	ka, kb, kc := testKey("a"), testKey("b"), testKey("c")
	c.Put(ka, []byte("A"))
	c.Put(kb, []byte("B"))
	if _, _, ok := c.Get(ka); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put(kc, []byte("C")) // evicts b (a was refreshed)
	if _, _, ok := c.Get(kb); ok {
		t.Error("b should have been evicted")
	}
	if body, clen, ok := c.Get(ka); !ok {
		t.Error("a should survive (recently used)")
	} else if len(clen) != 1 || clen[0] != strconv.Itoa(len(body)) {
		t.Errorf("cached Content-Length %v, want [%d]", clen, len(body))
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

package service

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

// testKey derives a distinct reqKey from an arbitrary label, standing in
// for the canonical request digest in cache/flight unit tests.
func testKey(label string) reqKey {
	return sha256.Sum256([]byte(label))
}

// TestSingleflightSurvivesEvictionChurn is a regression test for the
// interaction between the LRU byte-cache and singleflight coalescing
// when the in-flight key is evicted mid-computation. A tiny cache is
// churned hard while leaders compute, so the hot key's entry is evicted
// between the leader's Put and everything that follows. The contract
// under test: followers always replay the leader's exact bytes (they
// read the flightCall, never the cache), a retired flight never wedges
// later requests, and the cache never exceeds capacity or serves torn
// bytes. Run under -race this also proves the Put/Get/begin/finish
// interleavings are properly synchronized.
func TestSingleflightSurvivesEvictionChurn(t *testing.T) {
	const (
		rounds    = 200
		followers = 4
		capacity  = 2
	)
	cache := newPlanCache(capacity)
	flights := newFlightGroup()

	// Churn goroutines continuously push junk keys, forcing evictions —
	// including of the hot key whenever a leader has just stored it.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 2; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					cache.Put(testKey(fmt.Sprintf("junk-%d-%d", g, i%8)), []byte("junk"))
				}
			}
		}(g)
	}

	hot := testKey("hot-key")
	for r := 0; r < rounds; r++ {
		want := []byte(fmt.Sprintf("round-%d-body", r))

		// All participants race begin(). More than one leader per round
		// is legal — a late requester can miss the already-evicted key
		// after the first flight retired and start a fresh one — but by
		// request determinism every leader computes identical bytes, so
		// followers of any flight must still see this round's body.
		var (
			wg      sync.WaitGroup
			leaders int
			mu      sync.Mutex
		)
		for f := 0; f < followers+1; f++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if body, _, ok := cache.Get(hot); ok {
					// Only this round's leader ever stores the hot key
					// (the previous round's entry was flushed), so a hit
					// must be this round's exact bytes — anything else is
					// a torn or stale body leaking through eviction.
					if !bytes.Equal(body, want) {
						t.Errorf("round %d: cache hit %q, want %q", r, body, want)
					}
					return
				}
				call, leader := flights.begin(hot)
				if leader {
					mu.Lock()
					leaders++
					mu.Unlock()
					cache.Put(hot, want)
					flights.finish(hot, call, want, 200, nil)
					return
				}
				<-call.done
				if !bytes.Equal(call.body, want) {
					t.Errorf("round %d: follower got %q, want %q", r, call.body, want)
				}
			}()
		}
		wg.Wait()
		if leaders < 1 {
			t.Fatalf("round %d: no leader elected despite a cold key", r)
		}
		if n := cache.Len(); n > capacity {
			t.Fatalf("round %d: cache holds %d entries, capacity %d", r, n, capacity)
		}
		// The flight must be retired: a fresh begin must elect a new
		// leader immediately rather than joining a closed call.
		call, leader := flights.begin(hot)
		if !leader {
			t.Fatalf("round %d: finished flight still registered", r)
		}
		flights.finish(hot, call, want, 200, nil)
		// Evict the hot key so the next round's Get misses and the
		// leader-election path is exercised again.
		for i := 0; i <= capacity; i++ {
			cache.Put(testKey(fmt.Sprintf("flush-%d-%d", r, i)), []byte("junk"))
		}
	}
	close(stop)
	churn.Wait()
}

package service

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestNormalizeFillsDefaults(t *testing.T) {
	pr, err := PlanRequest{FieldSide: 100, K: 3, Rs: 4}.normalize(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Rc != 8 {
		t.Errorf("Rc = %g, want 2·Rs", pr.Rc)
	}
	if pr.NumPoints != 2000 || pr.Generator != "halton" || pr.Method != "voronoi-big" {
		t.Errorf("defaults = %d %q %q", pr.NumPoints, pr.Generator, pr.Method)
	}
}

func TestNormalizeRejectsNonFinite(t *testing.T) {
	lim := DefaultLimits()
	bad := []PlanRequest{
		{FieldSide: math.NaN(), K: 1, Rs: 4},
		{FieldSide: math.Inf(1), K: 1, Rs: 4},
		{FieldSide: 50, K: 1, Rs: math.NaN()},
		{FieldSide: 50, K: 1, Rs: 4, Rc: math.Inf(1)},
		{FieldSide: 50, K: 1, Rs: 4, Sensors: []SensorSpec{{X: math.NaN(), Y: 1}}},
		{FieldSide: 50, K: 1, Rs: 4, Sensors: []SensorSpec{{X: 1, Y: math.Inf(-1)}}},
	}
	for i, pr := range bad {
		if _, err := pr.normalize(lim); err == nil {
			t.Errorf("request %d with non-finite input accepted", i)
		}
	}
}

func TestNormalizeAssignsSequentialIDs(t *testing.T) {
	pr, err := PlanRequest{FieldSide: 50, K: 1, Rs: 4,
		Sensors: []SensorSpec{{X: 1, Y: 1}, {X: 2, Y: 2}}}.normalize(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range pr.Sensors {
		if s.ID == nil || *s.ID != i {
			t.Errorf("sensor %d id = %v, want %d", i, s.ID, i)
		}
	}
}

func TestCacheKeySemantics(t *testing.T) {
	lim := DefaultLimits()
	base := PlanRequest{FieldSide: 100, K: 3, Rs: 4, Seed: 1}
	a, _ := base.normalize(lim)

	// Explicit defaults hash identically to implicit ones.
	explicit, _ := PlanRequest{FieldSide: 100, K: 3, Rs: 4, Rc: 8, NumPoints: 2000,
		Generator: "halton", Method: "voronoi-big", Seed: 1}.normalize(lim)
	if a.key() != explicit.key() {
		t.Errorf("defaulted and explicit requests must share a key")
	}

	// The timeout never affects the key.
	timed := a
	timed.TimeoutMS = 9999
	if a.key() != timed.key() {
		t.Errorf("timeout_ms must not affect the cache key")
	}

	// Any plan-affecting field does.
	for name, mut := range map[string]func(*PlanRequest){
		"seed":   func(p *PlanRequest) { p.Seed = 2 },
		"k":      func(p *PlanRequest) { p.K = 4 },
		"method": func(p *PlanRequest) { p.Method = "centralized" },
		"points": func(p *PlanRequest) { p.NumPoints = 1000 },
	} {
		m := a
		mut(&m)
		if m.key() == a.key() {
			t.Errorf("changing %s must change the key", name)
		}
	}
}

func TestTimeoutResolution(t *testing.T) {
	lim := Limits{DefaultTimeout: time.Second, MaxTimeout: 2 * time.Second}.normalized()
	if d := (PlanRequest{}).timeout(lim); d != time.Second {
		t.Errorf("default timeout = %v", d)
	}
	if d := (PlanRequest{TimeoutMS: 500}).timeout(lim); d != 500*time.Millisecond {
		t.Errorf("explicit timeout = %v", d)
	}
	if d := (PlanRequest{TimeoutMS: 60000}).timeout(lim); d != 2*time.Second {
		t.Errorf("timeout not clamped: %v", d)
	}
}

func TestDecodeJSONStrictness(t *testing.T) {
	var pr PlanRequest
	if err := decodeJSON(strings.NewReader(`{"field_side":50} {"k":1}`), &pr); err == nil {
		t.Error("trailing object accepted")
	}
	if err := decodeJSON(strings.NewReader(`{"nope":1}`), &pr); err == nil {
		t.Error("unknown field accepted")
	}
	if err := decodeJSON(strings.NewReader(`{"field_side":50}   `), &pr); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"decor/internal/core"
	"decor/internal/lowdisc"
)

// PointSpec is a position on the field in request/response JSON.
type PointSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// SensorSpec is one pre-deployed sensor in a request. ID is optional:
// either every sensor carries an explicit ID or none does (sequential IDs
// 0..n-1 are assigned), so /v1/repair failure references are unambiguous.
type SensorSpec struct {
	ID *int    `json:"id,omitempty"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// PlanRequest is the body of POST /v1/plan: a field description, the
// surviving deployment, and the reliability requirement; the response is
// the placement plan restoring full k-coverage.
type PlanRequest struct {
	// FieldSide is the edge length of the square monitored area.
	FieldSide float64 `json:"field_side"`
	// K is the coverage requirement (>= 1).
	K int `json:"k"`
	// Rs is the sensing radius; Rc the communication radius (default 2·Rs).
	Rs float64 `json:"rs"`
	Rc float64 `json:"rc,omitempty"`
	// NumPoints sizes the low-discrepancy field approximation (default
	// 2000, the paper's configuration).
	NumPoints int `json:"num_points,omitempty"`
	// Generator selects the point set (default "halton").
	Generator string `json:"generator,omitempty"`
	// Seed drives all randomness; equal requests replay identically.
	Seed uint64 `json:"seed,omitempty"`
	// Sensors lists the pre-deployed network explicitly; Scatter
	// additionally places this many uniform random sensors (the paper's
	// initial network). Both may be used together; scattered sensors take
	// IDs after the explicit ones.
	Sensors []SensorSpec `json:"sensors,omitempty"`
	Scatter int          `json:"scatter,omitempty"`
	// Method is one of the paper's six algorithms (default "voronoi-big").
	Method string `json:"method,omitempty"`
	// TimeoutMS bounds this request's planning time, including queue
	// wait (0 = server default; clamped to the server maximum).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RepairRequest is the body of POST /v1/repair: a full deployment plus
// the IDs of sensors known to have failed. The service destroys those
// sensors and plans the restoration of the survivors' field.
type RepairRequest struct {
	PlanRequest
	// Failed lists the destroyed sensors by ID (explicit IDs when the
	// request gives them, otherwise the implicit sequential ones).
	Failed []int `json:"failed"`
}

// Limits bounds what a single request may ask of the server. All caps
// are checked during validation, before any field or deployment is
// allocated.
type Limits struct {
	// MaxBodyBytes caps the request body (http.MaxBytesReader); larger
	// bodies fail with 413 without being read further.
	MaxBodyBytes int64
	// MaxPoints / MaxSensors / MaxK cap the work one plan may demand.
	// MaxSensors bounds len(Sensors)+Scatter.
	MaxPoints  int
	MaxSensors int
	MaxK       int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout clamps explicit ones.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

// DefaultLimits are production-shaped bounds: a full figure-scale field
// fits comfortably, while degenerate requests (giant point counts,
// absurd k) are rejected up front.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes:   1 << 20, // 1 MiB ≈ 25k sensors with explicit IDs
		MaxPoints:      20000,
		MaxSensors:     10000,
		MaxK:           64,
		DefaultTimeout: 2 * time.Second,
		MaxTimeout:     15 * time.Second,
	}
}

func (l Limits) normalized() Limits {
	d := DefaultLimits()
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = d.MaxBodyBytes
	}
	if l.MaxPoints <= 0 {
		l.MaxPoints = d.MaxPoints
	}
	if l.MaxSensors <= 0 {
		l.MaxSensors = d.MaxSensors
	}
	if l.MaxK <= 0 {
		l.MaxK = d.MaxK
	}
	if l.DefaultTimeout <= 0 {
		l.DefaultTimeout = d.DefaultTimeout
	}
	if l.MaxTimeout <= 0 {
		l.MaxTimeout = d.MaxTimeout
	}
	if l.DefaultTimeout > l.MaxTimeout {
		l.DefaultTimeout = l.MaxTimeout
	}
	return l
}

// apiError is a client-visible failure with an HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeJSON strictly decodes one JSON object from r into dst: unknown
// fields, trailing data and oversized bodies are errors. The returned
// error is already an *apiError (400 or 413).
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return badRequest("invalid JSON: %v", err)
	}
	// A second value after the object is a malformed request, not data
	// for a future handler.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badRequest("trailing data after request object")
	}
	return nil
}

// validGenSet / validMethodSet memoize the accepted name vocabularies at
// init (probed through the real constructors, so they can never drift),
// turning per-request validation into an alloc-free map probe instead of
// boxing a generator/method value into an interface every time. Names
// outside the sets still go through the constructor, so a vocabulary
// addition the init probe missed only costs the old boxing, never a
// wrong rejection.
var validGenSet = func() map[string]bool {
	m := make(map[string]bool)
	for _, n := range []string{
		"halton", "hammersley", "sobol", "uniform",
		"jittered", "lhs", "faure", "halton-scrambled",
	} {
		if _, err := lowdisc.ByName(n, 0); err == nil {
			m[n] = true
		}
	}
	return m
}()

var validMethodSet = func() map[string]bool {
	m := make(map[string]bool)
	for _, n := range append(core.AllMethodNames(), "lattice") {
		if _, err := core.MethodByName(n, 1); err == nil {
			m[n] = true
		}
	}
	return m
}()

func validGenerator(name string) bool {
	if validGenSet[name] {
		return true
	}
	_, err := lowdisc.ByName(name, 0)
	return err == nil
}

func validMethod(name string, rs float64) bool {
	if validMethodSet[name] {
		return true
	}
	_, err := core.MethodByName(name, rs)
	return err == nil
}

// normalize validates pr against lim and fills defaults, returning the
// canonical form that execution and request hashing share. Every
// rejection is an *apiError carrying the client-facing message.
func (pr PlanRequest) normalize(lim Limits) (PlanRequest, error) {
	if !isFinite(pr.FieldSide) || pr.FieldSide <= 0 {
		return pr, badRequest("field_side must be positive and finite")
	}
	if pr.K < 1 {
		return pr, badRequest("k must be at least 1")
	}
	if pr.K > lim.MaxK {
		return pr, badRequest("k %d exceeds the server limit %d", pr.K, lim.MaxK)
	}
	if !isFinite(pr.Rs) || pr.Rs <= 0 {
		return pr, badRequest("rs must be positive and finite")
	}
	if !isFinite(pr.Rc) || pr.Rc < 0 {
		return pr, badRequest("rc must be non-negative and finite")
	}
	if pr.Rc == 0 {
		pr.Rc = 2 * pr.Rs
	}
	if pr.Rc < pr.Rs {
		return pr, badRequest("rc %g must be at least rs %g (paper §2)", pr.Rc, pr.Rs)
	}
	if pr.NumPoints == 0 {
		pr.NumPoints = 2000
	}
	if pr.NumPoints < 1 {
		return pr, badRequest("num_points must be positive")
	}
	if pr.NumPoints > lim.MaxPoints {
		return pr, badRequest("num_points %d exceeds the server limit %d", pr.NumPoints, lim.MaxPoints)
	}
	if pr.Generator == "" {
		pr.Generator = "halton"
	}
	if !validGenerator(pr.Generator) {
		return pr, badRequest("unknown generator %q", pr.Generator)
	}
	if pr.Scatter < 0 {
		return pr, badRequest("scatter must be non-negative")
	}
	if n := len(pr.Sensors) + pr.Scatter; n > lim.MaxSensors {
		return pr, badRequest("sensor count %d exceeds the server limit %d", n, lim.MaxSensors)
	}
	if pr.Method == "" {
		pr.Method = "voronoi-big"
	}
	if !validMethod(pr.Method, pr.Rs) {
		return pr, badRequest("unknown method %q", pr.Method)
	}
	if pr.TimeoutMS < 0 {
		return pr, badRequest("timeout_ms must be non-negative")
	}

	// Sensors: finite in-field positions; IDs all explicit or all
	// implicit, non-negative and distinct. Normalizing to explicit IDs
	// here keeps the request hash and the repair ID space canonical.
	if len(pr.Sensors) == 0 {
		return pr, nil
	}
	explicit := 0
	for _, s := range pr.Sensors {
		if s.ID != nil {
			explicit++
		}
	}
	if explicit != 0 && explicit != len(pr.Sensors) {
		return pr, badRequest("either every sensor carries an id or none does")
	}
	norm := make([]SensorSpec, len(pr.Sensors))
	seen := make(map[int]struct{}, len(pr.Sensors))
	for i, s := range pr.Sensors {
		if !isFinite(s.X) || !isFinite(s.Y) {
			return pr, badRequest("sensor %d has a non-finite coordinate", i)
		}
		if s.X < 0 || s.X > pr.FieldSide || s.Y < 0 || s.Y > pr.FieldSide {
			return pr, badRequest("sensor %d at (%g, %g) is outside the field [0, %g]²", i, s.X, s.Y, pr.FieldSide)
		}
		id := i
		if s.ID != nil {
			id = *s.ID
			if id < 0 {
				return pr, badRequest("sensor %d has negative id %d", i, id)
			}
		}
		if _, dup := seen[id]; dup {
			return pr, badRequest("duplicate sensor id %d", id)
		}
		seen[id] = struct{}{}
		norm[i] = SensorSpec{ID: intPtr(id), X: s.X, Y: s.Y}
	}
	pr.Sensors = norm
	return pr, nil
}

// normalize validates the repair request: the embedded plan fields plus
// the failed-ID references, which must name existing sensors (explicit
// or scattered) exactly once each.
func (rr RepairRequest) normalize(lim Limits) (RepairRequest, error) {
	pr, err := rr.PlanRequest.normalize(lim)
	if err != nil {
		return rr, err
	}
	rr.PlanRequest = pr
	if len(rr.Failed) == 0 {
		// Nothing to validate against the deployment's ID space.
		return rr, nil
	}
	// Scattered sensors take sequential IDs after the largest explicit
	// one — the facade's nextID rule.
	maxID := -1
	known := make(map[int]struct{}, len(pr.Sensors)+pr.Scatter)
	for _, s := range pr.Sensors {
		known[*s.ID] = struct{}{}
		if *s.ID > maxID {
			maxID = *s.ID
		}
	}
	for i := 0; i < pr.Scatter; i++ {
		known[maxID+1+i] = struct{}{}
	}
	seen := make(map[int]struct{}, len(rr.Failed))
	for _, id := range rr.Failed {
		if _, ok := known[id]; !ok {
			return rr, badRequest("failed sensor id %d does not exist in the deployment", id)
		}
		if _, dup := seen[id]; dup {
			return rr, badRequest("duplicate failed sensor id %d", id)
		}
		seen[id] = struct{}{}
	}
	return rr, nil
}

// timeout resolves the request's effective deadline under lim.
func (pr PlanRequest) timeout(lim Limits) time.Duration {
	if pr.TimeoutMS == 0 {
		return lim.DefaultTimeout
	}
	d := time.Duration(pr.TimeoutMS) * time.Millisecond
	if d > lim.MaxTimeout {
		return lim.MaxTimeout
	}
	return d
}

// key hashes the canonical (normalized) request into the plan-cache
// key. The timeout is excluded: it bounds how long a client waits, never
// what a completed plan contains, so requests differing only in
// timeout_ms share one cache entry. The endpoint tag keeps /v1/plan and
// /v1/repair keys disjoint even for structurally identical bodies. The
// canonical bytes are rendered by the append codec (codec.go), which is
// byte-identical to json.Marshal, so keys survive the codec swap.
func (pr PlanRequest) key() reqKey {
	return keyPlan(&pr)
}

func (rr RepairRequest) key() reqKey {
	return keyRepair(&rr)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func intPtr(i int) *int { return &i }

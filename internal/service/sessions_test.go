package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"decor/internal/obs"
	"decor/internal/session"
)

// do issues a request with a tenant header against the test server.
func (s *testServer) do(t *testing.T, method, path, tenant, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, s.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// fieldBody is a small session field that plans in milliseconds.
func fieldBody(id string, seed uint64) string {
	return fmt.Sprintf(`{"field_id":%q,"field_side":30,"k":1,"rs":4,"num_points":200,"seed":%d,"scatter":20,"method":"centralized"}`, id, seed)
}

func decodeDelta(t *testing.T, b []byte) session.Delta {
	t.Helper()
	var d session.Delta
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("not a delta: %v\n%s", err, b)
	}
	return d
}

func TestFieldSessionLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	status, hdr, body := s.do(t, "POST", "/v1/fields", "acme", fieldBody("f1", 5))
	if status != http.StatusCreated {
		t.Fatalf("create status = %d, body %s", status, body)
	}
	if loc := hdr.Get("Location"); loc != "/v1/fields/f1" {
		t.Errorf("Location = %q", loc)
	}
	initial := decodeDelta(t, body)
	if initial.Seq != 0 || initial.FieldID != "f1" || !initial.Covered {
		t.Errorf("initial delta = %+v", initial)
	}

	// Duplicate create: 409.
	if status, _, _ := s.do(t, "POST", "/v1/fields", "acme", fieldBody("f1", 5)); status != http.StatusConflict {
		t.Errorf("duplicate create status = %d, want 409", status)
	}

	// Two NDJSON events in one request: two delta lines back, in order.
	status, _, body = s.do(t, "POST", "/v1/fields/f1/events", "acme",
		"{\"failed\":[1]}\n{\"failed\":[2,3]}\n")
	if status != http.StatusOK {
		t.Fatalf("events status = %d, body %s", status, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d delta lines, want 2:\n%s", len(lines), body)
	}
	d1, d2 := decodeDelta(t, lines[0]), decodeDelta(t, lines[1])
	if d1.Seq != 1 || d2.Seq != 2 {
		t.Errorf("delta seqs = %d, %d; want 1, 2", d1.Seq, d2.Seq)
	}
	if len(d2.Failed) != 2 {
		t.Errorf("second delta failed = %v", d2.Failed)
	}

	// Metadata reflects the applied events.
	status, _, body = s.do(t, "GET", "/v1/fields/f1", "acme", "")
	if status != http.StatusOK {
		t.Fatalf("get status = %d, body %s", status, body)
	}
	var info session.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Seq != 2 || !info.Covered {
		t.Errorf("info = %+v", info)
	}

	// Unknown sensor is a 400 and does not advance the session.
	if status, _, body := s.do(t, "POST", "/v1/fields/f1/events", "acme", `{"failed":[9999]}`); status != http.StatusBadRequest {
		t.Errorf("unknown sensor status = %d, body %s", status, body)
	}
	if _, _, body := s.do(t, "GET", "/v1/fields/f1", "acme", ""); !strings.Contains(string(body), `"seq":2`) {
		t.Errorf("rejected event advanced the session: %s", body)
	}

	// Delete, then the field is gone.
	if status, _, _ := s.do(t, "DELETE", "/v1/fields/f1", "acme", ""); status != http.StatusNoContent {
		t.Errorf("delete status = %d", status)
	}
	if status, _, _ := s.do(t, "GET", "/v1/fields/f1", "acme", ""); status != http.StatusNotFound {
		t.Errorf("get after delete status = %d", status)
	}
}

// TestFieldSessionMatchesStatelessReplay proves the delta-repair
// correctness criterion over HTTP: a session's cumulative delta stream
// is byte-identical to a second, fresh session driven through the same
// op sequence (the session architecture's replay determinism), and each
// delta's sensor accounting is internally consistent.
func TestFieldSessionMatchesStatelessReplay(t *testing.T) {
	run := func(s *testServer) []byte {
		var stream bytes.Buffer
		_, _, body := s.do(t, "POST", "/v1/fields", "t", fieldBody("f", 11))
		stream.Write(body)
		_, _, body = s.do(t, "POST", "/v1/fields/f/events", "t",
			"{\"failed\":[0]}\n{\"failed\":[4,5]}\n{\"failed\":[9]}\n")
		stream.Write(body)
		return stream.Bytes()
	}
	a := run(newTestServer(t, Config{Workers: 1}))
	b := run(newTestServer(t, Config{Workers: 2, Sessions: session.Config{Shards: 4}}))
	if !bytes.Equal(a, b) {
		t.Errorf("delta streams differ across servers:\n%s\nvs\n%s", a, b)
	}
	total := 0
	for _, line := range bytes.Split(bytes.TrimSpace(a), []byte("\n")) {
		d := decodeDelta(t, line)
		if d.Seq == 0 {
			total = d.TotalSensors
			continue
		}
		total += d.Placed - len(d.Failed)
		if d.TotalSensors != total {
			t.Errorf("seq %d: total %d, want %d", d.Seq, d.TotalSensors, total)
		}
		if !d.Covered {
			t.Errorf("seq %d: field not restored to full coverage", d.Seq)
		}
	}
}

func TestFieldTenantIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if status, _, body := s.do(t, "POST", "/v1/fields", "a", fieldBody("shared", 1)); status != http.StatusCreated {
		t.Fatalf("tenant a create: %d %s", status, body)
	}
	// Tenant b cannot see a's field...
	if status, _, _ := s.do(t, "GET", "/v1/fields/shared", "b", ""); status != http.StatusNotFound {
		t.Errorf("cross-tenant get status = %d, want 404", status)
	}
	if status, _, _ := s.do(t, "DELETE", "/v1/fields/shared", "b", ""); status != http.StatusNotFound {
		t.Errorf("cross-tenant delete status = %d, want 404", status)
	}
	// ...and may use the same field ID for its own session.
	if status, _, body := s.do(t, "POST", "/v1/fields", "b", fieldBody("shared", 2)); status != http.StatusCreated {
		t.Errorf("tenant b create with same id: %d %s", status, body)
	}
	// Both sessions work independently.
	if status, _, body := s.do(t, "POST", "/v1/fields/shared/events", "a", `{"failed":[1]}`); status != http.StatusOK {
		t.Errorf("tenant a event: %d %s", status, body)
	}
	if status, _, body := s.do(t, "POST", "/v1/fields/shared/events", "b", `{"failed":[1]}`); status != http.StatusOK {
		t.Errorf("tenant b event: %d %s", status, body)
	}
}

// TestFieldQuota429DoesNotDisturbOtherTenants is the acceptance
// criterion for admission isolation: a tenant that exhausts its session
// quota gets 429 + Retry-After while another tenant's sessions keep
// planning deltas with zero failures.
func TestFieldQuota429DoesNotDisturbOtherTenants(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:  2,
		Sessions: session.Config{MaxSessionsPerTenant: 2},
	})
	for i := 0; i < 2; i++ {
		if status, _, body := s.do(t, "POST", "/v1/fields", "noisy", fieldBody(fmt.Sprintf("n%d", i), uint64(i))); status != http.StatusCreated {
			t.Fatalf("noisy create %d: %d %s", i, status, body)
		}
	}
	if status, _, body := s.do(t, "POST", "/v1/fields", "good", fieldBody("g", 9)); status != http.StatusCreated {
		t.Fatalf("good create: %d %s", status, body)
	}

	status, hdr, body := s.do(t, "POST", "/v1/fields", "noisy", fieldBody("n2", 3))
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota create status = %d, body %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 must carry Retry-After")
	}

	// The good tenant keeps streaming events while the noisy tenant
	// keeps hammering creates.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			s.do(t, "POST", "/v1/fields", "noisy", fieldBody(fmt.Sprintf("x%d", i), uint64(i)))
		}
	}()
	for i := 0; i < 5; i++ {
		if status, _, body := s.do(t, "POST", "/v1/fields/g/events", "good", fmt.Sprintf(`{"failed":[%d]}`, i)); status != http.StatusOK {
			t.Errorf("good tenant disturbed at event %d: %d %s", i, status, body)
		}
	}
	wg.Wait()
	if got := s.counter(obs.SessionQuotaRejected); got < 1 {
		t.Errorf("quota rejections = %d, want >= 1", got)
	}
}

// TestFieldSSEStream covers the live feed: ring replay from from_seq,
// live deltas as events apply, and prompt stream teardown on drop.
func TestFieldSSEStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if status, _, body := s.do(t, "POST", "/v1/fields", "t", fieldBody("f", 7)); status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	if status, _, body := s.do(t, "POST", "/v1/fields/f/events", "t", `{"failed":[1]}`); status != http.StatusOK {
		t.Fatalf("event: %d %s", status, body)
	}

	req, err := http.NewRequest("GET", s.ts.URL+"/v1/fields/f/stream?from_seq=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(tenantHeader, "t")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}

	type sse struct {
		id   string
		data session.Delta
	}
	events := make(chan sse, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var cur sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data)
			case line == "":
				events <- cur
				cur = sse{}
			}
		}
	}()

	wait := func(what string) sse {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed waiting for %s", what)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		panic("unreachable")
	}

	// from_seq=1 skips the ring's Seq-0 entry and replays Seq 1.
	if ev := wait("ring replay"); ev.id != "1" || ev.data.Seq != 1 {
		t.Fatalf("replayed event = %+v", ev)
	}

	// A live event arrives on the open stream.
	if status, _, body := s.do(t, "POST", "/v1/fields/f/events", "t", `{"failed":[2]}`); status != http.StatusOK {
		t.Fatalf("live event: %d %s", status, body)
	}
	if ev := wait("live delta"); ev.data.Seq != 2 || len(ev.data.Failed) != 1 || ev.data.Failed[0] != 2 {
		t.Fatalf("live delta = %+v", ev.data)
	}

	// Dropping the session closes the stream.
	if status, _, _ := s.do(t, "DELETE", "/v1/fields/f", "t", ""); status != http.StatusNoContent {
		t.Fatal("drop failed")
	}
	select {
	case _, ok := <-events:
		if ok {
			// A buffered delta may still arrive; the close must follow.
			if _, ok := <-events; ok {
				t.Error("stream still open after drop")
			}
		}
	case <-time.After(5 * time.Second):
		t.Error("stream did not close after drop")
	}
}

// TestPlanTenantFairness429 exercises the per-tenant admission bound on
// the stateless plan path: one tenant saturating its share gets 429
// while the queue still has room for others.
func TestPlanTenantFairness429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxQueuePerTenant: 1})
	// Occupy the single worker so admitted jobs stay queued.
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	blocked := make(chan struct{})
	blocker := &job{
		ctx: context.Background(),
		runner: runnerFunc(func(ctx context.Context) ([]byte, error) {
			close(blocked)
			<-release
			return []byte("{}"), nil
		}),
		done: make(chan jobResult, 1),
	}
	if err := s.svc.submit(blocker); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-blocked

	// The hog's first plan occupies its whole per-tenant share (queued
	// behind the blocker); fire it asynchronously.
	hogDone := make(chan struct{})
	go func() {
		defer close(hogDone)
		s.do(t, "POST", "/v1/plan", "hog", planBody(50))
	}()
	waitFor(t, func() bool { return s.svc.queuedFor("hog") == 1 })

	status, hdr, body := s.do(t, "POST", "/v1/plan", "hog", planBody(51))
	if status != http.StatusTooManyRequests {
		t.Fatalf("hog second plan status = %d, body %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 must carry Retry-After")
	}

	// Another tenant still admits into the same queue.
	otherDone := make(chan int, 1)
	go func() {
		status, _, _ := s.do(t, "POST", "/v1/plan", "polite", planBody(52))
		otherDone <- status
	}()
	waitFor(t, func() bool { return s.svc.queuedFor("polite") == 1 })

	unblock()
	<-blocker.done
	<-hogDone
	if status := <-otherDone; status != http.StatusOK {
		t.Errorf("polite tenant status = %d, want 200", status)
	}
}

// queuedFor reports a tenant's current admission-share occupancy.
func (s *Server) queuedFor(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued[tenant]
}

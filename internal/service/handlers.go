package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"strconv"
	"sync"
	"time"

	"decor/internal/jsonx"
	"decor/internal/obs"
)

const jsonContentType = "application/json; charset=utf-8"

// traceHeader carries the request's trace ID back to the client; feed it
// to /debug/traces?trace=<id> or decor-trace to see the span tree.
const traceHeader = "X-Decor-Trace"

// tenantHeader optionally attributes a request to a tenant for the
// labeled response counter. Cardinality is capped at maxTenantLabels;
// later tenants are folded into "other" so a label-spraying client
// cannot grow the registry unboundedly.
const tenantHeader = "X-Decor-Tenant"

const maxTenantLabels = 64

// cacheStatusHeader reports how a response was produced: "miss" (a cold
// worker computed it), "hit" (LRU cache), or "coalesced" (singleflight
// follower). The body is byte-identical across all three — only this
// header differs, which is why it is a header and not a body field.
const cacheStatusHeader = "X-Decor-Cache"

// Shared header values, assigned into the header map directly (keys are
// pre-canonicalized). http.Header.Set allocates a fresh one-element
// slice per call; these are written by the server and only read by
// net/http, so sharing is safe and the hot path pays zero allocations.
var (
	headerValJSON      = []string{jsonContentType}
	headerValHit       = []string{"hit"}
	headerValMiss      = []string{"miss"}
	headerValCoalesced = []string{"coalesced"}
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/plan                field + sensors + k + method → placement plan
//	POST   /v1/repair              deployment + failed IDs      → restoration plan
//	POST   /v1/fields              create a stateful field session
//	POST   /v1/fields/{id}/events  stream failure events in, deltas out (NDJSON)
//	GET    /v1/fields/{id}/stream  SSE delta feed (?from_seq=N)
//	GET    /v1/fields/{id}         session metadata
//	DELETE /v1/fields/{id}         drop the session
//	GET    /healthz                liveness/readiness (503 while draining)
//	GET    /metrics                live Prometheus scrape of the obs registry
//	GET    /debug/traces           recent request span trees (?trace=<id> drills down)
//	GET    /debug/flight           flight-recorder event dump (live + last-5xx)
//	GET    /debug/pprof/           net/http/pprof, only with Config.EnablePprof
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/repair", s.handleRepair)
	// Field sessions (sessions.go, DESIGN.md §14). Explicit route labels
	// keep the response counter's cardinality independent of field IDs.
	mux.HandleFunc("POST /v1/fields", s.withSessionMetrics("/v1/fields", s.handleFieldCreate))
	mux.HandleFunc("POST /v1/fields/{id}/events", s.withSessionMetrics("/v1/fields/{id}/events", s.handleFieldEvents))
	mux.HandleFunc("GET /v1/fields/{id}/stream", s.withSessionMetrics("/v1/fields/{id}/stream", s.handleFieldStream))
	mux.HandleFunc("GET /v1/fields/{id}", s.withSessionMetrics("/v1/fields/{id}", s.handleFieldGet))
	mux.HandleFunc("DELETE /v1/fields/{id}", s.withSessionMetrics("/v1/fields/{id}", s.handleFieldDelete))
	mux.HandleFunc("/healthz", s.handleHealthz)
	metricsH := s.cfg.Registry.Handler()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.refreshHeapAllocs()
		metricsH.ServeHTTP(w, r)
	})
	mux.Handle("/debug/traces", s.cfg.Tracer.DebugHandler())
	mux.HandleFunc("/debug/flight", s.handleFlight)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// refreshHeapAllocs updates the cumulative heap-allocation gauge from
// runtime/metrics just before a /metrics scrape renders it, so a load
// generator can compute allocs-per-request from two scrapes.
func (s *Server) refreshHeapAllocs() {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		s.gHeapAllocs.Set(float64(sample[0].Value.Uint64()))
	}
}

// handleFlight serves the flight recorder: the live ring contents plus
// the snapshot taken when the most recent 5xx was served, if any.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.dumpMu.Lock()
	last := s.lastDump
	s.dumpMu.Unlock()
	body, err := json.Marshal(struct {
		Live    []obs.FlightEvent `json:"live"`
		Last5xx []obs.FlightEvent `json:"last_5xx,omitempty"`
	}{Live: s.cfg.Flight.Dump(), Last5xx: last})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding flight dump: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", jsonContentType)
	w.Write(body)
	w.Write([]byte{'\n'})
}

// captureFlight freezes the recorder's current contents for /debug/flight
// after a 5xx response.
func (s *Server) captureFlight() {
	d := s.cfg.Flight.Dump()
	if d == nil {
		return
	}
	s.dumpMu.Lock()
	s.lastDump = d
	s.dumpMu.Unlock()
}

// tenantLabel maps the raw tenant header to a bounded label value.
func (s *Server) tenantLabel(raw string) string {
	if raw == "" {
		return "none"
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenants[raw] {
		return raw
	}
	if len(s.tenants) >= maxTenantLabels {
		return "other"
	}
	s.tenants[raw] = true
	return raw
}

// respKey indexes the memoized labeled response counters. The obs
// Labels/CounterL lookups allocate (joined label strings) on every
// call even for known series, so the server keeps its own resolved
// handle per combination — the map stays bounded by routes × statuses ×
// the capped tenant label set.
type respKey struct {
	route  string
	status int
	tenant string
}

// recordResponse bumps the labeled response counter for one request.
func (s *Server) recordResponse(route string, status int, tenant string) {
	k := respKey{route: route, status: status, tenant: s.tenantLabel(tenant)}
	s.respMu.RLock()
	c := s.respCounters[k]
	s.respMu.RUnlock()
	if c == nil {
		reg := s.cfg.Registry
		ls := reg.Labels("route", k.route, "status", strconv.Itoa(k.status), "tenant", k.tenant)
		c = reg.CounterL(obs.ServeResponses, ls)
		s.respMu.Lock()
		s.respCounters[k] = c
		s.respMu.Unlock()
	}
	c.Inc()
}

// statusWriter captures the status code a handler wrote so the response
// counter and the 5xx flight capture can see it. Instances are pooled;
// nothing retains one past its request (http.MaxBytesReader holds a
// reference but only type-asserts it, never touching fields).
type statusWriter struct {
	http.ResponseWriter
	status int
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

func getStatusWriter(w http.ResponseWriter) *statusWriter {
	sw := swPool.Get().(*statusWriter)
	sw.ResponseWriter = w
	sw.status = 0
	return sw
}

func putStatusWriter(sw *statusWriter) {
	sw.ResponseWriter = nil
	swPool.Put(sw)
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the SSE and NDJSON
// streaming handlers still flush through the metrics wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		f.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", jsonContentType)
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// planEndpoint selects which request shape servePlanLike decodes.
type planEndpoint int

const (
	epPlan planEndpoint = iota
	epRepair
)

// planRunner / repairRunner carry a decoded request into the worker
// pool. They are pooled so the hot path allocates neither a closure nor
// a heap copy of the request; the leader recycles its runner after the
// worker's result is consumed (the handler owns it for the whole
// request — workers never touch a runner after sending the result).
type planRunner struct{ pr PlanRequest }

func (p *planRunner) runJob(ctx context.Context) ([]byte, error) { return executePlan(ctx, p.pr) }

type repairRunner struct{ rr RepairRequest }

func (p *repairRunner) runJob(ctx context.Context) ([]byte, error) { return executeRepair(ctx, p.rr) }

var (
	planRunnerPool   = sync.Pool{New: func() any { return new(planRunner) }}
	repairRunnerPool = sync.Pool{New: func() any { return new(repairRunner) }}
)

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.cPlanReqs.Inc()
	s.servePlanLike(w, r, epPlan)
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.cRepairReqs.Inc()
	s.servePlanLike(w, r, epRepair)
}

// setTraceHeader writes the trace ID in TraceID.String's fixed-width
// hex form without fmt (one string + one slice allocation).
func setTraceHeader(h http.Header, id obs.TraceID) {
	const hexDigits = "0123456789abcdef"
	var hb [16]byte
	v := uint64(id)
	for i := 15; i >= 0; i-- {
		hb[i] = hexDigits[v&0xF]
		v >>= 4
	}
	h[traceHeader] = []string{string(hb[:])}
}

// servePlanLike is the shared request path of the two planning
// endpoints: decode+validate, cache lookup, singleflight, admission,
// deadline, response.
func (s *Server) servePlanLike(w http.ResponseWriter, r *http.Request, ep planEndpoint) {
	start := time.Now()
	route := r.URL.Path
	tctx, root := s.cfg.Tracer.StartTrace(r.Context(), route)
	sw := getStatusWriter(w)
	defer putStatusWriter(sw) // registered first: runs after the metrics defer reads sw
	w = sw
	if root != nil {
		setTraceHeader(w.Header(), root.TraceID())
	}
	defer func() {
		root.End()
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sec := time.Since(start).Seconds()
		if root != nil {
			// The exemplar ties this latency bucket to the trace: a p99
			// scrape can name an X-Decor-Trace ID to drill into.
			s.hRequestSeconds.ObserveExemplar(sec, root.TraceID())
		} else {
			s.hRequestSeconds.Observe(sec)
		}
		s.recordResponse(route, status, r.Header.Get(tenantHeader))
		if status >= 500 {
			s.captureFlight()
		}
	}()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)

	// Decode and normalize into a pooled runner: the fast-path codec
	// reads the pooled body buffer, so a cache hit allocates nothing
	// here beyond the parse span itself.
	var key reqKey
	var timeout time.Duration
	var runner jobRunner
	pSpan := obs.StartChildSpan(tctx, "parse")
	var err error
	switch ep {
	case epPlan:
		p := planRunnerPool.Get().(*planRunner)
		defer planRunnerPool.Put(p)
		p.pr = PlanRequest{}
		err = s.parseInto(r, &p.pr, nil)
		if err == nil {
			key, timeout, runner = p.pr.key(), p.pr.timeout(s.cfg.Limits), p
		}
	case epRepair:
		p := repairRunnerPool.Get().(*repairRunner)
		defer repairRunnerPool.Put(p)
		p.rr = RepairRequest{}
		err = s.parseInto(r, &p.rr.PlanRequest, &p.rr)
		if err == nil {
			key, timeout, runner = p.rr.key(), p.rr.timeout(s.cfg.Limits), p
		}
	}
	pSpan.End()
	if err != nil {
		s.cBadReqs.Inc()
		var ae *apiError
		if errors.As(err, &ae) {
			s.writeError(w, ae.status, ae.msg)
		} else {
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}

	if body, clen, ok := s.cache.Get(key); ok {
		s.cCacheHits.Inc()
		s.writePlan(w, body, clen, headerValHit)
		return
	}

	call, leader := s.flight.begin(key)
	if !leader {
		// Identical request already in flight: wait for its leader, but
		// never longer than this request's own deadline.
		s.cCoalesced.Inc()
		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		select {
		case <-call.done:
			s.replayFlight(w, call)
		case <-deadline.C:
			s.cTimeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for identical in-flight plan")
		case <-r.Context().Done():
			// Client hung up; the leader still completes and caches.
			s.writeError(w, http.StatusGatewayTimeout, "client cancelled")
		}
		return
	}

	// Leader: admit into the bounded pool. The deadline spans queue wait
	// plus execution, carried by the job context into the round loop; the
	// trace's span context rides along so the planner's core.deploy and
	// core.round spans land in this request's tree.
	ectx, eSpan := obs.StartSpanCtx(tctx, "execute")
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	ctx = obs.WithSpanContext(ctx, ectx)
	j := &job{ctx: ctx, runner: runner, done: make(chan jobResult, 1), tenant: r.Header.Get(tenantHeader)}
	admission := s.cfg.Flight.Shard(s.cfg.Workers)
	if err := s.submit(j); err != nil {
		eSpan.End()
		s.cRejected.Inc()
		admission.Record(s.uptime(), "admit.reject", -1, route)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		if errors.Is(err, errTenantOverloaded) {
			// The tenant's fair share is spoken for; followers of the same
			// key should not inherit a 429 another tenant earned, but
			// identical keys imply identical tenants in practice.
			s.flight.finish(key, call, nil, http.StatusTooManyRequests, err)
			s.writeError(w, http.StatusTooManyRequests, "tenant admission quota exhausted; retry later")
			return
		}
		s.flight.finish(key, call, nil, http.StatusServiceUnavailable, errOverloaded)
		s.writeError(w, http.StatusServiceUnavailable, "admission queue full; retry later")
		return
	}
	admission.Record(s.uptime(), "admit.ok", -1, route)
	res := <-j.done
	s.release(j)
	eSpan.End()
	switch {
	case res.err == nil:
		s.cCacheMisses.Inc()
		clen := s.cache.Put(key, res.body)
		s.flight.finish(key, call, res.body, http.StatusOK, nil)
		s.writePlan(w, res.body, clen, headerValMiss)
	case errors.Is(res.err, context.DeadlineExceeded):
		s.cTimeouts.Inc()
		s.flight.finish(key, call, nil, http.StatusGatewayTimeout, res.err)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded while planning")
	case errors.Is(res.err, context.Canceled):
		// Base context cancelled: the server is being torn down.
		s.cErrors.Inc()
		s.flight.finish(key, call, nil, http.StatusServiceUnavailable, res.err)
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		status := http.StatusInternalServerError
		var ae *apiError
		if errors.As(res.err, &ae) {
			status = ae.status
		}
		if status >= 500 {
			s.cErrors.Inc()
		} else {
			s.cBadReqs.Inc()
		}
		s.flight.finish(key, call, nil, status, res.err)
		s.writeError(w, status, res.err.Error())
	}
}

// parseInto reads the request body into a pooled buffer and decodes it
// through the fast-path codec (stdlib fallback on a bail), then
// normalizes. rr is non-nil for /v1/repair, where the failed-ID list
// rides along and repair-specific validation applies.
func (s *Server) parseInto(r *http.Request, pr *PlanRequest, rr *RepairRequest) error {
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)
	data, err := readBody(r.Body, buf)
	if err != nil {
		return err
	}
	if rr != nil {
		if err := decodeRepairRequest(data, rr); err != nil {
			return err
		}
		*rr, err = rr.normalize(s.cfg.Limits)
		return err
	}
	if err := decodePlanRequest(data, pr); err != nil {
		return err
	}
	*pr, err = pr.normalize(s.cfg.Limits)
	return err
}

var errOverloaded = errors.New("service overloaded")

// replayFlight serves a follower the leader's exact outcome.
func (s *Server) replayFlight(w http.ResponseWriter, call *flightCall) {
	if call.err != nil {
		if errors.Is(call.err, errOverloaded) {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		s.writeError(w, call.status, call.err.Error())
		return
	}
	s.writePlan(w, call.body, nil, headerValCoalesced)
}

// writePlan serves the canonical response bytes. clen is the shared
// pre-rendered Content-Length value stored with the cache entry (nil
// means render it now — the miss and coalesced paths).
func (s *Server) writePlan(w http.ResponseWriter, body []byte, clen []string, cacheStatus []string) {
	h := w.Header()
	h["Content-Type"] = headerValJSON
	h[cacheStatusHeader] = cacheStatus
	if clen == nil {
		clen = []string{strconv.Itoa(len(body))}
	}
	h["Content-Length"] = clen
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// Preformatted bodies for the fixed error strings on hot method-check
// paths; everything else renders through the pooled append encoder.
// Byte-identical to the json.Marshal construction they replaced.
var (
	errBodyUsePost = []byte(`{"error":"use POST"}` + "\n")
	errBodyUseGet  = []byte(`{"error":"use GET"}` + "\n")
)

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header()["Content-Type"] = headerValJSON
	w.WriteHeader(status)
	switch msg {
	case "use POST":
		w.Write(errBodyUsePost)
	case "use GET":
		w.Write(errBodyUseGet)
	default:
		buf := jsonx.GetBuf()
		*buf = appendErrorBody((*buf)[:0], msg)
		w.Write(*buf)
		jsonx.PutBuf(buf)
	}
}

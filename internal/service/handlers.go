package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"decor/internal/obs"
)

const jsonContentType = "application/json; charset=utf-8"

// traceHeader carries the request's trace ID back to the client; feed it
// to /debug/traces?trace=<id> or decor-trace to see the span tree.
const traceHeader = "X-Decor-Trace"

// tenantHeader optionally attributes a request to a tenant for the
// labeled response counter. Cardinality is capped at maxTenantLabels;
// later tenants are folded into "other" so a label-spraying client
// cannot grow the registry unboundedly.
const tenantHeader = "X-Decor-Tenant"

const maxTenantLabels = 64

// cacheStatusHeader reports how a response was produced: "miss" (a cold
// worker computed it), "hit" (LRU cache), or "coalesced" (singleflight
// follower). The body is byte-identical across all three — only this
// header differs, which is why it is a header and not a body field.
const cacheStatusHeader = "X-Decor-Cache"

// Handler returns the service's HTTP API:
//
//	POST   /v1/plan                field + sensors + k + method → placement plan
//	POST   /v1/repair              deployment + failed IDs      → restoration plan
//	POST   /v1/fields              create a stateful field session
//	POST   /v1/fields/{id}/events  stream failure events in, deltas out (NDJSON)
//	GET    /v1/fields/{id}/stream  SSE delta feed (?from_seq=N)
//	GET    /v1/fields/{id}         session metadata
//	DELETE /v1/fields/{id}         drop the session
//	GET    /healthz                liveness/readiness (503 while draining)
//	GET    /metrics                live Prometheus scrape of the obs registry
//	GET    /debug/traces           recent request span trees (?trace=<id> drills down)
//	GET    /debug/flight           flight-recorder event dump (live + last-5xx)
//	GET    /debug/pprof/           net/http/pprof, only with Config.EnablePprof
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/repair", s.handleRepair)
	// Field sessions (sessions.go, DESIGN.md §14). Explicit route labels
	// keep the response counter's cardinality independent of field IDs.
	mux.HandleFunc("POST /v1/fields", s.withSessionMetrics("/v1/fields", s.handleFieldCreate))
	mux.HandleFunc("POST /v1/fields/{id}/events", s.withSessionMetrics("/v1/fields/{id}/events", s.handleFieldEvents))
	mux.HandleFunc("GET /v1/fields/{id}/stream", s.withSessionMetrics("/v1/fields/{id}/stream", s.handleFieldStream))
	mux.HandleFunc("GET /v1/fields/{id}", s.withSessionMetrics("/v1/fields/{id}", s.handleFieldGet))
	mux.HandleFunc("DELETE /v1/fields/{id}", s.withSessionMetrics("/v1/fields/{id}", s.handleFieldDelete))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.cfg.Registry.Handler())
	mux.Handle("/debug/traces", s.cfg.Tracer.DebugHandler())
	mux.HandleFunc("/debug/flight", s.handleFlight)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleFlight serves the flight recorder: the live ring contents plus
// the snapshot taken when the most recent 5xx was served, if any.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.dumpMu.Lock()
	last := s.lastDump
	s.dumpMu.Unlock()
	w.Header().Set("Content-Type", jsonContentType)
	json.NewEncoder(w).Encode(struct {
		Live    []obs.FlightEvent `json:"live"`
		Last5xx []obs.FlightEvent `json:"last_5xx,omitempty"`
	}{Live: s.cfg.Flight.Dump(), Last5xx: last})
}

// captureFlight freezes the recorder's current contents for /debug/flight
// after a 5xx response.
func (s *Server) captureFlight() {
	d := s.cfg.Flight.Dump()
	if d == nil {
		return
	}
	s.dumpMu.Lock()
	s.lastDump = d
	s.dumpMu.Unlock()
}

// tenantLabel maps the raw tenant header to a bounded label value.
func (s *Server) tenantLabel(raw string) string {
	if raw == "" {
		return "none"
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenants[raw] {
		return raw
	}
	if len(s.tenants) >= maxTenantLabels {
		return "other"
	}
	s.tenants[raw] = true
	return raw
}

// recordResponse bumps the labeled response counter for one request.
func (s *Server) recordResponse(route string, status int, tenant string) {
	reg := s.cfg.Registry
	ls := reg.Labels(
		"route", route,
		"status", strconv.Itoa(status),
		"tenant", s.tenantLabel(tenant),
	)
	reg.CounterL(obs.ServeResponses, ls).Inc()
}

// statusWriter captures the status code a handler wrote so the response
// counter and the 5xx flight capture can see it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the SSE and NDJSON
// streaming handlers still flush through the metrics wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		f.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", jsonContentType)
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.cPlanReqs.Inc()
	s.servePlanLike(w, r, func(body *http.Request) (key string, timeout time.Duration, run func(context.Context) ([]byte, error), err error) {
		var pr PlanRequest
		if err := decodeJSON(body.Body, &pr); err != nil {
			return "", 0, nil, err
		}
		pr, err = pr.normalize(s.cfg.Limits)
		if err != nil {
			return "", 0, nil, err
		}
		return pr.key(), pr.timeout(s.cfg.Limits), func(ctx context.Context) ([]byte, error) {
			return executePlan(ctx, pr)
		}, nil
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.cRepairReqs.Inc()
	s.servePlanLike(w, r, func(body *http.Request) (key string, timeout time.Duration, run func(context.Context) ([]byte, error), err error) {
		var rr RepairRequest
		if err := decodeJSON(body.Body, &rr); err != nil {
			return "", 0, nil, err
		}
		rr, err = rr.normalize(s.cfg.Limits)
		if err != nil {
			return "", 0, nil, err
		}
		return rr.key(), rr.timeout(s.cfg.Limits), func(ctx context.Context) ([]byte, error) {
			return executeRepair(ctx, rr)
		}, nil
	})
}

// servePlanLike is the shared request path of the two planning
// endpoints: decode+validate, cache lookup, singleflight, admission,
// deadline, response.
func (s *Server) servePlanLike(w http.ResponseWriter, r *http.Request,
	parse func(*http.Request) (string, time.Duration, func(context.Context) ([]byte, error), error)) {

	start := time.Now()
	route := r.URL.Path
	tctx, root := s.cfg.Tracer.StartTrace(r.Context(), route)
	sw := &statusWriter{ResponseWriter: w}
	w = sw
	if root != nil {
		w.Header().Set(traceHeader, root.TraceID().String())
	}
	defer func() {
		root.End()
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sec := time.Since(start).Seconds()
		if root != nil {
			// The exemplar ties this latency bucket to the trace: a p99
			// scrape can name an X-Decor-Trace ID to drill into.
			s.hRequestSeconds.ObserveExemplar(sec, root.TraceID())
		} else {
			s.hRequestSeconds.Observe(sec)
		}
		s.recordResponse(route, status, r.Header.Get(tenantHeader))
		if status >= 500 {
			s.captureFlight()
		}
	}()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	_, pSpan := obs.StartSpanCtx(tctx, "parse")
	key, timeout, run, err := parse(r)
	pSpan.End()
	if err != nil {
		s.cBadReqs.Inc()
		var ae *apiError
		if errors.As(err, &ae) {
			s.writeError(w, ae.status, ae.msg)
		} else {
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}

	if body, ok := s.cache.Get(key); ok {
		s.cCacheHits.Inc()
		s.writePlan(w, body, "hit")
		return
	}

	call, leader := s.flight.begin(key)
	if !leader {
		// Identical request already in flight: wait for its leader, but
		// never longer than this request's own deadline.
		s.cCoalesced.Inc()
		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		select {
		case <-call.done:
			s.replayFlight(w, call)
		case <-deadline.C:
			s.cTimeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for identical in-flight plan")
		case <-r.Context().Done():
			// Client hung up; the leader still completes and caches.
			s.writeError(w, http.StatusGatewayTimeout, "client cancelled")
		}
		return
	}

	// Leader: admit into the bounded pool. The deadline spans queue wait
	// plus execution, carried by the job context into the round loop; the
	// trace's span context rides along so the planner's core.deploy and
	// core.round spans land in this request's tree.
	ectx, eSpan := obs.StartSpanCtx(tctx, "execute")
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	ctx = obs.WithSpanContext(ctx, ectx)
	j := &job{ctx: ctx, run: run, done: make(chan jobResult, 1), tenant: r.Header.Get(tenantHeader)}
	admission := s.cfg.Flight.Shard(s.cfg.Workers)
	if err := s.submit(j); err != nil {
		eSpan.End()
		s.cRejected.Inc()
		admission.Record(s.uptime(), "admit.reject", -1, route)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		if errors.Is(err, errTenantOverloaded) {
			// The tenant's fair share is spoken for; followers of the same
			// key should not inherit a 429 another tenant earned, but
			// identical keys imply identical tenants in practice.
			s.flight.finish(key, call, nil, http.StatusTooManyRequests, err)
			s.writeError(w, http.StatusTooManyRequests, "tenant admission quota exhausted; retry later")
			return
		}
		s.flight.finish(key, call, nil, http.StatusServiceUnavailable, errOverloaded)
		s.writeError(w, http.StatusServiceUnavailable, "admission queue full; retry later")
		return
	}
	admission.Record(s.uptime(), "admit.ok", -1, route)
	res := <-j.done
	s.release(j)
	eSpan.End()
	switch {
	case res.err == nil:
		s.cCacheMisses.Inc()
		s.cache.Put(key, res.body)
		s.flight.finish(key, call, res.body, http.StatusOK, nil)
		s.writePlan(w, res.body, "miss")
	case errors.Is(res.err, context.DeadlineExceeded):
		s.cTimeouts.Inc()
		s.flight.finish(key, call, nil, http.StatusGatewayTimeout, res.err)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded while planning")
	case errors.Is(res.err, context.Canceled):
		// Base context cancelled: the server is being torn down.
		s.cErrors.Inc()
		s.flight.finish(key, call, nil, http.StatusServiceUnavailable, res.err)
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		status := http.StatusInternalServerError
		var ae *apiError
		if errors.As(res.err, &ae) {
			status = ae.status
		}
		if status >= 500 {
			s.cErrors.Inc()
		} else {
			s.cBadReqs.Inc()
		}
		s.flight.finish(key, call, nil, status, res.err)
		s.writeError(w, status, res.err.Error())
	}
}

var errOverloaded = errors.New("service overloaded")

// replayFlight serves a follower the leader's exact outcome.
func (s *Server) replayFlight(w http.ResponseWriter, call *flightCall) {
	if call.err != nil {
		if errors.Is(call.err, errOverloaded) {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		s.writeError(w, call.status, call.err.Error())
		return
	}
	s.writePlan(w, call.body, "coalesced")
}

func (s *Server) writePlan(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", jsonContentType)
	w.Header().Set(cacheStatusHeader, cacheStatus)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.Header().Set("Content-Type", jsonContentType)
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

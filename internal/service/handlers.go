package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

const jsonContentType = "application/json; charset=utf-8"

// cacheStatusHeader reports how a response was produced: "miss" (a cold
// worker computed it), "hit" (LRU cache), or "coalesced" (singleflight
// follower). The body is byte-identical across all three — only this
// header differs, which is why it is a header and not a body field.
const cacheStatusHeader = "X-Decor-Cache"

// Handler returns the service's HTTP API:
//
//	POST /v1/plan    field + sensors + k + method → placement plan
//	POST /v1/repair  deployment + failed IDs      → restoration plan
//	GET  /healthz    liveness/readiness (503 while draining)
//	GET  /metrics    live Prometheus scrape of the obs registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/repair", s.handleRepair)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.cfg.Registry.Handler())
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", jsonContentType)
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.cPlanReqs.Inc()
	s.servePlanLike(w, r, func(body *http.Request) (key string, timeout time.Duration, run func(context.Context) ([]byte, error), err error) {
		var pr PlanRequest
		if err := decodeJSON(body.Body, &pr); err != nil {
			return "", 0, nil, err
		}
		pr, err = pr.normalize(s.cfg.Limits)
		if err != nil {
			return "", 0, nil, err
		}
		return pr.key(), pr.timeout(s.cfg.Limits), func(ctx context.Context) ([]byte, error) {
			return executePlan(ctx, pr)
		}, nil
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.cRepairReqs.Inc()
	s.servePlanLike(w, r, func(body *http.Request) (key string, timeout time.Duration, run func(context.Context) ([]byte, error), err error) {
		var rr RepairRequest
		if err := decodeJSON(body.Body, &rr); err != nil {
			return "", 0, nil, err
		}
		rr, err = rr.normalize(s.cfg.Limits)
		if err != nil {
			return "", 0, nil, err
		}
		return rr.key(), rr.timeout(s.cfg.Limits), func(ctx context.Context) ([]byte, error) {
			return executeRepair(ctx, rr)
		}, nil
	})
}

// servePlanLike is the shared request path of the two planning
// endpoints: decode+validate, cache lookup, singleflight, admission,
// deadline, response.
func (s *Server) servePlanLike(w http.ResponseWriter, r *http.Request,
	parse func(*http.Request) (string, time.Duration, func(context.Context) ([]byte, error), error)) {

	start := time.Now()
	defer func() { s.hRequestSeconds.Observe(time.Since(start).Seconds()) }()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	key, timeout, run, err := parse(r)
	if err != nil {
		s.cBadReqs.Inc()
		var ae *apiError
		if errors.As(err, &ae) {
			s.writeError(w, ae.status, ae.msg)
		} else {
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}

	if body, ok := s.cache.Get(key); ok {
		s.cCacheHits.Inc()
		s.writePlan(w, body, "hit")
		return
	}

	call, leader := s.flight.begin(key)
	if !leader {
		// Identical request already in flight: wait for its leader, but
		// never longer than this request's own deadline.
		s.cCoalesced.Inc()
		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		select {
		case <-call.done:
			s.replayFlight(w, call)
		case <-deadline.C:
			s.cTimeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for identical in-flight plan")
		case <-r.Context().Done():
			// Client hung up; the leader still completes and caches.
			s.writeError(w, http.StatusGatewayTimeout, "client cancelled")
		}
		return
	}

	// Leader: admit into the bounded pool. The deadline spans queue wait
	// plus execution, carried by the job context into the round loop.
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	j := &job{ctx: ctx, run: run, done: make(chan jobResult, 1)}
	if !s.submit(j) {
		s.cRejected.Inc()
		retry := s.retryAfterSeconds()
		s.flight.finish(key, call, nil, http.StatusServiceUnavailable, errOverloaded)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.writeError(w, http.StatusServiceUnavailable, "admission queue full; retry later")
		return
	}
	res := <-j.done
	switch {
	case res.err == nil:
		s.cCacheMisses.Inc()
		s.cache.Put(key, res.body)
		s.flight.finish(key, call, res.body, http.StatusOK, nil)
		s.writePlan(w, res.body, "miss")
	case errors.Is(res.err, context.DeadlineExceeded):
		s.cTimeouts.Inc()
		s.flight.finish(key, call, nil, http.StatusGatewayTimeout, res.err)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded while planning")
	case errors.Is(res.err, context.Canceled):
		// Base context cancelled: the server is being torn down.
		s.cErrors.Inc()
		s.flight.finish(key, call, nil, http.StatusServiceUnavailable, res.err)
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		status := http.StatusInternalServerError
		var ae *apiError
		if errors.As(res.err, &ae) {
			status = ae.status
		}
		if status >= 500 {
			s.cErrors.Inc()
		} else {
			s.cBadReqs.Inc()
		}
		s.flight.finish(key, call, nil, status, res.err)
		s.writeError(w, status, res.err.Error())
	}
}

var errOverloaded = errors.New("service overloaded")

// replayFlight serves a follower the leader's exact outcome.
func (s *Server) replayFlight(w http.ResponseWriter, call *flightCall) {
	if call.err != nil {
		if errors.Is(call.err, errOverloaded) {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		s.writeError(w, call.status, call.err.Error())
		return
	}
	s.writePlan(w, call.body, "coalesced")
}

func (s *Server) writePlan(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", jsonContentType)
	w.Header().Set(cacheStatusHeader, cacheStatus)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.Header().Set("Content-Type", jsonContentType)
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

package service

import (
	"context"
	"fmt"
	"net/http"

	"decor"
)

// PlanResponse is the body both endpoints return: the decor.Report plus
// the resulting coverage state. Identical normalized requests always
// produce identical responses (same seed → same RNG stream → same
// placements), which is what makes the byte cache sound.
type PlanResponse struct {
	Method          string  `json:"method"`
	K               int     `json:"k"`
	Placed          int     `json:"placed"`
	TotalSensors    int     `json:"total_sensors"`
	Messages        int     `json:"messages"`
	MessagesPerCell float64 `json:"messages_per_cell"`
	Rounds          int     `json:"rounds"`
	Seeded          int     `json:"seeded"`
	// Failed counts the sensors a /v1/repair request destroyed before
	// planning (always 0 for /v1/plan).
	Failed int `json:"failed,omitempty"`
	// Placements lists the new sensors in placement order — the route
	// input for whoever actuates the deployment.
	Placements []PointSpec `json:"placements"`
	CoverageK  float64     `json:"coverage_k"`
	Coverage1  float64     `json:"coverage_1"`
	Covered    bool        `json:"fully_covered"`
}

// buildDeployment constructs the request's field and pre-deployed
// network. Validation has already bounded every size, so construction
// errors are server bugs, not client input.
func buildDeployment(pr PlanRequest) (*decor.Deployment, error) {
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: pr.FieldSide,
		K:         pr.K,
		Rs:        pr.Rs,
		Rc:        pr.Rc,
		NumPoints: pr.NumPoints,
		Generator: pr.Generator,
		Seed:      pr.Seed,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range pr.Sensors {
		if err := d.AddSensorID(*s.ID, decor.Point{X: s.X, Y: s.Y}); err != nil {
			return nil, err
		}
	}
	if pr.Scatter > 0 {
		d.ScatterRandom(pr.Scatter)
	}
	return d, nil
}

// respond encodes a completed plan into its canonical byte form through
// the append codec (byte-identical to json.Marshal — the parity the
// codec tests pin). One encode produces the bytes every delivery path
// (cold worker, cache hit, coalesced follower) serves verbatim; the
// slice is freshly sized, never pooled, because the cache retains it.
func respond(pr PlanRequest, rep decor.Report, d *decor.Deployment, failed int) ([]byte, error) {
	placements := make([]PointSpec, len(rep.Placements))
	for i, p := range rep.Placements {
		placements[i] = PointSpec{X: p.X, Y: p.Y}
	}
	resp := PlanResponse{
		Method:          rep.Method,
		K:               pr.K,
		Placed:          rep.Placed,
		TotalSensors:    rep.TotalSensors,
		Messages:        rep.Messages,
		MessagesPerCell: rep.MessagesPerCell,
		Rounds:          rep.Rounds,
		Seeded:          rep.Seeded,
		Failed:          failed,
		Placements:      placements,
		CoverageK:       d.Coverage(pr.K),
		Coverage1:       d.Coverage(1),
		Covered:         d.FullyCovered(),
	}
	body := make([]byte, 0, 256+32*len(placements))
	body, err := appendPlanResponse(body, &resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// executePlan runs one /v1/plan request to completion (or ctx expiry) on
// a private Deployment and returns the canonical response bytes.
func executePlan(ctx context.Context, pr PlanRequest) ([]byte, error) {
	d, err := buildDeployment(pr)
	if err != nil {
		return nil, fmt.Errorf("building deployment: %w", err)
	}
	rep, err := d.DeployContext(ctx, pr.Method)
	if err != nil {
		return nil, err
	}
	return respond(pr, rep, d, 0)
}

// executeRepair runs one /v1/repair request: reconstruct the deployment,
// destroy the failed sensors, restore coverage.
func executeRepair(ctx context.Context, rr RepairRequest) ([]byte, error) {
	d, err := buildDeployment(rr.PlanRequest)
	if err != nil {
		return nil, fmt.Errorf("building deployment: %w", err)
	}
	if err := d.FailSensors(rr.Failed...); err != nil {
		// Validation checked the references against the canonical ID
		// space; a miss here means that space and the facade disagree.
		return nil, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	rep, err := d.DeployContext(ctx, rr.Method)
	if err != nil {
		return nil, err
	}
	return respond(rr.PlanRequest, rep, d, len(rr.Failed))
}

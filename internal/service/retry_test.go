package service

import (
	"math"
	"testing"
)

// TestClampRetrySeconds pins the Retry-After clamp across the estimator's
// failure modes. The regression that motivates it: int(math.Ceil(est))
// on an overflowed or infinite EWMA estimate is implementation-defined
// (minimum int on amd64), which the old code then clamped to 1 — telling
// clients to hammer a server that had just measured itself as maximally
// overloaded. Huge and non-finite estimates must saturate at max, not
// wrap around to the floor.
func TestClampRetrySeconds(t *testing.T) {
	const max = 30
	tests := []struct {
		name string
		est  float64
		want int
	}{
		{"zero", 0, 1},
		{"negative", -3.5, 1},
		{"sub-second rounds up to floor", 0.2, 1},
		{"exactly one", 1, 1},
		{"fractional rounds up", 1.01, 2},
		{"mid-range", 7.4, 8},
		{"just under max", 29.5, 30},
		{"exactly max", 30, 30},
		{"above max", 31, 30},
		{"huge EWMA", 1e18, 30},
		{"beyond int64", 1e300, 30},
		{"positive infinity", math.Inf(1), 30},
		{"negative infinity", math.Inf(-1), 1},
		{"NaN", math.NaN(), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := clampRetrySeconds(tc.est, max); got != tc.want {
				t.Errorf("clampRetrySeconds(%v, %d) = %d, want %d", tc.est, max, got, tc.want)
			}
			if got := clampRetrySeconds(tc.est, max); got < 1 || got > max {
				t.Errorf("clampRetrySeconds(%v, %d) = %d, outside [1, %d]", tc.est, max, got, max)
			}
		})
	}
}

package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"decor/internal/obs"
)

func (s *testServer) get(t *testing.T, path string) (int, http.Header, []byte) {
	t.Helper()
	return s.do(t, http.MethodGet, path, "", "")
}

// TestDebugFlightHandler exercises /debug/flight end to end: 200, the
// JSON content type, and a body that parses back into the dump shape —
// including after a 5xx has populated the last_5xx snapshot.
func TestDebugFlightHandler(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	status, hdr, body := s.get(t, "/debug/flight")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); ct != jsonContentType {
		t.Errorf("content type %q, want %q", ct, jsonContentType)
	}
	var dump struct {
		Live    []obs.FlightEvent `json:"live"`
		Last5xx []obs.FlightEvent `json:"last_5xx"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, body)
	}
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Errorf("flight dump should end with a newline")
	}

	// Wrong method: the allow-list error path.
	status, _, body = s.post(t, "/debug/flight", "")
	if status != http.StatusMethodNotAllowed || strings.TrimSpace(string(body)) != `{"error":"use GET"}` {
		t.Errorf("POST /debug/flight = %d %s", status, body)
	}
}

// TestWriteErrorEscaping drives writeError through a live recorder for a
// table of messages needing JSON escaping: each body must be exactly
// what json.Marshal + newline produced before the codec swap.
func TestWriteErrorEscaping(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	msgs := []string{
		"use POST",
		"use GET",
		`unknown generator "h<é>lton & friends"`,
		"multi\nline\terror",
		"invalid utf8 \xff here",
	}
	for _, msg := range msgs {
		rec := httptest.NewRecorder()
		s.svc.writeError(rec, http.StatusBadRequest, msg)
		want, _ := json.Marshal(struct {
			Error string `json:"error"`
		}{Error: msg})
		want = append(want, '\n')
		if got := rec.Body.String(); got != string(want) {
			t.Errorf("writeError(%q):\n got %q\nwant %q", msg, got, want)
		}
		if rec.Code != http.StatusBadRequest {
			t.Errorf("writeError(%q) status = %d", msg, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != jsonContentType {
			t.Errorf("writeError(%q) content type = %q", msg, ct)
		}
	}
}

// TestMetricsExposesHeapAllocsGauge: the /metrics wrapper refreshes the
// runtime allocation gauge before rendering, so decor-load can derive
// allocs_per_request from consecutive scrapes.
func TestMetricsExposesHeapAllocsGauge(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	_, _, body := s.get(t, "/metrics")
	line := ""
	for _, l := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(l, obs.ServeHeapAllocs+" ") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("scrape missing %s:\n%s", obs.ServeHeapAllocs, body)
	}
	if strings.HasSuffix(line, " 0") {
		t.Errorf("heap alloc gauge should be non-zero after serving a scrape: %q", line)
	}
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"decor/internal/obs"
)

// tracedServer is a testServer with private tracer and flight recorder so
// parallel tests sharing the process-wide defaults cannot interfere.
func tracedServer(t *testing.T, cfg Config) (*testServer, *obs.Tracer, *obs.FlightRecorder) {
	t.Helper()
	tr := obs.NewTracer(1024)
	fr := obs.NewFlightRecorder(4, 128)
	cfg.Tracer = tr
	cfg.Flight = fr
	return newTestServer(t, cfg), tr, fr
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && into != nil {
		if err := json.Unmarshal(b, into); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, b)
		}
	}
	return resp.StatusCode
}

// TestResponseTraceRetrievable is the ISSUE's acceptance path: a plan
// request returns X-Decor-Trace, and /debug/traces?trace=<id> serves that
// request's span tree, including the spans recorded inside the planner.
func TestResponseTraceRetrievable(t *testing.T) {
	s, _, _ := tracedServer(t, Config{Workers: 2})
	status, hdr, _ := s.post(t, "/v1/plan", planBody(31))
	if status != http.StatusOK {
		t.Fatalf("plan status = %d", status)
	}
	id := hdr.Get(traceHeader)
	if id == "" {
		t.Fatal("response missing " + traceHeader)
	}
	var spans []obs.SpanRecord
	if st := getJSON(t, s.ts.URL+"/debug/traces?trace="+id, &spans); st != http.StatusOK {
		t.Fatalf("/debug/traces?trace=%s status = %d", id, st)
	}
	byName := map[string]obs.SpanRecord{}
	for _, sp := range spans {
		if sp.Trace != id {
			t.Errorf("span %s carries trace %s, want %s", sp.Name, sp.Trace, id)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{"/v1/plan", "parse", "execute", "plan.run", "core.deploy"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing span %q, got %v", want, names(spans))
		}
	}
	// The tree hangs together: parse and execute under the root, the
	// worker's plan.run under execute, the planner's core.deploy below.
	rootSpan := byName["/v1/plan"]
	if rootSpan.Parent != "" {
		t.Errorf("root has parent %q", rootSpan.Parent)
	}
	if byName["parse"].Parent != rootSpan.Span || byName["execute"].Parent != rootSpan.Span {
		t.Error("parse/execute are not children of the request root")
	}
	if byName["plan.run"].Parent != byName["execute"].Span {
		t.Error("plan.run is not a child of execute")
	}
	if byName["plan.run"].Attr == "" || !strings.Contains(byName["plan.run"].Attr, "queue_wait_ms=") {
		t.Errorf("plan.run attr = %q, want queue_wait_ms", byName["plan.run"].Attr)
	}
	if byName["core.deploy"].Parent != byName["plan.run"].Span {
		t.Errorf("core.deploy parent = %q, want plan.run %q",
			byName["core.deploy"].Parent, byName["plan.run"].Span)
	}

	// The exemplar on the request-latency histogram names the same trace.
	snap := s.reg.Snapshot()
	h, ok := snap.Histograms[obs.ServeRequestSeconds]
	if !ok {
		t.Fatal("no request histogram in snapshot")
	}
	found := false
	for _, ex := range h.Exemplars {
		if ex == id {
			found = true
		}
	}
	if !found {
		t.Errorf("histogram exemplars %v do not include trace %s", h.Exemplars, id)
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

func TestLabeledResponseCounter(t *testing.T) {
	s, _, _ := tracedServer(t, Config{Workers: 2})
	req, err := http.NewRequest(http.MethodPost, s.ts.URL+"/v1/plan", strings.NewReader(planBody(32)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tenantHeader, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s.post(t, "/v1/plan", planBody(32)) // no tenant header

	var sb strings.Builder
	if err := s.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`decor_serve_responses_total{route="/v1/plan",status="200",tenant="acme"} 1`,
		`decor_serve_responses_total{route="/v1/plan",status="200",tenant="none"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestTenantCardinalityCapped(t *testing.T) {
	s, _, _ := tracedServer(t, Config{Workers: 2})
	for i := 0; i < maxTenantLabels+8; i++ {
		if got := s.svc.tenantLabel(fmt.Sprintf("tenant-%03d", i)); i < maxTenantLabels && got == "other" {
			t.Fatalf("tenant %d folded too early", i)
		} else if i >= maxTenantLabels && got != "other" {
			t.Fatalf("tenant %d = %q, want other", i, got)
		}
	}
	// Tenants admitted before the cap keep their identity.
	if got := s.svc.tenantLabel("tenant-000"); got != "tenant-000" {
		t.Fatalf("existing tenant remapped to %q", got)
	}
}

// TestFlightCapturedOn5xx forces a 503 (queue full) and checks the
// flight recorder's contents were frozen for /debug/flight.
func TestFlightCapturedOn5xx(t *testing.T) {
	s, _, _ := tracedServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	blocked := make(chan struct{})
	blocker := func(signal bool) *job {
		return &job{
			ctx: context.Background(),
			runner: runnerFunc(func(context.Context) ([]byte, error) {
				if signal {
					close(blocked)
				}
				<-release
				return []byte("{}"), nil
			}),
			done: make(chan jobResult, 1),
		}
	}
	b1, b2 := blocker(true), blocker(false)
	if err := s.svc.submit(b1); err != nil {
		t.Fatalf("first blocker rejected: %v", err)
	}
	<-blocked // worker busy
	if err := s.svc.submit(b2); err != nil {
		t.Fatalf("second blocker rejected: %v", err)
	}
	status, _, _ := s.post(t, "/v1/plan", planBody(33))
	close(release)
	<-b1.done
	<-b2.done
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	var dump struct {
		Live    []obs.FlightEvent `json:"live"`
		Last5xx []obs.FlightEvent `json:"last_5xx"`
	}
	if st := getJSON(t, s.ts.URL+"/debug/flight", &dump); st != http.StatusOK {
		t.Fatalf("/debug/flight status = %d", st)
	}
	if len(dump.Last5xx) == 0 {
		t.Fatal("no frozen flight dump after a 5xx")
	}
	foundReject := false
	for _, ev := range dump.Last5xx {
		if ev.Kind == "admit.reject" {
			foundReject = true
		}
	}
	if !foundReject {
		t.Errorf("frozen dump lacks the admission rejection: %+v", dump.Last5xx)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	off, _, _ := tracedServer(t, Config{})
	if st := getJSON(t, off.ts.URL+"/debug/pprof/", nil); st != http.StatusNotFound {
		t.Fatalf("pprof without flag: status = %d, want 404", st)
	}
	on, _, _ := tracedServer(t, Config{EnablePprof: true})
	resp, err := http.Get(on.ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: status = %d, want 200", resp.StatusCode)
	}
}

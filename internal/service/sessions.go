package service

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"decor/internal/jsonx"
	"decor/internal/session"
)

// Session HTTP API (DESIGN.md §14). A field session is a long-lived
// stateful counterpart to the stateless /v1/plan and /v1/repair
// endpoints: the server keeps the deployment (and its warm incremental
// planner state) resident between requests, so a failure event costs an
// incremental delta repair instead of a full field rebuild.
//
//	POST   /v1/fields              create a session; body = plan request + field_id
//	POST   /v1/fields/{id}/events  stream failure events in (NDJSON), deltas out
//	GET    /v1/fields/{id}/stream  SSE delta feed (?from_seq=N replays the ring)
//	GET    /v1/fields/{id}         session metadata
//	DELETE /v1/fields/{id}         drop the session
//
// Sessions are tenant-scoped by the X-Decor-Tenant header: one tenant
// can never address (or even detect) another tenant's fields, and
// per-tenant quotas answer 429 + Retry-After without disturbing anyone
// else.

// FieldRequest is the body of POST /v1/fields: the same field
// description as /v1/plan plus the client-chosen field identifier.
type FieldRequest struct {
	PlanRequest
	FieldID string `json:"field_id"`
}

// maxFieldIDLen bounds the client-chosen identifier: it is a map key, a
// hash input and a log token, not a document.
const maxFieldIDLen = 128

// EventRequest is one failure event on the NDJSON event stream.
type EventRequest struct {
	Failed []int `json:"failed"`
}

// spec converts the normalized request into the session's canonical
// field description.
func (fr FieldRequest) spec() session.Spec {
	sensors := make([]session.Sensor, len(fr.Sensors))
	for i, s := range fr.Sensors {
		sensors[i] = session.Sensor{ID: *s.ID, X: s.X, Y: s.Y}
	}
	return session.Spec{
		FieldSide: fr.FieldSide,
		K:         fr.K,
		Rs:        fr.Rs,
		Rc:        fr.Rc,
		NumPoints: fr.NumPoints,
		Generator: fr.Generator,
		Seed:      fr.Seed,
		Sensors:   sensors,
		Scatter:   fr.Scatter,
		Method:    fr.Method,
	}
}

// Sessions exposes the field-session manager (decor-load drives it
// directly in-process for its session soak mode).
func (s *Server) Sessions() *session.Manager { return s.sessions }

// writeSessionError maps the session package's sentinel errors onto the
// HTTP statuses the API documents. Non-sentinel errors are client
// errors: the only way to produce one on an established session is to
// reference sensors that do not exist.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound):
		s.writeError(w, http.StatusNotFound, "field not found")
	case errors.Is(err, session.ErrExists):
		s.writeError(w, http.StatusConflict, "field already exists")
	case errors.Is(err, session.ErrSubscribed):
		s.writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, session.ErrTenantSessions), errors.Is(err, session.ErrTenantBusy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, session.ErrSaturated), errors.Is(err, session.ErrClosed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		s.writeError(w, http.StatusBadRequest, err.Error())
	}
}

// withSessionMetrics wraps a session handler with the same response
// accounting as the plan path, under an explicit low-cardinality route
// label (the raw path would explode on field IDs).
func (s *Server) withSessionMetrics(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := getStatusWriter(w)
		defer putStatusWriter(sw)
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.recordResponse(route, status, r.Header.Get(tenantHeader))
		if status >= 500 {
			s.captureFlight()
		}
	}
}

// handleFieldCreate serves POST /v1/fields.
func (s *Server) handleFieldCreate(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(tenantHeader)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)
	var fr FieldRequest
	data, err := readBody(r.Body, buf)
	if err == nil {
		err = decodeFieldRequest(data, &fr)
	}
	if err != nil {
		s.badSessionRequest(w, err)
		return
	}
	if fr.FieldID == "" || len(fr.FieldID) > maxFieldIDLen {
		s.cBadReqs.Inc()
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("field_id must be 1..%d bytes", maxFieldIDLen))
		return
	}
	pr, err := fr.PlanRequest.normalize(s.cfg.Limits)
	if err != nil {
		s.badSessionRequest(w, err)
		return
	}
	fr.PlanRequest = pr

	_, delta, err := s.sessions.Create(tenant, fr.FieldID, fr.spec())
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	// Encode before writing the status line, so an encode failure can
	// still surface as a 500 (the old Encoder call silently dropped it).
	body, err := delta.AppendJSON((*buf)[:0])
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	*buf = body
	w.Header().Set("Content-Type", jsonContentType)
	w.Header().Set("Location", "/v1/fields/"+fr.FieldID)
	w.WriteHeader(http.StatusCreated)
	w.Write(body)
}

// badSessionRequest writes a 4xx for a request that failed validation.
func (s *Server) badSessionRequest(w http.ResponseWriter, err error) {
	s.cBadReqs.Inc()
	var ae *apiError
	if errors.As(err, &ae) {
		s.writeError(w, ae.status, ae.msg)
		return
	}
	s.writeError(w, http.StatusBadRequest, err.Error())
}

// writeInbandError reports a failure after deltas have already been
// streamed: the status line is gone, so the error travels in-band as the
// stream's last object. Byte-identical to the json.Encoder construction
// it replaced.
func writeInbandError(w http.ResponseWriter, buf *[]byte, msg string) {
	*buf = appendErrorBody((*buf)[:0], msg)
	w.Write(*buf)
}

// handleFieldEvents serves POST /v1/fields/{id}/events: a stream of
// NDJSON failure events in, one NDJSON delta per event out, flushed as
// each repair completes. A single JSON object (no trailing newline)
// works too, so `curl -d '{"failed":[3]}'` behaves as expected.
//
// Events pass through the pooled eventScanner: each object is lexed out
// of a reused read buffer and fast-parsed into a reused failed-ID
// scratch slice (the session manager copies what it retains), so a
// steady event stream allocates nothing per event on the decode side.
func (s *Server) handleFieldEvents(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(tenantHeader)
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	sc := newEventScanner(r.Body)
	defer sc.close()
	out := jsonx.GetBuf()
	defer jsonx.PutBuf(out)

	flusher, _ := w.(http.Flusher)
	wrote := false
	for {
		failed, err := sc.next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if !wrote {
				s.badSessionRequest(w, badRequest("invalid event JSON: %v", err))
				return
			}
			// Mid-stream garbage after successful deltas: the status line
			// is gone, so report in-band and hang up.
			writeInbandError(w, out, fmt.Sprintf("invalid event JSON: %v", err))
			return
		}
		if len(failed) == 0 {
			err := badRequest("event must name at least one failed sensor")
			if !wrote {
				s.badSessionRequest(w, err)
			} else {
				writeInbandError(w, out, err.Error())
			}
			return
		}
		delta, err := s.sessions.Apply(tenant, id, failed)
		if err != nil {
			if !wrote {
				s.writeSessionError(w, err)
			} else {
				writeInbandError(w, out, err.Error())
			}
			return
		}
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		body, err := delta.AppendJSON((*out)[:0])
		if err != nil {
			return // non-finite delta: unrepresentable, hang up (was Encoder's silent drop)
		}
		body = append(body, '\n')
		*out = body
		w.Write(body)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !wrote {
		s.badSessionRequest(w, badRequest("event stream carried no events"))
	}
}

// handleFieldStream serves GET /v1/fields/{id}/stream as Server-Sent
// Events: ring deltas with Seq >= from_seq replay immediately, then
// every live delta follows as it is planned. The stream ends when the
// client disconnects, the session is dropped, or the subscriber falls
// behind the ring (reconnect with from_seq to resume).
func (s *Server) handleFieldStream(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(tenantHeader)
	id := r.PathValue("id")
	var fromSeq uint64
	if raw := r.URL.Query().Get("from_seq"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.badSessionRequest(w, badRequest("from_seq must be a non-negative integer"))
			return
		}
		fromSeq = v
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	ch, cancel, err := s.sessions.Subscribe(tenant, id, fromSeq)
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// One pooled frame buffer serves the whole subscription: each delta
	// renders as a complete SSE frame (byte-identical to the old
	// Marshal+Fprintf form) and goes out in a single Write.
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)
	for {
		select {
		case delta, open := <-ch:
			if !open {
				return // dropped session, lagging subscriber, or shutdown
			}
			frame, err := appendSSEFrame((*buf)[:0], &delta)
			if err != nil {
				return
			}
			*buf = frame
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// appendSSEFrame renders one delta as a complete SSE frame:
// "id: <seq>\nevent: delta\ndata: <json>\n\n".
func appendSSEFrame(b []byte, delta *session.Delta) ([]byte, error) {
	b = append(b, "id: "...)
	b = jsonx.AppendUint(b, delta.Seq)
	b = append(b, "\nevent: delta\ndata: "...)
	b, err := delta.AppendJSON(b)
	if err != nil {
		return b, err
	}
	return append(b, '\n', '\n'), nil
}

// handleFieldGet serves GET /v1/fields/{id}: session metadata, without
// restoring an evicted session.
func (s *Server) handleFieldGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.sessions.Get(r.Header.Get(tenantHeader), r.PathValue("id"))
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)
	body, err := info.AppendJSON((*buf)[:0])
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	*buf = body
	w.Header().Set("Content-Type", jsonContentType)
	w.Write(body)
}

// handleFieldDelete serves DELETE /v1/fields/{id}.
func (s *Server) handleFieldDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.Drop(r.Header.Get(tenantHeader), r.PathValue("id")); err != nil {
		s.writeSessionError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

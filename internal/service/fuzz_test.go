package service

import (
	"strings"
	"testing"
)

// FuzzDecodePlanRequest drives arbitrary bytes through the exact
// decode+validate path of POST /v1/plan. The invariants: never panic,
// and anything that survives normalize respects every server limit —
// malformed JSON, non-finite coordinates and giant counts must all be
// rejected as client errors before a deployment is built.
func FuzzDecodePlanRequest(f *testing.F) {
	f.Add(`{"field_side":100,"k":3,"rs":4,"scatter":200}`)
	f.Add(`{"field_side":50,"k":2,"rs":4,"sensors":[{"id":1,"x":5,"y":5}],"method":"grid-big"}`)
	f.Add(`{"field_side":1e999,"k":1,"rs":4}`)
	f.Add(`{"field_side":100,"k":2147483647,"rs":4}`)
	f.Add(`{"field_side":100,"k":3,"rs":4,"num_points":99999999}`)
	f.Add(`{"field_side":100,"k":3,"rs":4,"scatter":-1}`)
	f.Add(`{"field_side":100,"k":3,"rs":4,"sensors":[{"x":1,"y":`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		lim := DefaultLimits()
		var pr PlanRequest
		if err := decodeJSON(strings.NewReader(body), &pr); err != nil {
			return // rejected at decode: fine, and no panic happened
		}
		norm, err := pr.normalize(lim)
		if err != nil {
			return // rejected at validation: fine
		}
		// Accepted requests must be inside every bound the executor
		// relies on.
		if norm.NumPoints < 1 || norm.NumPoints > lim.MaxPoints {
			t.Fatalf("accepted num_points %d outside (0, %d]", norm.NumPoints, lim.MaxPoints)
		}
		if n := len(norm.Sensors) + norm.Scatter; n > lim.MaxSensors || norm.Scatter < 0 {
			t.Fatalf("accepted sensor count %d (scatter %d) over limit", n, norm.Scatter)
		}
		if norm.K < 1 || norm.K > lim.MaxK {
			t.Fatalf("accepted k %d outside [1, %d]", norm.K, lim.MaxK)
		}
		if !isFinite(norm.FieldSide) || norm.FieldSide <= 0 ||
			!isFinite(norm.Rs) || norm.Rs <= 0 || !isFinite(norm.Rc) || norm.Rc < norm.Rs {
			t.Fatalf("accepted non-finite or inconsistent geometry: %+v", norm)
		}
		for i, s := range norm.Sensors {
			if !isFinite(s.X) || !isFinite(s.Y) {
				t.Fatalf("accepted non-finite sensor %d: %+v", i, s)
			}
		}
		// The canonical key must be stable and cheap for anything accepted
		// (a sha256 digest is never the zero array).
		if norm.key() == (reqKey{}) {
			t.Fatal("empty cache key")
		}
	})
}

// FuzzDecodeRepairRequest extends the fuzz surface to the repair
// decoder: failure references must never panic validation.
func FuzzDecodeRepairRequest(f *testing.F) {
	f.Add(`{"field_side":50,"k":1,"rs":4,"sensors":[{"x":1,"y":1}],"failed":[0]}`)
	f.Add(`{"field_side":50,"k":1,"rs":4,"failed":[99999999]}`)
	f.Add(`{"field_side":50,"k":1,"rs":4,"scatter":3,"failed":[2,2]}`)
	f.Fuzz(func(t *testing.T, body string) {
		var rr RepairRequest
		if err := decodeJSON(strings.NewReader(body), &rr); err != nil {
			return
		}
		if norm, err := rr.normalize(DefaultLimits()); err == nil {
			if norm.key() == (reqKey{}) {
				t.Fatal("empty cache key")
			}
		}
	})
}

package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// ---------------------------------------------------------------------
// Encoder parity: every byte the hand-rolled codec emits must match
// encoding/json exactly — the cache and X-Decor-Cache identity contract.
// ---------------------------------------------------------------------

// TestAppendErrorBodyParity pins writeError's rendered body against the
// json.Marshal construction it replaced, across the escaping surface
// (HTML characters, control bytes, invalid UTF-8, U+2028/U+2029).
func TestAppendErrorBodyParity(t *testing.T) {
	msgs := []string{
		"",
		"use POST",
		"use GET",
		"deadline exceeded while planning",
		`unknown generator "hélton"`,
		"tags <b>bold</b> & \"quoted\"",
		"newline\nand\ttab and control \x01",
		"invalid utf8 \xff\xfe trailing",
		"line separators \u2028 \u2029",
		"emoji 🎉 and 世界",
	}
	for _, msg := range msgs {
		want, err := json.Marshal(struct {
			Error string `json:"error"`
		}{Error: msg})
		if err != nil {
			t.Fatalf("marshal %q: %v", msg, err)
		}
		want = append(want, '\n')
		got := appendErrorBody(nil, msg)
		if !bytes.Equal(got, want) {
			t.Errorf("error body for %q:\n got %q\nwant %q", msg, got, want)
		}
	}
	// The preformatted static bodies must equal the rendered form.
	if got := appendErrorBody(nil, "use POST"); !bytes.Equal(errBodyUsePost, got) {
		t.Errorf("static use-POST body %q != rendered %q", errBodyUsePost, got)
	}
	if got := appendErrorBody(nil, "use GET"); !bytes.Equal(errBodyUseGet, got) {
		t.Errorf("static use-GET body %q != rendered %q", errBodyUseGet, got)
	}
}

func respParity(t *testing.T, resp *PlanResponse) {
	t.Helper()
	want, wantErr := json.Marshal(resp)
	got, gotErr := appendPlanResponse(nil, resp)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("response %+v: appendPlanResponse err=%v, json.Marshal err=%v", resp, gotErr, wantErr)
	}
	if wantErr == nil && !bytes.Equal(got, want) {
		t.Errorf("response %+v:\n got %s\nwant %s", resp, got, want)
	}
}

func TestAppendPlanResponseParity(t *testing.T) {
	cases := []*PlanResponse{
		{},
		{Method: "voronoi-big", K: 3, Placed: 12, TotalSensors: 112, Messages: 240,
			MessagesPerCell: 1.21875, Rounds: 4, Seeded: 100,
			Placements: []PointSpec{{X: 1.5, Y: 2.25}, {X: 0, Y: 97.3}},
			CoverageK:  0.998, Coverage1: 1, Covered: true},
		{Method: "centralized", Failed: 3, Placements: []PointSpec{}},
		{Method: "grid-small", Failed: 0, Placements: nil, CoverageK: 1e-7, Coverage1: 1e21},
		{Method: "esc<&>\"", Placements: []PointSpec{{X: math.MaxFloat64, Y: 5e-324}},
			MessagesPerCell: 9.999999e-7},
		{MessagesPerCell: math.NaN(), Placements: []PointSpec{}},
		{CoverageK: math.Inf(1), Placements: []PointSpec{}},
		{Coverage1: math.Inf(-1), Placements: []PointSpec{}},
		{Placements: []PointSpec{{X: math.NaN()}}},
		{K: math.MaxInt, Placed: math.MinInt, Messages: -42, Rounds: 7},
	}
	for _, resp := range cases {
		respParity(t, resp)
	}
}

// TestCanonicalRequestParity locks the cache-key input bytes: the append
// encoders render a normalized request exactly as json.Marshal does,
// including the omitempty and nil-vs-empty rules.
func TestCanonicalRequestParity(t *testing.T) {
	prs := []PlanRequest{
		{},
		{FieldSide: 100, K: 3, Rs: 4, Rc: 8, NumPoints: 2000, Generator: "halton",
			Seed: 42, Scatter: 200, Method: "voronoi-big", TimeoutMS: 900},
		{FieldSide: 50.5, K: 1, Rs: 1e-7, Sensors: []SensorSpec{}},
		{FieldSide: 50, K: 1, Rs: 4, Sensors: []SensorSpec{
			{ID: intPtr(0), X: 1.25, Y: 2}, {ID: intPtr(7), X: 0, Y: 50}}},
		{FieldSide: 50, K: 1, Rs: 4, Sensors: []SensorSpec{{X: 3, Y: 4}}},
		{FieldSide: 1e21, K: 2, Rs: 0.1, Generator: "esc\"<&>", Method: "m\u2028"},
		{FieldSide: 100, K: 1, Rs: 4, Seed: math.MaxUint64},
	}
	for _, pr := range prs {
		want, err := json.Marshal(pr)
		if err != nil {
			t.Fatalf("marshal %+v: %v", pr, err)
		}
		if got := appendPlanRequest(nil, &pr); !bytes.Equal(got, want) {
			t.Errorf("plan request %+v:\n got %s\nwant %s", pr, got, want)
		}
		for _, failed := range [][]int{nil, {}, {0}, {5, 3, 5}} {
			rr := RepairRequest{PlanRequest: pr, Failed: failed}
			want, err := json.Marshal(rr)
			if err != nil {
				t.Fatalf("marshal %+v: %v", rr, err)
			}
			if got := appendRepairRequest(nil, &rr); !bytes.Equal(got, want) {
				t.Errorf("repair request %+v:\n got %s\nwant %s", rr, got, want)
			}
		}
	}
}

// TestRequestKeyMatchesLegacyScheme pins key() to the exact digest the
// old json.Marshal-based cacheKey produced, so a deployed cache's
// identity semantics survive the codec swap (and timeout_ms stays
// excluded without mutating the caller's request).
func TestRequestKeyMatchesLegacyScheme(t *testing.T) {
	pr, err := PlanRequest{FieldSide: 100, K: 3, Rs: 4, Scatter: 50, TimeoutMS: 750}.normalize(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	legacy := func(endpoint string, v any) reqKey {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		io.WriteString(h, endpoint)
		h.Write([]byte{0})
		h.Write(b)
		var k reqKey
		h.Sum(k[:0])
		return k
	}
	zeroTO := pr
	zeroTO.TimeoutMS = 0
	if got, want := pr.key(), legacy("plan", zeroTO); got != want {
		t.Errorf("plan key diverged from the legacy sha256 scheme")
	}
	if pr.TimeoutMS != 750 {
		t.Errorf("key() mutated TimeoutMS to %d", pr.TimeoutMS)
	}
	rr, err := RepairRequest{PlanRequest: pr, Failed: []int{0, 1}}.normalize(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	zrr := rr
	zrr.TimeoutMS = 0
	if got, want := rr.key(), legacy("repair", zrr); got != want {
		t.Errorf("repair key diverged from the legacy sha256 scheme")
	}
}

// ---------------------------------------------------------------------
// Decoder parity: the fast-path-or-bail decoders must agree with the
// pure stdlib path on acceptance, decoded value, and error text.
// ---------------------------------------------------------------------

// decodeBodies is the differential corpus for the request decoders:
// clean fast-grammar bodies, every bail trigger (escapes, case-folded
// keys, nulls, floats in int fields, unknown fields), and malformed
// tails.
var decodeBodies = []string{
	``,
	`{}`,
	`   {  }  `,
	`{"field_side":100,"k":3,"rs":4}`,
	`{"field_side":100.5,"k":3,"rs":4,"rc":8.25,"num_points":2000,"generator":"halton","seed":42,"scatter":200,"method":"voronoi-big","timeout_ms":900}`,
	`{"field_side":1e2,"k":3,"rs":4e-1}`,
	`{"field_side":100,"k":3,"rs":4,"sensors":[]}`,
	`{"field_side":100,"k":3,"rs":4,"sensors":[{}]}`,
	`{"field_side":100,"k":3,"rs":4,"sensors":[{"id":1,"x":5,"y":6},{"x":7,"y":8}]}`,
	`{"field_side":100,"k":3,"rs":4,"sensors":null}`,
	`{"k":1,"k":2}`,
	`{"K":1}`,
	`{"generator":"hal\u0074on"}`,
	`{"method":"custom-method"}`,
	`{"field_side":"100"}`,
	`{"field_side":1e999}`,
	`{"k":5.5}`,
	`{"k":1e3}`,
	`{"k":9223372036854775808}`,
	`{"seed":-1}`,
	`{"seed":18446744073709551615}`,
	`{"unknown_field":1}`,
	`{"field_side":100,"k":3,"rs":4} `,
	`{"field_side":100,"k":3,"rs":4}{"k":1}`,
	`{"field_side":100,"k":3,"rs":4} trailing`,
	`{"field_side":100,`,
	`[1,2,3]`,
	`null`,
	`true`,
	`{"timeout_ms":-5}`,
	`{"field_side": 100 , "k" : 3 }`,
	`{"failed":[1,2,3]}`,
	`{"failed":[]}`,
	`{"failed":null}`,
	`{"failed":[1,2,"x"]}`,
	`{"failed":[01]}`,
	`{"field_id":"f-1","field_side":100,"k":1,"rs":4}`,
	`{"field_id":"esc\"aped"}`,
	`{"field_id":""}`,
	`{"field_id":"héllo"}`,
	"{\"field_id\":\"tab\there\"}",
}

func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return errTextStatus(ae)
	}
	return err.Error()
}

func errTextStatus(ae *apiError) string {
	return ae.msg + " (status " + itoa(ae.status) + ")"
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestDecodePlanRequestParity(t *testing.T) {
	for _, body := range decodeBodies {
		var fast, slow PlanRequest
		fastErr := decodePlanRequest([]byte(body), &fast)
		slowErr := decodeJSON(strings.NewReader(body), &slow)
		if errText(fastErr) != errText(slowErr) {
			t.Errorf("plan %q: fast err %q, stdlib err %q", body, errText(fastErr), errText(slowErr))
			continue
		}
		if fastErr == nil && !reflect.DeepEqual(fast, slow) {
			t.Errorf("plan %q:\n fast %+v\n slow %+v", body, fast, slow)
		}
	}
}

func TestDecodeRepairRequestParity(t *testing.T) {
	for _, body := range decodeBodies {
		var fast, slow RepairRequest
		fastErr := decodeRepairRequest([]byte(body), &fast)
		slowErr := decodeJSON(strings.NewReader(body), &slow)
		if errText(fastErr) != errText(slowErr) {
			t.Errorf("repair %q: fast err %q, stdlib err %q", body, errText(fastErr), errText(slowErr))
			continue
		}
		if fastErr == nil && !reflect.DeepEqual(fast, slow) {
			t.Errorf("repair %q:\n fast %+v\n slow %+v", body, fast, slow)
		}
	}
}

func TestDecodeFieldRequestParity(t *testing.T) {
	for _, body := range decodeBodies {
		var fast, slow FieldRequest
		fastErr := decodeFieldRequest([]byte(body), &fast)
		slowErr := decodeJSON(strings.NewReader(body), &slow)
		if errText(fastErr) != errText(slowErr) {
			t.Errorf("field %q: fast err %q, stdlib err %q", body, errText(fastErr), errText(slowErr))
			continue
		}
		if fastErr == nil && !reflect.DeepEqual(fast, slow) {
			t.Errorf("field %q:\n fast %+v\n slow %+v", body, fast, slow)
		}
	}
}

// ---------------------------------------------------------------------
// Event-stream parity: the pooled scanner against the json.Decoder loop
// the handler used to run.
// ---------------------------------------------------------------------

// stdlibEventSeq reproduces the old handler's decode loop outcome: the
// sequence of failed-ID lists, terminated by "" (clean EOF) or an error
// string.
func stdlibEventSeq(body string) ([][]int, string) {
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	var seq [][]int
	for {
		var ev EventRequest
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return seq, ""
			}
			return seq, err.Error()
		}
		seq = append(seq, append([]int(nil), ev.Failed...))
	}
}

func scannerEventSeq(body string) ([][]int, string) {
	sc := newEventScanner(strings.NewReader(body))
	defer sc.close()
	var seq [][]int
	for {
		failed, err := sc.next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return seq, ""
			}
			return seq, err.Error()
		}
		seq = append(seq, append([]int(nil), failed...))
	}
}

var eventStreams = []string{
	``,
	`   `,
	`{"failed":[1]}`,
	`{"failed":[1]}{"failed":[2,3]}`,
	"{\"failed\":[1]}\n{\"failed\":[2]}\n",
	`{"failed":[]}{"failed":null}{}`,
	`{"failed":[1],"failed":[2]}`,
	`{"failed":[1]} garbage`,
	`{"failed":[1]}{"failed":`,
	`{"failed":[1.5]}`,
	`{"failed":[-3]}`,
	`{"failed":"x"}`,
	`{"unknown":[1]}`,
	`{"failed":[1]}[2]`,
	`[{"failed":[1]}]`,
	`{"failed":[1]}{"failed":[2]} {"failed":[3]}`,
	`{"fail\u0065d":[9]}`,
	`{"failed":[ 1 , 2 ]}`,
	`{ "failed" : [1] }{"failed":[2]}`,
	`{"failed":[1]}x{"failed":[2]}`,
	`null {"failed":[1]}`,
	`{"nested":{"failed":[1]}}`,
	"{\"failed\":[1]}\r\n\t {\"failed\":[2]}",
}

func TestEventScannerParity(t *testing.T) {
	for _, body := range eventStreams {
		wantSeq, wantErr := stdlibEventSeq(body)
		gotSeq, gotErr := scannerEventSeq(body)
		if gotErr != wantErr {
			t.Errorf("stream %q: scanner err %q, stdlib err %q", body, gotErr, wantErr)
			continue
		}
		if !reflect.DeepEqual(gotSeq, wantSeq) {
			t.Errorf("stream %q:\n scanner %v\n stdlib  %v", body, gotSeq, wantSeq)
		}
	}
}

// TestEventScannerSmallReads re-runs the parity corpus through a reader
// that yields one byte at a time, exercising every fill/refill boundary
// in the object lexer.
func TestEventScannerSmallReads(t *testing.T) {
	for _, body := range eventStreams {
		wantSeq, wantErr := stdlibEventSeq(body)
		sc := newEventScanner(iotest(body))
		var gotSeq [][]int
		gotErr := ""
		for {
			failed, err := sc.next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					gotErr = err.Error()
				}
				break
			}
			gotSeq = append(gotSeq, append([]int(nil), failed...))
		}
		sc.close()
		if gotErr != wantErr || !reflect.DeepEqual(gotSeq, wantSeq) {
			t.Errorf("stream %q (1-byte reads):\n scanner %v err %q\n stdlib  %v err %q",
				body, gotSeq, gotErr, wantSeq, wantErr)
		}
	}
}

// iotest returns a reader delivering s one byte per Read call.
func iotest(s string) io.Reader { return &oneByteReader{s: s} }

type oneByteReader struct{ s string }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.s) == 0 {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	p[0] = r.s[0]
	r.s = r.s[1:]
	return 1, nil
}

// ---------------------------------------------------------------------
// Fuzzers (ISSUE 10 satellite: differential parity with seed corpus)
// ---------------------------------------------------------------------

// FuzzCodecParity drives randomized responses and error messages through
// both encoders: bytes must match json.Marshal exactly, and non-finite
// floats must be rejected on both sides.
func FuzzCodecParity(f *testing.F) {
	f.Add("voronoi-big", 3, 12, 240, 1.25, 0.5, 0, 0.998, 1.0, true, 2, "plan failed")
	f.Add("", 0, 0, 0, 0.0, 0.0, 0, 0.0, 0.0, false, -1, "")
	f.Add("esc<&>\"\u2028", math.MaxInt, math.MinInt, -1, math.Inf(1), 1e21, 5,
		9.999999e-7, math.MaxFloat64, true, 0, "err <&> \xff")
	f.Fuzz(func(t *testing.T, method string, k, placed, messages int,
		mpc, px float64, nPlace int, covK, cov1 float64, covered bool,
		failed int, errMsg string) {
		if nPlace < -1 || nPlace > 32 {
			return
		}
		resp := &PlanResponse{
			Method: method, K: k, Placed: placed, TotalSensors: placed + 1,
			Messages: messages, MessagesPerCell: mpc, Rounds: 2, Seeded: 1,
			Failed: failed, CoverageK: covK, Coverage1: cov1, Covered: covered,
		}
		if nPlace >= 0 {
			resp.Placements = []PointSpec{}
			for i := 0; i < nPlace; i++ {
				resp.Placements = append(resp.Placements, PointSpec{X: px + float64(i), Y: px * float64(i)})
			}
		}
		respParity(t, resp)

		want, _ := json.Marshal(struct {
			Error string `json:"error"`
		}{Error: errMsg})
		if got := appendErrorBody(nil, errMsg); !bytes.Equal(got, append(want, '\n')) {
			t.Errorf("error body %q:\n got %q\nwant %q", errMsg, got, append(want, '\n'))
		}
	})
}

// FuzzRequestDecodeParity is the decode half of the differential fuzz:
// arbitrary bytes through the fast-or-fallback decoders and the pure
// stdlib path must agree on outcome, value, and error text.
func FuzzRequestDecodeParity(f *testing.F) {
	for _, body := range decodeBodies {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var fast, slow PlanRequest
		fastErr := decodePlanRequest([]byte(body), &fast)
		slowErr := decodeJSON(strings.NewReader(body), &slow)
		if errText(fastErr) != errText(slowErr) {
			t.Fatalf("plan %q: fast err %q, stdlib err %q", body, errText(fastErr), errText(slowErr))
		}
		if fastErr == nil && !reflect.DeepEqual(fast, slow) {
			t.Fatalf("plan %q:\n fast %+v\n slow %+v", body, fast, slow)
		}
		var fastRR, slowRR RepairRequest
		fastRRErr := decodeRepairRequest([]byte(body), &fastRR)
		slowRRErr := decodeJSON(strings.NewReader(body), &slowRR)
		if errText(fastRRErr) != errText(slowRRErr) {
			t.Fatalf("repair %q: fast err %q, stdlib err %q", body, errText(fastRRErr), errText(slowRRErr))
		}
		if fastRRErr == nil && !reflect.DeepEqual(fastRR, slowRR) {
			t.Fatalf("repair %q:\n fast %+v\n slow %+v", body, fastRR, slowRR)
		}
	})
}

// FuzzEventStreamParity fuzzes the NDJSON scanner against the stdlib
// decode loop, in both one-shot and one-byte-read framing.
func FuzzEventStreamParity(f *testing.F) {
	for _, s := range eventStreams {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		wantSeq, wantErr := stdlibEventSeq(body)
		gotSeq, gotErr := scannerEventSeq(body)
		if gotErr != wantErr || !reflect.DeepEqual(gotSeq, wantSeq) {
			t.Fatalf("stream %q:\n scanner %v err %q\n stdlib  %v err %q",
				body, gotSeq, gotErr, wantSeq, wantErr)
		}
	})
}

package service

import (
	"container/list"
	"strconv"
	"sync"
)

// planCache is a fixed-capacity LRU over canonical request keys. Values
// are the finished response bodies — immutable byte slices served
// verbatim, so a hit is byte-identical to the miss that populated it.
// Keys are fixed-size digests (reqKey), so the map probes without
// hashing a string and Get allocates nothing.
type planCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[reqKey]*list.Element
}

type cacheEntry struct {
	key  reqKey
	body []byte
	// clen is the pre-rendered Content-Length header value, shared by
	// every hit so serving one assigns a slice instead of allocating it.
	clen []string
}

// newPlanCache returns a cache holding up to max entries; max <= 0
// disables caching (every Get misses, Put is a no-op).
func newPlanCache(max int) *planCache {
	return &planCache{
		max:   max,
		order: list.New(),
		items: make(map[reqKey]*list.Element),
	}
}

// Get returns the cached body and its shared Content-Length value for
// key, refreshing the entry's recency.
func (c *planCache) Get(key reqKey) ([]byte, []string, bool) {
	if c.max <= 0 {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.clen, true
}

// Put stores body under key, evicting the least recently used entry when
// full. Callers must never mutate body afterwards. The returned slice is
// the entry's shared Content-Length value (nil when caching is off).
func (c *planCache) Put(key reqKey, body []byte) []string {
	if c.max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A singleflight leader already stored this key; keep the
		// existing bytes (identical by determinism) and just refresh.
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).clen
	}
	e := &cacheEntry{key: key, body: body, clen: []string{strconv.Itoa(len(body))}}
	c.items[key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
	return e.clen
}

// Len returns the current entry count.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup coalesces concurrent identical requests: the first caller
// of begin for a key becomes the leader and computes the plan once;
// followers block on the call's done channel and replay the leader's
// exact response bytes and status.
type flightGroup struct {
	mu    sync.Mutex
	calls map[reqKey]*flightCall
}

type flightCall struct {
	done chan struct{}
	// Set by the leader before close(done); immutable afterwards.
	body   []byte
	err    error
	status int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[reqKey]*flightCall)}
}

// begin joins the in-flight computation for key, creating it when
// absent. leader reports whether the caller must compute and finish.
func (g *flightGroup) begin(key reqKey) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call, false
	}
	call = &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	return call, true
}

// finish publishes the leader's outcome to all followers and retires the
// key; later requests start a fresh flight (or hit the cache).
func (g *flightGroup) finish(key reqKey, call *flightCall, body []byte, status int, err error) {
	call.body, call.status, call.err = body, status, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
}

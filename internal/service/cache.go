package service

import (
	"container/list"
	"sync"
)

// planCache is a fixed-capacity LRU over canonical request keys. Values
// are the finished response bodies — immutable byte slices served
// verbatim, so a hit is byte-identical to the miss that populated it.
type planCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newPlanCache returns a cache holding up to max entries; max <= 0
// disables caching (every Get misses, Put is a no-op).
func newPlanCache(max int) *planCache {
	return &planCache{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, refreshing its recency.
func (c *planCache) Get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry when
// full. Callers must never mutate body afterwards.
func (c *planCache) Put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A singleflight leader already stored this key; keep the
		// existing bytes (identical by determinism) and just refresh.
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup coalesces concurrent identical requests: the first caller
// of begin for a key becomes the leader and computes the plan once;
// followers block on the call's done channel and replay the leader's
// exact response bytes and status.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	// Set by the leader before close(done); immutable afterwards.
	body   []byte
	err    error
	status int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// begin joins the in-flight computation for key, creating it when
// absent. leader reports whether the caller must compute and finish.
func (g *flightGroup) begin(key string) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call, false
	}
	call = &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	return call, true
}

// finish publishes the leader's outcome to all followers and retires the
// key; later requests start a fresh flight (or hit the cache).
func (g *flightGroup) finish(key string, call *flightCall, body []byte, status int, err error) {
	call.body, call.status, call.err = body, status, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
}

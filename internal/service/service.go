// Package service turns the DECOR planner into a long-running
// request/response system: decor-serve's HTTP layer, admission control,
// plan cache and instrumentation live here, on top of the decor facade.
//
// The paper's restoration step (§3) is a natural online operation — a
// field state comes in, a placement plan comes out — and this package
// owns the production concerns around it: a bounded worker pool behind
// an admission queue (overload answers 503 + Retry-After instead of
// queueing unboundedly), per-request deadlines carried by
// context.Context all the way into the placement round loop, an LRU
// cache of finished plans keyed by the canonical request hash with
// singleflight coalescing of identical in-flight requests, and a
// graceful drain on shutdown. DESIGN.md §9 documents the invariants.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"decor/internal/obs"
	"decor/internal/session"
)

// Config sizes a Server. The zero value gets sensible defaults from
// normalization: GOMAXPROCS workers, a 256-deep admission queue, a
// 512-entry plan cache and DefaultLimits.
type Config struct {
	// Workers is the number of concurrent planner goroutines.
	Workers int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is rejected with 503 + Retry-After.
	QueueDepth int
	// CacheEntries sizes the LRU plan cache (negative disables it).
	CacheEntries int
	// Limits bounds individual requests; see Limits.
	Limits Limits
	// Registry receives the decor_serve_* instruments and is exposed at
	// /metrics (default: the process-wide obs.Default()).
	Registry *obs.Registry
	// Tracer records per-request span trees, exposed at /debug/traces;
	// every response carries its trace ID in X-Decor-Trace (default: the
	// process-wide obs.DefaultTracer()).
	Tracer *obs.Tracer
	// Flight is the structured event recorder dumped at /debug/flight;
	// workers and the admission path write to it, and the dump taken when
	// a 5xx is served is kept for post-mortem (default: one shard per
	// worker plus one for admission decisions, 256 events each).
	Flight *obs.FlightRecorder
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// MaxQueuePerTenant caps how much of the admission queue one tenant
	// may occupy at once — the fairness bound that keeps a single noisy
	// tenant from starving everyone else's plans. Exceeding it answers
	// 429 + Retry-After (the queue itself still answers 503 when full).
	// Default: QueueDepth/4.
	MaxQueuePerTenant int
	// Sessions sizes the stateful field-session subsystem (DESIGN.md
	// §14); its Registry defaults to this Config's Registry.
	Sessions session.Config
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	c.Limits = c.Limits.normalized()
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer()
	}
	if c.Flight == nil {
		c.Flight = obs.NewFlightRecorder(c.Workers+1, 256)
	}
	if c.MaxQueuePerTenant <= 0 {
		c.MaxQueuePerTenant = c.QueueDepth / 4
		if c.MaxQueuePerTenant < 1 {
			c.MaxQueuePerTenant = 1
		}
	}
	if c.Sessions.Registry == nil {
		c.Sessions.Registry = c.Registry
	}
	return c
}

// jobRunner executes one decoded request. An interface (satisfied by
// the pooled planRunner/repairRunner in handlers.go) instead of a
// closure keeps the hot path from allocating a func value per request.
type jobRunner interface {
	runJob(ctx context.Context) ([]byte, error)
}

// runnerFunc adapts a plain function to jobRunner.
type runnerFunc func(context.Context) ([]byte, error)

func (f runnerFunc) runJob(ctx context.Context) ([]byte, error) { return f(ctx) }

// job is one admitted planning request.
type job struct {
	ctx    context.Context // carries the request deadline into the planner
	runner jobRunner
	done   chan jobResult // buffered: the worker never blocks on delivery
	enq    time.Time      // when submit accepted the job (queue-wait attr)
	tenant string         // raw tenant header, for the fairness bound
}

type jobResult struct {
	body []byte
	err  error
}

// Server is the restoration-planning service. Create with New, mount
// Handler on an http.Server, and Shutdown to drain.
type Server struct {
	cfg    Config
	cache  *planCache
	flight *flightGroup

	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	// baseCtx parents every job context, so a forced shutdown can abort
	// in-flight planning promptly.
	baseCtx context.Context
	abort   context.CancelFunc

	mu       sync.Mutex
	draining bool
	// queued tracks how many admitted jobs each tenant currently has in
	// the pool (queued or running), for the per-tenant fairness bound.
	queued map[string]int

	// sessions owns the stateful field sessions (see sessions.go).
	sessions *session.Manager

	// started anchors the flight recorder's relative timestamps.
	started time.Time

	// lastDump holds the flight-recorder snapshot taken when the most
	// recent 5xx was served, for /debug/flight post-mortems.
	dumpMu   sync.Mutex
	lastDump []obs.FlightEvent

	// tenants caps the cardinality of the tenant response label.
	tenantMu sync.Mutex
	tenants  map[string]bool

	// respCounters memoizes resolved labeled response-counter handles so
	// the per-request path is one RLock + map probe (see recordResponse).
	respMu       sync.RWMutex
	respCounters map[respKey]*obs.Counter

	// ewmaPlanMS tracks recent plan latency for Retry-After estimates.
	ewmaPlanMS atomicFloat

	// Instruments (see obs.RegisterServe for the taxonomy).
	cPlanReqs, cRepairReqs, cBadReqs     *obs.Counter
	cRejected, cTimeouts, cErrors        *obs.Counter
	cCacheHits, cCacheMisses, cCoalesced *obs.Counter
	gQueueDepth, gInflight, gHeapAllocs  *obs.Gauge
	hPlanSeconds, hRequestSeconds        *obs.Histogram
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   newPlanCache(cfg.CacheEntries),
		flight:  newFlightGroup(),
		queue:   make(chan *job, cfg.QueueDepth),
		baseCtx: ctx,
		abort:   cancel,
		started: time.Now(),
		tenants: map[string]bool{},
		queued:  map[string]int{},

		respCounters: map[respKey]*obs.Counter{},
	}
	s.sessions = session.New(cfg.Sessions)
	r := cfg.Registry
	obs.RegisterServe(r)
	s.cPlanReqs = r.Counter(obs.ServePlanRequests)
	s.cRepairReqs = r.Counter(obs.ServeRepairRequests)
	s.cBadReqs = r.Counter(obs.ServeBadRequests)
	s.cRejected = r.Counter(obs.ServeRejected)
	s.cTimeouts = r.Counter(obs.ServeTimeouts)
	s.cErrors = r.Counter(obs.ServeErrors)
	s.cCacheHits = r.Counter(obs.ServeCacheHits)
	s.cCacheMisses = r.Counter(obs.ServeCacheMisses)
	s.cCoalesced = r.Counter(obs.ServeCoalesced)
	s.gQueueDepth = r.Gauge(obs.ServeQueueDepth)
	s.gInflight = r.Gauge(obs.ServeInflight)
	s.gHeapAllocs = r.Gauge(obs.ServeHeapAllocs)
	s.hPlanSeconds = r.Histogram(obs.ServePlanSeconds, obs.DefLatencyBuckets)
	s.hRequestSeconds = r.Histogram(obs.ServeRequestSeconds, obs.DefLatencyBuckets)

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// uptime is the flight-recorder clock: seconds since the server started.
func (s *Server) uptime() float64 { return time.Since(s.started).Seconds() }

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) worker(idx int) {
	defer s.wg.Done()
	fs := s.cfg.Flight.Shard(idx)
	for j := range s.queue {
		s.gQueueDepth.Add(-1)
		s.gInflight.Add(1)
		start := time.Now()
		var res jobResult
		// The deadline covers queue wait too: a job that spent its whole
		// budget queued fails fast instead of planning for a client that
		// has already given up.
		if err := j.ctx.Err(); err != nil {
			res = jobResult{err: err}
			fs.Record(s.uptime(), "plan.expired", idx, "deadline spent in queue")
		} else {
			rctx, span := obs.StartSpanCtx(j.ctx, "plan.run")
			if span != nil {
				span.SetAttr(fmt.Sprintf("queue_wait_ms=%.2f", start.Sub(j.enq).Seconds()*1000))
			}
			body, err := j.runner.runJob(rctx)
			span.End()
			res = jobResult{body: body, err: err}
			if err != nil {
				fs.Record(s.uptime(), "plan.err", idx, err.Error())
			} else {
				fs.Record(s.uptime(), "plan.done", idx, fmt.Sprintf("bytes=%d", len(body)))
			}
		}
		sec := time.Since(start).Seconds()
		s.hPlanSeconds.Observe(sec)
		s.ewmaPlanMS.blend(sec * 1000)
		j.done <- res
		s.gInflight.Add(-1)
	}
}

// errTenantOverloaded: the tenant's fair share of the admission queue
// is spoken for; other tenants' requests still admit normally.
var errTenantOverloaded = errors.New("tenant admission quota exhausted")

// submit offers j to the admission queue without blocking. A nil error
// admits; errTenantOverloaded means the tenant hit its fairness bound
// (429), errOverloaded means the whole queue is saturated or draining
// (503). Admitted jobs hold one slot of their tenant's share until
// release.
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errOverloaded
	}
	// The fairness bound applies per named tenant; anonymous requests
	// (no X-Decor-Tenant) share the queue's global capacity only.
	if j.tenant != "" && s.queued[j.tenant] >= s.cfg.MaxQueuePerTenant {
		return errTenantOverloaded
	}
	j.enq = time.Now()
	select {
	case s.queue <- j:
		if j.tenant != "" {
			s.queued[j.tenant]++
		}
		s.gQueueDepth.Add(1)
		return nil
	default:
		return errOverloaded
	}
}

// release returns j's tenant-share slot once its result is consumed.
func (s *Server) release(j *job) {
	if j.tenant == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued[j.tenant] > 0 {
		s.queued[j.tenant]--
		if s.queued[j.tenant] == 0 {
			delete(s.queued, j.tenant)
		}
	}
}

// retryAfterSeconds estimates when a rejected client should try again: a
// full queue's worth of work spread over the pool, clamped to [1, 30]
// (Retry-After has one-second resolution, and anything above half a
// minute just makes clients give up).
func (s *Server) retryAfterSeconds() int {
	est := float64(s.cfg.QueueDepth) * s.ewmaPlanMS.load() / 1000 / float64(s.cfg.Workers)
	return clampRetrySeconds(est, 30)
}

// clampRetrySeconds rounds a latency estimate in seconds up to a whole
// second and clamps it into [1, max]. The comparison happens in float
// space before any int conversion: converting a huge or infinite float
// to int is implementation-defined in Go (on amd64 it produces the
// minimum integer), so the old `int(math.Ceil(est))` turned an
// overflowed EWMA into Retry-After: 1 — precisely the wrong signal for
// a server that just reported being the most overloaded it can be.
func clampRetrySeconds(est float64, max int) int {
	if math.IsNaN(est) || est < 1 {
		return 1
	}
	if est >= float64(max) {
		return max
	}
	return int(math.Ceil(est))
}

// Draining reports whether Shutdown has begun (healthz turns 503 so load
// balancers stop routing here).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the service: new submissions are refused, queued and
// in-flight plans run to completion, workers exit. If ctx expires first
// the remaining plans are aborted through their contexts and Shutdown
// waits for the workers to notice, returning ctx.Err().
//
// Call order matters: stop the HTTP listener (http.Server.Shutdown, which
// waits for in-flight handlers and therefore for their jobs) before or
// concurrently with this; Shutdown only manages the pool.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		// No submit can be in flight past this point: submit checks
		// draining under the same mutex.
		close(s.queue)
	}
	// Close the session manager first: it closes every subscriber
	// channel, which unblocks SSE handlers so http.Server.Shutdown can
	// finish. Idempotent, and session state is rebuildable by design.
	s.sessions.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort() // cancel in-flight plan contexts
		<-done
		return ctx.Err()
	}
}

// atomicFloat is a mutex-guarded EWMA holder (advisory latency stats).
type atomicFloat struct {
	mu sync.Mutex
	v  float64
}

func (a *atomicFloat) load() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// blend folds one sample into the EWMA (α = 0.2).
func (a *atomicFloat) blend(sample float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.v == 0 {
		a.v = sample
		return
	}
	a.v = 0.8*a.v + 0.2*sample
}

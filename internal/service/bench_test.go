package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"strconv"
	"testing"

	"decor/internal/jsonx"
	"decor/internal/obs"
	"decor/internal/session"
)

// The serving-layer alloc benchmarks (ISSUE 10): end-to-end
// allocs/request through the real handlers, with the HTTP plumbing the
// handlers do not own (mux clone, net conn buffers) stripped away so the
// numbers pin OUR layer. scripts/benchstat.sh gates allocs/op exactly
// against BENCH_serve_allocs.json.

// benchWriter is a minimal ResponseWriter: a persistent header map, a
// counting Write, and an optional capture buffer for setup phases that
// need to read the response back. Steady-state use allocates nothing.
type benchWriter struct {
	h       http.Header
	status  int
	capture *bytes.Buffer
}

func newBenchWriter() *benchWriter { return &benchWriter{h: make(http.Header, 8)} }

func (w *benchWriter) Header() http.Header { return w.h }
func (w *benchWriter) WriteHeader(s int)   { w.status = s }
func (w *benchWriter) Write(b []byte) (int, error) {
	if w.capture != nil {
		w.capture.Write(b)
	}
	return len(b), nil
}

// rewindCloser lets one bytes.Reader serve as the request body for
// every iteration: Seek back to 0 and reassign (servePlanLike replaces
// r.Body with a MaxBytesReader each call).
type rewindCloser struct{ *bytes.Reader }

func (rewindCloser) Close() error { return nil }

func newBenchServer(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	svc := New(cfg)
	tb.Cleanup(func() { svc.Shutdown(context.Background()) })
	return svc
}

// planRig drives s.handlePlan directly with a fixed body. Calling the
// handler (not mux.ServeHTTP) avoids the per-match request clone the
// Go 1.22 pattern mux performs, which is outside the codec layer.
type planRig struct {
	svc *Server
	w   *benchWriter
	req *http.Request
	rd  *bytes.Reader
	rc  io.ReadCloser
}

func newPlanRig(tb testing.TB, cfg Config, body string) *planRig {
	tb.Helper()
	rd := bytes.NewReader([]byte(body))
	return &planRig{
		svc: newBenchServer(tb, cfg),
		w:   newBenchWriter(),
		req: httptest.NewRequest(http.MethodPost, "/v1/plan", nil),
		rd:  rd,
		rc:  rewindCloser{rd},
	}
}

func (p *planRig) run() {
	p.rd.Seek(0, io.SeekStart)
	p.req.Body = p.rc
	p.svc.handlePlan(p.w, p.req)
}

// BenchmarkServePlanCacheHit is the acceptance hot path: a warm
// cache-hit /v1/plan, request decode through the fast parser, response
// straight from the byte cache. Gated at <= 10 allocs/request.
func BenchmarkServePlanCacheHit(b *testing.B) {
	p := newPlanRig(b, Config{Workers: 1}, planBody(7))
	p.run() // cold miss populates the cache; everything after hits
	if p.w.status != 0 && p.w.status != http.StatusOK {
		b.Fatalf("warmup status = %d", p.w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.run()
	}
}

// BenchmarkServePlanCacheMiss runs the full pipeline every iteration —
// decode, normalize, queue, plan, encode — by disabling the cache. The
// request is fixed, so the planner work (and its allocations) are
// deterministic run to run.
func BenchmarkServePlanCacheMiss(b *testing.B) {
	p := newPlanRig(b, Config{Workers: 1, CacheEntries: -1}, planBody(7))
	p.run() // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.run()
	}
}

// TestServePlanCacheHitAllocs pins the ISSUE acceptance number outside
// the bench harness so plain `go test` (including -race) enforces it:
// a warm cache-hit /v1/plan costs at most 10 heap allocations.
// GC is paused so a mid-run sync.Pool flush cannot inflate the average.
func TestServePlanCacheHitAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	p := newPlanRig(t, Config{Workers: 1}, planBody(7))
	p.run()
	if p.w.status != 0 && p.w.status != http.StatusOK {
		t.Fatalf("warmup status = %d", p.w.status)
	}
	p.run() // ensure every pool on the path has a warm entry
	avg := testing.AllocsPerRun(100, p.run)
	t.Logf("cache-hit /v1/plan: %.1f allocs/request", avg)
	if avg > 10 {
		t.Errorf("cache-hit /v1/plan costs %.1f allocs/request, want <= 10", avg)
	}
}

// eventRig drives the session event handler (wrapped in the same
// metrics middleware production uses) with one 3-failure event per
// iteration, keeping the alive-ID list the same way
// session.benchSession does: victims come off the top, replacements
// are the next sequential IDs.
type eventRig struct {
	svc   *Server
	w     *benchWriter
	req   *http.Request
	h     http.HandlerFunc
	rd    *bytes.Reader
	rc    io.ReadCloser
	body  []byte
	alive []int
	cap   *bytes.Buffer
}

func newEventRig(tb testing.TB) *eventRig {
	tb.Helper()
	svc := newBenchServer(tb, Config{Workers: 1})
	e := &eventRig{
		svc: svc,
		w:   newBenchWriter(),
		h:   svc.withSessionMetrics("/v1/fields/{id}/events", svc.handleFieldEvents),
		cap: &bytes.Buffer{},
	}
	e.rd = bytes.NewReader(nil)
	e.rc = rewindCloser{e.rd}

	// Create the session through the real handler.
	e.w.capture = e.cap
	create := httptest.NewRequest(http.MethodPost, "/v1/fields",
		bytes.NewReader([]byte(`{"field_id":"bench","field_side":50,"k":2,"rs":4,`+
			`"num_points":500,"seed":7,"scatter":40,"method":"centralized"}`)))
	svc.handleFieldCreate(e.w, create)
	if e.w.status != http.StatusCreated {
		tb.Fatalf("create status = %d: %s", e.w.status, e.cap.Bytes())
	}
	for id := 0; id < 40; id++ {
		e.alive = append(e.alive, id)
	}
	e.grow(capturedPlaced(tb, e.cap.Bytes()))

	e.req = httptest.NewRequest(http.MethodPost, "/v1/fields/bench/events", nil)
	e.req.SetPathValue("id", "bench")
	return e
}

func (e *eventRig) grow(placed int) {
	next := 0
	if len(e.alive) > 0 {
		next = e.alive[len(e.alive)-1] + 1
	}
	for i := 0; i < placed; i++ {
		e.alive = append(e.alive, next)
		next++
	}
}

// step sends one `{"failed":[a,b,c]}` event and accounts for the
// replacements. Request body and capture buffer are reused; the only
// allocations measured are the handler's own.
func (e *eventRig) step(tb testing.TB) {
	if len(e.alive) < 3 {
		tb.Fatal("alive set exhausted")
	}
	b := append(e.body[:0], `{"failed":[`...)
	for i, id := range e.alive[len(e.alive)-3:] {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	e.body = append(b, "]}\n"...)

	e.cap.Reset()
	e.rd.Reset(e.body)
	e.req.Body = e.rc
	e.w.status = 0
	e.h(e.w, e.req)
	if e.w.status != 0 && e.w.status != http.StatusOK {
		tb.Fatalf("event status = %d: %s", e.w.status, e.cap.Bytes())
	}
	e.alive = e.alive[:len(e.alive)-3]
	e.grow(capturedPlaced(tb, e.cap.Bytes()))
}

// capturedPlaced pulls `"placed":N` out of a delta response without
// allocating a decoder: the field name is unique in the delta schema
// (`"placements"` is followed by `m`, not `":`).
func capturedPlaced(tb testing.TB, body []byte) int {
	tb.Helper()
	i := bytes.Index(body, []byte(`"placed":`))
	if i < 0 {
		tb.Fatalf("no placed field in %s", body)
	}
	j := i + len(`"placed":`)
	n := 0
	for ; j < len(body) && body[j] >= '0' && body[j] <= '9'; j++ {
		n = n*10 + int(body[j]-'0')
	}
	return n
}

// BenchmarkServeFieldEvent is the session apply→encode path end to
// end: NDJSON event decode, incremental repair, delta encode into the
// pooled buffer. The field state evolves, so allocs/op carries small
// planner-side variance; benchstat.sh gates it with headroom instead
// of exactly.
func BenchmarkServeFieldEvent(b *testing.B) {
	e := newEventRig(b)
	e.step(b) // warm the incremental path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step(b)
	}
}

// BenchmarkServeSSEFrame is the per-subscriber fanout cost: rendering
// one delta as a complete SSE frame into a reused buffer. Steady state
// must be zero allocs/op — the frame buffer is pooled per subscriber.
func BenchmarkServeSSEFrame(b *testing.B) {
	d := benchSSEDelta()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendSSEFrame(buf[:0], d)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}

func benchSSEDelta() *session.Delta {
	return &session.Delta{
		FieldID: "bench-field", Seq: 42, Method: "centralized",
		Failed: []int{2501, 2502, 2503}, Placed: 3,
		Placements: []session.Point{
			{X: 101.52343, Y: 330.0078125}, {X: 98.25, Y: 331.875}, {X: 104.4921875, Y: 328.5},
		},
		TotalSensors: 2503, Messages: 118, Rounds: 2,
		CoverageK: 0.999871, Covered: true,
	}
}

// TestSSEFrameAllocFreeAndWellFormed pins the structural properties
// behind the SSE bench: zero allocations into a warm buffer, and the
// exact frame layout the pre-codec Fprintf produced.
func TestSSEFrameAllocFreeAndWellFormed(t *testing.T) {
	d := benchSSEDelta()
	buf := make([]byte, 0, 1024)
	var err error
	if buf, err = appendSSEFrame(buf[:0], d); err != nil {
		t.Fatal(err)
	}
	wire, err := d.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "id: 42\nevent: delta\ndata: " + string(wire) + "\n\n"
	if string(buf) != want {
		t.Errorf("frame:\n got %q\nwant %q", buf, want)
	}
	avg := testing.AllocsPerRun(20, func() {
		buf, err = appendSSEFrame(buf[:0], d)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("appendSSEFrame into warm buffer: %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkServeErrorBody: the writeError slow path (dynamic message)
// through the pooled append encoder. The static fast paths (use POST /
// use GET) never allocate at all.
func BenchmarkServeErrorBody(b *testing.B) {
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*buf = appendErrorBody((*buf)[:0], `unknown generator "h<é>lton"`)
	}
}

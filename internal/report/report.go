// Package report assembles the full reproduction report — every paper
// figure, every extension experiment, and the claim-by-claim summary —
// as a single Markdown document. `decor-bench -report` uses it to
// produce an artifact equivalent to EXPERIMENTS.md's data sections from
// one command.
package report

import (
	"fmt"
	"io"
	"time"

	"decor/internal/experiment"
)

// Options selects the report contents.
type Options struct {
	// Figures runs the paper figures (fig7..fig14).
	Figures bool
	// Extensions runs the ext-* experiments.
	Extensions bool
	// Summary runs the paper-claims check.
	Summary bool
	// Dispersion renders mean±std tables where available.
	Dispersion bool
}

// Full returns options selecting everything.
func Full() Options {
	return Options{Figures: true, Extensions: true, Summary: true, Dispersion: true}
}

// Write generates the report into w. It returns the first experiment
// error encountered (the harness itself cannot fail on valid configs).
func Write(w io.Writer, cfg experiment.Config, opt Options) error {
	fmt.Fprintf(w, "# DECOR reproduction report\n\n")
	fmt.Fprintf(w, "Configuration: field %.0f×%.0f, %d %s points, rs=%g, %d initial sensors, %d runs, seed %d.\n\n",
		cfg.FieldSide, cfg.FieldSide, cfg.NumPoints, cfg.Generator, cfg.Rs,
		cfg.InitialSensors, cfg.Runs, cfg.Seed)

	if opt.Summary {
		fmt.Fprintf(w, "## Paper-claim summary\n\n```\n%s```\n\n",
			experiment.SummaryTable(experiment.Summary(cfg)))
	}
	if opt.Figures {
		fmt.Fprintf(w, "## Paper figures\n\n")
		for _, id := range experiment.AllIDs() {
			start := time.Now()
			fig, err := experiment.ByID(id, cfg)
			if err != nil {
				return err
			}
			writeFigure(w, fig, opt, time.Since(start))
		}
	}
	if opt.Extensions {
		fmt.Fprintf(w, "## Extension experiments\n\n")
		for _, id := range experiment.ExtIDs() {
			start := time.Now()
			fig, err := experiment.ExtByID(id, cfg)
			if err != nil {
				return err
			}
			writeFigure(w, fig, opt, time.Since(start))
		}
	}
	return nil
}

func writeFigure(w io.Writer, fig experiment.Figure, opt Options, elapsed time.Duration) {
	body := fig.Table()
	if opt.Dispersion && hasDispersion(fig) {
		body = fig.TableErr()
	}
	fmt.Fprintf(w, "### %s\n\n```\n%s```\n*elapsed: %s*\n\n",
		fig.ID, body, elapsed.Round(time.Millisecond))
}

func hasDispersion(fig experiment.Figure) bool {
	for _, s := range fig.Series {
		if s.Err != nil {
			return true
		}
	}
	return false
}

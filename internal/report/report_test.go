package report

import (
	"strings"
	"testing"

	"decor/internal/experiment"
)

func quickCfg() experiment.Config {
	c := experiment.Quick()
	c.Runs = 1
	c.FailureDraws = 2
	return c
}

func TestWriteFiguresOnly(t *testing.T) {
	var b strings.Builder
	err := Write(&b, quickCfg(), Options{Figures: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range experiment.AllIDs() {
		if !strings.Contains(out, "### "+id) {
			t.Errorf("report missing %s", id)
		}
	}
	if strings.Contains(out, "## Extension") || strings.Contains(out, "claim summary") {
		t.Error("unselected sections present")
	}
	if !strings.Contains(out, "Configuration: field 50×50") {
		t.Error("configuration header missing")
	}
}

func TestWriteDispersionToggle(t *testing.T) {
	var plain, err1 strings.Builder
	if err := Write(&plain, quickCfg(), Options{Figures: true}); err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Runs = 2 // dispersion needs more than one run to be meaningful
	if err := Write(&err1, cfg, Options{Figures: true, Dispersion: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(plain.String(), "±") != 0 {
		t.Error("plain report shows dispersion")
	}
	if strings.Count(err1.String(), "±") == 0 {
		t.Error("dispersion report shows none")
	}
}

func TestWriteSummaryOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("summary at full scale skipped in -short mode")
	}
	cfg := experiment.Default()
	cfg.Runs = 1
	cfg.FailureDraws = 2
	var b strings.Builder
	if err := Write(&b, cfg, Options{Summary: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "claims within tolerance") {
		t.Error("summary section missing")
	}
}

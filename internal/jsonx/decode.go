package jsonx

import (
	"strconv"
	"unsafe"
)

// Dec is a fast-path tokenizer over a fully buffered JSON value. Every
// primitive returns ok=false the moment the input leaves the common
// grammar (escapes, non-ASCII strings, nulls, case-folded keys, exotic
// numbers); the caller must then re-decode the same bytes with
// encoding/json, so behavior on the bail path is the stdlib's, verbatim.
// Nothing here allocates: strings come back as sub-slices of Data.
type Dec struct {
	Data []byte
	Pos  int
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// SkipWS advances past JSON whitespace.
func (d *Dec) SkipWS() {
	for d.Pos < len(d.Data) && isSpace(d.Data[d.Pos]) {
		d.Pos++
	}
}

// AtEnd reports whether only whitespace remains.
func (d *Dec) AtEnd() bool {
	d.SkipWS()
	return d.Pos == len(d.Data)
}

// Consume skips whitespace and consumes c if it is next.
func (d *Dec) Consume(c byte) bool {
	d.SkipWS()
	if d.Pos < len(d.Data) && d.Data[d.Pos] == c {
		d.Pos++
		return true
	}
	return false
}

// Key consumes an object key and its ':'. Only exact, escape-free keys
// in the [a-z0-9_] alphabet qualify — anything else (which stdlib might
// still match case-insensitively) must go to the fallback decoder.
func (d *Dec) Key() (key []byte, ok bool) {
	if !d.Consume('"') {
		return nil, false
	}
	start := d.Pos
	for d.Pos < len(d.Data) {
		c := d.Data[d.Pos]
		if c == '"' {
			key = d.Data[start:d.Pos]
			d.Pos++
			if !d.Consume(':') {
				return nil, false
			}
			return key, true
		}
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return nil, false
		}
		d.Pos++
	}
	return nil, false
}

// Str consumes a string value made only of printable ASCII with no
// escapes and returns the bytes between the quotes (aliasing Data).
func (d *Dec) Str() (s []byte, ok bool) {
	if !d.Consume('"') {
		return nil, false
	}
	start := d.Pos
	for d.Pos < len(d.Data) {
		c := d.Data[d.Pos]
		if c == '"' {
			s = d.Data[start:d.Pos]
			d.Pos++
			return s, true
		}
		if c < 0x20 || c >= 0x80 || c == '\\' {
			return nil, false
		}
		d.Pos++
	}
	return nil, false
}

// number scans one strict JSON number literal starting at d.Pos
// (whitespace already skipped) and reports whether it carried a
// fraction or exponent. It stops at the first byte outside the number
// grammar ("01" scans as "0" leaving "1"), so callers must keep
// checking structure afterwards — a leftover byte fails the next
// Consume and routes the request to the stdlib fallback.
func (d *Dec) number() (tok []byte, isInt, ok bool) {
	start := d.Pos
	i := d.Pos
	data := d.Data
	if i < len(data) && data[i] == '-' {
		i++
	}
	switch {
	case i < len(data) && data[i] == '0':
		i++
	case i < len(data) && data[i] >= '1' && data[i] <= '9':
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	default:
		return nil, false, false
	}
	isInt = true
	if i < len(data) && data[i] == '.' {
		isInt = false
		i++
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			return nil, false, false
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		isInt = false
		i++
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			i++
		}
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			return nil, false, false
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	d.Pos = i
	return data[start:i], isInt, true
}

// Int consumes an integer literal that fits in int64. Fractions,
// exponents and overflow bail (stdlib rejects those into Go ints too,
// so the fallback reproduces its exact error).
func (d *Dec) Int() (v int64, ok bool) {
	d.SkipWS()
	tok, isInt, ok := d.number()
	if !ok || !isInt {
		return 0, false
	}
	v, err := strconv.ParseInt(noCopyString(tok), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Uint consumes a non-negative integer literal that fits in uint64.
func (d *Dec) Uint() (v uint64, ok bool) {
	d.SkipWS()
	tok, isInt, ok := d.number()
	if !ok || !isInt || tok[0] == '-' {
		return 0, false
	}
	v, err := strconv.ParseUint(noCopyString(tok), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Float consumes any strict JSON number. The value comes from
// strconv.ParseFloat, the same routine encoding/json uses, so accepted
// values are bit-identical; a range error bails to the stdlib's error.
func (d *Dec) Float() (f float64, ok bool) {
	d.SkipWS()
	tok, _, ok := d.number()
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(noCopyString(tok), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// noCopyString views b as a string without copying. Safe only for
// immediate, non-retaining consumers (strconv parsers); never store it.
func noCopyString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

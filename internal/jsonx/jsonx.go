// Package jsonx is the serving layer's hand-rolled JSON kernel: pooled
// byte buffers, append-based encoders whose output is byte-identical to
// encoding/json, and zero-allocation decode primitives for the common
// wire shapes (DESIGN.md §16).
//
// The rules of the game:
//
//   - Encoding is append-only into caller-owned []byte, usually one
//     recycled through GetBuf/PutBuf. Every encoder here mirrors the
//     exact byte output of encoding/json for the same value — including
//     HTML escaping, � replacement of invalid UTF-8, the float
//     formatting quirks, and the rejection of NaN/±Inf — so callers can
//     swap reflection marshals for these appenders without changing a
//     single response byte. Parity is enforced by fuzz + table tests in
//     the consuming packages.
//
//   - Decoding is fast-path-or-bail: Dec's primitives accept only the
//     unambiguous common grammar (exact lowercase keys, escape-free
//     ASCII strings, plain number literals) and report ok=false for
//     anything else. Callers MUST fall back to encoding/json on a bail,
//     which keeps acceptance, results, and error messages identical to
//     the stdlib by construction — the fast path is an optimization,
//     never a second grammar.
package jsonx

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// maxPooledBuf caps the capacity PutBuf will retain: a one-off giant
// response (a 1e5-placement plan) should not pin megabytes in the pool
// forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuf returns a pooled byte buffer with length 0. Use the slice via
// (*p)[:0], store the grown slice back into *p, and return it with
// PutBuf when the encoded bytes have been fully consumed (written to the
// wire or copied) — never while anything still aliases them.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped so the pool's steady-state footprint stays bounded.
func PutBuf(p *[]byte) {
	if p == nil || cap(*p) > maxPooledBuf {
		return
	}
	*p = (*p)[:0]
	bufPool.Put(p)
}

const hexDigits = "0123456789abcdef"

// htmlSafe marks the ASCII bytes encoding/json emits verbatim inside a
// string when HTML escaping is on (the json.Marshal default): printable
// characters except ", \, <, > and &.
var htmlSafe = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		htmlSafe[c] = c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
	}
}

// AppendString appends s as a JSON string, byte-identical to how
// json.Marshal encodes it: HTML-relevant characters escaped as \u00XX,
// control characters as the short escapes (or \u00XX), invalid UTF-8
// replaced with �, and U+2028/U+2029 escaped for JS embedding.
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if htmlSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// This encodes bytes < 0x20 and the HTML set (<, >, &).
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// AppendFloat appends f exactly as encoding/json renders a float64
// ('f' format in the human range, 'e' with a trimmed exponent outside
// it). ok is false for NaN and ±Inf, which json.Marshal rejects with
// an UnsupportedValueError — callers must surface an error, not emit.
func AppendFloat(b []byte, f float64) (_ []byte, ok bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims "e-0X" to "e-X".
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// AppendInt appends v in base 10.
func AppendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// AppendUint appends v in base 10.
func AppendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// AppendBool appends the JSON boolean.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

package jsonx

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func stdString(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("json.Marshal(%q): %v", s, err)
	}
	return string(b)
}

func TestAppendStringParity(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"controls \x00\x01\x1f\b\f\n\r\t",
		"html <b>&amp;</b>",
		"unicode: héllo, 世界, emoji 🎉",
		"line seps   and   embedded",
		"invalid utf8: \xff\xfe trailing",
		"lone continuation \x80 byte",
		"truncated rune \xe2\x82",
		strings.Repeat("a", 300) + "\"" + strings.Repeat("b", 300),
		"� literal replacement char",
	}
	for _, s := range cases {
		got := string(AppendString(nil, s))
		want := stdString(t, s)
		if got != want {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestAppendFloatParity(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 3.14159,
		1e-6, 9.999e-7, 1e-7, 1e20, 1e21, 1.5e21, -2.25e22,
		1e-21, 5e-324, math.MaxFloat64, -math.MaxFloat64,
		123456789.123456789, 2, 100, 2000, 0.1, 1.0 / 3.0,
		6.62607015e-34, 2.718281828459045,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		got, ok := AppendFloat(nil, f)
		if !ok {
			t.Errorf("AppendFloat(%v) refused a finite value", f)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestAppendFloatRejectsNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, ok := AppendFloat([]byte("prefix"), f)
		if ok {
			t.Errorf("AppendFloat(%v) ok=true, want rejection", f)
		}
		if string(b) != "prefix" {
			t.Errorf("AppendFloat(%v) mutated the buffer: %q", f, b)
		}
	}
}

func TestAppendIntBool(t *testing.T) {
	if got := string(AppendInt(nil, -42)); got != "-42" {
		t.Errorf("AppendInt = %s", got)
	}
	if got := string(AppendUint(nil, 18446744073709551615)); got != "18446744073709551615" {
		t.Errorf("AppendUint = %s", got)
	}
	if got := string(AppendBool(AppendBool(nil, true), false)); got != "truefalse" {
		t.Errorf("AppendBool = %s", got)
	}
}

func FuzzAppendStringParity(f *testing.F) {
	f.Add("")
	f.Add("hello")
	f.Add("a\"b\\c\nd<e>&\x00\x1f")
	f.Add("\xff\x80ut 8")
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
	})
}

func FuzzAppendFloatParity(f *testing.F) {
	f.Add(0.0)
	f.Add(1e-6)
	f.Add(1e21)
	f.Add(-123.456)
	f.Fuzz(func(t *testing.T, v float64) {
		want, err := json.Marshal(v)
		got, ok := AppendFloat(nil, v)
		if (err == nil) != ok {
			t.Fatalf("AppendFloat(%v) ok=%v, json err=%v", v, ok, err)
		}
		if ok && string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", v, got, want)
		}
	})
}

func TestDecPrimitives(t *testing.T) {
	d := &Dec{Data: []byte(` { "field_side" : 32.5 , "k":2, "name":"halton", "neg":-7 } `)}
	if !d.Consume('{') {
		t.Fatal("expected {")
	}
	key, ok := d.Key()
	if !ok || string(key) != "field_side" {
		t.Fatalf("Key = %q, %v", key, ok)
	}
	f, ok := d.Float()
	if !ok || f != 32.5 {
		t.Fatalf("Float = %v, %v", f, ok)
	}
	if !d.Consume(',') {
		t.Fatal("expected ,")
	}
	if key, ok = d.Key(); !ok || string(key) != "k" {
		t.Fatalf("Key = %q, %v", key, ok)
	}
	n, ok := d.Int()
	if !ok || n != 2 {
		t.Fatalf("Int = %v, %v", n, ok)
	}
	d.Consume(',')
	if key, ok = d.Key(); !ok || string(key) != "name" {
		t.Fatalf("Key = %q, %v", key, ok)
	}
	s, ok := d.Str()
	if !ok || string(s) != "halton" {
		t.Fatalf("Str = %q, %v", s, ok)
	}
	d.Consume(',')
	if key, ok = d.Key(); !ok || string(key) != "neg" {
		t.Fatalf("Key = %q, %v", key, ok)
	}
	if n, ok = d.Int(); !ok || n != -7 {
		t.Fatalf("Int = %v, %v", n, ok)
	}
	if !d.Consume('}') {
		t.Fatal("expected }")
	}
	if !d.AtEnd() {
		t.Fatal("expected end")
	}
}

func TestDecBails(t *testing.T) {
	bails := []struct {
		name string
		run  func() bool
	}{
		{"key with uppercase", func() bool { _, ok := (&Dec{Data: []byte(`"Kk":`)}).Key(); return ok }},
		{"key with escape", func() bool { _, ok := (&Dec{Data: []byte(`"a\"b":`)}).Key(); return ok }},
		{"key missing colon", func() bool { _, ok := (&Dec{Data: []byte(`"k" 1`)}).Key(); return ok }},
		{"string with escape", func() bool { _, ok := (&Dec{Data: []byte(`"a\"b"`)}).Str(); return ok }},
		{"string non-ascii", func() bool { _, ok := (&Dec{Data: []byte(`"héllo"`)}).Str(); return ok }},
		{"string unterminated", func() bool { _, ok := (&Dec{Data: []byte(`"abc`)}).Str(); return ok }},
		{"int with fraction", func() bool { _, ok := (&Dec{Data: []byte(`3.0`)}).Int(); return ok }},
		{"int with exponent", func() bool { _, ok := (&Dec{Data: []byte(`1e2`)}).Int(); return ok }},
		{"int overflow", func() bool { _, ok := (&Dec{Data: []byte(`99999999999999999999`)}).Int(); return ok }},
		{"uint negative", func() bool { _, ok := (&Dec{Data: []byte(`-1`)}).Uint(); return ok }},
		{"number bare minus", func() bool { _, ok := (&Dec{Data: []byte(`-`)}).Float(); return ok }},
		{"number bare dot", func() bool { _, ok := (&Dec{Data: []byte(`1.`)}).Float(); return ok }},
		{"number bare exp", func() bool { _, ok := (&Dec{Data: []byte(`1e`)}).Float(); return ok }},
		{"not a number", func() bool { _, ok := (&Dec{Data: []byte(`null`)}).Float(); return ok }},
	}
	for _, c := range bails {
		if c.run() {
			t.Errorf("%s: ok=true, want bail", c.name)
		}
	}
}

func TestDecNumberForms(t *testing.T) {
	for _, c := range []struct {
		in   string
		want float64
	}{
		{"0", 0}, {"-0", math.Copysign(0, -1)}, {"0.5", 0.5}, {"1e2", 100},
		{"1E+2", 100}, {"2.5e-3", 0.0025}, {"123456", 123456},
	} {
		d := &Dec{Data: []byte(c.in)}
		f, ok := d.Float()
		if !ok || f != c.want || !d.AtEnd() {
			t.Errorf("Float(%q) = %v, ok=%v", c.in, f, ok)
		}
	}
	// Leading-zero trailing garbage must not be silently swallowed: "01"
	// scans "0" then leaves "1" — callers always check structure after.
	d := &Dec{Data: []byte(`01`)}
	if f, ok := d.Float(); ok && d.AtEnd() {
		t.Errorf("Float(01) consumed all input as %v", f)
	}
}

func TestBufPool(t *testing.T) {
	p := GetBuf()
	if len(*p) != 0 {
		t.Fatalf("GetBuf returned non-empty buffer len=%d", len(*p))
	}
	*p = append(*p, "data"...)
	PutBuf(p)
	big := make([]byte, 0, maxPooledBuf+1)
	PutBuf(&big) // must not retain; nothing observable, just must not panic
	PutBuf(nil)
}

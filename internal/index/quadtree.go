package index

import (
	"decor/internal/geom"
)

// PointIndex is the query surface shared by the bucket Grid and the
// Quadtree, letting benchmarks and callers swap spatial structures.
type PointIndex interface {
	Insert(id int, p geom.Point)
	Remove(id int) bool
	Len() int
	VisitBall(c geom.Point, r float64, fn func(id int, p geom.Point) bool)
	Ball(c geom.Point, r float64) []int
	CountBall(c geom.Point, r float64) int
}

var (
	_ PointIndex = (*Grid)(nil)
	_ PointIndex = (*Quadtree)(nil)
)

// Quadtree is a region quadtree over 2-D points: an adaptive alternative
// to the uniform bucket Grid for clustered inputs. DECOR's fields are
// near-uniform, where the Grid wins (see BenchmarkIndexComparison), but
// the quadtree degrades gracefully when density varies by orders of
// magnitude.
type Quadtree struct {
	root *qnode
	pos  map[int]geom.Point
	// leafCap is the split threshold.
	leafCap int
}

type qnode struct {
	bounds   geom.Rect
	entries  []entry // leaf payload (nil after split)
	children *[4]qnode
}

// NewQuadtree creates a quadtree over bounds; leaves split beyond
// leafCap points (0 = a sensible default of 16). Out-of-bounds points
// are clamped, matching Grid semantics.
func NewQuadtree(bounds geom.Rect, leafCap int) *Quadtree {
	if bounds.Empty() {
		panic("index: quadtree bounds must be non-empty")
	}
	if leafCap <= 0 {
		leafCap = 16
	}
	return &Quadtree{
		root:    &qnode{bounds: bounds},
		pos:     map[int]geom.Point{},
		leafCap: leafCap,
	}
}

// Len returns the number of indexed points.
func (q *Quadtree) Len() int { return len(q.pos) }

// Insert adds id at p; it panics on duplicate id.
func (q *Quadtree) Insert(id int, p geom.Point) {
	if _, ok := q.pos[id]; ok {
		panic("index: duplicate id")
	}
	p = q.root.bounds.Clamp(p)
	q.pos[id] = p
	q.root.insert(entry{id, p}, q.leafCap, 0)
}

const maxDepth = 24 // duplicates at one coordinate cannot split forever

func (n *qnode) insert(e entry, leafCap, depth int) {
	if n.children == nil {
		n.entries = append(n.entries, e)
		if len(n.entries) > leafCap && depth < maxDepth {
			n.split(leafCap, depth)
		}
		return
	}
	n.childFor(e.p).insert(e, leafCap, depth+1)
}

func (n *qnode) split(leafCap, depth int) {
	c := n.bounds.Center()
	b := n.bounds
	n.children = &[4]qnode{
		{bounds: geom.Rect{Min: b.Min, Max: c}},
		{bounds: geom.Rect{Min: geom.Point{X: c.X, Y: b.Min.Y}, Max: geom.Point{X: b.Max.X, Y: c.Y}}},
		{bounds: geom.Rect{Min: geom.Point{X: b.Min.X, Y: c.Y}, Max: geom.Point{X: c.X, Y: b.Max.Y}}},
		{bounds: geom.Rect{Min: c, Max: b.Max}},
	}
	entries := n.entries
	n.entries = nil
	for _, e := range entries {
		n.childFor(e.p).insert(e, leafCap, depth+1)
	}
}

func (n *qnode) childFor(p geom.Point) *qnode {
	c := n.bounds.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	return &n.children[i]
}

// Remove deletes id, reporting whether it was present. (Leaves are not
// re-merged; DECOR workloads only grow.)
func (q *Quadtree) Remove(id int) bool {
	p, ok := q.pos[id]
	if !ok {
		return false
	}
	delete(q.pos, id)
	n := q.root
	for n.children != nil {
		n = n.childFor(p)
	}
	for i := range n.entries {
		if n.entries[i].id == id {
			n.entries[i] = n.entries[len(n.entries)-1]
			n.entries = n.entries[:len(n.entries)-1]
			return true
		}
	}
	panic("index: id in pos map but not in quadtree leaf")
}

// VisitBall calls fn for every indexed point within r of c (closed
// ball); returning false stops early.
func (q *Quadtree) VisitBall(c geom.Point, r float64, fn func(id int, p geom.Point) bool) {
	if r < 0 {
		return
	}
	q.root.visitBall(geom.Disk{Center: c, R: r}, fn)
}

func (n *qnode) visitBall(d geom.Disk, fn func(id int, p geom.Point) bool) bool {
	if !d.IntersectsRect(n.bounds) {
		return true
	}
	if n.children == nil {
		r2 := d.R * d.R
		for _, e := range n.entries {
			if e.p.Dist2(d.Center) <= r2 {
				if !fn(e.id, e.p) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.children {
		if !n.children[i].visitBall(d, fn) {
			return false
		}
	}
	return true
}

// Ball returns the IDs within r of c.
func (q *Quadtree) Ball(c geom.Point, r float64) []int {
	var out []int
	q.VisitBall(c, r, func(id int, _ geom.Point) bool {
		out = append(out, id)
		return true
	})
	return out
}

// CountBall returns the number of indexed points within r of c.
func (q *Quadtree) CountBall(c geom.Point, r float64) int {
	n := 0
	q.VisitBall(c, r, func(int, geom.Point) bool { n++; return true })
	return n
}

// Depth returns the maximum leaf depth (a balance diagnostic).
func (q *Quadtree) Depth() int { return q.root.depth() }

func (n *qnode) depth() int {
	if n.children == nil {
		return 0
	}
	best := 0
	for i := range n.children {
		if d := n.children[i].depth(); d > best {
			best = d
		}
	}
	return best + 1
}

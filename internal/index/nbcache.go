package index

import "sync"

// NeighborhoodCache is a concurrency-safe, radius-keyed store of
// Neighborhoods builds meant to be shared between coverage maps with
// identical sample-point sets — e.g. the cells of one experiment sweep,
// which all sample the field with the same generator and seed. The
// adjacency depends only on the points and the radius, so one build
// serves every cell; Neighborhoods are immutable, making concurrent
// readers safe. Callers are responsible for only sharing a cache
// between maps whose point sets really are identical.
type NeighborhoodCache struct {
	mu  sync.Mutex
	byR map[float64]*Neighborhoods
}

// Get returns the cached adjacency for radius r, calling build to
// create it on first use. Builds are serialized under the cache lock so
// concurrent first requests for the same radius build only once.
func (c *NeighborhoodCache) Get(r float64, build func() *Neighborhoods) *Neighborhoods {
	c.mu.Lock()
	defer c.mu.Unlock()
	if nb, ok := c.byR[r]; ok {
		return nb
	}
	nb := build()
	if c.byR == nil {
		c.byR = make(map[float64]*Neighborhoods)
	}
	c.byR[r] = nb
	return nb
}

// Peek returns the cached adjacency for radius r, or nil when it has
// not been built yet.
func (c *NeighborhoodCache) Peek(r float64) *Neighborhoods {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byR[r]
}

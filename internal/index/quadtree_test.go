package index

import (
	"sort"
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func TestQuadtreeBasics(t *testing.T) {
	q := NewQuadtree(geom.Square(100), 4)
	q.Insert(1, geom.Pt(10, 10))
	q.Insert(2, geom.Pt(90, 90))
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.Ball(geom.Pt(10, 10), 5)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Ball = %v", got)
	}
	if !q.Remove(1) || q.Remove(1) {
		t.Error("Remove semantics wrong")
	}
	if q.Len() != 1 {
		t.Errorf("Len after remove = %d", q.Len())
	}
}

func TestQuadtreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty bounds should panic")
		}
	}()
	NewQuadtree(geom.Rect{}, 4)
}

func TestQuadtreeDuplicatePanics(t *testing.T) {
	q := NewQuadtree(geom.Square(10), 4)
	q.Insert(1, geom.Pt(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("duplicate should panic")
		}
	}()
	q.Insert(1, geom.Pt(2, 2))
}

func TestQuadtreeSplitsAndBounds(t *testing.T) {
	q := NewQuadtree(geom.Square(100), 2)
	r := rng.New(3)
	for id := 0; id < 200; id++ {
		q.Insert(id, r.PointInRect(geom.Square(100)))
	}
	if q.Depth() == 0 {
		t.Error("tree never split")
	}
	// Identical coordinates must not split forever.
	q2 := NewQuadtree(geom.Square(10), 2)
	for id := 0; id < 100; id++ {
		q2.Insert(id, geom.Pt(5, 5))
	}
	if d := q2.Depth(); d > maxDepth {
		t.Errorf("degenerate depth = %d", d)
	}
	if got := q2.CountBall(geom.Pt(5, 5), 0.1); got != 100 {
		t.Errorf("coincident count = %d", got)
	}
}

// The quadtree must return exactly the same ball results as the Grid on
// random workloads, including after removals.
func TestQuadtreeMatchesGrid(t *testing.T) {
	r := rng.New(21)
	bounds := geom.Square(100)
	g := NewGrid(bounds, 4)
	q := NewQuadtree(bounds, 8)
	alive := map[int]bool{}
	next := 0
	for step := 0; step < 600; step++ {
		if len(alive) == 0 || r.Float64() < 0.7 {
			p := r.PointInRect(bounds)
			g.Insert(next, p)
			q.Insert(next, p)
			alive[next] = true
			next++
		} else {
			for id := range alive {
				g.Remove(id)
				q.Remove(id)
				delete(alive, id)
				break
			}
		}
	}
	for trial := 0; trial < 150; trial++ {
		c := r.PointInRect(bounds)
		rad := r.Range(0, 15)
		a := g.Ball(c, rad)
		b := q.Ball(c, rad)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("trial %d: grid %d vs quadtree %d results", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestQuadtreeEarlyStopAndNegative(t *testing.T) {
	q := NewQuadtree(geom.Square(10), 2)
	for id := 0; id < 10; id++ {
		q.Insert(id, geom.Pt(5, 5))
	}
	calls := 0
	q.VisitBall(geom.Pt(5, 5), 1, func(int, geom.Point) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Errorf("early stop visited %d", calls)
	}
	q.VisitBall(geom.Pt(5, 5), -1, func(int, geom.Point) bool {
		t.Error("negative radius visited")
		return true
	})
}

// BenchmarkIndexComparison pits the two structures on the DECOR workload
// shape (uniform-ish points, rs-ball queries).
func BenchmarkIndexComparison(b *testing.B) {
	bounds := geom.Square(100)
	build := func(idx PointIndex) {
		r := rng.New(1)
		for id := 0; id < 2000; id++ {
			idx.Insert(id, r.PointInRect(bounds))
		}
	}
	for _, tc := range []struct {
		name string
		idx  PointIndex
	}{
		{"grid", NewGrid(bounds, 4)},
		{"quadtree", NewQuadtree(bounds, 16)},
	} {
		build(tc.idx)
		b.Run(tc.name, func(b *testing.B) {
			c := geom.Pt(50, 50)
			for i := 0; i < b.N; i++ {
				tc.idx.CountBall(c, 4)
			}
		})
	}
}

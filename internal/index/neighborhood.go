package index

import (
	"decor/internal/geom"
)

// Neighborhoods is a precomputed fixed-radius adjacency over a dense ID
// range [0, n): for every id i it stores the IDs within distance r of
// i's position, ascending, in one shared compressed (CSR) layout. DECOR's
// placement loop asks the same "points within rs of point i" question for
// the same radius thousands of times per deployment; answering from a
// precomputed slice removes both the bucket scan and the per-query
// distance arithmetic from the hot path, and allocates nothing after
// construction.
//
// The structure is immutable and safe for concurrent readers. It snapshots
// the index at construction time; points inserted or removed later are not
// reflected (DECOR's sample-point set is fixed for a deployment's
// lifetime, so this is the common case).
type Neighborhoods struct {
	r   float64
	off []int32
	ids []int32
}

// BuildNeighborhoods precomputes the within-r adjacency for the dense IDs
// 0..n-1, which must all be indexed in g (the sample-point convention:
// point index == ID). Every list contains its own ID, since a point is
// within any non-negative radius of itself. It panics if an ID in the
// range is missing from the index.
func (g *Grid) BuildNeighborhoods(n int, r float64) *Neighborhoods {
	nb := &Neighborhoods{r: r, off: make([]int32, n+1)}
	// One geometric pass: record every source's ball once (in visit
	// order) while counting row sizes; the fill below is then a pure
	// array transpose with no second round of ball queries.
	counts := make([]int32, n)
	stream := make([]int32, 0, n*8)
	rowEnd := make([]int32, n)
	for j := 0; j < n; j++ {
		p, ok := g.At(j)
		if !ok {
			panic("index: BuildNeighborhoods requires dense IDs 0..n-1")
		}
		g.VisitBall(p, r, func(i int, _ geom.Point) bool {
			stream = append(stream, int32(i))
			counts[i]++
			return true
		})
		rowEnd[j] = int32(len(stream))
	}
	total := int32(0)
	for i, c := range counts {
		nb.off[i] = total
		total += c
	}
	nb.off[n] = total
	nb.ids = make([]int32, total)
	// Transpose: replaying source IDs in ascending order and appending
	// each to the rows of the points it reaches produces every row
	// already sorted (the within-r relation is symmetric), with no
	// per-row sort. counts doubles as the per-row write cursor.
	copy(counts, nb.off[:n])
	start := int32(0)
	for j := 0; j < n; j++ {
		j32 := int32(j)
		for _, i := range stream[start:rowEnd[j]] {
			nb.ids[counts[i]] = j32
			counts[i]++
		}
		start = rowEnd[j]
	}
	return nb
}

// Radius returns the adjacency radius the structure was built with.
func (nb *Neighborhoods) Radius() float64 { return nb.r }

// Len returns the number of IDs covered.
func (nb *Neighborhoods) Len() int { return len(nb.off) - 1 }

// At returns the IDs within the radius of id i, ascending, including i
// itself. The returned slice aliases the shared layout: callers must not
// modify it.
func (nb *Neighborhoods) At(i int) []int32 {
	return nb.ids[nb.off[i]:nb.off[i+1]]
}

package index

import (
	"sort"
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func randomPointGrid(n int, side, cell float64, seed uint64) (*Grid, []geom.Point) {
	r := rng.New(seed)
	g := NewGrid(geom.Square(side), cell)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = r.PointInRect(geom.Square(side))
		g.Insert(i, pts[i])
	}
	return g, pts
}

func TestAppendBallMatchesBall(t *testing.T) {
	g, pts := randomPointGrid(300, 50, 4, 11)
	buf := make([]int, 0, 64)
	r := rng.New(12)
	for trial := 0; trial < 50; trial++ {
		c := r.PointInRect(geom.Square(50))
		rad := r.Float64() * 10
		want := g.Ball(c, rad)
		buf = g.AppendBall(buf[:0], c, rad)
		got := append([]int(nil), buf...)
		sort.Ints(want)
		sort.Ints(got)
		if len(want) != len(got) {
			t.Fatalf("trial %d: AppendBall %d ids, Ball %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: id mismatch at %d", trial, i)
			}
		}
	}
	_ = pts
}

func TestAppendBallNegativeRadiusAndPrefix(t *testing.T) {
	g, _ := randomPointGrid(20, 10, 2, 3)
	if got := g.AppendBall(nil, geom.Pt(5, 5), -1); len(got) != 0 {
		t.Errorf("negative radius should append nothing, got %v", got)
	}
	// Existing dst contents survive as a prefix.
	dst := []int{-7}
	dst = g.AppendBall(dst, geom.Pt(5, 5), 3)
	if dst[0] != -7 || len(dst) < 2 {
		t.Errorf("prefix not preserved: %v", dst)
	}
}

func TestNeighborhoodsMatchBall(t *testing.T) {
	const n = 250
	g, pts := randomPointGrid(n, 40, 4, 21)
	nb := g.BuildNeighborhoods(n, 4)
	if nb.Len() != n {
		t.Fatalf("Len = %d, want %d", nb.Len(), n)
	}
	if nb.Radius() != 4 {
		t.Fatalf("Radius = %g", nb.Radius())
	}
	for i := 0; i < n; i++ {
		want := g.Ball(pts[i], 4)
		sort.Ints(want)
		got := nb.At(i)
		if len(got) != len(want) {
			t.Fatalf("point %d: %d neighbors, want %d", i, len(got), len(want))
		}
		self := false
		for j := range got {
			if int(got[j]) != want[j] {
				t.Fatalf("point %d: neighbor %d = %d, want %d", i, j, got[j], want[j])
			}
			if j > 0 && got[j-1] >= got[j] {
				t.Fatalf("point %d: neighbors not strictly ascending", i)
			}
			if int(got[j]) == i {
				self = true
			}
		}
		if !self {
			t.Fatalf("point %d: own id missing from its neighborhood", i)
		}
	}
}

func TestBuildNeighborhoodsSparsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("sparse IDs should panic")
		}
	}()
	g := NewGrid(geom.Square(10), 1)
	g.Insert(0, geom.Pt(1, 1))
	g.Insert(2, geom.Pt(2, 2)) // id 1 missing
	g.BuildNeighborhoods(3, 2)
}

// BenchmarkIndexBall contrasts the allocating Ball query with the
// reusable-buffer AppendBall and the precomputed Neighborhoods lookup at
// DECOR's paper density (2000 points, rs = 4) — the before/after pair
// behind the BENCH_core.json baseline.
func BenchmarkIndexBall(b *testing.B) {
	const n = 2000
	g, pts := randomPointGrid(n, 100, 4, 7)
	b.Run("ball-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Ball(pts[i%n], 4)
		}
	})
	b.Run("append-reuse", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]int, 0, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = g.AppendBall(buf[:0], pts[i%n], 4)
		}
	})
	b.Run("neighborhoods", func(b *testing.B) {
		nb := g.BuildNeighborhoods(n, 4)
		b.ReportAllocs()
		b.ResetTimer()
		acc := 0
		for i := 0; i < b.N; i++ {
			for _, id := range nb.At(i % n) {
				acc += int(id)
			}
		}
		_ = acc
	})
}

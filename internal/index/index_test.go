package index

import (
	"sort"
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func TestInsertAtRemove(t *testing.T) {
	g := NewGrid(geom.Square(100), 4)
	g.Insert(1, geom.Pt(10, 10))
	g.Insert(2, geom.Pt(50, 50))
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if p, ok := g.At(1); !ok || !p.Eq(geom.Pt(10, 10)) {
		t.Errorf("At(1) = %v, %v", p, ok)
	}
	if !g.Contains(2) || g.Contains(3) {
		t.Error("Contains wrong")
	}
	if !g.Remove(1) {
		t.Error("Remove(1) should succeed")
	}
	if g.Remove(1) {
		t.Error("double Remove should fail")
	}
	if g.Len() != 1 {
		t.Errorf("Len after remove = %d", g.Len())
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert should panic")
		}
	}()
	g := NewGrid(geom.Square(10), 1)
	g.Insert(1, geom.Pt(1, 1))
	g.Insert(1, geom.Pt(2, 2))
}

func TestNewGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive cell should panic")
		}
	}()
	NewGrid(geom.Square(10), 0)
}

func TestOutOfBoundsInsertIsClamped(t *testing.T) {
	g := NewGrid(geom.Square(10), 1)
	g.Insert(1, geom.Pt(-5, 20)) // clamped into border bucket, still findable
	got := g.Ball(geom.Pt(-5, 20), 1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Ball at out-of-bounds point = %v", got)
	}
}

// Reference brute-force ball query for cross-validation.
func bruteBall(pos map[int]geom.Point, c geom.Point, r float64) []int {
	var out []int
	for id, p := range pos {
		if p.Dist2(c) <= r*r {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func TestBallMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	bounds := geom.Square(100)
	g := NewGrid(bounds, 4)
	pos := map[int]geom.Point{}
	for id := 0; id < 500; id++ {
		p := r.PointInRect(bounds)
		g.Insert(id, p)
		pos[id] = p
	}
	for trial := 0; trial < 200; trial++ {
		c := r.PointInRect(bounds)
		rad := r.Range(0, 20)
		got := g.Ball(c, rad)
		sort.Ints(got)
		want := bruteBall(pos, c, rad)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
		if g.CountBall(c, rad) != len(want) {
			t.Fatalf("trial %d: CountBall mismatch", trial)
		}
	}
}

func TestVisitBallEarlyStop(t *testing.T) {
	g := NewGrid(geom.Square(10), 1)
	for id := 0; id < 10; id++ {
		g.Insert(id, geom.Pt(5, 5))
	}
	calls := 0
	g.VisitBall(geom.Pt(5, 5), 1, func(int, geom.Point) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop visited %d, want 3", calls)
	}
}

func TestVisitBallNegativeRadius(t *testing.T) {
	g := NewGrid(geom.Square(10), 1)
	g.Insert(1, geom.Pt(5, 5))
	called := false
	g.VisitBall(geom.Pt(5, 5), -1, func(int, geom.Point) bool { called = true; return true })
	if called {
		t.Error("negative radius should visit nothing")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := rng.New(7)
	bounds := geom.Square(100)
	g := NewGrid(bounds, 5)
	pos := map[int]geom.Point{}
	for id := 0; id < 300; id++ {
		p := r.PointInRect(bounds)
		g.Insert(id, p)
		pos[id] = p
	}
	for trial := 0; trial < 200; trial++ {
		c := r.PointInRect(bounds)
		maxD := r.Range(1, 30)
		id, p, ok := g.Nearest(c, maxD)
		// Brute force.
		bestID, bestD, found := -1, maxD*maxD, false
		for bid, bp := range pos {
			d := bp.Dist2(c)
			if d < bestD || (d == bestD && found && bid < bestID) {
				bestID, bestD, found = bid, d, true
			}
		}
		if ok != found {
			t.Fatalf("trial %d: ok=%v found=%v", trial, ok, found)
		}
		if ok && id != bestID {
			t.Fatalf("trial %d: nearest %d (%v) vs brute %d", trial, id, p, bestID)
		}
	}
}

func TestNearestEmpty(t *testing.T) {
	g := NewGrid(geom.Square(10), 1)
	if _, _, ok := g.Nearest(geom.Pt(5, 5), 100); ok {
		t.Error("Nearest on empty index should fail")
	}
}

func TestIDs(t *testing.T) {
	g := NewGrid(geom.Square(10), 1)
	for id := 0; id < 5; id++ {
		g.Insert(id, geom.Pt(float64(id), float64(id)))
	}
	ids := g.IDs()
	sort.Ints(ids)
	if len(ids) != 5 {
		t.Fatalf("IDs len = %d", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Errorf("IDs[%d] = %d", i, id)
		}
	}
}

func BenchmarkBallQuery(b *testing.B) {
	r := rng.New(1)
	bounds := geom.Square(100)
	g := NewGrid(bounds, 4)
	for id := 0; id < 2000; id++ {
		g.Insert(id, r.PointInRect(bounds))
	}
	c := geom.Pt(50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountBall(c, 4)
	}
}

func TestRectMatchesBruteForce(t *testing.T) {
	r := rng.New(55)
	bounds := geom.Square(100)
	g := NewGrid(bounds, 4)
	pos := map[int]geom.Point{}
	for id := 0; id < 400; id++ {
		p := r.PointInRect(bounds)
		g.Insert(id, p)
		pos[id] = p
	}
	for trial := 0; trial < 100; trial++ {
		q := geom.NewRect(r.PointInRect(bounds), r.PointInRect(bounds))
		got := g.Rect(q)
		sort.Ints(got)
		var want []int
		for id, p := range pos {
			if q.Contains(p) {
				want = append(want, id)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch", trial)
			}
		}
	}
	// Empty rect and early stop.
	if got := g.Rect(geom.Rect{}); got != nil {
		t.Errorf("empty rect = %v", got)
	}
	calls := 0
	g.VisitRect(bounds, func(int, geom.Point) bool { calls++; return calls < 5 })
	if calls != 5 {
		t.Errorf("early stop visited %d", calls)
	}
}

// Package index provides a uniform bucket-grid spatial index over 2-D
// points. DECOR's greedy placement repeatedly asks "which sample points /
// sensors lie within rs of here?"; the bucket grid answers in O(points in
// the ball) instead of O(N), which keeps one placement's benefit update
// local (DESIGN.md §5).
package index

import (
	"math"

	"decor/internal/geom"
)

// Grid is a bucket-grid index mapping int IDs to points. IDs are
// client-chosen (sample-point index or sensor ID); a given ID may be
// inserted only once unless removed first.
type Grid struct {
	bounds     geom.Rect
	cell       float64
	cols, rows int
	buckets    [][]entry
	// dense holds positions for the contiguous ID prefix 0..len(dense)-1
	// loaded by InsertDense (the immutable sample-point set); pos holds
	// everything inserted afterwards (sensors, arbitrary IDs).
	dense []geom.Point
	pos   map[int]geom.Point
}

type entry struct {
	id int
	p  geom.Point
}

// NewGrid creates an index over bounds with the given bucket edge length.
// Points outside bounds are clamped into the border buckets, so slightly
// out-of-field insertions are legal. cell must be positive.
func NewGrid(bounds geom.Rect, cell float64) *Grid {
	if cell <= 0 {
		panic("index: cell size must be positive")
	}
	cols := int(math.Ceil(bounds.W()/cell)) + 1
	rows := int(math.Ceil(bounds.H()/cell)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		bounds:  bounds,
		cell:    cell,
		cols:    cols,
		rows:    rows,
		buckets: make([][]entry, cols*rows),
		pos:     make(map[int]geom.Point),
	}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.dense) + len(g.pos) }

// Contains reports whether id is currently indexed.
func (g *Grid) Contains(id int) bool {
	if id >= 0 && id < len(g.dense) {
		return true
	}
	_, ok := g.pos[id]
	return ok
}

// At returns the position of id and whether it is indexed.
func (g *Grid) At(id int) (geom.Point, bool) {
	if id >= 0 && id < len(g.dense) {
		return g.dense[id], true
	}
	p, ok := g.pos[id]
	return p, ok
}

func (g *Grid) bucketIdx(p geom.Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	cx = clampInt(cx, 0, g.cols-1)
	cy = clampInt(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

// Insert adds id at p. It panics if id is already present (a logic error
// in the caller: DECOR never re-places an existing sensor).
func (g *Grid) Insert(id int, p geom.Point) {
	if g.Contains(id) {
		panic("index: duplicate id")
	}
	g.pos[id] = p
	b := g.bucketIdx(p)
	g.buckets[b] = append(g.buckets[b], entry{id, p})
}

// InsertDense bulk-loads points with IDs 0..len(pts)-1 into an empty
// grid, presizing every bucket into one backing array — the
// construction fast path for the fixed sample-point set, whose
// one-at-a-time insertion otherwise dominates map setup. The dense
// prefix is immutable: Remove on those IDs panics.
func (g *Grid) InsertDense(pts []geom.Point) {
	if g.Len() != 0 {
		panic("index: InsertDense on non-empty grid")
	}
	g.dense = append([]geom.Point(nil), pts...)
	counts := make([]int, len(g.buckets))
	for _, p := range pts {
		counts[g.bucketIdx(p)]++
	}
	backing := make([]entry, len(pts))
	off := 0
	for b, c := range counts {
		g.buckets[b] = backing[off : off : off+c]
		off += c
	}
	for i, p := range pts {
		b := g.bucketIdx(p)
		g.buckets[b] = append(g.buckets[b], entry{i, p})
	}
}

// Clone returns an independent copy of the index. The dense prefix is
// shared (it is immutable by construction); buckets and the sparse
// position map are copied, so clone and original mutate independently.
func (g *Grid) Clone() *Grid {
	c := &Grid{
		bounds:  g.bounds,
		cell:    g.cell,
		cols:    g.cols,
		rows:    g.rows,
		buckets: make([][]entry, len(g.buckets)),
		dense:   g.dense,
		pos:     make(map[int]geom.Point, len(g.pos)),
	}
	for i, b := range g.buckets {
		if len(b) > 0 {
			c.buckets[i] = append([]entry(nil), b...)
		}
	}
	for id, p := range g.pos {
		c.pos[id] = p
	}
	return c
}

// Remove deletes id from the index, reporting whether it was present.
func (g *Grid) Remove(id int) bool {
	if id >= 0 && id < len(g.dense) {
		panic("index: cannot remove an InsertDense id")
	}
	p, ok := g.pos[id]
	if !ok {
		return false
	}
	delete(g.pos, id)
	b := g.bucketIdx(p)
	bucket := g.buckets[b]
	for i := range bucket {
		if bucket[i].id == id {
			bucket[i] = bucket[len(bucket)-1]
			g.buckets[b] = bucket[:len(bucket)-1]
			return true
		}
	}
	panic("index: id in pos map but not in bucket")
}

// VisitBall calls fn for every indexed point within distance r of c
// (closed ball). Iteration order is unspecified. If fn returns false the
// visit stops early.
func (g *Grid) VisitBall(c geom.Point, r float64, fn func(id int, p geom.Point) bool) {
	if r < 0 {
		return
	}
	r2 := r * r
	x0 := clampInt(int((c.X-r-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	x1 := clampInt(int((c.X+r-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	y0 := clampInt(int((c.Y-r-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	y1 := clampInt(int((c.Y+r-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, e := range g.buckets[cy*g.cols+cx] {
				if e.p.Dist2(c) <= r2 {
					if !fn(e.id, e.p) {
						return
					}
				}
			}
		}
	}
}

// Ball returns the IDs of all indexed points within distance r of c.
func (g *Grid) Ball(c geom.Point, r float64) []int {
	return g.AppendBall(nil, c, r)
}

// AppendBall appends the IDs of all indexed points within distance r of c
// to dst and returns the extended slice. Passing a reused buffer
// (dst[:0]) makes repeated ball queries allocation-free once the buffer
// has grown to the working-set size; order is unspecified, as in
// VisitBall.
func (g *Grid) AppendBall(dst []int, c geom.Point, r float64) []int {
	if r < 0 {
		return dst
	}
	r2 := r * r
	x0 := clampInt(int((c.X-r-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	x1 := clampInt(int((c.X+r-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	y0 := clampInt(int((c.Y-r-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	y1 := clampInt(int((c.Y+r-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, e := range g.buckets[cy*g.cols+cx] {
				if e.p.Dist2(c) <= r2 {
					dst = append(dst, e.id)
				}
			}
		}
	}
	return dst
}

// CountBall returns the number of indexed points within distance r of c.
func (g *Grid) CountBall(c geom.Point, r float64) int {
	n := 0
	g.VisitBall(c, r, func(int, geom.Point) bool { n++; return true })
	return n
}

// VisitRect calls fn for every indexed point inside the closed
// rectangle r. Iteration order is unspecified; returning false stops
// the visit early.
func (g *Grid) VisitRect(r geom.Rect, fn func(id int, p geom.Point) bool) {
	if r.Empty() {
		return
	}
	x0 := clampInt(int((r.Min.X-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	x1 := clampInt(int((r.Max.X-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	y0 := clampInt(int((r.Min.Y-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	y1 := clampInt(int((r.Max.Y-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, e := range g.buckets[cy*g.cols+cx] {
				if r.Contains(e.p) {
					if !fn(e.id, e.p) {
						return
					}
				}
			}
		}
	}
}

// Rect returns the IDs of all indexed points inside the closed
// rectangle.
func (g *Grid) Rect(r geom.Rect) []int {
	var out []int
	g.VisitRect(r, func(id int, _ geom.Point) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Nearest returns the indexed point nearest to c within maxDist, or
// ok=false if none. Ties are broken by lowest id for determinism.
func (g *Grid) Nearest(c geom.Point, maxDist float64) (id int, p geom.Point, ok bool) {
	best := maxDist * maxDist
	found := false
	// Expand ring by ring so we can stop early once a hit is closer than
	// the next ring's minimum possible distance.
	ccx := clampInt(int((c.X-g.bounds.Min.X)/g.cell), 0, g.cols-1)
	ccy := clampInt(int((c.Y-g.bounds.Min.Y)/g.cell), 0, g.rows-1)
	maxRing := int(math.Ceil(maxDist/g.cell)) + 1
	for ring := 0; ring <= maxRing; ring++ {
		if found {
			// Minimum distance to cells in this ring.
			minD := float64(ring-1) * g.cell
			if minD > 0 && minD*minD > best {
				break
			}
		}
		g.visitRing(ccx, ccy, ring, func(e entry) {
			d := e.p.Dist2(c)
			if d < best || (d == best && found && e.id < id) {
				best, id, p, found = d, e.id, e.p, true
			}
		})
	}
	return id, p, found
}

func (g *Grid) visitRing(ccx, ccy, ring int, fn func(entry)) {
	x0, x1 := ccx-ring, ccx+ring
	y0, y1 := ccy-ring, ccy+ring
	for cy := y0; cy <= y1; cy++ {
		if cy < 0 || cy >= g.rows {
			continue
		}
		for cx := x0; cx <= x1; cx++ {
			if cx < 0 || cx >= g.cols {
				continue
			}
			// Only the boundary of the square ring.
			if ring > 0 && cx != x0 && cx != x1 && cy != y0 && cy != y1 {
				continue
			}
			for _, e := range g.buckets[cy*g.cols+cx] {
				fn(e)
			}
		}
	}
}

// IDs returns all indexed IDs in unspecified order.
func (g *Grid) IDs() []int {
	out := make([]int, 0, g.Len())
	for id := range g.dense {
		out = append(out, id)
	}
	for id := range g.pos {
		out = append(out, id)
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package sim

import (
	"fmt"
	"reflect"
	"sort"

	"decor/internal/rng"
	"decor/internal/snap"
)

// Engine state snapshots. EncodeState serializes everything that
// determines the engine's future behaviour — virtual clock, sequence
// counter, statistics, dead set, loss and fault RNG streams mid-draw,
// and the event queue in raw heap-array order (the heap is rebuilt as
// the same array, so every future pop is identical) — and RestoreState
// rebuilds it on a fresh engine. Actors are NOT part of the engine
// snapshot: they are protocol state, serialized by their own packages
// and re-attached with RegisterRestored, which skips OnStart because the
// actors' timers are already in the restored queue.
//
// Determinism is by construction: the snapshot captures the exact
// (time, seq) order and every RNG mid-stream, so a restored run replays
// the remaining schedule byte-identically — the chaos checkpoint parity
// suite proves it against SHA-256 trace hashes.

// PayloadCodec serializes one concrete message-payload type for queue
// snapshots. Encode writes the payload body (the type code is written by
// the engine); Decode reads the same body and returns the payload to
// deliver. Decode may return a different concrete type than was encoded
// as long as receivers treat the two identically (internal/protocol
// decodes pooled heartbeat boxes to plain values, for example).
type PayloadCodec struct {
	Encode func(w *snap.Writer, payload any)
	Decode func(r *snap.Reader) any
}

// nilPayloadCode marks a nil payload in the queue encoding.
const nilPayloadCode byte = 0

var (
	payloadCodecs = map[byte]PayloadCodec{}
	payloadCodes  = map[reflect.Type]byte{}
)

// RegisterPayloadCodec wires a payload type into queue snapshots under a
// stable type code. Call from package init; it panics on a duplicate
// code or type and on the reserved code 0 (wiring errors, not data
// errors).
func RegisterPayloadCodec(code byte, sample any, c PayloadCodec) {
	if code == nilPayloadCode {
		panic("sim: payload code 0 is reserved for nil")
	}
	if _, ok := payloadCodecs[code]; ok {
		panic(fmt.Sprintf("sim: duplicate payload code %d", code))
	}
	t := reflect.TypeOf(sample)
	if _, ok := payloadCodes[t]; ok {
		panic(fmt.Sprintf("sim: duplicate payload codec for %v", t))
	}
	payloadCodecs[code] = c
	payloadCodes[t] = code
}

// NextEventTime returns the virtual time of the earliest queued event,
// if any. Checkpoint drivers use it to slice Run into exact-replay
// chunks without triggering Run's empty-queue clock jump.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue.evs[0].at, true
}

// RegisterRestored attaches an actor without running OnStart: its timers
// are already in the restored queue and its state comes from its own
// package's snapshot. It panics on duplicate registration and, unlike
// Register, leaves the dead set alone — a restored actor may well be
// restored dead, awaiting an evRestart already in the queue.
func (e *Engine) RegisterRestored(id int, a Actor) {
	if _, ok := e.actors[id]; ok {
		panic(fmt.Sprintf("sim: duplicate actor %d", id))
	}
	e.actors[id] = a
}

// EncodeState appends the engine's full dynamic state to w. It fails
// only when a queued payload has no registered codec.
func (e *Engine) EncodeState(w *snap.Writer) error {
	w.F64(float64(e.now))
	w.F64(float64(e.latency))
	w.Int(e.seq)
	w.Int(e.nMsg)
	w.Int(e.events)

	// Stats, with the per-sender breakdown in ascending actor order.
	s := &e.stats
	for _, v := range []int{s.Sent, s.Delivered, s.Dropped, s.Lost, s.Timers,
		s.Delayed, s.Duplicated, s.PartitionDropped, s.Crashes, s.Restarts} {
		w.Int(v)
	}
	senders := make([]int, 0, len(s.SentBy))
	for id := range s.SentBy {
		senders = append(senders, id)
	}
	sort.Ints(senders)
	w.Int(len(senders))
	for _, id := range senders {
		w.Int(id)
		w.Int(s.SentBy[id])
	}

	// Dead set, ascending.
	dead := make([]int, 0, len(e.dead))
	for id := range e.dead {
		dead = append(dead, id)
	}
	sort.Ints(dead)
	w.Int(len(dead))
	for _, id := range dead {
		w.Int(id)
	}

	// Uniform loss channel.
	w.F64(e.lossRate)
	w.Bool(e.lossRNG != nil)
	if e.lossRNG != nil {
		encodeRNG(w, e.lossRNG)
	}

	// Fault plan plus its runtime (RNG streams mid-draw, burst channel
	// state). Partitions are rebuilt from the plan on restore — their
	// sets are static for the engine's lifetime.
	w.Bool(e.faults != nil)
	if f := e.faults; f != nil {
		encodePlan(w, f.plan)
		encodeRNG(w, f.delayRNG)
		encodeRNG(w, f.dupRNG)
		encodeRNG(w, f.geRNG)
		w.Bool(f.geBad)
	}

	// The queue in raw heap-array order: restoring the same array yields
	// the same heap, hence the same pop sequence.
	w.Int(e.queue.Len())
	for i := range e.queue.evs {
		ev := &e.queue.evs[i]
		w.F64(float64(ev.at))
		w.Int(ev.kind)
		w.Int(ev.seq)
		w.Int(ev.msg.From)
		w.Int(ev.msg.To)
		w.Str(ev.msg.Kind)
		if ev.msg.Payload == nil {
			w.Byte(nilPayloadCode)
			continue
		}
		code, ok := payloadCodes[reflect.TypeOf(ev.msg.Payload)]
		if !ok {
			return fmt.Errorf("sim: no payload codec for %T", ev.msg.Payload)
		}
		w.Byte(code)
		payloadCodecs[code].Encode(w, ev.msg.Payload)
	}
	return nil
}

// RestoreState rebuilds the engine's dynamic state from r. Call it on a
// fresh engine before re-attaching actors with RegisterRestored; any
// events scheduled earlier (e.g. by SetFaults) are discarded in favour
// of the snapshot's queue.
func (e *Engine) RestoreState(r *snap.Reader) error {
	e.now = Time(r.F64())
	e.latency = Time(r.F64())
	e.seq = r.Int()
	e.nMsg = r.Int()
	e.events = r.Int()

	s := &e.stats
	for _, p := range []*int{&s.Sent, &s.Delivered, &s.Dropped, &s.Lost, &s.Timers,
		&s.Delayed, &s.Duplicated, &s.PartitionDropped, &s.Crashes, &s.Restarts} {
		*p = r.Int()
	}
	s.SentBy = map[int]int{}
	for n := r.CollectionLen(); n > 0; n-- {
		id := r.Int()
		s.SentBy[id] = r.Int()
	}

	e.dead = map[int]bool{}
	for n := r.CollectionLen(); n > 0; n-- {
		e.dead[r.Int()] = true
	}

	e.lossRate = r.F64()
	e.lossRNG = nil
	if r.Bool() {
		e.lossRNG = decodeRNG(r)
	}

	e.faults = nil
	if r.Bool() {
		plan := decodePlan(r)
		f := &faultState{
			plan:     plan,
			delayRNG: decodeRNG(r),
			dupRNG:   decodeRNG(r),
			geRNG:    decodeRNG(r),
		}
		f.geBad = r.Bool()
		for _, pt := range plan.Partitions {
			ps := partitionSets{from: pt.From, until: pt.Until, a: map[int]bool{}, b: map[int]bool{}}
			for _, id := range pt.A {
				ps.a[id] = true
			}
			for _, id := range pt.B {
				ps.b[id] = true
			}
			f.parts = append(f.parts, ps)
		}
		e.faults = f
	}

	e.queue.evs = e.queue.evs[:0]
	nMsgSeen := 0
	for n := r.CollectionLen(); n > 0; n-- {
		var ev event
		ev.at = Time(r.F64())
		ev.kind = r.Int()
		ev.seq = r.Int()
		ev.msg.From = r.Int()
		ev.msg.To = r.Int()
		ev.msg.Kind = r.Str()
		if r.Err() != nil {
			break
		}
		if ev.kind < evMessage || ev.kind > evRestart {
			return fmt.Errorf("%w: unknown event kind %d", snap.ErrMalformed, ev.kind)
		}
		if code := r.Byte(); code != nilPayloadCode {
			codec, ok := payloadCodecs[code]
			if !ok {
				return fmt.Errorf("%w: unknown payload code %d", snap.ErrMalformed, code)
			}
			ev.msg.Payload = codec.Decode(r)
		}
		if ev.kind == evMessage {
			nMsgSeen++
		}
		e.queue.evs = append(e.queue.evs, ev)
	}
	if err := r.Err(); err != nil {
		return err
	}
	if nMsgSeen != e.nMsg {
		return fmt.Errorf("%w: queued message count %d does not match recorded %d",
			snap.ErrMalformed, nMsgSeen, e.nMsg)
	}
	// The array was written in heap order, so the heap property already
	// holds; reheap is a cheap O(n) belt-and-braces pass that keeps the
	// engine correct even for hand-built snapshots.
	e.queue.reheap()

	// Start metric deltas from here: restored totals belong to the run
	// that took the snapshot, not to this process's registry.
	e.flushed = obsFlushed{
		events: e.events, sent: s.Sent, delivered: s.Delivered, dropped: s.Dropped,
		lost: s.Lost, timers: s.Timers, delayed: s.Delayed, duplicated: s.Duplicated,
		partitionDropped: s.PartitionDropped, crashes: s.Crashes, restarts: s.Restarts,
	}
	e.ob.queueDepth.Set(float64(e.queue.Len()))
	return nil
}

func encodeRNG(w *snap.Writer, r *rng.RNG) {
	hi, lo := r.State()
	w.U64(hi)
	w.U64(lo)
}

func decodeRNG(r *snap.Reader) *rng.RNG {
	hi := r.U64()
	return rng.FromState(hi, r.U64())
}

func encodePlan(w *snap.Writer, p FaultPlan) {
	w.U64(p.Seed)
	w.F64(p.DelayProb)
	w.F64(float64(p.DelayMax))
	w.F64(p.DupProb)
	w.F64(float64(p.Until))
	w.Bool(p.Burst != nil)
	if g := p.Burst; g != nil {
		w.F64(g.PGoodToBad)
		w.F64(g.PBadToGood)
		w.F64(g.LossGood)
		w.F64(g.LossBad)
	}
	w.Int(len(p.Crashes))
	for _, c := range p.Crashes {
		w.Int(c.Actor)
		w.F64(float64(c.At))
		w.F64(float64(c.RestartAt))
	}
	w.Int(len(p.Partitions))
	for _, pt := range p.Partitions {
		w.F64(float64(pt.From))
		w.F64(float64(pt.Until))
		w.Int(len(pt.A))
		for _, id := range pt.A {
			w.Int(id)
		}
		w.Int(len(pt.B))
		for _, id := range pt.B {
			w.Int(id)
		}
	}
}

func decodePlan(r *snap.Reader) FaultPlan {
	var p FaultPlan
	p.Seed = r.U64()
	p.DelayProb = r.F64()
	p.DelayMax = Time(r.F64())
	p.DupProb = r.F64()
	p.Until = Time(r.F64())
	if r.Bool() {
		g := &GilbertElliott{}
		g.PGoodToBad = r.F64()
		g.PBadToGood = r.F64()
		g.LossGood = r.F64()
		g.LossBad = r.F64()
		p.Burst = g
	}
	for n := r.CollectionLen(); n > 0; n-- {
		var c Crash
		c.Actor = r.Int()
		c.At = Time(r.F64())
		c.RestartAt = Time(r.F64())
		p.Crashes = append(p.Crashes, c)
	}
	for n := r.CollectionLen(); n > 0; n-- {
		var pt Partition
		pt.From = Time(r.F64())
		pt.Until = Time(r.F64())
		for a := r.CollectionLen(); a > 0; a-- {
			pt.A = append(pt.A, r.Int())
		}
		for b := r.CollectionLen(); b > 0; b-- {
			pt.B = append(pt.B, r.Int())
		}
		p.Partitions = append(p.Partitions, pt)
	}
	return p
}

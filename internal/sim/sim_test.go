package sim

import (
	"testing"
)

// echoActor records everything it sees and can schedule chains.
type echoActor struct {
	started  bool
	messages []Message
	timers   []string
	onStart  func(*Context)
	onMsg    func(*Context, Message)
	onTimer  func(*Context, string)
}

func (a *echoActor) OnStart(ctx *Context) {
	a.started = true
	if a.onStart != nil {
		a.onStart(ctx)
	}
}
func (a *echoActor) OnMessage(ctx *Context, m Message) {
	a.messages = append(a.messages, m)
	if a.onMsg != nil {
		a.onMsg(ctx, m)
	}
}
func (a *echoActor) OnTimer(ctx *Context, tag string) {
	a.timers = append(a.timers, tag)
	if a.onTimer != nil {
		a.onTimer(ctx, tag)
	}
}

func TestRegisterStartsActor(t *testing.T) {
	e := NewEngine(0.1)
	a := &echoActor{}
	e.Register(1, a)
	if !a.started {
		t.Error("OnStart not invoked")
	}
	if !e.Alive(1) || e.Alive(2) {
		t.Error("Alive wrong")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	e := NewEngine(0)
	e.Register(1, &echoActor{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate register should panic")
		}
	}()
	e.Register(1, &echoActor{})
}

func TestMessageDeliveryWithLatency(t *testing.T) {
	e := NewEngine(0.5)
	recv := &echoActor{}
	var sentAt Time
	sender := &echoActor{onStart: func(ctx *Context) {
		sentAt = ctx.Now()
		ctx.Send(2, "ping", 42)
	}}
	e.Register(2, recv)
	e.Register(1, sender)
	e.Run(Inf)
	if len(recv.messages) != 1 {
		t.Fatalf("received %d messages", len(recv.messages))
	}
	m := recv.messages[0]
	if m.From != 1 || m.Kind != "ping" || m.Payload.(int) != 42 {
		t.Errorf("message = %+v", m)
	}
	if e.Now()-sentAt != 0.5 {
		t.Errorf("delivery latency = %v", e.Now()-sentAt)
	}
	st := e.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.SentBy[1] != 1 {
		t.Errorf("SentBy = %v", st.SentBy)
	}
}

func TestSendToDeadIsDropped(t *testing.T) {
	e := NewEngine(1)
	victim := &echoActor{}
	e.Register(2, victim)
	sender := &echoActor{onStart: func(ctx *Context) { ctx.Send(2, "x", nil) }}
	e.Register(1, sender)
	e.Kill(2)
	e.Run(Inf)
	if len(victim.messages) != 0 {
		t.Error("dead actor received a message")
	}
	if st := e.Stats(); st.Dropped != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Sends to unknown actors also drop.
	e2 := NewEngine(0)
	e2.Register(1, &echoActor{onStart: func(ctx *Context) { ctx.Send(99, "x", nil) }})
	e2.Run(Inf)
	if st := e2.Stats(); st.Dropped != 1 {
		t.Errorf("unknown target stats = %+v", st)
	}
}

func TestTimers(t *testing.T) {
	e := NewEngine(0)
	a := &echoActor{onStart: func(ctx *Context) {
		ctx.SetTimer(2, "late")
		ctx.SetTimer(1, "early")
	}}
	e.Register(1, a)
	e.Run(Inf)
	if len(a.timers) != 2 || a.timers[0] != "early" || a.timers[1] != "late" {
		t.Errorf("timers = %v", a.timers)
	}
	if e.Now() != 2 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestNegativeTimerPanics(t *testing.T) {
	e := NewEngine(0)
	defer func() {
		if recover() == nil {
			t.Error("negative timer should panic")
		}
	}()
	e.Register(1, &echoActor{onStart: func(ctx *Context) { ctx.SetTimer(-1, "bad") }})
}

func TestRunUntilBounds(t *testing.T) {
	e := NewEngine(0)
	count := 0
	a := &echoActor{}
	a.onTimer = func(ctx *Context, tag string) {
		count++
		ctx.SetTimer(1, "tick") // infinite chain
	}
	a.onStart = func(ctx *Context) { ctx.SetTimer(1, "tick") }
	e.Register(1, a)
	e.Run(10)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.Run(20)
	if count != 20 {
		t.Errorf("ticks = %d, want 20", count)
	}
}

func TestDeterministicOrderingOfSimultaneousEvents(t *testing.T) {
	run := func() []Message {
		e := NewEngine(1)
		recv := &echoActor{}
		e.Register(9, recv)
		e.Register(1, &echoActor{onStart: func(ctx *Context) {
			ctx.Send(9, "a", nil)
			ctx.Send(9, "b", nil)
			ctx.Send(9, "c", nil)
		}})
		e.Run(Inf)
		return recv.messages
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatal("missing messages")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatal("non-deterministic ordering")
		}
	}
	// FIFO among same-time sends.
	if a[0].Kind != "a" || a[1].Kind != "b" || a[2].Kind != "c" {
		t.Errorf("order = %v %v %v", a[0].Kind, a[1].Kind, a[2].Kind)
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative latency should panic")
		}
	}()
	NewEngine(-1)
}

func TestTraceHook(t *testing.T) {
	e := NewEngine(0)
	var lines []string
	e.SetTrace(func(_ Time, s string) { lines = append(lines, s) })
	e.Register(2, &echoActor{})
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(2, "hi", nil)
		ctx.SetTimer(1, "t")
	}})
	e.Run(Inf)
	if len(lines) != 2 {
		t.Errorf("trace lines = %v", lines)
	}
}

func TestRunAdvancesToUntilWhenIdle(t *testing.T) {
	e := NewEngine(0)
	e.Run(5)
	if e.Now() != 5 {
		t.Errorf("idle Run should advance clock to until, got %v", e.Now())
	}
}

// TestStatsCopyIsolation is the regression test for the Stats()
// shallow-copy aliasing bug: the returned Stats must not share its
// SentBy map with the engine, in either direction.
func TestStatsCopyIsolation(t *testing.T) {
	e := NewEngine(0)
	e.Register(2, &echoActor{})
	e.Register(1, &echoActor{onStart: func(ctx *Context) { ctx.Send(2, "a", nil) }})
	st := e.Stats()
	if st.SentBy[1] != 1 {
		t.Fatalf("SentBy = %v", st.SentBy)
	}

	// Caller mutation must not leak into the engine.
	st.SentBy[1] = 99
	st.SentBy[7] = 5
	if got := e.Stats().SentBy; got[1] != 1 || got[7] != 0 {
		t.Errorf("caller mutation leaked into engine: %v", got)
	}

	// Later engine activity must not appear in a held copy.
	held := e.Stats()
	e.Register(3, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(2, "b", nil)
		ctx.Send(2, "c", nil)
	}})
	e.Run(Inf)
	if held.SentBy[3] != 0 || held.Sent != 1 {
		t.Errorf("held copy sees live updates: %+v", held)
	}
}

// Package invariant checks protocol-level safety and liveness conditions
// over a running (or finished) simulation: eventual k-coverage of the
// point set, at-most-one live leader per grid cell after quiescence,
// placement budgets, and message-count accounting against the engine's
// Stats(). A Checker runs its checks after a run, or periodically during
// one via a watchdog actor, and reports every violation with the virtual
// time it was observed and the offending actor — the evidence a failing
// chaos seed needs to be debuggable.
package invariant

import (
	"fmt"
	"sort"

	"decor/internal/coverage"
	"decor/internal/sim"
)

// Canonical invariant names.
const (
	KCoverageName  = "k-coverage"
	LeaderName     = "leader-unique"
	BudgetName     = "budget"
	AccountingName = "accounting"
)

// Violation is one observed invariant breach.
type Violation struct {
	Invariant string   `json:"invariant"`
	Time      sim.Time `json:"time"`    // virtual time of the observation
	Actor     int      `json:"actor"`   // offending actor id (-1 if none)
	Subject   int      `json:"subject"` // what the breach is about: point or cell index (-1 if none)
	Detail    string   `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated at t=%.3f (actor %d): %s", v.Invariant, float64(v.Time), v.Actor, v.Detail)
}

// Check evaluates one invariant at a virtual time, returning any
// violations it observes.
type Check func(now sim.Time) []Violation

// Checker aggregates named checks and the violations they report.
// Violations are deduplicated by (invariant, actor, subject), keeping the
// FIRST observation — the earliest virtual time the condition was seen
// broken.
type Checker struct {
	checks []namedCheck
	seen   map[string]bool
	vs     []Violation
}

type namedCheck struct {
	name string
	fn   Check
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{seen: map[string]bool{}}
}

// Add registers a check under a name (used in Checked()).
func (c *Checker) Add(name string, fn Check) *Checker {
	c.checks = append(c.checks, namedCheck{name, fn})
	return c
}

// Checked lists the registered check names in registration order.
func (c *Checker) Checked() []string {
	out := make([]string, len(c.checks))
	for i, nc := range c.checks {
		out[i] = nc.name
	}
	return out
}

// RunAt evaluates every registered check at the given virtual time.
func (c *Checker) RunAt(now sim.Time) {
	for _, nc := range c.checks {
		for _, v := range nc.fn(now) {
			key := fmt.Sprintf("%s/%d/%d", v.Invariant, v.Actor, v.Subject)
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
			c.vs = append(c.vs, v)
		}
	}
}

// Violations returns the recorded violations in observation order.
func (c *Checker) Violations() []Violation { return append([]Violation(nil), c.vs...) }

// OK reports whether no violation has been recorded.
func (c *Checker) OK() bool { return len(c.vs) == 0 }

// First returns the earliest-recorded violation of the named invariant,
// or nil.
func (c *Checker) First(invariant string) *Violation {
	for i := range c.vs {
		if c.vs[i].Invariant == invariant {
			return &c.vs[i]
		}
	}
	return nil
}

// watchdog is the actor that re-runs the checker on a period. It uses a
// dedicated high actor id so it never collides with protocol actors.
type watchdog struct {
	checker *Checker
	every   sim.Time
}

// WatchdogActor is the engine id the periodic checker registers under.
const WatchdogActor = (1 << 23) - 1

func (w *watchdog) OnStart(ctx *sim.Context)            { ctx.SetTimer(w.every, "check") }
func (w *watchdog) OnMessage(*sim.Context, sim.Message) {}
func (w *watchdog) OnTimer(ctx *sim.Context, tag string) {
	w.checker.RunAt(ctx.Now())
	ctx.SetTimer(w.every, "check")
}

// Watch registers a watchdog actor that re-runs the checker every
// `every` virtual seconds for as long as the engine keeps processing
// events. Note the watchdog's own timer keeps the queue non-empty, so
// drive the engine with Run(horizon), not Run(sim.Inf).
func (c *Checker) Watch(eng *sim.Engine, every sim.Time) {
	if every <= 0 {
		panic("invariant: non-positive watch period")
	}
	eng.Register(WatchdogActor, &watchdog{checker: c, every: every})
}

// KCoverage returns a check asserting every sample point is covered by at
// least m.K() sensors. actorFor maps a deficient point index to the actor
// responsible for it (the cell leader/monitor that should have healed
// it); nil reports actor -1. Coverage is only required eventually — gate
// the check with After for runs that legitimately start deficient.
func KCoverage(m *coverage.Map, actorFor func(point int) int) Check {
	return func(now sim.Time) []Violation {
		var vs []Violation
		for i := 0; i < m.NumPoints(); i++ {
			if d := m.Deficit(i); d > 0 {
				actor := -1
				if actorFor != nil {
					actor = actorFor(i)
				}
				vs = append(vs, Violation{
					Invariant: KCoverageName, Time: now, Actor: actor, Subject: i,
					Detail: fmt.Sprintf("point %d at %v covered %d/%d", i, m.Point(i), m.Count(i), m.K()),
				})
			}
		}
		return vs
	}
}

// After gates a check: it reports nothing before the deadline. This turns
// a safety check into an "eventually, by deadline" liveness check.
func After(deadline sim.Time, fn Check) Check {
	return func(now sim.Time) []Violation {
		if now < deadline {
			return nil
		}
		return fn(now)
	}
}

// Budget returns a check asserting the map never holds more than max
// sensors. For any deployment over N sample points with requirement k,
// k·N is a hard theoretical ceiling (every useful placement reduces some
// point's deficit); exceeding the configured budget means the protocol
// is placing without benefit.
func Budget(m *coverage.Map, max int) Check {
	return func(now sim.Time) []Violation {
		if n := m.NumSensors(); n > max {
			return []Violation{{
				Invariant: BudgetName, Time: now, Actor: -1, Subject: -1,
				Detail: fmt.Sprintf("%d sensors deployed, budget %d", n, max),
			}}
		}
		return nil
	}
}

// Accounting returns a check asserting the engine's message books close:
// every send (plus every duplicate) is delivered, dropped, lost, severed
// by a partition, or still in flight. This holds at every instant, not
// just quiescence.
func Accounting(eng *sim.Engine) Check {
	return func(now sim.Time) []Violation {
		st := eng.Totals() // no SentBy copy: this runs on every watchdog tick
		resolved := st.Delivered + st.Dropped + st.Lost + st.PartitionDropped
		if st.Sent+st.Duplicated != resolved+eng.PendingMessages() {
			return []Violation{{
				Invariant: AccountingName, Time: now, Actor: -1, Subject: -1,
				Detail: fmt.Sprintf("sent %d + dup %d != delivered %d + dropped %d + lost %d + cut %d + pending %d",
					st.Sent, st.Duplicated, st.Delivered, st.Dropped, st.Lost,
					st.PartitionDropped, eng.PendingMessages()),
			}}
		}
		return nil
	}
}

// LeaderView is the slice of a protocol node the leader-uniqueness check
// needs (implemented by protocol.Node).
type LeaderView interface {
	ID() int
	Cell() int
	Leader(now sim.Time) int
}

// LeaderAgreement returns a check asserting at most one live leader per
// grid cell: after quiescence every alive node of a cell must name the
// same leader, and that leader must itself be alive. aliveActor maps a
// node's sensor ID to its engine actor id. Run it only after the fault
// horizon plus a detection timeout — during partitions the views
// legitimately diverge (gate with After).
func LeaderAgreement(eng *sim.Engine, nodes []LeaderView, aliveActor func(sensorID int) int) Check {
	return func(now sim.Time) []Violation {
		leaders := map[int]int{}  // cell -> agreed leader
		claimant := map[int]int{} // cell -> node that set the claim
		var vs []Violation
		byCell := map[int][]LeaderView{}
		for _, n := range nodes {
			if eng.Alive(aliveActor(n.ID())) {
				byCell[n.Cell()] = append(byCell[n.Cell()], n)
			}
		}
		cells := make([]int, 0, len(byCell))
		for c := range byCell {
			cells = append(cells, c)
		}
		sort.Ints(cells)
		for _, cell := range cells {
			for _, n := range byCell[cell] {
				l := n.Leader(now)
				if prev, ok := leaders[cell]; !ok {
					leaders[cell] = l
					claimant[cell] = n.ID()
				} else if prev != l {
					vs = append(vs, Violation{
						Invariant: LeaderName, Time: now, Actor: aliveActor(n.ID()), Subject: cell,
						Detail: fmt.Sprintf("cell %d split-brain: node %d elects %d, node %d elects %d",
							cell, claimant[cell], prev, n.ID(), l),
					})
				}
			}
			if l := leaders[cell]; !eng.Alive(aliveActor(l)) {
				vs = append(vs, Violation{
					Invariant: LeaderName, Time: now, Actor: aliveActor(l), Subject: cell,
					Detail: fmt.Sprintf("cell %d elected dead leader %d", cell, l),
				})
			}
		}
		return vs
	}
}

package invariant

import (
	"sort"

	"decor/internal/sim"
	"decor/internal/snap"
)

// Checker snapshot support: the recorded violations and the dedup index
// travel with a checkpoint so a resumed run neither re-reports old
// breaches nor forgets them. The check functions themselves are code,
// re-registered by the caller exactly as for a fresh run.

// EncodeState appends the checker's violations and dedup keys to w.
func (c *Checker) EncodeState(w *snap.Writer) {
	w.Int(len(c.vs))
	for _, v := range c.vs {
		w.Str(v.Invariant)
		w.F64(float64(v.Time))
		w.Int(v.Actor)
		w.Int(v.Subject)
		w.Str(v.Detail)
	}
	keys := make([]string, 0, len(c.seen))
	for k := range c.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Str(k)
	}
}

// RestoreState replaces the checker's violation record with the decoded
// one. Registered checks are untouched.
func (c *Checker) RestoreState(r *snap.Reader) {
	c.vs = c.vs[:0]
	for n := r.CollectionLen(); n > 0; n-- {
		var v Violation
		v.Invariant = r.Str()
		v.Time = sim.Time(r.F64())
		v.Actor = r.Int()
		v.Subject = r.Int()
		v.Detail = r.Str()
		c.vs = append(c.vs, v)
	}
	c.seen = map[string]bool{}
	for n := r.CollectionLen(); n > 0; n-- {
		c.seen[r.Str()] = true
	}
}

// WatchRestored re-attaches the periodic watchdog on a restored engine.
// Unlike Watch it must not schedule the first tick: the watchdog's next
// timer is already in the restored queue.
func (c *Checker) WatchRestored(eng *sim.Engine, every sim.Time) {
	if every <= 0 {
		panic("invariant: non-positive watch period")
	}
	eng.RegisterRestored(WatchdogActor, &watchdog{checker: c, every: every})
}

package invariant

import (
	"strings"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/sim"
	"decor/internal/sim/simtest"
)

func smallMap(k int) *coverage.Map {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(5, 5), geom.Pt(9, 9)}
	return coverage.New(geom.Square(10), pts, 2, k)
}

func TestKCoverageReportsDeficitWithActor(t *testing.T) {
	m := smallMap(1)
	m.AddSensor(0, geom.Pt(1, 1)) // covers point 0 only
	check := KCoverage(m, func(point int) int { return 100 + point })
	vs := check(3.5)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2 (points 1 and 2 uncovered)", len(vs))
	}
	v := vs[0]
	if v.Invariant != KCoverageName || v.Time != 3.5 || v.Actor != 101 {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, "point 1") {
		t.Errorf("detail does not name the point: %q", v.Detail)
	}
	// Cover everything: check goes quiet.
	m.AddSensor(1, geom.Pt(5, 5))
	m.AddSensor(2, geom.Pt(9, 9))
	if vs := check(4); len(vs) != 0 {
		t.Errorf("covered map still reports %v", vs)
	}
}

func TestAfterGatesCheck(t *testing.T) {
	m := smallMap(1) // fully deficient
	check := After(10, KCoverage(m, nil))
	if vs := check(9.99); len(vs) != 0 {
		t.Error("gated check fired before deadline")
	}
	if vs := check(10); len(vs) == 0 {
		t.Error("gated check silent after deadline")
	}
}

func TestBudget(t *testing.T) {
	m := smallMap(1)
	check := Budget(m, 2)
	m.AddSensor(0, geom.Pt(1, 1))
	m.AddSensor(1, geom.Pt(5, 5))
	if vs := check(1); len(vs) != 0 {
		t.Errorf("within budget: %v", vs)
	}
	m.AddSensor(2, geom.Pt(9, 9))
	vs := check(2)
	if len(vs) != 1 || vs[0].Invariant != BudgetName {
		t.Fatalf("budget breach not reported: %v", vs)
	}
}

func TestAccountingOnRealEngineUnderFaults(t *testing.T) {
	e := sim.NewEngine(0.1)
	e.SetLossRate(0.3, 1)
	e.SetFaults(sim.FaultPlan{Seed: 2, DupProb: 0.5, DelayProb: 0.5, DelayMax: 2, Until: 100})
	e.Register(2, &simtest.Recorder{})
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		for i := 0; i < 300; i++ {
			ctx.Send(2, "x", i)
		}
	}}})
	check := Accounting(e)
	e.Run(0.15) // mid-flight: pending messages balance the books
	if vs := check(e.Now()); len(vs) != 0 {
		t.Errorf("mid-run accounting: %v", vs)
	}
	e.Run(sim.Inf)
	if vs := check(e.Now()); len(vs) != 0 {
		t.Errorf("quiescent accounting: %v", vs)
	}
}

// stubNode implements LeaderView for election checks.
type stubNode struct{ id, cell, leader int }

func (s stubNode) ID() int               { return s.id }
func (s stubNode) Cell() int             { return s.cell }
func (s stubNode) Leader(_ sim.Time) int { return s.leader }

func electionEngine(ids ...int) *sim.Engine {
	e := sim.NewEngine(0)
	for _, id := range ids {
		e.Register(id, &simtest.Recorder{})
	}
	return e
}

func TestLeaderAgreement(t *testing.T) {
	ident := func(id int) int { return id }
	// Agreement: both cells name one live leader each.
	e := electionEngine(1, 2, 3, 4)
	nodes := []LeaderView{
		stubNode{1, 0, 1}, stubNode{2, 0, 1},
		stubNode{3, 1, 4}, stubNode{4, 1, 4},
	}
	if vs := LeaderAgreement(e, nodes, ident)(5); len(vs) != 0 {
		t.Errorf("agreement flagged: %v", vs)
	}
	// Split brain in cell 0.
	split := []LeaderView{stubNode{1, 0, 1}, stubNode{2, 0, 2}}
	vs := LeaderAgreement(e, split, ident)(6)
	if len(vs) != 1 || vs[0].Invariant != LeaderName || vs[0].Time != 6 {
		t.Fatalf("split brain not reported: %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "split-brain") {
		t.Errorf("detail = %q", vs[0].Detail)
	}
	// Dead elected leader.
	e.Kill(1)
	vs = LeaderAgreement(e, []LeaderView{stubNode{2, 0, 1}}, ident)(7)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "dead leader") {
		t.Fatalf("dead leader not reported: %v", vs)
	}
	// Dead nodes' own views are excluded entirely.
	vs = LeaderAgreement(e, []LeaderView{stubNode{1, 0, 1}}, ident)(8)
	if len(vs) != 0 {
		t.Errorf("dead node's view counted: %v", vs)
	}
}

func TestCheckerDedupKeepsFirstObservation(t *testing.T) {
	m := smallMap(1)
	c := New().Add(KCoverageName, KCoverage(m, nil))
	c.RunAt(2)
	c.RunAt(5)
	vs := c.Violations()
	if len(vs) != 3 {
		t.Fatalf("violations = %d, want 3 (one per point, deduped across runs)", len(vs))
	}
	for _, v := range vs {
		if v.Time != 2 {
			t.Errorf("dedup kept later observation: %+v", v)
		}
	}
	if c.OK() {
		t.Error("OK() with violations")
	}
	if f := c.First(KCoverageName); f == nil || f.Time != 2 {
		t.Errorf("First = %+v", f)
	}
	if c.First("nonexistent") != nil {
		t.Error("First on unknown invariant")
	}
	if got := c.Checked(); len(got) != 1 || got[0] != KCoverageName {
		t.Errorf("Checked = %v", got)
	}
}

func TestWatchRunsPeriodically(t *testing.T) {
	m := smallMap(1) // always deficient
	e := sim.NewEngine(0)
	c := New().Add(KCoverageName, After(3, KCoverage(m, nil)))
	c.Watch(e, 1)
	e.Run(10)
	if c.OK() {
		t.Fatal("watchdog never fired")
	}
	// First observation at the first watchdog tick at/after the gate.
	if f := c.First(KCoverageName); f.Time != 3 {
		t.Errorf("first observation at t=%v, want 3", f.Time)
	}
}

func TestWatchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive period should panic")
		}
	}()
	New().Watch(sim.NewEngine(0), 0)
}

package sim

import (
	"context"
	"testing"

	"decor/internal/obs"
)

// TestEngineFlightRecorder drives crashes, restarts, deliveries, timers,
// and dead-target drops through an engine wired to a flight-recorder
// shard and checks the structured event stream mirrors the run.
func TestEngineFlightRecorder(t *testing.T) {
	fr := obs.NewFlightRecorder(1, 128)
	e := NewEngine(0.25)
	e.SetFlight(fr.Shard(0))

	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(2, "ping", nil)
		ctx.SetTimer(1, "tick")
	}, onTimer: func(ctx *Context, tag string) {
		if ctx.Now() < 8 {
			ctx.Send(2, "late", nil) // actor 2 is dead 5..9: dropped
			ctx.SetTimer(2, tag)
		}
	}})
	e.Register(2, &echoActor{})
	e.SetFaults(FaultPlan{Crashes: []Crash{{Actor: 2, At: 5, RestartAt: 9}}})
	e.Run(Inf)

	evs := fr.Dump()
	if len(evs) == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	kinds := map[string]int{}
	for i, ev := range evs {
		kinds[ev.Kind]++
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("events not seq-ordered at %d", i)
		}
	}
	for _, want := range []string{"deliver", "timer", "crash", "restart", "drop"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in flight dump: %v", want, kinds)
		}
	}
	// Flight events carry only virtual time, so a re-run with a fresh
	// recorder replays the identical timeline (determinism for chaos).
	fr2 := obs.NewFlightRecorder(1, 128)
	e2 := NewEngine(0.25)
	e2.SetFlight(fr2.Shard(0))
	e2.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(2, "ping", nil)
		ctx.SetTimer(1, "tick")
	}, onTimer: func(ctx *Context, tag string) {
		if ctx.Now() < 8 {
			ctx.Send(2, "late", nil)
			ctx.SetTimer(2, tag)
		}
	}})
	e2.Register(2, &echoActor{})
	e2.SetFaults(FaultPlan{Crashes: []Crash{{Actor: 2, At: 5, RestartAt: 9}}})
	e2.Run(Inf)
	evs2 := fr2.Dump()
	if len(evs2) != len(evs) {
		t.Fatalf("replay length %d != %d", len(evs2), len(evs))
	}
	for i := range evs {
		if evs[i] != evs2[i] {
			t.Fatalf("replay diverges at %d: %+v vs %+v", i, evs[i], evs2[i])
		}
	}
}

// TestEngineRunSpan checks Run emits a "sim.run" span into the trace
// carried by the engine's obs context.
func TestEngineRunSpan(t *testing.T) {
	tr := obs.NewTracer(64)
	ctx, root := tr.StartTrace(context.Background(), "test")
	e := NewEngine(0.5)
	e.SetObsContext(ctx)
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(1, "self", nil)
	}})
	e.Run(Inf)
	root.End()

	spans := tr.Trace(root.TraceID())
	var run *obs.SpanRecord
	for i := range spans {
		if spans[i].Name == "sim.run" {
			run = &spans[i]
		}
	}
	if run == nil {
		t.Fatalf("no sim.run span in %+v", spans)
	}
	if run.Attr != "events=1" {
		t.Errorf("sim.run attr = %q, want events=1", run.Attr)
	}
	if run.Parent == "" {
		t.Error("sim.run should be a child of the root span")
	}
}

// TestEngineWithoutFlightOrContext is the disabled path: no recorder, no
// context — Run must behave exactly as before (guarded by the benchmark
// gate in make check as well).
func TestEngineWithoutFlightOrContext(t *testing.T) {
	e := NewEngine(0.5)
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(1, "self", nil)
	}})
	if got := e.Run(Inf); got != 1 {
		t.Fatalf("processed = %d, want 1", got)
	}
}

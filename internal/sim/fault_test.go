package sim_test

import (
	"fmt"
	"testing"

	"decor/internal/sim"
	"decor/internal/sim/simtest"
)

func TestFaultPlanValidate(t *testing.T) {
	good := []sim.FaultPlan{
		{},
		{Seed: 1, DelayProb: 0.5, DelayMax: 2, Until: 10},
		{DupProb: 1, Until: 5},
		{Burst: &sim.GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.9}},
		{Crashes: []sim.Crash{{Actor: 1, At: 3, RestartAt: 5}}},
		{Partitions: []sim.Partition{{From: 1, Until: 2, A: []int{1}, B: []int{2}}}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d should validate: %v", i, err)
		}
	}
	bad := []sim.FaultPlan{
		{DelayProb: -0.1},
		{DelayProb: 1.5},
		{DelayProb: 0.5, DelayMax: 0},
		{DelayMax: -1},
		{DupProb: 2},
		{Burst: &sim.GilbertElliott{PGoodToBad: 1.2}},
		{Crashes: []sim.Crash{{Actor: 1, At: -1}}},
		{Partitions: []sim.Partition{{From: 2, Until: 1, A: []int{1}, B: []int{2}}}},
		{Partitions: []sim.Partition{{From: 0, Until: 1, A: nil, B: []int{2}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should be rejected", i)
		}
	}
}

func TestFaultPlanBounded(t *testing.T) {
	cases := []struct {
		name string
		plan sim.FaultPlan
		want bool
	}{
		{"zero plan", sim.FaultPlan{}, true},
		{"finite horizon", sim.FaultPlan{DelayProb: 0.3, DelayMax: 1, Until: 50}, true},
		{"no horizon", sim.FaultPlan{DelayProb: 0.3, DelayMax: 1}, false},
		{"burst with escape", sim.FaultPlan{Burst: &sim.GilbertElliott{PGoodToBad: 0.2, PBadToGood: 0.3, LossBad: 0.9}, Until: 50}, true},
		{"burst trap", sim.FaultPlan{Burst: &sim.GilbertElliott{PGoodToBad: 0.2, PBadToGood: 0.01, LossBad: 0.9}, Until: 50}, false},
		{"burst too lossy", sim.FaultPlan{Burst: &sim.GilbertElliott{PGoodToBad: 0.2, PBadToGood: 0.3, LossBad: 0.99}, Until: 50}, false},
		{"partition heals inside horizon", sim.FaultPlan{DupProb: 0.1, Until: 50,
			Partitions: []sim.Partition{{From: 1, Until: 40, A: []int{1}, B: []int{2}}}}, true},
		{"partition outlives horizon", sim.FaultPlan{DupProb: 0.1, Until: 50,
			Partitions: []sim.Partition{{From: 1, Until: 60, A: []int{1}, B: []int{2}}}}, false},
		{"permanent crash is fine", sim.FaultPlan{Crashes: []sim.Crash{{Actor: 3, At: 5}}}, true},
		{"invalid is unbounded", sim.FaultPlan{DelayProb: 2}, false},
	}
	for _, tc := range cases {
		if got := tc.plan.Bounded(); got != tc.want {
			t.Errorf("%s: Bounded() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSetFaultsRejectsInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid plan should panic")
		}
	}()
	sim.NewEngine(0).SetFaults(sim.FaultPlan{DelayProb: 2})
}

// Delay jitter must reorder independently delayed messages while leaving
// the send accounting intact.
func TestDelayJitterReorders(t *testing.T) {
	e := sim.NewEngine(0.1)
	e.SetFaults(sim.FaultPlan{Seed: 9, DelayProb: 0.5, DelayMax: 3, Until: 1000})
	recv := &simtest.Recorder{}
	e.Register(2, recv)
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		for i := 0; i < 500; i++ {
			ctx.Send(2, fmt.Sprint(i), i)
		}
	}}})
	e.Run(sim.Inf)
	st := e.Stats()
	if st.Delayed == 0 {
		t.Fatal("no messages were delayed")
	}
	if st.Delivered != 500 {
		t.Fatalf("delivered = %d, want 500 (delay must not lose messages)", st.Delivered)
	}
	reordered := false
	for i, m := range recv.Messages {
		if m.Payload.(int) != i {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("independent delay jitter produced no reordering across 500 messages")
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	e := sim.NewEngine(0.1)
	e.SetFaults(sim.FaultPlan{Seed: 4, DupProb: 1, DelayMax: 1, Until: 1000})
	recv := &simtest.Recorder{}
	e.Register(2, recv)
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		for i := 0; i < 100; i++ {
			ctx.Send(2, "x", i)
		}
	}}})
	e.Run(sim.Inf)
	st := e.Stats()
	if st.Sent != 100 || st.Duplicated != 100 {
		t.Fatalf("sent %d, duplicated %d, want 100/100", st.Sent, st.Duplicated)
	}
	if st.Delivered != 200 || len(recv.Messages) != 200 {
		t.Errorf("delivered %d (receiver saw %d), want 200", st.Delivered, len(recv.Messages))
	}
}

// The Gilbert-Elliott channel must lose roughly its stationary fraction
// and do so in bursts (consecutive losses far above the uniform-loss
// expectation for the same rate).
func TestGilbertElliottBurstLoss(t *testing.T) {
	ge := sim.GilbertElliott{PGoodToBad: 0.05, PBadToGood: 0.2, LossGood: 0.01, LossBad: 0.9}
	e := sim.NewEngine(0.001)
	e.SetFaults(sim.FaultPlan{Seed: 11, Burst: &ge, Until: sim.Time(1e18)})
	recv := &simtest.Recorder{}
	e.Register(2, recv)
	const total = 20000
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		for i := 0; i < total; i++ {
			ctx.Send(2, "x", i)
		}
	}}})
	e.Run(sim.Inf)
	st := e.Stats()
	frac := float64(st.Lost) / total
	want := ge.StationaryLoss()
	if frac < want-0.05 || frac > want+0.05 {
		t.Errorf("burst loss fraction = %v, want ~%v", frac, want)
	}
	// Burstiness: the longest run of consecutively lost payloads should be
	// far beyond what uniform loss at the same rate plausibly produces.
	seen := make([]bool, total)
	for _, m := range recv.Messages {
		seen[m.Payload.(int)] = true
	}
	longest, cur := 0, 0
	for _, ok := range seen {
		if !ok {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	if longest < 8 {
		t.Errorf("longest loss burst = %d, expected bursty (>= 8) losses", longest)
	}
}

func TestPartitionCutsBothDirectionsThenHeals(t *testing.T) {
	e := sim.NewEngine(0.1)
	e.SetFaults(sim.FaultPlan{Partitions: []sim.Partition{
		{From: 0, Until: 10, A: []int{1}, B: []int{2}},
	}})
	timers := func(ctx *sim.Context) { ctx.SetTimer(5, "mid"); ctx.SetTimer(15, "late") }
	a := &simtest.Recorder{Hooks: simtest.Hooks{OnStart: timers,
		OnTimer: func(ctx *sim.Context, _ string) { ctx.Send(2, "p", nil) }}}
	b := &simtest.Recorder{Hooks: simtest.Hooks{OnStart: timers,
		OnTimer: func(ctx *sim.Context, _ string) { ctx.Send(1, "p", nil) }}}
	e.Register(1, a)
	e.Register(2, b)
	e.Register(3, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		ctx.SetTimer(1, "go")
	}, OnTimer: func(ctx *sim.Context, _ string) {
		// Not a partition member: reaches both sides even mid-window.
		ctx.Send(1, "from3", nil)
		ctx.Send(2, "from3", nil)
	}}})
	e.Run(sim.Inf)
	st := e.Stats()
	if st.PartitionDropped != 2 {
		t.Errorf("partition dropped %d, want 2 (one per direction mid-window)", st.PartitionDropped)
	}
	// Each side: one "from3" plus the healed post-window "p".
	for name, r := range map[string]*simtest.Recorder{"a": a, "b": b} {
		if len(r.Messages) != 2 {
			t.Errorf("%s received %d messages, want 2 (outsider + healed)", name, len(r.Messages))
		}
	}
}

func TestCrashAndRestartSchedule(t *testing.T) {
	e := sim.NewEngine(0)
	ticks := 0
	victim := &simtest.Recorder{}
	victim.Hooks.OnStart = func(ctx *sim.Context) { ctx.SetTimer(1, "tick") }
	victim.Hooks.OnTimer = func(ctx *sim.Context, _ string) {
		ticks++
		ctx.SetTimer(1, "tick")
	}
	e.Register(1, victim)
	e.SetFaults(sim.FaultPlan{Crashes: []sim.Crash{{Actor: 1, At: 5.5, RestartAt: 20}}})
	e.Run(100)
	st := e.Stats()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", st.Crashes, st.Restarts)
	}
	// 5 ticks before the crash (t=1..5), none during [5.5, 20), then the
	// restarted chain ticks at t=21..100.
	if want := 5 + 80; ticks != want {
		t.Errorf("ticks = %d, want %d (crash window must silence the timer chain)", ticks, want)
	}
	if !e.Alive(1) {
		t.Error("actor should be alive after restart")
	}
}

func TestPermanentCrashSilencesActor(t *testing.T) {
	e := sim.NewEngine(0.5)
	recv := &simtest.Recorder{}
	e.Register(2, recv)
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		ctx.SetTimer(10, "late") // fires after the crash: must be dropped
	}, OnTimer: func(ctx *sim.Context, _ string) {
		ctx.Send(2, "ghost", nil)
	}}})
	e.SetFaults(sim.FaultPlan{Crashes: []sim.Crash{{Actor: 1, At: 3}}})
	e.Run(sim.Inf)
	if len(recv.Messages) != 0 {
		t.Error("crashed actor sent a message")
	}
	if e.Alive(1) {
		t.Error("permanently crashed actor reported alive")
	}
	if st := e.Stats(); st.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", st.Restarts)
	}
}

// Message accounting must close at all times, with in-flight messages as
// the balancing term — the invariant the checker package asserts.
func TestAccountingClosesMidRunUnderFaults(t *testing.T) {
	e := sim.NewEngine(0.2)
	e.SetLossRate(0.2, 3)
	e.SetFaults(sim.FaultPlan{
		Seed: 8, DelayProb: 0.4, DelayMax: 5, DupProb: 0.3,
		Burst:      &sim.GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8},
		Until:      1000,
		Partitions: []sim.Partition{{From: 2, Until: 8, A: []int{1}, B: []int{2}}},
	})
	e.Register(2, &simtest.Recorder{})
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		ctx.SetTimer(0, "burst")
	}, OnTimer: func(ctx *sim.Context, tag string) {
		for i := 0; i < 50; i++ {
			ctx.Send(2, "x", i)
		}
		if ctx.Now() < 20 {
			ctx.SetTimer(1, "burst")
		}
	}}})
	check := func(when string) {
		st := e.Stats()
		resolved := st.Delivered + st.Dropped + st.Lost + st.PartitionDropped
		if st.Sent+st.Duplicated != resolved+e.PendingMessages() {
			t.Fatalf("%s: accounting open: sent %d + dup %d != resolved %d + pending %d",
				when, st.Sent, st.Duplicated, resolved, e.PendingMessages())
		}
	}
	for _, until := range []sim.Time{1, 3, 7, 12, 30} {
		e.Run(until)
		check(fmt.Sprintf("t=%v", until))
	}
	e.Run(sim.Inf)
	check("quiescence")
	if e.PendingMessages() != 0 {
		t.Error("pending messages after quiescence")
	}
}

// Identical plans must replay byte-identically: same trace lines, same
// stats.
func TestFaultsDeterministic(t *testing.T) {
	run := func() (string, sim.Stats) {
		e := sim.NewEngine(0.1)
		e.SetLossRate(0.1, 5)
		e.SetFaults(sim.FaultPlan{
			Seed: 21, DelayProb: 0.3, DelayMax: 2, DupProb: 0.2,
			Burst:      &sim.GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.4, LossBad: 0.7},
			Until:      500,
			Crashes:    []sim.Crash{{Actor: 3, At: 4, RestartAt: 9}},
			Partitions: []sim.Partition{{From: 2, Until: 6, A: []int{1}, B: []int{2, 3}}},
		})
		var trace string
		e.SetTrace(func(at sim.Time, s string) { trace += fmt.Sprintf("%.6f %s\n", float64(at), s) })
		for id := 1; id <= 3; id++ {
			id := id
			e.Register(id, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
				ctx.SetTimer(sim.Time(id), "go")
			}, OnTimer: func(ctx *sim.Context, _ string) {
				for peer := 1; peer <= 3; peer++ {
					if peer != id {
						ctx.Send(peer, "hi", nil)
					}
				}
				if ctx.Now() < 30 {
					ctx.SetTimer(1, "go")
				}
			}}})
		}
		e.Run(sim.Inf)
		return trace, e.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatal("fault-injected trace not byte-identical across identical runs")
	}
	s1.SentBy, s2.SentBy = nil, nil
	if fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if s1.Crashes != 1 || s1.Restarts != 1 || s1.PartitionDropped == 0 {
		t.Errorf("plan mechanisms not exercised: %+v", s1)
	}
}

package sim

import (
	"fmt"
	"sort"

	"decor/internal/rng"
)

// This file is the chaos/fault-injection layer: a declarative, seeded
// FaultPlan the engine executes deterministically alongside the normal
// event stream. It generalizes the i.i.d. uniform loss of SetLossRate to
// the failure modes the paper's §2.1 gestures at ("sensors are also
// susceptible to packet loss and link failures") and the ones any
// Jepsen-style schedule needs: per-message delay jitter (which yields
// reordering for free, since independently delayed messages overtake each
// other), duplication, bursty Gilbert-Elliott loss, node crash/restart at
// arbitrary virtual times, and bidirectional link partitions between
// actor sets. Every random draw comes from seeded PCG streams consumed in
// deterministic event order, so identical plans replay byte-identically.

// GilbertElliott is the classic two-state burst-loss channel: the channel
// flips between a good and a bad state with the given per-message
// transition probabilities, and drops a message with the loss probability
// of its current state. High LossBad with small PBadToGood produces the
// correlated loss bursts that defeat protocols tuned only against
// uniform loss.
type GilbertElliott struct {
	PGoodToBad float64 // P(good → bad) evaluated per delivery attempt
	PBadToGood float64 // P(bad → good) evaluated per delivery attempt
	LossGood   float64 // loss probability while in the good state
	LossBad    float64 // loss probability while in the bad state
}

// StationaryLoss returns the long-run loss fraction of the channel.
func (g GilbertElliott) StationaryLoss() float64 {
	denom := g.PGoodToBad + g.PBadToGood
	if denom == 0 {
		return g.LossGood
	}
	piBad := g.PGoodToBad / denom
	return (1-piBad)*g.LossGood + piBad*g.LossBad
}

func (g GilbertElliott) validate() error {
	for _, p := range []float64{g.PGoodToBad, g.PBadToGood, g.LossGood, g.LossBad} {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: Gilbert-Elliott probability %v outside [0, 1]", p)
		}
	}
	return nil
}

// Crash schedules one node crash, optionally followed by a restart. A
// crashed actor receives no callbacks: messages to it drop (counted as
// Dropped, like radio sends to a dead node) and its timer chains break —
// volatile state a real node would lose. RestartAt <= At means the crash
// is permanent. On restart the actor's OnStart runs again, re-arming its
// timers; actors keep their struct state, modelling recovery from a
// checkpoint.
type Crash struct {
	Actor     int
	At        Time
	RestartAt Time // <= At: permanent crash
}

// Partition cuts every link between actor set A and actor set B in both
// directions during [From, Until). Messages crossing the cut are counted
// in Stats.PartitionDropped, not Lost: the link is down, not lossy.
type Partition struct {
	From, Until Time
	A, B        []int
}

// FaultPlan declares a full chaos schedule. The zero value is a no-op.
// The probabilistic mechanisms (delay, duplication, burst loss) are
// active only while virtual time is below Until, giving every run a
// clean convergence window after the fault horizon; Until <= 0 means
// they stay active forever (such a plan is not Bounded). Crashes and
// partitions carry their own explicit times.
type FaultPlan struct {
	Seed uint64

	// DelayProb delays each message send independently by an extra
	// uniform amount in (0, DelayMax]; messages with different jitter
	// overtake each other, so this is also the reordering mechanism.
	DelayProb float64
	DelayMax  Time

	// DupProb delivers each message a second time (with fresh delay
	// jitter), modelling link-layer retransmit duplicates.
	DupProb float64

	// Burst, when non-nil, runs a Gilbert-Elliott channel over every
	// delivery attempt, in addition to any uniform SetLossRate.
	Burst *GilbertElliott

	// Until is the probabilistic-fault horizon (see above).
	Until Time

	Crashes    []Crash
	Partitions []Partition
}

// Validate checks the plan's fields are well-formed (probabilities in
// range, non-negative times, partition windows ordered). It does not
// bound severity — see Bounded.
func (p FaultPlan) Validate() error {
	for _, pr := range []float64{p.DelayProb, p.DupProb} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("sim: fault probability %v outside [0, 1]", pr)
		}
	}
	if p.DelayMax < 0 {
		return fmt.Errorf("sim: negative DelayMax %v", p.DelayMax)
	}
	if p.DelayProb > 0 && p.DelayMax == 0 {
		return fmt.Errorf("sim: DelayProb %v with zero DelayMax", p.DelayProb)
	}
	if p.Burst != nil {
		if err := p.Burst.validate(); err != nil {
			return err
		}
	}
	for _, c := range p.Crashes {
		if c.At < 0 {
			return fmt.Errorf("sim: crash of %d at negative time %v", c.Actor, c.At)
		}
	}
	for _, pt := range p.Partitions {
		if pt.From < 0 || pt.Until <= pt.From {
			return fmt.Errorf("sim: partition window [%v, %v) invalid", pt.From, pt.Until)
		}
		if len(pt.A) == 0 || len(pt.B) == 0 {
			return fmt.Errorf("sim: partition with empty side")
		}
	}
	return nil
}

// Bounded reports whether the plan sits inside the documented severity
// bound under which the chaos property suite asserts convergence
// (DESIGN.md §10): every probabilistic mechanism has a finite horizon
// (Until > 0 when any is enabled), the burst channel always has an
// escape path out of the bad state (PBadToGood >= 0.05) and never drops
// deterministically forever (LossBad <= 0.95), and every partition heals
// within the horizon. Crashes may be permanent: the protocols under test
// are required to survive dead nodes, only not an eternally flapping
// channel.
func (p FaultPlan) Bounded() bool {
	if p.Validate() != nil {
		return false
	}
	probabilistic := p.DelayProb > 0 || p.DupProb > 0 || p.Burst != nil
	if probabilistic && p.Until <= 0 {
		return false
	}
	if p.Burst != nil && (p.Burst.PBadToGood < 0.05 || p.Burst.LossBad > 0.95) {
		return false
	}
	for _, pt := range p.Partitions {
		if p.Until > 0 && pt.Until > p.Until {
			return false
		}
	}
	return true
}

// faultState is the engine-side runtime of an installed plan: one seeded
// stream per mechanism (so enabling one mechanism never perturbs the
// draws of another), plus the Gilbert-Elliott channel state.
type faultState struct {
	plan     FaultPlan
	delayRNG *rng.RNG
	dupRNG   *rng.RNG
	geRNG    *rng.RNG
	geBad    bool
	parts    []partitionSets
}

type partitionSets struct {
	from, until Time
	a, b        map[int]bool
}

// SetFaults installs a fault plan on the engine. It panics on an invalid
// plan (same contract as SetLossRate) and must be called before Run;
// crash and restart control events are scheduled immediately at their
// virtual times. Calling it twice replaces the probabilistic mechanisms
// but re-schedules the new plan's crashes, so install one plan per run.
func (e *Engine) SetFaults(plan FaultPlan) {
	if err := plan.Validate(); err != nil {
		panic(err.Error())
	}
	f := &faultState{
		plan:     plan,
		delayRNG: rng.New(plan.Seed ^ 0xd31a7),
		dupRNG:   rng.New(plan.Seed ^ 0xd0b1e),
		geRNG:    rng.New(plan.Seed ^ 0xb0457),
	}
	for _, pt := range plan.Partitions {
		ps := partitionSets{from: pt.From, until: pt.Until, a: map[int]bool{}, b: map[int]bool{}}
		for _, id := range pt.A {
			ps.a[id] = true
		}
		for _, id := range pt.B {
			ps.b[id] = true
		}
		f.parts = append(f.parts, ps)
	}
	e.faults = f
	// Deterministic control-event order: sort by (time, actor) before
	// scheduling so plans listing crashes in any order replay identically.
	crashes := append([]Crash(nil), plan.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].At != crashes[j].At {
			return crashes[i].At < crashes[j].At
		}
		return crashes[i].Actor < crashes[j].Actor
	})
	for _, c := range crashes {
		at := c.At
		if at < e.now {
			at = e.now
		}
		e.schedule(event{at: at, kind: evCrash, msg: Message{To: c.Actor}})
		if c.RestartAt > c.At {
			e.schedule(event{at: c.RestartAt, kind: evRestart, msg: Message{To: c.Actor}})
		}
	}
}

// active reports whether the probabilistic mechanisms apply at now.
func (f *faultState) active(now Time) bool {
	return f.plan.Until <= 0 || now < f.plan.Until
}

// sendDelay returns the extra latency jitter for one message send (0 if
// the delay mechanism does not fire).
func (f *faultState) sendDelay(now Time) Time {
	if f.plan.DelayProb <= 0 || !f.active(now) {
		return 0
	}
	if !f.delayRNG.Bool(f.plan.DelayProb) {
		return 0
	}
	return Time(f.delayRNG.Float64()) * f.plan.DelayMax
}

// duplicate reports whether this send is delivered twice, and the jitter
// of the duplicate copy.
func (f *faultState) duplicate(now Time) (Time, bool) {
	if f.plan.DupProb <= 0 || !f.active(now) {
		return 0, false
	}
	if !f.dupRNG.Bool(f.plan.DupProb) {
		return 0, false
	}
	return Time(f.dupRNG.Float64()) * f.plan.DelayMax, true
}

// burstLost steps the Gilbert-Elliott channel for one delivery attempt
// and reports whether the message is lost to a burst.
func (f *faultState) burstLost(now Time) bool {
	g := f.plan.Burst
	if g == nil || !f.active(now) {
		return false
	}
	if f.geBad {
		if f.geRNG.Bool(g.PBadToGood) {
			f.geBad = false
		}
	} else if f.geRNG.Bool(g.PGoodToBad) {
		f.geBad = true
	}
	loss := g.LossGood
	if f.geBad {
		loss = g.LossBad
	}
	return f.geRNG.Bool(loss)
}

// linkCut reports whether an active partition severs from→to at now.
func (f *faultState) linkCut(now Time, from, to int) bool {
	for _, ps := range f.parts {
		if now < ps.from || now >= ps.until {
			continue
		}
		if (ps.a[from] && ps.b[to]) || (ps.b[from] && ps.a[to]) {
			return true
		}
	}
	return false
}

package sim

import (
	"fmt"
	"testing"

	"decor/internal/obs"
)

// benchActor is a heartbeat-like workload: a periodic timer that
// broadcasts a small message to a fixed peer set — the shape of the
// protocol traffic (heartbeats to 1-hop neighborhoods) that dominates
// every figure sweep and chaos run.
type benchActor struct {
	peers  []int
	period Time
}

func (a *benchActor) OnStart(ctx *Context) {
	// De-phase like protocol.Node so simultaneous wakeups don't pile up.
	phase := Time(float64(ctx.ID()%17) / 17.0 * float64(a.period))
	ctx.SetTimer(phase, "tick")
}

func (a *benchActor) OnMessage(*Context, Message) {}

func (a *benchActor) OnTimer(ctx *Context, tag string) {
	for _, p := range a.peers {
		ctx.Send(p, "hb", nil)
	}
	ctx.SetTimer(a.period, "tick")
}

// benchEngine builds the standard benchmark world: n actors in a ring,
// each heartbeating to its 4 nearest ring neighbors every virtual second.
func benchEngine(n int) *Engine {
	e := NewEngine(0.05)
	for id := 0; id < n; id++ {
		peers := []int{
			(id + 1) % n, (id + 2) % n,
			(id + n - 1) % n, (id + n - 2) % n,
		}
		e.Register(id, &benchActor{peers: peers, period: 1})
	}
	return e
}

// BenchmarkEngineRun measures the event-loop hot path end to end: one op
// drives a 64-actor heartbeat network for 25 virtual seconds (~8k timer
// events and ~32k message deliveries per op). This is the engine-side
// baseline BENCH_sim.json commits and scripts/benchstat.sh compares.
func BenchmarkEngineRun(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("actors=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				e := benchEngine(n)
				events = e.Run(25)
			}
			b.ReportMetric(float64(events), "events/op")
		})
	}
}

// BenchmarkEngineRunRecorded is BenchmarkEngineRun/actors=64 with a
// flight-recorder shard attached: the price of structured event capture
// on every delivery and timer. scripts/benchstat.sh compares this against
// the recorder-disabled run to measure tracing overhead; the disabled
// path itself is gated against the committed baseline.
func BenchmarkEngineRunRecorded(b *testing.B) {
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		fr := obs.NewFlightRecorder(1, 4096)
		e := benchEngine(64)
		e.SetFlight(fr.Shard(0))
		events = e.Run(25)
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkEngineRunFaulted is the same workload under a bounded fault
// plan (delay + duplication + burst loss), exercising the chaos delivery
// branches the plain benchmark skips.
func BenchmarkEngineRunFaulted(b *testing.B) {
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		e := benchEngine(64)
		e.SetLossRate(0.05, 42)
		e.SetFaults(FaultPlan{
			Seed:      42,
			DelayProb: 0.2,
			DelayMax:  0.5,
			DupProb:   0.1,
			Burst:     &GilbertElliott{PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.01, LossBad: 0.6},
			Until:     20,
			Crashes:   []Crash{{Actor: 3, At: 5, RestartAt: 12}, {Actor: 9, At: 8}},
		})
		events = e.Run(25)
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkEngineSchedule isolates the queue push/pop cycle: one op
// schedules and drains 1024 timer events through a single actor.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(0)
	drain := &echoActor{}
	e.Register(1, drain)
	e.Run(Inf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &Context{eng: e, id: 1}
		for j := 0; j < 1024; j++ {
			ctx.SetTimer(Time(j%7), "t")
		}
		e.Run(Inf)
		drain.timers = drain.timers[:0]
	}
}

// Package sim is a deterministic discrete-event simulator for sensor
// networks. It provides virtual time, a message-delivery event queue, and
// an actor abstraction for node protocols (heartbeats, failure detection,
// leader election, placement notification) built in internal/protocol.
//
// The round-based algorithms in internal/core answer "where and how many
// sensors"; this engine answers the systems questions the paper's §3.2
// raises about how nodes actually learn things: periodic meta-information
// exchange with period Tc, failure detection by missed heartbeats, and
// the absence of any synchronization requirement.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"decor/internal/obs"
	"decor/internal/rng"
)

// Time is virtual simulation time in seconds.
type Time float64

// Message is an application payload exchanged between actors.
type Message struct {
	From, To int // actor IDs; To < 0 is invalid
	Kind     string
	Payload  any
}

// Actor is a protocol endpoint attached to the engine.
type Actor interface {
	// OnStart runs when the actor is registered; schedule initial timers
	// here.
	OnStart(ctx *Context)
	// OnMessage handles a delivered message.
	OnMessage(ctx *Context, msg Message)
	// OnTimer handles an expired timer with its registration tag.
	OnTimer(ctx *Context, tag string)
}

// Context gives an actor access to the engine during a callback.
type Context struct {
	eng *Engine
	id  int
}

// ID returns the actor's ID.
func (c *Context) ID() int { return c.id }

// Now returns the current virtual time.
func (c *Context) Now() Time { return c.eng.now }

// Send enqueues a message for delivery after the engine's latency. Sends
// to dead or unknown actors are silently dropped at delivery time, like
// radio messages to a failed node. Each send counts toward the engine's
// message statistics.
func (c *Context) Send(to int, kind string, payload any) {
	e := c.eng
	e.stats.Sent++
	e.stats.SentBy[c.id]++
	e.ob.sent.Inc()
	msg := Message{From: c.id, To: to, Kind: kind, Payload: payload}
	jitter := Time(0)
	if e.faults != nil {
		if jitter = e.faults.sendDelay(e.now); jitter > 0 {
			e.stats.Delayed++
			e.ob.delayed.Inc()
		}
		if dupJitter, dup := e.faults.duplicate(e.now); dup {
			e.stats.Duplicated++
			e.ob.duplicated.Inc()
			e.schedule(event{at: e.now + e.latency + dupJitter, kind: evMessage, msg: msg})
		}
	}
	e.schedule(event{at: e.now + e.latency + jitter, kind: evMessage, msg: msg})
}

// SetTimer schedules OnTimer(tag) after d. Timers are not cancellable;
// actors ignore stale tags instead (simpler and sufficient for heartbeat
// protocols).
func (c *Context) SetTimer(d Time, tag string) {
	if d < 0 {
		panic("sim: negative timer duration")
	}
	c.eng.schedule(event{at: c.eng.now + d, kind: evTimer, msg: Message{To: c.id, Kind: tag}})
}

// Engine runs the event loop.
type Engine struct {
	now      Time
	latency  Time
	actors   map[int]Actor
	dead     map[int]bool
	queue    eventQueue
	seq      int
	stats    Stats
	ob       engineObs
	trace    func(Time, string)
	lossRate float64
	lossRNG  *rng.RNG
	faults   *faultState
}

// engineObs caches the engine's live instruments so the event loop never
// pays a registry lookup.
type engineObs struct {
	events, sent, delivered, dropped, lost, timers *obs.Counter
	delayed, duplicated, partitionDropped          *obs.Counter
	crashes, restarts                              *obs.Counter
	queueDepth                                     *obs.Gauge
}

func bindEngineObs(r *obs.Registry) engineObs {
	return engineObs{
		events:           r.Counter(obs.SimEvents),
		sent:             r.Counter(obs.SimSent),
		delivered:        r.Counter(obs.SimDelivered),
		dropped:          r.Counter(obs.SimDropped),
		lost:             r.Counter(obs.SimLost),
		timers:           r.Counter(obs.SimTimers),
		delayed:          r.Counter(obs.SimDelayed),
		duplicated:       r.Counter(obs.SimDuplicated),
		partitionDropped: r.Counter(obs.SimPartitionDropped),
		crashes:          r.Counter(obs.SimCrashes),
		restarts:         r.Counter(obs.SimRestarts),
		queueDepth:       r.Gauge(obs.SimQueueDepth),
	}
}

// Stats aggregates engine-level counters. Every message send resolves to
// exactly one of Delivered, Dropped, Lost, or PartitionDropped, so at
// quiescence Sent + Duplicated equals their sum — the accounting
// invariant internal/sim/invariant checks.
type Stats struct {
	Sent      int // messages sent (incl. dropped at delivery)
	Delivered int
	Dropped   int // sends to dead/unknown actors
	Lost      int // messages lost to simulated radio loss (uniform + burst)
	Timers    int
	SentBy    map[int]int

	// Chaos counters (zero unless a FaultPlan is installed).
	Delayed          int // messages given extra delay jitter
	Duplicated       int // extra deliveries scheduled by duplication
	PartitionDropped int // messages severed by an active partition
	Crashes          int
	Restarts         int
}

// NewEngine creates an engine with the given one-hop delivery latency.
func NewEngine(latency Time) *Engine {
	if latency < 0 {
		panic("sim: negative latency")
	}
	return &Engine{
		latency: latency,
		actors:  map[int]Actor{},
		dead:    map[int]bool{},
		stats:   Stats{SentBy: map[int]int{}},
		ob:      bindEngineObs(obs.Default()),
	}
}

// SetTrace installs a trace hook invoked with every processed event.
func (e *Engine) SetTrace(fn func(Time, string)) { e.trace = fn }

// SetRegistry redirects this engine's instrumentation (event counters and
// queue-depth gauge) to r instead of the process-wide obs.Default().
func (e *Engine) SetRegistry(r *obs.Registry) {
	if r == nil {
		panic("sim: nil obs registry")
	}
	e.ob = bindEngineObs(r)
}

// SetLossRate makes every message delivery fail independently with
// probability p (deterministically, driven by seed) — the radio packet
// loss the paper's §2.1 mentions ("sensors are also susceptible to
// packet loss and link failures"). Timers are unaffected. p must be in
// [0, 1]; 1 is a total radio blackout, a legitimate chaos setting.
func (e *Engine) SetLossRate(p float64, seed uint64) {
	if p < 0 || p > 1 {
		panic("sim: loss rate must be in [0, 1]")
	}
	e.lossRate = p
	e.lossRNG = rng.New(seed)
}

// Now returns current virtual time.
func (e *Engine) Now() Time { return e.now }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.SentBy = make(map[int]int, len(e.stats.SentBy))
	for k, v := range e.stats.SentBy {
		s.SentBy[k] = v
	}
	return s
}

// Register attaches an actor under id and invokes OnStart. It panics on
// duplicate registration.
func (e *Engine) Register(id int, a Actor) {
	if _, ok := e.actors[id]; ok {
		panic(fmt.Sprintf("sim: duplicate actor %d", id))
	}
	e.actors[id] = a
	delete(e.dead, id)
	a.OnStart(&Context{eng: e, id: id})
}

// Kill marks an actor dead at the current time: pending deliveries to it
// are dropped and it receives no further callbacks. The paper's node
// failures map to Kill.
func (e *Engine) Kill(id int) { e.dead[id] = true }

// Restart revives a killed (or crashed) actor: its OnStart runs again at
// the current virtual time, re-arming its timer chains. The actor keeps
// its struct state — recovery from a checkpoint. Restarting an actor
// that was never registered, or is already alive, is a no-op.
func (e *Engine) Restart(id int) {
	a, ok := e.actors[id]
	if !ok || !e.dead[id] {
		return
	}
	delete(e.dead, id)
	a.OnStart(&Context{eng: e, id: id})
}

// Alive reports whether id is registered and not killed.
func (e *Engine) Alive(id int) bool {
	_, ok := e.actors[id]
	return ok && !e.dead[id]
}

// event kinds
const (
	evMessage = iota
	evTimer
	evCrash   // fault-plan control: mark msg.To dead
	evRestart // fault-plan control: revive msg.To and re-run OnStart
)

type event struct {
	at   Time
	kind int
	seq  int
	msg  Message
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events: determinism
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dropTimers removes every pending timer event for actor id: a crashed
// node loses its volatile timer state, while messages already in flight
// to it stay in the ether (and drop at delivery if it is still down).
func (e *Engine) dropTimers(id int) {
	kept := e.queue[:0]
	for _, ev := range e.queue {
		if ev.kind == evTimer && ev.msg.To == id {
			continue
		}
		kept = append(kept, ev)
	}
	e.queue = kept
	heap.Init(&e.queue)
	e.ob.queueDepth.Set(float64(len(e.queue)))
}

func (e *Engine) schedule(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	e.ob.queueDepth.Set(float64(len(e.queue)))
}

// Run processes events until the queue is empty or virtual time exceeds
// until. It returns the number of events processed.
func (e *Engine) Run(until Time) int {
	processed := 0
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.ob.queueDepth.Set(float64(len(e.queue)))
		e.ob.events.Inc()
		e.now = ev.at
		processed++
		target := ev.msg.To
		if ev.kind == evCrash {
			e.dead[target] = true
			e.dropTimers(target)
			e.stats.Crashes++
			e.ob.crashes.Inc()
			if e.trace != nil {
				e.trace(e.now, fmt.Sprintf("crash @%d", target))
			}
			continue
		}
		if ev.kind == evRestart {
			if _, ok := e.actors[target]; ok && e.dead[target] {
				e.stats.Restarts++
				e.ob.restarts.Inc()
				if e.trace != nil {
					e.trace(e.now, fmt.Sprintf("restart @%d", target))
				}
				e.Restart(target)
			}
			continue
		}
		actor, ok := e.actors[target]
		if !ok || e.dead[target] {
			if ev.kind == evMessage {
				e.stats.Dropped++
				e.ob.dropped.Inc()
			}
			continue
		}
		ctx := &Context{eng: e, id: target}
		switch ev.kind {
		case evMessage:
			if e.faults != nil && e.faults.linkCut(e.now, ev.msg.From, target) {
				e.stats.PartitionDropped++
				e.ob.partitionDropped.Inc()
				if e.trace != nil {
					e.trace(e.now, fmt.Sprintf("cut %s %d->%d", ev.msg.Kind, ev.msg.From, target))
				}
				continue
			}
			if e.lossRate > 0 && e.lossRNG.Bool(e.lossRate) {
				e.stats.Lost++
				e.ob.lost.Inc()
				continue
			}
			if e.faults != nil && e.faults.burstLost(e.now) {
				e.stats.Lost++
				e.ob.lost.Inc()
				if e.trace != nil {
					e.trace(e.now, fmt.Sprintf("burst-lose %s %d->%d", ev.msg.Kind, ev.msg.From, target))
				}
				continue
			}
			e.stats.Delivered++
			e.ob.delivered.Inc()
			if e.trace != nil {
				e.trace(e.now, fmt.Sprintf("deliver %s %d->%d", ev.msg.Kind, ev.msg.From, target))
			}
			actor.OnMessage(ctx, ev.msg)
		case evTimer:
			e.stats.Timers++
			e.ob.timers.Inc()
			if e.trace != nil {
				e.trace(e.now, fmt.Sprintf("timer %s @%d", ev.msg.Kind, target))
			}
			actor.OnTimer(ctx, ev.msg.Kind)
		}
	}
	if e.queue.Len() == 0 && until != Inf && e.now < until {
		e.now = until
	}
	return processed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// PendingMessages returns the number of queued message-delivery events
// (timers and fault-plan control events excluded). It closes the
// message-accounting books mid-run: Sent + Duplicated always equals
// Delivered + Dropped + Lost + PartitionDropped + PendingMessages.
func (e *Engine) PendingMessages() int {
	n := 0
	for _, ev := range e.queue {
		if ev.kind == evMessage {
			n++
		}
	}
	return n
}

// Inf is a convenience for Run(sim.Inf): process everything.
const Inf = Time(math.MaxFloat64)
